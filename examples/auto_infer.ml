(* Annotation-free checkpointing, end to end: read a bare mini-C program
   (no Sclass declarations anywhere), run the automatic inference
   pipeline, and print what it derived — discovered phases, inferred
   shapes, translation-validation verdicts, and the barrier-elision plan.

   Usage: auto_infer [file.mc]   (defaults to the blur workload) *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let program =
    if Array.length Sys.argv > 1 then Minic.Parser.parse (read_file Sys.argv.(1))
    else Minic.Gen.image_program ()
  in
  let env = Minic.Check.check program in
  let t = Staticcheck.Auto_spec.infer env in
  Format.printf "%a@." Staticcheck.Auto_spec.pp t;
  Format.printf "@.inference %s: %d specialized checkpointer(s) verified@."
    (if Staticcheck.Auto_spec.ok t then "ok" else "REFUSED")
    (Staticcheck.Auto_spec.verified_count t)
