(* The content-addressed store end to end: a long PageRank-style run
   checkpointed through a store-backed Manager, then the two things the
   store buys over the plain segment log:

   - dedup: record-aligned chunks are stored once no matter how many
     epochs reference them, so periodic full checkpoints cost little
     extra disk;
   - the epoch index: [Store.restore ~epoch] materializes ANY epoch by
     folding per-object directories from the nearest full — O(live
     objects) — where replaying the log decodes every record of every
     segment up to that epoch.

   The run never converges: a rotating "teleport bonus" keeps a slice of
   pages changing every iteration, so incremental epochs keep arriving
   and the replay-vs-index gap is visible.

   Run with: dune exec examples/dedup_store.exe *)

open Ickpt_runtime
open Ickpt_core
open Ickpt_cas

let n_pages = 500
let n_epochs = 150
let max_links = 4
let damping_milli = 850

(* Page layout: score (millis), out-degree, teleport bonus, then target
   page ids — topology as scalar ids, so the object graph is a forest. *)
let slot_score = 0
let slot_degree = 1
let slot_bonus = 2
let slot_link k = 3 + k

let () =
  let schema = Schema.create () in
  let page_klass =
    Schema.declare schema ~name:"Page" ~ints:(3 + max_links) ~children:0 ()
  in
  let heap = Heap.create schema in
  let rng = Random.State.make [| 20260806 |] in
  let pages = Array.init n_pages (fun _ -> Heap.alloc heap page_klass) in
  Array.iteri
    (fun i p ->
      let degree = 1 + Random.State.int rng max_links in
      Barrier.set_int p slot_score 1000;
      Barrier.set_int p slot_degree degree;
      Barrier.set_int p slot_bonus 0;
      for k = 0 to degree - 1 do
        (* Local links: score ripples stay near their source, so the
           rotating perturbation dirties a contiguous run of records. *)
        let target = (i + 1 + Random.State.int rng 8) mod n_pages in
        Barrier.set_int p (slot_link k) pages.(target).Model.info.Model.id
      done)
    pages;
  let index_of = Hashtbl.create n_pages in
  Array.iteri
    (fun i p -> Hashtbl.replace index_of p.Model.info.Model.id i)
    pages;
  let iterate r =
    let incoming = Array.make n_pages 0 in
    Array.iter
      (fun p ->
        let degree = Barrier.get_int p slot_degree in
        let share = Barrier.get_int p slot_score / degree in
        for k = 0 to degree - 1 do
          let t = Hashtbl.find index_of (Barrier.get_int p (slot_link k)) in
          incoming.(t) <- incoming.(t) + share
        done)
      pages;
    Array.iteri
      (fun i p ->
        let bonus = if i / 50 = r mod (n_pages / 50) then 100 else 0 in
        ignore (Barrier.set_int_if_changed p slot_bonus bonus);
        let fresh =
          1000 - damping_milli
          + (damping_milli * incoming.(i) / 1000)
          + bonus
        in
        (* Quantized scores: diffusion ripples damp out, so pages away
           from the rotating slice stabilize and their records dedup
           across the periodic full checkpoints. *)
        ignore (Barrier.set_int_if_changed p slot_score (fresh / 25 * 25)))
      pages
  in

  (* The Manager writes epochs into the store instead of the log file:
     the path's .pack/.idx pair is the only persistence. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "dedup_store.ckpt"
  in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ Store.pack_path path; Store.index_path path ];
  let store = Store.open_ schema ~path in
  let manager =
    Manager.create ~policy:(Policy.Full_every 25) schema ~path
      ~sink:(Store.manager_sink store)
  in
  let roots = Array.to_list pages in
  for r = 0 to n_epochs - 1 do
    if r > 0 then iterate r;
    ignore (Manager.checkpoint manager roots)
  done;
  Manager.close manager;

  let s = Store.stats store in
  Format.printf
    "%d epochs of %d pages: %s logical, %s on disk — dedup %.2fx@."
    s.Store.n_epochs n_pages
    (Ickpt_harness.Table.cell_bytes s.Store.logical_bytes)
    (Ickpt_harness.Table.cell_bytes s.Store.physical_bytes)
    s.Store.dedup_ratio;

  (* Where dedup bites: the periodic full checkpoints re-record every
     page, but only the chunks around the currently-perturbed pages are
     new — the rest hit chunks already in the pack. *)
  let full_refs, full_distinct =
    let seen = Hashtbl.create 64 in
    let refs = ref 0 in
    List.iter
      (fun e ->
        match Store.kind_of_epoch store e with
        | Segment.Incremental -> ()
        | Segment.Full ->
            List.iter
              (fun key ->
                incr refs;
                Hashtbl.replace seen key ())
              (Store.entry_at store e).Epoch_index.chunks)
      (Store.epochs store);
    (!refs, Hashtbl.length seen)
  in
  Format.printf
    "full epochs reference %d chunks, only %d distinct on disk (%.1fx \
     shared)@."
    full_refs full_distinct
    (float_of_int full_refs /. float_of_int full_distinct);

  (* Materialize a mid-run epoch both ways and time them. *)
  let target = n_epochs - 10 in
  let segments = ref [] in
  List.iter
    (fun e ->
      if e <= target then segments := Store.segment_of_epoch store e :: !segments)
    (Store.epochs store);
  let replay_suffix =
    (* What a log-only restore must decode: the suffix from the newest
       full at or before the target. *)
    let rec cut acc = function
      | [] -> acc
      | (seg : Segment.t) :: older -> (
          match seg.Segment.kind with
          | Segment.Full -> seg :: acc
          | Segment.Incremental -> cut (seg :: acc) older)
    in
    cut [] !segments
  in
  let roots_of_target = Store.roots_of_epoch store target in
  let (_, replayed), replay_s =
    Ickpt_harness.Clock.best_of ~repeats:3 (fun () ->
        Restore.of_segments schema replay_suffix ~roots:roots_of_target)
  in
  let (_, restored), store_s =
    Ickpt_harness.Clock.best_of ~repeats:3 (fun () ->
        Store.restore store ~epoch:target)
  in
  let agree =
    List.for_all2 Ickpt_runtime.Deep_eq.equal replayed restored
  in
  Format.printf
    "restore epoch %d: chain replay %s (%d segments), epoch index %s — \
     %.1fx faster, states agree: %b@."
    target
    (Ickpt_harness.Table.cell_seconds replay_s)
    (List.length replay_suffix)
    (Ickpt_harness.Table.cell_seconds store_s)
    (replay_s /. store_s) agree;

  (* The content-addressed diff only decodes records whose directory
     pointers differ — O(changed chunks), not O(heap). *)
  let changes = Store.diff store (target - 1) target in
  Format.printf "diff %d -> %d: %d change(s)@." (target - 1) target
    (List.length changes);

  (* Retention: keep the last 30 epochs; the floor widens down to the
     nearest full so every survivor stays restorable. *)
  let g = Store.gc store ~retain:(Store.Keep_last 30) in
  let s' = Store.stats store in
  Format.printf
    "gc --keep-last 30: dropped %d epoch(s), reclaimed %s; now %s on disk@."
    g.Store.dropped_epochs
    (Ickpt_harness.Table.cell_bytes g.Store.reclaimed_bytes)
    (Ickpt_harness.Table.cell_bytes s'.Store.physical_bytes);
  (match Store.check store with
  | [] -> Format.printf "store check: consistent@."
  | problems ->
      List.iter (Format.printf "store check ERROR: %s@.") problems;
      exit 1);
  if not agree then exit 1;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ Store.pack_path path; Store.index_path path ]
