(* Tests for the static-analysis subsystem: interprocedural effects,
   phase models, derived specialization classes, spec-lint and the
   residual-code lint — plus the agreement between the static verdicts
   and Jspec.Guard's runtime verdicts on a live heap. *)

open Ickpt_analysis
open Staticcheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_strings = Alcotest.(check (list string))
let check_ints = Alcotest.(check (list int))

(* ---- effect inference ---------------------------------------------------- *)

let cells l = Effects.Cells (Effects.Int_set.of_list l)

let effects_seg_lattice () =
  check_bool "cells union" true
    (Effects.seg_equal (cells [ 1; 2; 3 ])
       (Effects.seg_join (cells [ 1; 2 ]) (cells [ 2; 3 ])));
  check_bool "whole absorbs" true
    (Effects.seg_equal Effects.Whole
       (Effects.seg_join Effects.Whole (cells [ 0 ])));
  (* Large unions widen to Whole so the fixpoint lattice stays finite. *)
  let a = cells (List.init 40 Fun.id) in
  let b = cells (List.init 40 (fun i -> i + 35)) in
  check_bool "wide union widens" true
    (Effects.seg_equal Effects.Whole (Effects.seg_join a b))

let effects_small_program () =
  let p = Minic.Gen.small_program () in
  let env = Minic.Check.check p in
  let s = Effects.compute env in
  check_bool "double is pure" true
    (Effects.equal Effects.empty (Effects.of_func s "double"));
  let fill = Effects.of_func s "fill" in
  check_bool "fill writes buf whole" true
    (match Effects.write_seg env fill "buf" with
    | Some Effects.Whole -> true
    | _ -> false);
  check_bool "fill does not read a" false (Effects.reads_name env fill "a");
  let main = Effects.of_func s "main" in
  check_bool "main writes a" true (Effects.writes_name env main "a");
  check_bool "main writes buf transitively" true
    (Effects.writes_name env main "buf");
  (* Constant-index reads stay precise even through the summary join. *)
  let gid = Option.get (Minic.Check.global_id env "buf") in
  match Effects.Gid_map.find_opt gid main.Effects.reads with
  | Some (Effects.Cells set) ->
      check_ints "main reads buf[3,7]" [ 3; 7 ] (Effects.Int_set.elements set)
  | _ -> Alcotest.fail "expected precise read cells for buf"

let effects_image_program () =
  let p = Minic.Gen.image_program ~n_filters:2 () in
  let env = Minic.Check.check p in
  let s = Effects.compute env in
  check_bool "clamp is pure" true
    (Effects.equal Effects.empty (Effects.of_func s "clamp"));
  let f0 = Effects.of_func s "filter_0" in
  (* The nine constant-index tap stores stay a precise segment... *)
  check_bool "filter writes kernel[0..8]" true
    (match Effects.write_seg env f0 "kernel" with
    | Some seg -> Effects.seg_equal seg (cells [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ])
    | None -> false);
  (* ...computed-index stores widen, and the commit shows through the
     call: filter_0 itself never assigns image. *)
  check_bool "filter writes temp whole" true
    (match Effects.write_seg env f0 "temp" with
    | Some Effects.Whole -> true
    | _ -> false);
  check_bool "filter writes image via commit_temp" true
    (Effects.writes_name env f0 "image");
  check_bool "filter reads height" true (Effects.reads_name env f0 "height");
  let main = Effects.of_func s "main" in
  check_bool "main accumulates filter writes" true
    (Effects.writes_name env main "kernel"
    && Effects.writes_name env main "image")

(* ---- phase models and derivation ----------------------------------------- *)

let models_wellformed () =
  List.iter
    (fun phase ->
      let env = Phase_model.env phase in
      List.iter
        (fun g ->
          check_bool
            (Printf.sprintf "%s declares %s" (Phase_model.name phase) g)
            true
            (Minic.Check.global_id env g <> None))
        Phase_model.attr_globals)
    Phase_model.all

let derivation_flags () =
  let d_sea = Infer.derive Phase_model.Sea in
  let d_bta = Infer.derive Phase_model.Bta in
  let d_eta = Infer.derive Phase_model.Eta in
  check_bool "sea writes lists" true d_sea.Infer.writes_lists;
  check_bool "sea leaves bt alone" false d_sea.Infer.writes_bt;
  check_bool "sea leaves et alone" false d_sea.Infer.writes_et;
  check_bool "bta writes bt only" true
    (d_bta.Infer.writes_bt
    && (not d_bta.Infer.writes_lists)
    && not d_bta.Infer.writes_et);
  check_bool "eta writes et only" true
    (d_eta.Infer.writes_et
    && (not d_eta.Infer.writes_lists)
    && not d_eta.Infer.writes_bt);
  (* ETA consults binding times but must not change them. *)
  check_bool "eta reads bt" true
    (Effects.reads_name (Phase_model.env Phase_model.Eta) d_eta.Infer.effects
       Phase_model.g_bt)

let derived_shapes_match_shipped () =
  let attrs = Attrs.create ~n_stmts:1 in
  let klasses = Attrs.klasses attrs in
  let key = Jspec.Spec_cache.shape_key in
  List.iter
    (fun (phase, shipped) ->
      check_string
        (Printf.sprintf "derived %s == hand-written" (Phase_model.name phase))
        (key shipped)
        (key (Infer.derived_shape ~klasses phase)))
    [ (Phase_model.Sea, Attrs.sea_shape attrs);
      (Phase_model.Bta, Attrs.bta_shape attrs);
      (Phase_model.Eta, Attrs.eta_shape attrs) ]

(* ---- spec-lint ------------------------------------------------------------ *)

let shipped_declarations_clean () =
  let attrs = Attrs.create ~n_stmts:1 in
  let klasses = Attrs.klasses attrs in
  List.iter
    (fun (phase, declared) ->
      check_int
        (Printf.sprintf "%s lint-clean" (Phase_model.name phase))
        0
        (List.length (Spec_lint.check_phase ~klasses phase ~declared)))
    [ (Phase_model.Sea, Attrs.sea_shape attrs);
      (Phase_model.Bta, Attrs.bta_shape attrs);
      (Phase_model.Eta, Attrs.eta_shape attrs) ]

let wrong_declaration_unsound () =
  let attrs = Attrs.create ~n_stmts:1 in
  let klasses = Attrs.klasses attrs in
  (* The bta declaration (SEEntry subtree clean) is unsound for the sea
     phase, which writes the side-effect lists. *)
  let ds =
    Spec_lint.check_phase ~klasses Phase_model.Sea
      ~declared:(Attrs.bta_shape attrs)
  in
  check_bool "unsound detected" true (Spec_lint.has_unsound ds);
  check_bool "SEEntry flagged" true
    (List.exists
       (fun d ->
         d.Spec_lint.verdict = Spec_lint.Unsound
         && d.Spec_lint.path = "root.children[0]")
       ds);
  (* Deterministic: sorted by path. *)
  let paths = List.map (fun d -> d.Spec_lint.path) ds in
  check_strings "paths sorted" (List.sort compare paths) paths

let cross_declaration_both_verdicts () =
  let attrs = Attrs.create ~n_stmts:1 in
  let klasses = Attrs.klasses attrs in
  (* The sea declaration for the bta phase is both unsound (BT leaf
     declared clean but written) and imprecise (side-effect lists tracked
     but never written by bta). *)
  let ds =
    Spec_lint.check_phase ~klasses Phase_model.Bta
      ~declared:(Attrs.sea_shape attrs)
  in
  check_bool "has unsound" true
    (List.exists (fun d -> d.Spec_lint.verdict = Spec_lint.Unsound) ds);
  check_bool "has imprecise" true
    (List.exists (fun d -> d.Spec_lint.verdict = Spec_lint.Imprecise) ds)

(* The static verdicts must agree with Jspec.Guard at runtime: after a
   real sea run on a live heap, the derived sea declaration passes the
   guard on every root, while the declaration the lint calls unsound is
   also rejected by the guard. *)
let lint_agrees_with_guard () =
  let p = Minic.Gen.image_program ~n_filters:2 () in
  let env = Minic.Check.check p in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  Ickpt_runtime.Heap.clear_all_modified (Attrs.heap attrs);
  ignore (Sea.run env attrs);
  let klasses = Attrs.klasses attrs in
  let inferred = Infer.derived_shape ~klasses Phase_model.Sea in
  let roots = Attrs.roots attrs in
  check_bool "derived sea shape guards clean" true
    (List.for_all (fun r -> Jspec.Guard.check inferred r = []) roots);
  let unsound = Attrs.bta_shape attrs in
  check_bool "statically unsound shape also fails at runtime" true
    (List.exists (fun r -> Jspec.Guard.check unsound r <> []) roots)

(* ---- residual lint -------------------------------------------------------- *)

let residual_shipped_clean () =
  let attrs = Attrs.create ~n_stmts:3 in
  List.iter
    (fun (name, shape) ->
      check_int
        (Printf.sprintf "%s residual lint-clean" name)
        0
        (List.length (Residual_lint.lint_result (Jspec.Pe.specialize shape))))
    [ ("sea", Attrs.sea_shape attrs);
      ("bta", Attrs.bta_shape attrs);
      ("eta", Attrs.eta_shape attrs) ]

let residual_flags_defects () =
  let open Jspec.Cklang in
  let reasons stmts =
    List.map (fun f -> f.Residual_lint.reason) (Residual_lint.lint stmts)
  in
  check_strings "constant condition"
    [ "constant condition: a branch is unreachable" ]
    (reasons [ If (Const 1, [ Write (Const 0) ], []) ]);
  check_strings "redundant nested modified test"
    [ "redundant modified-flag test: condition is always true" ]
    (reasons
       [ If
           ( Modified (Var 0),
             [ If (Modified (Var 0), [ Write (Const 0) ], []) ],
             [] ) ]);
  check_strings "redundant reset in else branch"
    [ "redundant reset: modified flag already known clear" ]
    (reasons
       [ If (Modified (Var 0), [ Write (Const 0) ], [ Reset_modified (Var 0) ]) ]);
  check_strings "dead test" [ "dead test: both branches empty" ]
    (reasons [ If (Is_null (Var 0), [], []) ]);
  check_strings "dead binding" [ "dead store: binding v1 is never used" ]
    (reasons [ Let (1, Child (Var 0, Const 0), [ Write (Const 0) ]) ]);
  check_strings "unreachable loop" [ "unreachable loop: constant range [3, 3)" ]
    (reasons [ For (1, Const 3, Const 3, [ Write (Var 1) ]) ])

let residual_calls_kill_facts () =
  let open Jspec.Cklang in
  (* The generic routine may reset flags anywhere, so a second test on
     the same path after a call is NOT redundant. *)
  check_int "call invalidates modified facts" 0
    (List.length
       (Residual_lint.lint
          [ If
              ( Modified (Var 0),
                [ Call_generic (Child (Var 0, Const 0));
                  If (Modified (Var 0), [ Write (Const 0) ], []) ],
                [] ) ]))

(* ---- unified findings and engine preflight -------------------------------- *)

let finding_report_groups () =
  let fs =
    [ Finding.of_residual ~phase:"sea"
        { Residual_lint.path = "checkpoint[1]"; reason = "dead test" };
      Finding.of_residual ~phase:"sea"
        { Residual_lint.path = "checkpoint[0]"; reason = "dead test" };
      Finding.of_spec
        { Spec_lint.verdict = Spec_lint.Unsound;
          phase = "sea";
          path = "root.children[0]";
          klass = "SEEntry";
          reason = "declared Clean, but the phase may modify it" } ]
  in
  let sorted = Finding.sort fs in
  check_bool "errors detected" true (Finding.has_errors sorted);
  check_int "one error" 1 (Finding.count Finding.Error sorted);
  check_int "two warnings" 2 (Finding.count Finding.Warning sorted);
  let out = Format.asprintf "%a" Finding.pp_report sorted in
  check_bool "summary line" true
    (Test_util.contains_substring out "lint: 1 error(s), 2 warning(s)");
  check_bool "grouped by reason" true
    (Test_util.contains_substring out "dead test (2):")

(* Duplicate (scope, path) findings — same rule, same location, worded
   differently by different passes — collapse to one entry at the
   highest severity before grouping. *)
let finding_dedup () =
  let f severity reason =
    { Finding.severity; scope = "spec:sea"; path = "root.children[0]"; reason }
  in
  let other =
    { Finding.severity = Finding.Warning;
      scope = "residual:sea";
      path = "root.children[0]";
      reason = "dead test" }
  in
  let deduped =
    Finding.dedup
      [ f Finding.Warning "imprecise"; f Finding.Error "unsound";
        f Finding.Warning "imprecise"; other ]
  in
  check_int "one finding per (rule, location)" 2 (List.length deduped);
  check_int "highest severity kept" 1 (Finding.count Finding.Error deduped);
  let report =
    Format.asprintf "%a" Finding.pp_report
      [ f Finding.Warning "imprecise"; f Finding.Error "unsound" ]
  in
  check_bool "report counts deduped findings" true
    (Test_util.contains_substring report "lint: 1 error(s), 0 warning(s)")

(* ---- lattice properties (QCheck) ------------------------------------------ *)

(* Random generators for the two static lattices: Effects (finite sets
   of cells per global, Whole as top) and Regions (interval sets). *)

let seg_gen =
  let open QCheck2.Gen in
  oneof
    [ return Effects.Whole;
      map
        (fun l -> Effects.Cells (Effects.Int_set.of_list l))
        (list_size (int_range 0 6) (int_range 0 12)) ]

let effects_gen =
  let open QCheck2.Gen in
  let map_gen =
    map
      (List.fold_left
         (fun m (g, s) ->
           Effects.Gid_map.update g
             (function None -> Some s | Some s0 -> Some (Effects.seg_join s0 s))
             m)
         Effects.Gid_map.empty)
      (list_size (int_range 0 4) (pair (int_range 0 5) seg_gen))
  in
  map2 (fun reads writes -> { Effects.reads; writes }) map_gen map_gen

let region_gen =
  let open QCheck2.Gen in
  oneof
    [ return Regions.bot;
      return Regions.top;
      map
        (List.fold_left
           (fun acc (lo, w) -> Regions.join acc (Regions.interval lo (lo + w)))
           Regions.bot)
        (list_size (int_range 1 5)
           (pair (int_range (-20) 40) (int_range 0 10))) ]

let prop_effects_join_comm =
  QCheck2.Test.make ~name:"effects: join commutative" ~count:200
    QCheck2.Gen.(pair effects_gen effects_gen)
    (fun (a, b) -> Effects.equal (Effects.join a b) (Effects.join b a))

let prop_effects_join_assoc =
  QCheck2.Test.make ~name:"effects: join associative" ~count:200
    QCheck2.Gen.(triple effects_gen effects_gen effects_gen)
    (fun (a, b, c) ->
      Effects.equal
        (Effects.join a (Effects.join b c))
        (Effects.join (Effects.join a b) c))

let prop_effects_join_idem =
  QCheck2.Test.make ~name:"effects: join idempotent, empty neutral" ~count:200
    effects_gen
    (fun a ->
      Effects.equal (Effects.join a a) a
      && Effects.equal (Effects.join a Effects.empty) a)

let prop_effects_join_absorbs =
  QCheck2.Test.make ~name:"effects: fixpoint chain stabilizes (absorption)"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 8) effects_gen)
    (fun l ->
      (* the converged summary absorbs every contribution — exactly why
         the interprocedural fixpoint terminates *)
      let total = List.fold_left Effects.join Effects.empty l in
      List.for_all (fun x -> Effects.equal (Effects.join total x) total) l)

let prop_regions_join_comm =
  QCheck2.Test.make ~name:"regions: join commutative" ~count:300
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) -> Regions.equal (Regions.join a b) (Regions.join b a))

let prop_regions_join_assoc =
  QCheck2.Test.make ~name:"regions: join associative" ~count:300
    QCheck2.Gen.(triple region_gen region_gen region_gen)
    (fun (a, b, c) ->
      Regions.equal
        (Regions.join a (Regions.join b c))
        (Regions.join (Regions.join a b) c))

let prop_regions_join_idem_bounds =
  QCheck2.Test.make ~name:"regions: join idempotent and an upper bound"
    ~count:300
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) ->
      Regions.equal (Regions.join a a) a
      && Regions.leq a (Regions.join a b)
      && Regions.leq b (Regions.join a b)
      && Regions.leq (Regions.meet a b) a)

let prop_regions_disjoint_concrete =
  QCheck2.Test.make
    ~name:"regions: disjoint/inter agree with concrete membership" ~count:300
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) ->
      (* inter is the exact set intersection and disjoint its emptiness
         test — the soundness of the interference analysis rests on
         these being concrete facts, not approximations. Sampled points
         cover the generator's interval range with margin. *)
      let points = List.init 81 (fun i -> i - 25) in
      let inter = Regions.inter a b in
      List.for_all
        (fun p ->
          Regions.mem p inter = (Regions.mem p a && Regions.mem p b))
        points
      && Regions.disjoint a b
         = not
             (List.exists (fun p -> Regions.mem p a && Regions.mem p b) points)
      && Regions.disjoint a b = Regions.is_bot inter)

let prop_regions_inter_algebra =
  QCheck2.Test.make ~name:"regions: inter algebra (meet alias, hull bound)"
    ~count:300
    QCheck2.Gen.(pair region_gen region_gen)
    (fun (a, b) ->
      let inter = Regions.inter a b in
      Regions.equal inter (Regions.meet a b)
      && Regions.equal inter (Regions.inter b a)
      && Regions.leq inter a && Regions.leq inter b
      && Regions.equal (Regions.inter a a) a
      && Regions.equal (Regions.inter a Regions.bot) Regions.bot
      && Regions.equal (Regions.join a inter) a
      (* absorption *)
      &&
      match (Regions.hull inter, Regions.hull a) with
      | None, _ -> Regions.is_bot inter
      | Some _, None -> false (* inter below a cannot outgrow it *)
      | Some hi, Some ha -> Regions.leq (Regions.of_itv hi) (Regions.of_itv ha))

let prop_regions_widen_terminates =
  QCheck2.Test.make ~name:"regions: widening chains terminate" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) region_gen)
    (fun steps ->
      (* Sweep r := widen r (join r s) over the increment stream until a
         whole pass changes nothing: the hull collapse and bound jumps
         must force a fixpoint in a handful of passes, never [budget]. *)
      let budget = 32 in
      let rec fix r n =
        let r', changed =
          List.fold_left
            (fun (r, changed) s ->
              let r' = Regions.widen r (Regions.join r s) in
              if Regions.equal r' r then (r, changed)
              else if Regions.leq r r' then (r', true)
              else raise Exit (* widening must be increasing *))
            (r, false) steps
        in
        if not changed then true else n < budget && fix r' (n + 1)
      in
      try fix Regions.bot 0 with Exit -> false)

let engine_preflight_accepts_shipped () =
  let attrs = Attrs.create ~n_stmts:2 in
  check_int "no diagnostics" 0 (List.length (Engine.preflight attrs));
  let r =
    Engine.analyze ~mode:Engine.Specialized ~preflight:true ~bta_min:3
      (Minic.Gen.image_program ~n_filters:2 ())
  in
  check_int "analysis ran all phases" 3 (List.length r.Engine.phases)

let suites =
  [ ( "effects",
      [ Alcotest.test_case "segment lattice" `Quick effects_seg_lattice;
        Alcotest.test_case "small program" `Quick effects_small_program;
        Alcotest.test_case "image program" `Quick effects_image_program ] );
    ( "infer",
      [ Alcotest.test_case "models well-formed" `Quick models_wellformed;
        Alcotest.test_case "derivation flags" `Quick derivation_flags;
        Alcotest.test_case "derived == shipped shapes" `Quick
          derived_shapes_match_shipped ] );
    ( "spec-lint",
      [ Alcotest.test_case "shipped declarations clean" `Quick
          shipped_declarations_clean;
        Alcotest.test_case "wrong declaration unsound" `Quick
          wrong_declaration_unsound;
        Alcotest.test_case "both verdicts" `Quick cross_declaration_both_verdicts;
        Alcotest.test_case "agrees with guard" `Quick lint_agrees_with_guard ] );
    ( "residual-lint",
      [ Alcotest.test_case "shipped residual clean" `Quick residual_shipped_clean;
        Alcotest.test_case "flags defects" `Quick residual_flags_defects;
        Alcotest.test_case "calls kill facts" `Quick residual_calls_kill_facts ] );
    ( "lint-report",
      [ Alcotest.test_case "grouped report" `Quick finding_report_groups;
        Alcotest.test_case "dedup by rule+location" `Quick finding_dedup;
        Alcotest.test_case "engine preflight" `Quick
          engine_preflight_accepts_shipped ] );
    ( "lattice-properties",
      [ QCheck_alcotest.to_alcotest prop_effects_join_comm;
        QCheck_alcotest.to_alcotest prop_effects_join_assoc;
        QCheck_alcotest.to_alcotest prop_effects_join_idem;
        QCheck_alcotest.to_alcotest prop_effects_join_absorbs;
        QCheck_alcotest.to_alcotest prop_regions_join_comm;
        QCheck_alcotest.to_alcotest prop_regions_join_assoc;
        QCheck_alcotest.to_alcotest prop_regions_join_idem_bounds;
        QCheck_alcotest.to_alcotest prop_regions_disjoint_concrete;
        QCheck_alcotest.to_alcotest prop_regions_inter_algebra;
        QCheck_alcotest.to_alcotest prop_regions_widen_terminates ] ) ]
