(* Tests for the production-layer extras: asynchronous write-out, the
   checkpoint manager, checkpoint diffing, the specialized-plan cache and
   the dead-code consumer of the side-effect analysis. *)

open Ickpt_runtime
open Ickpt_core
open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp name =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists path then Sys.remove path;
  path

(* ---- async writer ------------------------------------------------------- *)

let seg i body =
  { Segment.kind = (if i = 0 then Segment.Full else Segment.Incremental);
    seq = i;
    roots = [ 0 ];
    body }

let async_roundtrip () =
  let path = temp "ickpt_async_roundtrip.log" in
  let w = Async_writer.create ~path () in
  for i = 0 to 9 do
    Async_writer.enqueue w (seg i (String.make (100 * (i + 1)) 'x'))
  done;
  Async_writer.flush w;
  check_int "flushed" 0 (Async_writer.pending w);
  Async_writer.close w;
  let { Storage.segments; torn_tail; _ } = Storage.load path in
  check_bool "not torn" false torn_tail;
  check_int "all segments" 10 (List.length segments);
  (* FIFO order preserved *)
  List.iteri (fun i s -> check_int "order" i s.Segment.seq) segments;
  Sys.remove path

let async_close_drains () =
  let path = temp "ickpt_async_drain.log" in
  let w = Async_writer.create ~queue_limit:2 ~path () in
  for i = 0 to 19 do
    Async_writer.enqueue w (seg i "body")
  done;
  (* No flush: close must still drain everything. *)
  Async_writer.close w;
  check_int "all written" 20 (List.length (Storage.load path).Storage.segments);
  Sys.remove path

let async_use_after_close () =
  let path = temp "ickpt_async_closed.log" in
  let w = Async_writer.create ~path () in
  Async_writer.close w;
  Async_writer.close w;
  (* idempotent *)
  (match Async_writer.enqueue w (seg 0 "x") with
  | _ -> Alcotest.fail "enqueue after close accepted"
  | exception Failure _ -> ());
  Sys.remove path

(* ---- manager ------------------------------------------------------------ *)

let manager_policy_and_persistence () =
  let env = make_env () in
  let root = build env (Pair (1, 2, Some (Leaf 3), None)) in
  let path = temp "ickpt_manager.log" in
  let m =
    Manager.create ~policy:(Policy.Full_every 3) env.schema ~path
  in
  (* seq 0 full, 1-2 incremental, 3 full ... *)
  let kinds = ref [] in
  for i = 0 to 5 do
    Barrier.set_int root 0 i;
    let taken = Manager.checkpoint m [ root ] in
    kinds := taken.Chain.segment.Segment.kind :: !kinds
  done;
  Manager.close m;
  let expected =
    Segment.[ Full; Incremental; Incremental; Full; Incremental; Incremental ]
  in
  check_bool "kinds follow policy" true (List.rev !kinds = expected);
  (* Recovery from disk sees the final state. *)
  (match Manager.recover_latest env.schema ~path with
  | Ok (_, [ root' ]) -> check_int "final value" 5 root'.Model.ints.(0)
  | Ok _ -> Alcotest.fail "wrong root count"
  | Error e -> Alcotest.fail e);
  Sys.remove path

let manager_async_and_compaction () =
  let env = make_env () in
  let root = build env (Leaf 0) in
  let path = temp "ickpt_manager_async.log" in
  let m = Manager.create ~async:true ~compact_above:4 env.schema ~path in
  for i = 1 to 10 do
    Barrier.set_int root 0 i;
    ignore (Manager.checkpoint m [ root ])
  done;
  check_bool "auto-compaction bounded the chain" true
    (Manager.segments_on_disk m <= 5);
  Manager.flush m;
  Manager.close m;
  (match Manager.recover_latest env.schema ~path with
  | Ok (_, [ root' ]) -> check_int "state survives compaction" 10 root'.Model.ints.(0)
  | Ok _ -> Alcotest.fail "wrong root count"
  | Error e -> Alcotest.fail e);
  Sys.remove path

let manager_checkpoint_with_specialized () =
  let env = make_env () in
  let root = build env (Pair (7, 8, Some (Leaf 9), None)) in
  let path = temp "ickpt_manager_spec.log" in
  let m = Manager.create env.schema ~path in
  (* base full *)
  ignore (Manager.checkpoint m [ root ]);
  Barrier.set_int root 1 42;
  let shape =
    Jspec.Sclass.shape env.pair
      [| Jspec.Sclass.Exact (Jspec.Sclass.leaf ~status:Jspec.Sclass.Clean env.leaf);
         Jspec.Sclass.Null_child |]
  in
  let runner = Jspec.Compile.residual (Jspec.Pe.specialize shape) in
  let seg =
    Manager.checkpoint_with m [ root ] ~body:(fun d roots ->
        List.iter (fun r -> runner d r) roots)
  in
  check_bool "specialized segment recorded something" true
    (Segment.body_size seg > 0);
  Manager.close m;
  (match Manager.recover_latest env.schema ~path with
  | Ok (_, [ root' ]) -> check_int "specialized write recovered" 42 root'.Model.ints.(1)
  | Ok _ -> Alcotest.fail "wrong root count"
  | Error e -> Alcotest.fail e);
  Sys.remove path

let manager_resumes_sequence () =
  let env = make_env () in
  let root = build env (Leaf 1) in
  let path = temp "ickpt_manager_resume.log" in
  let m = Manager.create env.schema ~path in
  ignore (Manager.checkpoint m [ root ]);
  Barrier.touch root;
  ignore (Manager.checkpoint m [ root ]);
  Manager.close m;
  (* A second manager continues the chain instead of restarting it. *)
  let m2 = Manager.create env.schema ~path in
  check_int "resumed at seq 2" 2 (Chain.next_seq (Manager.chain m2));
  Barrier.set_int root 0 99;
  ignore (Manager.checkpoint m2 [ root ]);
  Manager.close m2;
  (match Manager.recover_latest env.schema ~path with
  | Ok (_, [ root' ]) -> check_int "post-resume state" 99 root'.Model.ints.(0)
  | Ok _ -> Alcotest.fail "wrong root count"
  | Error e -> Alcotest.fail e);
  Sys.remove path

(* Stateful property: any interleaving of mutations, checkpoints and
   compactions, ending in a checkpoint, recovers from disk to exactly the
   live state. *)
type manager_op = Op_mutate of Test_util.mutation | Op_checkpoint | Op_compact

let manager_op_gen =
  let open QCheck2.Gen in
  frequency
    [ (5, map (fun m -> Op_mutate m) Test_util.mutation_gen);
      (3, return Op_checkpoint);
      (1, return Op_compact) ]

let prop_manager_random_ops =
  QCheck2.Test.make ~name:"manager: random op sequences recover to live state"
    ~count:60
    QCheck2.Gen.(pair Test_util.tree_gen (list_size (int_range 0 20) manager_op_gen))
    (fun (tree, ops) ->
      let env = make_env () in
      let root = build env tree in
      let objs = Array.of_list (all_objects root) in
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "ickpt_mgr_prop_%d.log" (Hashtbl.hash (tree, ops)))
      in
      if Sys.file_exists path then Sys.remove path;
      let m = Manager.create ~policy:(Policy.Full_every 4) env.schema ~path in
      List.iter
        (fun op ->
          match op with
          | Op_mutate { victim; slot; value } ->
              let o = objs.(victim mod Array.length objs) in
              let n = Array.length o.Model.ints in
              if n > 0 then Barrier.set_int o (slot mod n) value
              else Barrier.touch o
          | Op_checkpoint -> ignore (Manager.checkpoint m [ root ])
          | Op_compact -> Manager.compact_now m)
        (ops @ [ Op_checkpoint ]);
      Manager.close m;
      let ok =
        match Manager.recover_latest env.schema ~path with
        | Ok (_, [ root' ]) -> Deep_eq.equal root root'
        | Ok _ | Error _ -> false
      in
      if Sys.file_exists path then Sys.remove path;
      ok)

(* ---- diff ---------------------------------------------------------------- *)

let diff_detects_changes () =
  let env = make_env () in
  let root = build env (Pair (1, 2, Some (Leaf 3), Some (Leaf 4))) in
  let chain_a = Chain.create env.schema in
  ignore (Chain.take_full chain_a [ root ]);
  (* Evolve: change a scalar, drop a child, touch nothing else. *)
  let chain_b = Chain.create env.schema in
  Barrier.set_int root 0 100;
  (match root.Model.children.(1) with
  | Some _ -> Barrier.set_child root 1 None
  | None -> Alcotest.fail "missing child");
  ignore (Chain.take_full chain_b [ root ]);
  let changes = Diff.chains chain_a chain_b in
  let has pred = List.exists pred changes in
  check_bool "int change found" true
    (has (function
      | Diff.Int_changed { slot = 0; before = 1; after = 100; _ } -> true
      | _ -> false));
  check_bool "child change found" true
    (has (function
      | Diff.Child_changed { slot = 1; after; _ } -> after = Model.null_id
      | _ -> false));
  (* The orphaned leaf disappears from the second full checkpoint. *)
  check_bool "removal found" true
    (has (function Diff.Removed _ -> true | _ -> false));
  check_bool "summary mentions changes" true
    (Test_util.contains_substring (Diff.summary changes) "objects changed")

let diff_empty_on_identical () =
  let env = make_env () in
  let root = build env (Pair (1, 2, Some (Leaf 3), None)) in
  let chain_a = Chain.create env.schema in
  ignore (Chain.take_full chain_a [ root ]);
  let chain_b = Chain.create env.schema in
  Barrier.touch root;
  ignore (Chain.take_full chain_b [ root ]);
  Alcotest.(check (list string))
    "no changes" []
    (List.map (Format.asprintf "%a" Diff.pp_change) (Diff.chains chain_a chain_b))

let diff_incremental_shows_iteration_delta () =
  (* The analysis use case: diff two consecutive chains to see exactly
     which annotations one BTA iteration changed. *)
  let env = make_env () in
  let root = build env (Pair (0, 0, Some (Leaf 0), None)) in
  let chain = Chain.create env.schema in
  ignore (Chain.take_full chain [ root ]);
  let before = Chain.segments chain in
  (match root.Model.children.(0) with
  | Some leaf -> Barrier.set_int leaf 0 7
  | None -> Alcotest.fail "missing leaf");
  ignore (Chain.take_incremental chain [ root ]);
  let changes =
    Diff.segments env.schema ~before ~after:(Chain.segments chain)
  in
  check_int "exactly one change" 1 (List.length changes)

(* Property: the diff between two consecutive checkpoint states names
   exactly the objects whose values the mutation script changed. *)
let prop_diff_matches_barrier_trace =
  QCheck2.Test.make ~name:"diff == value-changing writes between checkpoints"
    ~count:80
    QCheck2.Gen.(pair Test_util.tree_gen (list_size (int_range 0 10) Test_util.mutation_gen))
    (fun (tree, muts) ->
      let env = make_env () in
      let root = build env tree in
      let chain = Chain.create env.schema in
      ignore (Chain.take_full chain [ root ]);
      let before = Chain.segments chain in
      (* Apply mutations; the expected diff is the set of objects whose
         final values differ from the snapshot (a write-then-revert
         sequence dirties the flag but produces no state change, and the
         diff rightly shows nothing for it). *)
      let objs = Array.of_list (all_objects root) in
      let snapshot =
        Array.map (fun (o : Model.obj) -> Array.copy o.Model.ints) objs
      in
      List.iter
        (fun { Test_util.victim; slot; value } ->
          let o = objs.(victim mod Array.length objs) in
          let n = Array.length o.Model.ints in
          if n > 0 then ignore (Barrier.set_int_if_changed o (slot mod n) value))
        muts;
      let changed = Hashtbl.create 16 in
      Array.iteri
        (fun i (o : Model.obj) ->
          if o.Model.ints <> snapshot.(i) then
            Hashtbl.replace changed o.Model.info.Model.id ())
        objs;
      ignore (Chain.take_incremental chain [ root ]);
      let diff_ids = Hashtbl.create 16 in
      List.iter
        (function
          | Diff.Int_changed { id; _ } -> Hashtbl.replace diff_ids id ()
          | Diff.Child_changed { id; _ } | Diff.Class_changed { id; _ } ->
              Hashtbl.replace diff_ids id ()
          | Diff.Added _ | Diff.Removed _ -> ())
        (Diff.segments env.schema ~before ~after:(Chain.segments chain));
      let to_sorted tbl =
        Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
      in
      to_sorted diff_ids = to_sorted changed)

(* ---- spec cache ----------------------------------------------------------- *)

let spec_cache_shares () =
  let env = make_env () in
  let cache = Jspec.Spec_cache.create () in
  let shape1 =
    Jspec.Sclass.shape env.pair
      [| Jspec.Sclass.Exact (Jspec.Sclass.leaf env.leaf); Jspec.Sclass.Null_child |]
  in
  (* Structurally identical but separately constructed. *)
  let shape2 =
    Jspec.Sclass.shape env.pair
      [| Jspec.Sclass.Exact (Jspec.Sclass.leaf env.leaf); Jspec.Sclass.Null_child |]
  in
  let different =
    Jspec.Sclass.shape env.pair
      [| Jspec.Sclass.Exact (Jspec.Sclass.leaf ~status:Jspec.Sclass.Clean env.leaf);
         Jspec.Sclass.Null_child |]
  in
  let use shape =
    let (_ : Ickpt_stream.Out_stream.t -> Model.obj -> unit) =
      Jspec.Spec_cache.runner cache shape
    in
    ()
  in
  use shape1;
  use shape2;
  use different;
  check_int "two distinct entries" 2 (Jspec.Spec_cache.size cache);
  check_int "one hit" 1 (Jspec.Spec_cache.hits cache);
  check_int "two misses" 2 (Jspec.Spec_cache.misses cache);
  check_bool "keys distinguish statuses" true
    (Jspec.Spec_cache.shape_key shape1 <> Jspec.Spec_cache.shape_key different);
  check_bool "keys canonical" true
    (Jspec.Spec_cache.shape_key shape1 = Jspec.Spec_cache.shape_key shape2)

let spec_cache_runner_correct () =
  let env = make_env () in
  let cache = Jspec.Spec_cache.create () in
  let shape = Jspec.Sclass.leaf env.leaf in
  let o = Heap.alloc env.heap env.leaf in
  Barrier.set_int o 0 5;
  let d1 = Ickpt_stream.Out_stream.create () in
  Ickpt_core.Checkpointer.incremental d1 o;
  Barrier.touch o;
  let d2 = Ickpt_stream.Out_stream.create () in
  (Jspec.Spec_cache.runner cache shape) d2 o;
  Alcotest.(check string)
    "cached runner output" (Ickpt_stream.Out_stream.contents d1)
    (Ickpt_stream.Out_stream.contents d2)

(* ---- dead code ------------------------------------------------------------ *)

let deadcode_finds_histogram () =
  let p = Minic.Gen.image_program ~n_filters:4 () in
  let env = Minic.Check.check p in
  let dead = Ickpt_analysis.Deadcode.dead_statements env in
  check_bool "found at least one dead pass" true (dead <> []);
  let transformed, removed = Ickpt_analysis.Deadcode.eliminate env in
  check_int "counts agree" (List.length dead) removed;
  (* Behaviour preserved: same checksum, fewer steps. *)
  let before = Minic.Interp.run p in
  let after = Minic.Interp.run transformed in
  check_bool "same result" true
    (before.Minic.Interp.return_value = after.Minic.Interp.return_value);
  check_bool "strictly less work" true
    (after.Minic.Interp.steps < before.Minic.Interp.steps);
  (* And the histogram pass specifically is among the removals. *)
  let src = Minic.Pp.to_string transformed in
  check_bool "histogram call gone from main" true
    (not (Test_util.contains_substring src "compute_histogram();"))

let deadcode_keeps_live_pipeline () =
  let src =
    "int a; int out;\n\
     void produce() { a = 7; }\n\
     void consume() { out = a; }\n\
     int main() { produce(); consume(); return out; }"
  in
  let env = Minic.Check.check (Minic.Parser.parse src) in
  Alcotest.(check (list int))
    "nothing dead" []
    (Ickpt_analysis.Deadcode.dead_statements env)

let deadcode_removes_unread_writer () =
  let src =
    "int a; int junk;\n\
     void pollute() { junk = 3; }\n\
     void produce() { a = 7; }\n\
     int main() { pollute(); produce(); return a; }"
  in
  let env = Minic.Check.check (Minic.Parser.parse src) in
  let dead = Ickpt_analysis.Deadcode.dead_statements env in
  check_int "exactly the polluter" 1 (List.length dead)

let prop_deadcode_preserves_semantics =
  QCheck2.Test.make ~name:"dead-code elimination preserves main's result"
    ~count:25
    QCheck2.Gen.(int_range 1 9)
    (fun n_filters ->
      let p = Minic.Gen.image_program ~width:10 ~height:8 ~n_filters () in
      let env = Minic.Check.check p in
      let transformed, _ = Ickpt_analysis.Deadcode.eliminate env in
      (Minic.Interp.run p).Minic.Interp.return_value
      = (Minic.Interp.run transformed).Minic.Interp.return_value)

let suites =
  [ ( "async-writer",
      [ Alcotest.test_case "roundtrip" `Quick async_roundtrip;
        Alcotest.test_case "close drains" `Quick async_close_drains;
        Alcotest.test_case "use after close" `Quick async_use_after_close ] );
    ( "manager",
      [ Alcotest.test_case "policy and persistence" `Quick
          manager_policy_and_persistence;
        Alcotest.test_case "async and compaction" `Quick
          manager_async_and_compaction;
        Alcotest.test_case "specialized body" `Quick
          manager_checkpoint_with_specialized;
        Alcotest.test_case "resumes sequence" `Quick manager_resumes_sequence;
        QCheck_alcotest.to_alcotest prop_manager_random_ops ] );
    ( "diff",
      [ Alcotest.test_case "detects changes" `Quick diff_detects_changes;
        Alcotest.test_case "empty on identical" `Quick diff_empty_on_identical;
        Alcotest.test_case "iteration delta" `Quick
          diff_incremental_shows_iteration_delta;
        QCheck_alcotest.to_alcotest prop_diff_matches_barrier_trace ] );
    ( "spec-cache",
      [ Alcotest.test_case "shares structurally equal shapes" `Quick
          spec_cache_shares;
        Alcotest.test_case "cached runner correct" `Quick
          spec_cache_runner_correct ] );
    ( "deadcode",
      [ Alcotest.test_case "finds dead histogram pass" `Quick
          deadcode_finds_histogram;
        Alcotest.test_case "keeps live pipeline" `Quick
          deadcode_keeps_live_pipeline;
        Alcotest.test_case "removes unread writer" `Quick
          deadcode_removes_unread_writer;
        QCheck_alcotest.to_alcotest prop_deadcode_preserves_semantics ] ) ]
