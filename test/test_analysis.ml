open Ickpt_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

(* ---- attrs -------------------------------------------------------------- *)

let attrs_basics () =
  let attrs = Attrs.create ~n_stmts:3 in
  check_int "n_stmts" 3 (Attrs.n_stmts attrs);
  check_int "roots" 3 (List.length (Attrs.roots attrs));
  (* 6 objects per statement: attr, se, btentry, bt, etentry, et *)
  check_int "heap population" 18 (Ickpt_runtime.Heap.count (Attrs.heap attrs));
  check_int "bt starts unknown" Attrs.bt_unknown (Attrs.get_bt attrs 0);
  check_bool "set_bt changes" true (Attrs.set_bt attrs 0 Attrs.bt_static);
  check_bool "set_bt same is no-op" false (Attrs.set_bt attrs 0 Attrs.bt_static);
  check_int "get_bt" Attrs.bt_static (Attrs.get_bt attrs 0);
  check_bool "set_et changes" true (Attrs.set_et attrs 2 Attrs.et_run_time);
  check_int "get_et" Attrs.et_run_time (Attrs.get_et attrs 2)

let attrs_se_lists () =
  let attrs = Attrs.create ~n_stmts:2 in
  check_ints "reads empty" [] (Attrs.get_reads attrs 0);
  check_bool "set_reads changes" true (Attrs.set_reads attrs 0 [ 1; 4; 9 ]);
  check_ints "reads stored" [ 1; 4; 9 ] (Attrs.get_reads attrs 0);
  check_bool "same list is no-op" false (Attrs.set_reads attrs 0 [ 1; 4; 9 ]);
  check_bool "different list changes" true (Attrs.set_reads attrs 0 [ 1; 4 ]);
  check_ints "reads replaced" [ 1; 4 ] (Attrs.get_reads attrs 0);
  check_bool "writes independent" true (Attrs.set_writes attrs 0 [ 2 ]);
  check_ints "writes stored" [ 2 ] (Attrs.get_writes attrs 0);
  check_ints "other stmt untouched" [] (Attrs.get_reads attrs 1)

let attrs_dirtiness () =
  let attrs = Attrs.create ~n_stmts:1 in
  let heap = Attrs.heap attrs in
  Ickpt_runtime.Heap.clear_all_modified heap;
  ignore (Attrs.set_bt attrs 0 Attrs.bt_dynamic);
  (* Only the BT leaf was dirtied. *)
  check_int "one object dirty" 1 (Ickpt_runtime.Heap.modified_count heap);
  Ickpt_runtime.Heap.clear_all_modified heap;
  ignore (Attrs.set_reads attrs 0 [ 3; 5 ]);
  (* The SEEntry plus two fresh VarRefs. *)
  check_int "three objects dirty" 3 (Ickpt_runtime.Heap.modified_count heap)

let attrs_shapes_validate () =
  let attrs = Attrs.create ~n_stmts:1 in
  List.iter Jspec.Sclass.validate
    [ Attrs.sea_shape attrs; Attrs.bta_shape attrs; Attrs.eta_shape attrs ];
  (* BTA shape: exactly one tracked node (the BT leaf). *)
  check_int "bta tracked" 1 (Jspec.Sclass.tracked_count (Attrs.bta_shape attrs));
  check_int "eta tracked" 1 (Jspec.Sclass.tracked_count (Attrs.eta_shape attrs));
  check_int "sea tracked" 1 (Jspec.Sclass.tracked_count (Attrs.sea_shape attrs))

(* ---- side-effect analysis ----------------------------------------------- *)

let sea_program =
  "int g; int h; int arr[4];\n\
   void set_g(int v) { g = v; }\n\
   int get_h() { return h; }\n\
   int main() { int t; t = get_h(); set_g(t + arr[0]); arr[1] = g; return t; }"

let sea_sets () =
  let p = Minic.Parser.parse sea_program in
  let env = Minic.Check.check p in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  let iters = Sea.run env attrs in
  check_bool "needs >= 2 iterations (summaries)" true (iters >= 2);
  let gid x = Option.get (Minic.Check.global_id env x) in
  (* Find statements by shape: sid order is preorder. Statements are:
     0: g = v          (set_g)
     1: return h       (get_h)
     2: t = get_h()    (main)
     3: set_g(t+arr[0])
     4: arr[1] = g
     5: return t *)
  check_ints "stmt0 writes g" [ gid "g" ] (Attrs.get_writes attrs 0);
  check_ints "stmt1 reads h" [ gid "h" ] (Attrs.get_reads attrs 1);
  check_ints "call inherits callee reads" [ gid "h" ] (Attrs.get_reads attrs 2);
  check_ints "call inherits callee writes" [ gid "g" ]
    (Attrs.get_writes attrs 3);
  check_ints "store writes arr" [ gid "arr" ] (Attrs.get_writes attrs 4);
  check_ints "store reads g" [ gid "g" ] (Attrs.get_reads attrs 4)

let sea_summaries () =
  let p = Minic.Parser.parse sea_program in
  let env = Minic.Check.check p in
  let gid x = Option.get (Minic.Check.global_id env x) in
  let summaries = Sea.summaries env in
  let s = List.assoc "main" summaries in
  check_bool "main reads h and arr" true
    (Sea.Int_set.mem (gid "h") s.Sea.reads
    && Sea.Int_set.mem (gid "arr") s.Sea.reads);
  check_bool "main writes g and arr" true
    (Sea.Int_set.mem (gid "g") s.Sea.writes
    && Sea.Int_set.mem (gid "arr") s.Sea.writes)

(* ---- binding-time analysis ---------------------------------------------- *)

let bta_src =
  "int s = 1; int d = 2; int z; int w; int u;\n\
   int twice(int x) { return x * 2; }\n\
   int main() {\n\
   int a; a = s + 1;\n\
   z = twice(s);\n\
   w = twice(d);\n\
   if (d > 0) { u = s; }\n\
   return a;\n\
   }"

let bta_expected () =
  let p = Minic.Parser.parse bta_src in
  let env = Minic.Check.check p in
  let anns = Bta_phase.annotate ~division:[ "s" ] env in
  let bt sid = List.assoc sid anns in
  (* sid 0: return x*2 (twice) — param joins static AND dynamic call sites
     -> dynamic. *)
  check_int "twice body dynamic (joined)" Attrs.bt_dynamic (bt 0);
  (* sid 1: a = s + 1 static *)
  check_int "a = s+1 static" Attrs.bt_static (bt 1);
  (* sid 2: z = twice(s): return bt is joined dynamic *)
  check_int "z via twice dynamic return" Attrs.bt_dynamic (bt 2);
  (* sid 3: w = twice(d) dynamic *)
  check_int "w dynamic" Attrs.bt_dynamic (bt 3);
  (* sid 4: if (d > 0) dynamic condition *)
  check_int "if on d dynamic" Attrs.bt_dynamic (bt 4);
  (* sid 5: u = s under dynamic control -> dynamic *)
  check_int "assignment under dynamic control" Attrs.bt_dynamic (bt 5);
  (* sid 6: return a (a static) *)
  check_int "return a static" Attrs.bt_static (bt 6)

let bta_monotone_fixpoint () =
  let p = Minic.Gen.image_program ~n_filters:4 () in
  let env = Minic.Check.check p in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  let iters = Bta_phase.run ~division:Minic.Gen.static_globals env attrs in
  check_bool "terminates" true (iters >= 1 && iters < 50);
  let converged =
    List.init (Attrs.n_stmts attrs) (fun sid -> Attrs.get_bt attrs sid)
  in
  (* A second independent run (which re-ascends from bottom, temporarily
     downgrading annotations) must converge to the same fixpoint. *)
  let attrs2 = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  ignore (Bta_phase.run ~division:Minic.Gen.static_globals env attrs2);
  let converged2 =
    List.init (Attrs.n_stmts attrs2) (fun sid -> Attrs.get_bt attrs2 sid)
  in
  check_bool "deterministic fixpoint" true (converged = converged2);
  (* The final stored round of a converged run changes nothing, so one
     more incremental checkpoint after a checkpoint would be empty. *)
  Ickpt_runtime.Heap.clear_all_modified (Attrs.heap attrs);
  let changed = ref false in
  List.iteri
    (fun sid bt -> if Attrs.set_bt attrs sid bt then changed := true)
    converged;
  check_bool "re-storing fixpoint is silent" false !changed

let bta_min_iterations () =
  let p = Minic.Gen.small_program () in
  let env = Minic.Check.check p in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  let count = ref 0 in
  let iters =
    Bta_phase.run ~on_iteration:(fun _ -> incr count) ~min_iterations:9
      ~division:[ "a" ] env attrs
  in
  check_bool "at least 9" true (iters >= 9);
  check_int "callback per iteration" iters !count

(* ---- evaluation-time analysis ------------------------------------------- *)

let eta_expected () =
  let src =
    "int s = 1; int d = 2; int z; int u;\n\
     int main() {\n\
     z = s + 1;\n\
     while (d > 0) { u = s; d = d - 1; }\n\
     return z;\n\
     }"
  in
  let p = Minic.Parser.parse src in
  let env = Minic.Check.check p in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  ignore (Bta_phase.run ~division:[ "s" ] env attrs);
  ignore (Eta_phase.run ~division:[ "s" ] env attrs);
  (* sid 0: z = s + 1 — static and spec-time evaluable *)
  check_int "static assign spec-time" Attrs.et_spec_time (Attrs.get_et attrs 0);
  (* sid 2: u = s under dynamic while — run-time *)
  check_int "under dynamic loop run-time" Attrs.et_run_time
    (Attrs.get_et attrs 2)

(* ---- engine ------------------------------------------------------------- *)

let run_engine mode =
  Engine.analyze ~mode ~bta_min:5 ~eta_min:3
    (Minic.Gen.image_program ~n_filters:4 ())

let sizes r =
  List.map
    (fun (p : Engine.phase_report) ->
      List.map (fun (s : Engine.iteration_stat) -> s.Engine.bytes) p.Engine.stats)
    r.Engine.phases

let engine_specialized_matches_incremental () =
  let ri = run_engine Engine.Incremental in
  let rs = run_engine Engine.Specialized in
  check_bool "same per-iteration sizes" true (sizes ri = sizes rs);
  (* And bytes, via recovery equality of final states *)
  check_bool "same recovered annotations" true
    (Engine.recover_annotations ri = Engine.recover_annotations rs)

let engine_full_dominates () =
  let rf = run_engine Engine.Full in
  let ri = run_engine Engine.Incremental in
  let total r =
    List.fold_left (fun acc p -> acc + Engine.phase_bytes p) 0 r.Engine.phases
  in
  check_bool "incremental smaller" true (total ri < total rf);
  (* Full-mode BTA/ETA iterations all have the same size (the heap stops
     growing once SEA's side-effect lists have converged); incremental
     shrinks. *)
  (match sizes rf with
  | [ _sea; (first :: _ as bta_sizes); eta_sizes ] ->
      check_bool "full bta sizes constant" true
        (List.for_all (( = ) first) bta_sizes);
      check_bool "full eta sizes constant" true
        (List.for_all (( = ) first) eta_sizes)
  | _ -> Alcotest.fail "expected three phases");
  match sizes ri with
  | sea_sizes :: _ ->
      check_bool "incremental non-increasing tail" true
        (match List.rev sea_sizes with last :: _ -> last <= List.hd sea_sizes | [] -> true)
  | [] -> Alcotest.fail "no phases"

let engine_guarded_specialization () =
  (* With guards on, the phase declarations must actually hold. *)
  let r =
    Engine.analyze ~mode:Engine.Specialized ~guard:true ~bta_min:3
      (Minic.Gen.image_program ~n_filters:3 ())
  in
  check_int "three phases" 3 (List.length r.Engine.phases)

let engine_recovery_matches_live () =
  let r = run_engine Engine.Incremental in
  let recovered = Engine.recover_annotations r in
  let live =
    List.init r.Engine.n_stmts (fun sid ->
        ( Attrs.get_bt (Engine.attrs r) sid,
          Attrs.get_et (Engine.attrs r) sid,
          Attrs.get_reads (Engine.attrs r) sid,
          Attrs.get_writes (Engine.attrs r) sid ))
  in
  check_bool "recovered = live" true (recovered = live)

let engine_analyses_mode_independent () =
  let a = run_engine Engine.Full in
  let b = run_engine Engine.Specialized in
  check_bool "annotations independent of checkpoint mode" true
    (Engine.recover_annotations a = Engine.recover_annotations b)

let engine_storage_roundtrip () =
  let r = run_engine Engine.Incremental in
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "ickpt_engine_chain.log"
  in
  if Sys.file_exists path then Sys.remove path;
  Ickpt_core.Storage.write_chain ~path r.Engine.chain;
  let chain, torn =
    Ickpt_core.Storage.load_chain (Attrs.schema (Engine.attrs r)) ~path
  in
  check_bool "not torn" false torn;
  check_int "segment count" (Ickpt_core.Chain.length r.Engine.chain)
    (Ickpt_core.Chain.length chain);
  (match Ickpt_core.Chain.recover chain with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Sys.remove path

(* ---- declaration inference (future-work feature) ------------------------ *)

let decls_infer_bta_shape () =
  let p = Minic.Gen.image_program ~n_filters:3 () in
  let env = Minic.Check.check p in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count p) in
  ignore (Sea.run env attrs);
  (* Observe one BTA run; the inferred shape must track only BT leaves. *)
  let _, inferred =
    Decls.infer attrs (fun () ->
        Bta_phase.run ~division:Minic.Gen.static_globals env attrs)
  in
  check_int "inferred tracks exactly BT" 1 (Jspec.Sclass.tracked_count inferred);
  (* The inferred shape produces the same residual code size as the
     hand-written declaration. *)
  let by_hand = Jspec.Pe.specialize (Attrs.bta_shape attrs) in
  let by_inference = Jspec.Pe.specialize inferred in
  check_int "same residual size"
    (Jspec.Cklang.stmt_count by_hand.Jspec.Pe.body)
    (Jspec.Cklang.stmt_count by_inference.Jspec.Pe.body)

let suites =
  [ ( "attrs",
      [ Alcotest.test_case "basics" `Quick attrs_basics;
        Alcotest.test_case "se lists" `Quick attrs_se_lists;
        Alcotest.test_case "dirtiness" `Quick attrs_dirtiness;
        Alcotest.test_case "shapes validate" `Quick attrs_shapes_validate ] );
    ( "sea",
      [ Alcotest.test_case "per-statement sets" `Quick sea_sets;
        Alcotest.test_case "summaries" `Quick sea_summaries ] );
    ( "bta",
      [ Alcotest.test_case "expected annotations" `Quick bta_expected;
        Alcotest.test_case "monotone fixpoint" `Quick bta_monotone_fixpoint;
        Alcotest.test_case "min iterations" `Quick bta_min_iterations ] );
    ("eta", [ Alcotest.test_case "expected annotations" `Quick eta_expected ]);
    ( "engine",
      [ Alcotest.test_case "specialized == incremental" `Quick
          engine_specialized_matches_incremental;
        Alcotest.test_case "full dominates" `Quick engine_full_dominates;
        Alcotest.test_case "guarded specialization" `Quick
          engine_guarded_specialization;
        Alcotest.test_case "recovery matches live" `Quick
          engine_recovery_matches_live;
        Alcotest.test_case "mode independence" `Quick
          engine_analyses_mode_independent;
        Alcotest.test_case "storage roundtrip" `Quick engine_storage_roundtrip
      ] );
    ( "decls",
      [ Alcotest.test_case "infer bta shape" `Quick decls_infer_bta_shape ] )
  ]
