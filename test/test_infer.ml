(* Fully automatic checkpoint inference: phase discovery, shape
   inference, the Auto_spec pipeline (verified-or-refusal), the engine's
   annotation-free mode, the inferred-run differential oracle over every
   example workload and over random programs, and the uniform JSON
   envelope shared by the four CLI subcommands. *)

open Ickpt_analysis
module Pd = Staticcheck.Phase_discover
module Si = Staticcheck.Shape_infer
module As = Staticcheck.Auto_spec
module Be = Staticcheck.Barrier_elide
module Fi = Staticcheck.Finding

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Same probing as test_elide: runtest executes in the test directory,
   dune exec at the workspace root. *)
let example_path file =
  let candidates =
    [ Filename.concat "../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file;
      Filename.concat "examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "example workload %s not found" file

let example_program file =
  let ic = open_in_bin (example_path file) in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Minic.Parser.parse src

let example_env file = Minic.Check.check (example_program file)

(* ---- phase discovery ------------------------------------------------------- *)

let discover_blur () =
  let phases = Pd.discover (example_env "blur.mc") in
  check_int "blur phase count" 3 (List.length phases);
  let p0 = List.nth phases 0 and p1 = List.nth phases 1
  and p2 = List.nth phases 2 in
  check_string "phase 0 name" "setup:set_kernel" p0.Pd.p_name;
  check_string "phase 1 name" "loop:smooth+commit" p1.Pd.p_name;
  check_bool "phase 0 is setup" false (Pd.is_round p0);
  check_bool "phase 1 is round" true (Pd.is_round p1);
  check_bool "phase 2 is setup" false (Pd.is_round p2);
  Alcotest.(check (list string))
    "phase 1 calls" [ "smooth"; "commit" ] p1.Pd.p_calls;
  (* the one-round program lifts main's locals to globals *)
  check_bool "round lifted a local" true (p1.Pd.p_lifted <> [])

let discover_histogram () =
  let phases = Pd.discover (example_env "histogram.mc") in
  check_int "histogram phase count" 1 (List.length phases);
  let p = List.hd phases in
  check_bool "single setup phase" false (Pd.is_round p);
  Alcotest.(check (list string))
    "calls in first-use order"
    [ "fill"; "clear_histogram"; "accumulate" ]
    p.Pd.p_calls

(* ---- shape inference on blur ---------------------------------------------- *)

let find_phase auto name =
  match
    List.find_opt
      (fun pr -> pr.As.ph.Pd.p_name = name)
      auto.As.a_phases
  with
  | Some pr -> pr
  | None -> Alcotest.failf "phase %s not inferred" name

let blur_inference () =
  let auto = As.infer (example_env "blur.mc") in
  check_bool "pipeline ok" true (As.ok auto);
  (* 3 phases x 7 globals, every synthesized checkpointer verified *)
  check_int "verified specializations" 21 (As.verified_count auto);
  let setup = find_phase auto "setup:set_kernel" in
  let loop = find_phase auto "loop:smooth+commit" in
  (* setup writes only the kernel; the loop never touches it *)
  check_bool "setup kernel region nonempty" false
    (Staticcheck.Regions.is_bot (List.assoc "kernel" setup.As.ph_regions));
  check_bool "loop kernel region empty" true
    (Staticcheck.Regions.is_bot (List.assoc "kernel" loop.As.ph_regions));
  (* the loop dirties all 8 image blocks but only temp's interior 6 *)
  let enc = auto.As.a_encoding in
  check_int "image tracked blocks" 8
    (List.length
       (Si.tracked_blocks enc "image" (List.assoc "image" loop.As.ph_regions)));
  check_int "temp tracked blocks" 6
    (List.length
       (Si.tracked_blocks enc "temp" (List.assoc "temp" loop.As.ph_regions)));
  (* elision: setup keeps only the kernel barrier, elides the rest *)
  let elided = Be.welided setup.As.ph_wplan in
  check_bool "setup elides image" true (List.mem "image" elided);
  check_bool "setup keeps kernel" false (List.mem "kernel" elided);
  (* every verdict in every phase is Verified *)
  List.iter
    (fun pr ->
      List.iter
        (fun (g, v) ->
          check_bool
            (Printf.sprintf "%s/%s verified" pr.As.ph.Pd.p_name g)
            true
            (match v with Staticcheck.Tv.Verified _ -> true | _ -> false))
        pr.As.ph_verdicts)
    auto.As.a_phases

(* The gate gates: a shape mutated between synthesis and validation must
   be refuted, surface as an Error finding, and fail the run. *)
let seeded_unsound_refused () =
  let env = Minic.Check.check (Minic.Gen.image_program ()) in
  let auto = As.infer ~seed_unsound:true env in
  check_bool "seeded run not ok" false (As.ok auto);
  check_bool "error findings present" true
    (Fi.has_errors (As.findings auto));
  check_bool "error scoped to infer-tv" true
    (List.exists
       (fun (f : Fi.t) ->
         f.Fi.severity = Fi.Error
         && String.length f.Fi.scope >= 8
         && String.sub f.Fi.scope 0 8 = "infer-tv")
       (As.findings auto))

(* ---- the engine's annotation-free mode ------------------------------------ *)

(* The inferred run drives the real program through the instrumented
   Wheap; its final scalar state must match the reference interpreter on
   the plain hashtable store. *)
let engine_infer_state () =
  let program = example_program "blur.mc" in
  let report = Engine.analyze ~infer:true program in
  let wheap =
    match Engine.wheap report with
    | Some w -> w
    | None -> Alcotest.fail "inferred run has no wheap"
  in
  let reference = Minic.Interp.run program in
  List.iter
    (fun (name, v) ->
      check_int ("final " ^ name) v (List.assoc name (Wheap.scalar_globals wheap)))
    reference.Minic.Interp.globals;
  check_int "discovered phases" 3 (List.length report.Engine.phases);
  (* 1 base full + setup 1 + round (4 iterations + final guard) + setup 1 *)
  check_int "chain segments" 8
    (Ickpt_core.Chain.length report.Engine.chain);
  check_bool "subject carries the inference" true
    (Engine.auto_spec report <> None);
  match Engine.attrs report with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attrs must reject an inferred report"

(* ---- the differential oracle over the example workloads -------------------- *)

let oracle_outcome name o =
  check_bool (name ^ " incremental chains identical") true
    o.Elide_oracle.identical_incremental;
  check_bool (name ^ " specialized chains identical") true
    o.Elide_oracle.identical_specialized;
  check_bool (name ^ " cross-mode chains identical") true
    o.Elide_oracle.identical_cross_mode;
  check_int (name ^ " I8 violations") 0 (List.length o.Elide_oracle.violations);
  check_bool (name ^ " observed dirty cells") true
    (o.Elide_oracle.dirty_cells > 0)

let oracle_examples_inferred () =
  List.iter
    (fun file ->
      oracle_outcome file
        (Elide_oracle.run_inferred ~name:file (example_program file)))
    [ "blur.mc"; "histogram.mc"; "pagerank.mc"; "kvlog.mc" ]

(* ---- random programs: I8 + byte identity, zero declarations ---------------- *)

(* A failing random seed must be reproducible straight from the CI log:
   print the seed AND the generated program, not just the integer. *)
let print_seeded_program seed =
  Printf.sprintf "seed %d:\n%s" seed
    (Minic.Pp.to_string (Minic.Gen.random_program ~seed ()))

let prop_random_inferred =
  QCheck2.Test.make ~name:"inferred oracle sound on random programs"
    ~count:20 ~print:print_seeded_program
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let program = Minic.Gen.random_program ~seed () in
      let name = Printf.sprintf "random-%d" seed in
      Elide_oracle.ok (Elide_oracle.run_inferred ~name program))

(* ---- the uniform JSON envelope --------------------------------------------- *)

(* A small strict JSON reader — enough to prove each subcommand's output
   is one well-formed object with the shared top-level fields. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "json: %s at %d in %s" msg !pos s in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t')
    do advance () done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'u' ->
              advance ();
              pos := !pos + 4;
              Buffer.add_char b '?'
          | Some c -> Buffer.add_char b c; advance ()
          | None -> fail "dangling escape");
          go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); J_obj [])
        else
          let rec members acc =
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); skip_ws (); members ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); J_arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elems [])
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> pos := !pos + 4; J_bool true
    | Some 'f' -> pos := !pos + 5; J_bool false
    | Some 'n' -> pos := !pos + 4; J_null
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do advance () done;
        if !pos = start then fail "unexpected character"
        else J_num (float_of_string (String.sub s start (!pos - start)))
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with
  | J_obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> Alcotest.failf "envelope missing field %s" k)
  | _ -> Alcotest.fail "envelope is not an object"

let check_envelope ?(tool = "ickpt_lint") ~subcommand ~exit_code raw =
  let j = parse_json raw in
  (match field j "tool" with
  | J_str t -> check_string "tool" tool t
  | _ -> Alcotest.fail "tool field");
  (match field j "schema_version" with
  | J_num v ->
      check_int "schema_version" Fi.schema_version (int_of_float v);
      (* Version 4: parameterized tool field + collision findings. A
         consumer pinned to the old layout must notice the bump. *)
      check_int "schema_version is 4" 4 (int_of_float v)
  | _ -> Alcotest.fail "schema_version must be a number");
  (match field j "subcommand" with
  | J_str s -> check_string "subcommand" subcommand s
  | _ -> Alcotest.fail "subcommand field");
  (match field j "findings" with
  | J_arr _ -> ()
  | _ -> Alcotest.fail "findings must be an array");
  (match (field j "errors", field j "warnings") with
  | J_num _, J_num _ -> ()
  | _ -> Alcotest.fail "error counts");
  match field j "exit_code" with
  | J_num c -> check_int "exit_code" exit_code (int_of_float c)
  | _ -> Alcotest.fail "exit_code field"

let sample_findings =
  [ { Fi.severity = Fi.Warning;
      scope = "elide:loop";
      path = "temp";
      reason = "partially clean" };
    { Fi.severity = Fi.Error;
      scope = "infer-tv:setup";
      path = "image\"quoted\\";
      reason = "refuted:\n  counterexample" } ]

let json_envelopes () =
  (* each subcommand's envelope, including the extras it splices in,
     parses as one object with the shared top-level schema *)
  check_envelope ~subcommand:"lint" ~exit_code:0
    (Fi.envelope ~subcommand:"lint" ~exit_code:0 []);
  check_envelope ~subcommand:"verify" ~exit_code:0
    (Fi.envelope ~subcommand:"verify"
       ~extra:
         [ ("verified", {|[{"shape":"sea","stage":"optimized","vars":3,"paths":8}]|}) ]
       ~exit_code:0 []);
  check_envelope ~subcommand:"elide" ~exit_code:1
    (Fi.envelope ~subcommand:"elide"
       ~extra:[ ("oracle_ok", "false") ]
       ~exit_code:1 sample_findings);
  let raw =
    Fi.envelope ~subcommand:"infer"
      ~extra:
        [ ("phases", "3"); ("verified_specializations", "21");
          ("oracle_ok", "true") ]
      ~exit_code:1 sample_findings
  in
  check_envelope ~subcommand:"infer" ~exit_code:1 raw;
  check_envelope ~subcommand:"live" ~exit_code:0
    (Fi.envelope ~subcommand:"live"
       ~extra:
         [ ("boundaries", {|[{"phase":"loop","live":{"image":"0..63"}}]|});
           ("oracle_ok", "true"); ("baseline_bytes", "573");
           ("minimized_bytes", "330") ]
       ~exit_code:0 []);
  check_envelope ~subcommand:"par" ~exit_code:0
    (Fi.envelope ~subcommand:"par"
       ~extra:
         [ ("domains", "4"); ("par_sweeps", "2"); ("refused_sweeps", "0");
           ("groups", "0"); ("seeded", "false"); ("oracle_ok", "true") ]
       ~exit_code:0 []);
  (* the serve CLI shares the envelope under its own tool name *)
  check_envelope ~tool:"ickpt_serve" ~subcommand:"run" ~exit_code:0
    (Fi.envelope ~tool:"ickpt_serve" ~subcommand:"run"
       ~extra:[ ("tenants", "8"); ("collisions", "0") ]
       ~exit_code:0 []);
  (* findings survive the escape round-trip *)
  let j = parse_json raw in
  match field j "findings" with
  | J_arr [ _; f ] -> (
      match field f "path" with
      | J_str p -> check_string "escaped path" "image\"quoted\\" p
      | _ -> Alcotest.fail "finding path")
  | _ -> Alcotest.fail "two findings expected"

let suites =
  [ ( "phase-discover",
      [ Alcotest.test_case "blur phases" `Quick discover_blur;
        Alcotest.test_case "histogram phases" `Quick discover_histogram ] );
    ( "auto-spec",
      [ Alcotest.test_case "blur inference" `Quick blur_inference;
        Alcotest.test_case "seeded unsound refused" `Quick
          seeded_unsound_refused ] );
    ( "engine-infer",
      [ Alcotest.test_case "state recovery" `Quick engine_infer_state ] );
    ( "infer-oracle",
      [ Alcotest.test_case "example workloads" `Slow oracle_examples_inferred;
        QCheck_alcotest.to_alcotest prop_random_inferred ] );
    ( "json-envelope",
      [ Alcotest.test_case "uniform across subcommands" `Quick json_envelopes ]
    ) ]
