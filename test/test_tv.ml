(* Tests for the translation validator: symbolic heap families, the
   trace-equivalence decision procedure, verdicts on every shipped
   specialization class, the seeded-miscompile harness (every rejected
   mutant comes with a concrete counterexample heap whose replay
   reproduces the divergence on the real backends), and the verdict
   cache. *)

open Ickpt_analysis
open Staticcheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- the shape pool ------------------------------------------------------ *)

(* Every specialization class the repo ships: the three analysis phases
   and the three synthetic-application knowledge levels (on a small
   configuration so exhaustive enumeration stays cheap). *)

let small_synth_config =
  { Ickpt_synth.Synth.n_structures = 1;
    n_lists = 2;
    list_len = 2;
    n_int_fields = 2;
    pct_modified = 100;
    modified_lists = 1;
    last_only = true;
    seed = 42 }

let shipped_shapes () =
  let attrs = Attrs.create ~n_stmts:2 in
  let app = Ickpt_synth.Synth.build small_synth_config in
  [ ("sea", Attrs.sea_shape attrs);
    ("bta", Attrs.bta_shape attrs);
    ("eta", Attrs.eta_shape attrs);
    ("synth-structure", Ickpt_synth.Synth.shape_structure app);
    ("synth-modified-lists", Ickpt_synth.Synth.shape_modified_lists app);
    ("synth-last-only", Ickpt_synth.Synth.shape_last_only app) ]

(* ---- symbolic heap families ---------------------------------------------- *)

let symheap_family () =
  let attrs = Attrs.create ~n_stmts:2 in
  let sym = Symheap.of_shape (Attrs.sea_shape attrs) in
  let n = Symheap.n_vars sym in
  check_bool "sea shape has variables" true (n > 0);
  let count = ref 0 in
  Symheap.iter_valuations sym (fun _ -> incr count);
  check_int "2^n valuations" (1 lsl n) !count;
  (* Two materializations of one valuation are indistinguishable. *)
  Symheap.iter_valuations sym (fun v ->
      let a = Symheap.materialize sym v in
      let b = Symheap.materialize sym v in
      check_bool "identical twins" true (Ickpt_runtime.Deep_eq.equal a b))

(* ---- verdicts on shipped shapes ------------------------------------------ *)

(* Satellite: the verifier proves byte-trace equivalence for every
   specialization class the repo ships, both for the raw residual code
   and after Plan_opt.simplify. *)
let shipped_shapes_verified () =
  List.iter
    (fun (name, shape) ->
      List.iter
        (fun (stage, verdict) ->
          check_bool
            (Printf.sprintf "%s (%s): %s" name stage
               (Format.asprintf "%a" Tv.pp verdict))
            true (Tv.ok verdict))
        (Tv.verify_shape shape))
    (shipped_shapes ())

(* A residual program that silently does nothing is the miscompile the
   validator exists to catch. *)
let empty_residual_refuted () =
  let attrs = Attrs.create ~n_stmts:2 in
  let shape = Attrs.sea_shape attrs in
  let result = Jspec.Pe.specialize shape in
  match Tv.verify shape { result with Jspec.Pe.body = [] } with
  | Tv.Refuted { replay; _ } ->
      check_bool "replay confirms divergence" true replay.Equiv.diverged
  | v -> Alcotest.failf "expected Refuted, got %a" Tv.pp v

(* ---- seeded-miscompile harness ------------------------------------------- *)

(* All refuted mutants over the shipped shapes, with their verdicts.
   Computed once; several tests slice it. *)
let refuted_mutants =
  lazy
    (List.concat_map
       (fun (name, shape) ->
         let result = Jspec.Pe.specialize shape in
         List.filter_map
           (fun (label, mutant) ->
             match Tv.verify shape mutant with
             | Tv.Refuted { mismatch; replay } ->
                 Some (name ^ "/" ^ label, shape, mutant, mismatch, replay)
             | Tv.Verified _ | Tv.Unsupported _ -> None)
           (Tv.mutants result))
       (shipped_shapes ()))

(* Acceptance floor: at least 10 distinct seeded miscompiles rejected,
   each with a concrete counterexample heap whose replay reproduces the
   divergence end-to-end. *)
let mutants_rejected () =
  let refuted = Lazy.force refuted_mutants in
  check_bool
    (Printf.sprintf "at least 10 rejected mutants (got %d)"
       (List.length refuted))
    true
    (List.length refuted >= 10);
  List.iter
    (fun (label, _, _, _, (replay : Equiv.replay)) ->
      check_bool (label ^ ": replay diverges") true replay.Equiv.diverged)
    refuted

(* The harness seeds all four mutation kinds and the verifier rejects
   instances of each. *)
let mutation_kinds_covered () =
  let refuted = Lazy.force refuted_mutants in
  List.iter
    (fun kind ->
      check_bool ("some rejected " ^ kind ^ " mutant") true
        (List.exists
           (fun (label, _, _, _, _) ->
             Test_util.contains_substring label kind)
           refuted))
    [ "drop"; "flip"; "swap"; "clobber" ]

(* A mutant is never accepted wholesale: mutating the sea residual body
   yields at least one refutation per shape with tracked state. *)
let every_shape_yields_mutants () =
  let refuted = Lazy.force refuted_mutants in
  List.iter
    (fun (name, _) ->
      check_bool ("rejected mutant for " ^ name) true
        (List.exists
           (fun (label, _, _, _, _) ->
             Test_util.contains_substring label (name ^ "/"))
           refuted))
    (List.filter (fun (n, _) -> n <> "bta" && n <> "eta") (shipped_shapes ()))

(* ---- counterexample fidelity on all three backends ----------------------- *)

(* Run [rounds] checkpoints of [run] over [root], collecting the bytes. *)
let rounds_of run root rounds =
  List.init rounds (fun _ ->
      let d = Ickpt_stream.Out_stream.create () in
      run d root;
      Ickpt_stream.Out_stream.contents d)

(* A counterexample valuation, materialized fresh, must produce divergent
   bytes (or a residual crash, or divergent final state) under the given
   execution environment. *)
let backend_confirms (backend : Ickpt_backend.Backend.t) shape mutant valuation =
  let sym = Symheap.of_shape shape in
  let root_g = Symheap.materialize sym valuation in
  let root_s = Symheap.materialize sym valuation in
  let generic = rounds_of backend.Ickpt_backend.Backend.run_generic root_g 2 in
  match
    let runner = backend.Ickpt_backend.Backend.specialize mutant in
    rounds_of runner root_s 2
  with
  | residual ->
      residual <> generic || not (Ickpt_runtime.Deep_eq.equal root_g root_s)
  | exception _ -> true

(* Satellite: QCheck property — every counterexample heap from a mutated
   residual program produces genuinely divergent bytes on all three
   Backend environments. *)
let prop_counterexamples_diverge_on_all_backends =
  QCheck2.Test.make ~name:"mutant counterexamples diverge on every backend"
    ~count:60
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun pick ->
      let refuted = Lazy.force refuted_mutants in
      let _, shape, mutant, (mismatch : Equiv.mismatch), _ =
        List.nth refuted (pick mod List.length refuted)
      in
      List.for_all
        (fun backend ->
          backend_confirms backend shape mutant mismatch.Equiv.valuation)
        Ickpt_backend.Backend.all)

(* ---- verdict cache ------------------------------------------------------- *)

let verdict_cache_roundtrip () =
  let attrs = Attrs.create ~n_stmts:2 in
  let shape = Attrs.sea_shape attrs in
  let cache = Jspec.Spec_cache.create () in
  let plan = Jspec.Spec_cache.plan cache shape in
  let body = plan.Jspec.Pe.body in
  Alcotest.(check (option bool))
    "empty cache misses" None
    (Jspec.Spec_cache.cached_verdict cache shape body);
  Jspec.Spec_cache.set_verdict cache shape body true;
  Alcotest.(check (option bool))
    "verdict cached" (Some true)
    (Jspec.Spec_cache.cached_verdict cache shape body);
  check_int "one verdict" 1 (Jspec.Spec_cache.verdict_count cache);
  (* A different residual body for the same shape: the stale verdict must
     not answer for it, and is evicted. *)
  let changed = Jspec.Cklang.Write (Jspec.Cklang.Const 1) :: body in
  check_bool "bodies actually differ" true
    (Jspec.Spec_cache.body_digest changed <> Jspec.Spec_cache.body_digest body);
  Alcotest.(check (option bool))
    "changed body misses" None
    (Jspec.Spec_cache.cached_verdict cache shape changed);
  check_int "stale verdict evicted" 0 (Jspec.Spec_cache.verdict_count cache);
  Alcotest.(check (option bool))
    "original body also gone" None
    (Jspec.Spec_cache.cached_verdict cache shape body)

let verdict_cache_negative () =
  let attrs = Attrs.create ~n_stmts:2 in
  let shape = Attrs.bta_shape attrs in
  let cache = Jspec.Spec_cache.create () in
  let body = (Jspec.Spec_cache.plan cache shape).Jspec.Pe.body in
  Jspec.Spec_cache.set_verdict cache shape body false;
  Alcotest.(check (option bool))
    "refutations are cached too" (Some false)
    (Jspec.Spec_cache.cached_verdict cache shape body)

(* ---- engine wiring ------------------------------------------------------- *)

(* analyze ~preflight now translation-validates every phase shape; the
   shipped shapes pass, so the analysis must run normally. *)
let engine_preflight_verifies () =
  let r =
    Engine.analyze ~mode:Engine.Specialized ~preflight:true
      (Minic.Gen.small_program ())
  in
  check_int "analysis ran all phases" 3 (List.length r.Engine.phases)

let suites =
  [ ( "tv",
      [ Alcotest.test_case "symbolic heap family" `Quick symheap_family;
        Alcotest.test_case "shipped shapes verified (pre/post simplify)"
          `Quick shipped_shapes_verified;
        Alcotest.test_case "empty residual refuted" `Quick
          empty_residual_refuted;
        Alcotest.test_case "mutants rejected with confirmed replays" `Slow
          mutants_rejected;
        Alcotest.test_case "all mutation kinds rejected" `Slow
          mutation_kinds_covered;
        Alcotest.test_case "rejections across the shape pool" `Slow
          every_shape_yields_mutants;
        QCheck_alcotest.to_alcotest ~long:true
          prop_counterexamples_diverge_on_all_backends;
        Alcotest.test_case "verdict cache roundtrip and eviction" `Quick
          verdict_cache_roundtrip;
        Alcotest.test_case "verdict cache keeps refutations" `Quick
          verdict_cache_negative;
        Alcotest.test_case "engine preflight verifies phases" `Quick
          engine_preflight_verifies ] ) ]
