open Ickpt_runtime
open Jspec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---- pure descriptions of shapes and conforming instances ------------- *)

(* Shapes reference Model.klass values, which are tied to one schema. To
   compare a generic run and a specialized run byte-for-byte we need two
   heaps with identical object ids, so every description here is pure data,
   instantiated per run against a freshly created (but identically
   declared) environment. *)

type kname = K_leaf | K_pair | K_node

type sdesc = { dk : kname; dstatus : Sclass.status; dchildren : cdesc array }

and cdesc =
  | CD_null
  | CD_exact of sdesc
  | CD_nullable of sdesc
  | CD_unknown
  | CD_clean_opaque

let n_children = function K_leaf -> 0 | K_pair -> 2 | K_node -> 3

let n_ints = function K_leaf -> 1 | K_pair -> 2 | K_node -> 3

(* An instance conforming to an sdesc: field values, per-node dirtiness
   (only honoured on Tracked nodes), resolved presence for nullable
   children, and arbitrary trees behind Unknown children. *)
type inst = { ints : int list; dirty : bool; ichildren : ichild array }

and ichild =
  | IC_absent
  | IC_conform of inst
  | IC_unknown of Test_util.tree option * bool (* dirty its root? *)

let klass_of env = function
  | K_leaf -> env.Test_util.leaf
  | K_pair -> env.Test_util.pair
  | K_node -> env.Test_util.node

let rec mk_shape env (d : sdesc) : Sclass.shape =
  Sclass.shape ~status:d.dstatus (klass_of env d.dk)
    (Array.map
       (function
         | CD_null -> Sclass.Null_child
         | CD_exact s -> Sclass.Exact (mk_shape env s)
         | CD_nullable s -> Sclass.Nullable (mk_shape env s)
         | CD_unknown -> Sclass.Unknown
         | CD_clean_opaque -> Sclass.Clean_opaque)
       d.dchildren)

(* Build a conforming object graph; returns the root. Also returns the
   mutation thunks to apply after the base checkpoint (dirtying writes on
   nodes the instance marks dirty). *)
let rec build_inst env (d : sdesc) (i : inst) ~muts =
  let o = Heap.alloc env.Test_util.heap (klass_of env d.dk) in
  List.iteri
    (fun slot v -> if slot < Array.length o.Model.ints then o.Model.ints.(slot) <- v)
    i.ints;
  Array.iteri
    (fun slot cd ->
      let ic = i.ichildren.(slot) in
      match (cd, ic) with
      | CD_null, _ | _, IC_absent -> ()
      | (CD_exact s | CD_nullable s), IC_conform ci ->
          o.Model.children.(slot) <- Some (build_inst env s ci ~muts)
      | (CD_unknown | CD_clean_opaque), IC_unknown (t, dirty_root) ->
          (match t with
          | None -> ()
          | Some t ->
              let c = Test_util.build env t in
              o.Model.children.(slot) <- Some c;
              if dirty_root then
                muts := (fun () -> Barrier.touch c) :: !muts)
      | _, _ -> ())
    d.dchildren;
  if i.dirty && d.dstatus = Sclass.Tracked then
    muts :=
      (fun () ->
        if Array.length o.Model.ints > 0 then
          Barrier.set_int o 0 (o.Model.ints.(0) + 1)
        else Barrier.touch o)
      :: !muts;
  o

(* Instantiate description + instance in a fresh env, clear flags (the
   "previous checkpoint"), apply the dirtying writes, and hand the root and
   shape to a runner; return the bytes it wrote plus the root for state
   comparison. *)
let run_case (d, i) runner =
  let env = Test_util.make_env () in
  let muts = ref [] in
  let root = build_inst env d i ~muts in
  Heap.clear_all_modified env.Test_util.heap;
  List.iter (fun f -> f ()) (List.rev !muts);
  let out = Ickpt_stream.Out_stream.create () in
  runner env out root (mk_shape env d);
  (Ickpt_stream.Out_stream.contents out, root)

let generic_runner _env d root _shape = Ickpt_core.Checkpointer.incremental d root

let interp_generic_runner _env d root _shape =
  Interp.run_program Generic_method.program d root

let compiled_generic_runner _env d root _shape =
  (Compile.program Generic_method.program) d root

let interp_spec_runner _env d root shape =
  let r = Pe.specialize shape in
  Interp.run_residual r.Pe.body ~n_vars:r.Pe.n_vars d root

let compiled_spec_runner _env d root shape =
  (Compile.residual (Pe.specialize shape)) d root

(* ---- generators -------------------------------------------------------- *)

let sdesc_gen : sdesc QCheck2.Gen.t =
  let open QCheck2.Gen in
  let kname_gen = oneofl [ K_leaf; K_pair; K_node ] in
  let status_gen = oneofl [ Sclass.Clean; Sclass.Tracked ] in
  sized
  @@ fix (fun self n ->
         let* dk = kname_gen in
         let* dstatus = status_gen in
         let child =
           if n <= 1 then
             oneof [ return CD_null; return CD_unknown; return CD_clean_opaque ]
           else
             frequency
               [ (2, return CD_null);
                 (1, return CD_unknown);
                 (1, return CD_clean_opaque);
                 (3, map (fun s -> CD_exact s) (self (n / 2)));
                 (2, map (fun s -> CD_nullable s) (self (n / 2))) ]
         in
         let* dchildren =
           array_size (return (n_children dk)) child
         in
         return { dk; dstatus; dchildren })

let rec inst_gen (d : sdesc) : inst QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* ints = list_size (return (n_ints d.dk)) small_int in
  let* dirty = bool in
  let* ichildren =
    flatten_a
      (Array.map
         (function
           | CD_null -> return IC_absent
           | CD_exact s -> map (fun i -> IC_conform i) (inst_gen s)
           | CD_nullable s ->
               let* present = bool in
               if present then map (fun i -> IC_conform i) (inst_gen s)
               else return IC_absent
           | CD_unknown ->
               let* t = opt Test_util.tree_gen in
               let* dirty = bool in
               return (IC_unknown (t, dirty))
           | CD_clean_opaque ->
               (* the declaration promises the subtree stays clean *)
               let* t = opt Test_util.tree_gen in
               return (IC_unknown (t, false)))
         d.dchildren)
  in
  return { ints; dirty; ichildren }

let case_gen : (sdesc * inst) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* d = sdesc_gen in
  let* i = inst_gen d in
  return (d, i)

(* ---- deterministic specialization unit tests --------------------------- *)

let count_modified_tests body =
  let n = ref 0 in
  let rec stmt = function
    | Cklang.If (Cklang.Modified _, t, f) ->
        incr n;
        List.iter stmt t;
        List.iter stmt f
    | Cklang.If (_, t, f) ->
        List.iter stmt t;
        List.iter stmt f
    | Cklang.Let (_, _, b) | Cklang.For (_, _, _, b) -> List.iter stmt b
    | Cklang.Write _ | Cklang.Reset_modified _ | Cklang.Invoke_virtual _
    | Cklang.Call _ | Cklang.Call_generic _ ->
        ()
  in
  List.iter stmt body;
  !n

let count_generic_calls body =
  let n = ref 0 in
  let rec stmt = function
    | Cklang.Call_generic _ -> incr n
    | Cklang.If (_, t, f) ->
        List.iter stmt t;
        List.iter stmt f
    | Cklang.Let (_, _, b) | Cklang.For (_, _, _, b) -> List.iter stmt b
    | Cklang.Write _ | Cklang.Reset_modified _ | Cklang.Invoke_virtual _
    | Cklang.Call _ ->
        ()
  in
  List.iter stmt body;
  !n

let all_clean_shape_eliminates () =
  let env = Test_util.make_env () in
  let shape =
    Sclass.chain ~status_at:(fun _ -> Sclass.Clean) env.Test_util.node
      ~next_slot:0 ~len:4
  in
  let r = Pe.specialize shape in
  check_int "empty residual body" 0 (List.length r.Pe.body)

let tracked_leaf_residual () =
  let env = Test_util.make_env () in
  let shape = Sclass.leaf env.Test_util.pair in
  let r = Pe.specialize shape in
  (* Expected: one modified test, recording 2 ints + 2 null-child ids. *)
  check_int "one test" 1 (count_modified_tests r.Pe.body);
  match r.Pe.body with
  | [ Cklang.If (Cklang.Modified (Cklang.Var 0), then_branch, []) ] ->
      (* id, kid, 2 ints, 2 child ids, reset *)
      check_int "then-branch length" 7 (List.length then_branch)
  | _ -> Alcotest.failf "unexpected residual:@.%a" Cklang.pp_stmts r.Pe.body

let chain_last_tracked_tests () =
  let env = Test_util.make_env () in
  (* Length-5 chain through Node slot 0; only the last element tracked:
     the paper's Figure 10 configuration. *)
  let shape =
    Sclass.chain
      ~status_at:(fun i -> if i = 4 then Sclass.Tracked else Sclass.Clean)
      env.Test_util.node ~next_slot:0 ~len:5
  in
  let r = Pe.specialize shape in
  check_int "exactly one residual test" 1 (count_modified_tests r.Pe.body);
  let bta = Bta.analyze shape in
  check_int "bta agrees: 4 static tests" 4 (Bta.static_test_count bta);
  check_int "bta agrees: 1 dynamic test" 1 (Bta.dynamic_test_count bta)

let clean_opaque_eliminates_traversal () =
  let env = Test_util.make_env () in
  (* A tracked parent whose child subtree is declared wholly clean: the
     parent's record keeps the (dynamic) child id, but no traversal code
     may remain. *)
  let shape =
    Sclass.shape env.Test_util.pair
      [| Sclass.Clean_opaque; Sclass.Null_child |]
  in
  let r = Pe.specialize shape in
  check_int "one test (parent only)" 1 (count_modified_tests r.Pe.body);
  check_int "no generic fallback" 0 (count_generic_calls r.Pe.body);
  (* Byte equivalence with the generic algorithm on a conforming heap. *)
  let mk () =
    let env = Test_util.make_env () in
    let child = Test_util.build env (Test_util.Leaf 7) in
    let o = Heap.alloc env.Test_util.heap env.Test_util.pair in
    o.Model.children.(0) <- Some child;
    Heap.clear_all_modified env.Test_util.heap;
    Barrier.set_int o 0 99;
    (env, o)
  in
  let _, o1 = mk () in
  let d1 = Ickpt_stream.Out_stream.create () in
  Ickpt_core.Checkpointer.incremental d1 o1;
  let _, o2 = mk () in
  let d2 = Ickpt_stream.Out_stream.create () in
  (Compile.residual r) d2 o2;
  check_str "same bytes"
    (Ickpt_stream.Out_stream.contents d1)
    (Ickpt_stream.Out_stream.contents d2)

let unknown_child_falls_back () =
  let env = Test_util.make_env () in
  let shape =
    Sclass.shape env.Test_util.pair [| Sclass.Unknown; Sclass.Null_child |]
  in
  let r = Pe.specialize shape in
  check_int "one generic fallback" 1 (count_generic_calls r.Pe.body)

let clean_node_still_traversed_for_dirty_child () =
  let env = Test_util.make_env () in
  (* Clean parent, tracked child: parent contributes no test and no record,
     but the traversal to the child must remain. *)
  let shape =
    Sclass.shape ~status:Sclass.Clean env.Test_util.pair
      [| Sclass.Exact (Sclass.leaf env.Test_util.leaf); Sclass.Null_child |]
  in
  let r = Pe.specialize shape in
  check_int "child test survives" 1 (count_modified_tests r.Pe.body);
  check_bool "body nonempty" true (r.Pe.body <> [])

let bta_consistency () =
  let env = Test_util.make_env () in
  let shapes =
    [ Sclass.leaf env.Test_util.leaf;
      Sclass.leaf ~status:Sclass.Clean env.Test_util.leaf;
      Sclass.chain env.Test_util.node ~next_slot:0 ~len:3;
      Sclass.shape ~status:Sclass.Clean env.Test_util.pair
        [| Sclass.Nullable (Sclass.leaf env.Test_util.leaf); Sclass.Unknown |]
    ]
  in
  List.iter
    (fun shape ->
      let r = Pe.specialize shape in
      let node = Bta.analyze shape in
      check_bool "residual empty iff not traversed" true
        ((r.Pe.body = []) = not node.Bta.traversed);
      check_int "dynamic tests agree" (Bta.dynamic_test_count node)
        (count_modified_tests r.Pe.body))
    shapes

let java_pp_renders () =
  let env = Test_util.make_env () in
  let shape =
    Sclass.shape env.Test_util.pair
      [| Sclass.Exact (Sclass.leaf env.Test_util.leaf); Sclass.Null_child |]
  in
  let out = Java_pp.to_string (Pe.specialize shape) in
  check_bool "mentions writeInt" true
    (Test_util.contains_substring out "d.writeInt");
  check_bool "mentions modified()" true
    (Test_util.contains_substring out ".modified()");
  check_bool "declares the child" true (Test_util.contains_substring out "Leaf v")

(* ---- guard -------------------------------------------------------------- *)

let guard_accepts_conforming () =
  let env = Test_util.make_env () in
  let shape =
    Sclass.shape env.Test_util.pair
      [| Sclass.Exact (Sclass.leaf env.Test_util.leaf); Sclass.Nullable (Sclass.leaf env.Test_util.leaf) |]
  in
  let child = Heap.alloc env.Test_util.heap env.Test_util.leaf in
  let o = Heap.alloc env.Test_util.heap env.Test_util.pair in
  o.Model.children.(0) <- Some child;
  Alcotest.(check (list string))
    "no violations" []
    (List.map (fun v -> v.Guard.reason) (Guard.check shape o))

let guard_detects_violations () =
  let env = Test_util.make_env () in
  let leaf_shape = Sclass.leaf ~status:Sclass.Clean env.Test_util.leaf in
  let shape =
    Sclass.shape env.Test_util.pair
      [| Sclass.Exact leaf_shape; Sclass.Null_child |]
  in
  (* Violation 1: missing Exact child. *)
  let o = Heap.alloc env.Test_util.heap env.Test_util.pair in
  check_bool "missing child detected" true (Guard.check shape o <> []);
  (* Violation 2: clean child is dirty. *)
  let child = Heap.alloc env.Test_util.heap env.Test_util.leaf in
  o.Model.children.(0) <- Some child;
  Heap.clear_all_modified env.Test_util.heap;
  Barrier.touch child;
  check_bool "dirty clean-node detected" true (Guard.check shape o <> []);
  (* Violation 3: wrong class. *)
  child.Model.info.Model.modified <- false;
  let wrong = Heap.alloc env.Test_util.heap env.Test_util.node in
  wrong.Model.info.Model.modified <- false;
  o.Model.children.(0) <- Some wrong;
  check_bool "class mismatch detected" true (Guard.check shape o <> []);
  (* Violation 4: non-null child declared null. *)
  o.Model.children.(0) <- Some child;
  o.Model.children.(1) <- Some child;
  check_bool "unexpected child detected" true (Guard.check shape o <> [])

let guard_checked_runner () =
  let env = Test_util.make_env () in
  let shape = Sclass.leaf ~status:Sclass.Clean env.Test_util.leaf in
  let o = Heap.alloc env.Test_util.heap env.Test_util.leaf in
  let runner = Guard.checked shape (fun _ _ -> Alcotest.fail "must not run") in
  let d = Ickpt_stream.Out_stream.create () in
  (* o is dirty (fresh) but declared clean. *)
  match runner d o with
  | () -> Alcotest.fail "expected Violated"
  | exception Guard.Violated _ -> ()

let compiled_null_violation () =
  let env = Test_util.make_env () in
  let shape =
    Sclass.shape env.Test_util.pair
      [| Sclass.Exact (Sclass.leaf env.Test_util.leaf); Sclass.Null_child |]
  in
  let runner = Compile.residual (Pe.specialize shape) in
  let o = Heap.alloc env.Test_util.heap env.Test_util.pair in
  (* Child 0 is null although declared present. *)
  let d = Ickpt_stream.Out_stream.create () in
  match runner d o with
  | () -> Alcotest.fail "expected Shape_violation"
  | exception Compile.Shape_violation _ -> ()

(* ---- plan_opt ----------------------------------------------------------- *)

let plan_opt_simplifies () =
  let open Cklang in
  Alcotest.(check int)
    "dead if dropped" 0
    (List.length (Plan_opt.simplify [ If (Modified (Var 0), [], []) ]));
  Alcotest.(check int)
    "static if folded" 1
    (List.length
       (Plan_opt.simplify [ If (Const 1, [ Write (Const 1) ], [ Write (Const 2); Write (Const 3) ]) ]));
  (match Plan_opt.simplify [ If (Const 0, [ Write (Const 1) ], [ Write (Const 2) ]) ] with
  | [ Write (Const 2) ] -> ()
  | other -> Alcotest.failf "unexpected: %a" pp_stmts other);
  (match Plan_opt.simplify [ Let (1, Child (Var 0, Const 0), []) ] with
  | [] -> ()
  | _ -> Alcotest.fail "empty let kept");
  (match Plan_opt.simplify_expr (Not (Not (Modified (Var 0)))) with
  | Modified (Var 0) -> ()
  | _ -> Alcotest.fail "double negation kept");
  match Plan_opt.simplify_expr (Cond (Const 1, Const 5, Const 6)) with
  | Const 5 -> ()
  | _ -> Alcotest.fail "static cond kept"

let plan_opt_nested_empty () =
  let open Cklang in
  (* Conditionals that are empty only after their nested conditionals
     collapse must themselves collapse — the pass is bottom-up. *)
  let s =
    [ If
        ( Modified (Var 0),
          [ If (Is_null (Child (Var 0, Const 0)), [], []) ],
          [ If (Modified (Var 1), [], [ If (Const 1, [], []) ]) ] ) ]
  in
  Alcotest.(check int) "nested empties collapse" 0 (List.length (Plan_opt.simplify s));
  (* Same through let and loop bodies. *)
  let s =
    [ Let
        ( 1,
          Child (Var 0, Const 0),
          [ For (2, Const 0, Const 4, [ If (Const 0, [], []) ]) ] ) ]
  in
  Alcotest.(check int) "empty bodies cascade" 0 (List.length (Plan_opt.simplify s))

let plan_opt_const_guard_bounds () =
  let open Cklang in
  (* Constant-folded guards feeding loop bounds: the bounds simplify but
     the loop survives with the residual dynamic bound. *)
  let s =
    [ For
        ( 1,
          Cond (Const 1, Const 0, Const 9),
          Cond (Const 0, Const 7, N_children (Var 0)),
          [ Write (Int_field (Var 0, Var 1)) ] ) ]
  in
  match Plan_opt.simplify s with
  | [ For (1, Const 0, N_children (Var 0), [ Write (Int_field (Var 0, Var 1)) ]) ]
    -> ()
  | other -> Alcotest.failf "bounds not folded: %a" pp_stmts other

(* A generator of arbitrary (not Pe-produced) residual statements, for
   idempotence: unlike sdesc_gen-derived programs these include dead
   code, constant guards and unused bindings. *)
let cklang_expr_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let base =
           oneof
             [ map (fun i -> Cklang.Const i) (int_range (-1) 2);
               map (fun v -> Cklang.Var v) (int_range 0 3) ]
         in
         if n = 0 then base
         else
           let sub = self (n / 2) in
           oneof
             [ base;
               map (fun e -> Cklang.Not e) sub;
               map (fun e -> Cklang.Modified e) sub;
               map (fun e -> Cklang.Is_null e) sub;
               map2 (fun a b -> Cklang.Child (a, b)) sub sub;
               map3 (fun a b c -> Cklang.Cond (a, b, c)) sub sub sub ])

let cklang_stmt_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let e = cklang_expr_gen in
         let base =
           oneof
             [ map (fun x -> Cklang.Write x) e;
               map (fun x -> Cklang.Reset_modified x) e;
               map (fun x -> Cklang.Call_generic x) e ]
         in
         if n = 0 then base
         else
           let body = list_size (int_range 0 3) (self (n / 4)) in
           oneof
             [ base;
               map3 (fun c t f -> Cklang.If (c, t, f)) e body body;
               map3 (fun v x b -> Cklang.Let (v, x, b)) (int_range 1 3) e body;
               map3
                 (fun lo hi b -> Cklang.For (1, lo, hi, b))
                 e e body ])

let prop_plan_opt_idempotent =
  QCheck2.Test.make ~name:"Plan_opt.simplify is idempotent" ~count:300
    QCheck2.Gen.(list_size (int_range 0 5) cklang_stmt_gen)
    (fun ss ->
      let once = Plan_opt.simplify ss in
      Plan_opt.simplify once = once)

(* ---- guard report ordering (satellite of the spec-lint work) ------------ *)

let guard_sorted_report () =
  let env = Test_util.make_env () in
  let leaf_clean = Sclass.leaf ~status:Sclass.Clean env.Test_util.leaf in
  let shape =
    Sclass.shape ~status:Sclass.Clean env.Test_util.pair
      [| Sclass.Exact leaf_clean; Sclass.Exact leaf_clean |]
  in
  let o = Heap.alloc env.Test_util.heap env.Test_util.pair in
  let c0 = Heap.alloc env.Test_util.heap env.Test_util.leaf in
  o.Model.children.(0) <- Some c0;
  (* children[1] missing; root and children[0] dirty: three violations
     across two reasons. *)
  let vs = Guard.check shape o in
  Alcotest.(check int) "three violations" 3 (List.length vs);
  let keys = List.map (fun v -> (v.Guard.path, v.Guard.reason)) vs in
  Alcotest.(check bool) "sorted by (path, reason)" true
    (keys = List.sort compare keys);
  (* Two heaps with the same defects report identically even though the
     discovery order differs (fresh allocation order). *)
  let env2 = Test_util.make_env () in
  let shape2 =
    Sclass.shape ~status:Sclass.Clean env2.Test_util.pair
      [| Sclass.Exact (Sclass.leaf ~status:Sclass.Clean env2.Test_util.leaf);
         Sclass.Exact (Sclass.leaf ~status:Sclass.Clean env2.Test_util.leaf) |]
  in
  let c0' = Heap.alloc env2.Test_util.heap env2.Test_util.leaf in
  let o2 = Heap.alloc env2.Test_util.heap env2.Test_util.pair in
  o2.Model.children.(0) <- Some c0';
  Alcotest.(check (list string)) "stable across heaps"
    (List.map (fun v -> v.Guard.path ^ ": " ^ v.Guard.reason) vs)
    (List.map
       (fun v -> v.Guard.path ^ ": " ^ v.Guard.reason)
       (Guard.check shape2 o2));
  let report = Format.asprintf "%a" Guard.pp_report vs in
  Alcotest.(check bool) "report counts" true
    (Test_util.contains_substring report "guard: 3 violation(s)");
  Alcotest.(check bool) "report groups by reason" true
    (Test_util.contains_substring report
       "modified flag set on an object declared Clean (2):");
  Alcotest.(check int) "reason groups" 2
    (List.length (Guard.group_by_reason vs))

(* ---- the I3 / I5 equivalence properties -------------------------------- *)

let equal_runs (d, i) runner_a runner_b =
  let bytes_a, root_a = run_case (d, i) runner_a in
  let bytes_b, root_b = run_case (d, i) runner_b in
  bytes_a = bytes_b && Deep_eq.equal root_a root_b

let prop_spec_interp_equals_generic =
  QCheck2.Test.make ~name:"specialized (interp) == generic bytes" ~count:150
    case_gen (fun case -> equal_runs case generic_runner interp_spec_runner)

let prop_spec_compiled_equals_generic =
  QCheck2.Test.make ~name:"specialized (compiled) == generic bytes" ~count:150
    case_gen (fun case -> equal_runs case generic_runner compiled_spec_runner)

let prop_generic_interp_equals_core =
  QCheck2.Test.make ~name:"generic cklang interp == core checkpointer"
    ~count:100 case_gen (fun case ->
      equal_runs case generic_runner interp_generic_runner)

let prop_generic_compiled_equals_core =
  QCheck2.Test.make ~name:"generic cklang compiled == core checkpointer"
    ~count:100 case_gen (fun case ->
      equal_runs case generic_runner compiled_generic_runner)

(* Plan_opt differential testing: disabling the cleanup pass must not
   change the bytes written, and the cleaned plan is never larger. *)
let unoptimized_spec_runner _env d root shape =
  let r = Jspec.Pe.specialize ~optimize:false shape in
  Interp.run_residual r.Pe.body ~n_vars:r.Pe.n_vars d root

let prop_plan_opt_preserves_semantics =
  QCheck2.Test.make ~name:"Plan_opt.simplify preserves specialized bytes"
    ~count:100 case_gen (fun case ->
      equal_runs case interp_spec_runner unoptimized_spec_runner)

let prop_plan_opt_never_grows =
  QCheck2.Test.make ~name:"Plan_opt.simplify never grows residual code"
    ~count:100 sdesc_gen (fun d ->
      let env = Test_util.make_env () in
      let shape = mk_shape env d in
      let opt = Jspec.Pe.specialize shape in
      let raw = Jspec.Pe.specialize ~optimize:false shape in
      Cklang.stmt_count opt.Pe.body <= Cklang.stmt_count raw.Pe.body)

(* The cache key is exactly structural equality of shapes. *)
let prop_cache_key_is_structural_equality =
  QCheck2.Test.make ~name:"Spec_cache key == structural shape equality"
    ~count:200
    QCheck2.Gen.(pair sdesc_gen sdesc_gen)
    (fun (d1, d2) ->
      let env = Test_util.make_env () in
      let k1 = Jspec.Spec_cache.shape_key (mk_shape env d1) in
      let k2 = Jspec.Spec_cache.shape_key (mk_shape env d2) in
      (k1 = k2) = (d1 = d2))

let prop_guard_accepts_conforming_cases =
  QCheck2.Test.make ~name:"guard accepts every conforming instance" ~count:100
    case_gen (fun (d, i) ->
      let env = Test_util.make_env () in
      let muts = ref [] in
      let root = build_inst env d i ~muts in
      Heap.clear_all_modified env.Test_util.heap;
      List.iter (fun f -> f ()) (List.rev !muts);
      Guard.check (mk_shape env d) root = [])

let suites =
  [ ( "jspec-pe",
      [ Alcotest.test_case "all-clean shape eliminates" `Quick
          all_clean_shape_eliminates;
        Alcotest.test_case "tracked leaf residual" `Quick tracked_leaf_residual;
        Alcotest.test_case "chain last tracked" `Quick chain_last_tracked_tests;
        Alcotest.test_case "unknown child falls back" `Quick
          unknown_child_falls_back;
        Alcotest.test_case "clean_opaque eliminates traversal" `Quick
          clean_opaque_eliminates_traversal;
        Alcotest.test_case "clean node traversed for dirty child" `Quick
          clean_node_still_traversed_for_dirty_child;
        Alcotest.test_case "bta consistency" `Quick bta_consistency;
        Alcotest.test_case "java pp renders" `Quick java_pp_renders;
        Alcotest.test_case "plan_opt simplifies" `Quick plan_opt_simplifies;
        Alcotest.test_case "plan_opt nested empty" `Quick plan_opt_nested_empty;
        Alcotest.test_case "plan_opt constant bounds" `Quick
          plan_opt_const_guard_bounds ] );
    ( "jspec-guard",
      [ Alcotest.test_case "accepts conforming" `Quick guard_accepts_conforming;
        Alcotest.test_case "detects violations" `Quick guard_detects_violations;
        Alcotest.test_case "checked runner" `Quick guard_checked_runner;
        Alcotest.test_case "compiled null violation" `Quick
          compiled_null_violation;
        Alcotest.test_case "sorted grouped report" `Quick guard_sorted_report ] );
    ( "jspec-equivalence",
      [ QCheck_alcotest.to_alcotest prop_spec_interp_equals_generic;
        QCheck_alcotest.to_alcotest prop_spec_compiled_equals_generic;
        QCheck_alcotest.to_alcotest prop_generic_interp_equals_core;
        QCheck_alcotest.to_alcotest prop_generic_compiled_equals_core;
        QCheck_alcotest.to_alcotest prop_guard_accepts_conforming_cases;
        QCheck_alcotest.to_alcotest prop_plan_opt_preserves_semantics;
        QCheck_alcotest.to_alcotest prop_plan_opt_never_grows;
        QCheck_alcotest.to_alcotest prop_plan_opt_idempotent;
        QCheck_alcotest.to_alcotest prop_cache_key_is_structural_equality ] ) ]
