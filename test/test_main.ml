let () =
  Alcotest.run "icheckpoint"
    (Test_stream.suites @ Test_runtime.suites @ Test_core.suites
   @ Test_jspec.suites @ Test_minic.suites @ Test_analysis.suites
   @ Test_synth.suites @ Test_backend.suites @ Test_extras.suites
   @ Test_more.suites @ Test_staticcheck.suites @ Test_tv.suites
   @ Test_faultsim.suites @ Test_elide.suites @ Test_store.suites
   @ Test_infer.suites @ Test_live.suites @ Test_par.suites
   @ Test_service.suites)
