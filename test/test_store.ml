(* Tests for the content-addressed store: Hash64 vectors, record-aligned
   chunking, pack/index framing and torn-tail handling, dedup, O(live)
   restore vs chain replay, diff, GC/refcounts, the Manager sink, the
   stale-temp sweep regression, a smoke run of the store crash sweep, and
   the QCheck round-trip property over synthetic heaps. *)

open Ickpt_stream
open Ickpt_runtime
open Ickpt_core
open Ickpt_faultsim
open Ickpt_cas

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let store_path = "s.ckpt"

(* ------------------------------------------------------------------ *)
(* A small deterministic world (same shape as the crash sims).        *)

type world = {
  schema : Schema.t;
  roots : Model.obj list;
  mutate : int -> unit;
}

let make_world () =
  let schema = Schema.create () in
  let leaf = Schema.declare schema ~name:"Leaf" ~ints:1 ~children:0 () in
  let pair = Schema.declare schema ~name:"Pair" ~ints:2 ~children:2 () in
  let heap = Heap.create schema in
  let mk_leaf v =
    let o = Heap.alloc heap leaf in
    o.Model.ints.(0) <- v;
    o
  in
  let mk_pair a b l r =
    let o = Heap.alloc heap pair in
    o.Model.ints.(0) <- a;
    o.Model.ints.(1) <- b;
    o.Model.children.(0) <- Some l;
    o.Model.children.(1) <- Some r;
    o
  in
  let leaves = Array.init 8 (fun i -> mk_leaf i) in
  let pa = mk_pair 100 101 leaves.(0) leaves.(1) in
  let pb = mk_pair 102 103 leaves.(2) leaves.(3) in
  let pc = mk_pair 104 105 leaves.(4) leaves.(5) in
  let pd = mk_pair 106 107 leaves.(6) leaves.(7) in
  let qa = mk_pair 108 109 pa pb in
  let qb = mk_pair 110 111 pc pd in
  let root = mk_pair 112 113 qa qb in
  let objs = Array.concat [ [| root; qa; qb; pa; pb; pc; pd |]; leaves ] in
  let n = Array.length objs in
  let mutate r =
    Barrier.set_int objs.(r mod n) 0 (10_000 + (3 * r));
    Barrier.set_int objs.((r + 5) mod n) 0 (10_001 + (3 * r))
  in
  { schema; roots = [ root ]; mutate }

let roots_equal a b =
  List.length a = List.length b && List.for_all2 Deep_eq.equal a b

let full_body roots =
  let d = Out_stream.create () in
  Checkpointer.full_many d roots;
  Out_stream.contents d

(* ------------------------------------------------------------------ *)
(* Hash64.                                                            *)

let hash64_basics () =
  check_int "empty string is the offset basis" Hash64.init (Hash64.string "");
  (* FNV-1a("a") is the published 0xaf63dc4c8601ec8c; our arithmetic runs
     mod 2^63, which drops the top bit. *)
  check_string "known vector, folded" "2f63dc4c8601ec8c"
    (Hash64.to_hex (Hash64.string "a"));
  check_int "running hash composes"
    (Hash64.string "abcd")
    (Hash64.string ~h:(Hash64.string "ab") "cd");
  check_int "sub matches string on the window"
    (Hash64.string "abcd")
    (Hash64.sub "xabcdy" ~pos:1 ~len:4);
  check_int "bytes agrees with string"
    (Hash64.string "abc")
    (Hash64.bytes (Bytes.of_string "abc"));
  check_bool "distinct inputs, distinct keys" true
    (Hash64.string "a" <> Hash64.string "b");
  check_int "hex is fixed-width" 16 (String.length (Hash64.to_hex 1));
  (match Hash64.sub "abc" ~pos:2 ~len:5 with
  | _ -> Alcotest.fail "out-of-range window accepted"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Chunking.                                                          *)

let chunk_split_roundtrip () =
  let w = make_world () in
  let body = full_body w.roots in
  check_int "empty body, no chunks" 0
    (List.length (Chunk.split w.schema ""));
  let chunks = Chunk.split ~records_per_chunk:2 w.schema body in
  check_string "chunks concatenate to the body" body
    (String.concat "" (List.map (fun (c : Chunk.t) -> c.data) chunks));
  List.iter
    (fun (c : Chunk.t) ->
      check_bool "at most records_per_chunk records" true
        (List.length c.records <= 2);
      check_int "key is the content hash" (Chunk.key_of c.data) c.key;
      List.iter
        (fun (id, off) ->
          let r = Restore.record_at w.schema c.data ~pos:off in
          check_int "directory offset decodes the right record" id
            r.Restore.rec_id)
        c.records)
    chunks;
  check_int "records partition the body" 15
    (List.fold_left (fun a (c : Chunk.t) -> a + List.length c.records) 0 chunks)

(* A localized mutation must leave every chunk after the affected one
   byte-identical — the record-index alignment that makes dedup work. *)
let chunk_alignment_stability () =
  let w = make_world () in
  let before = Chunk.split ~records_per_chunk:2 w.schema (full_body w.roots) in
  w.mutate 0;
  (* mutate 0 touches objs.(0) (the root, first record) and objs.(5). *)
  let after = Chunk.split ~records_per_chunk:2 w.schema (full_body w.roots) in
  check_int "same chunk count" (List.length before) (List.length after);
  let keys l = List.map (fun (c : Chunk.t) -> c.key) l in
  let shared =
    List.filter (fun k -> List.mem k (keys before)) (keys after)
  in
  check_bool "unchanged record runs dedup across versions" true
    (List.length shared >= List.length before - 2);
  check_bool "the mutated chunk does not" true
    (List.hd (keys after) <> List.hd (keys before))

(* ------------------------------------------------------------------ *)
(* Pack framing.                                                      *)

let pack_roundtrip_and_torn_tail () =
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let p = Pack.open_ ~vfs "p.pack" in
  let d1 = "chunk one body" and d2 = "chunk two" in
  let k1 = Chunk.key_of d1 and k2 = Chunk.key_of d2 in
  let wrote = Pack.append_batch p [ (k1, d1); (k2, d2) ] in
  check_bool "frames cost bytes" true (wrote > String.length (d1 ^ d2));
  check_string "read back 1" d1 (Pack.read p k1);
  check_string "read back 2" d2 (Pack.read p k2);
  check_bool "mem" true (Pack.mem p k1 && Pack.mem p k2);
  check_int "chunk_len" (String.length d2) (Pack.chunk_len p k2);
  check_int "length" 2 (Pack.length p);
  (match Pack.append_batch p [ (k1, d1) ] with
  | _ -> Alcotest.fail "duplicate key accepted"
  | exception Invalid_argument _ -> ());
  (* A torn frame at the tail is truncated away on reopen. *)
  let intact = Pack.physical_bytes p in
  let w = vfs.Vfs.open_append "p.pack" in
  w.Vfs.write "ICPKgarbage-not-a-frame";
  w.Vfs.sync ();
  w.Vfs.close ();
  let p2 = Pack.open_ ~vfs "p.pack" in
  check_int "torn tail dropped" 2 (Pack.length p2);
  check_int "file truncated to the intact prefix" intact
    (Pack.physical_bytes p2);
  check_string "intact chunks survive" d1 (Pack.read p2 k1)

let index_roundtrip_and_torn_tail () =
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let e1 =
    { Epoch_index.epoch = 0; kind = Segment.Full; roots = [ 7 ];
      chunks = [ Chunk.key_of "x" ];
      dir = [ { Epoch_index.d_id = 7; d_chunk = 0; d_off = 0 } ] }
  in
  let e2 =
    { Epoch_index.epoch = 1; kind = Segment.Incremental; roots = [ 7 ];
      chunks = [ Chunk.key_of "y"; Chunk.key_of "x" ];
      dir = [ { Epoch_index.d_id = 9; d_chunk = 1; d_off = 3 } ] }
  in
  Epoch_index.append vfs "i.idx" e1;
  Epoch_index.append vfs "i.idx" e2;
  let entries, valid = Epoch_index.load vfs "i.idx" in
  check_bool "roundtrip" true (entries = [ e1; e2 ]);
  check_int "whole file valid" (String.length (vfs.Vfs.read_file "i.idx")) valid;
  (* Torn tail: half an entry. *)
  let half = String.sub (Epoch_index.encode e1) 0 6 in
  let w = vfs.Vfs.open_append "i.idx" in
  w.Vfs.write half;
  w.Vfs.sync ();
  w.Vfs.close ();
  let entries2, valid2 = Epoch_index.load vfs "i.idx" in
  check_bool "intact prefix survives a torn entry" true (entries2 = [ e1; e2 ]);
  check_int "valid offset excludes the torn entry" valid valid2

(* ------------------------------------------------------------------ *)
(* Store: append, restore vs chain replay, dedup, errors.             *)

(* Drive a chain and a store in lockstep for [rounds] epochs under a
   policy; returns (chain, store, world). *)
let drive ?(records_per_chunk = 4) ~policy ~rounds vfs =
  let w = make_world () in
  let chain = Chain.create w.schema in
  let store =
    Store.open_ ~vfs ~records_per_chunk w.schema ~path:store_path
  in
  for r = 0 to rounds - 1 do
    if r > 0 then w.mutate r;
    let taken =
      match Policy.decide policy chain with
      | Segment.Full -> Chain.take_full chain w.roots
      | Segment.Incremental -> Chain.take_incremental chain w.roots
    in
    ignore (Store.append_segment store taken.Chain.segment)
  done;
  (chain, store, w)

(* Chain-replay restoration of epoch [e]: what Chain.recover does, for an
   arbitrary epoch — replay the suffix from the newest full at or before
   [e]. *)
let replay_restore chain ~epoch =
  let upto =
    List.filter (fun (s : Segment.t) -> s.seq <= epoch) (Chain.segments chain)
  in
  let since_full =
    let rec cut acc = function
      | [] -> acc
      | (s : Segment.t) :: older -> (
          match s.kind with
          | Segment.Full -> s :: acc
          | Segment.Incremental -> cut (s :: acc) older)
    in
    cut [] (List.rev upto)
  in
  let roots = (List.nth upto (List.length upto - 1)).Segment.roots in
  Restore.of_segments (Chain.schema chain) since_full ~roots

let store_restore_agrees_with_replay () =
  let sim = Sim.create () in
  let chain, store, w =
    drive ~policy:(Policy.Full_every 3) ~rounds:8 (Sim.vfs sim)
  in
  check_bool "epochs are 0..7" true (Store.epochs store = List.init 8 Fun.id);
  check_int "latest epoch" 7 (Option.get (Store.latest_epoch store));
  List.iter
    (fun (s : Segment.t) ->
      (* The exact segment comes back: same bytes. *)
      check_string
        (Printf.sprintf "segment_of_epoch %d roundtrips" s.seq)
        (Segment.encode s)
        (Segment.encode (Store.segment_of_epoch store s.seq));
      check_bool "kind" true (Store.kind_of_epoch store s.seq = s.kind);
      check_bool "roots" true (Store.roots_of_epoch store s.seq = s.roots);
      let _, replayed = replay_restore chain ~epoch:s.seq in
      let _, stored = Store.restore store ~epoch:s.seq in
      check_bool
        (Printf.sprintf "restore ~epoch:%d agrees with chain replay" s.seq)
        true
        (roots_equal replayed stored);
      (* Byte-for-byte: a full checkpoint re-taken from either restored
         heap encodes identically. *)
      check_string "restored state re-encodes identically"
        (full_body replayed) (full_body stored))
    (Chain.segments chain);
  (* The latest epoch equals the live heap (flags were just cleared). *)
  let _, stored = Store.restore store ~epoch:7 in
  check_bool "latest epoch equals live state" true (roots_equal w.roots stored)

let store_dedup_and_stats () =
  (* A wide flat heap where each round mutates a single object: repeated
     fulls share almost every chunk, which is exactly the workload content
     addressing is for. *)
  let schema = Schema.create () in
  let leaf = Schema.declare schema ~name:"Leaf" ~ints:1 ~children:0 () in
  let hub = Schema.declare schema ~name:"Hub" ~ints:0 ~children:64 () in
  let heap = Heap.create schema in
  let root = Heap.alloc heap hub in
  let leaves =
    Array.init 64 (fun i ->
        let o = Heap.alloc heap leaf in
        o.Model.ints.(0) <- i;
        root.Model.children.(i) <- Some o;
        o)
  in
  let sim = Sim.create () in
  let store =
    Store.open_ ~vfs:(Sim.vfs sim) ~records_per_chunk:8 schema ~path:store_path
  in
  let root_ids = [ root.Model.info.Model.id ] in
  for r = 0 to 5 do
    if r > 0 then Barrier.set_int leaves.(r) 0 (50_000 + r);
    ignore
      (Store.append_segment store
         { Segment.kind = Segment.Full; seq = r; roots = root_ids;
           body = full_body [ root ] })
  done;
  let s = Store.stats store in
  check_int "six epochs" 6 s.Store.n_epochs;
  check_bool "dedup pays on repeated fulls" true (s.Store.dedup_ratio > 1.5);
  check_bool "fewer chunks than references" true
    (s.Store.n_chunks
    < List.fold_left (fun a (_, n) -> a + n) 0 (Store.refcounts store));
  check_bool "consistent" true (Store.check store = [])

let store_dedup_identical_full () =
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let w = make_world () in
  let store = Store.open_ ~vfs ~records_per_chunk:4 w.schema ~path:store_path in
  let root_ids = List.map (fun o -> o.Model.info.Model.id) w.roots in
  let body = full_body w.roots in
  let mk seq = { Segment.kind = Segment.Full; seq; roots = root_ids; body } in
  let st0 = Store.append_segment store (mk 0) in
  check_bool "first full writes chunks" true (st0.Store.chunks_new > 0);
  check_int "all fresh" st0.Store.chunks_total st0.Store.chunks_new;
  let st1 = Store.append_segment store (mk 1) in
  check_int "identical full writes nothing to the pack" 0 st1.Store.chunks_new;
  check_bool "but still costs its index entry" true (st1.Store.bytes_written > 0);
  check_int "logical bytes unchanged" st0.Store.bytes_logical
    st1.Store.bytes_logical

let store_errors () =
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let w = make_world () in
  let store = Store.open_ ~vfs w.schema ~path:store_path in
  let root_ids = List.map (fun o -> o.Model.info.Model.id) w.roots in
  let body = full_body w.roots in
  let expect_error name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": expected Store.Error")
    | exception Store.Error _ -> ()
  in
  expect_error "incremental on empty store" (fun () ->
      Store.append_segment store
        { Segment.kind = Segment.Incremental; seq = 0; roots = root_ids; body });
  ignore
    (Store.append_segment store
       { Segment.kind = Segment.Full; seq = 0; roots = root_ids; body });
  expect_error "sequence gap" (fun () ->
      Store.append_segment store
        { Segment.kind = Segment.Full; seq = 5; roots = root_ids; body });
  expect_error "unknown epoch" (fun () -> Store.restore store ~epoch:3);
  expect_error "gc Keep_last 0" (fun () ->
      Store.gc store ~retain:(Store.Keep_last 0))

let store_resume_at_nonzero_seq () =
  (* A store (and a chain) may resume from a full at seq > 0 — what remains
     after GC dropped earlier epochs. *)
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let w = make_world () in
  let store = Store.open_ ~vfs w.schema ~path:store_path in
  let root_ids = List.map (fun o -> o.Model.info.Model.id) w.roots in
  ignore
    (Store.append_segment store
       { Segment.kind = Segment.Full; seq = 4; roots = root_ids;
         body = full_body w.roots });
  check_bool "epochs start at 4" true (Store.epochs store = [ 4 ]);
  let chain = Chain.create w.schema in
  Chain.append chain (Store.segment_of_epoch store 4);
  check_int "chain adopts the sequence" 5 (Chain.next_seq chain)

(* ------------------------------------------------------------------ *)
(* Diff.                                                              *)

let store_diff_matches_diff_segments () =
  let sim = Sim.create () in
  let chain, store, _ =
    drive ~policy:(Policy.Full_every 3) ~rounds:7 (Sim.vfs sim)
  in
  let segs = Chain.segments chain in
  let suffix_from_full ~epoch =
    let upto = List.filter (fun (s : Segment.t) -> s.seq <= epoch) segs in
    let rec cut acc = function
      | [] -> acc
      | (s : Segment.t) :: older -> (
          match s.kind with
          | Segment.Full -> s :: acc
          | Segment.Incremental -> cut (s :: acc) older)
    in
    cut [] (List.rev upto)
  in
  List.iter
    (fun (a, b) ->
      let expected =
        Diff.segments (Chain.schema chain)
          ~before:(suffix_from_full ~epoch:a)
          ~after:(suffix_from_full ~epoch:b)
      in
      check_bool
        (Printf.sprintf "diff %d %d matches Diff.segments" a b)
        true
        (Store.diff store a b = expected))
    [ (0, 1); (0, 6); (2, 5); (3, 3); (5, 2); (6, 0) ]

(* ------------------------------------------------------------------ *)
(* GC and refcounts.                                                  *)

let store_gc_retention () =
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let chain, store, _ = drive ~policy:(Policy.Full_every 3) ~rounds:10 vfs in
  ignore chain;
  (* Fulls at 0,3,6,9. Keep_last 4 floors at 6 (widened from 7). *)
  let g = Store.gc store ~retain:(Store.Keep_last 4) in
  check_int "epochs 0..5 dropped" 6 g.Store.dropped_epochs;
  check_bool "chunks reclaimed" true (g.Store.dropped_chunks > 0);
  check_bool "bytes reclaimed" true (g.Store.reclaimed_bytes > 0);
  check_bool "epochs 6..9 kept" true
    (Store.epochs store = [ 6; 7; 8; 9 ]);
  check_bool "kept epochs still restore" true
    (List.for_all
       (fun e ->
         let _, roots = Store.restore store ~epoch:e in
         roots <> [])
       (Store.epochs store));
  check_bool "still consistent" true (Store.check store = []);
  check_bool "no dead chunks survive" true
    (List.for_all (fun (_, n) -> n > 0) (Store.refcounts store));
  (* Idempotent: nothing left to collect. *)
  let g2 = Store.gc store ~retain:(Store.Keep_last 4) in
  check_int "second gc is a no-op" 0 g2.Store.dropped_epochs;
  (* Keep_all never drops epochs. *)
  let g3 = Store.gc store ~retain:Store.Keep_all in
  check_int "Keep_all drops nothing" 0 g3.Store.dropped_epochs;
  (* The store reopens to the post-GC state and accepts the next epoch. *)
  let w2 = make_world () in
  let store2 = Store.open_ ~vfs w2.schema ~path:store_path in
  check_bool "reopen sees the GCed epochs" true
    (Store.epochs store2 = [ 6; 7; 8; 9 ]);
  check_bool "reopen is consistent" true (Store.check store2 = []);
  let _, roots = Store.restore store2 ~epoch:9 in
  check_bool "restore after reopen" true (roots <> [])

(* ------------------------------------------------------------------ *)
(* Manager integration and the stale-temp sweep.                      *)

let manager_sink_lifecycle () =
  let sim = Sim.create () in
  let vfs = Sim.vfs sim in
  let w = make_world () in
  let store = Store.open_ ~vfs ~records_per_chunk:4 w.schema ~path:store_path in
  let m =
    Manager.create ~vfs ~policy:(Policy.Full_every 3)
      ~sink:(Store.manager_sink store) w.schema ~path:store_path
  in
  ignore (Manager.checkpoint m w.roots);
  for r = 1 to 7 do
    w.mutate r;
    ignore (Manager.checkpoint m w.roots)
  done;
  check_bool "eight epochs through the sink" true
    (Store.epochs store = List.init 8 Fun.id);
  (* Recovery through the chain equals restore through the store. *)
  let chain_roots =
    match Chain.recover (Manager.chain m) with
    | Ok (_, roots) -> roots
    | Error e -> Alcotest.fail e
  in
  let _, store_roots = Store.restore store ~epoch:7 in
  check_bool "chain recovery = store restore" true
    (roots_equal chain_roots store_roots);
  (* compact_now maps to GC from the newest full; numbering continues. *)
  Manager.compact_now m;
  check_bool "compaction keeps from the newest full" true
    (Store.epochs store = [ 6; 7 ]);
  w.mutate 99;
  ignore (Manager.checkpoint m w.roots);
  check_bool "numbering continues across compaction" true
    (Store.epochs store = [ 6; 7; 8 ]);
  Manager.close m;
  (* A second manager resumes from the store. *)
  let w2 = make_world () in
  let store2 = Store.open_ ~vfs ~records_per_chunk:4 w2.schema ~path:store_path in
  let m2 =
    Manager.create ~vfs ~sink:(Store.manager_sink store2) w2.schema
      ~path:store_path
  in
  let _, roots = Store.restore store2 ~epoch:8 in
  List.iter (fun o -> Barrier.set_int o 0 424_242) roots;
  ignore (Manager.checkpoint m2 roots);
  check_bool "resumed manager appends epoch 9" true
    (Store.latest_epoch store2 = Some 9);
  let _, roots9 = Store.restore store2 ~epoch:9 in
  check_bool "epoch 9 restores the resumed state" true (roots_equal roots roots9)

(* Regression (satellite bugfix): a staged temp left by a crash
   mid-compaction must be swept on reopen, for both the segment log and
   the store's files. *)
let stale_temp_sweep () =
  (* Manager: seed a valid log plus a stale temp next to it. *)
  let log = "ckpt.log" in
  let w = make_world () in
  let content =
    let sim = Sim.create () in
    let m = Manager.create ~vfs:(Sim.vfs sim) w.schema ~path:log in
    ignore (Manager.checkpoint m w.roots);
    Manager.close m;
    List.assoc log (Sim.durable sim)
  in
  let sim =
    Sim.seeded [ (log, content); (Storage.temp_of ~path:log, "stale garbage") ]
  in
  let vfs = Sim.vfs sim in
  check_bool "temp seeded" true (vfs.Vfs.exists (Storage.temp_of ~path:log));
  let w2 = make_world () in
  let m = Manager.create ~vfs w2.schema ~path:log in
  check_bool "Manager.create sweeps the stale temp" false
    (vfs.Vfs.exists (Storage.temp_of ~path:log));
  ignore (Manager.checkpoint m w2.roots);
  Manager.close m;
  (* And the crash that actually produces one: die between staging the
     compacted log and renaming it. The temp write is the first write op
     after the pre-crash checkpoints. *)
  let find_crash_op () =
    let ref_sim = Sim.create () in
    let vfs = Sim.vfs ref_sim in
    let m = Manager.create ~vfs ~compact_above:2 w.schema ~path:log in
    let w3 = make_world () in
    ignore (Manager.checkpoint m w3.roots);
    w3.mutate 1;
    ignore (Manager.checkpoint m w3.roots);
    let before = Sim.ops ref_sim in
    w3.mutate 2;
    ignore (Manager.checkpoint m w3.roots) (* triggers compaction *);
    (before, Sim.ops ref_sim)
  in
  let before, after = find_crash_op () in
  let found = ref false in
  for op = before to after - 1 do
    let sim = Sim.create ~fault:(Sim.Crash_at { op; byte = 1; mode = Sim.Torn }) () in
    let vfs = Sim.vfs sim in
    (try
       let w3 = make_world () in
       let m = Manager.create ~vfs ~compact_above:2 w3.schema ~path:log in
       ignore (Manager.checkpoint m w3.roots);
       w3.mutate 1;
       ignore (Manager.checkpoint m w3.roots);
       w3.mutate 2;
       ignore (Manager.checkpoint m w3.roots)
     with Sim.Crashed -> ());
    let vfs' = Sim.vfs (Sim.restart sim) in
    if vfs'.Vfs.exists (Storage.temp_of ~path:log) then begin
      found := true;
      let w4 = make_world () in
      let m = Manager.create ~vfs:vfs' w4.schema ~path:log in
      check_bool "reopen after compaction crash sweeps the temp" false
        (vfs'.Vfs.exists (Storage.temp_of ~path:log));
      ignore (Manager.checkpoint m w4.roots);
      Manager.close m
    end
  done;
  check_bool "some crash point left a stale temp" true !found;
  (* Store: stale GC temps are swept by open_. *)
  let sim =
    Sim.seeded
      [ (Storage.temp_of ~path:(Store.pack_path store_path), "junk");
        (Storage.temp_of ~path:(Store.index_path store_path), "junk") ]
  in
  let vfs = Sim.vfs sim in
  let w5 = make_world () in
  ignore (Store.open_ ~vfs w5.schema ~path:store_path);
  check_bool "Store.open_ sweeps pack temp" false
    (vfs.Vfs.exists (Storage.temp_of ~path:(Store.pack_path store_path)));
  check_bool "Store.open_ sweeps index temp" false
    (vfs.Vfs.exists (Storage.temp_of ~path:(Store.index_path store_path)))

(* ------------------------------------------------------------------ *)
(* The crash sweep (extended invariant I7).                           *)

let store_sweep_smoke () =
  let r = Store_sim.sweep ~rounds:4 ~density:1 () in
  if not (Store_sim.ok r) then
    Alcotest.failf "%a" Store_sim.pp_report r;
  check_bool "swept a real number of points" true (r.Store_sim.r_points > 50)

(* ------------------------------------------------------------------ *)
(* QCheck satellite: random synth heaps, all four policies.           *)

let policies =
  [ Policy.Always_full;
    Policy.Incremental_after_base;
    Policy.Full_every 3;
    Policy.Chain_bytes_limit 256 ]

let synth_config_gen =
  let open QCheck2.Gen in
  let* n_structures = int_range 1 4 in
  let* n_lists = int_range 1 3 in
  let* list_len = int_range 1 4 in
  let* n_int_fields = int_range 1 3 in
  let* pct_modified = oneofl [ 25; 50; 100 ] in
  let* modified_lists = int_range 1 n_lists in
  let* last_only = bool in
  let* seed = int_range 0 10_000 in
  let* rounds = int_range 1 5 in
  return
    ( { Ickpt_synth.Synth.n_structures; n_lists; list_len; n_int_fields;
        pct_modified; modified_lists; last_only; seed },
      rounds )

let restore_roundtrip_prop =
  QCheck2.Test.make ~name:"store & chain restores agree on synth heaps"
    ~count:12 ~print:(fun (c, rounds) ->
      Format.asprintf "%a rounds=%d" Ickpt_synth.Synth.pp_config c rounds)
    synth_config_gen
    (fun (config, rounds) ->
      List.for_all
        (fun policy ->
          let t = Ickpt_synth.Synth.build config in
          let roots = Ickpt_synth.Synth.roots t in
          let sim = Sim.create () in
          let chain = Chain.create t.Ickpt_synth.Synth.schema in
          let store =
            Store.open_ ~vfs:(Sim.vfs sim) ~records_per_chunk:4
              t.Ickpt_synth.Synth.schema ~path:store_path
          in
          let epochs = ref [] in
          for r = 0 to rounds do
            if r > 0 then ignore (Ickpt_synth.Synth.mutate_round t);
            let taken =
              match Policy.decide policy chain with
              | Segment.Full -> Chain.take_full chain roots
              | Segment.Incremental -> Chain.take_incremental chain roots
            in
            ignore (Store.append_segment store taken.Chain.segment);
            (* Accumulate+materialize of the chain equals the live heap. *)
            let _, recovered =
              match Chain.recover chain with
              | Ok x -> x
              | Error e -> QCheck2.Test.fail_reportf "recover: %s" e
            in
            if not (roots_equal roots recovered) then
              QCheck2.Test.fail_reportf
                "chain restore differs from live heap at epoch %d" r;
            epochs := r :: !epochs
          done;
          (* Store-backed restore agrees with chain replay at EVERY epoch,
             byte for byte. *)
          List.for_all
            (fun e ->
              let _, replayed = replay_restore chain ~epoch:e in
              let _, stored = Store.restore store ~epoch:e in
              roots_equal replayed stored
              && String.equal (full_body replayed) (full_body stored)
              && String.equal
                   (Segment.encode (Store.segment_of_epoch store e))
                   (Segment.encode
                      (List.find
                         (fun (s : Segment.t) -> s.seq = e)
                         (Chain.segments chain))))
            !epochs
          && Store.check store = [])
        policies)

let suites =
  [ ( "store.hash64",
      [ Alcotest.test_case "basics and vectors" `Quick hash64_basics ] );
    ( "store.chunk",
      [ Alcotest.test_case "split roundtrip" `Quick chunk_split_roundtrip;
        Alcotest.test_case "alignment stability" `Quick
          chunk_alignment_stability ] );
    ( "store.framing",
      [ Alcotest.test_case "pack roundtrip + torn tail" `Quick
          pack_roundtrip_and_torn_tail;
        Alcotest.test_case "index roundtrip + torn tail" `Quick
          index_roundtrip_and_torn_tail ] );
    ( "store.core",
      [ Alcotest.test_case "restore agrees with chain replay" `Quick
          store_restore_agrees_with_replay;
        Alcotest.test_case "dedup: identical full is free" `Quick
          store_dedup_identical_full;
        Alcotest.test_case "dedup ratio on repeated fulls" `Quick
          store_dedup_and_stats;
        Alcotest.test_case "error paths" `Quick store_errors;
        Alcotest.test_case "resume at non-zero seq" `Quick
          store_resume_at_nonzero_seq;
        Alcotest.test_case "diff matches Diff.segments" `Quick
          store_diff_matches_diff_segments;
        Alcotest.test_case "gc retention + reopen" `Quick store_gc_retention ]
    );
    ( "store.manager",
      [ Alcotest.test_case "sink lifecycle" `Quick manager_sink_lifecycle;
        Alcotest.test_case "stale temp sweep (regression)" `Quick
          stale_temp_sweep ] );
    ( "store.sweep",
      [ Alcotest.test_case "crash sweep smoke" `Slow store_sweep_smoke ] );
    ( "store.property", [ QCheck_alcotest.to_alcotest restore_roundtrip_prop ] )
  ]
