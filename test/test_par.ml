(* Interference analysis and domain-parallel execution: schedule shapes
   on the example workloads (strip ranges, refusals with the conflicting
   region pair, phase groups), deterministic replay (the parallel chain
   is byte-identical to the sequential one at any domain count), the
   sequential-identity oracle including the seeded racy overlap that
   only the dynamic footprint check may catch, and the engine's argument
   contract for [~parallel]. *)

module As = Staticcheck.Auto_spec
module If = Staticcheck.Interfere
module Sc = Staticcheck.Interfere.Schedule
module Fi = Staticcheck.Finding
open Ickpt_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let example_path file =
  let candidates =
    [ Filename.concat "../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file;
      Filename.concat "examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "example workload %s not found" file

let example_program file =
  let ic = open_in_bin (example_path file) in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Minic.Parser.parse src

let schedule_example ?(domains = 4) file =
  If.schedule ~domains
    (As.infer (Minic.Check.check (example_program file)))

let sweeps_of sc =
  List.concat_map
    (fun ps ->
      List.filter_map
        (function Sc.Par_sweep sw -> Some sw | Sc.Serial _ -> None)
        ps.Sc.ps_units)
    sc.Sc.sc_phases

let find_sweep sc func =
  match List.find_opt (fun sw -> sw.Sc.sw_func = func) (sweeps_of sc) with
  | Some sw -> sw
  | None ->
      Alcotest.failf "sweep %s not scheduled parallel among %s" func
        (String.concat ", "
           (List.map (fun sw -> sw.Sc.sw_func) (sweeps_of sc)))

let check_strips what expected sw =
  Alcotest.(check (list (pair int int)))
    what expected
    (List.map (fun st -> (st.Sc.st_lo, st.Sc.st_hi)) sw.Sc.sw_strips)

let has_reason sc reason =
  List.exists (fun (f : Fi.t) -> f.Fi.reason = reason) sc.Sc.sc_findings

(* ---- schedule shapes --------------------------------------------------------

   blur: both sweeps of the round phase partition cleanly — smooth's
   strips write disjoint slices of temp while sharing overlapping reads
   of image (common reads are allowed), commit's strips are disjoint on
   both sides. The trailing [return image[32]] phase reads what the loop
   writes, so no phase group forms. *)

let blur_schedule () =
  let sc = schedule_example "blur.mc" in
  check_int "parallel sweeps" 2 sc.Sc.sc_par_sweeps;
  check_int "refused sweeps" 0 sc.Sc.sc_refused_sweeps;
  check_int "phase groups" 0 sc.Sc.sc_groups;
  check_bool "not seeded" false sc.Sc.sc_seeded;
  let smooth = find_sweep sc "smooth" in
  check_strips "smooth strips"
    [ (8, 20); (20, 32); (32, 44); (44, 56) ]
    smooth;
  check_strips "commit strips"
    [ (0, 16); (16, 32); (32, 48); (48, 64) ]
    (find_sweep sc "commit");
  (* the precondition the scheduler claims: every strip pair is
     footprint-disjoint *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            check_bool
              (Printf.sprintf "smooth strips %d/%d disjoint" i j)
              true
              (If.footprint_conflict a.Sc.st_foot b.Sc.st_foot = None))
        smooth.Sc.sw_strips)
    smooth.Sc.sw_strips

(* pagerank: commit_ranks partitions, but scatter's body (per-edge
   accumulation) is not the counted-sweep shape the range reasoning
   handles — it must be refused with a finding, not silently dropped. *)
let pagerank_schedule () =
  let sc = schedule_example "pagerank.mc" in
  check_int "parallel sweeps" 1 sc.Sc.sc_par_sweeps;
  check_int "refused sweeps" 1 sc.Sc.sc_refused_sweeps;
  check_strips "commit_ranks strips"
    [ (0, 4); (4, 8); (8, 12); (12, 16) ]
    (find_sweep sc "commit_ranks");
  check_bool "scatter refusal names the shape" true
    (has_reason sc "body is not assign-then-single-while");
  check_bool "refusals are warnings" true
    (List.for_all
       (fun (f : Fi.t) -> f.Fi.severity = Fi.Warning)
       sc.Sc.sc_findings)

(* kvlog: the hash scatter may send any key to any slot, so every strip
   pair may collide on the whole table — refused with the conflicting
   region pair. The trailing [return table[0] + log_pos] phase reads the
   loop's writes (visible only because phase analysis keeps return-
   expression reads), so no phase group forms either. *)
let kvlog_schedule () =
  let sc = schedule_example "kvlog.mc" in
  check_int "parallel sweeps" 0 sc.Sc.sc_par_sweeps;
  check_int "refused sweeps" 1 sc.Sc.sc_refused_sweeps;
  check_int "phase groups" 0 sc.Sc.sc_groups;
  check_bool "strip refusal names the region pair" true
    (has_reason sc "strips 0 and 1 may conflict on table: 0..63 vs 0..63");
  check_bool "return-read interference is seen" true
    (has_reason sc "phases may interfere on table: 0..63 vs 0");
  (* a single strip is trivially disjoint: at 1 domain the same sweep is
     recognized, not refused *)
  let sc1 = schedule_example ~domains:1 "kvlog.mc" in
  check_int "1-domain parallel sweeps" 1 sc1.Sc.sc_par_sweeps;
  check_int "1-domain refused sweeps" 0 sc1.Sc.sc_refused_sweeps

(* histogram: one setup phase, no round loop — nothing to parallelize,
   and nothing to refuse. *)
let histogram_schedule () =
  let sc = schedule_example "histogram.mc" in
  check_int "parallel sweeps" 0 sc.Sc.sc_par_sweeps;
  check_int "refused sweeps" 0 sc.Sc.sc_refused_sweeps;
  check_int "phase groups" 0 sc.Sc.sc_groups;
  check_int "no findings" 0 (List.length sc.Sc.sc_findings)

(* ---- deterministic merge ----------------------------------------------------

   Replaying domain-local write logs in schedule order must reproduce
   the sequential barrier stream exactly: same program, any domain
   count, byte-identical chains. *)

let segment_keys report =
  List.map
    (fun (s : Ickpt_core.Segment.t) ->
      ( s.Ickpt_core.Segment.kind,
        s.Ickpt_core.Segment.seq,
        s.Ickpt_core.Segment.roots,
        s.Ickpt_core.Segment.body ))
    (Ickpt_core.Chain.segments report.Engine.chain)

let merge_determinism () =
  let program = example_program "blur.mc" in
  let seq = Engine.analyze ~infer:true ~mode:Engine.Incremental program in
  let par1 =
    Engine.analyze ~infer:true ~mode:Engine.Incremental ~parallel:1 program
  in
  let par4 =
    Engine.analyze ~infer:true ~mode:Engine.Incremental ~parallel:4 program
  in
  check_bool "1-domain chain = sequential chain" true
    (segment_keys par1 = segment_keys seq);
  check_bool "4-domain chain = sequential chain" true
    (segment_keys par4 = segment_keys seq);
  (match par4.Engine.par with
  | None -> Alcotest.fail "parallel run carries no par report"
  | Some rep ->
      check_int "domains" 4 rep.Engine.par_domains;
      (* 2 sweeps x 4 rounds fan out, 4 strips each *)
      check_int "sweep fan-outs" 8 rep.Engine.par_sweeps;
      check_int "parallel units" 32 (List.length rep.Engine.par_units));
  check_bool "sequential run carries no par report" true
    (seq.Engine.par = None)

(* ---- phase groups -----------------------------------------------------------

   Two independent while-loops over disjoint globals: all three
   discovered phases have pairwise-disjoint footprints (including the
   lifted loop counters), so they form one parallel group — the
   phase-pairing path, which no example workload exercises. *)

let twoloops_src =
  "int a = 0;\n\
   int b = 0;\n\
   int i = 0;\n\
   int j = 0;\n\
   int main() {\n\
  \  while (i < 5) { a = a + 1; i = i + 1; }\n\
  \  while (j < 5) { b = b + 2; j = j + 1; }\n\
  \  return 0;\n\
   }\n"

let phase_groups () =
  let program = Minic.Parser.parse twoloops_src in
  let sc = If.schedule ~domains:4 (As.infer (Minic.Check.check program)) in
  check_int "one multi-phase group" 1 sc.Sc.sc_groups;
  check_int "three phases" 3 (List.length sc.Sc.sc_phases);
  check_bool "all phases share the group" true
    (List.for_all (fun ps -> ps.Sc.ps_group = 0) sc.Sc.sc_phases);
  let o = Elide_oracle.run_par ~name:"twoloops" program in
  check_bool "grouped execution passes the oracle" true
    (Elide_oracle.par_ok o);
  check_bool "the fork actually ran concurrently-checked pairs" true
    (o.Elide_oracle.pw_pairs_checked > 0)

(* ---- sequential-identity oracle -------------------------------------------- *)

let oracle_blur () =
  let o =
    Elide_oracle.run_par ~name:"blur" (example_program "blur.mc")
  in
  check_bool "oracle passes" true (Elide_oracle.par_ok o);
  check_bool "not seeded" false o.Elide_oracle.pw_seeded;
  check_int "parallel units" 32 o.Elide_oracle.pw_par_units;
  check_int "sweep fan-outs" 8 o.Elide_oracle.pw_par_sweeps;
  check_bool "pairs were checked" true
    (o.Elide_oracle.pw_pairs_checked > 0)

(* The seeded overlap writes the same value into the contested cell, so
   the chains stay byte-identical — identity alone cannot catch it. The
   observed-footprint intersection must. *)
let oracle_seeded_blur () =
  let o =
    Elide_oracle.run_par ~seed_racy:true ~name:"blur"
      (example_program "blur.mc")
  in
  check_bool "seeded" true o.Elide_oracle.pw_seeded;
  check_bool "oracle refuses" false (Elide_oracle.par_ok o);
  check_bool "conflicts observed" true (o.Elide_oracle.pw_conflicts <> []);
  check_bool "chains nonetheless identical (incremental)" true
    o.Elide_oracle.pw_identical_incremental;
  check_bool "chains nonetheless identical (specialized)" true
    o.Elide_oracle.pw_identical_specialized;
  List.iter
    (fun (c : Elide_oracle.par_conflict) ->
      check_bool "conflict names the region" true
        (c.Elide_oracle.pc_detail <> ""))
    o.Elide_oracle.pw_conflicts

(* ---- engine argument contract ---------------------------------------------- *)

let engine_contract () =
  let program = example_program "blur.mc" in
  Alcotest.check_raises "~parallel without ~infer"
    (Invalid_argument
       "Engine.analyze: ~parallel requires ~infer (the schedule comes \
        from the inferred phase structure)")
    (fun () -> ignore (Engine.analyze ~parallel:2 program));
  Alcotest.check_raises "~parallel with ~minimize"
    (Invalid_argument
       "Engine.analyze: ~parallel is incompatible with ~minimize \
        (minimized segments are not byte-comparable)")
    (fun () ->
      ignore
        (Engine.analyze ~infer:true ~mode:Engine.Specialized ~minimize:true
           ~parallel:2 program))

let suites =
  [ ( "interfere-schedule",
      [ Alcotest.test_case "blur strips" `Quick blur_schedule;
        Alcotest.test_case "pagerank refusal" `Quick pagerank_schedule;
        Alcotest.test_case "kvlog conflicts" `Quick kvlog_schedule;
        Alcotest.test_case "histogram serial" `Quick histogram_schedule;
        Alcotest.test_case "phase groups" `Quick phase_groups ] );
    ( "par-engine",
      [ Alcotest.test_case "deterministic merge" `Slow merge_determinism;
        Alcotest.test_case "argument contract" `Quick engine_contract ] );
    ( "par-oracle",
      [ Alcotest.test_case "blur passes" `Slow oracle_blur;
        Alcotest.test_case "seeded racy overlap caught" `Slow
          oracle_seeded_blur ] ) ]
