open Ickpt_runtime
open Ickpt_core
open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let simple_root env =
  build env
    (Pair
       ( 1, 2,
         Some (Node (3, 4, 5, Some (Leaf 6), Some (Leaf 7), None)),
         Some (Leaf 8) ))

(* -- Checkpointer ------------------------------------------------------- *)

let incremental_fresh_records_all () =
  let env = make_env () in
  let root = simple_root env in
  let stats = Checkpointer.fresh_stats () in
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.incremental ~stats d root;
  check_int "all recorded" (Heap.count env.heap) stats.Checkpointer.recorded;
  check_int "none skipped" 0 stats.Checkpointer.skipped;
  check_int "flags reset" 0 (Heap.modified_count env.heap)

let incremental_idempotent () =
  let env = make_env () in
  let root = simple_root env in
  ignore (checkpoint_body [ root ] ~full:false);
  let stats = Checkpointer.fresh_stats () in
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.incremental ~stats d root;
  check_int "nothing recorded second time" 0 stats.Checkpointer.recorded;
  check_int "empty body" 0 (Ickpt_stream.Out_stream.size d);
  check_int "but everything visited" (Heap.count env.heap)
    stats.Checkpointer.visited

let incremental_records_only_modified () =
  let env = make_env () in
  let root = simple_root env in
  ignore (checkpoint_body [ root ] ~full:false);
  (* Dirty exactly one leaf. *)
  (match root.Model.children.(1) with
  | Some leaf -> Barrier.set_int leaf 0 42
  | None -> Alcotest.fail "missing leaf");
  let stats = Checkpointer.fresh_stats () in
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.incremental ~stats d root;
  check_int "one record" 1 stats.Checkpointer.recorded;
  let records = Restore.records_of_body env.schema
      (Ickpt_stream.Out_stream.contents d) in
  (match records with
  | [ r ] ->
      check_int "right object" 42 r.Restore.rec_ints.(0);
      check_int "right class" env.leaf.Model.kid r.Restore.rec_kid
  | _ -> Alcotest.fail "expected exactly one record")

let full_equals_incremental_on_fresh_tree () =
  let env = make_env () in
  let root = simple_root env in
  let full = checkpoint_body [ root ] ~full:true in
  (* Rebuild an identical fresh tree: ids differ, so compare record multisets
     structurally via a second build in a fresh env. *)
  let env2 = make_env () in
  let root2 = simple_root env2 in
  let incr = checkpoint_body [ root2 ] ~full:false in
  Alcotest.(check string) "identical bytes on a fresh tree" full incr

let full_records_dag_once () =
  let env = make_env () in
  let shared = build env (Leaf 9) in
  let root = Heap.alloc env.heap env.pair in
  root.Model.children.(0) <- Some shared;
  root.Model.children.(1) <- Some shared;
  let stats = Checkpointer.fresh_stats () in
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.full ~stats d root;
  check_int "two objects recorded" 2 stats.Checkpointer.recorded;
  (* Incremental also records the shared child once: the flag acts as the
     visited marker. *)
  Barrier.touch shared;
  Barrier.touch root;
  let stats = Checkpointer.fresh_stats () in
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.incremental ~stats d root;
  check_int "incremental dedup via flag" 2 stats.Checkpointer.recorded

let multi_roots_share_visited () =
  let env = make_env () in
  let shared = build env (Leaf 1) in
  let mk () =
    let o = Heap.alloc env.heap env.pair in
    o.Model.children.(0) <- Some shared;
    o
  in
  let r1 = mk () and r2 = mk () in
  let stats = Checkpointer.fresh_stats () in
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.full_many ~stats d [ r1; r2 ];
  check_int "three objects, shared once" 3 stats.Checkpointer.recorded

(* -- Segment ------------------------------------------------------------ *)

let segment_roundtrip () =
  let seg =
    { Segment.kind = Segment.Incremental; seq = 3; roots = [ 7; 9 ];
      body = "some body bytes" }
  in
  let s = Segment.encode seg in
  let seg', next = Segment.decode s ~pos:0 in
  check_bool "kind" true (seg'.Segment.kind = Segment.Incremental);
  check_int "seq" 3 seg'.Segment.seq;
  Alcotest.(check (list int)) "roots" [ 7; 9 ] seg'.Segment.roots;
  Alcotest.(check string) "body" "some body bytes" seg'.Segment.body;
  check_int "consumed" (String.length s) next;
  check_int "encoded_size" (String.length s) (Segment.encoded_size seg)

let segment_detects_corruption () =
  let seg =
    { Segment.kind = Segment.Full; seq = 0; roots = [ 0 ]; body = "abcdef" }
  in
  let s = Bytes.of_string (Segment.encode seg) in
  let mid = Bytes.length s / 2 in
  Bytes.set s mid (Char.chr (Char.code (Bytes.get s mid) lxor 0x40));
  match Segment.decode (Bytes.to_string s) ~pos:0 with
  | _ -> Alcotest.fail "corruption not detected"
  | exception Ickpt_stream.In_stream.Corrupt _ -> ()

let segment_detects_truncation () =
  let seg =
    { Segment.kind = Segment.Full; seq = 0; roots = [ 0 ]; body = "abcdef" }
  in
  let s = Segment.encode seg in
  let s = String.sub s 0 (String.length s - 2) in
  match Segment.decode s ~pos:0 with
  | _ -> Alcotest.fail "truncation not detected"
  | exception Ickpt_stream.In_stream.Corrupt _ -> ()

let segment_decode_all () =
  let mk i =
    { Segment.kind = (if i = 0 then Segment.Full else Segment.Incremental);
      seq = i; roots = [ 0 ]; body = String.make (i + 1) 'x' }
  in
  let segs = List.init 4 mk in
  let blob = String.concat "" (List.map Segment.encode segs) in
  let back = Segment.decode_all blob in
  check_int "all decoded" 4 (List.length back);
  List.iteri (fun i seg -> check_int "seq order" i seg.Segment.seq) back

(* -- Restore ------------------------------------------------------------ *)

let restore_roundtrip () =
  let env = make_env () in
  let root = simple_root env in
  let body = checkpoint_body [ root ] ~full:true in
  let table = Restore.empty_table () in
  Restore.apply_segment env.schema table
    { Segment.kind = Segment.Full; seq = 0;
      roots = [ root.Model.info.Model.id ]; body };
  let _heap, roots =
    Restore.materialize env.schema table ~roots:[ root.Model.info.Model.id ]
  in
  match roots with
  | [ root' ] -> (
      match Deep_eq.compare_graphs root root' with
      | None -> ()
      | Some m -> Alcotest.failf "restored graph differs: %a" Deep_eq.pp_mismatch m)
  | _ -> Alcotest.fail "expected one root"

let restore_unknown_class () =
  let env = make_env () in
  let d = Ickpt_stream.Out_stream.create () in
  Ickpt_stream.Out_stream.write_int d 0;
  (* id *)
  Ickpt_stream.Out_stream.write_int d 999;
  (* bogus kid *)
  match Restore.records_of_body env.schema (Ickpt_stream.Out_stream.contents d) with
  | _ -> Alcotest.fail "unknown class accepted"
  | exception Restore.Error _ -> ()

let restore_dangling_child () =
  let env = make_env () in
  let root = simple_root env in
  let body = checkpoint_body [ root ] ~full:true in
  (* Drop the first record (the root) from the table: children now dangle
     when other objects reference... the root has no parent, so instead
     restore with a table missing one leaf by filtering records. *)
  let records = Restore.records_of_body env.schema body in
  let victim =
    List.find (fun r -> r.Restore.rec_kid = env.leaf.Model.kid) records
  in
  let table = Restore.empty_table () in
  Restore.apply_segment env.schema table
    { Segment.kind = Segment.Full; seq = 0; roots = []; body };
  (* Rebuild the table without the victim. *)
  let table2 = Restore.empty_table () in
  List.iter
    (fun r ->
      if r.Restore.rec_id <> victim.Restore.rec_id then
        Restore.apply_segment env.schema table2
          { Segment.kind = Segment.Full; seq = 0; roots = [];
            body =
              (let d = Ickpt_stream.Out_stream.create () in
               Ickpt_stream.Out_stream.write_int d r.Restore.rec_id;
               Ickpt_stream.Out_stream.write_int d r.Restore.rec_kid;
               Array.iter (Ickpt_stream.Out_stream.write_int d) r.Restore.rec_ints;
               Array.iter (Ickpt_stream.Out_stream.write_int d) r.Restore.rec_child_ids;
               Ickpt_stream.Out_stream.contents d) })
    records;
  match
    Restore.materialize env.schema table2 ~roots:[ root.Model.info.Model.id ]
  with
  | _ -> Alcotest.fail "dangling child accepted"
  | exception Restore.Error _ -> ()

let restore_missing_root () =
  let env = make_env () in
  let table = Restore.empty_table () in
  match Restore.materialize env.schema table ~roots:[ 5 ] with
  | _ -> Alcotest.fail "missing root accepted"
  | exception Restore.Error _ -> ()

let restore_newest_wins () =
  let env = make_env () in
  let root = build env (Leaf 1) in
  let chain = Chain.create env.schema in
  ignore (Chain.take_full chain [ root ]);
  Barrier.set_int root 0 2;
  ignore (Chain.take_incremental chain [ root ]);
  Barrier.set_int root 0 3;
  ignore (Chain.take_incremental chain [ root ]);
  match Chain.recover chain with
  | Ok (_, [ root' ]) -> check_int "latest value" 3 root'.Model.ints.(0)
  | Ok _ -> Alcotest.fail "wrong roots"
  | Error e -> Alcotest.fail e

(* -- Chain -------------------------------------------------------------- *)

let chain_requires_full_base () =
  let env = make_env () in
  let root = build env (Leaf 1) in
  let chain = Chain.create env.schema in
  match Chain.take_incremental chain [ root ] with
  | _ -> Alcotest.fail "baseless incremental accepted"
  | exception Chain.Invalid _ -> ()

let chain_seq_validation () =
  let env = make_env () in
  let chain = Chain.create env.schema in
  (* A full may START a chain at any sequence number (a store resumes from
     its oldest retained epoch after GC) — the chain adopts its seq... *)
  let seg = { Segment.kind = Segment.Full; seq = 5; roots = []; body = "" } in
  Chain.append chain seg;
  Alcotest.(check int) "chain adopts the full's seq" 6 (Chain.next_seq chain);
  (* ...but later segments must stay contiguous. *)
  let gap = { Segment.kind = Segment.Full; seq = 8; roots = []; body = "" } in
  (match Chain.append chain gap with
  | _ -> Alcotest.fail "sequence gap accepted"
  | exception Chain.Invalid _ -> ());
  (* And a negative starting seq is rejected. *)
  let neg = { Segment.kind = Segment.Full; seq = -1; roots = []; body = "" } in
  match Chain.append (Chain.create env.schema) neg with
  | _ -> Alcotest.fail "negative seq accepted"
  | exception Chain.Invalid _ -> ()

let chain_recover_matches_live () =
  let env = make_env () in
  let root = simple_root env in
  let chain = Chain.create env.schema in
  ignore (Chain.take_full chain [ root ]);
  apply_mutations root
    [ { victim = 1; slot = 0; value = 100 };
      { victim = 3; slot = 0; value = -5 } ];
  ignore (Chain.take_incremental chain [ root ]);
  match Chain.recover chain with
  | Ok (_, [ root' ]) -> (
      match Deep_eq.compare_graphs root root' with
      | None -> ()
      | Some m -> Alcotest.failf "recovery differs: %a" Deep_eq.pp_mismatch m)
  | Ok _ -> Alcotest.fail "wrong root count"
  | Error e -> Alcotest.fail e

let chain_compact_preserves_state () =
  let env = make_env () in
  let root = simple_root env in
  let chain = Chain.create env.schema in
  ignore (Chain.take_full chain [ root ]);
  apply_mutations root [ { victim = 0; slot = 1; value = 77 } ];
  ignore (Chain.take_incremental chain [ root ]);
  let before =
    match Chain.recover chain with Ok (_, [ r ]) -> r | _ -> assert false
  in
  Chain.compact chain;
  check_int "single segment" 1 (Chain.length chain);
  match Chain.recover chain with
  | Ok (_, [ after ]) ->
      check_bool "equal after compact" true (Deep_eq.equal before after)
  | _ -> Alcotest.fail "recovery failed after compact"

let chain_total_bytes () =
  let env = make_env () in
  let root = simple_root env in
  let chain = Chain.create env.schema in
  let t1 = Chain.take_full chain [ root ] in
  let t2 = Chain.take_incremental chain [ root ] in
  check_int "sum of bodies"
    (Segment.body_size t1.Chain.segment + Segment.body_size t2.Chain.segment)
    (Chain.total_bytes chain)

(* Property (I2): recovery after any mutation script equals the live heap. *)
let prop_chain_equivalence =
  QCheck2.Test.make ~name:"chain recovery == live state (random)" ~count:100
    QCheck2.Gen.(pair tree_gen (list_size (int_range 0 5) (list_size (int_range 0 8) mutation_gen)))
    (fun (t, rounds) ->
      let env = make_env () in
      let root = build env t in
      let chain = Chain.create env.schema in
      ignore (Chain.take_full chain [ root ]);
      List.iter
        (fun muts ->
          apply_mutations root muts;
          ignore (Chain.take_incremental chain [ root ]))
        rounds;
      match Chain.recover chain with
      | Ok (_, [ root' ]) -> Deep_eq.equal root root'
      | _ -> false)

(* -- Storage ------------------------------------------------------------ *)

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let storage_roundtrip () =
  let env = make_env () in
  let root = simple_root env in
  let chain = Chain.create env.schema in
  ignore (Chain.take_full chain [ root ]);
  Barrier.set_int root 0 11;
  ignore (Chain.take_incremental chain [ root ]);
  let path = temp_path "ickpt_storage_roundtrip.log" in
  if Sys.file_exists path then Sys.remove path;
  Storage.write_chain ~path chain;
  let chain', torn = Storage.load_chain env.schema ~path in
  check_bool "not torn" false torn;
  check_int "both segments" 2 (Chain.length chain');
  (match Chain.recover chain' with
  | Ok (_, [ root' ]) -> check_bool "state" true (Deep_eq.equal root root')
  | _ -> Alcotest.fail "recovery failed");
  Sys.remove path

let storage_append_accumulates () =
  let env = make_env () in
  let root = simple_root env in
  let chain = Chain.create env.schema in
  let t1 = Chain.take_full chain [ root ] in
  Barrier.set_int root 0 5;
  let t2 = Chain.take_incremental chain [ root ] in
  let path = temp_path "ickpt_storage_append.log" in
  if Sys.file_exists path then Sys.remove path;
  Storage.append ~path t1.Chain.segment;
  Storage.append ~path t2.Chain.segment;
  let { Storage.segments; torn_tail; _ } = Storage.load path in
  check_bool "not torn" false torn_tail;
  check_int "two segments" 2 (List.length segments);
  Sys.remove path

let storage_torn_tail () =
  let env = make_env () in
  let root = simple_root env in
  let chain = Chain.create env.schema in
  ignore (Chain.take_full chain [ root ]);
  Barrier.set_int root 0 5;
  ignore (Chain.take_incremental chain [ root ]);
  let path = temp_path "ickpt_storage_torn.log" in
  if Sys.file_exists path then Sys.remove path;
  Storage.write_chain ~path chain;
  (* Chop a few bytes off the end: simulates a crash mid-write. *)
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub data 0 (String.length data - 3));
  close_out oc;
  let { Storage.segments; torn_tail; _ } = Storage.load path in
  check_bool "torn detected" true torn_tail;
  check_int "intact prefix survives" 1 (List.length segments);
  (* The surviving prefix is still recoverable. *)
  let chain', _ = Storage.load_chain env.schema ~path in
  (match Chain.recover chain' with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Sys.remove path

let storage_missing_file () =
  let { Storage.segments; torn_tail; bytes_read } =
    Storage.load (temp_path "ickpt_never_written.log")
  in
  check_bool "no segments" true (segments = []);
  check_bool "not torn" false torn_tail;
  check_int "no bytes" 0 bytes_read

(* -- Policy -------------------------------------------------------------- *)

let policy_decisions () =
  let env = make_env () in
  let root = build env (Leaf 0) in
  let chain = Chain.create env.schema in
  let is_full p = Policy.decide p chain = Segment.Full in
  check_bool "empty chain always full" true (is_full Policy.Incremental_after_base);
  ignore (Chain.take_full chain [ root ]);
  check_bool "always_full stays full" true (is_full Policy.Always_full);
  check_bool "incremental after base" false
    (is_full Policy.Incremental_after_base);
  (* Full_every 3: seqs 0,3,6,... are full. *)
  check_bool "seq 1 incremental" false (is_full (Policy.Full_every 3));
  Barrier.touch root;
  ignore (Chain.take_incremental chain [ root ]);
  Barrier.touch root;
  ignore (Chain.take_incremental chain [ root ]);
  check_bool "seq 3 full" true (is_full (Policy.Full_every 3));
  check_bool "bytes limit 0 triggers full" true
    (is_full (Policy.Chain_bytes_limit 0));
  check_bool "huge limit stays incremental" false
    (is_full (Policy.Chain_bytes_limit max_int))

let suites =
  [ ( "checkpointer",
      [ Alcotest.test_case "fresh records all" `Quick incremental_fresh_records_all;
        Alcotest.test_case "idempotent" `Quick incremental_idempotent;
        Alcotest.test_case "records only modified" `Quick
          incremental_records_only_modified;
        Alcotest.test_case "full == incremental on fresh tree" `Quick
          full_equals_incremental_on_fresh_tree;
        Alcotest.test_case "dag recorded once" `Quick full_records_dag_once;
        Alcotest.test_case "multi roots share visited" `Quick
          multi_roots_share_visited ] );
    ( "segment",
      [ Alcotest.test_case "roundtrip" `Quick segment_roundtrip;
        Alcotest.test_case "detects corruption" `Quick segment_detects_corruption;
        Alcotest.test_case "detects truncation" `Quick segment_detects_truncation;
        Alcotest.test_case "decode_all" `Quick segment_decode_all ] );
    ( "restore",
      [ Alcotest.test_case "roundtrip" `Quick restore_roundtrip;
        Alcotest.test_case "unknown class" `Quick restore_unknown_class;
        Alcotest.test_case "dangling child" `Quick restore_dangling_child;
        Alcotest.test_case "missing root" `Quick restore_missing_root;
        Alcotest.test_case "newest wins" `Quick restore_newest_wins ] );
    ( "chain",
      [ Alcotest.test_case "requires full base" `Quick chain_requires_full_base;
        Alcotest.test_case "seq validation" `Quick chain_seq_validation;
        Alcotest.test_case "recover matches live" `Quick chain_recover_matches_live;
        Alcotest.test_case "compact preserves state" `Quick
          chain_compact_preserves_state;
        Alcotest.test_case "total bytes" `Quick chain_total_bytes;
        QCheck_alcotest.to_alcotest prop_chain_equivalence ] );
    ( "storage",
      [ Alcotest.test_case "roundtrip" `Quick storage_roundtrip;
        Alcotest.test_case "append accumulates" `Quick storage_append_accumulates;
        Alcotest.test_case "torn tail" `Quick storage_torn_tail;
        Alcotest.test_case "missing file" `Quick storage_missing_file ] );
    ("policy", [ Alcotest.test_case "decisions" `Quick policy_decisions ]) ]
