(* Static write-barrier elision: the Barrier_elide plans, the guard-work
   reduction they buy, and the Elide_oracle differential soundness checks
   (byte-identical chains + invariant I8) over every workload. *)

open Ickpt_analysis
module Be = Staticcheck.Barrier_elide
module Pm = Staticcheck.Phase_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- plan shapes ---------------------------------------------------------- *)

(* Each phase writes exactly one site family; the other two elide. *)
let expected_elisions =
  [ (Pm.Sea, [ Be.Bt; Be.Et ]);
    (Pm.Bta, [ Be.Lists; Be.Et ]);
    (Pm.Eta, [ Be.Lists; Be.Bt ]) ]

let declared attrs = function
  | Pm.Sea -> Attrs.sea_shape attrs
  | Pm.Bta -> Attrs.bta_shape attrs
  | Pm.Eta -> Attrs.eta_shape attrs

let plan_decisions () =
  let attrs = Attrs.create ~n_stmts:64 in
  List.iter
    (fun (phase, expected) ->
      let plan = Be.plan ~declared:(declared attrs phase) phase in
      let elided = Be.elided plan in
      List.iter
        (fun site ->
          check_bool
            (Printf.sprintf "%s elides %s" (Pm.name phase) (Be.site_name site))
            (List.mem site expected) (List.mem site elided))
        Be.all_sites;
      (* the kept site is the one the phase really writes: region non-empty *)
      List.iter
        (fun site ->
          let d = Be.decision plan site in
          check_bool
            (Printf.sprintf "%s %s region emptiness" (Pm.name phase)
               (Be.site_name site))
            d.Be.elide
            (Staticcheck.Regions.is_bot d.Be.region))
        Be.all_sites)
    expected_elisions

let guards_fully_discharged () =
  let attrs = Attrs.create ~n_stmts:64 in
  List.iter
    (fun (phase, _) ->
      let plan = Be.plan ~declared:(declared attrs phase) phase in
      check_bool
        (Pm.name phase ^ " guard discharged")
        true
        (plan.Be.guard_shape = None);
      check_bool
        (Pm.name phase ^ " no error findings")
        false
        (Staticcheck.Finding.has_errors plan.Be.findings))
    expected_elisions

(* Rescaling: emptiness is invariant; a region reaching the last model
   cell extends to the workload's statement count. *)
let region_rescaling () =
  let sea_lists = Be.site_region_for ~n_stmts:488 Pm.Sea Be.Lists in
  check_bool "sea se-lists covers large workloads" true
    (Staticcheck.Regions.mem 487 sea_lists);
  check_bool "sea bt stays empty at any size" true
    (Staticcheck.Regions.is_bot (Be.site_region_for ~n_stmts:488 Pm.Sea Be.Bt));
  let small = Be.site_region_for ~n_stmts:8 Pm.Sea Be.Lists in
  check_bool "clamped to small workload" false
    (Staticcheck.Regions.mem 8 small);
  check_bool "small workload still covered" true
    (Staticcheck.Regions.mem 7 small)

(* ---- unsound declaration: barrier kept, guard retained -------------------- *)

(* Declare the bta shape (SEEntry subtrees Clean) for the sea phase,
   which writes the side-effect lists: the planner must refuse to elide
   the written site, emit an Error finding, and keep a runtime guard. *)
let unsound_declaration_kept () =
  let attrs = Attrs.create ~n_stmts:64 in
  let plan = Be.plan ~declared:(Attrs.bta_shape attrs) Pm.Sea in
  check_bool "se-lists barrier kept" false
    (List.mem Be.Lists (Be.elided plan));
  check_bool "error finding emitted" true
    (Staticcheck.Finding.has_errors plan.Be.findings);
  check_bool "guard retained" true (plan.Be.guard_shape <> None)

(* ---- guard-work reduction ------------------------------------------------- *)

(* With every phase guard statically discharged, the elided
   guarded-specialized run performs zero guard traversals; the
   instrumented one walks the attribute tree every checkpoint. *)
let guard_visits_drop () =
  let program = Minic.Gen.small_program () in
  Jspec.Guard.reset_visits ();
  let (_ : Engine.report) =
    Engine.analyze ~mode:Engine.Specialized ~guard:true ~elide:false program
  in
  let instrumented = Jspec.Guard.nodes_visited () in
  Jspec.Guard.reset_visits ();
  let (_ : Engine.report) =
    Engine.analyze ~mode:Engine.Specialized ~guard:true ~elide:true program
  in
  let elided = Jspec.Guard.nodes_visited () in
  check_bool "instrumented run guards" true (instrumented > 0);
  check_int "elided run skips every guard" 0 elided

(* ---- differential oracle -------------------------------------------------- *)

let oracle_outcome name program =
  let o = Elide_oracle.run ~name program in
  if not (Elide_oracle.ok o) then
    Alcotest.failf "oracle failed:@\n%a" Elide_oracle.pp o;
  check_bool (name ^ ": segments decoded") true (o.Elide_oracle.segments_checked > 0);
  check_bool (name ^ ": dirty cells observed") true (o.Elide_oracle.dirty_cells > 0)

let oracle_builtin () =
  List.iter
    (fun (name, program) -> oracle_outcome name program)
    (Elide_oracle.builtin_workloads ())

(* The example mini-C workloads, declared as dune deps of the test so
   they are present in the sandbox. *)
(* `dune runtest` runs the binary in the test directory; `dune exec`
   runs it at the workspace root. Probe both. *)
let example_path file =
  let candidates =
    [ Filename.concat "../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file;
      Filename.concat "examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "example workload %s not found" file

let oracle_examples () =
  List.iter
    (fun file ->
      let path = example_path file in
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      oracle_outcome file (Minic.Parser.parse src))
    [ "blur.mc"; "histogram.mc" ]

let suites =
  [ ( "barrier-elide",
      [ Alcotest.test_case "plan decisions" `Quick plan_decisions;
        Alcotest.test_case "guards discharged" `Quick guards_fully_discharged;
        Alcotest.test_case "region rescaling" `Quick region_rescaling;
        Alcotest.test_case "unsound declaration kept" `Quick
          unsound_declaration_kept;
        Alcotest.test_case "guard visits drop" `Quick guard_visits_drop ] );
    ( "elide-oracle",
      [ Alcotest.test_case "builtin workloads" `Quick oracle_builtin;
        Alcotest.test_case "example workloads" `Quick oracle_examples ] ) ]
