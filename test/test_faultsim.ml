(* Tests for the fault-injection vfs and the crash-consistency fixes:
   regression tests pinning the three bugs this PR fixes (torn-append,
   hostile segment lengths, failed-writer draining), the atomic-compaction
   guarantee, a qcheck fuzz over Storage.load / Segment.decode_all, and a
   smoke run of the crash sweep itself. *)

open Ickpt_stream
open Ickpt_runtime
open Ickpt_core
open Ickpt_faultsim
open Test_util

let log = "ckpt.log"

let seg kind seq body = { Segment.kind; seq; roots = [ 0 ]; body }

(* ------------------------------------------------------------------ *)
(* The simulator itself: the durability contract it models.           *)

let sim_crash_modes () =
  let run mode =
    (* ops: 0 write "aaa", 1 sync, 2 write "bbb", 3 write "ccc" (crash
       after 1 byte of it). *)
    let sim =
      Sim.create ~fault:(Sim.Crash_at { op = 3; byte = 1; mode }) ()
    in
    let vfs = Sim.vfs sim in
    let w = vfs.Vfs.open_append "f" in
    w.Vfs.write "aaa";
    w.Vfs.sync ();
    w.Vfs.write "bbb";
    (match w.Vfs.write "ccc" with
    | () -> Alcotest.fail "expected simulated power loss"
    | exception Sim.Crashed -> ());
    Alcotest.(check bool) "machine is down" true (Sim.crashed sim);
    (match vfs.Vfs.read_file "f" with
    | _ -> Alcotest.fail "reads after power loss must raise"
    | exception Sim.Crashed -> ());
    List.assoc "f" (Sim.durable (Sim.restart sim))
  in
  Alcotest.(check string) "torn keeps every applied byte" "aaabbbc"
    (run Sim.Torn);
  Alcotest.(check string) "drop-unsynced keeps only synced bytes" "aaa"
    (run Sim.Drop_unsynced);
  let corrupted = run Sim.Corrupt_tail in
  Alcotest.(check int) "corrupt-tail keeps the torn length" 7
    (String.length corrupted);
  Alcotest.(check string) "corrupt-tail leaves synced bytes alone" "aaa"
    (String.sub corrupted 0 3);
  Alcotest.(check bool) "corrupt-tail flips an unsynced byte" true
    (corrupted <> "aaabbbc")

let sim_rename_atomic () =
  let sim = Sim.seeded [ (log, "old") ] in
  let vfs = Sim.vfs sim in
  let w = vfs.Vfs.open_trunc "tmp" in
  w.Vfs.write "new!";
  w.Vfs.sync ();
  vfs.Vfs.rename ~src:"tmp" ~dst:log;
  Alcotest.(check string) "rename replaces contents" "new!"
    (vfs.Vfs.read_file log);
  Alcotest.(check bool) "source is gone" false (vfs.Vfs.exists "tmp")

(* ------------------------------------------------------------------ *)
(* Bug 1 (Manager): resuming over a torn tail used to append after the
   garbage, making every later segment unreachable.                    *)

let torn_tail_resume_roundtrip () =
  let env = make_env () in
  let root = build env (Pair (1, 2, Some (Leaf 3), Some (Leaf 4))) in
  (* First life: two durable checkpoints. *)
  let sim = Sim.create () in
  let m = Manager.create ~vfs:(Sim.vfs sim) env.schema ~path:log in
  ignore (Manager.checkpoint m [ root ]);
  Barrier.set_int root 0 41;
  ignore (Manager.checkpoint m [ root ]);
  Manager.close m;
  let content = List.assoc log (Sim.durable sim) in
  (* Power loss mid-append left a torn segment at the tail. *)
  let torn = content ^ String.sub (Segment.encode (seg Segment.Full 9 "x")) 0 7 in
  let sim2 = Sim.seeded [ (log, torn) ] in
  let vfs2 = Sim.vfs sim2 in
  (* Second life: resume must truncate the garbage before appending. *)
  let m2 = Manager.create ~vfs:vfs2 env.schema ~path:log in
  Barrier.set_int root 0 42;
  ignore (Manager.checkpoint m2 [ root ]);
  Manager.close m2;
  match Manager.recover_latest ~vfs:vfs2 env.schema ~path:log with
  | Error e -> Alcotest.failf "recovery after resume failed: %s" e
  | Ok (_, roots) -> (
      match roots with
      | [ r ] ->
          Alcotest.(check bool)
            "checkpoint appended after a torn tail is readable" true
            (Deep_eq.equal root r)
      | _ -> Alcotest.fail "expected exactly one recovered root")

(* ------------------------------------------------------------------ *)
(* Bug 2 (Segment): a hostile varint length used to escape as
   Invalid_argument from String.sub instead of In_stream.Corrupt.      *)

let hostile_header ~nroots ~body_len =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d 0x49434b50 (* magic "ICKP" *);
  Out_stream.write_byte d Segment.version;
  Out_stream.write_byte d 0 (* kind = full *);
  Out_stream.write_int d 0 (* seq *);
  Out_stream.write_int d nroots;
  if nroots = 0 then Out_stream.write_int d body_len;
  Out_stream.contents d ^ String.make 16 'x'

let hostile_body_len () =
  let s = hostile_header ~nroots:0 ~body_len:max_int in
  (match Segment.decode s ~pos:0 with
  | _ -> Alcotest.fail "hostile body length accepted"
  | exception In_stream.Corrupt _ -> ());
  (* Storage.load must fold the same input into a torn tail, not raise. *)
  let vfs = Sim.vfs (Sim.seeded [ (log, s) ]) in
  let { Storage.segments; torn_tail; bytes_read } = Storage.load ~vfs log in
  Alcotest.(check int) "no segment decoded" 0 (List.length segments);
  Alcotest.(check bool) "flagged as torn" true torn_tail;
  Alcotest.(check int) "safe truncation point is 0" 0 bytes_read

let hostile_root_count () =
  let s = hostile_header ~nroots:max_int ~body_len:0 in
  match Segment.decode s ~pos:0 with
  | _ -> Alcotest.fail "hostile root count accepted"
  | exception In_stream.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Bug 3 (Async_writer): after a write failure the loop used to keep
   draining queued segments into the broken channel.                   *)

let failed_writer_stops_draining () =
  (* The very first write op fails; the delay keeps the writer thread
     busy long enough for the queue to fill up deterministically. *)
  let sim = Sim.create ~fault:(Sim.Fail_write_at 0) ~write_delay:0.1 () in
  let w = Async_writer.create ~vfs:(Sim.vfs sim) ~path:log () in
  Async_writer.enqueue w (seg Segment.Full 0 "a");
  Async_writer.enqueue w (seg Segment.Incremental 1 "b");
  Async_writer.enqueue w (seg Segment.Incremental 2 "c");
  (match Async_writer.flush w with
  | () -> Alcotest.fail "flush on a failed writer must raise"
  | exception Failure _ -> ());
  Alcotest.(check int) "no draining into a broken channel" 1 (Sim.ops sim);
  (match Async_writer.enqueue w (seg Segment.Incremental 3 "d") with
  | () -> Alcotest.fail "enqueue after failure must raise"
  | exception Failure _ -> ());
  (* close must return promptly (not wait for an impossible drain) and
     must not attempt further writes. *)
  Async_writer.close w;
  Alcotest.(check int) "close wrote nothing further" 1 (Sim.ops sim)

(* ------------------------------------------------------------------ *)
(* Atomic compaction: a crash anywhere inside write_chain leaves either
   the complete old log or the complete new one.                       *)

let compaction_crash_atomic () =
  let env = make_env () in
  let root = build env (Pair (0, 0, Some (Leaf 0), None)) in
  let sim = Sim.create () in
  let m = Manager.create ~vfs:(Sim.vfs sim) env.schema ~path:log in
  ignore (Manager.checkpoint m [ root ]);
  Barrier.set_int root 0 1;
  ignore (Manager.checkpoint m [ root ]);
  Barrier.set_int root 0 2;
  ignore (Manager.checkpoint m [ root ]);
  Manager.close m;
  let content = List.assoc log (Sim.durable sim) in
  (* Fault-free reference: write_chain is ops 0 (tmp write), 1 (tmp
     sync), 2 (rename). *)
  let crash_during op byte =
    let sim =
      Sim.seeded
        ~fault:(Sim.Crash_at { op; byte; mode = Sim.Torn })
        [ (log, content) ]
    in
    let vfs = Sim.vfs sim in
    let chain, torn = Storage.load_chain ~vfs env.schema ~path:log in
    Alcotest.(check bool) "seeded log is intact" false torn;
    Chain.compact chain;
    (match Storage.write_chain ~vfs ~path:log chain with
    | () -> Alcotest.fail "expected simulated power loss"
    | exception Sim.Crashed -> ());
    Storage.load ~vfs:(Sim.vfs (Sim.restart sim)) log
  in
  let r = crash_during 0 10 in
  Alcotest.(check int) "torn tmp write: old log intact" 3
    (List.length r.Storage.segments);
  Alcotest.(check bool) "torn tmp write: log not torn" false
    r.Storage.torn_tail;
  let r = crash_during 2 0 in
  Alcotest.(check int) "crash before rename: old log" 3
    (List.length r.Storage.segments);
  let r = crash_during 2 1 in
  Alcotest.(check int) "crash after rename: compacted log" 1
    (List.length r.Storage.segments);
  Alcotest.(check bool) "compacted log not torn" false r.Storage.torn_tail

(* ------------------------------------------------------------------ *)
(* Fuzz: random mutations of a valid log never make loading raise, and
   whatever loads is a prefix of what was written.                     *)

type fuzz_op = Truncate of int | Flip of int | Splice of string

let fuzz_segs_gen =
  let open QCheck2.Gen in
  let seg_gen =
    let* full = bool in
    let* seq = int_range 0 200 in
    let* roots = list_size (int_range 0 3) (int_range 0 100) in
    let* body = string_size (int_range 0 40) in
    return
      { Segment.kind = (if full then Segment.Full else Segment.Incremental);
        seq;
        roots;
        body }
  in
  list_size (int_range 1 4) seg_gen

let fuzz_ops_gen =
  let open QCheck2.Gen in
  let op_gen =
    let* which = int_range 0 2 in
    match which with
    | 0 -> map (fun p -> Truncate p) nat
    | 1 -> map (fun p -> Flip p) nat
    | _ -> map (fun s -> Splice s) (string_size (int_range 1 12))
  in
  list_size (int_range 1 3) op_gen

let apply_fuzz_op data = function
  | Truncate p -> String.sub data 0 (p mod (String.length data + 1))
  | Flip p ->
      if data = "" then data
      else begin
        let b = Bytes.of_string data in
        let i = p mod String.length data in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 + (p mod 255))));
        Bytes.to_string b
      end
  | Splice s -> data ^ s

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let fuzz_load =
  QCheck2.Test.make ~count:300
    ~name:"fuzzed log: load never raises, yields a written prefix"
    QCheck2.Gen.(pair fuzz_segs_gen fuzz_ops_gen)
    (fun (segs, ops) ->
      let mutated =
        List.fold_left apply_fuzz_op
          (String.concat "" (List.map Segment.encode segs))
          ops
      in
      let vfs = Sim.vfs (Sim.seeded [ (log, mutated) ]) in
      match Storage.load ~vfs log with
      | exception e ->
          QCheck2.Test.fail_reportf "load raised %s" (Printexc.to_string e)
      | { Storage.segments; torn_tail; bytes_read } ->
          is_prefix segments segs
          && bytes_read <= String.length mutated
          && (torn_tail || bytes_read = String.length mutated))

let fuzz_decode_all =
  QCheck2.Test.make ~count:300
    ~name:"fuzzed log: decode_all raises Corrupt or nothing"
    QCheck2.Gen.(pair fuzz_segs_gen fuzz_ops_gen)
    (fun (segs, ops) ->
      let mutated =
        List.fold_left apply_fuzz_op
          (String.concat "" (List.map Segment.encode segs))
          ops
      in
      match Segment.decode_all mutated with
      | _ -> true
      | exception In_stream.Corrupt _ -> true)

let fuzz_decode_garbage =
  QCheck2.Test.make ~count:500
    ~name:"arbitrary bytes: decode raises Corrupt or nothing"
    QCheck2.Gen.(string_size (int_range 0 120))
    (fun s ->
      match Segment.decode s ~pos:0 with
      | _ -> true
      | exception In_stream.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* The sweep itself, on a small config subset (the full 18-config sweep
   runs under the @crash alias).                                       *)

let sweep_smoke () =
  let configs =
    [ Crash_sim.config Policy.Incremental_after_base;
      Crash_sim.config ~async:true ~compact_above:3 (Policy.Full_every 2);
      Crash_sim.config ~pre_torn:true Policy.Incremental_after_base ]
  in
  List.iter
    (fun cfg ->
      let r = Crash_sim.sweep ~rounds:3 ~density:0 cfg in
      if not (Crash_sim.ok r) then
        Alcotest.failf "crash sweep violations:@.%a" Crash_sim.pp_report r;
      Alcotest.(check bool)
        (cfg.Crash_sim.label ^ ": sweep injected crashes")
        true
        (r.Crash_sim.r_runs > 0))
    configs

let suites =
  [ ( "faultsim.sim",
      [ Alcotest.test_case "crash modes" `Quick sim_crash_modes;
        Alcotest.test_case "atomic rename" `Quick sim_rename_atomic ] );
    ( "faultsim.regressions",
      [ Alcotest.test_case "torn-tail resume roundtrip" `Quick
          torn_tail_resume_roundtrip;
        Alcotest.test_case "hostile body length" `Quick hostile_body_len;
        Alcotest.test_case "hostile root count" `Quick hostile_root_count;
        Alcotest.test_case "failed writer stops draining" `Quick
          failed_writer_stops_draining;
        Alcotest.test_case "compaction crash is atomic" `Quick
          compaction_crash_atomic ] );
    ( "faultsim.fuzz",
      [ QCheck_alcotest.to_alcotest fuzz_load;
        QCheck_alcotest.to_alcotest fuzz_decode_all;
        QCheck_alcotest.to_alcotest fuzz_decode_garbage ] );
    ( "faultsim.sweep",
      [ Alcotest.test_case "smoke (3 configs)" `Quick sweep_smoke ] ) ]
