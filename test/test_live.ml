(* Interprocedural liveness for checkpoint-set minimization: boundary
   live regions on the example workloads, minimized-shape pruning, the
   restore-equivalence oracle (including the seeded-unsoundness
   demonstration, which only the dynamic oracle may catch), and
   termination of the dirty-region fixpoint at widen_delay 0. *)

module As = Staticcheck.Auto_spec
module Rg = Staticcheck.Regions
module Pd = Staticcheck.Phase_discover
open Ickpt_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Same probing as test_infer: runtest executes in the test directory,
   dune exec at the workspace root. *)
let example_path file =
  let candidates =
    [ Filename.concat "../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file;
      Filename.concat "examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "example workload %s not found" file

let example_program file =
  let ic = open_in_bin (example_path file) in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Minic.Parser.parse src

let infer_example file =
  As.infer (Minic.Check.check (example_program file))

let find_phase t name =
  match
    List.find_opt (fun ph -> ph.As.ph.Pd.p_name = name) t.As.a_phases
  with
  | Some ph -> ph
  | None ->
      Alcotest.failf "phase %s not found among %s" name
        (String.concat ", "
           (List.map (fun ph -> ph.As.ph.Pd.p_name) t.As.a_phases))

let live_of ph g =
  match List.assoc_opt g ph.As.ph_live with
  | Some r -> r
  | None -> Alcotest.failf "no live region for %s" g

let min_of ph g =
  match List.assoc_opt g ph.As.ph_min_regions with
  | Some r -> r
  | None -> Alcotest.failf "no minimized region for %s" g

let check_region what expected actual =
  check_bool
    (Printf.sprintf "%s: expected %s, got %s" what
       (Format.asprintf "%a" Rg.pp expected)
       (Format.asprintf "%a" Rg.pp actual))
    true (Rg.equal expected actual)

(* ---- boundary live regions -------------------------------------------------

   blur: after setup only the border rows of temp (never overwritten by
   the stencil, which covers rows 1..6 of an 8x8 image) and the odd
   kernel taps are read again; the interior of temp is recomputed before
   every read. At the round boundary the whole image is live (next
   round's stencil reads it) while temp is wholly dead — the canonical
   "scratch buffer drops out of the checkpoint" result. *)

let blur_boundaries () =
  let t = infer_example "blur.mc" in
  let setup = find_phase t "setup:set_kernel" in
  check_region "setup temp live"
    (Rg.join (Rg.interval 0 7) (Rg.interval 56 63))
    (live_of setup "temp");
  check_region "setup kernel live"
    (Rg.of_list [ 1; 3; 4; 5; 7 ])
    (live_of setup "kernel");
  check_region "setup kernel minimized"
    (Rg.of_list [ 1; 3; 4; 5; 7 ])
    (min_of setup "kernel");
  let round = find_phase t "loop:smooth+commit" in
  check_region "round image minimized" (Rg.interval 0 63)
    (min_of round "image");
  check_region "round temp minimized (scratch is dead)" Rg.bot
    (min_of round "temp")

(* histogram: main returns a constant, so nothing the loop writes is
   ever read after any boundary — the minimized checkpoint is empty. *)
let histogram_boundaries () =
  let t = infer_example "histogram.mc" in
  List.iter
    (fun ph ->
      List.iter
        (fun (g, r) ->
          check_region (Printf.sprintf "histogram %s live" g) Rg.bot r)
        ph.As.ph_live)
    t.As.a_phases

(* pagerank: the scratch rank buffer [next] is fully recomputed by
   scatter before commit reads it, so it is dead at the round boundary;
   the committed [rank] array is what the next round consumes. *)
let pagerank_boundaries () =
  let t = infer_example "pagerank.mc" in
  let round = find_phase t "loop:scatter+commit_ranks" in
  check_region "round next live (recomputed scratch)" Rg.bot
    (live_of round "next");
  check_region "round rank minimized" (Rg.interval 0 15)
    (min_of round "rank")

(* kvlog: the hash table head is consulted every round, but the
   append-only log arrays are never read back — write-only state drops
   out of the minimized checkpoint entirely. *)
let kvlog_boundaries () =
  let t = infer_example "kvlog.mc" in
  let round = find_phase t "loop:do_round" in
  check_region "round table live" (Rg.point 0) (live_of round "table");
  check_region "round log_keys live (append-only)" Rg.bot
    (live_of round "log_keys");
  check_region "round log_vals live (append-only)" Rg.bot
    (live_of round "log_vals")

(* ---- minimized shapes ------------------------------------------------------ *)

let rec tracked_nodes (s : Jspec.Sclass.shape) =
  let self =
    match s.Jspec.Sclass.status with
    | Jspec.Sclass.Tracked -> 1
    | Jspec.Sclass.Clean -> 0
  in
  Array.fold_left
    (fun acc c ->
      match c with
      | Jspec.Sclass.Exact s | Jspec.Sclass.Nullable s -> acc + tracked_nodes s
      | Jspec.Sclass.Null_child | Jspec.Sclass.Unknown
      | Jspec.Sclass.Clean_opaque ->
          acc)
    self s.Jspec.Sclass.children

let tracked_total shapes_of t =
  List.fold_left
    (fun acc ph ->
      List.fold_left (fun acc (_, s) -> acc + tracked_nodes s) acc
        (shapes_of ph))
    0 t.As.a_phases

(* Minimization only ever demotes Tracked to Clean — never the reverse —
   and on blur it provably demotes something (the dead scratch buffer). *)
let minimized_shapes_prune () =
  List.iter
    (fun file ->
      let t = infer_example file in
      let total = tracked_total (fun ph -> ph.As.ph_shapes) t in
      let kept = tracked_total (fun ph -> ph.As.ph_min_shapes) t in
      check_bool
        (Printf.sprintf "%s: kept %d <= total %d" file kept total)
        true (kept <= total);
      if file = "blur.mc" then
        check_bool "blur drops at least one tracked block" true (kept < total))
    [ "blur.mc"; "histogram.mc"; "pagerank.mc"; "kvlog.mc" ]

(* A program whose accumulator is returned keeps everything live:
   minimization must be the identity (honest zeros). *)
let all_live_src =
  "int s;\n\
   int main() {\n\
  \  int i;\n\
  \  s = 0;\n\
  \  i = 0;\n\
  \  while (i < 8) { s = s + i; i = i + 1; }\n\
  \  return s;\n\
   }\n"

let all_live_identity () =
  let t = As.infer (Minic.Check.check (Minic.Parser.parse all_live_src)) in
  check_int "no tracked node demoted"
    (tracked_total (fun ph -> ph.As.ph_shapes) t)
    (tracked_total (fun ph -> ph.As.ph_min_shapes) t)

let minimize_requires_specialized () =
  let program = example_program "blur.mc" in
  Alcotest.check_raises "minimize outside Specialized is a contract error"
    (Invalid_argument
       "Engine.analyze: ~minimize requires Specialized mode (pruned \
        residual checkpointers)")
    (fun () ->
      ignore
        (Engine.analyze ~infer:true ~mode:Engine.Incremental ~minimize:true
           program))

(* ---- restore-equivalence oracle -------------------------------------------- *)

let oracle_examples () =
  List.iter
    (fun file ->
      let o = Elide_oracle.run_live ~name:file (example_program file) in
      check_bool
        (Format.asprintf "%s restore-equivalent:@ %a" file Elide_oracle.pp_live
           o)
        true
        (Elide_oracle.live_ok o);
      check_bool
        (Printf.sprintf "%s minimized chain no larger" file)
        true
        (o.Elide_oracle.lw_minimized_bytes <= o.Elide_oracle.lw_baseline_bytes))
    [ "blur.mc"; "histogram.mc"; "pagerank.mc"; "kvlog.mc" ]

(* The seeded mis-minimization must stay invisible to the static layer
   (no Error finding) and be caught by the dynamic oracle — proving the
   oracle, not the static analysis, gates this transformation. *)
let seeded_dead_caught_dynamically () =
  List.iter
    (fun file ->
      let t =
        As.infer ~seed_dead:true
          (Minic.Check.check (example_program file))
      in
      check_bool
        (Printf.sprintf "%s: seed_dead raises no static error" file)
        false
        (Staticcheck.Finding.has_errors (As.findings t));
      let o =
        Elide_oracle.run_live ~seed_unsound:true ~name:file
          (example_program file)
      in
      check_bool (Printf.sprintf "%s: oracle flags the seeded run" file) false
        (Elide_oracle.live_ok o))
    [ "blur.mc"; "kvlog.mc" ]

let print_seeded_program seed =
  Printf.sprintf "seed %d:\n%s" seed
    (Minic.Pp.to_string (Minic.Gen.random_program ~seed ()))

let prop_random_live =
  QCheck2.Test.make ~name:"restore-equivalence holds on random programs"
    ~count:20 ~print:print_seeded_program
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let program = Minic.Gen.random_program ~seed () in
      let name = Printf.sprintf "random-%d" seed in
      Elide_oracle.live_ok (Elide_oracle.run_live ~name program))

(* ---- dirty-region fixpoint termination at widen_delay 0 -------------------- *)

let prop_widen_delay_zero =
  QCheck2.Test.make
    ~name:"dirty-region fixpoint terminates with immediate widening"
    ~count:30 ~print:print_seeded_program
    QCheck2.Gen.(int_range 0 5000)
    (fun seed ->
      let env = Minic.Check.check (Minic.Gen.random_program ~seed ()) in
      let r = Staticcheck.Dirty_ai.analyze ~widen_delay:0 env in
      Staticcheck.Dirty_ai.rounds r < 200)

let suites =
  [ ( "live-boundary",
      [ Alcotest.test_case "blur" `Quick blur_boundaries;
        Alcotest.test_case "histogram" `Quick histogram_boundaries;
        Alcotest.test_case "pagerank" `Quick pagerank_boundaries;
        Alcotest.test_case "kvlog" `Quick kvlog_boundaries ] );
    ( "live-minimize",
      [ Alcotest.test_case "shapes only demote" `Quick minimized_shapes_prune;
        Alcotest.test_case "all-live identity" `Quick all_live_identity;
        Alcotest.test_case "requires specialized mode" `Quick
          minimize_requires_specialized ] );
    ( "live-oracle",
      [ Alcotest.test_case "example workloads" `Slow oracle_examples;
        Alcotest.test_case "seeded dead caught dynamically" `Slow
          seeded_dead_caught_dynamically;
        QCheck_alcotest.to_alcotest prop_random_live ] );
    ( "dirty-widen",
      [ QCheck_alcotest.to_alcotest prop_widen_delay_zero ] ) ]
