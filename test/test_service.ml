(* Tests for the multi-tenant checkpoint service: shard mapping, the mux
   index wire format, cross-tenant dedup on the shared pack, group commit
   (fsync amortization + flush barrier), reopen/resume/evict, salted
   rehash on hash collision, per-tenant attribution, the QCheck
   private-store equivalence property over random tenant interleavings
   across domains, and a smoke run of the service crash sweep. *)

open Ickpt_stream
open Ickpt_runtime
open Ickpt_core
open Ickpt_faultsim
open Ickpt_cas
open Ickpt_service

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let roots_equal a b =
  List.length a = List.length b && List.for_all2 Deep_eq.equal a b

let full_body roots =
  let d = Out_stream.create () in
  Checkpointer.full_many d roots;
  Out_stream.contents d

(* ------------------------------------------------------------------ *)
(* Worlds: deterministic per-tenant heaps. Same [offset] + same [salt]
   means byte-identical segments (per-heap object ids restart at 0), so
   tenants sharing them dedup against each other in the shared pack.    *)

type world = {
  schema : Schema.t;
  roots : Model.obj list;
  mutate : int -> unit;
}

let make_world ~offset =
  let schema = Schema.create () in
  let leaf = Schema.declare schema ~name:"Leaf" ~ints:1 ~children:0 () in
  let pair = Schema.declare schema ~name:"Pair" ~ints:2 ~children:2 () in
  let heap = Heap.create schema in
  let mk_leaf v =
    let o = Heap.alloc heap leaf in
    o.Model.ints.(0) <- v + offset;
    o
  in
  let mk_pair a b l r =
    let o = Heap.alloc heap pair in
    o.Model.ints.(0) <- a + offset;
    o.Model.ints.(1) <- b + offset;
    o.Model.children.(0) <- Some l;
    o.Model.children.(1) <- Some r;
    o
  in
  let leaves = Array.init 8 (fun i -> mk_leaf i) in
  let pa = mk_pair 100 101 leaves.(0) leaves.(1) in
  let pb = mk_pair 102 103 leaves.(2) leaves.(3) in
  let pc = mk_pair 104 105 leaves.(4) leaves.(5) in
  let pd = mk_pair 106 107 leaves.(6) leaves.(7) in
  let qa = mk_pair 108 109 pa pb in
  let qb = mk_pair 110 111 pc pd in
  let root = mk_pair 112 113 qa qb in
  let objs = Array.concat [ [| root; qa; qb; pa; pb; pc; pd |]; leaves ] in
  let n = Array.length objs in
  let mutate r =
    Barrier.set_int objs.(r mod n) 0 (offset + 10_000 + (3 * r));
    Barrier.set_int objs.((r + 5) mod n) 0 (offset + 10_001 + (3 * r))
  in
  { schema; roots = [ root ]; mutate }

let fresh_vfs () = Sim.vfs (Sim.create ())

(* A vfs that counts durability barriers — the fsync meter the group
   commit claims are checked against. *)
let counting_vfs inner =
  let syncs = ref 0 in
  let wrap w =
    { w with
      Vfs.sync =
        (fun () ->
          incr syncs;
          w.Vfs.sync ()) }
  in
  ( { inner with
      Vfs.open_append = (fun p -> wrap (inner.Vfs.open_append p));
      open_trunc = (fun p -> wrap (inner.Vfs.open_trunc p)) },
    syncs )

(* ------------------------------------------------------------------ *)
(* Shard mapping.                                                      *)

let shard_mapping () =
  check_bool "stable" true
    (Shard.of_name ~shards:4 "alice" = Shard.of_name ~shards:4 "alice");
  List.iter
    (fun name ->
      let s = Shard.of_name ~shards:3 name in
      check_bool "in range" true (s >= 0 && s < 3))
    [ "a"; "b"; "c"; "d"; "e" ];
  check_int "one shard" 0 (Shard.of_name ~shards:1 "anything");
  check_bool "matches id" true
    (Shard.of_name ~shards:5 "bob"
    = Shard.of_id ~shards:5 (Service.tenant_id "bob"))

(* ------------------------------------------------------------------ *)
(* Mux index wire format.                                              *)

let sample_entry i =
  { Epoch_index.epoch = i;
    kind = (if i = 0 then Segment.Full else Segment.Incremental);
    roots = [ 0; i ];
    chunks = [ 111 + i; 222 + i ];
    dir =
      [ { Epoch_index.d_id = 0; d_chunk = 0; d_off = 0 };
        { Epoch_index.d_id = i + 1; d_chunk = 1; d_off = 7 * i } ] }

let mux_roundtrip () =
  let vfs = fresh_vfs () in
  let path = "mux.idx" in
  let ms =
    List.init 5 (fun i ->
        { Epoch_index.m_tenant = 1000 + (i mod 2); m_entry = sample_entry i })
  in
  Epoch_index.append_mux_batch vfs path ms;
  let loaded, _ = Epoch_index.load_mux vfs path in
  check_int "all entries" 5 (List.length loaded);
  List.iter2
    (fun (a : Epoch_index.mux_entry) (b : Epoch_index.mux_entry) ->
      check_bool "roundtrip" true (a = b))
    ms loaded;
  (* A torn tail cuts whole entries, never corrupts earlier ones. *)
  let raw = vfs.Vfs.read_file path in
  vfs.Vfs.truncate path ~len:(String.length raw - 3);
  let survivors, valid = Epoch_index.load_mux vfs path in
  check_int "torn tail drops exactly the last entry" 4 (List.length survivors);
  check_bool "valid offset within file" true (valid < String.length raw)

(* ------------------------------------------------------------------ *)
(* Service basics: checkpoint/restore, cross-tenant dedup, reopen.     *)

let service_basics () =
  let vfs = fresh_vfs () in
  let svc =
    Service.open_ ~vfs ~shards:2 ~records_per_chunk:4
      ~policy:(Policy.Full_every 3) ~path:"svc" ()
  in
  (* Two byte-identical tenants and one distinct one. *)
  let mk name offset =
    let w = make_world ~offset in
    (Service.open_tenant svc w.schema ~name, w)
  in
  let ta, wa = mk "alice" 0 in
  let tb, wb = mk "bob" 0 in
  let tc, wc = mk "carol" 5000 in
  let snaps = Hashtbl.create 16 in
  List.iter
    (fun (name, tn, (w : world)) ->
      for r = 0 to 5 do
        if r > 0 then w.mutate r;
        let e = Service.checkpoint tn w.roots in
        check_int "epoch numbering is per-tenant" r e;
        Hashtbl.replace snaps (name, e) (full_body w.roots)
      done)
    [ ("alice", ta, wa); ("bob", tb, wb); ("carol", tc, wc) ];
  Service.flush svc;
  (* Every epoch of every tenant restores byte-identically. *)
  List.iter
    (fun (name, tn) ->
      check_int "six epochs committed" 6 (List.length (Service.epochs tn));
      List.iter
        (fun e ->
          let _heap, roots = Service.restore tn ~epoch:e in
          check_bool
            (Printf.sprintf "%s epoch %d restores" name e)
            true
            (String.equal (full_body roots) (Hashtbl.find snaps (name, e))))
        (Service.epochs tn))
    [ ("alice", ta); ("bob", tb); ("carol", tc) ];
  check_bool "consistent" true (Service.check svc = []);
  let st = Service.stats svc in
  check_int "three tenants" 3 st.Service.n_tenants;
  check_int "18 epochs" 18 st.Service.n_epochs;
  (* alice and bob are byte-identical: their chunks dedup across tenants,
     so the pack holds well under 3 tenants' worth of bytes. *)
  (* Cross-tenant dedup: replay each tenant's (deterministic) session on a
     private store and compare pack footprints. alice and bob are
     byte-identical, so the shared pack holds ~2 tenants' chunks while the
     private packs sum to 3. *)
  let private_pack_bytes i offset =
    let w = make_world ~offset in
    let path = Printf.sprintf "priv%d" i in
    let store = Store.open_ ~vfs ~records_per_chunk:4 w.schema ~path in
    let chain = Chain.create w.schema in
    for r = 0 to 5 do
      if r > 0 then w.mutate r;
      let taken =
        match Policy.decide (Policy.Full_every 3) chain with
        | Segment.Full -> Chain.take_full chain w.roots
        | Segment.Incremental -> Chain.take_incremental chain w.roots
      in
      ignore (Store.append_segment store taken.Chain.segment
              : Store.append_stats)
    done;
    String.length (vfs.Vfs.read_file (Store.pack_path path))
  in
  let private_sum =
    private_pack_bytes 0 0 + private_pack_bytes 1 0 + private_pack_bytes 2 5000
  in
  let shared = String.length (vfs.Vfs.read_file (Service.pack_path "svc")) in
  check_bool
    (Printf.sprintf "cross-tenant dedup (private sum %d vs shared %d)"
       private_sum shared)
    true
    (float_of_int private_sum /. float_of_int shared > 1.3);
  (* Attribution sees the sharing. *)
  let rows = Attrib.rows ~vfs ~path:"svc" () in
  check_int "three rows" 3 (List.length rows);
  let alice = List.find (fun r -> r.Attrib.a_name = "alice") rows in
  let carol = List.find (fun r -> r.Attrib.a_name = "carol") rows in
  check_bool "alice shares with bob" true (alice.Attrib.a_shared > 0);
  check_bool "alice saved bytes" true (alice.Attrib.a_saved_bytes > 0);
  check_bool "carol owns her chunks" true
    (carol.Attrib.a_owned = carol.Attrib.a_chunks);
  Service.close svc;
  (* Reopen: resume, restore, continue. *)
  let svc2 = Service.open_ ~vfs ~path:"svc" () in
  let wa2 = make_world ~offset:0 in
  let ta2 = Service.open_tenant svc2 wa2.schema ~name:"alice" in
  check_int "resumed epochs" 6 (List.length (Service.epochs ta2));
  let _heap, roots = Service.restore ta2 ~epoch:5 in
  check_bool "resumed restore" true
    (String.equal (full_body roots) (Hashtbl.find snaps ("alice", 5)));
  List.iter (fun o -> Barrier.set_int o 0 424_242) roots;
  let e = Service.checkpoint ta2 roots in
  check_int "continues numbering" 6 e;
  Service.flush svc2;
  let _heap, roots' = Service.restore ta2 ~epoch:6 in
  check_bool "appended epoch restores" true (roots_equal roots roots');
  (* Evict drops the handle; reopening resumes. *)
  Service.evict svc2 ~name:"alice";
  let ta3 = Service.open_tenant svc2 wa2.schema ~name:"alice" in
  check_int "evict keeps disk state" 7 (List.length (Service.epochs ta3));
  Service.close svc2

(* ------------------------------------------------------------------ *)
(* Group commit: fewer fsyncs, flush as durability barrier.            *)

let run_epochs ~vfs ~commit ~tenants ~rounds =
  let svc =
    Service.open_ ~vfs ~shards:2 ~records_per_chunk:4
      ~policy:(Policy.Full_every 4) ~commit ~path:"svc" ()
  in
  let tens =
    List.init tenants (fun i ->
        let w = make_world ~offset:(i * 1000) in
        (Service.open_tenant svc w.schema ~name:(Printf.sprintf "t%d" i), w))
  in
  for r = 0 to rounds - 1 do
    List.iter
      (fun (tn, (w : world)) ->
        if r > 0 then w.mutate r;
        ignore (Service.checkpoint tn w.roots : int))
      tens
  done;
  Service.flush svc;
  let st = Service.stats svc in
  Service.close svc;
  st

let group_commit_fsyncs () =
  let vfs_a, syncs_a = counting_vfs (fresh_vfs ()) in
  let st_a =
    run_epochs ~vfs:vfs_a ~commit:Service.Per_epoch ~tenants:4 ~rounds:6
  in
  let vfs_b, syncs_b = counting_vfs (fresh_vfs ()) in
  let st_b =
    run_epochs ~vfs:vfs_b
      ~commit:
        (Service.Group
           { Async_writer.Batch.max_items = 8; max_bytes = 1 lsl 20; linger = 0. })
      ~tenants:4 ~rounds:6
  in
  check_int "same epochs" st_a.Service.committed_epochs
    st_b.Service.committed_epochs;
  check_bool "per-epoch mode: one batch per epoch" true
    (st_a.Service.commit_batches = st_a.Service.committed_epochs);
  check_bool "group mode: fewer batches than epochs" true
    (st_b.Service.commit_batches * 2 <= st_b.Service.committed_epochs);
  check_bool
    (Printf.sprintf "group commit syncs less (%d vs %d)" !syncs_b !syncs_a)
    true
    (!syncs_b < !syncs_a)

let group_flush_barrier () =
  let vfs = fresh_vfs () in
  let svc =
    Service.open_ ~vfs ~shards:1 ~records_per_chunk:4
      ~commit:
        (Service.Group
           { Async_writer.Batch.max_items = 100;
             max_bytes = 1 lsl 30;
             linger = 0. })
      ~path:"svc" ()
  in
  let w = make_world ~offset:0 in
  let tn = Service.open_tenant svc w.schema ~name:"solo" in
  ignore (Service.checkpoint tn w.roots : int);
  check_int "not yet committed (pending in the group window)" 0
    (List.length (Service.epochs tn));
  Service.flush svc;
  check_int "flush commits" 1 (List.length (Service.epochs tn));
  Service.close svc

let group_async_mode () =
  let vfs = fresh_vfs () in
  let svc =
    Service.open_ ~vfs ~shards:2 ~records_per_chunk:4
      ~policy:(Policy.Full_every 3)
      ~commit:
        (Service.Group_async
           { Async_writer.Batch.max_items = 4;
             max_bytes = 1 lsl 20;
             linger = 0.002 })
      ~path:"svc" ()
  in
  let tens =
    List.init 3 (fun i ->
        let w = make_world ~offset:(i * 777) in
        (Service.open_tenant svc w.schema ~name:(Printf.sprintf "a%d" i), w))
  in
  let snaps = Hashtbl.create 16 in
  for r = 0 to 4 do
    List.iteri
      (fun i (tn, (w : world)) ->
        if r > 0 then w.mutate r;
        let e = Service.checkpoint tn w.roots in
        Hashtbl.replace snaps (i, e) (full_body w.roots))
      tens
  done;
  Service.flush svc;
  List.iteri
    (fun i (tn, _) ->
      check_int "all committed" 5 (List.length (Service.epochs tn));
      List.iter
        (fun e ->
          let _heap, roots = Service.restore tn ~epoch:e in
          check_bool "async-committed epoch restores" true
            (String.equal (full_body roots) (Hashtbl.find snaps (i, e))))
        (Service.epochs tn))
    tens;
  check_bool "drain thread grouped commits" true
    ((Service.stats svc).Service.commit_batches
    < (Service.stats svc).Service.committed_epochs);
  check_bool "latencies recorded" true
    (List.length (Service.drain_latencies svc) = 15);
  Service.close svc

(* ------------------------------------------------------------------ *)
(* Salted rehash on hash collision.                                    *)

let store_salted_collision () =
  let vfs = fresh_vfs () in
  let w = make_world ~offset:0 in
  (* Predict the first chunk of the first full segment and poison the
     pack: same key, different bytes — a manufactured 63-bit collision. *)
  let body = full_body w.roots in
  let chunks = Chunk.split ~records_per_chunk:4 w.schema body in
  let c0 = List.hd chunks in
  let pack = Pack.open_ ~vfs (Store.pack_path "s") in
  ignore (Pack.append_batch pack [ (c0.Chunk.key, "not the real bytes") ] : int);
  let store = Store.open_ ~vfs ~records_per_chunk:4 w.schema ~path:"s" in
  let chain = Chain.create w.schema in
  let taken = Chain.take_full chain w.roots in
  let st = Store.append_segment store taken.Chain.segment in
  check_bool "append survived the collision" true (st.Store.chunks_salted >= 1);
  let _heap, roots = Store.restore store ~epoch:0 in
  check_bool "restore is byte-identical despite the salted chunk" true
    (String.equal (full_body roots) body);
  check_bool "store checks clean" true (Store.check store = []);
  (match Store.collisions store with
  | [ c ] ->
      check_int "collision epoch" 0 c.Store.col_epoch;
      check_bool "content key is the poisoned one" true
        (c.Store.col_content_key = c0.Chunk.key);
      check_int "first salt rung" 1 c.Store.col_attempt;
      check_bool "stored under the salted key" true
        (c.Store.col_stored_key = Chunk.salted_key c0.Chunk.data ~attempt:1)
  | cs -> Alcotest.failf "expected exactly one collision, got %d" (List.length cs));
  (* Salting is detectable from disk alone, and survives reopen. *)
  check_bool "salted chunk detected on disk" true
    (Store.salted_chunks store
    = [ (Chunk.salted_key c0.Chunk.data ~attempt:1, 1) ]);
  let store2 = Store.open_ ~vfs ~records_per_chunk:4 w.schema ~path:"s" in
  check_bool "reopen keeps the epoch" true (Store.epochs store2 = [ 0 ]);
  let _heap, roots2 = Store.restore store2 ~epoch:0 in
  check_bool "reopen restores identically" true
    (String.equal (full_body roots2) body)

let service_salted_collision () =
  let vfs = fresh_vfs () in
  let w = make_world ~offset:0 in
  let body = full_body w.roots in
  let chunks = Chunk.split ~records_per_chunk:4 w.schema body in
  let c0 = List.hd chunks in
  let pack = Pack.open_ ~vfs (Service.pack_path "svc") in
  ignore (Pack.append_batch pack [ (c0.Chunk.key, "poison") ] : int);
  let svc = Service.open_ ~vfs ~shards:2 ~records_per_chunk:4 ~path:"svc" () in
  let tn = Service.open_tenant svc w.schema ~name:"victim" in
  ignore (Service.checkpoint tn w.roots : int);
  Service.flush svc;
  check_bool "collision surfaced" true (List.length (Service.collisions svc) >= 1);
  check_int "stats count it" (List.length (Service.collisions svc))
    (Service.stats svc).Service.collisions;
  let _heap, roots = Service.restore tn ~epoch:0 in
  check_bool "tenant restore unaffected" true
    (String.equal (full_body roots) body);
  check_bool "service checks clean" true (Service.check svc = []);
  Service.close svc

(* ------------------------------------------------------------------ *)
(* Property: any interleaving of tenants across domains restores every
   tenant byte-identically to running alone on a private store.        *)

(* One deterministic session per tenant, derived from (seed, index):
   produce the segments once, submit each to BOTH the shared service and
   a private per-tenant store, then compare every epoch. *)
let interleaving_equivalent seed =
  let vfs = fresh_vfs () in
  let n_tenants = 4 in
  let svc =
    Service.open_ ~vfs ~shards:2 ~records_per_chunk:4
      ~commit:
        (Service.Group
           { Async_writer.Batch.max_items = 3; max_bytes = 1 lsl 20; linger = 0. })
      ~path:"svc" ()
  in
  let sessions =
    List.init n_tenants (fun i ->
        (* Half the tenants share an offset → cross-tenant dedup while
           the interleaving runs. *)
        let offset = if i mod 2 = 0 then 0 else 9000 + (seed mod 7) in
        let rounds = 3 + ((seed + i) mod 3) in
        let w = make_world ~offset in
        let name = Printf.sprintf "tenant%d" i in
        let tn = Service.open_tenant svc w.schema ~name in
        let priv =
          Store.open_ ~vfs ~records_per_chunk:4 w.schema
            ~path:(Printf.sprintf "priv%d" i)
        in
        let chain = Chain.create w.schema in
        (i, w, tn, priv, chain, rounds))
  in
  (* Two domains, interleaved tenant ownership; each domain drives its
     tenants' sessions concurrently with the other domain's. *)
  let run_partition part =
    List.iter
      (fun (i, (w : world), tn, priv, chain, rounds) ->
        if i mod 2 = part then
          for r = 0 to rounds - 1 do
            if r > 0 then w.mutate ((seed * 13) + r);
            let taken =
              match Policy.decide (Policy.Full_every 3) chain with
              | Segment.Full -> Chain.take_full chain w.roots
              | Segment.Incremental -> Chain.take_incremental chain w.roots
            in
            ignore (Store.append_segment priv taken.Chain.segment
                    : Store.append_stats);
            ignore (Service.append tn taken.Chain.segment : int)
          done)
      sessions
  in
  let d = Domain.spawn (fun () -> run_partition 1) in
  run_partition 0;
  Domain.join d;
  Service.flush svc;
  let reader_ok =
    List.for_all
      (fun (_, _, tn, priv, _, rounds) ->
        Service.epochs tn = Store.epochs priv
        && List.length (Service.epochs tn) = rounds
        && List.for_all
             (fun e ->
               let _h, shared_roots = Service.restore tn ~epoch:e in
               let _h, private_roots = Store.restore priv ~epoch:e in
               roots_equal shared_roots private_roots
               && String.equal (full_body shared_roots)
                    (full_body private_roots))
             (Service.epochs tn))
      sessions
  in
  let clean = Service.check svc = [] in
  Service.close svc;
  reader_ok && clean

let prop_interleaving =
  QCheck2.Test.make ~name:"tenant interleaving = private store (per tenant)"
    ~count:8
    QCheck2.Gen.(int_range 0 10_000)
    interleaving_equivalent

(* ------------------------------------------------------------------ *)
(* Crash sweep smoke (the full sweep runs under @crash, like the store
   one; here a reduced-density pass).                                  *)

let sweep_smoke () =
  let r = Service_sim.sweep ~rounds:4 ~density:1 () in
  if not (Service_sim.ok r) then Alcotest.failf "%a" Service_sim.pp_report r;
  check_bool
    (Printf.sprintf "swept a real number of points (%d)" r.Service_sim.r_points)
    true
    (r.Service_sim.r_points > 50)

let suites =
  [ ( "service.shard",
      [ Alcotest.test_case "mapping" `Quick shard_mapping;
        Alcotest.test_case "mux index roundtrip" `Quick mux_roundtrip ] );
    ( "service.core",
      [ Alcotest.test_case "basics + dedup + resume" `Quick service_basics;
        Alcotest.test_case "group commit fsyncs" `Quick group_commit_fsyncs;
        Alcotest.test_case "flush barrier" `Quick group_flush_barrier;
        Alcotest.test_case "async group commit" `Quick group_async_mode ] );
    ( "service.collision",
      [ Alcotest.test_case "store salted rehash" `Quick store_salted_collision;
        Alcotest.test_case "service surfaces collision" `Quick
          service_salted_collision ] );
    ( "service.property",
      [ QCheck_alcotest.to_alcotest prop_interleaving ] );
    ( "service.sweep",
      [ Alcotest.test_case "smoke" `Quick sweep_smoke ] ) ]
