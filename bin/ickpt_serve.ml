(* The multi-tenant checkpoint service CLI.

   Two subcommands:

   - [run] (the default workload driver): open a service, run N synthetic
     tenants for R mutate-and-checkpoint rounds each, flush, and gate the
     run on every tenant restoring its latest epoch byte-identically to
     its live heap. Hash collisions absorbed by salted rehash surface as
     warning findings; a failed gate or integrity check is an error.
     [--json] emits the uniform machine envelope (the ickpt_lint schema,
     tool "ickpt_serve").
   - [check]: open an existing service read-only-ish and run the full
     integrity check over every tenant's entries and the shared pack.

   Exit codes (uniform with ickpt_lint/ickpt_store): 0 — clean; 1 — a
   failed gate, integrity error or service error; 2 — usage error. *)

open Cmdliner
open Ickpt_runtime
open Ickpt_core
open Ickpt_service
module Fi = Staticcheck.Finding

let json_arg =
  let doc = "Emit the machine-readable envelope on stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let path_arg ~default =
  let doc =
    "Service path (the files are $(docv).pack, $(docv).shard<i>.idx, \
     $(docv).tenants, $(docv).svc)."
  in
  match default with
  | Some d -> Arg.(value & opt string d & info [ "path" ] ~docv:"PATH" ~doc)
  | None ->
      Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)

let commit_conv =
  let parse = function
    | "per-epoch" -> Ok Service.Per_epoch
    | "group" ->
        Ok
          (Service.Group
             { Async_writer.Batch.max_items = 8;
               max_bytes = 1 lsl 20;
               linger = 0. })
    | "group-async" ->
        Ok
          (Service.Group_async
             { Async_writer.Batch.max_items = 8;
               max_bytes = 1 lsl 20;
               linger = 0.001 })
    | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown commit mode %S (per-epoch, group, group-async)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Service.Per_epoch -> "per-epoch"
      | Service.Group _ -> "group"
      | Service.Group_async _ -> "group-async")
  in
  Arg.conv (parse, print)

let collision_findings svc =
  List.map
    (fun (c : Ickpt_cas.Store.collision) ->
      { Fi.severity = Fi.Warning;
        scope = "store:collision";
        path = Printf.sprintf "epoch:%d" c.Ickpt_cas.Store.col_epoch;
        reason =
          Printf.sprintf
            "chunk key %d collided; stored under salted rehash %d (attempt \
             %d)"
            c.Ickpt_cas.Store.col_content_key c.Ickpt_cas.Store.col_stored_key
            c.Ickpt_cas.Store.col_attempt })
    (Service.collisions svc)

(* ---- run ------------------------------------------------------------------ *)

let run_cmd =
  let tenants_arg =
    let doc = "Synthetic tenants to run." in
    Arg.(value & opt int 4 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let rounds_arg =
    let doc = "Mutate-and-checkpoint rounds per tenant after the base." in
    Arg.(value & opt int 6 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Shards for a newly created service." in
    Arg.(value & opt int Shard.default_count & info [ "shards" ] ~docv:"N" ~doc)
  in
  let commit_arg =
    let doc = "Commit mode: per-epoch, group or group-async." in
    Arg.(
      value
      & opt commit_conv Service.Per_epoch
      & info [ "commit" ] ~docv:"MODE" ~doc)
  in
  let keep_arg =
    let doc = "Keep the service files (default: remove them afterwards)." in
    Arg.(value & flag & info [ "keep" ] ~doc)
  in
  let default_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ickpt_serve_%d" (Unix.getpid ()))
  in
  let run tenants rounds shards commit path keep json =
    if tenants < 1 || rounds < 0 || shards < 1 then begin
      Printf.eprintf "run: --tenants/--shards must be >= 1, --rounds >= 0\n";
      exit 2
    end;
    let files =
      Service.pack_path path :: Service.catalog_path path
      :: Service.meta_path path
      :: List.init shards (Service.shard_index_path path)
    in
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) files;
    let cleanup () =
      if not keep then
        List.iter (fun p -> if Sys.file_exists p then Sys.remove p) files
    in
    Fun.protect ~finally:cleanup (fun () ->
        match
          let svc =
            Service.open_ ~shards ~policy:(Policy.Full_every 4) ~commit ~path
              ()
          in
          let open Ickpt_synth in
          let sessions =
            List.init tenants (fun i ->
                (* Two synthetic profiles, so half the tenants are
                   byte-identical to the other half and the shared pack
                   dedups across them. *)
                let t =
                  Synth.build
                    { Synth.default_config with
                      Synth.n_structures = 6;
                      list_len = 3;
                      pct_modified = 50;
                      seed = 0xC0FFEE + (i mod 2) }
                in
                (Printf.sprintf "tenant%02d" i,
                 Service.open_tenant svc t.Synth.schema
                   ~name:(Printf.sprintf "tenant%02d" i),
                 t))
          in
          List.iter
            (fun (_, tn, t) ->
              ignore (Service.checkpoint tn (Synth.roots t) : int);
              for _ = 1 to rounds do
                ignore (Synth.mutate_round t : int);
                ignore (Service.checkpoint tn (Synth.roots t) : int)
              done)
            sessions;
          Service.flush svc;
          (* The gate: every tenant's latest committed epoch restores to a
             heap deeply equal to the live one. *)
          let gate_ok =
            List.for_all
              (fun (_, tn, t) ->
                match Service.latest_epoch tn with
                | None -> false
                | Some epoch ->
                    let _heap, restored = Service.restore tn ~epoch in
                    let live = Synth.roots t in
                    List.length restored = List.length live
                    && List.for_all2 Deep_eq.equal restored live)
              sessions
          in
          let check_errors = Service.check svc in
          let st = Service.stats svc in
          let findings =
            collision_findings svc
            @ List.map
                (fun e ->
                  { Fi.severity = Fi.Error;
                    scope = "service:check";
                    path;
                    reason = e })
                check_errors
            @
            if gate_ok then []
            else
              [ { Fi.severity = Fi.Error;
                  scope = "service:gate";
                  path;
                  reason =
                    "a tenant's latest epoch does not restore to its live \
                     heap" } ]
          in
          Service.close svc;
          (st, findings, gate_ok && check_errors = [])
        with
        | exception Service.Error msg ->
            Printf.eprintf "run: %s\n" msg;
            exit 1
        | st, findings, ok ->
            let exit_code = if ok then 0 else 1 in
            if json then
              print_endline
                (Fi.envelope ~tool:"ickpt_serve" ~subcommand:"run"
                   ~extra:
                     [ ("tenants", string_of_int st.Service.n_tenants);
                       ("epochs", string_of_int st.Service.n_epochs);
                       ("chunks", string_of_int st.Service.n_chunks);
                       ("pack_bytes", string_of_int st.Service.pack_bytes);
                       ( "dedup_ratio",
                         Printf.sprintf "%.3f" st.Service.dedup_ratio );
                       ( "commit_batches",
                         string_of_int st.Service.commit_batches );
                       ( "committed_epochs",
                         string_of_int st.Service.committed_epochs );
                       ("collisions", string_of_int st.Service.collisions);
                       ("restore_gate_ok", string_of_bool ok) ]
                   ~exit_code findings)
            else begin
              Format.printf
                "service %s: %d tenant(s), %d epoch(s), %d chunk(s), pack \
                 %d bytes, dedup %.2fx@.  %d batch(es) committed %d \
                 epoch(s); %d collision(s) absorbed@."
                path st.Service.n_tenants st.Service.n_epochs
                st.Service.n_chunks st.Service.pack_bytes
                st.Service.dedup_ratio st.Service.commit_batches
                st.Service.committed_epochs st.Service.collisions;
              List.iter (fun f -> Format.printf "  %a@." Fi.pp f) findings;
              Format.printf "  restore gate: %s@."
                (if ok then "every tenant byte-identical" else "FAILED")
            end;
            if exit_code <> 0 then exit exit_code)
  in
  let doc =
    "run synthetic tenants against a service and gate on restore identity"
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ tenants_arg $ rounds_arg $ shards_arg $ commit_arg
      $ path_arg ~default:(Some default_path)
      $ keep_arg $ json_arg)

(* ---- check ---------------------------------------------------------------- *)

let check_cmd =
  let check path json =
    if not (Sys.file_exists (Service.meta_path path)) then begin
      Printf.eprintf "no service at %s (missing %s)\n" path
        (Service.meta_path path);
      exit 2
    end;
    match Service.open_ ~path () with
    | exception Service.Error msg ->
        Printf.eprintf "check: %s\n" msg;
        exit 1
    | svc ->
        let errors = Service.check svc in
        let st = Service.stats svc in
        Service.close svc;
        let findings =
          List.map
            (fun e ->
              { Fi.severity = Fi.Error; scope = "service:check"; path;
                reason = e })
            errors
        in
        let exit_code = if errors = [] then 0 else 1 in
        if json then
          print_endline
            (Fi.envelope ~tool:"ickpt_serve" ~subcommand:"check"
               ~extra:
                 [ ("tenants", string_of_int st.Service.n_tenants);
                   ("epochs", string_of_int st.Service.n_epochs);
                   ("chunks", string_of_int st.Service.n_chunks) ]
               ~exit_code findings)
        else begin
          Format.printf "service %s: %d tenant(s), %d epoch(s), %d chunk(s)@."
            path st.Service.n_tenants st.Service.n_epochs st.Service.n_chunks;
          match errors with
          | [] -> Format.printf "  check: consistent@."
          | es -> List.iter (fun e -> Format.printf "  check ERROR: %s@." e) es
        end;
        if exit_code <> 0 then exit exit_code
  in
  let doc = "verify an existing service's tenants and shared pack" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const check $ path_arg ~default:None $ json_arg)

let () =
  let doc = "run and verify multi-tenant checkpoint services" in
  let info = Cmd.info "ickpt_serve" ~version:"1.0.0" ~doc in
  let code = Cmd.eval (Cmd.group info [ run_cmd; check_cmd ]) in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
