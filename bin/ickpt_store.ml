(* Inspect and garbage-collect content-addressed checkpoint stores.

   Three subcommands:

   - [inspect] (the default): per-epoch directory of an existing store
     (kind, roots, chunk counts), dedup statistics, and the full
     integrity check ([Store.check]); [--json] emits the same
     machine-readably;
   - [gc]: drop epochs outside a retention window ([--keep-last] or
     [--keep-from]) and reclaim unreferenced chunks;
   - [demo]: build a small store in the system temp directory from a
     synthetic incremental run, restore a mid-run epoch, gc it, and
     print what happened — a self-contained smoke of the store path.

   Exit codes (uniform with ickpt_lint): 0 — clean; 1 — integrity
   errors or a failed store operation; 2 — usage or input error. *)

open Cmdliner
open Ickpt_core
open Ickpt_cas

let path_arg =
  let doc = "Store path (the files are $(docv).pack and $(docv).idx)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON on stdout instead of the report." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* Metadata-only operations never decode records, so an empty schema
   suffices — the store files carry everything else. *)
let open_existing path =
  if
    not
      (Sys.file_exists (Store.pack_path path)
      || Sys.file_exists (Store.index_path path))
  then begin
    Printf.eprintf "no store at %s (missing %s)\n" path (Store.pack_path path);
    exit 2
  end;
  Store.open_ (Ickpt_runtime.Schema.create ()) ~path

let pp_stats ppf (s : Store.stats) =
  Format.fprintf ppf
    "epochs %d, chunks %d, logical %d bytes, on disk %d bytes, dedup %.2fx"
    s.Store.n_epochs s.Store.n_chunks s.Store.logical_bytes
    s.Store.physical_bytes s.Store.dedup_ratio

let stats_json (s : Store.stats) =
  Printf.sprintf
    "{\"epochs\": %d, \"chunks\": %d, \"logical_bytes\": %d, \
     \"physical_bytes\": %d, \"dedup_ratio\": %.3f}"
    s.Store.n_epochs s.Store.n_chunks s.Store.logical_bytes
    s.Store.physical_bytes s.Store.dedup_ratio

(* ---- inspect ------------------------------------------------------------- *)

(* A service store (one shared pack, per-shard mux indexes) is inspected
   through per-tenant attribution: who owns which chunks, who shares, and
   what cross-tenant dedup saved each tenant. *)
let inspect_service path json =
  let open Ickpt_service in
  let rows = Attrib.rows ~path () in
  let svc = Service.open_ ~path () in
  let problems = Service.check svc in
  Service.close svc;
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "{\n  \"path\": %S,\n  \"service\": true,\n  \
                       \"tenants\": [\n" path);
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"tenant\": %S, \"epochs\": %d, \"chunks\": %d, \
              \"owned\": %d, \"shared\": %d,\n\
             \     \"logical_bytes\": %d, \"private_bytes\": %d, \
              \"saved_bytes\": %d}%s\n"
             r.Attrib.a_name r.Attrib.a_epochs r.Attrib.a_chunks
             r.Attrib.a_owned r.Attrib.a_shared r.Attrib.a_logical_bytes
             r.Attrib.a_private_bytes r.Attrib.a_saved_bytes
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "  ],\n  \"check_errors\": [%s]\n}\n"
         (String.concat ", " (List.map (Printf.sprintf "%S") problems)));
    print_string (Buffer.contents buf)
  end
  else begin
    Format.printf "service store %s (%d tenant(s))@." path (List.length rows);
    Format.printf
      "  %-12s %7s %7s %7s %7s %12s %12s %12s@." "tenant" "epochs" "chunks"
      "owned" "shared" "logical B" "private B" "saved B";
    List.iter
      (fun r ->
        Format.printf "  %-12s %7d %7d %7d %7d %12d %12d %12d@."
          r.Attrib.a_name r.Attrib.a_epochs r.Attrib.a_chunks r.Attrib.a_owned
          r.Attrib.a_shared r.Attrib.a_logical_bytes r.Attrib.a_private_bytes
          r.Attrib.a_saved_bytes)
      rows;
    match problems with
    | [] -> Format.printf "  check: consistent@."
    | ps -> List.iter (fun p -> Format.printf "  check ERROR: %s@." p) ps
  end;
  if problems <> [] then exit 1

let inspect_cmd =
  let inspect path json =
    if Ickpt_service.Attrib.is_service_store path then inspect_service path json
    else
    let store = open_existing path in
    let problems = Store.check store in
    let stats = Store.stats store in
    let orphans =
      List.length (List.filter (fun (_, n) -> n = 0) (Store.refcounts store))
    in
    if json then begin
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf "{\n  \"path\": %S,\n  \"stats\": %s,\n" path
           (stats_json stats));
      Buffer.add_string buf
        (Printf.sprintf "  \"orphan_chunks\": %d,\n  \"epochs\": [\n" orphans);
      let epochs = Store.epochs store in
      List.iteri
        (fun i e ->
          let entry = Store.entry_at store e in
          Buffer.add_string buf
            (Printf.sprintf
               "    {\"epoch\": %d, \"kind\": %S, \"roots\": %d, \"chunks\": \
                %d}%s\n"
               e
               (match entry.Epoch_index.kind with
               | Segment.Full -> "full"
               | Segment.Incremental -> "incremental")
               (List.length entry.Epoch_index.roots)
               (List.length entry.Epoch_index.chunks)
               (if i = List.length epochs - 1 then "" else ",")))
        epochs;
      Buffer.add_string buf
        (Printf.sprintf "  ],\n  \"check_errors\": [%s]\n}\n"
           (String.concat ", " (List.map (Printf.sprintf "%S") problems)));
      print_string (Buffer.contents buf)
    end
    else begin
      Format.printf "store %s@.  %a@.  orphan chunks: %d@." path pp_stats
        stats orphans;
      List.iter
        (fun e ->
          let entry = Store.entry_at store e in
          Format.printf "  epoch %3d  %-11s  %d root(s), %d chunk(s)@." e
            (match entry.Epoch_index.kind with
            | Segment.Full -> "full"
            | Segment.Incremental -> "incremental")
            (List.length entry.Epoch_index.roots)
            (List.length entry.Epoch_index.chunks))
        (Store.epochs store);
      match problems with
      | [] -> Format.printf "  check: consistent@."
      | ps ->
          List.iter (fun p -> Format.printf "  check ERROR: %s@." p) ps
    end;
    if problems <> [] then exit 1
  in
  let doc = "show a store's epochs, dedup statistics and integrity" in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const inspect $ path_arg $ json_arg)

(* ---- gc ------------------------------------------------------------------ *)

let gc_cmd =
  let keep_last_arg =
    let doc = "Keep the newest $(docv) epochs." in
    Arg.(value & opt (some int) None & info [ "keep-last" ] ~docv:"N" ~doc)
  in
  let keep_from_arg =
    let doc = "Keep epochs at or after $(docv)." in
    Arg.(value & opt (some int) None & info [ "keep-from" ] ~docv:"EPOCH" ~doc)
  in
  let gc path json keep_last keep_from =
    let retain =
      match (keep_last, keep_from) with
      | Some n, None -> Store.Keep_last n
      | None, Some e -> Store.Keep_from e
      | None, None | Some _, Some _ ->
          Printf.eprintf "gc: give exactly one of --keep-last, --keep-from\n";
          exit 2
    in
    let store = open_existing path in
    match Store.gc store ~retain with
    | g ->
        let stats = Store.stats store in
        if json then
          Printf.printf
            "{\"dropped_epochs\": %d, \"dropped_chunks\": %d, \
             \"reclaimed_bytes\": %d,\n \"stats\": %s}\n"
            g.Store.dropped_epochs g.Store.dropped_chunks
            g.Store.reclaimed_bytes (stats_json stats)
        else
          Format.printf
            "gc %s: dropped %d epoch(s), %d chunk(s), reclaimed %d bytes@.  \
             now: %a@."
            path g.Store.dropped_epochs g.Store.dropped_chunks
            g.Store.reclaimed_bytes pp_stats stats
    | exception Store.Error msg ->
        Printf.eprintf "gc: %s\n" msg;
        exit 1
  in
  let doc = "drop epochs outside a retention window and reclaim chunks" in
  Cmd.v
    (Cmd.info "gc" ~doc)
    Term.(const gc $ path_arg $ json_arg $ keep_last_arg $ keep_from_arg)

(* ---- demo ---------------------------------------------------------------- *)

let demo_cmd =
  let demo () =
    let open Ickpt_synth in
    let path =
      Filename.concat (Filename.get_temp_dir_name ()) "ickpt_store_demo.ckpt"
    in
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ Store.pack_path path; Store.index_path path ];
    let t = Synth.build { Synth.default_config with Synth.n_structures = 4 } in
    let store = Store.open_ t.Synth.schema ~path in
    let chain = Chain.create t.Synth.schema in
    let roots = Synth.roots t in
    ignore
      (Store.append_segment store (Chain.take_full chain roots).Chain.segment);
    for round = 1 to 8 do
      ignore (Synth.mutate_round t);
      let taken =
        (* A full every third epoch, so gc has droppable history. *)
        if round mod 3 = 0 then Chain.take_full chain roots
        else Chain.take_incremental chain roots
      in
      ignore (Store.append_segment store taken.Chain.segment)
    done;
    Format.printf "built %s@.  %a@." path pp_stats (Store.stats store);
    let epoch = 4 in
    let _, restored = Store.restore store ~epoch in
    Format.printf "restored epoch %d: %d root(s)@." epoch
      (List.length restored);
    let g = Store.gc store ~retain:(Store.Keep_last 3) in
    Format.printf
      "gc --keep-last 3: dropped %d epoch(s), %d chunk(s), reclaimed %d \
       bytes@.  now: %a@."
      g.Store.dropped_epochs g.Store.dropped_chunks g.Store.reclaimed_bytes
      pp_stats (Store.stats store);
    (match Store.check store with
    | [] -> Format.printf "check: consistent@."
    | ps ->
        List.iter (fun p -> Format.printf "check ERROR: %s@." p) ps;
        exit 1);
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ Store.pack_path path; Store.index_path path ]
  in
  let doc = "build, restore and gc a small throwaway store end to end" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo $ const ())

let () =
  let doc = "inspect and garbage-collect content-addressed checkpoint stores" in
  let info = Cmd.info "ickpt_store" ~version:"1.0.0" ~doc in
  let code = Cmd.eval (Cmd.group info [ inspect_cmd; gc_cmd; demo_cmd ]) in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
