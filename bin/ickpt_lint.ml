(* Static verification of specialization classes and residual code.

   Three cooperating checks, all before any heap exists:

   1. effect inference — interprocedural read/write effects (with array
      segments) of the workload program's functions;
   2. spec-lint — the three phase declarations in Attrs, compared against
      the shapes inferred from the phase models (unsound declarations are
      errors, imprecise ones warnings);
   3. residual lint — dead stores, unreachable branches and redundant
      modified-flag tests left in the specialized checkpoint code.

   Exits non-zero iff any error-severity finding remains, so a seeded
   unsound declaration (--seed-unsound) fails the build while the shipped
   declarations pass. *)

open Cmdliner
open Ickpt_analysis

let file_arg =
  let doc = "Mini-C source file to analyze (default: generated workload)." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let workload_arg =
  let doc = "Built-in workload when no FILE is given: image or small." in
  Arg.(
    value
    & opt (enum [ ("image", `Image); ("small", `Small) ]) `Image
    & info [ "workload" ] ~doc)

let seed_unsound_arg =
  let doc =
    "Additionally lint a deliberately wrong declaration (the bta shape \
     declared for the sea phase) — must be reported unsound and fail."
  in
  Arg.(value & flag & info [ "seed-unsound" ] ~doc)

let no_effects_arg =
  let doc = "Skip the per-function effect table." in
  Arg.(value & flag & info [ "no-effects" ] ~doc)

let load_program file workload =
  match file with
  | None -> (
      match workload with
      | `Image -> Minic.Gen.image_program ()
      | `Small -> Minic.Gen.small_program ())
  | Some path -> (
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try Minic.Parser.parse src with
      | Minic.Parser.Parse_error { line; message } ->
          Printf.eprintf "%s:%d: %s\n" path line message;
          exit 2
      | Minic.Lexer.Lex_error { line; col; message } ->
          Printf.eprintf "%s:%d:%d: %s\n" path line col message;
          exit 2)

let phase_shapes attrs =
  [ (Staticcheck.Phase_model.Sea, Attrs.sea_shape attrs);
    (Staticcheck.Phase_model.Bta, Attrs.bta_shape attrs);
    (Staticcheck.Phase_model.Eta, Attrs.eta_shape attrs) ]

let run file workload seed_unsound no_effects =
  let program = load_program file workload in
  let env =
    match Minic.Check.check program with
    | env -> env
    | exception Minic.Check.Check_error msg ->
        Printf.eprintf "check error: %s\n" msg;
        exit 2
  in
  Format.printf "ickpt_lint: %d function(s), %d statement(s), %d global(s)@."
    (List.length program.Minic.Ast.funcs)
    (Minic.Ast.stmt_count program)
    (Minic.Check.global_count env);
  (* 1. Effect inference over the workload. *)
  if not no_effects then begin
    let summaries = Staticcheck.Effects.compute env in
    Format.printf "@[<v 2>effects (interprocedural, per call):@,%a@]@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (fname, eff) ->
           Format.fprintf ppf "@[<h>%-18s %a@]" fname
             (Staticcheck.Effects.pp env) eff))
      (Staticcheck.Effects.all summaries)
  end;
  (* 2. Spec-lint the shipped phase declarations. *)
  let attrs = Attrs.create ~n_stmts:(max 1 (Minic.Ast.stmt_count program)) in
  let klasses = Attrs.klasses attrs in
  let spec_findings =
    List.concat_map
      (fun (phase, declared) ->
        List.map Staticcheck.Finding.of_spec
          (Staticcheck.Spec_lint.check_phase ~klasses phase ~declared))
      (phase_shapes attrs)
  in
  (* 3. Residual lint of the specialized code for each phase shape. *)
  let residual_findings =
    List.concat_map
      (fun (phase, shape) ->
        List.map
          (Staticcheck.Finding.of_residual
             ~phase:(Staticcheck.Phase_model.name phase))
          (Staticcheck.Residual_lint.lint_result (Jspec.Pe.specialize shape)))
      (phase_shapes attrs)
  in
  (* 4. Optionally demonstrate the unsound taxonomy on a wrong declaration:
     the bta shape declares the SEEntry subtree Clean, which the sea phase
     writes. *)
  let seeded_findings =
    if not seed_unsound then []
    else
      List.map Staticcheck.Finding.of_spec
        (Staticcheck.Spec_lint.check_phase ~klasses Staticcheck.Phase_model.Sea
           ~declared:(Attrs.bta_shape attrs))
  in
  let all =
    Staticcheck.Finding.sort (spec_findings @ residual_findings @ seeded_findings)
  in
  Format.printf "%a@." Staticcheck.Finding.pp_report all;
  if Staticcheck.Finding.has_errors all then exit 1

let () =
  let doc = "static lint of specialization classes and residual code" in
  let info = Cmd.info "ickpt_lint" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ file_arg $ workload_arg $ seed_unsound_arg $ no_effects_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
