(* Static verification of specialization classes and residual code.

   Four subcommands, all running before any heap exists:

   - [lint] (the default): effect inference over the workload program,
     spec-lint of the three shipped phase declarations against the
     statically inferred shapes, and residual lint (dead stores,
     unreachable branches, redundant modified tests) of the specialized
     code;
   - [verify]: translation validation — symbolically prove, for every
     shipped specialization class (the three analysis phases and the
     three synthetic-application knowledge levels), that the residual
     checkpoint code writes byte-for-byte what the generic incremental
     algorithm writes, on every conforming heap, before and after the
     cleanup pass. [--seed-miscompile] mutates the residual code first
     and demonstrates the refutations;
   - [elide]: the static write-barrier elision plans — which attribute
     sites each phase provably never writes (barrier + flag maintenance
     compiled out) and how much of the runtime guard is discharged.
     [--oracle] re-verifies the plans dynamically (byte identity and
     invariant I8); [--seed-unsound] demonstrates the refusal on a wrong
     declaration;
   - [infer]: fully automatic checkpoint inference on an annotation-free
     program — discovered phases, inferred heap shapes, per-phase
     effects, a translation-validation verdict for every synthesized
     checkpointer (non-verified = hard error, never a silent generic
     fallback), and the inferred barrier-elision plan. [--oracle] runs
     the differential oracle on the inferred pipeline; [--seed-unsound]
     mutates a synthesized shape before validation and demonstrates the
     refusal;
   - [live]: interprocedural liveness and checkpoint-set minimization —
     per-boundary live regions, the minimized (may-write ∩ live)
     checkpoint set, and the live-extended elision plan. [--oracle] runs
     the restore-equivalence oracle (restore, resume, containment);
     [--seed-unsound] drops one live block from the minimized set — no
     static finding fires, only the dynamic oracle catches it, so the
     flag implies [--oracle] and the command must fail;
   - [par]: may-read/may-write interference analysis and the
     domain-parallel schedule it proves safe — disjoint phase groups and
     iteration strips, with a finding-reported refusal (naming the
     conflicting region pair) wherever footprints may overlap.
     [--oracle] executes the schedule on OCaml domains and verifies
     byte-identity with the sequential chain plus pairwise
     observed-footprint disjointness; [--seed-racy] widens one strip by
     one cell past the static checks — only the dynamic oracle catches
     it, so the flag implies [--oracle] and the command must fail.

   All subcommands share one [--json] envelope: top-level [tool],
   [schema_version], [subcommand], [errors], [warnings], [findings] and
   [exit_code].

   Exit codes (uniform across all subcommands): 0 — clean; 1 —
   error-severity findings (unsound declaration, refuted residual code,
   unsound elision or a failed oracle); 2 — usage or input error. *)

open Cmdliner
open Ickpt_analysis

(* ---- shared arguments and helpers ---------------------------------------- *)

let file_arg =
  let doc = "Mini-C source file to analyze (default: generated workload)." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let workload_arg =
  let doc = "Built-in workload when no FILE is given: image or small." in
  Arg.(
    value
    & opt (enum [ ("image", `Image); ("small", `Small) ]) `Image
    & info [ "workload" ] ~doc)

let json_arg =
  let doc = "Emit machine-readable JSON on stdout instead of the report." in
  Arg.(value & flag & info [ "json" ] ~doc)

let load_program file workload =
  match file with
  | None -> (
      match workload with
      | `Image -> Minic.Gen.image_program ()
      | `Small -> Minic.Gen.small_program ())
  | Some path -> (
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try Minic.Parser.parse src with
      | Minic.Parser.Parse_error { line; message } ->
          Printf.eprintf "%s:%d: %s\n" path line message;
          exit 2
      | Minic.Lexer.Lex_error { line; col; message } ->
          Printf.eprintf "%s:%d:%d: %s\n" path line col message;
          exit 2)

let check_program program =
  match Minic.Check.check program with
  | env -> env
  | exception Minic.Check.Check_error msg ->
      Printf.eprintf "check error: %s\n" msg;
      exit 2

let phase_shapes attrs =
  [ (Staticcheck.Phase_model.Sea, Attrs.sea_shape attrs);
    (Staticcheck.Phase_model.Bta, Attrs.bta_shape attrs);
    (Staticcheck.Phase_model.Eta, Attrs.eta_shape attrs) ]

(* ---- JSON output ---------------------------------------------------------- *)

(* Every subcommand emits the same envelope (Staticcheck.Finding.envelope):
   the exit code is computed first, printed inside the JSON, and then
   used to exit — so a parser never has to re-derive severity. *)
let print_envelope ~subcommand ?extra ~exit_code findings =
  print_endline
    (Staticcheck.Finding.envelope ~subcommand ?extra ~exit_code findings)

(* ---- lint (default subcommand) ------------------------------------------- *)

let seed_unsound_arg =
  let doc =
    "Additionally lint a deliberately wrong declaration (the bta shape \
     declared for the sea phase) — must be reported unsound and fail."
  in
  Arg.(value & flag & info [ "seed-unsound" ] ~doc)

let no_effects_arg =
  let doc = "Skip the per-function effect table." in
  Arg.(value & flag & info [ "no-effects" ] ~doc)

let run_lint file workload seed_unsound no_effects json =
  let program = load_program file workload in
  let env = check_program program in
  if not json then
    Format.printf "ickpt_lint: %d function(s), %d statement(s), %d global(s)@."
      (List.length program.Minic.Ast.funcs)
      (Minic.Ast.stmt_count program)
      (Minic.Check.global_count env);
  (* 1. Effect inference over the workload. *)
  if (not no_effects) && not json then begin
    let summaries = Staticcheck.Effects.compute env in
    Format.printf "@[<v 2>effects (interprocedural, per call):@,%a@]@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (fname, eff) ->
           Format.fprintf ppf "@[<h>%-18s %a@]" fname
             (Staticcheck.Effects.pp env) eff))
      (Staticcheck.Effects.all summaries)
  end;
  (* 2. Spec-lint the shipped phase declarations. *)
  let attrs = Attrs.create ~n_stmts:(max 1 (Minic.Ast.stmt_count program)) in
  let klasses = Attrs.klasses attrs in
  let spec_findings =
    List.concat_map
      (fun (phase, declared) ->
        List.map Staticcheck.Finding.of_spec
          (Staticcheck.Spec_lint.check_phase ~klasses phase ~declared))
      (phase_shapes attrs)
  in
  (* 3. Residual lint of the specialized code for each phase shape. *)
  let residual_findings =
    List.concat_map
      (fun (phase, shape) ->
        List.map
          (Staticcheck.Finding.of_residual
             ~phase:(Staticcheck.Phase_model.name phase))
          (Staticcheck.Residual_lint.lint_result (Jspec.Pe.specialize shape)))
      (phase_shapes attrs)
  in
  (* 4. Optionally demonstrate the unsound taxonomy on a wrong declaration:
     the bta shape declares the SEEntry subtree Clean, which the sea phase
     writes. *)
  let seeded_findings =
    if not seed_unsound then []
    else
      List.map Staticcheck.Finding.of_spec
        (Staticcheck.Spec_lint.check_phase ~klasses Staticcheck.Phase_model.Sea
           ~declared:(Attrs.bta_shape attrs))
  in
  let all =
    Staticcheck.Finding.sort (spec_findings @ residual_findings @ seeded_findings)
  in
  let exit_code = if Staticcheck.Finding.has_errors all then 1 else 0 in
  if json then print_envelope ~subcommand:"lint" ~exit_code all
  else Format.printf "%a@." Staticcheck.Finding.pp_report all;
  if exit_code <> 0 then exit exit_code

(* ---- verify --------------------------------------------------------------- *)

let seed_miscompile_arg =
  let doc =
    "Additionally verify every single-point mutation of the sea phase's \
     residual code — each miscompile must be refuted with a concrete \
     counterexample heap, and the command must fail."
  in
  Arg.(value & flag & info [ "seed-miscompile" ] ~doc)

let max_vars_arg =
  let doc =
    "Budget on the symbolic heap family: shapes with more boolean \
     variables than this are reported unsupported rather than enumerated."
  in
  Arg.(value & opt int 16 & info [ "max-vars" ] ~docv:"N" ~doc)

(* A small synthetic-application configuration: the same three knowledge
   levels as the paper's experiments, sized so the exhaustive valuation
   enumeration stays instant. *)
let small_synth_config =
  { Ickpt_synth.Synth.n_structures = 1;
    n_lists = 2;
    list_len = 2;
    n_int_fields = 2;
    pct_modified = 100;
    modified_lists = 1;
    last_only = true;
    seed = 42 }

let run_verify file workload seed_miscompile max_vars json =
  let program = load_program file workload in
  let (_ : Minic.Check.env) = check_program program in
  let attrs = Attrs.create ~n_stmts:(max 1 (Minic.Ast.stmt_count program)) in
  let app = Ickpt_synth.Synth.build small_synth_config in
  let shapes =
    [ ("sea", Attrs.sea_shape attrs);
      ("bta", Attrs.bta_shape attrs);
      ("eta", Attrs.eta_shape attrs);
      ("synth-structure", Ickpt_synth.Synth.shape_structure app);
      ("synth-modified-lists", Ickpt_synth.Synth.shape_modified_lists app);
      ("synth-last-only", Ickpt_synth.Synth.shape_last_only app) ]
  in
  let verified = ref [] in
  let findings = ref [] in
  let record name stage verdict =
    (match verdict with
    | Staticcheck.Tv.Verified { vars; paths } ->
        verified := (name, stage, vars, paths) :: !verified
    | _ -> ());
    (match Staticcheck.Tv.finding ~phase:(name ^ ":" ^ stage) verdict with
    | Some f -> findings := f :: !findings
    | None -> ());
    if not json then
      Format.printf "verify: %-24s %-12s %a@." name stage Staticcheck.Tv.pp
        verdict
  in
  List.iter
    (fun (name, shape) ->
      List.iter
        (fun (stage, verdict) -> record name stage verdict)
        (Staticcheck.Tv.verify_shape ~max_vars shape))
    shapes;
  (* Seeded miscompiles: every mutant of the sea residual code must be
     refuted, each refutation confirmed by replaying its counterexample
     heap on the real backends. *)
  if seed_miscompile then begin
    let shape = Attrs.sea_shape attrs in
    let result = Jspec.Pe.specialize shape in
    let rejected = ref 0 and escaped = ref 0 in
    List.iter
      (fun (label, mutant) ->
        match Staticcheck.Tv.verify ~max_vars shape mutant with
        | Staticcheck.Tv.Refuted { replay; _ } as v ->
            incr rejected;
            if not replay.Staticcheck.Equiv.diverged then
              Printf.eprintf "mutant %s: replay did not confirm!\n" label;
            record ("mutant:" ^ label) "seeded" v
        | v ->
            incr escaped;
            record ("mutant:" ^ label) "seeded" v;
            if not json then
              Format.printf "verify: mutant %s escaped (%a)@." label
                Staticcheck.Tv.pp v)
      (Staticcheck.Tv.mutants result);
    if not json then
      Format.printf "verify: %d seeded miscompile(s) rejected, %d escaped@."
        !rejected !escaped
  end;
  let findings = Staticcheck.Finding.sort !findings in
  let exit_code = if Staticcheck.Finding.has_errors findings then 1 else 0 in
  if json then begin
    let verified_json (shape, stage, vars, paths) =
      Printf.sprintf {|{"shape":"%s","stage":"%s","vars":%d,"paths":%d}|}
        (Staticcheck.Finding.json_escape shape)
        (Staticcheck.Finding.json_escape stage)
        vars paths
    in
    let verified =
      Printf.sprintf "[%s]"
        (String.concat "," (List.map verified_json (List.rev !verified)))
    in
    print_envelope ~subcommand:"verify"
      ~extra:[ ("verified", verified) ]
      ~exit_code findings
  end
  else if findings <> [] then
    Format.printf "%a@." Staticcheck.Finding.pp_report findings;
  if exit_code <> 0 then exit exit_code

(* ---- elide ---------------------------------------------------------------- *)

let elide_seed_unsound_arg =
  let doc =
    "Additionally plan elision for a deliberately wrong declaration (the \
     bta shape declared for the sea phase) — the written site must keep \
     its barrier, an error finding must be reported, and the command must \
     fail."
  in
  Arg.(value & flag & info [ "seed-unsound" ] ~doc)

let oracle_arg =
  let doc =
    "Also run the differential soundness oracle on the workload: \
     instrumented vs elided runs must produce byte-identical checkpoint \
     chains, and every dynamically dirty cell must lie inside the static \
     may-write region (invariant I8)."
  in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let run_elide file workload seed_unsound oracle json =
  let program = load_program file workload in
  let (_ : Minic.Check.env) = check_program program in
  let attrs = Attrs.create ~n_stmts:(max 1 (Minic.Ast.stmt_count program)) in
  let plans =
    List.map
      (fun (phase, declared) -> Staticcheck.Barrier_elide.plan ~declared phase)
      (phase_shapes attrs)
  in
  let seeded =
    if not seed_unsound then []
    else
      [ Staticcheck.Barrier_elide.plan
          ~declared:(Attrs.bta_shape attrs)
          Staticcheck.Phase_model.Sea ]
  in
  let findings =
    Staticcheck.Finding.sort
      (List.concat_map
         (fun (p : Staticcheck.Barrier_elide.plan) -> p.findings)
         (plans @ seeded))
  in
  if not json then begin
    List.iter
      (fun p -> Format.printf "%a@." Staticcheck.Barrier_elide.pp p)
      plans;
    if seeded <> [] then
      List.iter
        (fun p ->
          Format.printf "seeded (bta declared for sea):@.%a@."
            Staticcheck.Barrier_elide.pp p)
        seeded
  end;
  let oracle_failed = ref false in
  if oracle then begin
    let name =
      match file with
      | Some path -> Filename.basename path
      | None -> ( match workload with `Image -> "image" | `Small -> "small")
    in
    let o = Elide_oracle.run ~name program in
    if not json then Format.printf "%a@." Elide_oracle.pp o;
    if not (Elide_oracle.ok o) then oracle_failed := true
  end;
  let exit_code =
    if Staticcheck.Finding.has_errors findings || !oracle_failed then 1 else 0
  in
  if json then
    print_envelope ~subcommand:"elide"
      ~extra:[ ("oracle_ok", if !oracle_failed then "false" else "true") ]
      ~exit_code findings
  else Format.printf "%a@." Staticcheck.Finding.pp_report findings;
  if exit_code <> 0 then exit exit_code

(* ---- infer ----------------------------------------------------------------- *)

let infer_seed_unsound_arg =
  let doc =
    "Mutate the first synthesized shape (its first Clean node flipped to \
     Tracked) before translation validation — the validator must refute \
     it, an error finding must be reported, and the command must fail."
  in
  Arg.(value & flag & info [ "seed-unsound" ] ~doc)

let infer_oracle_arg =
  let doc =
    "Also run the differential soundness oracle on the inferred pipeline: \
     four annotation-free engine runs whose checkpoint chains must be \
     byte-identical across elision and across modes, with every \
     dynamically dirty block inside its phase's inferred may-write region \
     (invariant I8)."
  in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let run_infer file workload seed_unsound oracle max_vars json =
  let program = load_program file workload in
  let env = check_program program in
  let t = Staticcheck.Auto_spec.infer ~seed_unsound ~max_vars env in
  let findings = Staticcheck.Auto_spec.findings t in
  if not json then Format.printf "%a@." Staticcheck.Auto_spec.pp t;
  let oracle_failed = ref false in
  if oracle && not (Staticcheck.Finding.has_errors findings) then begin
    let name =
      match file with
      | Some path -> Filename.basename path
      | None -> ( match workload with `Image -> "image" | `Small -> "small")
    in
    let o = Elide_oracle.run_inferred ~name program in
    if not json then Format.printf "%a@." Elide_oracle.pp o;
    if not (Elide_oracle.ok o) then oracle_failed := true
  end;
  let exit_code =
    if Staticcheck.Finding.has_errors findings || !oracle_failed then 1 else 0
  in
  if json then
    print_envelope ~subcommand:"infer"
      ~extra:
        [ ("phases", string_of_int (List.length t.Staticcheck.Auto_spec.a_phases));
          ( "verified_specializations",
            string_of_int (Staticcheck.Auto_spec.verified_count t) );
          ("oracle_ok", if !oracle_failed then "false" else "true") ]
      ~exit_code findings;
  if exit_code <> 0 then exit exit_code

(* ---- live ------------------------------------------------------------------ *)

let live_seed_unsound_arg =
  let doc =
    "Drop one live block from the first non-empty minimized region — the \
     minimized checkpointer then skips state a later read needs. No \
     static finding fires; the restore-equivalence oracle (implied by \
     this flag) must catch the stale restore and the command must fail."
  in
  Arg.(value & flag & info [ "seed-unsound" ] ~doc)

let live_oracle_arg =
  let doc =
    "Also run the restore-equivalence oracle: per minimized epoch, the \
     restored live cells must match the unminimized restore, a run \
     resumed from the minimized restore must produce the reference \
     return value and final live state, and everything it reads before \
     writing must lie inside the static live region."
  in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let run_live_cmd file workload seed_unsound oracle json =
  let program = load_program file workload in
  let env = check_program program in
  let t = Staticcheck.Auto_spec.infer ~seed_dead:seed_unsound env in
  let live = t.Staticcheck.Auto_spec.a_live in
  if not json then begin
    Format.printf "%a@." Staticcheck.Live.pp live;
    List.iter
      (fun (pr : Staticcheck.Auto_spec.phase_result) ->
        Format.printf
          "@[<v 2>%s minimized checkpoint set (may-write ∩ live):@,%a@]@."
          pr.Staticcheck.Auto_spec.ph.Staticcheck.Phase_discover.p_name
          (Format.pp_print_list (fun ppf (g, r) ->
               Format.fprintf ppf "%-12s %a" g Staticcheck.Regions.pp r))
          pr.Staticcheck.Auto_spec.ph_min_regions;
        Format.printf "%a@." Staticcheck.Barrier_elide.pp_wplan
          pr.Staticcheck.Auto_spec.ph_live_wplan)
      t.Staticcheck.Auto_spec.a_phases
  end;
  (* The static pipeline stays silent on a seeded-dead block by design —
     the whole point is that only the dynamic oracle gates it. *)
  let oracle_findings = ref [] in
  let oracle_ran = ref false in
  let bytes = ref None in
  if oracle || seed_unsound then begin
    let name =
      match file with
      | Some path -> Filename.basename path
      | None -> ( match workload with `Image -> "image" | `Small -> "small")
    in
    let o = Elide_oracle.run_live ~seed_unsound ~name program in
    oracle_ran := true;
    bytes :=
      Some (o.Elide_oracle.lw_baseline_bytes, o.Elide_oracle.lw_minimized_bytes);
    if not json then Format.printf "%a@." Elide_oracle.pp_live o;
    oracle_findings :=
      List.map
        (fun (f : Elide_oracle.live_failure) ->
          { Staticcheck.Finding.severity = Staticcheck.Finding.Error;
            scope = "live-oracle";
            path = Printf.sprintf "%s@epoch%d" f.Elide_oracle.lf_kind
                f.Elide_oracle.lf_epoch;
            reason = f.Elide_oracle.lf_detail })
        o.Elide_oracle.lw_failures
  end;
  let findings =
    Staticcheck.Finding.sort
      (Staticcheck.Auto_spec.findings t @ !oracle_findings)
  in
  let exit_code = if Staticcheck.Finding.has_errors findings then 1 else 0 in
  if json then begin
    let extra =
      [ ("boundaries",
         string_of_int (List.length t.Staticcheck.Auto_spec.a_phases));
        ("oracle_ok",
         if !oracle_ran && !oracle_findings = [] then "true"
         else if !oracle_ran then "false"
         else "null") ]
      @
      match !bytes with
      | Some (b, m) ->
          [ ("baseline_bytes", string_of_int b);
            ("minimized_bytes", string_of_int m) ]
      | None -> []
    in
    print_envelope ~subcommand:"live" ~extra ~exit_code findings
  end
  else Format.printf "%a@." Staticcheck.Finding.pp_report findings;
  if exit_code <> 0 then exit exit_code

(* ---- par ------------------------------------------------------------------- *)

let par_domains_arg =
  let doc = "Domains to schedule parallel units across (minimum 1)." in
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc)

let par_seed_racy_arg =
  let doc =
    "Widen one strip's executed range by one cell after the static \
     disjointness checks — a racy overlap no static finding reports. The \
     dynamic oracle (implied by this flag) must observe the footprint \
     intersection and the command must fail; if the schedule has no \
     multi-strip sweep to seed, that is reported as an error instead."
  in
  Arg.(value & flag & info [ "seed-racy" ] ~doc)

let par_oracle_arg =
  let doc =
    "Also run the sequential-identity oracle: the parallel checkpoint \
     chain must be byte-identical to the sequential one in incremental \
     and guarded-specialized modes, and the footprints each domain \
     actually observed must be pairwise disjoint within every fork \
     group (the parallel dual of invariant I8)."
  in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let run_par_cmd file workload domains seed_racy oracle json =
  let program = load_program file workload in
  let env = check_program program in
  let t = Staticcheck.Auto_spec.infer env in
  let sc = Staticcheck.Interfere.schedule ~domains ~seed_racy t in
  if not json then Format.printf "%a@." Staticcheck.Interfere.pp sc;
  (* A seed that found nothing to widen cannot exercise the oracle: the
     self-test is vacuous, which must fail loudly, not pass silently. *)
  let seed_findings =
    if seed_racy && not sc.Staticcheck.Interfere.Schedule.sc_seeded then
      [ { Staticcheck.Finding.severity = Staticcheck.Finding.Error;
          scope = "par";
          path = "seed-racy";
          reason =
            "seed-racy requested but the schedule parallelizes nothing to \
             seed (no multi-strip sweep)" } ]
    else []
  in
  let static_findings =
    Staticcheck.Auto_spec.findings t
    @ sc.Staticcheck.Interfere.Schedule.sc_findings
    @ seed_findings
  in
  let oracle_findings = ref [] in
  let oracle_ran = ref false in
  if
    (oracle || seed_racy)
    && not (Staticcheck.Finding.has_errors static_findings)
  then begin
    let name =
      match file with
      | Some path -> Filename.basename path
      | None -> ( match workload with `Image -> "image" | `Small -> "small")
    in
    let o = Elide_oracle.run_par ~seed_racy ~domains ~name program in
    oracle_ran := true;
    if not json then Format.printf "%a@." Elide_oracle.pp_par o;
    let err path reason =
      { Staticcheck.Finding.severity = Staticcheck.Finding.Error;
        scope = "par-oracle";
        path;
        reason }
    in
    let identity =
      (if o.Elide_oracle.pw_identical_incremental then []
       else
         [ err "chain:incremental"
             "parallel incremental chain differs from the sequential one" ])
      @
      if o.Elide_oracle.pw_identical_specialized then []
      else
        [ err "chain:specialized"
            "parallel specialized chain differs from the sequential one" ]
    in
    let conflicts =
      List.map
        (fun (c : Elide_oracle.par_conflict) ->
          err
            (Printf.sprintf "%s:fork%d" c.Elide_oracle.pc_mode
               c.Elide_oracle.pc_group)
            (Printf.sprintf "%s || %s: %s" c.Elide_oracle.pc_a
               c.Elide_oracle.pc_b c.Elide_oracle.pc_detail))
        o.Elide_oracle.pw_conflicts
    in
    oracle_findings := identity @ conflicts
  end;
  let findings =
    Staticcheck.Finding.sort (static_findings @ !oracle_findings)
  in
  let exit_code = if Staticcheck.Finding.has_errors findings then 1 else 0 in
  if json then
    print_envelope ~subcommand:"par"
      ~extra:
        [ ("domains",
           string_of_int sc.Staticcheck.Interfere.Schedule.sc_domains);
          ("par_sweeps",
           string_of_int sc.Staticcheck.Interfere.Schedule.sc_par_sweeps);
          ("refused_sweeps",
           string_of_int sc.Staticcheck.Interfere.Schedule.sc_refused_sweeps);
          ("groups",
           string_of_int sc.Staticcheck.Interfere.Schedule.sc_groups);
          ("seeded",
           if sc.Staticcheck.Interfere.Schedule.sc_seeded then "true"
           else "false");
          ("oracle_ok",
           if !oracle_ran && !oracle_findings = [] then "true"
           else if !oracle_ran then "false"
           else "null") ]
      ~exit_code findings
  else Format.printf "%a@." Staticcheck.Finding.pp_report findings;
  if exit_code <> 0 then exit exit_code

(* ---- command line --------------------------------------------------------- *)

let exits =
  [ Cmd.Exit.info 0 ~doc:"no error findings; all shapes verified.";
    Cmd.Exit.info 1
      ~doc:
        "error-severity findings: an unsound declaration or refuted \
         residual code.";
    Cmd.Exit.info 2 ~doc:"usage error, or the input failed to parse/check." ]

let lint_term =
  Term.(
    const run_lint $ file_arg $ workload_arg $ seed_unsound_arg
    $ no_effects_arg $ json_arg)

let verify_term =
  Term.(
    const run_verify $ file_arg $ workload_arg $ seed_miscompile_arg
    $ max_vars_arg $ json_arg)

let elide_term =
  Term.(
    const run_elide $ file_arg $ workload_arg $ elide_seed_unsound_arg
    $ oracle_arg $ json_arg)

let infer_term =
  Term.(
    const run_infer $ file_arg $ workload_arg $ infer_seed_unsound_arg
    $ infer_oracle_arg $ max_vars_arg $ json_arg)

let live_term =
  Term.(
    const run_live_cmd $ file_arg $ workload_arg $ live_seed_unsound_arg
    $ live_oracle_arg $ json_arg)

let par_term =
  Term.(
    const run_par_cmd $ file_arg $ workload_arg $ par_domains_arg
    $ par_seed_racy_arg $ par_oracle_arg $ json_arg)

let () =
  let doc = "static lint and translation validation of specialized code" in
  let info = Cmd.info "ickpt_lint" ~version:"1.0.0" ~doc ~exits in
  let lint_cmd =
    Cmd.v
      (Cmd.info "lint" ~doc:"spec-lint and residual lint (the default)" ~exits)
      lint_term
  in
  let verify_cmd =
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "prove residual checkpoint code byte-equivalent to the generic \
            algorithm"
         ~exits)
      verify_term
  in
  let elide_cmd =
    Cmd.v
      (Cmd.info "elide"
         ~doc:
           "plan static write-barrier elision per phase (and optionally \
            verify it with the differential oracle)"
         ~exits)
      elide_term
  in
  let infer_cmd =
    Cmd.v
      (Cmd.info "infer"
         ~doc:
           "fully automatic checkpoint inference: annotation-free program \
            to verified specialized checkpointer"
         ~exits)
      infer_term
  in
  let live_cmd =
    Cmd.v
      (Cmd.info "live"
         ~doc:
           "interprocedural liveness: minimize the checkpoint set and \
            verify restore-equivalence of the minimized chain"
         ~exits)
      live_term
  in
  let par_cmd =
    Cmd.v
      (Cmd.info "par"
         ~doc:
           "interference analysis and domain-parallel execution: schedule \
            disjoint phases and iteration strips, and verify sequential \
            identity plus observed-footprint disjointness"
         ~exits)
      par_term
  in
  let code =
    Cmd.eval
      (Cmd.group ~default:lint_term info
         [ lint_cmd; verify_cmd; elide_cmd; infer_cmd; live_cmd; par_cmd ])
  in
  (* Normalize cmdliner's CLI-error code to the documented usage-error 2. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
