(* Command-line front end over the experiment registry: run any subset of
   the paper's tables/figures at any scale, list them, or run the Bechamel
   micro-benchmarks. *)

open Cmdliner
open Ickpt_experiments

let scale_arg =
  let doc =
    "Synthetic population as a fraction of the paper's 20,000 structures."
  in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let paper_arg =
  let doc = "Run at full paper scale (equivalent to --scale 1)." in
  Arg.(value & flag & info [ "paper" ] ~doc)

let names_arg =
  let doc = "Experiments to run (default: all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc)

let effective_scale scale paper = if paper then 1.0 else scale

let run_cmd =
  let run scale paper names =
    let scale = effective_scale scale paper in
    let ppf = Format.std_formatter in
    let names = match names with [] -> None | l -> Some l in
    let results = Registry.run_all ?names ~scale ppf in
    let failed =
      List.concat_map
        (fun (_, checks) -> List.filter (fun c -> not c.Workload.ok) checks)
        results
    in
    if failed = [] then `Ok ()
    else begin
      Format.fprintf ppf "@.%d shape check(s) failed@." (List.length failed);
      `Ok ()
    end
  in
  let doc = "run evaluation experiments (tables and figures)" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(ret (const run $ scale_arg $ paper_arg $ names_arg))

let list_cmd =
  let list () =
    List.iter
      (fun e -> Printf.printf "%-8s %s\n" e.Registry.name e.Registry.title)
      Registry.all
  in
  let doc = "list available experiments" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list $ const ())

let micro_cmd =
  let quota_arg =
    let doc = "Sampling budget per test in seconds." in
    Arg.(value & opt float 0.25 & info [ "quota" ] ~docv:"SECONDS" ~doc)
  in
  let micro quota = Micro.run ~quota Format.std_formatter in
  let doc = "run the Bechamel micro-benchmarks" in
  Cmd.v (Cmd.info "micro" ~doc) Term.(const micro $ quota_arg)

let crash_cmd =
  let open Ickpt_faultsim in
  let rounds_arg =
    let doc = "Mutate-and-checkpoint rounds after the base checkpoint." in
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let density_arg =
    let doc =
      "Interior byte offsets injected per write op (0 = only the \
       boundaries 0, 1, len-1, len)."
    in
    Arg.(value & opt int 2 & info [ "density" ] ~docv:"N" ~doc)
  in
  let configs_arg =
    let doc =
      "Config labels to sweep (substring match; default: all 18)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"CONFIG" ~doc)
  in
  let crash rounds density labels =
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i =
        i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
      in
      nl = 0 || go 0
    in
    let configs =
      match labels with
      | [] -> Crash_sim.default_configs
      | ls ->
          List.filter
            (fun c ->
              List.exists (fun l -> contains c.Crash_sim.label l) ls)
            Crash_sim.default_configs
    in
    if configs = [] then `Error (false, "no config matches")
    else begin
      let reports = Crash_sim.run_all ~rounds ~density ~configs () in
      Crash_sim.pp_summary Format.std_formatter reports;
      if List.for_all Crash_sim.ok reports then `Ok ()
      else `Error (false, "crash-consistency violations found")
    end
  in
  let doc =
    "sweep simulated power-loss points over checkpointing workloads and \
     verify recovery is always prefix-consistent"
  in
  Cmd.v
    (Cmd.info "crash" ~doc)
    Term.(ret (const crash $ rounds_arg $ density_arg $ configs_arg))

let barrier_cmd =
  let files_arg =
    let doc =
      "Mini-C workloads to ablate (default: the built-in image and small \
       generator programs)."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the rows as JSON (the BENCH_4.json document) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"PATH" ~doc)
  in
  let repeats_arg =
    let doc = "Engine runs per configuration; per-phase minima are kept." in
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let barrier files out repeats =
    let load path =
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Minic.Parser.parse src with
      | program -> (Filename.remove_extension (Filename.basename path), program)
      | exception Minic.Parser.Parse_error { line; message } ->
          Printf.eprintf "%s:%d: %s\n" path line message;
          exit 2
      | exception Minic.Lexer.Lex_error { line; col; message } ->
          Printf.eprintf "%s:%d:%d: %s\n" path line col message;
          exit 2
    in
    let workloads =
      match files with
      | [] ->
          [ ("image", Minic.Gen.image_program ());
            ("small", Minic.Gen.small_program ()) ]
      | fs -> List.map load fs
    in
    let rows = Ablation_barrier.measure ~repeats workloads in
    let ppf = Format.std_formatter in
    Ablation_barrier.pp_table ppf rows;
    let checks = Ablation_barrier.checks rows in
    Workload.pp_checks ppf checks;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Ablation_barrier.json rows));
        Format.fprintf ppf "wrote %s@." path);
    if Workload.all_ok checks then `Ok ()
    else `Error (false, "barrier-ablation checks failed")
  in
  let doc =
    "measure per-phase checkpoint overhead with and without static \
     write-barrier elision"
  in
  Cmd.v
    (Cmd.info "barrier" ~doc)
    Term.(ret (const barrier $ files_arg $ out_arg $ repeats_arg))

let dedup_cmd =
  let files_arg =
    let doc =
      "Mini-C workloads to store in full-checkpointing mode (default: the \
       built-in image and small generator programs)."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the rows as JSON (the BENCH_5.json document) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"PATH" ~doc)
  in
  let repeats_arg =
    let doc = "Restore timings per row; the fastest run is kept." in
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"N" ~doc)
  in
  let epochs_arg =
    let doc = "Incremental epochs in the long pagerank-style run." in
    Arg.(value & opt int 120 & info [ "epochs" ] ~docv:"N" ~doc)
  in
  let pages_arg =
    let doc = "Pages in the long pagerank-style run." in
    Arg.(value & opt int 300 & info [ "pages" ] ~docv:"N" ~doc)
  in
  let dedup files out repeats epochs pages =
    let load path =
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Minic.Parser.parse src with
      | program -> (Filename.remove_extension (Filename.basename path), program)
      | exception Minic.Parser.Parse_error { line; message } ->
          Printf.eprintf "%s:%d: %s\n" path line message;
          exit 2
      | exception Minic.Lexer.Lex_error { line; col; message } ->
          Printf.eprintf "%s:%d:%d: %s\n" path line col message;
          exit 2
    in
    let workloads =
      match files with
      | [] ->
          [ ("image", Minic.Gen.image_program ());
            ("small", Minic.Gen.small_program ()) ]
      | fs -> List.map load fs
    in
    let rows =
      Ablation_dedup.measure_engine ~repeats workloads
      @ [ Ablation_dedup.measure_pagerank ~repeats ~epochs ~pages () ]
    in
    let ppf = Format.std_formatter in
    Ablation_dedup.pp_table ppf rows;
    let checks = Ablation_dedup.checks rows in
    Workload.pp_checks ppf checks;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Ablation_dedup.json rows));
        Format.fprintf ppf "wrote %s@." path);
    if Workload.all_ok checks then `Ok ()
    else `Error (false, "dedup-store ablation checks failed")
  in
  let doc =
    "measure chunk dedup and O(live) epoch restore of the content-addressed \
     store against plain chain replay"
  in
  Cmd.v
    (Cmd.info "dedup" ~doc)
    Term.(
      ret (const dedup $ files_arg $ out_arg $ repeats_arg $ epochs_arg
           $ pages_arg))

let live_cmd =
  let out_arg =
    let doc = "Write the rows as JSON (the BENCH_6.json document) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"PATH" ~doc)
  in
  let live out =
    let rows = Ablation_live.measure_all () in
    let ppf = Format.std_formatter in
    Ablation_live.pp_table ppf rows;
    let checks = Ablation_live.checks rows in
    Workload.pp_checks ppf checks;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Ablation_live.json rows));
        Format.fprintf ppf "wrote %s@." path);
    if Workload.all_ok checks then `Ok ()
    else `Error (false, "liveness-minimization ablation checks failed")
  in
  let doc =
    "measure checkpoint-set minimization by the interprocedural liveness \
     analysis, gated per workload by the restore-equivalence oracle"
  in
  Cmd.v (Cmd.info "live" ~doc) Term.(ret (const live $ out_arg))

let par_cmd =
  let out_arg =
    let doc = "Write the rows as JSON (the BENCH_7.json document) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"PATH" ~doc)
  in
  let par out =
    let rows = Ablation_par.measure_all () in
    let ppf = Format.std_formatter in
    Ablation_par.pp_table ppf rows;
    let checks = Ablation_par.checks rows in
    Workload.pp_checks ppf checks;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Ablation_par.json rows));
        Format.fprintf ppf "wrote %s@." path);
    if Workload.all_ok checks then `Ok ()
    else `Error (false, "domain-parallel execution ablation checks failed")
  in
  let doc =
    "measure domain-parallel execution of interference-scheduled phases \
     and strips, gated per row by the sequential-identity oracle"
  in
  Cmd.v (Cmd.info "par" ~doc) Term.(ret (const par $ out_arg))

let tenant_cmd =
  let out_arg =
    let doc = "Write the rows as JSON (the BENCH_8.json document) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "json" ] ~docv:"PATH" ~doc)
  in
  let repeat_arg =
    let doc =
      "Chain replays per tenant session (longer sessions; 1 for a smoke \
       run)."
    in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let tenant out repeat =
    let rows = Ablation_tenant.measure_all ~repeat () in
    let ppf = Format.std_formatter in
    Ablation_tenant.pp_table ppf rows;
    let checks = Ablation_tenant.checks rows in
    Workload.pp_checks ppf checks;
    (match out with
    | None -> ()
    | Some path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Ablation_tenant.json rows));
        Format.fprintf ppf "wrote %s@." path);
    if Workload.all_ok checks then `Ok ()
    else `Error (false, "multi-tenant service ablation checks failed")
  in
  let doc =
    "measure multi-tenant throughput, group-commit fsync amortization and \
     cross-tenant dedup on the shared pack, gated per row by per-tenant \
     restore identity"
  in
  Cmd.v
    (Cmd.info "tenant" ~doc)
    Term.(ret (const tenant $ out_arg $ repeat_arg))

let () =
  let doc =
    "benchmark harness for the incremental-checkpointing reproduction"
  in
  let info = Cmd.info "ickpt_bench" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; list_cmd; micro_cmd; crash_cmd; barrier_cmd; dedup_cmd;
            live_cmd; par_cmd; tenant_cmd ]))
