(* Analyze a mini-C program with the checkpointed analysis engine: parse a
   source file (or generate the built-in image-manipulation workload), run
   side-effect / binding-time / evaluation-time analysis with per-iteration
   checkpoints, report statistics, and optionally persist the checkpoint
   chain for later recovery. *)

open Cmdliner
open Ickpt_analysis

let mode_conv =
  let parse = function
    | "full" -> Ok Engine.Full
    | "incremental" -> Ok Engine.Incremental
    | "specialized" -> Ok Engine.Specialized
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  Arg.conv (parse, Engine.pp_mode)

let file_arg =
  let doc = "Mini-C source file to analyze (default: generated workload)." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let mode_arg =
  let doc = "Checkpointing method: full, incremental or specialized." in
  Arg.(value & opt mode_conv Engine.Incremental & info [ "mode" ] ~doc)

let bta_arg =
  let doc = "Minimum binding-time analysis iterations (paper: 9)." in
  Arg.(value & opt int 9 & info [ "bta-iterations" ] ~doc)

let eta_arg =
  let doc = "Minimum evaluation-time analysis iterations (paper: 3)." in
  Arg.(value & opt int 3 & info [ "eta-iterations" ] ~doc)

let guard_arg =
  let doc = "Validate specialization declarations at every checkpoint." in
  Arg.(value & flag & info [ "guard" ] ~doc)

let chain_arg =
  let doc = "Write the checkpoint chain to this file." in
  Arg.(value & opt (some string) None & info [ "save-chain" ] ~docv:"PATH" ~doc)

let dump_arg =
  let doc = "Print the analyzed program source and exit." in
  Arg.(value & flag & info [ "dump-source" ] ~doc)

let run file mode bta_min eta_min guard chain_path dump =
  let program =
    match file with
    | None -> Minic.Gen.image_program ()
    | Some path -> (
        let ic = open_in_bin path in
        let src =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        try Minic.Parser.parse src with
        | Minic.Parser.Parse_error { line; message } ->
            Printf.eprintf "%s:%d: %s\n" path line message;
            exit 1
        | Minic.Lexer.Lex_error { line; col; message } ->
            Printf.eprintf "%s:%d:%d: %s\n" path line col message;
            exit 1)
  in
  if dump then begin
    print_string (Minic.Pp.to_string program);
    exit 0
  end;
  (match Minic.Check.check program with
  | _ -> ()
  | exception Minic.Check.Check_error msg ->
      Printf.eprintf "check error: %s\n" msg;
      exit 1);
  let report =
    Engine.analyze ~mode ~bta_min ~eta_min ~guard ~measure_traversal:true
      program
  in
  Format.printf "analyzed %d statements, mode %a@." report.Engine.n_stmts
    Engine.pp_mode mode;
  Format.printf "base checkpoint: %d bytes@." report.Engine.base_bytes;
  List.iter
    (fun (p : Engine.phase_report) ->
      Format.printf
        "phase %-4s %2d iterations, analysis %.4f s, checkpoints %.4f s, %d \
         bytes total@."
        p.Engine.phase p.Engine.iterations p.Engine.analysis_seconds
        (Engine.phase_ckp_seconds p)
        (Engine.phase_bytes p))
    report.Engine.phases;
  (match chain_path with
  | None -> ()
  | Some path ->
      Ickpt_core.Storage.write_chain ~path report.Engine.chain;
      Format.printf "checkpoint chain (%d segments) written to %s@."
        (Ickpt_core.Chain.length report.Engine.chain)
        path);
  (* Summarize the analysis results themselves. *)
  let attrs = Engine.attrs report in
  let count pred =
    let n = ref 0 in
    for sid = 0 to report.Engine.n_stmts - 1 do
      if pred sid then incr n
    done;
    !n
  in
  Format.printf "binding times: %d static, %d dynamic@."
    (count (fun s -> Attrs.get_bt attrs s = Attrs.bt_static))
    (count (fun s -> Attrs.get_bt attrs s = Attrs.bt_dynamic));
  Format.printf "evaluation times: %d spec-time, %d run-time@.@."
    (count (fun s -> Attrs.get_et attrs s = Attrs.et_spec_time))
    (count (fun s -> Attrs.get_et attrs s = Attrs.et_run_time));
  Format.printf "%a@." Report.pp (Report.per_function report.Engine.env attrs);
  let dead = Deadcode.dead_statements report.Engine.env in
  if dead <> [] then
    Format.printf
      "dead-store elimination could remove %d top-level pass(es) of main@."
      (List.length dead)

let () =
  let doc = "checkpointed program analysis engine for mini-C" in
  let info = Cmd.info "minic_analyze" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ file_arg $ mode_arg $ bta_arg $ eta_arg $ guard_arg
      $ chain_arg $ dump_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
