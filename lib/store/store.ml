open Ickpt_runtime
open Ickpt_core

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let pack_path path = path ^ ".pack"

let index_path path = path ^ ".idx"

type collision = {
  col_epoch : int;
  col_content_key : int;
  col_stored_key : int;
  col_attempt : int;
}

type t = {
  vfs : Vfs.t;
  root : string;
  schema : Schema.t;
  records_per_chunk : int;
  pack : Pack.t;
  mutable entries : Epoch_index.entry list;  (* oldest first *)
  mutable collided : collision list;  (* newest first; this session only *)
}

let path t = t.root

let schema t = t.schema

(* ------------------------------------------------------------------ *)
(* Open: sweep, truncate, validate.                                    *)

(* The index prefix made of the first [n] entries, as bytes — encoding is
   deterministic, so this is exactly the on-disk prefix to keep when
   validation rejects entry [n]. *)
let entries_byte_length entries n =
  let rec go acc i = function
    | e :: rest when i < n ->
        go (acc + String.length (Epoch_index.encode e)) (i + 1) rest
    | _ -> acc
  in
  go 0 0 entries

(* Longest valid prefix of the loaded entries: epochs contiguous, oldest
   full, every chunk present in the pack, directory entries in range.
   Crash-consistent operation never produces a violation (the pack is
   synced before the entry commits), so rejections are defensive. *)
let valid_prefix pack entries =
  let rec go acc expected = function
    | [] -> List.rev acc
    | (e : Epoch_index.entry) :: rest ->
        let ok =
          (match expected with
          | None -> e.kind = Segment.Full && e.epoch >= 0
          | Some n -> e.epoch = n)
          && List.for_all (fun k -> Pack.mem pack k) e.chunks
          &&
          let chunk_arr = Array.of_list e.chunks in
          List.for_all
            (fun { Epoch_index.d_chunk; d_off; _ } ->
              d_chunk >= 0
              && d_chunk < Array.length chunk_arr
              && d_off >= 0
              && d_off < Pack.chunk_len pack chunk_arr.(d_chunk))
            e.dir
        in
        if ok then go (e :: acc) (Some (e.epoch + 1)) rest else List.rev acc
  in
  go [] None entries

let open_ ?(vfs = Vfs.real) ?(records_per_chunk = Chunk.default_records_per_chunk)
    schema ~path:root =
  if records_per_chunk < 1 then invalid_arg "Store.open_: records_per_chunk";
  let pack_file = pack_path root and index_file = index_path root in
  (* Staged GC temps hold no committed data; a crash before the commit
     rename leaves them behind, and reopen is where they get swept. *)
  List.iter
    (fun p ->
      let tmp = Storage.temp_of ~path:p in
      if vfs.Vfs.exists tmp then vfs.Vfs.remove tmp)
    [ pack_file; index_file ];
  let pack = Pack.open_ ~vfs pack_file in
  let loaded, valid_len = Epoch_index.load vfs index_file in
  let file_len =
    if vfs.Vfs.exists index_file then String.length (vfs.Vfs.read_file index_file)
    else 0
  in
  if valid_len < file_len then vfs.Vfs.truncate index_file ~len:valid_len;
  let entries = valid_prefix pack loaded in
  if List.length entries < List.length loaded then
    vfs.Vfs.truncate index_file
      ~len:(entries_byte_length loaded (List.length entries));
  { vfs; root; schema; records_per_chunk; pack; entries; collided = [] }

(* ------------------------------------------------------------------ *)
(* Lookup helpers.                                                     *)

let epochs t = List.map (fun (e : Epoch_index.entry) -> e.epoch) t.entries

let latest_epoch t =
  match List.rev t.entries with
  | [] -> None
  | e :: _ -> Some e.Epoch_index.epoch

let entry_at t epoch =
  match
    List.find_opt (fun (e : Epoch_index.entry) -> e.epoch = epoch) t.entries
  with
  | Some e -> e
  | None -> error "unknown epoch %d" epoch

let kind_of_epoch t epoch = (entry_at t epoch).kind

let roots_of_epoch t epoch = (entry_at t epoch).roots

(* ------------------------------------------------------------------ *)
(* Appending.                                                          *)

type append_stats = {
  chunks_total : int;
  chunks_new : int;
  chunks_salted : int;
  bytes_logical : int;
  bytes_written : int;
}

let append_segment t (seg : Segment.t) =
  (match t.entries, seg.kind with
  | [], Segment.Incremental ->
      error "incremental segment on an empty store (no full base)"
  | [], Segment.Full ->
      if seg.seq < 0 then error "segment seq %d is negative" seg.seq
  | _ :: _, _ ->
      let latest = Option.get (latest_epoch t) in
      if seg.seq <> latest + 1 then
        error "segment seq %d, expected %d" seg.seq (latest + 1));
  let chunks = Chunk.split ~records_per_chunk:t.records_per_chunk t.schema seg.body in
  (* Dedup: a key hit is only a duplicate if the bytes agree — the 63-bit
     hash makes a collision negligible but not impossible, and a silent one
     would corrupt the epoch. Pack.resolve byte-verifies every hit and, on
     a genuine collision, degrades gracefully to a salted rehash instead of
     refusing the append (a shared pack must not die on one tenant's
     pathological chunk). Collisions are recorded for the caller to
     surface. *)
  let pending : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let resolved =
    List.map (fun (c : Chunk.t) -> (c, Pack.resolve t.pack ~pending c.data)) chunks
  in
  let key_of_resolution = function
    | Pack.Dup k -> k
    | Pack.Fresh { key; _ } -> key
  in
  let fresh =
    List.filter_map
      (fun ((c : Chunk.t), r) ->
        match r with
        | Pack.Dup _ -> None
        | Pack.Fresh { key; _ } -> Some (key, c.data))
      resolved
  in
  let salted =
    List.filter_map
      (fun ((c : Chunk.t), r) ->
        match r with
        | Pack.Fresh { key; attempt } when attempt > 0 ->
            Some
              { col_epoch = seg.seq;
                col_content_key = c.key;
                col_stored_key = key;
                col_attempt = attempt }
        | _ -> None)
      resolved
  in
  t.collided <- List.rev_append salted t.collided;
  let pack_bytes = Pack.append_batch t.pack fresh in
  let dir =
    List.concat
      (List.mapi
         (fun i (c : Chunk.t) ->
           List.map
             (fun (id, off) ->
               { Epoch_index.d_id = id; d_chunk = i; d_off = off })
             c.records)
         chunks)
  in
  let entry =
    { Epoch_index.epoch = seg.seq;
      kind = seg.kind;
      roots = seg.roots;
      chunks = List.map (fun (_, r) -> key_of_resolution r) resolved;
      dir }
  in
  Epoch_index.append t.vfs (index_path t.root) entry;
  t.entries <- t.entries @ [ entry ];
  { chunks_total = List.length chunks;
    chunks_new = List.length fresh;
    chunks_salted = List.length salted;
    bytes_logical = String.length seg.body;
    bytes_written = pack_bytes + String.length (Epoch_index.encode entry) }

let collisions t = List.rev t.collided

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)

let segment_of_epoch t epoch =
  let e = entry_at t epoch in
  let body =
    String.concat "" (List.map (fun k -> Pack.read t.pack k) e.chunks)
  in
  { Segment.kind = e.kind; seq = e.epoch; roots = e.roots; body }

(* The resolved per-object directory at [epoch]: id -> (chunk key, byte
   offset). The fold itself lives in {!Dir} so the multi-tenant service can
   run it over demultiplexed per-tenant entry lists. *)
let dir_at t ~epoch =
  ignore (entry_at t epoch : Epoch_index.entry);
  Dir.fold ~entries:t.entries ~epoch

let record_of_pointer t cache (key, off) =
  let data =
    match Hashtbl.find_opt cache key with
    | Some d -> d
    | None ->
        let d = Pack.read t.pack key in
        Hashtbl.replace cache key d;
        d
  in
  Restore.record_at t.schema data ~pos:off

let restore t ~epoch =
  ignore (entry_at t epoch : Epoch_index.entry);
  Dir.restore (Dir.reader t.pack t.schema) ~entries:t.entries ~epoch

(* ------------------------------------------------------------------ *)
(* Diff.                                                               *)

let diff t a b =
  let da = dir_at t ~epoch:a and db = dir_at t ~epoch:b in
  let cache = Hashtbl.create 64 in
  let record = record_of_pointer t cache in
  let changes = ref [] in
  let add c = changes := c :: !changes in
  Hashtbl.iter
    (fun id ptr ->
      match Hashtbl.find_opt db id with
      | None -> add (Diff.Removed id)
      | Some ptr' when ptr = ptr' ->
          (* Same chunk key and offset: the record bytes are identical by
             content-addressing — no decode needed. This is what makes the
             diff O(changed entries). *)
          ()
      | Some ptr' ->
          let rb = record ptr and ra = record ptr' in
          if rb.Restore.rec_kid <> ra.Restore.rec_kid then
            add
              (Diff.Class_changed
                 { id; before = rb.Restore.rec_kid; after = ra.Restore.rec_kid })
          else begin
            Array.iteri
              (fun slot v ->
                let v' = ra.Restore.rec_ints.(slot) in
                if v <> v' then
                  add (Diff.Int_changed { id; slot; before = v; after = v' }))
              rb.Restore.rec_ints;
            Array.iteri
              (fun slot v ->
                let v' = ra.Restore.rec_child_ids.(slot) in
                if v <> v' then
                  add (Diff.Child_changed { id; slot; before = v; after = v' }))
              rb.Restore.rec_child_ids
          end)
    da;
  Hashtbl.iter
    (fun id _ -> if not (Hashtbl.mem da id) then add (Diff.Added id))
    db;
  let key = function
    | Diff.Added id | Diff.Removed id -> (id, -1)
    | Diff.Class_changed { id; _ } -> (id, -2)
    | Diff.Int_changed { id; slot; _ } -> (id, slot)
    | Diff.Child_changed { id; slot; _ } -> (id, 1000 + slot)
  in
  List.sort (fun x y -> compare (key x) (key y)) !changes

(* ------------------------------------------------------------------ *)
(* Space: refcounts, GC, stats, check.                                 *)

let refcounts t =
  let counts : (int, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace counts k 0) (Pack.keys t.pack);
  List.iter
    (fun (e : Epoch_index.entry) ->
      (* A chunk referenced twice by one epoch still counts that epoch
         once per reference site — refcounts answer "how many references
         keep this chunk alive". *)
      List.iter
        (fun k ->
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        e.chunks)
    t.entries;
  List.map (fun k -> (k, Hashtbl.find counts k)) (Pack.keys t.pack)

type retention = Keep_all | Keep_last of int | Keep_from of int

type gc_stats = {
  dropped_epochs : int;
  dropped_chunks : int;
  reclaimed_bytes : int;
}

let no_gc = { dropped_epochs = 0; dropped_chunks = 0; reclaimed_bytes = 0 }

let gc t ~retain =
  match t.entries with
  | [] -> no_gc
  | oldest :: _ ->
      let latest = Option.get (latest_epoch t) in
      let floor =
        match retain with
        | Keep_all -> oldest.Epoch_index.epoch
        | Keep_last n ->
            if n < 1 then error "gc: Keep_last %d (need >= 1)" n;
            max oldest.Epoch_index.epoch (latest - n + 1)
        | Keep_from e -> max oldest.Epoch_index.epoch (min e latest)
      in
      (* Widen down to the nearest full epoch so every retained epoch keeps
         a restorable base. *)
      let base =
        List.fold_left
          (fun acc (e : Epoch_index.entry) ->
            if e.kind = Segment.Full && e.epoch <= floor then e.epoch else acc)
          oldest.Epoch_index.epoch t.entries
      in
      let kept =
        List.filter (fun (e : Epoch_index.entry) -> e.epoch >= base) t.entries
      in
      let kept_keys : (int, unit) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun (e : Epoch_index.entry) ->
          List.iter (fun k -> Hashtbl.replace kept_keys k ()) e.chunks)
        kept;
      let dropped_chunks =
        List.length (List.filter (fun k -> not (Hashtbl.mem kept_keys k)) (Pack.keys t.pack))
      in
      let dropped_epochs = List.length t.entries - List.length kept in
      if dropped_epochs = 0 && dropped_chunks = 0 then no_gc
      else begin
        let old_bytes = Pack.physical_bytes t.pack in
        let pack_file = pack_path t.root and index_file = index_path t.root in
        let pack_tmp = Pack.stage_rewrite t.pack ~keep:(Hashtbl.mem kept_keys) in
        let idx_tmp = Epoch_index.write_staged t.vfs ~path:index_file kept in
        (* Commit order matters: the index first. Until the pack rename the
           pack is the OLD one — a superset of the new — so whichever index
           a crash leaves current, its chunks resolve. Renaming the pack
           first would let a crash strand the old index pointing at dropped
           chunks. *)
        t.vfs.Vfs.rename ~src:idx_tmp ~dst:index_file;
        t.vfs.Vfs.rename ~src:pack_tmp ~dst:pack_file;
        Pack.reload t.pack;
        t.entries <- kept;
        { dropped_epochs;
          dropped_chunks;
          reclaimed_bytes = old_bytes - Pack.physical_bytes t.pack }
      end

type stats = {
  n_epochs : int;
  n_chunks : int;
  logical_bytes : int;
  physical_bytes : int;
  dedup_ratio : float;
}

let stats t =
  let logical_bytes =
    List.fold_left
      (fun acc (e : Epoch_index.entry) ->
        List.fold_left (fun acc k -> acc + Pack.chunk_len t.pack k) acc e.chunks)
      0 t.entries
  in
  let index_bytes =
    List.fold_left
      (fun acc e -> acc + String.length (Epoch_index.encode e))
      0 t.entries
  in
  let pack_bytes = Pack.physical_bytes t.pack in
  { n_epochs = List.length t.entries;
    n_chunks = Pack.length t.pack;
    logical_bytes;
    physical_bytes = pack_bytes + index_bytes;
    dedup_ratio =
      (if pack_bytes = 0 then 1.0
       else float_of_int logical_bytes /. float_of_int pack_bytes) }

let salted_chunks t =
  List.filter_map
    (fun k ->
      let data = Pack.read t.pack k in
      if Chunk.key_of data = k then None
      else
        let rec find attempt =
          if attempt > Chunk.max_salt_attempts then None
          else if Chunk.salted_key data ~attempt = k then Some (k, attempt)
          else find (attempt + 1)
        in
        find 1)
    (Pack.keys t.pack)

let check t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  (match t.entries with
  | [] -> ()
  | first :: _ ->
      if first.kind <> Segment.Full then
        err "oldest epoch %d is not full" first.Epoch_index.epoch);
  let expected = ref None in
  List.iter
    (fun (e : Epoch_index.entry) ->
      (match !expected with
      | Some n when e.epoch <> n -> err "epoch %d follows %d" e.epoch (n - 1)
      | _ -> ());
      expected := Some (e.epoch + 1);
      let chunk_arr = Array.of_list e.chunks in
      Array.iteri
        (fun i k ->
          if not (Pack.mem t.pack k) then
            err "epoch %d references missing chunk %s" e.epoch
              (Ickpt_stream.Hash64.to_hex k)
          else if not (Chunk.key_matches k (Pack.read t.pack k)) then
            err "chunk %s content does not match its key"
              (Ickpt_stream.Hash64.to_hex k)
          else ignore i)
        chunk_arr;
      List.iter
        (fun { Epoch_index.d_id; d_chunk; d_off } ->
          if d_chunk < 0 || d_chunk >= Array.length chunk_arr then
            err "epoch %d: record %d points at chunk index %d/%d" e.epoch d_id
              d_chunk (Array.length chunk_arr)
          else
            let k = chunk_arr.(d_chunk) in
            if
              Pack.mem t.pack k
              && (d_off < 0 || d_off >= Pack.chunk_len t.pack k)
            then err "epoch %d: record %d offset %d out of range" e.epoch d_id d_off)
        e.dir)
    t.entries;
  List.iter
    (fun (k, n) ->
      if n < 0 then
        err "chunk %s has negative refcount" (Ickpt_stream.Hash64.to_hex k))
    (refcounts t);
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Manager integration.                                                *)

let resume_suffix t =
  match latest_epoch t with
  | None -> []
  | Some latest ->
      let base =
        List.fold_left
          (fun acc (e : Epoch_index.entry) ->
            if e.kind = Segment.Full then e.epoch else acc)
          latest t.entries
      in
      List.filter_map
        (fun (e : Epoch_index.entry) ->
          if e.epoch >= base then Some (segment_of_epoch t e.epoch) else None)
        t.entries

let manager_sink t =
  { Manager.sink_append = (fun seg -> ignore (append_segment t seg));
    sink_resume = (fun () -> resume_suffix t);
    sink_compact = Some (fun () -> ignore (gc t ~retain:(Keep_last 1))) }
