(** Resolving per-object directories and materializing heaps from a pack
    plus a list of epoch entries — the O(live-records) read path shared by
    {!Store} (one tenant, one index file) and [Ickpt_service.Service]
    (many tenants' entry lists demultiplexed from per-shard files). *)

open Ickpt_runtime
open Ickpt_core

exception Error of string
(** Raised on an epoch not present in the given entries. *)

val fold :
  entries:Epoch_index.entry list -> epoch:int -> (int, int * int) Hashtbl.t
(** The resolved per-object directory at [epoch]: record id -> (chunk key,
    byte offset). Folds directory deltas newest-wins from the nearest full
    epoch at or before [epoch]. [entries] must be one chain's entries,
    oldest first. *)

type reader
(** A pack + schema with a chunk cache: each chunk is fetched once however
    many records it resolves. *)

val reader : Pack.t -> Schema.t -> reader

val record : reader -> int * int -> Restore.record
(** Decode the record at a directory pointer. *)

val restore :
  reader -> entries:Epoch_index.entry list -> epoch:int -> Heap.t * Model.obj list
(** Materialize the heap committed at [epoch]: fold the directory, decode
    exactly one record per live object. Roots are the entry's. *)
