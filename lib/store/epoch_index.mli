(** The persistent epoch index: one append-only file of checksummed entries,
    one per checkpoint epoch. An entry records everything needed to
    materialize or diff its epoch without replaying the segment chain:

    - the ordered list of chunk keys whose bodies concatenate to the
      epoch's segment body;
    - a {e directory delta}: for every object record written in this epoch,
      the record id and its position ([chunk index in this entry] ×
      [byte offset within the chunk]). Folding directory deltas
      newest-wins from the nearest full epoch yields the per-object
      directory of any epoch.

    Wire layout of one entry:
    {v
    magic   fixed32  "ICKX"
    version byte
    epoch   varint
    kind    byte     0 = full, 1 = incremental (as Segment)
    nroots  varint   then that many root-id varints
    nchunks varint   then that many chunk-key varints
    ndir    varint   then ndir triples (id, chunk, off) of varints
    crc     fixed32  CRC-32 of everything above
    v}

    Appending an entry (write + sync) is the {e commit point} of an epoch:
    chunks are appended to the pack first, so a crash between the two
    leaves orphaned chunks (reclaimed by the next GC) but never a
    committed epoch with missing data. A torn tail is truncated on load. *)

open Ickpt_core

type dir_entry = {
  d_id : int;  (** object record id *)
  d_chunk : int;  (** index into the entry's [chunks] list *)
  d_off : int;  (** byte offset of the record within that chunk *)
}

type entry = {
  epoch : int;
  kind : Segment.kind;
  roots : int list;
  chunks : int list;  (** chunk keys, in body order *)
  dir : dir_entry list;  (** directory delta, in record write order *)
}

val encode : entry -> string

val load : Vfs.t -> string -> entry list * int
(** Every intact entry (file order) and the byte offset of the first
    undecodable one — the safe truncation point. A missing file is the
    empty index. Performs no writes; the caller decides whether to
    truncate. *)

val append : Vfs.t -> string -> entry -> unit
(** Append one entry and sync — the epoch's commit point. *)

val write_staged : Vfs.t -> path:string -> entry list -> string
(** Write a fresh index holding exactly [entries] to the staging path
    ({!Ickpt_core.Storage.temp_of}[ ~path]), sync it, and return that
    path. Used by GC; the caller commits by renaming over [path]. *)

(** {1 Multiplexed (per-shard) index}

    The multi-tenant service stores many tenants' epoch entries in one
    per-shard file, interleaved in commit order. The wire format is the
    plain entry with magic ["ICKM"] and a tenant-id varint between the
    version byte and the payload; per-tenant commit-point ordering is the
    file order restricted to that tenant. A batch append is {e one} write
    and {e one} sync — the group-commit point shared by every entry in the
    batch — so a torn tail cuts whole entries off the end and every
    tenant's surviving entries remain a committed prefix (the pack is
    synced before the index batch, as for the plain store). *)

type mux_entry = { m_tenant : int; m_entry : entry }

val encode_mux : mux_entry -> string

val load_mux : Vfs.t -> string -> mux_entry list * int
(** Every intact multiplexed entry (file order) and the byte offset of the
    first undecodable one. A missing file is the empty index. Performs no
    writes. *)

val append_mux_batch : Vfs.t -> string -> mux_entry list -> unit
(** Append the batch in one writer session and one sync — the group-commit
    point of every epoch in it. The empty batch performs no I/O. *)
