open Ickpt_core

type t = {
  key : int;
  data : string;
  records : (int * int) list;
}

let default_records_per_chunk = 16

let key_of s = Ickpt_stream.Hash64.string s

let max_salt_attempts = 8

let salted_key s ~attempt =
  if attempt < 1 || attempt > max_salt_attempts then
    invalid_arg "Chunk.salted_key: attempt out of range";
  Ickpt_stream.Hash64.string (Printf.sprintf "ickpt-salt-%d:%s" attempt s)

let key_matches key data =
  key_of data = key
  ||
  let rec go attempt =
    attempt <= max_salt_attempts
    && (salted_key data ~attempt = key || go (attempt + 1))
  in
  go 1

let split ?(records_per_chunk = default_records_per_chunk) schema body =
  if records_per_chunk < 1 then invalid_arg "Chunk.split: records_per_chunk";
  let frames = Restore.scan_body schema body in
  let rec chunks frames acc =
    match frames with
    | [] -> List.rev acc
    | (_, start, _) :: _ ->
        let rec take n stop recs = function
          | (id, off, len) :: rest when n < records_per_chunk ->
              take (n + 1) (off + len) ((id, off - start) :: recs) rest
          | rest -> (stop, List.rev recs, rest)
        in
        let stop, records, rest = take 0 start [] frames in
        let data = String.sub body start (stop - start) in
        chunks rest ({ key = key_of data; data; records } :: acc)
  in
  chunks frames []
