(** The chunk pack: one append-only file holding every stored chunk, each
    in a self-describing checksummed frame (same framing discipline as
    {!Ickpt_core.Segment}):

    {v
    magic   fixed32  "ICPK"
    version byte
    key     varint   content key ({!Ickpt_stream.Hash64})
    len     varint   chunk length in bytes
    body    bytes
    crc     fixed32  CRC-32 of everything above
    v}

    The whole pack is mirrored in memory (packs are bounded by the store's
    retention policy, and the repo's storage layer reads whole files
    anyway), so chunk reads are substring extractions. A torn or corrupt
    tail — the normal outcome of a crash mid-append — is truncated away on
    open; anything before it is intact by CRC.

    All file access goes through {!Ickpt_core.Vfs}. *)

type t

val open_ : ?vfs:Ickpt_core.Vfs.t -> string -> t
(** Open (creating if missing) the pack at the given path, truncating any
    torn tail. *)

val reload : t -> unit
(** Re-read the file and rebuild the in-memory mirror — used after a GC
    rewrite commits. *)

val path : t -> string

val mem : t -> int -> bool

val read : t -> int -> string
(** Chunk body by key. @raise Not_found for an unknown key. *)

val chunk_len : t -> int -> int
(** Body length by key. @raise Not_found for an unknown key. *)

val keys : t -> int list
(** Every stored key, in append order. *)

val length : t -> int
(** Number of stored chunks. *)

val physical_bytes : t -> int
(** Bytes of intact frames on disk (frame overhead included). *)

val append_batch : t -> (int * string) list -> int
(** Append the given [(key, body)] chunks in one writer session and sync;
    they are durable when this returns. Keys already present are a
    programming error ({!Invalid_argument}). Returns the number of bytes
    appended. The empty batch performs no I/O. *)

type resolution =
  | Dup of int  (** byte-identical chunk already stored (or pending) here *)
  | Fresh of { key : int; attempt : int }
      (** not stored yet; store it under [key]. [attempt = 0] is the plain
          content key; [attempt > 0] means the content key (and any earlier
          salted keys) collided with {e different} bytes and [key] is the
          [attempt]-th {!Chunk.salted_key} — the graceful-degradation path a
          shared multi-tenant pack takes instead of refusing the append. *)

val resolve : t -> pending:(int, string) Hashtbl.t -> string -> resolution
(** Resolve chunk bytes to the key they live (or should live) under,
    byte-verifying every key hit and climbing the salt ladder past
    collisions. [pending] carries fresh chunks of the same batch that are
    not in the pack yet; a [Fresh] result is added to it. Does not write.
    @raise Failure if all [1 + ]{!Chunk.max_salt_attempts} keys collide
    (cryptographically unreachable). *)

val stage_rewrite : t -> keep:(int -> bool) -> string
(** Write a pack containing only the kept chunks (in their original order)
    to the staging path ({!Ickpt_core.Storage.temp_of}), sync it, and
    return that path. The live pack and the in-memory mirror are not
    touched; the caller commits by renaming the staged file over {!path}
    and calling {!reload}. *)
