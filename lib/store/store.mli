(** The content-addressed checkpoint store: a {!Pack} of deduplicated
    chunks plus an {!Epoch_index}, opened as one unit.

    A store at [path] owns two files, [path ^ ".pack"] and [path ^ ".idx"].
    Appending a segment (an {e epoch}) splits its body into record-aligned
    chunks ({!Chunk}), writes only the chunks not already stored, then
    commits the epoch by appending its index entry:

    + pack: append new chunks, sync;
    + index: append the entry, sync  —  the {e commit point}.

    A crash between the two leaves orphaned chunks (space, not
    correctness — the next {!gc} reclaims them); a crash inside either
    append leaves a torn tail that reopening truncates. So after a crash
    at {e any} byte of {e any} operation the store reopens to a committed
    epoch prefix — the extension of invariant I7 exercised by
    [Ickpt_faultsim.Store_sim].

    {!gc} rewrites both files through staged temps and commits by renaming
    the {e index first}: every chunk referenced by the old index is also in
    the old pack (a superset of the new one), so whichever index is current
    after a crash, its chunks resolve.

    Chunk keys are 63-bit content hashes; a key hit during dedup is
    verified byte-for-byte against the stored chunk, so a hash collision
    never silently corrupts an epoch — the chunk is stored under a salted
    rehash ({!Chunk.salted_key}) instead, the append succeeds, and the
    event is recorded ({!collisions}) for the caller to surface (the CLI
    reports it as a finding in the JSON envelope). *)

open Ickpt_runtime
open Ickpt_core

type t

exception Error of string
(** Semantic store failure: out-of-order epoch, baseless incremental,
    unknown epoch, hash collision. Frame-level corruption is {e not} an
    exception — it is truncated away on open. *)

val pack_path : string -> string
val index_path : string -> string

val open_ :
  ?vfs:Vfs.t -> ?records_per_chunk:int -> Schema.t -> path:string -> t
(** Open (creating if missing) the store rooted at [path]. Stale staged
    temps from a crashed {!gc} are swept, torn file tails truncated, and
    the index validated against the pack — entries from the first
    inconsistency onwards are dropped (defensively; crash-consistent use
    never produces them). *)

val path : t -> string
val schema : t -> Schema.t

(** {1 Appending} *)

type append_stats = {
  chunks_total : int;  (** chunks the segment split into *)
  chunks_new : int;  (** how many were not already stored *)
  chunks_salted : int;  (** of the new ones, how many hit a hash collision
                            and were stored under a salted rehash *)
  bytes_logical : int;  (** segment body bytes *)
  bytes_written : int;  (** physical bytes appended (pack + index) *)
}

val append_segment : t -> Segment.t -> append_stats
(** Store one segment as the next epoch. Its [seq] must be [latest + 1] —
    or, on an empty store, any non-negative value provided the segment is
    full. Durable (both files synced) when this returns. A hash collision
    does not fail the append: the chunk is stored under a salted rehash
    and the event recorded ({!collisions}).
    @raise Error on kind/sequence violations. *)

type collision = {
  col_epoch : int;  (** epoch whose append hit the collision *)
  col_content_key : int;  (** the chunk's true content key, already taken *)
  col_stored_key : int;  (** the salted key the chunk was stored under *)
  col_attempt : int;  (** which rung of the salt ladder (>= 1) *)
}

val collisions : t -> collision list
(** Collisions hit by appends {e this session}, oldest first. (Collisions
    survive on disk as salted chunks — see {!salted_chunks} — but the
    pairing with the epoch that hit them is session-local.) *)

val salted_chunks : t -> (int * int) list
(** [(stored key, salt attempt)] for every chunk in the pack stored under
    a salted rehash — detectable from bytes alone, so it survives reopen. *)

(** {1 Reading} *)

val epochs : t -> int list
(** Committed epoch numbers, ascending (contiguous). *)

val latest_epoch : t -> int option
val kind_of_epoch : t -> int -> Segment.kind
val roots_of_epoch : t -> int -> int list

val entry_at : t -> int -> Epoch_index.entry
(** The raw index entry committed at [epoch] (kind, roots, chunk keys,
    directory delta). @raise Error on an unknown epoch. *)

val segment_of_epoch : t -> int -> Segment.t
(** Reassemble the exact segment committed at [epoch] (chunks concatenate
    to the original body). @raise Error on an unknown epoch. *)

val restore : t -> epoch:int -> Heap.t * Model.obj list
(** Materialize the heap as of [epoch] in O(live records at that epoch):
    fold the per-object directories from the nearest full epoch at or
    before [epoch] (never the whole chain), then decode exactly one record
    per live object, reading each needed chunk once.
    @raise Error on an unknown epoch;
    @raise Restore.Error on semantic corruption. *)

val diff : t -> int -> int -> Diff.change list
(** [diff t a b] — the changes from epoch [a] to epoch [b], computed in
    O(changed directory entries): records whose directory pointers
    (chunk key, offset) agree are equal by content-addressing and are
    never decoded. Output order and contents match {!Diff.segments}. *)

(** {1 Space} *)

type retention =
  | Keep_all
  | Keep_last of int  (** keep the newest [n] epochs *)
  | Keep_from of int  (** keep epochs [>= e] *)

type gc_stats = {
  dropped_epochs : int;
  dropped_chunks : int;
  reclaimed_bytes : int;  (** physical pack bytes reclaimed *)
}

val gc : t -> retain:retention -> gc_stats
(** Drop epochs outside the retention window and every chunk no retained
    epoch references. The floor is widened down to the nearest full epoch
    so every retained epoch stays restorable. Crash-safe (staged temps,
    index renamed before pack). *)

val refcounts : t -> (int * int) list
(** [(chunk key, number of referencing epochs)], every stored chunk
    included — orphans (from a crash between pack and index append) have
    count 0. *)

type stats = {
  n_epochs : int;
  n_chunks : int;
  logical_bytes : int;  (** sum of segment body sizes over all epochs *)
  physical_bytes : int;  (** pack + index file bytes *)
  dedup_ratio : float;  (** logical over pack bytes; 1.0 when empty *)
}

val stats : t -> stats

val check : t -> string list
(** Integrity check; [[]] means consistent. Verifies epoch contiguity,
    oldest-epoch-is-full, every referenced chunk present with matching
    content hash, directory entries in range, and refcount consistency. *)

(** {1 Manager integration} *)

val manager_sink : t -> Manager.external_sink
(** Plug the store behind {!Manager.create}[ ?sink]: appends become
    epochs, resume replays the suffix from the newest full epoch, and
    [Manager.compact_now] maps to {!gc}[ ~retain:(Keep_last 1)]. *)
