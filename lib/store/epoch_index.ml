open Ickpt_core
open Ickpt_stream

let magic = 0x584b4349 (* "ICKX" read as LE bytes; value is arbitrary *)

let version = 1

type dir_entry = { d_id : int; d_chunk : int; d_off : int }

type entry = {
  epoch : int;
  kind : Segment.kind;
  roots : int list;
  chunks : int list;
  dir : dir_entry list;
}

let kind_byte = function Segment.Full -> 0 | Segment.Incremental -> 1

(* The entry payload (everything between the header and the crc) is shared
   between the plain per-store wire format and the multiplexed per-shard
   one — only the header differs (the mux adds a tenant id). *)
let write_payload d e =
  Out_stream.write_int d e.epoch;
  Out_stream.write_byte d (kind_byte e.kind);
  Out_stream.write_int d (List.length e.roots);
  List.iter (Out_stream.write_int d) e.roots;
  Out_stream.write_int d (List.length e.chunks);
  List.iter (Out_stream.write_int d) e.chunks;
  Out_stream.write_int d (List.length e.dir);
  List.iter
    (fun { d_id; d_chunk; d_off } ->
      Out_stream.write_int d d_id;
      Out_stream.write_int d d_chunk;
      Out_stream.write_int d d_off)
    e.dir

let read_list inp read =
  let n = In_stream.read_int inp in
  if n < 0 then raise (In_stream.Corrupt "negative list length in index entry");
  List.init n (fun _ -> read inp)

let read_payload inp =
  let epoch = In_stream.read_int inp in
  let kind =
    match In_stream.read_byte inp with
    | 0 -> Segment.Full
    | 1 -> Segment.Incremental
    | k -> raise (In_stream.Corrupt (Printf.sprintf "bad entry kind %d" k))
  in
  let roots = read_list inp In_stream.read_int in
  let chunks = read_list inp In_stream.read_int in
  let dir =
    read_list inp (fun inp ->
        let d_id = In_stream.read_int inp in
        let d_chunk = In_stream.read_int inp in
        let d_off = In_stream.read_int inp in
        { d_id; d_chunk; d_off })
  in
  { epoch; kind; roots; chunks; dir }

let encode e =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d magic;
  Out_stream.write_byte d version;
  write_payload d e;
  let crc = Crc32.string (Out_stream.contents d) in
  Out_stream.write_fixed32 d crc;
  Out_stream.contents d

let decode s ~pos =
  let inp = In_stream.of_string_at s ~pos in
  let m = In_stream.read_fixed32 inp in
  if m <> magic then
    raise (In_stream.Corrupt (Printf.sprintf "bad index magic %#x at %d" m pos));
  let v = In_stream.read_byte inp in
  if v <> version then
    raise (In_stream.Corrupt (Printf.sprintf "unsupported index version %d" v));
  let e = read_payload inp in
  let body_end = In_stream.pos inp in
  let crc = In_stream.read_fixed32 inp in
  if crc <> Crc32.sub s ~pos ~len:(body_end - pos) then
    raise (In_stream.Corrupt (Printf.sprintf "index crc mismatch at %d" pos));
  (e, In_stream.pos inp)

let load vfs path =
  let raw = if vfs.Vfs.exists path then vfs.Vfs.read_file path else "" in
  let len = String.length raw in
  let rec go acc pos =
    if pos >= len then (List.rev acc, pos)
    else
      match decode raw ~pos with
      | e, next -> go (e :: acc) next
      | exception In_stream.Corrupt _ -> (List.rev acc, pos)
      | exception Invalid_argument _ -> (List.rev acc, pos)
  in
  go [] 0

let append vfs path e =
  let w = vfs.Vfs.open_append path in
  (try
     w.Vfs.write (encode e);
     w.Vfs.sync ()
   with exn ->
     w.Vfs.close ();
     raise exn);
  w.Vfs.close ()

let write_staged vfs ~path entries =
  let tmp = Storage.temp_of ~path in
  let w = vfs.Vfs.open_trunc tmp in
  (try
     List.iter (fun e -> w.Vfs.write (encode e)) entries;
     w.Vfs.sync ()
   with exn ->
     w.Vfs.close ();
     raise exn);
  w.Vfs.close ();
  tmp

(* ------------------------------------------------------------------ *)
(* Multiplexed (per-shard) index: many tenants' entries interleaved in
   one file, each tagged with its tenant id.                            *)

let mux_magic = 0x4d4b4349 (* "ICKM" read as LE bytes; value is arbitrary *)

type mux_entry = { m_tenant : int; m_entry : entry }

let encode_mux m =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d mux_magic;
  Out_stream.write_byte d version;
  Out_stream.write_int d m.m_tenant;
  write_payload d m.m_entry;
  let crc = Crc32.string (Out_stream.contents d) in
  Out_stream.write_fixed32 d crc;
  Out_stream.contents d

let decode_mux s ~pos =
  let inp = In_stream.of_string_at s ~pos in
  let m = In_stream.read_fixed32 inp in
  if m <> mux_magic then
    raise
      (In_stream.Corrupt (Printf.sprintf "bad mux index magic %#x at %d" m pos));
  let v = In_stream.read_byte inp in
  if v <> version then
    raise (In_stream.Corrupt (Printf.sprintf "unsupported index version %d" v));
  let m_tenant = In_stream.read_int inp in
  let e = read_payload inp in
  let body_end = In_stream.pos inp in
  let crc = In_stream.read_fixed32 inp in
  if crc <> Crc32.sub s ~pos ~len:(body_end - pos) then
    raise (In_stream.Corrupt (Printf.sprintf "mux index crc mismatch at %d" pos));
  ({ m_tenant; m_entry = e }, In_stream.pos inp)

let load_mux vfs path =
  let raw = if vfs.Vfs.exists path then vfs.Vfs.read_file path else "" in
  let len = String.length raw in
  let rec go acc pos =
    if pos >= len then (List.rev acc, pos)
    else
      match decode_mux raw ~pos with
      | m, next -> go (m :: acc) next
      | exception In_stream.Corrupt _ -> (List.rev acc, pos)
      | exception Invalid_argument _ -> (List.rev acc, pos)
  in
  go [] 0

let append_mux_batch vfs path ms =
  match ms with
  | [] -> ()
  | _ ->
      let buf = Buffer.create 4096 in
      List.iter (fun m -> Buffer.add_string buf (encode_mux m)) ms;
      let w = vfs.Vfs.open_append path in
      (try
         w.Vfs.write (Buffer.contents buf);
         w.Vfs.sync ()
       with exn ->
         w.Vfs.close ();
         raise exn);
      w.Vfs.close ()
