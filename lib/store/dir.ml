open Ickpt_runtime
open Ickpt_core

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let entry_at entries epoch =
  match
    List.find_opt (fun (e : Epoch_index.entry) -> e.epoch = epoch) entries
  with
  | Some e -> e
  | None -> error "unknown epoch %d" epoch

let fold ~entries ~epoch =
  let e = entry_at entries epoch in
  let upto =
    List.filter (fun (x : Epoch_index.entry) -> x.epoch <= epoch) entries
  in
  (* A full epoch's delta is a complete directory by construction, so fold
     newest-wins from the nearest full at or before [epoch] — nothing older
     matters. *)
  let base =
    List.fold_left
      (fun acc (x : Epoch_index.entry) ->
        if x.kind = Segment.Full then x.epoch else acc)
      e.epoch upto
  in
  let dir : (int, int * int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (x : Epoch_index.entry) ->
      if x.epoch >= base then begin
        let chunk_arr = Array.of_list x.chunks in
        List.iter
          (fun { Epoch_index.d_id; d_chunk; d_off } ->
            Hashtbl.replace dir d_id (chunk_arr.(d_chunk), d_off))
          x.dir
      end)
    upto;
  dir

type reader = {
  pack : Pack.t;
  schema : Schema.t;
  cache : (int, string) Hashtbl.t;
}

let reader pack schema = { pack; schema; cache = Hashtbl.create 64 }

let record r (key, off) =
  let data =
    match Hashtbl.find_opt r.cache key with
    | Some d -> d
    | None ->
        let d = Pack.read r.pack key in
        Hashtbl.replace r.cache key d;
        d
  in
  Restore.record_at r.schema data ~pos:off

let restore r ~entries ~epoch =
  let e = entry_at entries epoch in
  let dir = fold ~entries ~epoch in
  let table = Restore.empty_table () in
  Hashtbl.iter (fun _id ptr -> Restore.add_record table (record r ptr)) dir;
  Restore.materialize r.schema table ~roots:e.roots
