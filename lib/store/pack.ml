open Ickpt_core
open Ickpt_stream

let magic = 0x4b504349 (* "ICPK" read as LE bytes; value is arbitrary *)

let version = 1

type t = {
  vfs : Vfs.t;
  file : string;
  mutable data : string;  (* intact prefix of the file *)
  tbl : (int, int * int) Hashtbl.t;  (* key -> (body offset, body len) *)
  mutable order : int list;  (* keys, reverse append order *)
}

let encode_frame key body =
  let d = Out_stream.create ~initial_size:(String.length body + 32) () in
  Out_stream.write_fixed32 d magic;
  Out_stream.write_byte d version;
  Out_stream.write_int d key;
  Out_stream.write_string d body;
  let crc = Crc32.string (Out_stream.contents d) in
  Out_stream.write_fixed32 d crc;
  Out_stream.contents d

(* Decode one frame at [pos]; returns (key, body offset, body len, end pos).
   Raises In_stream.Corrupt on anything short of an intact frame. *)
let decode_frame s ~pos =
  let inp = In_stream.of_string_at s ~pos in
  let m = In_stream.read_fixed32 inp in
  if m <> magic then
    raise (In_stream.Corrupt (Printf.sprintf "bad pack magic %#x at %d" m pos));
  let v = In_stream.read_byte inp in
  if v <> version then
    raise (In_stream.Corrupt (Printf.sprintf "unsupported pack version %d" v));
  let key = In_stream.read_int inp in
  let body = In_stream.read_string inp in
  let body_end = In_stream.pos inp in
  let crc = In_stream.read_fixed32 inp in
  if crc <> Crc32.sub s ~pos ~len:(body_end - pos) then
    raise (In_stream.Corrupt (Printf.sprintf "pack crc mismatch at %d" pos));
  (key, body_end - String.length body, String.length body, In_stream.pos inp)

let load t =
  Hashtbl.reset t.tbl;
  t.order <- [];
  let raw = if t.vfs.Vfs.exists t.file then t.vfs.Vfs.read_file t.file else "" in
  let len = String.length raw in
  let rec go pos =
    if pos >= len then pos
    else
      match decode_frame raw ~pos with
      | key, off, blen, next ->
          if not (Hashtbl.mem t.tbl key) then begin
            Hashtbl.replace t.tbl key (off, blen);
            t.order <- key :: t.order
          end;
          go next
      | exception In_stream.Corrupt _ -> pos
      | exception Invalid_argument _ -> pos
  in
  let valid = go 0 in
  (* Cut a torn tail off before the next append, exactly as Storage does
     for the segment log: garbage after the intact prefix would make every
     later frame unreachable. *)
  if valid < len then t.vfs.Vfs.truncate t.file ~len:valid;
  t.data <- (if valid = len then raw else String.sub raw 0 valid)

let open_ ?(vfs = Vfs.real) file =
  let t = { vfs; file; data = ""; tbl = Hashtbl.create 256; order = [] } in
  load t;
  t

let reload = load

let path t = t.file

let mem t key = Hashtbl.mem t.tbl key

let read t key =
  let off, len = Hashtbl.find t.tbl key in
  String.sub t.data off len

let chunk_len t key = snd (Hashtbl.find t.tbl key)

let keys t = List.rev t.order

let length t = Hashtbl.length t.tbl

let physical_bytes t = String.length t.data

let append_batch t batch =
  match batch with
  | [] -> 0
  | _ ->
      List.iter
        (fun (key, _) ->
          if Hashtbl.mem t.tbl key then
            invalid_arg "Pack.append_batch: duplicate key")
        batch;
      let buf = Buffer.create 4096 in
      List.iter (fun (key, body) -> Buffer.add_string buf (encode_frame key body))
        batch;
      let frames = Buffer.contents buf in
      let w = t.vfs.Vfs.open_append t.file in
      (try
         w.Vfs.write frames;
         w.Vfs.sync ()
       with e ->
         w.Vfs.close ();
         raise e);
      w.Vfs.close ();
      (* Mirror the append in memory. *)
      let base = String.length t.data in
      t.data <- t.data ^ frames;
      let pos = ref base in
      List.iter
        (fun (key, _) ->
          let k, off, blen, next = decode_frame t.data ~pos:!pos in
          assert (k = key);
          Hashtbl.replace t.tbl key (off, blen);
          t.order <- key :: t.order;
          pos := next)
        batch;
      String.length frames

type resolution =
  | Dup of int
  | Fresh of { key : int; attempt : int }

(* Walk the salt ladder: the content key first, then salted rehashes. A key
   hit only counts as a duplicate if the bytes agree — otherwise it is a
   collision and the next rung is tried. [pending] holds same-batch fresh
   chunks not yet in the pack; a Fresh result is recorded there so the rest
   of the batch dedups (and collides) against it too. *)
let resolve t ~pending data =
  let rec go attempt =
    if attempt > Chunk.max_salt_attempts then
      failwith "Pack.resolve: salted rehash attempts exhausted"
    else
      let key =
        if attempt = 0 then Chunk.key_of data
        else Chunk.salted_key data ~attempt
      in
      let stored =
        if Hashtbl.mem t.tbl key then Some (read t key)
        else Hashtbl.find_opt pending key
      in
      match stored with
      | Some existing ->
          if String.equal existing data then Dup key else go (attempt + 1)
      | None ->
          Hashtbl.replace pending key data;
          Fresh { key; attempt }
  in
  go 0

let stage_rewrite t ~keep =
  let tmp = Storage.temp_of ~path:t.file in
  let w = t.vfs.Vfs.open_trunc tmp in
  (try
     List.iter
       (fun key -> if keep key then w.Vfs.write (encode_frame key (read t key)))
       (keys t);
     w.Vfs.sync ()
   with e ->
     w.Vfs.close ();
     raise e);
  w.Vfs.close ();
  tmp
