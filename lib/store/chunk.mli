(** Splitting segment bodies into content-addressed chunks.

    A chunk is a run of consecutive {e whole} object records from one
    segment body — boundaries always fall on record boundaries, never
    inside one. Boundaries are placed every [records_per_chunk] records
    (counted from the start of the body), so two bodies that share a run of
    identical records at the same record index produce byte-identical
    chunks there even when earlier records changed length (varints make
    byte-offset-based chunking useless for dedup; record-index-based
    chunking is stable).

    The chunk key is the {!Ickpt_stream.Hash64} of the chunk bytes — equal
    bytes always give equal keys, which is what the store dedups on. *)

type t = {
  key : int;  (** {!Ickpt_stream.Hash64.string} of [data] *)
  data : string;  (** the chunk bytes: whole records, concatenated *)
  records : (int * int) list;
      (** [(rec_id, offset of the record within data)], in write order *)
}

val default_records_per_chunk : int
(** 16 — small enough that a localized mutation dirties one or two chunks,
    large enough that per-chunk framing overhead stays a few percent. *)

val key_of : string -> int
(** The content key of raw chunk bytes (= {!Ickpt_stream.Hash64.string}). *)

val split :
  ?records_per_chunk:int -> Ickpt_runtime.Schema.t -> string -> t list
(** Split a segment body. The empty body yields [[]]; every other body
    yields chunks whose [data] concatenates back to the body.
    @raise Invalid_argument if [records_per_chunk < 1].
    @raise Ickpt_core.Restore.Error on an unknown class id in the body. *)
