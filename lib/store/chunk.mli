(** Splitting segment bodies into content-addressed chunks.

    A chunk is a run of consecutive {e whole} object records from one
    segment body — boundaries always fall on record boundaries, never
    inside one. Boundaries are placed every [records_per_chunk] records
    (counted from the start of the body), so two bodies that share a run of
    identical records at the same record index produce byte-identical
    chunks there even when earlier records changed length (varints make
    byte-offset-based chunking useless for dedup; record-index-based
    chunking is stable).

    The chunk key is the {!Ickpt_stream.Hash64} of the chunk bytes — equal
    bytes always give equal keys, which is what the store dedups on. *)

type t = {
  key : int;  (** {!Ickpt_stream.Hash64.string} of [data] *)
  data : string;  (** the chunk bytes: whole records, concatenated *)
  records : (int * int) list;
      (** [(rec_id, offset of the record within data)], in write order *)
}

val default_records_per_chunk : int
(** 16 — small enough that a localized mutation dirties one or two chunks,
    large enough that per-chunk framing overhead stays a few percent. *)

val key_of : string -> int
(** The content key of raw chunk bytes (= {!Ickpt_stream.Hash64.string}). *)

val max_salt_attempts : int
(** 8 — the rehash ladder a 63-bit collision climbs before the store gives
    up (probability of needing even the second rung is negligible). *)

val salted_key : string -> attempt:int -> int
(** The [attempt]-th fallback key for chunk bytes whose content key is
    already taken by different bytes (a {!Ickpt_stream.Hash64} collision):
    the hash of a salt prefix plus the bytes. Deterministic, so a reopened
    store re-derives the same ladder and dedups salted chunks too.
    @raise Invalid_argument unless [1 <= attempt <= max_salt_attempts]. *)

val key_matches : int -> string -> bool
(** [key_matches key data] — is [key] a legitimate stored key for [data]:
    its content key or any rung of the salt ladder? The integrity checks
    use this so salted chunks verify like any other. *)

val split :
  ?records_per_chunk:int -> Ickpt_runtime.Schema.t -> string -> t list
(** Split a segment body. The empty body yields [[]]; every other body
    yields chunks whose [data] concatenates back to the body.
    @raise Invalid_argument if [records_per_chunk < 1].
    @raise Ickpt_core.Restore.Error on an unknown class id in the body. *)
