open Bechamel
open Ickpt_synth
open Ickpt_backend
open Ickpt_analysis

(* One compound structure with one dirty element per invocation: the unit
   of work every figure scales up by population size. *)
let synth_unit ~last_only =
  let cfg =
    { Synth.default_config with
      Synth.n_structures = 1;
      list_len = 5;
      n_int_fields = 10;
      modified_lists = 1;
      last_only }
  in
  let t = Synth.build cfg in
  Synth.base_checkpoint t;
  let root = List.hd (Synth.roots t) in
  let victim =
    (* The last element of list 0 — legal under every declaration. *)
    let rec last (e : Ickpt_runtime.Model.obj) =
      match e.Ickpt_runtime.Model.children.(0) with
      | None -> e
      | Some next -> last next
    in
    match root.Ickpt_runtime.Model.children.(0) with
    | Some head -> last head
    | None -> assert false
  in
  (t, root, victim)

let sink = Ickpt_stream.Out_stream.sink ()

let synth_test ~name ~last_only runner_of =
  let t, root, victim = synth_unit ~last_only in
  let runner = runner_of t in
  Test.make ~name
    (Staged.stage (fun () ->
         Ickpt_runtime.Barrier.touch victim;
         runner sink root))

let attr_test ~name runner_of =
  let attrs = Attrs.create ~n_stmts:1 in
  Ickpt_runtime.Heap.clear_all_modified (Attrs.heap attrs);
  let root = List.hd (Attrs.roots attrs) in
  let runner = runner_of attrs in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (Attrs.set_bt attrs 0
              (1 - Attrs.get_bt attrs 0));
         runner sink root))

let spec shape = Jspec.Compile.residual (Jspec.Pe.specialize shape)

let tests () =
  Test.make_grouped ~name:"icheckpoint"
    [ attr_test ~name:"table1-bta-incremental" (fun _ d o ->
          Ickpt_core.Checkpointer.incremental d o);
      attr_test ~name:"table1-bta-specialized" (fun attrs ->
          spec (Attrs.bta_shape attrs));
      synth_test ~name:"fig7-full" ~last_only:false (fun _ d o ->
          Ickpt_core.Checkpointer.full_tree d o);
      synth_test ~name:"fig7-incremental" ~last_only:false (fun _ d o ->
          Ickpt_core.Checkpointer.incremental d o);
      synth_test ~name:"fig8-generic" ~last_only:false (fun _ ->
          Backend.native.Backend.run_generic);
      synth_test ~name:"fig8-spec-structure" ~last_only:false (fun t ->
          spec (Synth.shape_structure t));
      synth_test ~name:"fig9-spec-modified-lists" ~last_only:false (fun t ->
          spec (Synth.shape_modified_lists t));
      synth_test ~name:"fig10-spec-last-only" ~last_only:true (fun t ->
          spec (Synth.shape_last_only t));
      synth_test ~name:"fig11a-interp-generic" ~last_only:true (fun _ ->
          Backend.interp.Backend.run_generic);
      synth_test ~name:"fig11a-interp-spec" ~last_only:true (fun t ->
          Backend.interp.Backend.specialize
            (Jspec.Pe.specialize (Synth.shape_last_only t)));
      synth_test ~name:"fig11b-ic-generic" ~last_only:true (fun _ ->
          Backend.inline_cache.Backend.run_generic);
      synth_test ~name:"fig11b-ic-spec" ~last_only:true (fun t ->
          Backend.inline_cache.Backend.specialize
            (Jspec.Pe.specialize (Synth.shape_last_only t)));
      synth_test ~name:"table2-native-generic" ~last_only:false (fun _ ->
          Backend.native.Backend.run_generic);
      synth_test ~name:"table2-native-spec" ~last_only:false (fun t ->
          spec (Synth.shape_modified_lists t)) ]

let run ?(quota = 0.25) ppf =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] (tests ()) in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.fprintf ppf "@.== Bechamel micro-benchmarks (ns per unit) ==@.";
  List.iter
    (fun (name, ns) -> Format.fprintf ppf "%-42s %12.1f ns@." name ns)
    rows
