open Ickpt_analysis
open Staticcheck

let name = "par"

let title =
  "Domain-parallel execution ablation: interference-scheduled phases and \
   iteration strips on OCaml domains, every row gated by the \
   sequential-identity oracle (extension)"

type row = {
  workload : string;
  domains : int;
  par_sweeps : int;
  refused : int;
  groups : int;
  par_units : int;
  seq_seconds : float;
  par_seconds : float;
  speedup : float;
  identical : bool;
  oracle_ok : bool;
}

let host_cores () = Domain.recommended_domain_count ()

(* ---- workload sources ---------------------------------------------------- *)

let example_path file =
  let candidates =
    [ Filename.concat "examples/workloads" file;
      Filename.concat "../examples/workloads" file;
      Filename.concat "../../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith (Printf.sprintf "example workload %s not found" file)

let load_example file =
  let ic = open_in_bin (example_path file) in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Minic.Parser.parse src

(* A stencil big enough that strip fan-out has real work per domain: the
   example workloads finish in microseconds, where domain spawn cost
   dominates any speedup. Both sweeps are recognizable (assign-then-
   single-while over literal bounds) and strip-disjoint. *)
let stencil_src =
  "int src[2048];\n\
   int dst[2048];\n\
   int round = 0;\n\
   \n\
   void fill() {\n\
  \  int i;\n\
  \  i = 0;\n\
  \  while (i < 2048) {\n\
  \    src[i] = (i * 37 + 11) % 255;\n\
  \    i = i + 1;\n\
  \  }\n\
   }\n\
   \n\
   void smooth() {\n\
  \  int i;\n\
  \  i = 1;\n\
  \  while (i < 2047) {\n\
  \    dst[i] = (src[i - 1] * 3 + src[i] * 5 + src[i + 1] * 3) / 11;\n\
  \    dst[i] = (dst[i] * 7 + src[i] % 13 + 5) % 255;\n\
  \    dst[i] = dst[i] + (src[i] * src[i]) % 17;\n\
  \    i = i + 1;\n\
  \  }\n\
   }\n\
   \n\
   void commit() {\n\
  \  int i;\n\
  \  i = 0;\n\
  \  while (i < 2048) {\n\
  \    src[i] = (dst[i] * 7 + src[i]) % 251;\n\
  \    i = i + 1;\n\
  \  }\n\
   }\n\
   \n\
   int main() {\n\
  \  fill();\n\
  \  while (round < 4) {\n\
  \    smooth();\n\
  \    commit();\n\
  \    round = round + 1;\n\
  \  }\n\
  \  return src[17];\n\
   }\n"

let workloads () =
  List.map
    (fun f -> (Filename.remove_extension f, load_example f))
    [ "blur.mc"; "pagerank.mc"; "kvlog.mc"; "histogram.mc" ]
  @ [ ("stencil-2k", Minic.Parser.parse stencil_src) ]

(* ---- measurement --------------------------------------------------------- *)

let domain_counts = [ 1; 2; 4 ]

let measure_workload (wname, program) =
  let env = Minic.Check.check program in
  let t = Auto_spec.infer env in
  let _, seq_seconds =
    Ickpt_harness.Clock.best_of ~repeats:2 (fun () ->
        Engine.analyze ~infer:true ~mode:Engine.Incremental program)
  in
  let rows =
    List.map
      (fun d ->
        let sc = Interfere.schedule ~domains:d t in
        let _, par_seconds =
          Ickpt_harness.Clock.best_of ~repeats:2 (fun () ->
              Engine.analyze ~infer:true ~mode:Engine.Incremental ~parallel:d
                program)
        in
        let o = Elide_oracle.run_par ~domains:d ~name:wname program in
        { workload = wname;
          domains = d;
          par_sweeps = sc.Interfere.Schedule.sc_par_sweeps;
          refused = sc.Interfere.Schedule.sc_refused_sweeps;
          groups = sc.Interfere.Schedule.sc_groups;
          par_units = o.Elide_oracle.pw_par_units;
          seq_seconds;
          par_seconds;
          speedup = 1.0 (* filled in below from the 1-domain row *);
          identical =
            o.Elide_oracle.pw_identical_incremental
            && o.Elide_oracle.pw_identical_specialized;
          oracle_ok = Elide_oracle.par_ok o })
      domain_counts
  in
  let t1 =
    match List.find_opt (fun r -> r.domains = 1) rows with
    | Some r -> r.par_seconds
    | None -> seq_seconds
  in
  List.map
    (fun r ->
      { r with
        speedup = (if r.par_seconds > 0.0 then t1 /. r.par_seconds else 1.0) })
    rows

let measure_all () = List.concat_map measure_workload (workloads ())

(* ---- JSON (BENCH_7.json) ------------------------------------------------- *)

let json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"domain-parallel execution ablation\",\n\
       \  \"unit\": \"wall-clock seconds; speedup vs the 1-domain \
        execution\",\n\
       \  \"host_cores\": %d,\n\
       \  \"rows\": [\n"
       (host_cores ()));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"domains\": %d,\n\
           \     \"par_sweeps\": %d, \"refused_sweeps\": %d, \"groups\": \
            %d, \"par_units\": %d,\n\
           \     \"seq_seconds\": %.6f, \"par_seconds\": %.6f, \"speedup\": \
            %.3f,\n\
           \     \"identical_to_sequential\": %b, \"oracle_ok\": %b}%s\n"
           r.workload r.domains r.par_sweeps r.refused r.groups r.par_units
           r.seq_seconds r.par_seconds r.speedup r.identical r.oracle_ok
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ---- table + checks ------------------------------------------------------ *)

let pp_table ppf rows =
  let table =
    Ickpt_harness.Table.create ~title
      ~columns:
        [ "workload"; "domains"; "sweeps"; "refused"; "groups"; "units";
          "seq s"; "par s"; "speedup"; "identical"; "oracle" ]
  in
  List.iter
    (fun r ->
      Ickpt_harness.Table.add_row table
        [ r.workload;
          string_of_int r.domains;
          string_of_int r.par_sweeps;
          string_of_int r.refused;
          string_of_int r.groups;
          string_of_int r.par_units;
          Printf.sprintf "%.4f" r.seq_seconds;
          Printf.sprintf "%.4f" r.par_seconds;
          Printf.sprintf "%.2fx" r.speedup;
          (if r.identical then "yes" else "NO");
          (if r.oracle_ok then "ok" else "FAIL") ])
    rows;
  Format.fprintf ppf "%a@." Ickpt_harness.Table.pp table

let checks rows =
  let open Workload in
  let cores = host_cores () in
  [ check ~label:"par: sequential-identity oracle passes on every row"
      ~ok:(rows <> [] && List.for_all (fun r -> r.oracle_ok) rows)
      ~detail:
        "every parallel execution produced byte-identical chains in both \
         modes and pairwise-disjoint observed footprints in every fork \
         group";
    check ~label:"par: parallel chains byte-identical to sequential"
      ~ok:(List.for_all (fun r -> r.identical) rows)
      ~detail:
        "replaying domain-local write logs in schedule order reproduces \
         the sequential barrier stream exactly";
    check ~label:"par: the schedule parallelizes real work"
      ~ok:
        (List.exists (fun r -> r.domains = 4 && r.par_units > 0) rows)
      ~detail:
        "at 4 domains at least one workload executes parallel units \
         (iteration strips or grouped phases)";
    check ~label:"par: the conflicting kvlog sweep is refused, not run"
      ~ok:
        (List.for_all
           (fun r ->
             r.workload <> "kvlog" || r.domains < 2
             || (r.refused >= 1 && r.par_sweeps = 0))
           rows)
      ~detail:
        "kvlog's hash-scatter strips may collide on the whole table, so \
         the analysis must refuse them whenever there are >= 2 strips (a \
         single strip is trivially disjoint)";
    check
      ~label:"par: >= 1.5x speedup at 4 domains on >= 1 workload (multi-core)"
      ~ok:
        (cores < 2
        || List.exists
             (fun r -> r.domains = 4 && r.speedup >= 1.5)
             rows)
      ~detail:
        (if cores < 2 then
           Printf.sprintf
             "host reports %d core(s): domains cannot run concurrently, so \
              no speedup is claimed — identity and disjointness were still \
              verified on every row"
             cores
         else
           "with real cores available, strip fan-out must pay for its \
            snapshot and replay overhead somewhere") ]

let run ~scale ppf =
  ignore (scale : Workload.scale);
  let rows = measure_all () in
  pp_table ppf rows;
  checks rows
