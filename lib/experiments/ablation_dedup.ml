open Ickpt_runtime
open Ickpt_core
open Ickpt_harness
open Ickpt_cas
open Ickpt_analysis

let name = "dedup"

let title =
  "Dedup-store ablation: chunk dedup and O(live) epoch restore vs the \
   plain segment log (extension)"

type row = {
  workload : string;
  epochs : int;
  chunks : int;
  logical_bytes : int;
  physical_bytes : int;
  dedup_ratio : float;
  target_epoch : int;
  replay_seconds : float;
  store_seconds : float;
  speedup : float;
  states_equal : bool;
}

(* ---- shared measurement ------------------------------------------------- *)

let roots_equal a b =
  List.length a = List.length b && List.for_all2 Deep_eq.equal a b

let full_body roots =
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.full_many d roots;
  Ickpt_stream.Out_stream.contents d

(* The best a log-only restore can do for an arbitrary epoch: accumulate
   the suffix from the newest full at or before it (what Chain.recover
   does for the latest). Under incremental-after-base that suffix is the
   entire prefix — replay cost grows with run length, which is exactly
   what the epoch index removes. *)
let replay_segments segs ~target =
  let upto = List.filter (fun (s : Segment.t) -> s.seq <= target) segs in
  let rec cut acc = function
    | [] -> acc
    | (s : Segment.t) :: older -> (
        match s.kind with
        | Segment.Full -> s :: acc
        | Segment.Incremental -> cut (s :: acc) older)
  in
  cut [] (List.rev upto)

let store_files path = [ Store.pack_path path; Store.index_path path ]

let with_store schema ~slug f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ickpt_dedup_%s.ckpt" slug)
  in
  let clean () =
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) (store_files path)
  in
  clean ();
  Fun.protect ~finally:clean (fun () ->
      f (Store.open_ schema ~path))

(* Store every segment of the chain, then materialize [target] both ways. *)
let row_of_chain ?(repeats = 3) ~workload ~target chain =
  let schema = Chain.schema chain in
  let segs = Chain.segments chain in
  let slug =
    String.map (fun c -> if c = '/' || c = '.' then '_' else c) workload
  in
  with_store schema ~slug (fun store ->
      List.iter (fun s -> ignore (Store.append_segment store s)) segs;
      let s = Store.stats store in
      let target = max 0 (min target (List.length segs - 1)) in
      let tseg = List.find (fun (x : Segment.t) -> x.seq = target) segs in
      let replay = replay_segments segs ~target in
      let (rh, replayed), replay_seconds =
        Clock.best_of ~repeats (fun () ->
            Restore.of_segments schema replay ~roots:tseg.Segment.roots)
      in
      ignore rh;
      let (sh, stored), store_seconds =
        Clock.best_of ~repeats (fun () -> Store.restore store ~epoch:target)
      in
      ignore sh;
      { workload;
        epochs = s.Store.n_epochs;
        chunks = s.Store.n_chunks;
        logical_bytes = s.Store.logical_bytes;
        physical_bytes = s.Store.physical_bytes;
        dedup_ratio = s.Store.dedup_ratio;
        target_epoch = target;
        replay_seconds;
        store_seconds;
        speedup = replay_seconds /. store_seconds;
        states_equal =
          roots_equal replayed stored
          && String.equal (full_body replayed) (full_body stored) })

(* ---- engine workloads (full-checkpointing mode) ------------------------- *)

let measure_engine ?repeats workloads =
  List.map
    (fun (wname, program) ->
      let report = Engine.analyze ~mode:Engine.Full program in
      let chain = report.Engine.chain in
      let target = (Chain.length chain - 1) / 2 in
      row_of_chain ?repeats ~workload:wname ~target chain)
    workloads

(* ---- the long pagerank-style run ---------------------------------------- *)

(* The examples/pagerank.ml dynamics, shrunk: flat Page objects, topology
   as scalar ids, change-detecting score writes. A rotating "teleport
   bonus" keeps a slice of pages changing every round, so incremental
   epochs never dry up and chain replay cost genuinely grows with run
   length. *)
let max_links = 4

let slot_score = 0
let slot_degree = 1
let slot_bonus = 2
let slot_link k = 3 + k

let measure_pagerank ?(repeats = 3) ?(epochs = 120) ?(pages = 300) () =
  if epochs < 2 then invalid_arg "measure_pagerank: epochs";
  let schema = Schema.create () in
  let page =
    Schema.declare schema ~name:"Page" ~ints:(3 + max_links) ~children:0 ()
  in
  let heap = Heap.create schema in
  let rng = Random.State.make [| 0x5eed5 |] in
  let ps = Array.init pages (fun _ -> Heap.alloc heap page) in
  Array.iteri
    (fun i p ->
      let degree = 1 + Random.State.int rng max_links in
      Barrier.set_int p slot_score 1000;
      Barrier.set_int p slot_degree degree;
      Barrier.set_int p slot_bonus 0;
      for k = 0 to degree - 1 do
        let target = (i + 1 + Random.State.int rng (pages - 1)) mod pages in
        Barrier.set_int p (slot_link k) ps.(target).Model.info.Model.id
      done)
    ps;
  let by_id = Hashtbl.create pages in
  Array.iter (fun p -> Hashtbl.replace by_id p.Model.info.Model.id p) ps;
  let sweep r =
    (* One damping iteration plus the rotating teleport slice. *)
    let incoming = Array.make pages 0 in
    Array.iteri
      (fun i p ->
        ignore i;
        let d = p.Model.ints.(slot_degree) in
        let share = p.Model.ints.(slot_score) / d in
        for k = 0 to d - 1 do
          let t = Hashtbl.find by_id p.Model.ints.(slot_link k) in
          let ti = t.Model.info.Model.id - ps.(0).Model.info.Model.id in
          incoming.(ti) <- incoming.(ti) + share
        done)
      ps;
    let slice = max 1 (pages / 10) in
    Array.iteri
      (fun i p ->
        let bonus = if (i + r) mod (pages / slice) = 0 then 100 + r else 0 in
        ignore (Barrier.set_int_if_changed p slot_bonus bonus);
        ignore
          (Barrier.set_int_if_changed p slot_score
             (150 + (850 * incoming.(i) / 1000) + bonus)))
      ps
  in
  let roots = Array.to_list ps in
  let chain = Chain.create schema in
  ignore (Chain.take_full chain roots);
  for r = 1 to epochs - 1 do
    sweep r;
    ignore (Chain.take_incremental chain roots)
  done;
  row_of_chain ~repeats ~workload:"pagerank" ~target:(epochs - 10) chain

(* ---- JSON (BENCH_5.json) ------------------------------------------------ *)

let json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\n  \"bench\": \"dedup-store ablation\",\n  \"unit\": \"bytes; seconds \
     (best-of-repeats per restore)\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"epochs\": %d, \"chunks\": %d,\n\
           \     \"logical_bytes\": %d, \"physical_bytes\": %d, \
            \"dedup_ratio\": %.3f,\n\
           \     \"target_epoch\": %d, \"replay_seconds\": %.9f, \
            \"store_seconds\": %.9f,\n\
           \     \"speedup\": %.3f, \"states_equal\": %b}%s\n"
           r.workload r.epochs r.chunks r.logical_bytes r.physical_bytes
           r.dedup_ratio r.target_epoch r.replay_seconds r.store_seconds
           r.speedup r.states_equal
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ---- table + checks ----------------------------------------------------- *)

let pp_table ppf rows =
  let table =
    Ickpt_harness.Table.create ~title
      ~columns:
        [ "workload"; "epochs"; "logical"; "on-disk"; "dedup"; "restore@";
          "replay"; "store"; "speedup" ]
  in
  List.iter
    (fun r ->
      Ickpt_harness.Table.add_row table
        [ r.workload;
          string_of_int r.epochs;
          Ickpt_harness.Table.cell_bytes r.logical_bytes;
          Ickpt_harness.Table.cell_bytes r.physical_bytes;
          Ickpt_harness.Table.cell_speedup r.dedup_ratio;
          string_of_int r.target_epoch;
          Ickpt_harness.Table.cell_seconds r.replay_seconds;
          Ickpt_harness.Table.cell_seconds r.store_seconds;
          Ickpt_harness.Table.cell_speedup r.speedup ])
    rows;
  Format.fprintf ppf "%a@." Ickpt_harness.Table.pp table

let checks rows =
  let open Workload in
  let engine_rows = List.filter (fun r -> r.workload <> "pagerank") rows in
  let long_rows = List.filter (fun r -> r.epochs >= 100) rows in
  [ check ~label:"dedup: store and replay restores agree"
      ~ok:(List.for_all (fun r -> r.states_equal) rows)
      ~detail:
        "every row's target epoch materializes to byte-identical heaps \
         through the store and through chain replay";
    check ~label:"dedup: ratio > 1.5x on a full-checkpointing workload"
      ~ok:(List.exists (fun r -> r.dedup_ratio > 1.5) engine_rows)
      ~detail:
        "repeated full epochs share most record-aligned chunks, so the \
         pack holds them once";
    check ~label:"dedup: store restore beats chain replay on 100+ epochs"
      ~ok:
        (long_rows <> []
        && List.for_all (fun r -> r.speedup > 1.0) long_rows)
      ~detail:
        "the epoch index folds per-object directories instead of \
         decoding every record of every prior segment" ]

let run ~scale ppf =
  let repeats = if scale >= 1.0 then 5 else 3 in
  let epochs = max 12 (int_of_float (120.0 *. scale)) in
  let pages = max 40 (int_of_float (300.0 *. scale)) in
  let rows =
    measure_engine ~repeats
      [ ("image", Minic.Gen.image_program ());
        ("small", Minic.Gen.small_program ()) ]
    @ [ measure_pagerank ~repeats ~epochs ~pages () ]
  in
  pp_table ppf rows;
  checks rows
