(* Table 1: the program analysis engine (paper Section 4.3). Checkpoint
   size and construction time for the binding-time and evaluation-time
   analysis phases, under full / incremental / specialized-incremental
   checkpointing, plus the pure traversal time that bounds what
   specialization can save. Paper shape: the checkpoint-size spread between
   the first and last iteration is what incremental checkpointing exploits;
   specialization gives ~1.3-1.5x on construction and ~1.8-2x on
   traversal. *)

open Ickpt_analysis
open Ickpt_harness

let name = "table1"

let title = "Table 1: program analysis engine (BTA / ETA phases)"

let repeats = 7

(* Steady-state measurement on converged analysis state: each repetition
   re-dirties every annotation of the phase (the paper's max-checkpoint
   case, like a first iteration) and times one checkpoint of all the
   attribute roots. *)
let measure_ckp attrs ~dirty runner =
  let roots = Attrs.roots attrs in
  let bytes = ref 0 in
  let best = ref infinity in
  for rep = 1 to repeats do
    dirty ();
    let d =
      if rep = 1 then Ickpt_stream.Out_stream.create ()
      else Ickpt_stream.Out_stream.sink ()
    in
    let (), s = Clock.time (fun () -> List.iter (fun r -> runner d r) roots) in
    if rep = 1 then bytes := Ickpt_stream.Out_stream.size d;
    if s < !best then best := s
  done;
  (!bytes, !best)

(* Pure traversal: the heap is clean, so the runner tests and walks but
   records nothing. *)
let measure_traversal attrs runner =
  let roots = Attrs.roots attrs in
  let best = ref infinity in
  for _ = 1 to repeats do
    let d = Ickpt_stream.Out_stream.sink () in
    let (), s = Clock.time (fun () -> List.iter (fun r -> runner d r) roots) in
    if s < !best then best := s
  done;
  !best

let min_max = function
  | [] -> (0, 0)
  | sizes -> (List.fold_left min max_int sizes, List.fold_left max 0 sizes)

let iteration_bytes (p : Engine.phase_report) =
  List.map (fun (s : Engine.iteration_stat) -> s.Engine.bytes) p.Engine.stats

let run ~scale ppf =
  ignore scale;
  let program = Minic.Gen.image_program () in
  Format.fprintf ppf
    "analyzed program: %d lines, %d statements; BTA >= 9 iterations, ETA >= 3@."
    (Minic.Pp.line_count program)
    (Minic.Ast.stmt_count program);

  (* Dynamics: per-iteration checkpoint sizes in the three modes. *)
  let reports =
    List.map
      (fun mode -> Engine.analyze ~mode ~bta_min:9 ~eta_min:3 program)
      Engine.[ Full; Incremental; Specialized ]
  in
  let r_full, r_incr, r_spec =
    match reports with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let phase (r : Engine.report) n = List.nth r.Engine.phases n in
  let size_table =
    Table.create ~title:(title ^ " — checkpoint sizes")
      ~columns:[ "phase"; "method"; "min ckp"; "max ckp"; "total" ]
  in
  List.iteri
    (fun i phase_name ->
      List.iter
        (fun (label, r) ->
          let sizes = iteration_bytes (phase r (i + 1)) in
          let mn, mx = min_max sizes in
          Table.add_row size_table
            [ phase_name; label; Table.cell_bytes mn; Table.cell_bytes mx;
              Table.cell_bytes (List.fold_left ( + ) 0 sizes) ])
        [ ("full", r_full); ("incremental", r_incr); ("specialized", r_spec) ])
    [ "bta"; "eta" ];
  Format.fprintf ppf "%a@." Table.pp size_table;

  (* Steady-state timing on the converged incremental report's heap. *)
  let attrs = Engine.attrs r_incr in
  let n = Attrs.n_stmts attrs in
  let flip_bt () =
    for sid = 0 to n - 1 do
      ignore
        (Attrs.set_bt attrs sid
           (if Attrs.get_bt attrs sid = Attrs.bt_static then Attrs.bt_dynamic
            else Attrs.bt_static))
    done
  in
  let flip_et () =
    for sid = 0 to n - 1 do
      ignore
        (Attrs.set_et attrs sid
           (if Attrs.get_et attrs sid = Attrs.et_spec_time then
              Attrs.et_run_time
            else Attrs.et_spec_time))
    done
  in
  let spec_runner shape = Jspec.Compile.residual (Jspec.Pe.specialize shape) in
  let full d o = Ickpt_core.Checkpointer.full_tree d o in
  let incr d o = Ickpt_core.Checkpointer.incremental d o in
  let time_table =
    Table.create ~title:(title ^ " — construction & traversal time")
      ~columns:
        [ "phase"; "method"; "ckp bytes"; "ckp time"; "traversal" ]
  in
  let results = Hashtbl.create 16 in
  let measure_phase phase_name dirty shape =
    let srunner = spec_runner shape in
    List.iter
      (fun (label, runner) ->
        let bytes, s = measure_ckp attrs ~dirty runner in
        let trav = measure_traversal attrs runner in
        Hashtbl.replace results (phase_name, label) (bytes, s, trav);
        Table.add_row time_table
          [ phase_name; label; Table.cell_bytes bytes; Table.cell_seconds s;
            Table.cell_seconds trav ])
      [ ("full", full); ("incremental", incr); ("specialized", srunner) ]
  in
  measure_phase "bta" flip_bt (Attrs.bta_shape attrs);
  measure_phase "eta" flip_et (Attrs.eta_shape attrs);
  Format.fprintf ppf "%a@." Table.pp time_table;

  let get key = Hashtbl.find results key in
  let b_full, t_full, _ = get ("bta", "full") in
  let b_incr, t_incr, trav_incr = get ("bta", "incremental") in
  let b_spec, t_spec, trav_spec = get ("bta", "specialized") in
  let _, te_incr, trave_incr = get ("eta", "incremental") in
  let _, te_spec, trave_spec = get ("eta", "specialized") in
  let bytes_eq =
    List.for_all2
      (fun (a : Engine.phase_report) b ->
        iteration_bytes a = iteration_bytes b)
      r_incr.Engine.phases r_spec.Engine.phases
  in
  let open Workload in
  [ check ~label:"table1: specialized checkpoints byte-equal incremental"
      ~ok:bytes_eq ~detail:"per-iteration sizes identical across all phases";
    check ~label:"table1: incremental writes less than full"
      ~ok:(b_incr <= b_full && b_spec = b_incr)
      ~detail:
        (Printf.sprintf "full %s vs incremental %s" (Table.cell_bytes b_full)
           (Table.cell_bytes b_incr));
    check ~label:"table1: specialization speeds up BTA checkpointing"
      ~ok:(t_spec < t_incr)
      ~detail:
        (Printf.sprintf "incr %s vs spec %s (%.2fx; paper: up to 1.5x; full %s)"
           (Table.cell_seconds t_incr) (Table.cell_seconds t_spec)
           (t_incr /. t_spec) (Table.cell_seconds t_full));
    check ~label:"table1: specialization speeds up ETA checkpointing"
      ~ok:(te_spec < te_incr)
      ~detail:
        (Printf.sprintf "incr %s vs spec %s (%.2fx)"
           (Table.cell_seconds te_incr) (Table.cell_seconds te_spec)
           (te_incr /. te_spec));
    check ~label:"table1: traversal time drops (paper: 1.8-2x)"
      ~ok:(trav_spec < trav_incr && trave_spec < trave_incr)
      ~detail:
        (Printf.sprintf "bta %.2fx, eta %.2fx" (trav_incr /. trav_spec)
           (trave_incr /. trave_spec)) ]
