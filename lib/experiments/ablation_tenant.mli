(** Multi-tenant service ablation (BENCH_8): eight tenants — two instances
    each of the blur/histogram/pagerank/kvlog example workloads — replay
    their engine-produced chains into one shared service, under per-epoch
    commits and group commits at 1, 2 and 4 domains (the 1-domain group
    row is the sequential control). Every row is gated by per-tenant
    restore identity against a private store, and reports throughput, p99
    commit latency, fsyncs per committed epoch and the cross-tenant dedup
    ratio (sum of private pack bytes over shared pack bytes). *)

val name : string

val title : string

type row = {
  mode : string;  (** "per-epoch" or "group" *)
  shards : int;
  domains : int;  (** domains driving disjoint tenant slices *)
  tenants : int;
  epochs : int;  (** committed epochs across all tenants *)
  seconds : float;
  epochs_per_sec : float;
  p99_latency : float;  (** seconds, submission to durable *)
  fsyncs : int;
  fsyncs_per_epoch : float;
  commit_batches : int;
  dedup_ratio : float;  (** shared-pack logical over physical bytes *)
  cross_tenant_dedup : float;
      (** sum of private per-tenant pack bytes over shared pack bytes *)
  restore_identical : bool;
}

val host_cores : unit -> int

val measure_all : ?repeat:int -> unit -> row list
(** Run all four configurations. [repeat] (default 3) replays each
    tenant's chain that many times with contiguous renumbered sequences. *)

val json : row list -> string
(** The BENCH_8.json document. *)

val pp_table : Format.formatter -> row list -> unit

val checks : row list -> Workload.check list

val run : scale:Workload.scale -> Format.formatter -> Workload.check list
