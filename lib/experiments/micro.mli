(** Statistically-sampled micro-benchmarks (Bechamel): one test per paper
    table/figure, each measuring the steady-state unit of work of that
    experiment (one structure or one attribute checkpoint) so that OLS
    regression over thousands of iterations gives noise-free per-unit
    costs complementing the wall-clock experiment tables. *)

val tests : unit -> Bechamel.Test.t
(** The grouped test suite. *)

val run : ?quota:float -> Format.formatter -> unit
(** Benchmark {!tests} and print the per-run OLS estimates. [quota] is
    the sampling budget per test in seconds (default 0.25); smoke runs
    pass a small value. *)
