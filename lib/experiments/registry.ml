type experiment = {
  name : string;
  title : string;
  run : scale:Workload.scale -> Format.formatter -> Workload.check list;
}

let all =
  [ { name = Table1.name; title = Table1.title; run = Table1.run };
    { name = Fig7.name; title = Fig7.title; run = Fig7.run };
    { name = Fig8.name; title = Fig8.title; run = Fig8.run };
    { name = Fig9.name; title = Fig9.title; run = Fig9.run };
    { name = Fig10.name; title = Fig10.title; run = Fig10.run };
    { name = Fig11.name; title = Fig11.title; run = Fig11.run };
    { name = Table2.name; title = Table2.title; run = Table2.run };
    { name = Ablation_recovery.name;
      title = Ablation_recovery.title;
      run = Ablation_recovery.run };
    { name = Ablation_guard.name;
      title = Ablation_guard.title;
      run = Ablation_guard.run };
    { name = Ablation_crash.name;
      title = Ablation_crash.title;
      run = Ablation_crash.run };
    { name = Ablation_barrier.name;
      title = Ablation_barrier.title;
      run = Ablation_barrier.run };
    { name = Ablation_dedup.name;
      title = Ablation_dedup.title;
      run = Ablation_dedup.run };
    { name = Ablation_live.name;
      title = Ablation_live.title;
      run = Ablation_live.run };
    { name = Ablation_par.name;
      title = Ablation_par.title;
      run = Ablation_par.run };
    { name = Ablation_tenant.name;
      title = Ablation_tenant.title;
      run = Ablation_tenant.run } ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_all ?names ~scale ppf =
  let selected =
    match names with
    | None -> all
    | Some names ->
        List.filter_map
          (fun n ->
            match find n with
            | Some e -> Some e
            | None ->
                Format.fprintf ppf "unknown experiment %S (skipped)@." n;
                None)
          names
  in
  List.map
    (fun e ->
      Format.fprintf ppf "@.### %s@.@." e.title;
      let checks = e.run ~scale ppf in
      Workload.pp_checks ppf checks;
      (e.name, checks))
    selected
