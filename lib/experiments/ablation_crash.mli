(** See the implementation header for the experiment this reproduces. *)

val name : string

val title : string

val run :
  scale:Workload.scale -> Format.formatter -> Workload.check list
