open Ickpt_core
open Ickpt_cas
open Ickpt_service
open Ickpt_analysis

let name = "tenant"

let title =
  "Multi-tenant service ablation: per-tenant chains over one shared pack, \
   group-committed writes vs per-epoch commits, every row gated by \
   per-tenant restore identity against a private store (extension)"

type row = {
  mode : string;
  shards : int;
  domains : int;
  tenants : int;
  epochs : int;
  seconds : float;
  epochs_per_sec : float;
  p99_latency : float;
  fsyncs : int;
  fsyncs_per_epoch : float;
  commit_batches : int;
  dedup_ratio : float;
  cross_tenant_dedup : float;
  restore_identical : bool;
}

let host_cores () = Domain.recommended_domain_count ()

(* ---- tenant zoo ---------------------------------------------------------- *)

(* Eight tenants: two instances each of the four example workloads, run
   through the engine in annotation-free incremental mode. The two
   instances of a workload submit byte-identical segments (per-heap object
   ids restart at 0), which is exactly the state the shared pack dedups
   across tenants. [repeat] lengthens every session by replaying its
   segment list with contiguous renumbered sequences — each pass starts
   with the full base, which the chain accepts mid-stream. *)

type session = {
  s_name : string;
  s_schema : Ickpt_runtime.Schema.t;
  s_segments : Segment.t list;  (* one pass, seqs 0..n-1 *)
}

let example_path file =
  let candidates =
    [ Filename.concat "examples/workloads" file;
      Filename.concat "../examples/workloads" file;
      Filename.concat "../../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith (Printf.sprintf "example workload %s not found" file)

let load_example file =
  let ic = open_in_bin (example_path file) in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Minic.Parser.parse src

let sessions () =
  List.concat_map
    (fun wname ->
      let program = load_example (wname ^ ".mc") in
      let report = Engine.analyze ~infer:true ~mode:Engine.Incremental program in
      let chain = report.Engine.chain in
      let schema = Chain.schema chain in
      let segments = Chain.segments chain in
      List.map
        (fun inst ->
          { s_name = Printf.sprintf "%s-%s" wname inst;
            s_schema = schema;
            s_segments = segments })
        [ "a"; "b" ])
    [ "blur"; "histogram"; "pagerank"; "kvlog" ]

let session_epochs s ~repeat = repeat * List.length s.s_segments

(* Pass [p] of a session: the same segments with sequences shifted to stay
   contiguous across passes. *)
let pass_segments s ~pass =
  let n = List.length s.s_segments in
  List.map
    (fun (seg : Segment.t) -> { seg with Segment.seq = (pass * n) + seg.seq })
    s.s_segments

(* ---- fsync meter --------------------------------------------------------- *)

let counting_vfs inner =
  let syncs = Atomic.make 0 in
  let wrap w =
    { w with
      Vfs.sync =
        (fun () ->
          Atomic.incr syncs;
          w.Vfs.sync ()) }
  in
  ( { inner with
      Vfs.open_append = (fun p -> wrap (inner.Vfs.open_append p));
      open_trunc = (fun p -> wrap (inner.Vfs.open_trunc p)) },
    syncs )

(* ---- the private-store reference ----------------------------------------- *)

let full_body roots =
  let d = Ickpt_stream.Out_stream.create () in
  Checkpointer.full_many d roots;
  Ickpt_stream.Out_stream.contents d

let tmp slug =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ickpt_tenant_%d_%s" (Unix.getpid ()) slug)

let remove_if_exists p = if Sys.file_exists p then Sys.remove p

(* Each tenant run alone on a private store: the pack footprint the shared
   pack is compared against, and the restore oracle every service row is
   gated by. [probe_epochs] picks a mid and the last epoch. *)
type reference = {
  f_name : string;
  f_pack_bytes : int;
  f_probes : (int * string) list;  (* epoch -> full-checkpoint bytes *)
}

let probe_epochs ~total = List.sort_uniq compare [ (total - 1) / 2; total - 1 ]

let private_reference ~repeat s =
  let path = tmp ("priv_" ^ s.s_name) in
  let files = [ Store.pack_path path; Store.index_path path ] in
  List.iter remove_if_exists files;
  Fun.protect
    ~finally:(fun () -> List.iter remove_if_exists files)
    (fun () ->
      let store = Store.open_ s.s_schema ~path in
      for pass = 0 to repeat - 1 do
        List.iter
          (fun seg ->
            ignore (Store.append_segment store seg : Store.append_stats))
          (pass_segments s ~pass)
      done;
      let probes =
        List.map
          (fun e ->
            let _heap, roots = Store.restore store ~epoch:e in
            (e, full_body roots))
          (probe_epochs ~total:(session_epochs s ~repeat))
      in
      let pack_bytes =
        let ic = open_in_bin (Store.pack_path path) in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> in_channel_length ic)
      in
      { f_name = s.s_name; f_pack_bytes = pack_bytes; f_probes = probes })

(* ---- one service row ----------------------------------------------------- *)

let group_policy =
  { Async_writer.Batch.max_items = 8; max_bytes = 1 lsl 20; linger = 0. }

let service_files path ~shards =
  Service.pack_path path :: Service.catalog_path path :: Service.meta_path path
  :: List.init shards (Service.shard_index_path path)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let i = min (n - 1) (int_of_float (p *. float_of_int n)) in
      List.nth sorted i

let measure_row ~sessions ~references ~repeat ~mode_label ~commit ~shards
    ~domains =
  let path = tmp (Printf.sprintf "svc_%s_s%d" mode_label shards) in
  let files = service_files path ~shards in
  List.iter remove_if_exists files;
  Fun.protect
    ~finally:(fun () -> List.iter remove_if_exists files)
    (fun () ->
      let vfs, syncs = counting_vfs Vfs.real in
      let svc = Service.open_ ~vfs ~shards ~commit ~path () in
      let tens =
        List.map
          (fun s -> (s, Service.open_tenant svc s.s_schema ~name:s.s_name))
          sessions
      in
      (* Each domain drives a disjoint slice of tenants, interleaving its
         tenants' epochs so group batches genuinely mix tenants. *)
      let drive part =
        List.iteri
          (fun i (s, tn) ->
            if i mod domains = part then
              for pass = 0 to repeat - 1 do
                List.iter
                  (fun seg -> ignore (Service.append tn seg : int))
                  (pass_segments s ~pass)
              done)
          tens
      in
      let t0 = Unix.gettimeofday () in
      let spawned =
        List.init (domains - 1) (fun d -> Domain.spawn (fun () -> drive (d + 1)))
      in
      drive 0;
      List.iter Domain.join spawned;
      Service.flush svc;
      let seconds = Unix.gettimeofday () -. t0 in
      let latencies = Service.drain_latencies svc in
      let st = Service.stats svc in
      (* Restore-identity gate: every tenant's probe epochs must match its
         private-store materialization byte for byte. *)
      let restore_identical =
        List.for_all
          (fun (s, tn) ->
            let r = List.find (fun f -> f.f_name = s.s_name) references in
            List.length (Service.epochs tn) = session_epochs s ~repeat
            && List.for_all
                 (fun (epoch, expected) ->
                   let _heap, roots = Service.restore tn ~epoch in
                   String.equal (full_body roots) expected)
                 r.f_probes)
          tens
      in
      let shared_pack_bytes =
        let ic = open_in_bin (Service.pack_path path) in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> in_channel_length ic)
      in
      Service.close svc;
      let private_sum =
        List.fold_left (fun a f -> a + f.f_pack_bytes) 0 references
      in
      let epochs = st.Service.committed_epochs in
      { mode = mode_label;
        shards;
        domains;
        tenants = List.length sessions;
        epochs;
        seconds;
        epochs_per_sec =
          (if seconds > 0.0 then float_of_int epochs /. seconds else 0.0);
        p99_latency = percentile 0.99 latencies;
        fsyncs = Atomic.get syncs;
        fsyncs_per_epoch =
          (if epochs > 0 then float_of_int (Atomic.get syncs) /. float_of_int epochs
           else 0.0);
        commit_batches = st.Service.commit_batches;
        dedup_ratio = st.Service.dedup_ratio;
        cross_tenant_dedup =
          (if shared_pack_bytes > 0 then
             float_of_int private_sum /. float_of_int shared_pack_bytes
           else 1.0);
        restore_identical })

let configs =
  [ ("per-epoch", Service.Per_epoch, 1, 1);
    ("group", Service.Group group_policy, 1, 1);
    ("group", Service.Group group_policy, 2, 2);
    ("group", Service.Group group_policy, 4, 4) ]

let measure_all ?(repeat = 3) () =
  let sessions = sessions () in
  let references = List.map (private_reference ~repeat) sessions in
  List.map
    (fun (mode_label, commit, shards, domains) ->
      measure_row ~sessions ~references ~repeat ~mode_label ~commit ~shards
        ~domains)
    configs

(* ---- JSON (BENCH_8.json) ------------------------------------------------- *)

let json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"bench\": \"multi-tenant service ablation\",\n\
       \  \"unit\": \"epochs/second; p99 commit latency in seconds; fsyncs \
        per committed epoch\",\n\
       \  \"host_cores\": %d,\n\
       \  \"rows\": [\n"
       (host_cores ()));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"shards\": %d, \"domains\": %d, \"tenants\": \
            %d, \"epochs\": %d,\n\
           \     \"seconds\": %.6f, \"epochs_per_sec\": %.1f, \
            \"p99_commit_latency\": %.6f,\n\
           \     \"fsyncs\": %d, \"fsyncs_per_epoch\": %.3f, \
            \"commit_batches\": %d,\n\
           \     \"dedup_ratio\": %.3f, \"cross_tenant_dedup\": %.3f, \
            \"restore_identical\": %b}%s\n"
           r.mode r.shards r.domains r.tenants r.epochs r.seconds
           r.epochs_per_sec r.p99_latency r.fsyncs r.fsyncs_per_epoch
           r.commit_batches r.dedup_ratio r.cross_tenant_dedup
           r.restore_identical
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ---- table + checks ------------------------------------------------------ *)

let pp_table ppf rows =
  let table =
    Ickpt_harness.Table.create ~title
      ~columns:
        [ "mode"; "shards"; "domains"; "tenants"; "epochs"; "ep/s"; "p99";
          "fsync/ep"; "batches"; "dedup"; "x-tenant"; "identical" ]
  in
  List.iter
    (fun r ->
      Ickpt_harness.Table.add_row table
        [ r.mode;
          string_of_int r.shards;
          string_of_int r.domains;
          string_of_int r.tenants;
          string_of_int r.epochs;
          Printf.sprintf "%.0f" r.epochs_per_sec;
          Ickpt_harness.Table.cell_seconds r.p99_latency;
          Printf.sprintf "%.2f" r.fsyncs_per_epoch;
          string_of_int r.commit_batches;
          Ickpt_harness.Table.cell_speedup r.dedup_ratio;
          Ickpt_harness.Table.cell_speedup r.cross_tenant_dedup;
          (if r.restore_identical then "yes" else "NO") ])
    rows;
  Format.fprintf ppf "%a@." Ickpt_harness.Table.pp table

let checks rows =
  let open Workload in
  let per_epoch = List.filter (fun r -> r.mode = "per-epoch") rows in
  let grouped = List.filter (fun r -> r.mode = "group") rows in
  [ check ~label:"tenant: every row restores each tenant byte-identically"
      ~ok:(rows <> [] && List.for_all (fun r -> r.restore_identical) rows)
      ~detail:
        "each tenant's probe epochs materialize from the shared pack to the \
         same full-checkpoint bytes as from a private store holding only \
         that tenant";
    check ~label:"tenant: >= 8 tenants of mixed workloads on every row"
      ~ok:(List.for_all (fun r -> r.tenants >= 8) rows)
      ~detail:
        "two instances each of blur, histogram, pagerank and kvlog share \
         the pack";
    check ~label:"tenant: cross-tenant dedup > 1.5x"
      ~ok:(List.for_all (fun r -> r.cross_tenant_dedup > 1.5) rows)
      ~detail:
        "the shared pack is > 1.5x smaller than the sum of the eight \
         private per-tenant packs — identical tenants store their chunks \
         once";
    check ~label:"tenant: group commit fsyncs less than per-epoch commit"
      ~ok:
        (per_epoch <> [] && grouped <> []
        && List.for_all
             (fun g ->
               List.for_all
                 (fun p -> g.fsyncs_per_epoch < p.fsyncs_per_epoch)
                 per_epoch)
             grouped)
      ~detail:
        "one pack sync + one index sync per batch, amortized over every \
         tenant epoch in it, vs two syncs per epoch" ]

let run ~scale ppf =
  let repeat = if scale >= 1.0 then 3 else 1 in
  let rows = measure_all ~repeat () in
  pp_table ppf rows;
  checks rows
