(** Barrier-elision ablation (extension, not in the paper): per-phase
    checkpoint-construction overhead with and without the static
    {!Staticcheck.Barrier_elide} plans, in guarded-specialized mode.

    Two metrics per (workload, phase):
    - wall-clock seconds (best-of-repeats), split into construction and
      guard validation — the timing the JSON records;
    - {!Jspec.Guard} object-visit counts — the deterministic form of the
      same saving (elided runs visit zero objects when every guard is
      statically discharged).

    [ickpt_bench barrier] runs this over the example mini-C workloads
    and writes the rows to [BENCH_4.json]. *)

type row = {
  workload : string;
  phase : string;
  bytes : int;  (** phase checkpoint bytes (identical in both runs) *)
  instrumented_seconds : float;
  instrumented_guard_seconds : float;
  elided_seconds : float;
  elided_guard_seconds : float;
  guard_visits_instrumented : int;  (** objects the runtime guard walked *)
  guard_visits_elided : int;
  bytes_identical : bool;
}

val name : string
val title : string

val reduction : row -> float
(** Percent of (construction + guard) wall-clock removed by elision. *)

val measure : ?repeats:int -> (string * Minic.Ast.program) list -> row list
(** One row per (workload, phase); seconds are per-phase minima over
    [repeats] (default 3) full engine runs. *)

val json : row list -> string
(** The [BENCH_4.json] document for the rows. *)

val pp_table : Format.formatter -> row list -> unit

val checks : row list -> Workload.check list

val run : scale:Workload.scale -> Format.formatter -> Workload.check list
(** Registry entry point over the built-in generator workloads
    ([scale >= 1.0] raises the repeat count). *)
