(** Domain-parallel execution ablation (BENCH_7): for each example
    workload (plus a larger synthetic stencil sized so fan-out has real
    work), the {!Staticcheck.Interfere} schedule is executed at 1, 2 and
    4 domains and each row is gated by the
    {!Ickpt_analysis.Elide_oracle.run_par} sequential-identity oracle —
    chain byte-identity in both modes plus pairwise observed-footprint
    disjointness. Wall-clock speedup is reported per row relative to the
    1-domain execution of the same schedule; the speedup {e check} only
    applies when the host actually has more than one core
    ([host_cores], recorded in the JSON, is
    [Domain.recommended_domain_count ()]) — on a single-core host the
    identity and disjointness gates still run, but no speedup is
    claimed. *)

type row = {
  workload : string;
  domains : int;  (** domains the schedule was built and executed for *)
  par_sweeps : int;  (** sweeps the schedule parallelized *)
  refused : int;  (** sweep refusals (conflicting or unrecognized) *)
  groups : int;  (** phase groups with >= 2 members *)
  par_units : int;  (** parallel units the run actually executed *)
  seq_seconds : float;  (** sequential run, best wall-clock *)
  par_seconds : float;  (** parallel run at [domains], best wall-clock *)
  speedup : float;  (** 1-domain [par_seconds] / this row's *)
  identical : bool;  (** chains byte-identical to sequential, both modes *)
  oracle_ok : bool;  (** {!Ickpt_analysis.Elide_oracle.par_ok} *)
}

val name : string
val title : string

val host_cores : unit -> int

val measure_all : unit -> row list
(** Three rows (1, 2 and 4 domains) per workload: the four
    [examples/workloads/*.mc] programs and the built-in synthetic
    stencil. *)

val json : row list -> string
(** The BENCH_7.json document. *)

val pp_table : Format.formatter -> row list -> unit

val checks : row list -> Workload.check list
(** Oracle and identity pass on every row; something is actually
    parallelized; the conflicting kvlog sweep is refused, not
    parallelized; >= 1.5x speedup at 4 domains somewhere when the host
    has >= 2 cores. *)

val run : scale:Workload.scale -> Format.formatter -> Workload.check list
