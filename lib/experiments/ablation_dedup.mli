(** Content-addressed store ablation (extension, not in the paper): what
    the dedup store buys over the plain segment log, on two kinds of
    workload:

    - the analysis engine over mini-C programs in {e full} checkpointing
      mode — every epoch re-records the whole annotation heap, so chunk
      dedup across epochs should collapse the on-disk footprint;
    - a long pagerank-style fixed-point run (the [examples/pagerank.ml]
      dynamics: change-detecting barriers, convergence) checkpointed
      incrementally for 100+ epochs — there the win is the epoch index:
      [Store.restore ~epoch] folds per-object directories instead of
      replaying the whole chain oldest-to-newest.

    Each row records the dedup ratio (logical bytes over pack bytes on
    disk), and the latency of materializing a mid-run epoch by chain
    replay vs through the store. [ickpt_bench dedup] writes the rows to
    [BENCH_5.json]. *)

type row = {
  workload : string;
  epochs : int;
  chunks : int;  (** distinct chunks on disk *)
  logical_bytes : int;  (** sum of segment bodies over all epochs *)
  physical_bytes : int;  (** pack + index bytes on disk *)
  dedup_ratio : float;  (** logical over pack bytes *)
  target_epoch : int;  (** the mid-run epoch both restores materialize *)
  replay_seconds : float;  (** chain replay (oldest-to-newest accumulate) *)
  store_seconds : float;  (** [Store.restore ~epoch] *)
  speedup : float;  (** replay over store *)
  states_equal : bool;  (** the two restored heaps agree byte-for-byte *)
}

val name : string
val title : string

val measure_engine :
  ?repeats:int -> (string * Minic.Ast.program) list -> row list
(** One row per program: run the analysis engine in full-checkpointing
    mode, store every epoch, restore the middle one both ways. *)

val measure_pagerank :
  ?repeats:int -> ?epochs:int -> ?pages:int -> unit -> row
(** The ≥100-epoch incremental run (defaults: 120 epochs, 300 pages);
    the restored target is epoch [epochs - 10]. *)

val json : row list -> string
(** The [BENCH_5.json] document for the rows. *)

val pp_table : Format.formatter -> row list -> unit

val checks : row list -> Workload.check list
(** Asserts: states always equal; dedup ratio > 1.5 on at least one
    engine workload; store restore beats chain replay on every row with
    100+ epochs. *)

val run : scale:Workload.scale -> Format.formatter -> Workload.check list
(** Registry entry point: built-in generator programs plus the pagerank
    run ([scale] scales the epoch count; 1.0 = 120 epochs, floored at
    12). *)
