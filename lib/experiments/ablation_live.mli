(** Liveness-minimization ablation (BENCH_6): for each example workload
    (plus an all-live control program), incremental checkpoint bytes of
    the unminimized guarded-specialized run vs the minimized run
    ([Engine.analyze ~infer ~minimize]), the tracked shape nodes the
    {!Staticcheck.Live} analysis kept vs dropped, on-disk pack sizes of
    both chains through the content-addressed store, and the
    {!Ickpt_analysis.Elide_oracle.run_live} restore-equivalence verdict
    gating every row. *)

type row = {
  workload : string;
  epochs : int;
  baseline_bytes : int;
  minimized_bytes : int;
  baseline_per_seg : float;
  minimized_per_seg : float;
  reduction : float;
  blocks_total : int;
  blocks_kept : int;
  blocks_dropped : int;
  pack_baseline : int;
  pack_minimized : int;
  live_cells : int;
  resumes : int;
  reads_checked : int;
  oracle_ok : bool;
}

val name : string
val title : string

val measure_all : unit -> row list
(** One row per workload: the four [examples/workloads/*.mc] programs
    and the built-in all-live control. *)

val json : row list -> string
(** The BENCH_6.json document. *)

val pp_table : Format.formatter -> row list -> unit

val checks : row list -> Workload.check list
(** Oracle passes everywhere; >= 10% reduction somewhere; honest zeros
    (no reduction claimed where no block was dropped); the all-live
    control drops nothing; no silently skipped resumes. *)

val run : scale:Workload.scale -> Format.formatter -> Workload.check list
