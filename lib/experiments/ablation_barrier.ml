(* Extension (not in the paper): what does static barrier elision buy?
   Each workload runs in guarded-specialized mode twice — fully
   instrumented, then under the Barrier_elide plans (dead barriers
   rerouted to raw stores, statically discharged guards skipped) — and
   the per-phase difference is the overhead the dirty-region analysis
   removed. The Elide_oracle invariants (byte identity, I8) make the
   comparison meaningful: both runs write the same checkpoints. *)

open Ickpt_analysis

type row = {
  workload : string;
  phase : string;
  bytes : int;  (** phase checkpoint bytes (identical in both runs) *)
  instrumented_seconds : float;
  instrumented_guard_seconds : float;
  elided_seconds : float;
  elided_guard_seconds : float;
  guard_visits_instrumented : int;  (** objects the runtime guard walked *)
  guard_visits_elided : int;
  bytes_identical : bool;
}

let name = "barrier"

let title = "Ablation (extension): static write-barrier elision"

let reduction r =
  let inst = r.instrumented_seconds +. r.instrumented_guard_seconds in
  let elid = r.elided_seconds +. r.elided_guard_seconds in
  if inst <= 0.0 then 0.0 else (inst -. elid) /. inst *. 100.0

(* Best-of-[repeats] per phase, guard work counted once (it is
   deterministic across repeats). *)
let measure ?(repeats = 3) workloads =
  List.concat_map
    (fun (wname, program) ->
      let run ~elide =
        Jspec.Guard.reset_visits ();
        let reports =
          List.init repeats (fun _ ->
              Engine.analyze ~mode:Engine.Specialized ~guard:true ~elide
                program)
        in
        (reports, Jspec.Guard.nodes_visited () / repeats)
      in
      let inst_reports, inst_visits = run ~elide:false in
      let elid_reports, elid_visits = run ~elide:true in
      (* per-phase minimum of [f] across the repeated reports *)
      let best f reports =
        match reports with
        | [] -> []
        | first :: _ ->
            List.mapi
              (fun i (p : Engine.phase_report) ->
                let v =
                  List.fold_left
                    (fun acc (r : Engine.report) ->
                      min acc (f (List.nth r.Engine.phases i)))
                    (f p) reports
                in
                (p.Engine.phase, v))
              first.Engine.phases
      in
      let guard_secs (p : Engine.phase_report) =
        List.fold_left
          (fun acc s -> acc +. s.Engine.guard_seconds)
          0.0 p.Engine.stats
      in
      let inst_ckp = best Engine.phase_ckp_seconds inst_reports in
      let inst_guard = best guard_secs inst_reports in
      let elid_ckp = best Engine.phase_ckp_seconds elid_reports in
      let elid_guard = best guard_secs elid_reports in
      let phase_of (r : Engine.report) pname =
        List.find (fun (p : Engine.phase_report) -> p.Engine.phase = pname)
          r.Engine.phases
      in
      List.map
        (fun (pname, inst_s) ->
          let assoc l = List.assoc pname l in
          let inst_r = List.hd inst_reports and elid_r = List.hd elid_reports in
          let b_inst = Engine.phase_bytes (phase_of inst_r pname) in
          let b_elid = Engine.phase_bytes (phase_of elid_r pname) in
          { workload = wname;
            phase = pname;
            bytes = b_inst;
            instrumented_seconds = inst_s;
            instrumented_guard_seconds = assoc inst_guard;
            elided_seconds = assoc elid_ckp;
            elided_guard_seconds = assoc elid_guard;
            guard_visits_instrumented = inst_visits;
            guard_visits_elided = elid_visits;
            bytes_identical = b_inst = b_elid })
        inst_ckp)
    workloads

(* ---- JSON (BENCH_4.json) -------------------------------------------------- *)

let json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\n  \"bench\": \"barrier-elision ablation\",\n  \"unit\": \"seconds \
     (best-of-repeats per phase)\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"phase\": %S, \"bytes\": %d,\n\
           \     \"instrumented_seconds\": %.9f, \
            \"instrumented_guard_seconds\": %.9f,\n\
           \     \"elided_seconds\": %.9f, \"elided_guard_seconds\": %.9f,\n\
           \     \"guard_visits_instrumented\": %d, \
            \"guard_visits_elided\": %d,\n\
           \     \"reduction_pct\": %.2f, \"bytes_identical\": %b}%s\n"
           r.workload r.phase r.bytes r.instrumented_seconds
           r.instrumented_guard_seconds r.elided_seconds
           r.elided_guard_seconds r.guard_visits_instrumented
           r.guard_visits_elided (reduction r) r.bytes_identical
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ---- table + checks ------------------------------------------------------- *)

let checks rows =
  let open Workload in
  [ check ~label:"barrier: elision never changes checkpoint bytes"
      ~ok:(List.for_all (fun r -> r.bytes_identical) rows)
      ~detail:
        "instrumented and elided runs write identical per-phase byte \
         counts (the oracle checks full byte identity)";
    check ~label:"barrier: statically discharged guards never run"
      ~ok:(List.for_all (fun r -> r.guard_visits_elided = 0) rows)
      ~detail:
        "every phase guard is fully discharged by the dirty-region \
         analysis, so the elided runs visit zero objects in Guard.check";
    check ~label:"barrier: guard work removed on every phase"
      ~ok:
        (rows <> []
        && List.for_all (fun r -> r.guard_visits_instrumented > 0) rows)
      ~detail:
        "the instrumented runs walk the attribute tree every checkpoint; \
         elision removes all of it";
    check ~label:"barrier: measurable overhead reduction on some phase"
      ~ok:(List.exists (fun r -> reduction r > 0.0) rows)
      ~detail:
        "wall-clock construction + guard time drops on at least one \
         phase (timing-sensitive; the visit counters above are the \
         deterministic form)" ]

let pp_table ppf rows =
  let table =
    Ickpt_harness.Table.create ~title
      ~columns:
        [ "workload"; "phase"; "instrumented"; "guard"; "elided"; "saved" ]
  in
  List.iter
    (fun r ->
      Ickpt_harness.Table.add_row table
        [ r.workload;
          r.phase;
          Ickpt_harness.Table.cell_seconds
            (r.instrumented_seconds +. r.instrumented_guard_seconds);
          Ickpt_harness.Table.cell_seconds r.instrumented_guard_seconds;
          Ickpt_harness.Table.cell_seconds
            (r.elided_seconds +. r.elided_guard_seconds);
          Printf.sprintf "%.1f%%" (reduction r) ])
    rows;
  Format.fprintf ppf "%a@." Ickpt_harness.Table.pp table

let run ~scale ppf =
  let repeats = if scale >= 1.0 then 5 else 3 in
  let rows =
    measure ~repeats
      [ ("image", Minic.Gen.image_program ());
        ("small", Minic.Gen.small_program ()) ]
  in
  pp_table ppf rows;
  checks rows
