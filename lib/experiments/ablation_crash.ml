(* Extension (not in the paper): crash-consistency ablation. The paper
   argues checkpoints are cheap to *take*; this experiment certifies they
   are worth taking — across every simulated power-loss point the durable
   log recovers to a committed prefix of the checkpoint history. The sweep
   dimensions (sync/async sink, policy, compaction, pre-torn resume) match
   the storage features the other experiments exercise. *)

open Ickpt_harness
open Ickpt_faultsim

let name = "crash"

let title = "Ablation (extension): crash-consistency of the checkpoint log"

let run ~scale ppf =
  (* Scale steers how finely each write op is sliced into crash points. *)
  let density = max 1 (int_of_float (4.0 *. scale)) in
  let reports = Crash_sim.run_all ~density () in
  let table =
    Table.create ~title
      ~columns:[ "config"; "crash points"; "injected crashes"; "violations" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.Crash_sim.r_config.Crash_sim.label;
          string_of_int r.Crash_sim.r_points;
          string_of_int r.Crash_sim.r_runs;
          string_of_int (List.length r.Crash_sim.r_violations) ])
    reports;
  Format.fprintf ppf "%a@." Table.pp table;
  List.iter
    (fun r ->
      if not (Crash_sim.ok r) then
        Format.fprintf ppf "%a@." Crash_sim.pp_report r)
    reports;
  let runs = List.fold_left (fun a r -> a + r.Crash_sim.r_runs) 0 reports in
  let bad =
    List.fold_left
      (fun a r -> a + List.length r.Crash_sim.r_violations)
      0 reports
  in
  let open Workload in
  [ check ~label:"crash: every injected crash recovers prefix-consistently"
      ~ok:(bad = 0)
      ~detail:
        (Printf.sprintf "%d crashes over %d configs, %d violations" runs
           (List.length reports) bad);
    check ~label:"crash: sweep covers sync and async sinks"
      ~ok:
        (List.exists (fun r -> r.Crash_sim.r_config.Crash_sim.async) reports
        && List.exists
             (fun r -> not r.Crash_sim.r_config.Crash_sim.async)
             reports)
      ~detail:(Printf.sprintf "%d configs" (List.length reports)) ]
