open Ickpt_core
open Ickpt_cas
open Ickpt_analysis
open Staticcheck

let name = "live"

let title =
  "Liveness-minimization ablation: checkpoint bytes with and without the \
   interprocedural live-region analysis, gated by the restore-equivalence \
   oracle (extension)"

type row = {
  workload : string;
  epochs : int;  (** incremental epochs the oracle compared *)
  baseline_bytes : int;  (** incremental segment bodies, unminimized *)
  minimized_bytes : int;  (** incremental segment bodies, minimized *)
  baseline_per_seg : float;
  minimized_per_seg : float;
  reduction : float;  (** 1 - minimized/baseline incremental bytes; 0 at 0/0 *)
  blocks_total : int;  (** tracked shape nodes across phases, unminimized *)
  blocks_kept : int;  (** tracked shape nodes surviving minimization *)
  blocks_dropped : int;  (** demoted to Clean by the liveness analysis *)
  pack_baseline : int;  (** on-disk pack bytes of the unminimized chain *)
  pack_minimized : int;  (** on-disk pack bytes of the minimized chain *)
  live_cells : int;  (** cells restore-compared by the oracle *)
  resumes : int;  (** resumed executions the oracle completed *)
  reads_checked : int;  (** post-switch reads containment-checked *)
  oracle_ok : bool;  (** Elide_oracle.run_live found no divergence *)
}

(* ---- workload sources ---------------------------------------------------- *)

(* Same probing as the test suites: runtest executes in the test
   directory, dune exec at the workspace root. *)
let example_path file =
  let candidates =
    [ Filename.concat "examples/workloads" file;
      Filename.concat "../examples/workloads" file;
      Filename.concat "../../examples/workloads" file;
      Filename.concat "_build/default/examples/workloads" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith (Printf.sprintf "example workload %s not found" file)

let load_example file =
  let ic = open_in_bin (example_path file) in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Minic.Parser.parse src

(* A control workload where liveness proves nothing: the accumulator is
   read on every round and returned, so every tracked cell is live at
   every boundary. Its row must report zero dropped blocks and zero
   reduction — the honest-zeros check below pins that down. *)
let all_live_src =
  "int s;\n\
   int main() {\n\
  \  int i;\n\
  \  s = 0;\n\
  \  i = 0;\n\
  \  while (i < 8) {\n\
  \    s = s + i;\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return s;\n\
   }\n"

let workloads () =
  List.map
    (fun f -> (Filename.remove_extension f, load_example f))
    [ "blur.mc"; "histogram.mc"; "pagerank.mc"; "kvlog.mc" ]
  @ [ ("all-live", Minic.Parser.parse all_live_src) ]

(* ---- measurement --------------------------------------------------------- *)

let rec tracked_nodes (s : Jspec.Sclass.shape) =
  let self = match s.Jspec.Sclass.status with Jspec.Sclass.Tracked -> 1 | Jspec.Sclass.Clean -> 0 in
  Array.fold_left
    (fun acc c ->
      match c with
      | Jspec.Sclass.Exact s | Jspec.Sclass.Nullable s -> acc + tracked_nodes s
      | Jspec.Sclass.Null_child | Jspec.Sclass.Unknown | Jspec.Sclass.Clean_opaque
        -> acc)
    self s.Jspec.Sclass.children

let tracked_total shapes_of phases =
  List.fold_left
    (fun acc ph ->
      List.fold_left (fun acc (_, s) -> acc + tracked_nodes s) acc
        (shapes_of ph))
    0 phases

let store_files path = [ Store.pack_path path; Store.index_path path ]

let with_store schema ~slug f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ickpt_live_%s.ckpt" slug)
  in
  let clean () =
    List.iter (fun p -> if Sys.file_exists p then Sys.remove p) (store_files path)
  in
  clean ();
  Fun.protect ~finally:clean (fun () -> f (Store.open_ schema ~path))

let pack_bytes ~slug chain =
  with_store (Chain.schema chain) ~slug (fun store ->
      List.iter
        (fun s -> ignore (Store.append_segment store s))
        (Chain.segments chain);
      (Store.stats store).Store.physical_bytes)

let measure (wname, program) =
  let env = Minic.Check.check program in
  let t = Auto_spec.infer env in
  let o = Elide_oracle.run_live ~name:wname program in
  let base =
    Engine.analyze ~infer:true ~mode:Engine.Specialized ~guard:true program
  in
  let min =
    Engine.analyze ~infer:true ~mode:Engine.Specialized ~guard:true ~elide:true
      ~minimize:true program
  in
  let slug =
    String.map (fun c -> if c = '/' || c = '.' then '_' else c) wname
  in
  let total =
    tracked_total (fun ph -> ph.Auto_spec.ph_shapes) t.Auto_spec.a_phases
  in
  let kept =
    tracked_total (fun ph -> ph.Auto_spec.ph_min_shapes) t.Auto_spec.a_phases
  in
  let per_seg b =
    if o.Elide_oracle.lw_epochs = 0 then 0.0
    else float_of_int b /. float_of_int o.Elide_oracle.lw_epochs
  in
  let bb = o.Elide_oracle.lw_baseline_bytes in
  let mb = o.Elide_oracle.lw_minimized_bytes in
  { workload = wname;
    epochs = o.Elide_oracle.lw_epochs;
    baseline_bytes = bb;
    minimized_bytes = mb;
    baseline_per_seg = per_seg bb;
    minimized_per_seg = per_seg mb;
    reduction =
      (if bb = 0 then 0.0 else 1.0 -. (float_of_int mb /. float_of_int bb));
    blocks_total = total;
    blocks_kept = kept;
    blocks_dropped = total - kept;
    pack_baseline = pack_bytes ~slug:(slug ^ "_base") base.Engine.chain;
    pack_minimized = pack_bytes ~slug:(slug ^ "_min") min.Engine.chain;
    live_cells = o.Elide_oracle.lw_live_cells;
    resumes = o.Elide_oracle.lw_resumes;
    reads_checked = o.Elide_oracle.lw_reads_checked;
    oracle_ok = Elide_oracle.live_ok o }

let measure_all () = List.map measure (workloads ())

(* ---- JSON (BENCH_6.json) ------------------------------------------------- *)

let json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "{\n  \"bench\": \"liveness-minimization ablation\",\n  \"unit\": \
     \"incremental segment-body bytes; tracked shape nodes\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"epochs\": %d,\n\
           \     \"baseline_bytes\": %d, \"minimized_bytes\": %d,\n\
           \     \"baseline_bytes_per_segment\": %.2f, \
            \"minimized_bytes_per_segment\": %.2f,\n\
           \     \"reduction\": %.4f,\n\
           \     \"blocks_total\": %d, \"blocks_kept\": %d, \
            \"blocks_dropped\": %d,\n\
           \     \"pack_baseline_bytes\": %d, \"pack_minimized_bytes\": %d,\n\
           \     \"live_cells_compared\": %d, \"resumes\": %d, \
            \"reads_containment_checked\": %d,\n\
           \     \"oracle_ok\": %b}%s\n"
           r.workload r.epochs r.baseline_bytes r.minimized_bytes
           r.baseline_per_seg r.minimized_per_seg r.reduction r.blocks_total
           r.blocks_kept r.blocks_dropped r.pack_baseline r.pack_minimized
           r.live_cells r.resumes r.reads_checked r.oracle_ok
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ---- table + checks ------------------------------------------------------ *)

let pp_table ppf rows =
  let table =
    Ickpt_harness.Table.create ~title
      ~columns:
        [ "workload"; "epochs"; "inc base"; "inc min"; "reduction";
          "kept/total"; "pack base"; "pack min"; "oracle" ]
  in
  List.iter
    (fun r ->
      Ickpt_harness.Table.add_row table
        [ r.workload;
          string_of_int r.epochs;
          Ickpt_harness.Table.cell_bytes r.baseline_bytes;
          Ickpt_harness.Table.cell_bytes r.minimized_bytes;
          Printf.sprintf "%.1f%%" (100.0 *. r.reduction);
          Printf.sprintf "%d/%d" r.blocks_kept r.blocks_total;
          Ickpt_harness.Table.cell_bytes r.pack_baseline;
          Ickpt_harness.Table.cell_bytes r.pack_minimized;
          (if r.oracle_ok then "ok" else "FAIL") ])
    rows;
  Format.fprintf ppf "%a@." Ickpt_harness.Table.pp table

let checks rows =
  let open Workload in
  [ check ~label:"live: restore-equivalence oracle passes on every workload"
      ~ok:(rows <> [] && List.for_all (fun r -> r.oracle_ok) rows)
      ~detail:
        "every epoch of every minimized chain restores, resumes, and \
         contains its post-switch reads per the static live regions";
    check ~label:"live: >= 10% incremental-byte reduction on >= 1 workload"
      ~ok:(List.exists (fun r -> r.reduction >= 0.10) rows)
      ~detail:
        "dropping dead dirty blocks shrinks the per-segment checkpoint \
         payload by at least a tenth somewhere";
    check ~label:"live: honest zeros - reduction only where blocks dropped"
      ~ok:
        (List.for_all
           (fun r ->
             if r.blocks_dropped = 0 then r.reduction <= 0.0001
             else r.reduction > 0.0 || r.baseline_bytes = 0)
           rows)
      ~detail:
        "a row that demotes no tracked block claims no byte reduction; \
         liveness that proves nothing saves nothing";
    check ~label:"live: the all-live control drops nothing"
      ~ok:
        (List.exists
           (fun r -> r.workload = "all-live" && r.blocks_dropped = 0)
           rows)
      ~detail:
        "the accumulator workload keeps every tracked cell live at every \
         boundary, so minimization must be the identity on it";
    check ~label:"live: every oracle row exercised resumes and reads"
      ~ok:
        (List.for_all
           (fun r -> r.epochs = 0 || (r.resumes > 0 && r.live_cells >= 0))
           rows)
      ~detail:
        "no silent caps: each workload with incremental epochs completed \
         resumed executions rather than skipping the expensive check" ]

let run ~scale ppf =
  ignore (scale : Workload.scale);
  let rows = measure_all () in
  pp_table ppf rows;
  checks rows
