(* FNV-1a over bytes, with the standard 64-bit parameters. Native-int
   multiplication wraps mod 2^63 (on 64-bit platforms), which simply folds
   the top bit away; the result keeps FNV's distribution properties at 63
   bits and stays an immediate (unboxed) value — keys go straight into
   Hashtbls and varints. *)

(* 0xcbf29ce484222325 exceeds max_int, so it is written as an Int64 and
   truncated; Int64.to_int keeps the low 63 bits, which is exactly the
   mod-2^63 fold the rest of the arithmetic performs anyway. *)
let init = Int64.to_int 0xcbf29ce484222325L

let prime = 0x100000001b3

let sub ?(h = init) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Hash64.sub";
  let h = ref h in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * prime
  done;
  !h

let string ?h s = sub ?h s ~pos:0 ~len:(String.length s)

let bytes ?h b = string ?h (Bytes.unsafe_to_string b)

let to_hex k = Printf.sprintf "%016x" k
