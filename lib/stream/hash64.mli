(** Content hashing for the chunk store: FNV-1a with the 64-bit constants,
    folded into OCaml's native [int] (arithmetic is mod 2{^63} on 64-bit
    platforms). CRC-32 ({!Crc32}) detects {e accidental} corruption of a
    frame; chunk keys instead need a hash wide enough that two distinct
    chunk bodies colliding is negligible over a store's lifetime — 63 bits
    of FNV-1a gives a ~2{^-63} per-pair collision probability, and the
    store verifies dedup hits byte-for-byte anyway (see
    [Ickpt_cas.Store]), so a collision is detected, never silent. *)

val init : int
(** The FNV-1a offset basis (folded to the native int width). *)

val string : ?h:int -> string -> int
(** [string s] hashes all of [s]; [?h] continues a running hash, so
    [string ~h:(string a) b = string (a ^ b)]. *)

val sub : ?h:int -> string -> pos:int -> len:int -> int
(** Hash of the substring [s.[pos .. pos+len-1]].
    @raise Invalid_argument on an out-of-range window. *)

val bytes : ?h:int -> bytes -> int

val to_hex : int -> string
(** Fixed-width (16 hex digit) rendering of a key, for logs and the
    [ickpt_store inspect] output. *)
