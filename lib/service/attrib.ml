open Ickpt_core
open Ickpt_stream
open Ickpt_cas

type row = {
  a_tenant : int;
  a_name : string;
  a_epochs : int;
  a_chunks : int;
  a_owned : int;
  a_shared : int;
  a_logical_bytes : int;
  a_private_bytes : int;
  a_saved_bytes : int;
}

let is_service_store ?(vfs = Vfs.real) path =
  vfs.Vfs.exists (Service.meta_path path)

let rows ?(vfs = Vfs.real) ~path () =
  let shards =
    match
      (* Re-read the meta through the Service codec indirectly: the shard
         count is whatever files exist if the meta is unreadable. *)
      if vfs.Vfs.exists (Service.meta_path path) then
        let raw = vfs.Vfs.read_file (Service.meta_path path) in
        let inp = In_stream.of_string_at raw ~pos:0 in
        let m = In_stream.read_fixed32 inp in
        if m <> 0x534b4349 then None
        else begin
          ignore (In_stream.read_byte inp : int);
          Some (In_stream.read_int inp)
        end
      else None
    with
    | Some n when n >= 1 -> n
    | Some _ | None ->
        let rec count i =
          if vfs.Vfs.exists (Service.shard_index_path path i) then count (i + 1)
          else i
        in
        max 1 (count 0)
    | exception In_stream.Corrupt _ -> 1
    | exception Invalid_argument _ -> 1
  in
  let pack = Pack.open_ ~vfs (Service.pack_path path) in
  let entries =
    List.concat
      (List.init shards (fun i ->
           fst (Epoch_index.load_mux vfs (Service.shard_index_path path i))))
  in
  let names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let catalog_file = Service.catalog_path path in
  if vfs.Vfs.exists catalog_file then begin
    (* The catalog codec is private to Service; walk it through a scratch
       service-free decode: magic, version, id, name, crc. *)
    let raw = vfs.Vfs.read_file catalog_file in
    let len = String.length raw in
    let rec go pos =
      if pos >= len then ()
      else
        match
          let inp = In_stream.of_string_at raw ~pos in
          let m = In_stream.read_fixed32 inp in
          if m <> 0x544b4349 then raise (In_stream.Corrupt "bad magic");
          ignore (In_stream.read_byte inp : int);
          let id = In_stream.read_int inp in
          let name = In_stream.read_string inp in
          ignore (In_stream.read_fixed32 inp : int);
          (id, name, In_stream.pos inp)
        with
        | id, name, next ->
            if not (Hashtbl.mem names id) then Hashtbl.replace names id name;
            go next
        | exception In_stream.Corrupt _ -> ()
        | exception Invalid_argument _ -> ()
    in
    go 0
  end;
  (* Per chunk: the set of tenants referencing it (distinctly). *)
  let referers : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let tenant_chunks : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let tenant_epochs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let tenant_logical : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl id n =
    Hashtbl.replace tbl id (n + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  List.iter
    (fun (m : Epoch_index.mux_entry) ->
      let id = m.m_tenant in
      bump tenant_epochs id 1;
      let mine =
        match Hashtbl.find_opt tenant_chunks id with
        | Some h -> h
        | None ->
            let h = Hashtbl.create 64 in
            Hashtbl.replace tenant_chunks id h;
            h
      in
      List.iter
        (fun k ->
          if Pack.mem pack k then bump tenant_logical id (Pack.chunk_len pack k);
          Hashtbl.replace mine k ();
          let who =
            match Hashtbl.find_opt referers k with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 4 in
                Hashtbl.replace referers k h;
                h
          in
          Hashtbl.replace who id ())
        m.m_entry.chunks)
    entries;
  let ids =
    List.sort_uniq compare
      (Hashtbl.fold (fun id _ acc -> id :: acc) tenant_epochs []
      @ Hashtbl.fold (fun id _ acc -> id :: acc) names [])
  in
  let rows =
    List.map
      (fun id ->
        let mine =
          Option.value ~default:(Hashtbl.create 1)
            (Hashtbl.find_opt tenant_chunks id)
        in
        let owned = ref 0
        and shared = ref 0
        and private_bytes = ref 0
        and saved = ref 0 in
        Hashtbl.iter
          (fun k () ->
            let n =
              match Hashtbl.find_opt referers k with
              | Some h -> Hashtbl.length h
              | None -> 1
            in
            let len = if Pack.mem pack k then Pack.chunk_len pack k else 0 in
            private_bytes := !private_bytes + len;
            if n <= 1 then incr owned
            else begin
              incr shared;
              saved := !saved + (len * (n - 1) / n)
            end)
          mine;
        { a_tenant = id;
          a_name =
            (match Hashtbl.find_opt names id with
            | Some n -> n
            | None -> Hash64.to_hex id);
          a_epochs = Option.value ~default:0 (Hashtbl.find_opt tenant_epochs id);
          a_chunks = Hashtbl.length mine;
          a_owned = !owned;
          a_shared = !shared;
          a_logical_bytes =
            Option.value ~default:0 (Hashtbl.find_opt tenant_logical id);
          a_private_bytes = !private_bytes;
          a_saved_bytes = !saved })
      ids
  in
  List.sort (fun a b -> compare a.a_name b.a_name) rows
