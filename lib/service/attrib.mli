(** Per-tenant attribution on a shared multi-tenant pack: who owns which
    chunks, who shares, and how many bytes sharing saved each tenant —
    computed from the raw files alone (pack, shard indexes, catalog), so
    [ickpt_store inspect] can report it without schemas or open tenants. *)

open Ickpt_core

type row = {
  a_tenant : int;  (** tenant id *)
  a_name : string;  (** catalog name, or the hex id if uncataloged *)
  a_epochs : int;  (** committed epochs *)
  a_chunks : int;  (** distinct chunks referenced *)
  a_owned : int;  (** of those, referenced by this tenant alone *)
  a_shared : int;  (** referenced by at least one other tenant too *)
  a_logical_bytes : int;  (** chunk bytes summed over every epoch *)
  a_private_bytes : int;  (** pack bytes a private store would need
                              (distinct chunks, bodies only) *)
  a_saved_bytes : int;  (** equal-split share of the bytes cross-tenant
                            sharing saved: for a chunk referenced by [k]
                            tenants, each is credited [len * (k-1) / k] *)
}

val is_service_store : ?vfs:Vfs.t -> string -> bool
(** Does [path] root a multi-tenant service store (meta file present)? *)

val rows : ?vfs:Vfs.t -> path:string -> unit -> row list
(** One row per cataloged or committing tenant, sorted by name. Reads the
    intact prefixes of all files; never writes. *)
