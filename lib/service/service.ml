open Ickpt_runtime
open Ickpt_core
open Ickpt_stream
open Ickpt_cas

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let pack_path path = path ^ ".pack"

let shard_index_path path i = Printf.sprintf "%s.shard%d.idx" path i

let catalog_path path = path ^ ".tenants"

let meta_path path = path ^ ".svc"

let tenant_id name = Hash64.string name

type commit_mode =
  | Per_epoch
  | Group of Async_writer.Batch.policy
  | Group_async of Async_writer.Batch.policy

type tenant = {
  t_svc : t;
  t_id : int;
  t_name : string;
  t_shard : int;
  t_schema : Schema.t;
  t_chain : Chain.t;
  mutable t_entries : Epoch_index.entry list;  (* committed, oldest first *)
}

and item = {
  it_tenant : tenant;
  it_kind : Segment.kind;
  it_seq : int;
  it_roots : int list;
  it_chunks : Chunk.t list;
  it_body_len : int;
  it_enq : float;
}

and shard_state = {
  s_index_file : string;
  mutable s_committed : Epoch_index.mux_entry list;  (* oldest first *)
  mutable s_pending : item list;  (* oldest first; inline Group mode *)
  mutable s_pending_bytes : int;
  mutable s_batch : item Async_writer.Batch.t option;  (* Group_async *)
}

and t = {
  vfs : Vfs.t;
  root : string;
  shards : int;
  records_per_chunk : int;
  policy : Policy.t;
  commit : commit_mode;
  pack : Pack.t;
  lock : Mutex.t;
  shard_tbl : shard_state array;
  open_tenants : (int, tenant) Hashtbl.t;
  mutable catalog : (int * string) list;  (* oldest first *)
  mutable collided : Store.collision list;  (* newest first *)
  mutable commit_batches : int;
  mutable committed_epochs : int;
  mutable latencies : float list;
  mutable closed : bool;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let check_open t = if t.closed then error "service is closed"

(* ------------------------------------------------------------------ *)
(* Catalog and meta files.                                             *)

let catalog_magic = 0x544b4349 (* "ICKT" read as LE bytes *)

let meta_magic = 0x534b4349 (* "ICKS" read as LE bytes *)

let version = 1

let encode_catalog_entry (id, name) =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d catalog_magic;
  Out_stream.write_byte d version;
  Out_stream.write_int d id;
  Out_stream.write_string d name;
  let crc = Crc32.string (Out_stream.contents d) in
  Out_stream.write_fixed32 d crc;
  Out_stream.contents d

let decode_catalog_entry s ~pos =
  let inp = In_stream.of_string_at s ~pos in
  let m = In_stream.read_fixed32 inp in
  if m <> catalog_magic then
    raise (In_stream.Corrupt (Printf.sprintf "bad catalog magic %#x" m));
  let v = In_stream.read_byte inp in
  if v <> version then
    raise (In_stream.Corrupt (Printf.sprintf "bad catalog version %d" v));
  let id = In_stream.read_int inp in
  let name = In_stream.read_string inp in
  let body_end = In_stream.pos inp in
  let crc = In_stream.read_fixed32 inp in
  if crc <> Crc32.sub s ~pos ~len:(body_end - pos) then
    raise (In_stream.Corrupt "catalog crc mismatch");
  ((id, name), In_stream.pos inp)

let load_catalog vfs path =
  let raw = if vfs.Vfs.exists path then vfs.Vfs.read_file path else "" in
  let len = String.length raw in
  let rec go acc pos =
    if pos >= len then (List.rev acc, pos)
    else
      match decode_catalog_entry raw ~pos with
      | e, next -> go (e :: acc) next
      | exception In_stream.Corrupt _ -> (List.rev acc, pos)
      | exception Invalid_argument _ -> (List.rev acc, pos)
  in
  let entries, valid = go [] 0 in
  if valid < len then vfs.Vfs.truncate path ~len:valid;
  entries

let append_catalog vfs path entry =
  let w = vfs.Vfs.open_append path in
  (try
     w.Vfs.write (encode_catalog_entry entry);
     w.Vfs.sync ()
   with exn ->
     w.Vfs.close ();
     raise exn);
  w.Vfs.close ()

let encode_meta ~shards ~records_per_chunk =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d meta_magic;
  Out_stream.write_byte d version;
  Out_stream.write_int d shards;
  Out_stream.write_int d records_per_chunk;
  let crc = Crc32.string (Out_stream.contents d) in
  Out_stream.write_fixed32 d crc;
  Out_stream.contents d

let load_meta vfs path =
  if not (vfs.Vfs.exists path) then None
  else
    let raw = vfs.Vfs.read_file path in
    match
      let inp = In_stream.of_string_at raw ~pos:0 in
      let m = In_stream.read_fixed32 inp in
      if m <> meta_magic then raise (In_stream.Corrupt "bad meta magic");
      let v = In_stream.read_byte inp in
      if v <> version then raise (In_stream.Corrupt "bad meta version");
      let shards = In_stream.read_int inp in
      let records_per_chunk = In_stream.read_int inp in
      let body_end = In_stream.pos inp in
      let crc = In_stream.read_fixed32 inp in
      if crc <> Crc32.sub raw ~pos:0 ~len:body_end then
        raise (In_stream.Corrupt "meta crc mismatch");
      (shards, records_per_chunk)
    with
    | meta -> Some meta
    | exception In_stream.Corrupt _ -> None
    | exception Invalid_argument _ -> None

let write_meta vfs path ~shards ~records_per_chunk =
  let w = vfs.Vfs.open_trunc path in
  (try
     w.Vfs.write (encode_meta ~shards ~records_per_chunk);
     w.Vfs.sync ()
   with exn ->
     w.Vfs.close ();
     raise exn);
  w.Vfs.close ()

(* ------------------------------------------------------------------ *)
(* Open: sweep, truncate, validate per shard.                          *)

(* Longest valid prefix of a shard's multiplexed entries: per-tenant
   epochs contiguous with the tenant's first entry full, every chunk in
   the pack, directory entries in range. Crash-consistent operation never
   violates this (the pack batch is synced before the index batch), so
   rejections are defensive — but a rejection cuts the whole shard file
   there, preserving the prefix property for every tenant in it. *)
let valid_mux_prefix pack ms =
  let expected : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec go acc = function
    | [] -> List.rev acc
    | (m : Epoch_index.mux_entry) :: rest ->
        let e = m.m_entry in
        let ok =
          (match Hashtbl.find_opt expected m.m_tenant with
          | None -> e.kind = Segment.Full && e.epoch >= 0
          | Some n -> e.epoch = n)
          && List.for_all (fun k -> Pack.mem pack k) e.chunks
          &&
          let chunk_arr = Array.of_list e.chunks in
          List.for_all
            (fun { Epoch_index.d_chunk; d_off; _ } ->
              d_chunk >= 0
              && d_chunk < Array.length chunk_arr
              && d_off >= 0
              && d_off < Pack.chunk_len pack chunk_arr.(d_chunk))
            e.dir
        in
        if ok then begin
          Hashtbl.replace expected m.m_tenant (e.epoch + 1);
          go (m :: acc) rest
        end
        else List.rev acc
  in
  go [] ms

let mux_byte_length ms =
  List.fold_left
    (fun acc m -> acc + String.length (Epoch_index.encode_mux m))
    0 ms

let open_ ?(vfs = Vfs.real) ?(shards = Shard.default_count)
    ?(records_per_chunk = Chunk.default_records_per_chunk)
    ?(policy = Policy.Full_every 8) ?(commit = Per_epoch) ~path:root () =
  if shards < 1 then invalid_arg "Service.open_: shards < 1";
  if records_per_chunk < 1 then
    invalid_arg "Service.open_: records_per_chunk < 1";
  let shards, records_per_chunk =
    match load_meta vfs (meta_path root) with
    | Some persisted -> persisted
    | None ->
        write_meta vfs (meta_path root) ~shards ~records_per_chunk;
        (shards, records_per_chunk)
  in
  let pack = Pack.open_ ~vfs (pack_path root) in
  let catalog = load_catalog vfs (catalog_path root) in
  let shard_tbl =
    Array.init shards (fun i ->
        let s_index_file = shard_index_path root i in
        let loaded, valid_len = Epoch_index.load_mux vfs s_index_file in
        let file_len =
          if vfs.Vfs.exists s_index_file then
            String.length (vfs.Vfs.read_file s_index_file)
          else 0
        in
        if valid_len < file_len then
          vfs.Vfs.truncate s_index_file ~len:valid_len;
        let committed = valid_mux_prefix pack loaded in
        if List.length committed < List.length loaded then
          vfs.Vfs.truncate s_index_file ~len:(mux_byte_length committed);
        { s_index_file;
          s_committed = committed;
          s_pending = [];
          s_pending_bytes = 0;
          s_batch = None })
  in
  let t =
    { vfs;
      root;
      shards;
      records_per_chunk;
      policy;
      commit;
      pack;
      lock = Mutex.create ();
      shard_tbl;
      open_tenants = Hashtbl.create 16;
      catalog;
      collided = [];
      commit_batches = 0;
      committed_epochs = 0;
      latencies = [];
      closed = false }
  in
  t

(* ------------------------------------------------------------------ *)
(* Committing.                                                         *)

(* Commit a batch of items (all from [sstate]'s shard) as one group: one
   pack append (write + sync) covering every fresh chunk of every item,
   then one index batch append (write + sync) — the shared commit point.
   Caller holds the lock. *)
let commit_batch_locked t sstate items =
  match items with
  | [] -> ()
  | _ ->
      let pending : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let resolved_items =
        List.map
          (fun it ->
            ( it,
              List.map
                (fun (c : Chunk.t) -> (c, Pack.resolve t.pack ~pending c.data))
                it.it_chunks ))
          items
      in
      let fresh =
        List.concat_map
          (fun (_, rs) ->
            List.filter_map
              (fun ((c : Chunk.t), r) ->
                match r with
                | Pack.Fresh { key; _ } -> Some (key, c.data)
                | Pack.Dup _ -> None)
              rs)
          resolved_items
      in
      ignore (Pack.append_batch t.pack fresh : int);
      let muxes =
        List.map
          (fun (it, rs) ->
            let dir =
              List.concat
                (List.mapi
                   (fun i (c : Chunk.t) ->
                     List.map
                       (fun (id, off) ->
                         { Epoch_index.d_id = id; d_chunk = i; d_off = off })
                       c.records)
                   it.it_chunks)
            in
            let chunks =
              List.map
                (fun (_, r) ->
                  match r with
                  | Pack.Dup k -> k
                  | Pack.Fresh { key; _ } -> key)
                rs
            in
            { Epoch_index.m_tenant = it.it_tenant.t_id;
              m_entry =
                { Epoch_index.epoch = it.it_seq;
                  kind = it.it_kind;
                  roots = it.it_roots;
                  chunks;
                  dir } })
          resolved_items
      in
      Epoch_index.append_mux_batch t.vfs sstate.s_index_file muxes;
      (* Durable; mirror in memory. *)
      sstate.s_committed <- sstate.s_committed @ muxes;
      List.iter2
        (fun (it, rs) (m : Epoch_index.mux_entry) ->
          it.it_tenant.t_entries <- it.it_tenant.t_entries @ [ m.m_entry ];
          List.iter
            (fun ((c : Chunk.t), r) ->
              match r with
              | Pack.Fresh { key; attempt } when attempt > 0 ->
                  t.collided <-
                    { Store.col_epoch = it.it_seq;
                      col_content_key = c.key;
                      col_stored_key = key;
                      col_attempt = attempt }
                    :: t.collided
              | _ -> ())
            rs)
        resolved_items muxes;
      let now = Unix.gettimeofday () in
      List.iter
        (fun it -> t.latencies <- (now -. it.it_enq) :: t.latencies)
        items;
      t.commit_batches <- t.commit_batches + 1;
      t.committed_epochs <- t.committed_epochs + List.length items

let flush t =
  check_open t;
  match t.commit with
  | Per_epoch -> ()
  | Group _ ->
      with_lock t (fun () ->
          Array.iter
            (fun s ->
              let batch = s.s_pending in
              s.s_pending <- [];
              s.s_pending_bytes <- 0;
              commit_batch_locked t s batch)
            t.shard_tbl)
  | Group_async _ ->
      Array.iter
        (fun s -> Option.iter Async_writer.Batch.flush s.s_batch)
        t.shard_tbl

(* Lazily started (under the lock — submits may race from several
   domains) so the batch sink can close over [t]. *)
let ensure_batches t =
  match t.commit with
  | Per_epoch | Group _ -> ()
  | Group_async policy ->
      with_lock t (fun () ->
          Array.iter
            (fun s ->
              if s.s_batch = None then
                s.s_batch <-
                  Some
                    (Async_writer.Batch.create ~policy
                       ~size:(fun it -> it.it_body_len)
                       ~sink:(fun items ->
                         with_lock t (fun () -> commit_batch_locked t s items))
                       ()))
            t.shard_tbl)

let submit tenant (seg : Segment.t) =
  let t = tenant.t_svc in
  check_open t;
  let chunks =
    Chunk.split ~records_per_chunk:t.records_per_chunk tenant.t_schema
      seg.body
  in
  let it =
    { it_tenant = tenant;
      it_kind = seg.kind;
      it_seq = seg.seq;
      it_roots = seg.roots;
      it_chunks = chunks;
      it_body_len = String.length seg.body;
      it_enq = Unix.gettimeofday () }
  in
  let s = t.shard_tbl.(tenant.t_shard) in
  match t.commit with
  | Per_epoch -> with_lock t (fun () -> commit_batch_locked t s [ it ])
  | Group p ->
      with_lock t (fun () ->
          s.s_pending <- s.s_pending @ [ it ];
          s.s_pending_bytes <- s.s_pending_bytes + it.it_body_len;
          if
            List.length s.s_pending >= p.Async_writer.Batch.max_items
            || s.s_pending_bytes >= p.Async_writer.Batch.max_bytes
          then begin
            let batch = s.s_pending in
            s.s_pending <- [];
            s.s_pending_bytes <- 0;
            commit_batch_locked t s batch
          end)
  | Group_async _ -> (
      ensure_batches t;
      match s.s_batch with
      | Some b -> Async_writer.Batch.enqueue b it
      | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Tenants.                                                            *)

let segment_of_entry t (e : Epoch_index.entry) =
  let body = String.concat "" (List.map (fun k -> Pack.read t.pack k) e.chunks) in
  { Segment.kind = e.kind; seq = e.epoch; roots = e.roots; body }

let open_tenant t schema ~name =
  check_open t;
  let id = tenant_id name in
  with_lock t (fun () ->
      match Hashtbl.find_opt t.open_tenants id with
      | Some tn ->
          if not (String.equal tn.t_name name) then
            error "tenant id collision: %S and %S hash to %s" name tn.t_name
              (Hash64.to_hex id);
          tn
      | None ->
          (match List.assoc_opt id t.catalog with
          | Some other when not (String.equal other name) ->
              error "tenant id collision: %S and %S hash to %s" name other
                (Hash64.to_hex id)
          | Some _ -> ()
          | None ->
              append_catalog t.vfs (catalog_path t.root) (id, name);
              t.catalog <- t.catalog @ [ (id, name) ]);
          let shard = Shard.of_id ~shards:t.shards id in
          let entries =
            List.filter_map
              (fun (m : Epoch_index.mux_entry) ->
                if m.m_tenant = id then Some m.m_entry else None)
              t.shard_tbl.(shard).s_committed
          in
          let chain = Chain.create schema in
          (match entries with
          | [] -> ()
          | _ ->
              (* Resume the chain from the newest full epoch: a full is
                 self-contained, so the chain accepts it at any seq and the
                 incrementals after it replay on top. *)
              let base =
                List.fold_left
                  (fun acc (e : Epoch_index.entry) ->
                    if e.kind = Segment.Full then e.epoch else acc)
                  (match entries with e :: _ -> e.epoch | [] -> 0)
                  entries
              in
              List.iter
                (fun (e : Epoch_index.entry) ->
                  if e.epoch >= base then
                    Chain.append chain (segment_of_entry t e))
                entries);
          let tn =
            { t_svc = t;
              t_id = id;
              t_name = name;
              t_shard = shard;
              t_schema = schema;
              t_chain = chain;
              t_entries = entries }
          in
          Hashtbl.replace t.open_tenants id tn;
          tn)

let tenant_name tn = tn.t_name

let tenant_shard tn = tn.t_shard

let checkpoint tenant roots =
  let t = tenant.t_svc in
  check_open t;
  let taken =
    match Policy.decide t.policy tenant.t_chain with
    | Segment.Full -> Chain.take_full tenant.t_chain roots
    | Segment.Incremental -> Chain.take_incremental tenant.t_chain roots
  in
  submit tenant taken.Chain.segment;
  taken.Chain.segment.Segment.seq

let append tenant seg =
  let t = tenant.t_svc in
  check_open t;
  Chain.append tenant.t_chain seg;
  submit tenant seg;
  seg.Segment.seq

let recover tenant = Chain.recover tenant.t_chain

let epochs tenant =
  with_lock tenant.t_svc (fun () ->
      List.map (fun (e : Epoch_index.entry) -> e.epoch) tenant.t_entries)

let latest_epoch tenant =
  with_lock tenant.t_svc (fun () ->
      match List.rev tenant.t_entries with
      | [] -> None
      | e :: _ -> Some e.Epoch_index.epoch)

let restore tenant ~epoch =
  let t = tenant.t_svc in
  check_open t;
  flush t;
  with_lock t (fun () ->
      if
        not
          (List.exists
             (fun (e : Epoch_index.entry) -> e.epoch = epoch)
             tenant.t_entries)
      then error "tenant %S: unknown epoch %d" tenant.t_name epoch;
      Dir.restore
        (Dir.reader t.pack tenant.t_schema)
        ~entries:tenant.t_entries ~epoch)

let evict t ~name =
  check_open t;
  flush t;
  with_lock t (fun () -> Hashtbl.remove t.open_tenants (tenant_id name))

let close t =
  if not t.closed then begin
    flush t;
    Array.iter
      (fun s ->
        Option.iter Async_writer.Batch.close s.s_batch;
        s.s_batch <- None)
      t.shard_tbl;
    t.closed <- true
  end

let tenants t = with_lock t (fun () -> t.catalog)

let collisions t = with_lock t (fun () -> List.rev t.collided)

let drain_latencies t =
  with_lock t (fun () ->
      let ls = t.latencies in
      t.latencies <- [];
      ls)

(* ------------------------------------------------------------------ *)
(* Stats and integrity.                                                *)

type stats = {
  n_tenants : int;
  n_open : int;
  n_epochs : int;
  n_chunks : int;
  logical_bytes : int;
  pack_bytes : int;
  dedup_ratio : float;
  commit_batches : int;
  committed_epochs : int;
  collisions : int;
}

let stats t =
  with_lock t (fun () ->
      let n_epochs = ref 0 and logical = ref 0 in
      Array.iter
        (fun s ->
          List.iter
            (fun (m : Epoch_index.mux_entry) ->
              incr n_epochs;
              List.iter
                (fun k -> logical := !logical + Pack.chunk_len t.pack k)
                m.m_entry.chunks)
            s.s_committed)
        t.shard_tbl;
      let pack_bytes = Pack.physical_bytes t.pack in
      { n_tenants = List.length t.catalog;
        n_open = Hashtbl.length t.open_tenants;
        n_epochs = !n_epochs;
        n_chunks = Pack.length t.pack;
        logical_bytes = !logical;
        pack_bytes;
        dedup_ratio =
          (if pack_bytes = 0 then 1.0
           else float_of_int !logical /. float_of_int pack_bytes);
        commit_batches = t.commit_batches;
        committed_epochs = t.committed_epochs;
        collisions = List.length t.collided })

let check t =
  with_lock t (fun () ->
      let errs = ref [] in
      let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
      let tenant_label id =
        match List.assoc_opt id t.catalog with
        | Some name -> Printf.sprintf "%S" name
        | None -> Hash64.to_hex id
      in
      Array.iteri
        (fun si s ->
          let expected : (int, int) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun (m : Epoch_index.mux_entry) ->
              let e = m.m_entry in
              let who = tenant_label m.m_tenant in
              if Shard.of_id ~shards:t.shards m.m_tenant <> si then
                err "tenant %s committed on shard %d, hashes to %d" who si
                  (Shard.of_id ~shards:t.shards m.m_tenant);
              (match Hashtbl.find_opt expected m.m_tenant with
              | None ->
                  if e.kind <> Segment.Full then
                    err "tenant %s: oldest epoch %d is not full" who e.epoch
              | Some n when e.epoch <> n ->
                  err "tenant %s: epoch %d follows %d" who e.epoch (n - 1)
              | Some _ -> ());
              Hashtbl.replace expected m.m_tenant (e.epoch + 1);
              let chunk_arr = Array.of_list e.chunks in
              Array.iter
                (fun k ->
                  if not (Pack.mem t.pack k) then
                    err "tenant %s epoch %d references missing chunk %s" who
                      e.epoch (Hash64.to_hex k)
                  else if not (Chunk.key_matches k (Pack.read t.pack k)) then
                    err "chunk %s content does not match its key"
                      (Hash64.to_hex k))
                chunk_arr;
              List.iter
                (fun { Epoch_index.d_id; d_chunk; d_off } ->
                  if d_chunk < 0 || d_chunk >= Array.length chunk_arr then
                    err "tenant %s epoch %d: record %d chunk index %d/%d" who
                      e.epoch d_id d_chunk (Array.length chunk_arr)
                  else
                    let k = chunk_arr.(d_chunk) in
                    if
                      Pack.mem t.pack k
                      && (d_off < 0 || d_off >= Pack.chunk_len t.pack k)
                    then
                      err "tenant %s epoch %d: record %d offset %d out of range"
                        who e.epoch d_id d_off)
                e.dir)
            s.s_committed)
        t.shard_tbl;
      List.rev !errs)
