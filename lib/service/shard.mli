(** Placing tenants onto shards.

    A shard is a unit of commit concurrency: one multiplexed epoch-index
    file plus one append queue. A tenant's shard is a pure function of its
    id, so the mapping is stable across reopens (which is why the shard
    count is persisted in the service meta file — reopening with a
    different count would strand entries in the wrong files). *)

val default_count : int
(** 4. *)

val of_id : shards:int -> int -> int
(** The shard of a tenant id. @raise Invalid_argument if [shards < 1]. *)

val of_name : shards:int -> string -> int
(** [of_id ~shards (Service.tenant_id name)]. *)
