(** The multi-tenant checkpoint service: many independent tenant heaps,
    each with its own {!Ickpt_core.Chain} and epoch numbering, all feeding
    {e one} shared deduplicating {!Ickpt_cas.Pack} — so identical state
    dedups {e across} tenants, which is where content addressing pays.

    A service at [path] owns:
    - [path ^ ".pack"] — the shared chunk pack;
    - [path ^ ".shard<i>.idx"] — one multiplexed epoch index per shard
      ({!Ickpt_cas.Epoch_index.mux_entry}), holding the committed entries
      of every tenant hashed onto that shard, in commit order;
    - [path ^ ".tenants"] — the append-only tenant catalog (id ↔ name);
    - [path ^ ".svc"] — the shard count and chunking parameter, persisted
      because the tenant → shard mapping must be stable across reopens.

    {2 Commit modes and group commit}

    Every committed epoch costs two syncs (pack, then index — the index
    append is the commit point, exactly as in {!Ickpt_cas.Store}). The
    {!commit_mode} decides how many epochs share them:

    - {!Per_epoch}: each checkpoint commits by itself — 2 fsyncs/epoch,
      the {!Ickpt_cas.Store} behavior, the baseline the ablation compares
      against.
    - [Group policy]: checkpoints accumulate in a per-shard pending list;
      whichever appending caller trips the policy's [max_items]/[max_bytes]
      threshold commits the whole batch inline — 2 fsyncs {e per batch},
      amortized over every tenant in it. Deterministic (no threads), so
      the fault simulator sweeps this path byte-by-byte.
    - [Group_async policy]: a background drain thread per shard
      ({!Ickpt_core.Async_writer.Batch}) cuts batches by the same policy
      plus a [linger] window. Lowest producer latency; commit happens off
      the caller's thread.

    A group commit is atomic per batch: the pack chunks of {e all} its
    epochs are synced before the index batch is appended in one write +
    one sync, so a power loss mid-batch truncates whole index entries off
    the tail and every tenant independently recovers to a committed prefix
    of its own epochs — invariant I7, extended; swept by
    [Ickpt_faultsim.Service_sim].

    Thread-safety: one global lock serializes pack access and commits;
    chunk splitting (the CPU-heavy part) happens outside it on the calling
    domain. Calls on {e one} tenant must not race each other; calls on
    different tenants may come from different domains concurrently. *)

open Ickpt_runtime
open Ickpt_core
open Ickpt_cas

exception Error of string
(** Semantic misuse: tenant-id collision, unknown epoch, use after close. *)

type t

type tenant
(** A handle to one open tenant. Invalidated by {!evict} and {!close}. *)

type commit_mode =
  | Per_epoch
  | Group of Async_writer.Batch.policy
  | Group_async of Async_writer.Batch.policy

val pack_path : string -> string
val shard_index_path : string -> int -> string
val catalog_path : string -> string
val meta_path : string -> string

val tenant_id : string -> int
(** The 63-bit id a tenant name hashes to ({!Ickpt_stream.Hash64}). Two
    distinct names mapping to one id is a collision {!open_tenant}
    refuses. *)

val open_ :
  ?vfs:Vfs.t ->
  ?shards:int ->
  ?records_per_chunk:int ->
  ?policy:Policy.t ->
  ?commit:commit_mode ->
  path:string ->
  unit ->
  t
(** Open (creating if missing) the service rooted at [path]. [shards]
    (default {!Shard.default_count}) and [records_per_chunk] apply to a
    {e new} service; reopening reads both from the meta file and ignores
    the arguments. [policy] (default [Full_every 8]) decides full vs
    incremental per tenant; [commit] defaults to {!Per_epoch}. Reopening
    truncates torn shard-index tails and validates every surviving entry
    (per-tenant contiguity, chunks present), truncating each shard at its
    first invalid entry. *)

val open_tenant : t -> Schema.t -> name:string -> tenant
(** Open (creating or resuming) the tenant called [name]. Resuming
    rebuilds its chain from the suffix of committed epochs starting at the
    newest full one. Returns the existing handle if already open.
    @raise Error if [name]'s id collides with a different existing name. *)

val tenant_name : tenant -> string
val tenant_shard : tenant -> int

val checkpoint : tenant -> Model.obj list -> int
(** Take the next checkpoint of the tenant's heap (kind per the service
    {!Ickpt_core.Policy}) and submit it for commit; returns its epoch.
    Under a group commit mode the epoch may not be durable yet when this
    returns — {!flush} is the durability barrier. *)

val append : tenant -> Segment.t -> int
(** Submit an externally produced segment as the tenant's next epoch
    (validated for kind/sequence by the tenant's chain). *)

val recover : tenant -> (Heap.t * Model.obj list, string) result
(** Rebuild the tenant's state at its newest {e taken} (not necessarily
    yet committed) epoch from the in-memory chain — the reference
    materialization the fault sweep snapshots committed states with. *)

val epochs : tenant -> int list
(** The tenant's {e committed} epochs, ascending. *)

val latest_epoch : tenant -> int option

val restore : tenant -> epoch:int -> Heap.t * Model.obj list
(** Flush, then materialize the tenant's heap as of [epoch] in O(live
    records), reading only this tenant's entries (and the shared pack).
    @raise Error on an epoch the tenant never committed. *)

val flush : t -> unit
(** Commit every pending checkpoint of every tenant. The durability
    barrier for group commit modes. *)

val evict : t -> name:string -> unit
(** Flush, then drop the tenant's in-memory state (chain, entry cache).
    Its committed epochs stay on disk; {!open_tenant} resumes them. The
    old handle must not be used again. *)

val close : t -> unit
(** Flush, stop drain threads. Idempotent; the handle (and every tenant
    handle) must not be used after. *)

val tenants : t -> (int * string) list
(** The catalog: every tenant ever opened here, `(id, name)`, oldest
    first — including evicted and not-currently-open ones. *)

type stats = {
  n_tenants : int;  (** catalog size *)
  n_open : int;  (** tenants currently open *)
  n_epochs : int;  (** committed epochs, all tenants *)
  n_chunks : int;  (** chunks in the shared pack *)
  logical_bytes : int;  (** sum of chunk bytes referenced by all epochs *)
  pack_bytes : int;  (** physical pack bytes *)
  dedup_ratio : float;  (** logical over pack bytes; 1.0 when empty *)
  commit_batches : int;  (** group commits this session (2 fsyncs each) *)
  committed_epochs : int;  (** epochs committed this session *)
  collisions : int;  (** hash collisions absorbed this session *)
}

val stats : t -> stats

val collisions : t -> Store.collision list
(** Hash collisions absorbed by commits this session, oldest first; each
    chunk was stored under a salted rehash ({!Ickpt_cas.Chunk.salted_key})
    instead of failing the tenant's append. *)

val drain_latencies : t -> float list
(** Commit latencies (seconds from submission to durable) of epochs
    committed since the last call, unordered; clears the buffer. *)

val check : t -> string list
(** Integrity check over every tenant's committed entries and the shared
    pack; [[]] means consistent. Salted chunks verify like any other. *)
