let default_count = 4

let of_id ~shards id =
  if shards < 1 then invalid_arg "Shard.of_id: shards < 1";
  (id land max_int) mod shards

let of_name ~shards name = of_id ~shards (Ickpt_stream.Hash64.string name)
