(** A simulated filesystem behind {!Ickpt_core.Vfs.t}, with fault injection.

    The simulator models exactly the durability contract the storage layer
    assumes of a real disk:

    - data handed to [writer.write] is {e visible} (a subsequent
      [read_file] sees it) but not yet {e durable};
    - [writer.sync] advances the per-file durable ("fsynced") mark to the
      current length;
    - [rename] is atomic;
    - a power loss preserves every byte up to the durable mark, and {e any
      prefix} of what was written after it (an append-only log never loses
      a middle byte on a journaling filesystem — only a tail), possibly
      with the torn tail corrupted.

    Every mutating call ([write], [sync], [truncate], [rename], [remove])
    is one {e op}, numbered globally from 0. A {!fault} names the op at
    which the machine dies (or the write channel starts failing), letting a
    harness enumerate "crash after byte N of op K" points exhaustively. *)

exception Crashed
(** Raised by every vfs operation once the simulated machine has lost
    power. ([writer.close] is the exception: closing a dead handle is a
    harmless no-op, so [Fun.protect] finalizers pass the original
    {!Crashed} through untouched.) *)

exception Io_error of string
(** An ordinary write error (disk full, EIO): the op fails but the machine
    keeps running — what {!Ickpt_core.Async_writer} must survive. *)

(** What the torn tail looks like after the power loss. *)
type mode =
  | Torn  (** every written byte persisted, including the partial last op *)
  | Drop_unsynced  (** everything after the last [sync] is lost *)
  | Corrupt_tail  (** like [Torn], but one unsynced byte is flipped *)

type fault =
  | No_fault
  | Crash_at of { op : int; byte : int; mode : mode }
      (** Power loss during op [op]: the first [byte] bytes of that op are
          applied (for non-write ops, [byte = 0] means "before", anything
          else "after"), then the durable state is frozen per [mode] and
          every subsequent operation raises {!Crashed}. *)
  | Fail_write_at of int
      (** [write] and [sync] ops numbered >= the given op raise
          {!Io_error}; everything else keeps working. *)

type t

val create : ?fault:fault -> ?write_delay:float -> unit -> t
(** An empty simulated filesystem. [write_delay] (seconds) makes each
    write op dwell before taking effect — lets a test deterministically
    race the async writer. *)

val seeded : ?fault:fault -> (string * string) list -> t
(** A filesystem pre-populated with the given [path, contents] pairs, all
    of them fully durable. *)

val vfs : t -> Ickpt_core.Vfs.t

val crashed : t -> bool

val ops : t -> int
(** Ops executed (or attempted) so far. *)

val op_log : t -> (string * int) list
(** One [(kind, length)] per op executed, oldest first: kind is ["write"],
    ["sync"], ["truncate"], ["rename"] or ["remove"]; length is the byte
    count for writes and 1 otherwise. The crash-point enumerator reads
    this off a fault-free reference run. *)

val durable : t -> (string * string) list
(** The post-crash contents of every file: the frozen snapshot if the
    machine crashed, the current synced-plus-written contents otherwise. *)

val restart : t -> t
(** "Power back on": a fresh fault-free filesystem holding {!durable}'s
    contents, everything durable — the second life a recovery runs in. *)
