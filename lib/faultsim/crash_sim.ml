open Ickpt_core
open Ickpt_runtime

let log_path = "ckpt.log"

type config = {
  label : string;
  async : bool;
  policy : Policy.t;
  compact_above : int;
  pre_torn : bool;
}

let config ?(async = false) ?(compact_above = 0) ?(pre_torn = false) policy =
  let label =
    Format.asprintf "%s/%a%s%s"
      (if async then "async" else "sync")
      Policy.pp policy
      (if compact_above > 0 then
         Printf.sprintf "/compact>%d" compact_above
       else "")
      (if pre_torn then "/pre-torn" else "")
  in
  { label; async; policy; compact_above; pre_torn }

let default_configs =
  let policies =
    [ Policy.Always_full;
      Policy.Incremental_after_base;
      Policy.Full_every 3;
      Policy.Chain_bytes_limit 64 ]
  in
  List.concat_map
    (fun async ->
      List.concat_map
        (fun policy ->
          [ config ~async policy; config ~async ~compact_above:3 policy ])
        policies)
    [ false; true ]
  @ [ config ~pre_torn:true Policy.Incremental_after_base;
      config ~async:true ~compact_above:3 ~pre_torn:true (Policy.Full_every 3) ]

type violation = {
  v_op : int;
  v_byte : int;
  v_mode : Sim.mode;
  v_reason : string;
}

type report = {
  r_config : config;
  r_points : int;
  r_runs : int;
  r_violations : violation list;
}

(* -- The deterministic workload ----------------------------------------- *)

type world = { schema : Schema.t; roots : Model.obj list; mutate : int -> unit }

(* Seven objects, two classes. [mutate r] writes two globally unique values
   (monotone in [r]), so every committed checkpoint state is pairwise
   distinct and "recovered state = some committed state" is exactly the
   prefix property. *)
let make_world () =
  let schema = Schema.create () in
  let leaf = Schema.declare schema ~name:"Leaf" ~ints:1 ~children:0 () in
  let pair = Schema.declare schema ~name:"Pair" ~ints:2 ~children:2 () in
  let heap = Heap.create schema in
  let mk_leaf v =
    let o = Heap.alloc heap leaf in
    o.Model.ints.(0) <- v;
    o
  in
  let mk_pair a b l r =
    let o = Heap.alloc heap pair in
    o.Model.ints.(0) <- a;
    o.Model.ints.(1) <- b;
    o.Model.children.(0) <- Some l;
    o.Model.children.(1) <- Some r;
    o
  in
  let l1 = mk_leaf 1 and l2 = mk_leaf 2 and l3 = mk_leaf 3 and l4 = mk_leaf 4 in
  let pa = mk_pair 5 6 l1 l2 in
  let pb = mk_pair 7 8 l3 l4 in
  let root = mk_pair 9 10 pa pb in
  let objs = [| root; pa; pb; l1; l2; l3; l4 |] in
  let n = Array.length objs in
  let mutate r =
    Barrier.set_int objs.(r mod n) 0 (1000 + (2 * r));
    Barrier.set_int objs.((r + 3) mod n) 0 (1001 + (2 * r))
  in
  { schema; roots = [ root ]; mutate }

(* Mutation rounds of a resumed (pre-torn) life are offset so their values
   never collide with the pre-life's. *)
let mutation_base cfg = if cfg.pre_torn then 10 else 0

let run_workload ~vfs ~cfg ~rounds ~on_checkpoint =
  let w = make_world () in
  let m =
    Manager.create ~vfs ~policy:cfg.policy ~async:cfg.async
      ~compact_above:cfg.compact_above w.schema ~path:log_path
  in
  Fun.protect
    ~finally:(fun () -> try Manager.close m with _ -> ())
    (fun () ->
      ignore (Manager.checkpoint m w.roots);
      Manager.flush m;
      on_checkpoint 0 m;
      for r = 1 to rounds do
        w.mutate (mutation_base cfg + r);
        ignore (Manager.checkpoint m w.roots);
        on_checkpoint r m
      done;
      Manager.flush m)

(* -- Pre-torn seed ------------------------------------------------------- *)

(* The front half of a valid segment: decodes far enough to look like a
   checkpoint interrupted mid-append, the realistic torn tail. *)
let garbage =
  let seg = { Segment.kind = Segment.Full; seq = 99; roots = []; body = "torn" } in
  let enc = Segment.encode seg in
  String.sub enc 0 (String.length enc - 5)

let pre_life vfs ~snapshot =
  let w = make_world () in
  let m = Manager.create ~vfs w.schema ~path:log_path in
  ignore (Manager.checkpoint m w.roots);
  snapshot m;
  w.mutate 1;
  ignore (Manager.checkpoint m w.roots);
  snapshot m;
  Manager.close m

let seed_content ~snapshot =
  let sim = Sim.create () in
  pre_life (Sim.vfs sim) ~snapshot;
  List.assoc log_path (Sim.durable sim) ^ garbage

(* -- The invariant check ------------------------------------------------- *)

let recovered_roots m =
  match Chain.recover (Manager.chain m) with
  | Ok (_heap, roots) -> roots
  | Error e -> failwith ("crash_sim: reference recovery failed: " ^ e)

let roots_equal a b =
  List.length a = List.length b && List.for_all2 Deep_eq.equal a b

(* After recovering, resume on the survived log: one more checkpoint must
   itself be readable. This is where an un-truncated torn tail kills the
   log (the Manager.create bug): the new segment lands after the garbage
   and reload never reaches it. *)
let second_life ~vfs ~schema roots =
  match
    let m = Manager.create ~vfs schema ~path:log_path in
    List.iter (fun o -> Barrier.set_int o 0 999_983) roots;
    ignore (Manager.checkpoint m roots);
    Manager.close m;
    Manager.recover_latest ~vfs schema ~path:log_path
  with
  | exception e ->
      Error ("post-recovery checkpoint raised " ^ Printexc.to_string e)
  | Error e -> Error ("post-recovery recovery failed: " ^ e)
  | Ok (_heap, roots') ->
      if roots_equal roots roots' then Ok ()
      else Error "checkpoint appended after recovery is not readable"

let check_recovery ~snapshots sim =
  let vfs = Sim.vfs (Sim.restart sim) in
  let world = make_world () in
  match Storage.load ~vfs log_path with
  | exception e -> Error ("Storage.load raised " ^ Printexc.to_string e)
  | { Storage.segments = []; _ } -> Error "no intact segment survived"
  | { Storage.segments; _ } -> (
      match
        let chain = Chain.create world.schema in
        List.iter (Chain.append chain) segments;
        chain
      with
      | exception e -> Error ("chain rebuild raised " ^ Printexc.to_string e)
      | chain -> (
          match Chain.recover chain with
          | exception e -> Error ("recovery raised " ^ Printexc.to_string e)
          | Error e -> Error ("recovery failed: " ^ e)
          | Ok (_heap, roots) ->
              if not (List.exists (fun s -> roots_equal s roots) snapshots)
              then Error "recovered state is not a committed checkpoint state"
              else second_life ~vfs ~schema:world.schema roots))

(* -- Crash-point enumeration --------------------------------------------- *)

let enumerate op_log ~from_op ~density =
  List.concat
    (List.mapi
       (fun k (kind, len) ->
         if k < from_op then []
         else
           let bytes =
             if kind = "write" then
               let interior =
                 List.init density (fun j -> len * (j + 1) / (density + 1))
               in
               List.filter
                 (fun b -> b >= 0 && b <= len)
                 (List.sort_uniq compare ([ 0; 1; len - 1; len ] @ interior))
             else [ 0; 1 ]
           in
           List.map (fun b -> (k, b)) bytes)
       op_log)

let modes = [ Sim.Torn; Sim.Drop_unsynced; Sim.Corrupt_tail ]

let mode_name = function
  | Sim.Torn -> "torn"
  | Sim.Drop_unsynced -> "drop-unsynced"
  | Sim.Corrupt_tail -> "corrupt-tail"

let sweep ?(rounds = 5) ?(density = 2) cfg =
  let snapshots = ref [] in
  let snap m = snapshots := recovered_roots m :: !snapshots in
  let seed =
    if cfg.pre_torn then Some (seed_content ~snapshot:snap) else None
  in
  let make_sim fault =
    match seed with
    | None -> Sim.create ?fault ()
    | Some content -> Sim.seeded ?fault [ (log_path, content) ]
  in
  (* Fault-free reference run: committed states + the op trace to crash. *)
  let ref_sim = make_sim None in
  let base_ops = ref 0 in
  run_workload ~vfs:(Sim.vfs ref_sim) ~cfg ~rounds ~on_checkpoint:(fun r m ->
      snap m;
      if r = 0 then base_ops := Sim.ops ref_sim);
  let snapshots = List.rev !snapshots in
  (* On a fresh log the sweep starts after the base checkpoint is durable
     (before that there is legitimately nothing to recover); a pre-torn log
     already holds a recoverable chain, so every op is fair game — including
     the tail truncation Manager.create performs. *)
  let from_op = if cfg.pre_torn then 0 else !base_ops in
  let points = enumerate (Sim.op_log ref_sim) ~from_op ~density in
  let violations = ref [] in
  let runs = ref 0 in
  List.iter
    (fun (op, byte) ->
      List.iter
        (fun mode ->
          incr runs;
          let sim = make_sim (Some (Sim.Crash_at { op; byte; mode })) in
          (try
             run_workload ~vfs:(Sim.vfs sim) ~cfg ~rounds
               ~on_checkpoint:(fun _ _ -> ())
           with Sim.Crashed | Sim.Io_error _ | Failure _ -> ());
          match check_recovery ~snapshots sim with
          | Ok () -> ()
          | Error v_reason ->
              violations :=
                { v_op = op; v_byte = byte; v_mode = mode; v_reason }
                :: !violations)
        modes)
    points;
  { r_config = cfg;
    r_points = List.length points;
    r_runs = !runs;
    r_violations = List.rev !violations }

let run_all ?rounds ?density ?(configs = default_configs) () =
  List.map (sweep ?rounds ?density) configs

let ok r = r.r_violations = []

let pp_violation ppf v =
  Format.fprintf ppf "crash at op %d byte %d (%s): %s" v.v_op v.v_byte
    (mode_name v.v_mode) v.v_reason

let pp_report ppf r =
  Format.fprintf ppf "%-40s %4d points %5d runs  %s" r.r_config.label
    r.r_points r.r_runs
    (if ok r then "OK"
     else Printf.sprintf "%d VIOLATIONS" (List.length r.r_violations));
  List.iter (fun v -> Format.fprintf ppf "@.  %a" pp_violation v) r.r_violations

let pp_summary ppf reports =
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_report r) reports;
  let bad = List.filter (fun r -> not (ok r)) reports in
  let runs = List.fold_left (fun a r -> a + r.r_runs) 0 reports in
  if bad = [] then
    Format.fprintf ppf "crash sweep: %d configs, %d injected crashes, all recoveries prefix-consistent@."
      (List.length reports) runs
  else
    Format.fprintf ppf "crash sweep: %d of %d configs FAILED@." (List.length bad)
      (List.length reports)
