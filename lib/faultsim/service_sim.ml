open Ickpt_core
open Ickpt_runtime
open Ickpt_service

let service_path = "ckpt.svc"

type violation = {
  v_op : int;
  v_byte : int;
  v_mode : Sim.mode;
  v_reason : string;
}

type report = { r_points : int; r_runs : int; r_violations : violation list }

(* -- The deterministic workload ----------------------------------------- *)

(* Three tenants over two shards. "alpha" and "gamma" run byte-identical
   worlds (per-heap object ids restart at 0, so equal structure + equal
   values = equal segment bytes) — their chunks dedup across tenants in
   the shared pack, which is the case a mid-batch crash must not tangle.
   "beta" runs value-offset, so its committed states are distinct from
   everyone's and no accidental snapshot aliasing can mask a violation. *)
let tenant_names = [ "alpha"; "beta"; "gamma" ]

let value_offset = function "beta" -> 100_000 | _ -> 0

type world = { schema : Schema.t; roots : Model.obj list; mutate : int -> unit }

let make_world ~offset =
  let schema = Schema.create () in
  let leaf = Schema.declare schema ~name:"Leaf" ~ints:1 ~children:0 () in
  let pair = Schema.declare schema ~name:"Pair" ~ints:2 ~children:2 () in
  let heap = Heap.create schema in
  let mk_leaf v =
    let o = Heap.alloc heap leaf in
    o.Model.ints.(0) <- v + offset;
    o
  in
  let mk_pair a b l r =
    let o = Heap.alloc heap pair in
    o.Model.ints.(0) <- a + offset;
    o.Model.ints.(1) <- b + offset;
    o.Model.children.(0) <- Some l;
    o.Model.children.(1) <- Some r;
    o
  in
  let l1 = mk_leaf 1 and l2 = mk_leaf 2 and l3 = mk_leaf 3 and l4 = mk_leaf 4 in
  let pa = mk_pair 5 6 l1 l2 in
  let pb = mk_pair 7 8 l3 l4 in
  let root = mk_pair 9 10 pa pb in
  let objs = [| root; pa; pb; l1; l2; l3; l4 |] in
  let n = Array.length objs in
  let mutate r =
    Barrier.set_int objs.(r mod n) 0 (offset + 1000 + (2 * r));
    Barrier.set_int objs.((r + 3) mod n) 0 (offset + 1001 + (2 * r))
  in
  { schema; roots = [ root ]; mutate }

(* Batches of three epochs; tiny chunks so crash points land inside
   multi-chunk, multi-tenant pack appends. *)
let commit_mode =
  Service.Group
    { Async_writer.Batch.max_items = 3; max_bytes = max_int; linger = 0. }

let records_per_chunk = 3

let open_service ~vfs =
  Service.open_ ~vfs ~shards:2 ~records_per_chunk
    ~policy:(Policy.Full_every 3) ~commit:commit_mode ~path:service_path ()

(* [on_base] fires once every tenant's base epoch is durable;
   [on_checkpoint name epoch tenant] after every checkpoint call. *)
let run_workload ~vfs ~rounds ~on_base ~on_checkpoint =
  let svc = open_service ~vfs in
  let tens =
    List.map
      (fun name ->
        let w = make_world ~offset:(value_offset name) in
        let tn = Service.open_tenant svc w.schema ~name in
        (name, tn, w))
      tenant_names
  in
  List.iter
    (fun (name, tn, w) -> on_checkpoint name (Service.checkpoint tn w.roots) tn)
    tens;
  Service.flush svc;
  on_base ();
  for r = 1 to rounds do
    List.iter
      (fun (name, tn, w) ->
        w.mutate r;
        on_checkpoint name (Service.checkpoint tn w.roots) tn)
      tens
  done;
  Service.flush svc;
  Service.close svc

(* -- The invariant check ------------------------------------------------- *)

let roots_equal a b =
  List.length a = List.length b && List.for_all2 Deep_eq.equal a b

let snapshot_roots tn =
  match Service.recover tn with
  | Ok (_heap, roots) -> roots
  | Error e -> failwith ("service_sim: reference recovery failed: " ^ e)

(* Resume every tenant on the survived store: one more mutation round and
   checkpoint per tenant must itself be restorable. *)
let second_life ~vfs =
  match
    let svc = open_service ~vfs in
    let ok =
      List.for_all
        (fun name ->
          let w = make_world ~offset:(value_offset name) in
          let tn = Service.open_tenant svc w.schema ~name in
          let epoch =
            match Service.latest_epoch tn with
            | Some e -> e
            | None -> failwith "no committed epoch survived"
          in
          let _heap, roots = Service.restore tn ~epoch in
          List.iter (fun o -> Barrier.set_int o 0 999_983) roots;
          let e' = Service.checkpoint tn roots in
          Service.flush svc;
          let _heap, roots' = Service.restore tn ~epoch:e' in
          roots_equal roots roots')
        tenant_names
    in
    Service.close svc;
    ok
  with
  | exception e ->
      Error ("post-recovery checkpoint raised " ^ Printexc.to_string e)
  | false -> Error "checkpoint appended after recovery is not restorable"
  | true -> Ok ()

(* [snapshots] : (tenant name * epoch) -> committed roots. *)
let check_recovery ~snapshots sim =
  let vfs = Sim.vfs (Sim.restart sim) in
  match open_service ~vfs with
  | exception e -> Error ("Service.open_ raised " ^ Printexc.to_string e)
  | svc -> (
      match Service.check svc with
      | _ :: _ as errs ->
          Service.close svc;
          Error ("Service.check: " ^ String.concat "; " errs)
      | [] ->
          let result =
            List.fold_left
              (fun acc name ->
                match acc with
                | Error _ -> acc
                | Ok () -> (
                    let w = make_world ~offset:(value_offset name) in
                    let tn = Service.open_tenant svc w.schema ~name in
                    match Service.epochs tn with
                    | [] ->
                        Error
                          (Printf.sprintf
                             "tenant %s: no committed epoch survived" name)
                    | epochs ->
                        if epochs <> List.init (List.length epochs) Fun.id
                        then
                          Error
                            (Printf.sprintf
                               "tenant %s: surviving epochs are not a prefix"
                               name)
                        else (
                          match
                            List.find_opt
                              (fun e ->
                                match List.assoc_opt (name, e) snapshots with
                                | None -> true
                                | Some expected ->
                                    let _heap, roots =
                                      Service.restore tn ~epoch:e
                                    in
                                    not (roots_equal expected roots))
                              epochs
                          with
                          | Some e ->
                              Error
                                (Printf.sprintf
                                   "tenant %s: epoch %d does not restore to \
                                    its committed state"
                                   name e)
                          | None -> Ok ())))
              (Ok ()) tenant_names
          in
          Service.close svc;
          (match result with Ok () -> second_life ~vfs | e -> e))

(* -- Crash-point enumeration --------------------------------------------- *)

let enumerate op_log ~from_op ~density =
  List.concat
    (List.mapi
       (fun k (kind, len) ->
         if k < from_op then []
         else
           let bytes =
             if kind = "write" then
               let interior =
                 List.init density (fun j -> len * (j + 1) / (density + 1))
               in
               List.filter
                 (fun b -> b >= 0 && b <= len)
                 (List.sort_uniq compare ([ 0; 1; len - 1; len ] @ interior))
             else [ 0; 1 ]
           in
           List.map (fun b -> (k, b)) bytes)
       op_log)

let modes = [ Sim.Torn; Sim.Drop_unsynced; Sim.Corrupt_tail ]

let mode_name = function
  | Sim.Torn -> "torn"
  | Sim.Drop_unsynced -> "drop-unsynced"
  | Sim.Corrupt_tail -> "corrupt-tail"

let sweep ?(rounds = 4) ?(density = 2) () =
  (* Fault-free reference: per-(tenant, epoch) committed states + op
     trace. The sweep starts once every tenant's base epoch is durable;
     before that there is legitimately nothing to recover. *)
  let ref_sim = Sim.create () in
  let snapshots = ref [] in
  let base_ops = ref 0 in
  run_workload ~vfs:(Sim.vfs ref_sim) ~rounds
    ~on_base:(fun () -> base_ops := Sim.ops ref_sim)
    ~on_checkpoint:(fun name epoch tn ->
      snapshots := ((name, epoch), snapshot_roots tn) :: !snapshots);
  let snapshots = List.rev !snapshots in
  let points = enumerate (Sim.op_log ref_sim) ~from_op:!base_ops ~density in
  let violations = ref [] in
  let runs = ref 0 in
  List.iter
    (fun (op, byte) ->
      List.iter
        (fun mode ->
          incr runs;
          let sim = Sim.create ~fault:(Sim.Crash_at { op; byte; mode }) () in
          (try
             run_workload ~vfs:(Sim.vfs sim) ~rounds
               ~on_base:(fun () -> ())
               ~on_checkpoint:(fun _ _ _ -> ())
           with
          | Sim.Crashed | Sim.Io_error _ | Failure _ | Service.Error _ -> ());
          match check_recovery ~snapshots sim with
          | Ok () -> ()
          | Error v_reason ->
              violations :=
                { v_op = op; v_byte = byte; v_mode = mode; v_reason }
                :: !violations)
        modes)
    points;
  { r_points = List.length points;
    r_runs = !runs;
    r_violations = List.rev !violations }

let ok r = r.r_violations = []

let pp_violation ppf v =
  Format.fprintf ppf "crash at op %d byte %d (%s): %s" v.v_op v.v_byte
    (mode_name v.v_mode) v.v_reason

let pp_report ppf r =
  Format.fprintf ppf "service sweep: %4d points %5d runs  %s" r.r_points
    r.r_runs
    (if ok r then "OK"
     else Printf.sprintf "%d VIOLATIONS" (List.length r.r_violations));
  List.iter (fun v -> Format.fprintf ppf "@.  %a" pp_violation v) r.r_violations
