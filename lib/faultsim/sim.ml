open Ickpt_core

exception Crashed

exception Io_error of string

type mode = Torn | Drop_unsynced | Corrupt_tail

type fault =
  | No_fault
  | Crash_at of { op : int; byte : int; mode : mode }
  | Fail_write_at of int

type file = { mutable content : string; mutable synced : int }

type t = {
  mutex : Mutex.t;
  files : (string, file) Hashtbl.t;
  fault : fault;
  write_delay : float;
  mutable ops : int;
  mutable log : (string * int) list;  (* newest first *)
  mutable crashed : bool;
  mutable frozen : (string * string) list;  (* durable snapshot at crash *)
}

let create ?(fault = No_fault) ?(write_delay = 0.) () =
  { mutex = Mutex.create ();
    files = Hashtbl.create 8;
    fault;
    write_delay;
    ops = 0;
    log = [];
    crashed = false;
    frozen = [] }

let seeded ?fault entries =
  let t = create ?fault () in
  List.iter
    (fun (path, content) ->
      Hashtbl.replace t.files path { content; synced = String.length content })
    entries;
  t

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let alive t = if t.crashed then raise Crashed

let find t path =
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None -> raise (Sys_error (path ^ ": no such simulated file"))

(* The durable state per [mode]: synced bytes always survive; the unsynced
   tail survives as written (Torn), vanishes (Drop_unsynced), or survives
   with its last byte flipped (Corrupt_tail). Writes are append-only, so
   the lost/garbled region is always a contiguous tail. *)
let freeze t mode =
  t.crashed <- true;
  t.frozen <-
    Hashtbl.fold
      (fun path f acc ->
        let n = String.length f.content in
        let survives =
          match mode with
          | Torn -> f.content
          | Drop_unsynced -> String.sub f.content 0 (min f.synced n)
          | Corrupt_tail ->
              if n > f.synced then begin
                let b = Bytes.of_string f.content in
                Bytes.set b (n - 1)
                  (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0x5a));
                Bytes.to_string b
              end
              else f.content
        in
        (path, survives) :: acc)
      t.files []

(* Run one numbered op. [len] is its logged size; [apply n] performs the
   effect, applying only the first [n] "bytes" when crashing mid-op. *)
let op t ~kind ~len ~apply =
  alive t;
  let k = t.ops in
  t.ops <- k + 1;
  t.log <- (kind, len) :: t.log;
  match t.fault with
  | Crash_at { op; byte; mode } when op = k ->
      apply (min byte len);
      freeze t mode;
      raise Crashed
  | Fail_write_at op when k >= op && (kind = "write" || kind = "sync") ->
      raise (Io_error (Printf.sprintf "injected %s failure at op %d" kind k))
  | _ -> apply len

let writer t path =
  { Vfs.write =
      (fun data ->
        if t.write_delay > 0. then Thread.delay t.write_delay;
        locked t (fun () ->
            let f = find t path in
            op t ~kind:"write" ~len:(String.length data) ~apply:(fun n ->
                f.content <- f.content ^ String.sub data 0 n)));
    sync =
      (fun () ->
        locked t (fun () ->
            let f = find t path in
            op t ~kind:"sync" ~len:1 ~apply:(fun n ->
                if n > 0 then f.synced <- String.length f.content)));
    (* Closing a handle of a dead (or live) machine is always harmless:
       keeping it exception-free lets Fun.protect finalizers propagate the
       original Crashed instead of wrapping it in Finally_raised. *)
    close = (fun () -> ()) }

let vfs t =
  { Vfs.exists =
      (fun path ->
        locked t (fun () ->
            alive t;
            Hashtbl.mem t.files path));
    read_file =
      (fun path ->
        locked t (fun () ->
            alive t;
            (find t path).content));
    open_append =
      (fun path ->
        locked t (fun () ->
            alive t;
            if not (Hashtbl.mem t.files path) then
              Hashtbl.replace t.files path { content = ""; synced = 0 });
        writer t path);
    open_trunc =
      (fun path ->
        locked t (fun () ->
            alive t;
            Hashtbl.replace t.files path { content = ""; synced = 0 });
        writer t path);
    truncate =
      (fun path ~len ->
        locked t (fun () ->
            let f = find t path in
            op t ~kind:"truncate" ~len:1 ~apply:(fun n ->
                if n > 0 then begin
                  f.content <- String.sub f.content 0 (min len (String.length f.content));
                  f.synced <- min f.synced len
                end)));
    rename =
      (fun ~src ~dst ->
        locked t (fun () ->
            let f = find t src in
            op t ~kind:"rename" ~len:1 ~apply:(fun n ->
                if n > 0 then begin
                  Hashtbl.replace t.files dst f;
                  Hashtbl.remove t.files src
                end)));
    remove =
      (fun path ->
        locked t (fun () ->
            ignore (find t path);
            op t ~kind:"remove" ~len:1 ~apply:(fun n ->
                if n > 0 then Hashtbl.remove t.files path))) }

let crashed t = locked t (fun () -> t.crashed)

let ops t = locked t (fun () -> t.ops)

let op_log t = locked t (fun () -> List.rev t.log)

let durable t =
  locked t (fun () ->
      if t.crashed then t.frozen
      else
        Hashtbl.fold (fun path f acc -> (path, f.content) :: acc) t.files [])

let restart t = seeded (durable t)
