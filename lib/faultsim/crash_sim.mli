(** The crash-consistency harness: enumerate every power-loss point of a
    representative checkpointing run and assert the recovery invariant
    (I7 in DESIGN.md):

    {e after any crash, loading the log and recovering yields a heap
    deeply equal to some committed checkpoint state (a prefix of the
    history — never a later state, never garbage), recovery neither
    raises nor returns [Error], and the recovered log accepts further
    checkpoints that remain readable.}

    For each {!config}, a fault-free reference run records the state at
    every committed checkpoint plus the full op trace; the sweep then
    re-runs the same deterministic workload once per (op, byte-offset,
    {!Sim.mode}) crash point and checks recovery of the surviving bytes.
    Configs marked [pre_torn] start from a log that already carries a torn
    tail from an earlier life, covering the resume-after-crash path
    (truncate, then append). *)

open Ickpt_core

type config = {
  label : string;
  async : bool;  (** write segments through {!Async_writer} *)
  policy : Policy.t;
  compact_above : int;  (** as in {!Manager.create} *)
  pre_torn : bool;  (** seed the log with an older chain plus torn garbage *)
}

val config :
  ?async:bool -> ?compact_above:int -> ?pre_torn:bool -> Policy.t -> config
(** Build a config with a descriptive label. Defaults: sync, no
    compaction, fresh log. *)

val default_configs : config list
(** Sync and async sinks crossed with all four {!Policy} variants, with and
    without auto-compaction, plus two pre-torn resume configs — 18 total. *)

type violation = {
  v_op : int;  (** op index the crash was injected at *)
  v_byte : int;  (** bytes of that op applied before the power loss *)
  v_mode : Sim.mode;
  v_reason : string;
}

type report = {
  r_config : config;
  r_points : int;  (** distinct (op, byte) crash points enumerated *)
  r_runs : int;  (** crash points × modes actually executed *)
  r_violations : violation list;
}

val sweep : ?rounds:int -> ?density:int -> config -> report
(** Run the sweep for one config. [rounds] (default 5) is the number of
    mutate-and-checkpoint rounds after the base checkpoint; [density]
    (default 2) adds that many evenly spaced interior byte offsets per
    write op on top of the always-tested [{0; 1; len-1; len}]. *)

val run_all :
  ?rounds:int -> ?density:int -> ?configs:config list -> unit -> report list

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

val pp_summary : Format.formatter -> report list -> unit
(** One line per config plus a pass/fail tally; details for violations. *)
