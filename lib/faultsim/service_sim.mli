(** Every-byte power-loss sweep of the multi-tenant service's group-commit
    path — invariant I7 extended to shared storage: after a crash at any
    byte of any operation, {e every} tenant independently recovers to a
    committed prefix of its own epochs, each restoring byte-identically to
    its committed state, and a crash mid-batch never orphans a {e
    different} tenant's committed epoch.

    The workload runs three tenants (two byte-identical, so the shared
    pack genuinely dedups across them) over two shards in the
    deterministic inline group-commit mode ([Service.Group], batches of
    three) — no drain threads, so the op trace is reproducible and the
    sweep exhaustive, exactly like {!Store_sim}. *)

type violation = {
  v_op : int;
  v_byte : int;
  v_mode : Sim.mode;
  v_reason : string;
}

type report = { r_points : int; r_runs : int; r_violations : violation list }

val sweep : ?rounds:int -> ?density:int -> unit -> report
(** Reference run (capturing each tenant's committed state at every epoch),
    then one crashed run per (op, byte, mode) point. [rounds] (default 4)
    mutation rounds after the base epochs; [density] (default 2) interior
    crash points per write. *)

val ok : report -> bool

val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
