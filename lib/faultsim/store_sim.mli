(** Crash sweep for the content-addressed store: invariant I7 extended to
    the pack + epoch-index pair (see DESIGN.md §8).

    A deterministic store-backed workload (checkpoints through
    [Manager.create ?sink] plus a mid-run [Store.gc]) is run fault-free to
    collect the op trace and the committed state of every epoch; then the
    machine is killed at every byte of every vfs op, in each torn-tail
    mode, and after each crash the store must:

    - reopen without raising;
    - pass [Store.check] (contiguous epochs, refcounts consistent,
      every referenced chunk present and content-verified);
    - hold a committed epoch prefix: every surviving epoch restores to
      exactly the state committed for that epoch in the reference run;
    - accept a post-recovery checkpoint that is itself restorable
      (the "second life"). *)

type violation = {
  v_op : int;
  v_byte : int;
  v_mode : Sim.mode;
  v_reason : string;
}

type report = { r_points : int; r_runs : int; r_violations : violation list }

val sweep : ?rounds:int -> ?density:int -> unit -> report
(** [rounds] checkpoints after the base one (default 5, with a GC after
    round 3); [density] interior crash points per write op (default 2). *)

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
