open Ickpt_core
open Ickpt_runtime
open Ickpt_cas

let store_path = "ckpt.store"

type violation = {
  v_op : int;
  v_byte : int;
  v_mode : Sim.mode;
  v_reason : string;
}

type report = { r_points : int; r_runs : int; r_violations : violation list }

(* -- The deterministic workload ----------------------------------------- *)

(* Same seven-object world as Crash_sim: every mutation round writes
   globally unique values, so each epoch's committed state is pairwise
   distinct and "every surviving epoch restores to its committed state" is
   exactly the prefix property. *)
type world = { schema : Schema.t; roots : Model.obj list; mutate : int -> unit }

let make_world () =
  let schema = Schema.create () in
  let leaf = Schema.declare schema ~name:"Leaf" ~ints:1 ~children:0 () in
  let pair = Schema.declare schema ~name:"Pair" ~ints:2 ~children:2 () in
  let heap = Heap.create schema in
  let mk_leaf v =
    let o = Heap.alloc heap leaf in
    o.Model.ints.(0) <- v;
    o
  in
  let mk_pair a b l r =
    let o = Heap.alloc heap pair in
    o.Model.ints.(0) <- a;
    o.Model.ints.(1) <- b;
    o.Model.children.(0) <- Some l;
    o.Model.children.(1) <- Some r;
    o
  in
  let l1 = mk_leaf 1 and l2 = mk_leaf 2 and l3 = mk_leaf 3 and l4 = mk_leaf 4 in
  let pa = mk_pair 5 6 l1 l2 in
  let pb = mk_pair 7 8 l3 l4 in
  let root = mk_pair 9 10 pa pb in
  let objs = [| root; pa; pb; l1; l2; l3; l4 |] in
  let n = Array.length objs in
  let mutate r =
    Barrier.set_int objs.(r mod n) 0 (1000 + (2 * r));
    Barrier.set_int objs.((r + 3) mod n) 0 (1001 + (2 * r))
  in
  { schema; roots = [ root ]; mutate }

let gc_after_round = 3

let gc_retain = Store.Keep_last 3

(* Tiny chunks so a single epoch spans several of them and crash points
   land inside multi-chunk pack appends. *)
let records_per_chunk = 3

let run_workload ~vfs ~rounds ~on_checkpoint =
  let w = make_world () in
  let store = Store.open_ ~vfs ~records_per_chunk w.schema ~path:store_path in
  let m =
    Manager.create ~vfs ~policy:(Policy.Full_every 3)
      ~sink:(Store.manager_sink store) w.schema ~path:store_path
  in
  ignore (Manager.checkpoint m w.roots);
  on_checkpoint 0 m;
  for r = 1 to rounds do
    w.mutate r;
    ignore (Manager.checkpoint m w.roots);
    on_checkpoint r m;
    if r = gc_after_round then ignore (Store.gc store ~retain:gc_retain)
  done

(* -- The invariant check ------------------------------------------------- *)

let roots_equal a b =
  List.length a = List.length b && List.for_all2 Deep_eq.equal a b

(* Committed state of an epoch, captured on the fault-free run by
   materializing from the manager's chain (a fresh heap, immune to later
   mutation of the live one). *)
let snapshot_roots m =
  match Chain.recover (Manager.chain m) with
  | Ok (_heap, roots) -> roots
  | Error e -> failwith ("store_sim: reference recovery failed: " ^ e)

(* Resume on the survived store: one more checkpoint must itself be
   restorable. Exercises sink_resume on a post-crash store. *)
let second_life ~vfs ~schema =
  match
    let store = Store.open_ ~vfs ~records_per_chunk schema ~path:store_path in
    let _heap, roots =
      Store.restore store ~epoch:(Option.get (Store.latest_epoch store))
    in
    let m =
      Manager.create ~vfs ~sink:(Store.manager_sink store) schema
        ~path:store_path
    in
    List.iter (fun o -> Barrier.set_int o 0 999_983) roots;
    ignore (Manager.checkpoint m roots);
    let _heap, roots' =
      Store.restore store ~epoch:(Option.get (Store.latest_epoch store))
    in
    roots_equal roots roots'
  with
  | exception e ->
      Error ("post-recovery checkpoint raised " ^ Printexc.to_string e)
  | false -> Error "checkpoint appended after recovery is not restorable"
  | true -> Ok ()

let check_recovery ~snapshots sim =
  let vfs = Sim.vfs (Sim.restart sim) in
  let w = make_world () in
  match Store.open_ ~vfs ~records_per_chunk w.schema ~path:store_path with
  | exception e -> Error ("Store.open_ raised " ^ Printexc.to_string e)
  | store -> (
      match Store.check store with
      | _ :: _ as errs ->
          Error ("Store.check: " ^ String.concat "; " errs)
      | [] -> (
          match Store.epochs store with
          | [] -> Error "no committed epoch survived"
          | epochs -> (
              match
                List.find_opt
                  (fun e ->
                    match List.assoc_opt e snapshots with
                    | None -> true
                    | Some expected ->
                        let _heap, roots = Store.restore store ~epoch:e in
                        not (roots_equal expected roots))
                  epochs
              with
              | Some e ->
                  Error
                    (Printf.sprintf
                       "epoch %d does not restore to its committed state" e)
              | None -> second_life ~vfs ~schema:w.schema)))

(* -- Crash-point enumeration --------------------------------------------- *)

let enumerate op_log ~from_op ~density =
  List.concat
    (List.mapi
       (fun k (kind, len) ->
         if k < from_op then []
         else
           let bytes =
             if kind = "write" then
               let interior =
                 List.init density (fun j -> len * (j + 1) / (density + 1))
               in
               List.filter
                 (fun b -> b >= 0 && b <= len)
                 (List.sort_uniq compare ([ 0; 1; len - 1; len ] @ interior))
             else [ 0; 1 ]
           in
           List.map (fun b -> (k, b)) bytes)
       op_log)

let modes = [ Sim.Torn; Sim.Drop_unsynced; Sim.Corrupt_tail ]

let mode_name = function
  | Sim.Torn -> "torn"
  | Sim.Drop_unsynced -> "drop-unsynced"
  | Sim.Corrupt_tail -> "corrupt-tail"

let sweep ?(rounds = 5) ?(density = 2) () =
  (* Fault-free reference run: per-epoch committed states + the op trace. *)
  let ref_sim = Sim.create () in
  let snapshots = ref [] in
  let base_ops = ref 0 in
  run_workload ~vfs:(Sim.vfs ref_sim) ~rounds ~on_checkpoint:(fun r m ->
      let epoch = Chain.next_seq (Manager.chain m) - 1 in
      snapshots := (epoch, snapshot_roots m) :: !snapshots;
      if r = 0 then base_ops := Sim.ops ref_sim);
  let snapshots = List.rev !snapshots in
  (* The sweep starts once the base epoch is durable; before that there is
     legitimately nothing to recover. *)
  let points = enumerate (Sim.op_log ref_sim) ~from_op:!base_ops ~density in
  let violations = ref [] in
  let runs = ref 0 in
  List.iter
    (fun (op, byte) ->
      List.iter
        (fun mode ->
          incr runs;
          let sim = Sim.create ~fault:(Sim.Crash_at { op; byte; mode }) () in
          (try
             run_workload ~vfs:(Sim.vfs sim) ~rounds ~on_checkpoint:(fun _ _ -> ())
           with Sim.Crashed | Sim.Io_error _ | Failure _ -> ());
          match check_recovery ~snapshots sim with
          | Ok () -> ()
          | Error v_reason ->
              violations :=
                { v_op = op; v_byte = byte; v_mode = mode; v_reason }
                :: !violations)
        modes)
    points;
  { r_points = List.length points;
    r_runs = !runs;
    r_violations = List.rev !violations }

let ok r = r.r_violations = []

let pp_violation ppf v =
  Format.fprintf ppf "crash at op %d byte %d (%s): %s" v.v_op v.v_byte
    (mode_name v.v_mode) v.v_reason

let pp_report ppf r =
  Format.fprintf ppf "store sweep: %4d points %5d runs  %s" r.r_points r.r_runs
    (if ok r then "OK"
     else Printf.sprintf "%d VIOLATIONS" (List.length r.r_violations));
  List.iter (fun v -> Format.fprintf ppf "@.  %a" pp_violation v) r.r_violations
