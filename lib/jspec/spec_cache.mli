(** A cache of compiled specialized checkpoint routines, keyed by the
    structural content of the specialization class.

    The paper notes that "to account for the range of compound object
    structures used in different phases of the program, many specialized
    checkpointing routines may be needed" (Section 1): an application with
    several recurring structures and several phases wants each (structure,
    phase) combination specialized once and reused. Shapes that are
    structurally equal (same classes, statuses and child declarations)
    share one compiled routine, whatever their provenance. *)

open Ickpt_runtime

type t

val create : unit -> t

val runner :
  t -> Sclass.shape -> Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** The compiled routine for this shape — specializing and compiling on
    first use, cache hit afterwards. *)

val plan : t -> Sclass.shape -> Pe.result
(** The residual program for the shape (same caching). *)

val size : t -> int
(** Number of distinct shapes compiled so far. *)

val hits : t -> int

val misses : t -> int

val shape_key : Sclass.shape -> string
(** The canonical structural key (exposed for tests): two shapes get the
    same key iff they are structurally equal. *)

(** {1 Verification verdicts}

    The cache also remembers whether a shape's residual code passed
    translation validation (see [Staticcheck.Tv]), so repeated engine
    runs over the same shapes verify once. The cache stores only the
    boolean outcome keyed by shape and a digest of the residual body —
    the verifier lives upstream and this module needs no knowledge of
    it. A verdict is evicted as soon as the body it was computed for
    changes. *)

val body_digest : Cklang.stmt list -> string
(** Digest of a residual body's printed form (exposed for tests). *)

val cached_verdict : t -> Sclass.shape -> Cklang.stmt list -> bool option
(** [Some verified] when a verdict for this exact (shape, body) pair is
    cached; [None] — evicting any stale entry — when the body changed or
    no verdict was recorded. *)

val set_verdict : t -> Sclass.shape -> Cklang.stmt list -> bool -> unit

val verdict_count : t -> int
(** Number of cached verdicts (exposed for tests). *)
