(** The partial evaluator: specializes the generic checkpoint method with
    respect to a specialization class ({!Sclass.shape}).

    This reproduces JSpec's effect on the checkpointing code (paper
    Sections 3–4):
    - virtual [record]/[fold] invocations on receivers whose class is
      statically known are resolved and inlined (devirtualization);
    - loops over the statically-known field layout are unrolled;
    - [modified] tests on objects declared [Clean] evaluate to false at
      specialization time, removing the test {e and} the recording code;
    - subtrees that are entirely [Clean] generate no code at all — their
      traversal is eliminated;
    - children declared [Unknown] fall back to a residual call to the
      generic algorithm.

    The residual program is intended to write the same bytes as the
    generic algorithm on any heap that conforms to the declared shape.
    That claim is not taken on faith: it is property-tested on random
    conforming heaps, and {e proved per specialization} by the
    translation validator ([Staticcheck.Tv.verify]), which symbolically
    enumerates the shape's whole heap family and checks byte-trace
    equivalence — refuting with a concrete counterexample heap when a
    residual program is wrong. *)

type result = {
  shape : Sclass.shape;  (** the declaration this code was built from *)
  body : Cklang.stmt list;  (** residual checkpoint code; receiver is v0 *)
  n_vars : int;  (** number of variable slots the residual body needs *)
  var_klass : (Cklang.var * string) list;
      (** static class name of each object variable, for {!Java_pp} *)
}

exception Specialization_error of string
(** Internal invariant breach (e.g. a virtual invocation on a receiver the
    binding-time analysis should have made static). Indicates a bug, not a
    user error. *)

val specialize :
  ?program:Cklang.program -> ?optimize:bool -> Sclass.shape -> result
(** [specialize shape] partially evaluates [program] (default
    {!Generic_method.program}) for a receiver of shape [shape]. The result
    is cleaned by {!Plan_opt.simplify} unless [optimize] is [false]
    (exposed so the cleanup pass can be differentially tested). *)
