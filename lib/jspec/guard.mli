(** Runtime validation of specialization classes.

    A specialized checkpoint routine is only correct on heaps that conform
    to the shape it was built from, and — during the declared phase — on
    objects whose [Clean] declarations really hold. The paper relies on the
    programmer for this; {!check} makes the obligation checkable, and
    {!checked} builds a checkpoint runner that validates before writing, so
    a violated declaration is an error rather than silent data loss. *)

open Ickpt_runtime

type violation = { path : string; reason : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Sclass.shape -> Model.obj -> violation list
(** Every way in which the object graph fails to conform to the shape:
    class mismatches, null children declared present, non-null children
    declared null, and set [modified] flags on [Clean] nodes. Empty when
    the specialized code is safe to run on this object. Violations are
    sorted by (path, reason) — stable and deterministic, independent of
    traversal order. *)

val nodes_visited : unit -> int
(** Cumulative objects visited by {!check} since {!reset_visits} — a
    deterministic measure of guard work (the quantity static barrier
    elision removes when a pruned guard shape drops subtree walks or the
    whole check). *)

val reset_visits : unit -> unit

val group_by_reason : violation list -> (string * violation list) list
(** Reasons in alphabetical order, each with its violations in path
    order. *)

val pp_report : Format.formatter -> violation list -> unit
(** Violations grouped by reason — the same presentation as the static
    spec-lint, so guard and lint output read the same way. *)

exception Violated of violation

val checked :
  Sclass.shape ->
  (Ickpt_stream.Out_stream.t -> Model.obj -> unit) ->
  Ickpt_stream.Out_stream.t -> Model.obj -> unit
(** [checked shape runner] behaves as [runner] but raises {!Violated}
    (before writing anything) if the object does not conform. *)
