open Ickpt_runtime

type violation = { path : string; reason : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.path v.reason

exception Violated of violation

(* Paths are materialized only when a violation is reported: the happy
   path — every checkpoint when guards are enabled — allocates nothing. A
   path is the reversed list of child slots from the root. *)
let render_path rev_slots =
  List.fold_left
    (fun acc slot -> Printf.sprintf "%s.children[%d]" acc slot)
    "root" (List.rev rev_slots)

(* Cumulative count of objects visited by [check] — a deterministic
   measure of guard work for the barrier-elision tests and ablation
   (wall-clock being too noisy to assert on). *)
let visits = ref 0

let nodes_visited () = !visits
let reset_visits () = visits := 0

let check shape root =
  let out = ref [] in
  let add rev_path fmt =
    Format.kasprintf
      (fun reason -> out := { path = render_path rev_path; reason } :: !out)
      fmt
  in
  (* A [Clean_opaque] declaration covers everything reachable below the
     child, whatever its shape. *)
  let rec check_subtree_clean rev_path (o : Model.obj) =
    incr visits;
    if o.Model.info.Model.modified then
      add rev_path "modified flag set below a subtree declared Clean_opaque";
    Array.iteri
      (fun i c ->
        match c with
        | None -> ()
        | Some c -> check_subtree_clean (i :: rev_path) c)
      o.Model.children
  and go rev_path (s : Sclass.shape) (o : Model.obj) =
    incr visits;
    if o.Model.klass.Model.kid <> s.Sclass.klass.Model.kid then
      add rev_path "class %s, declared %s" o.Model.klass.Model.kname
        s.Sclass.klass.Model.kname
    else begin
      if s.Sclass.status == Sclass.Clean && o.Model.info.Model.modified then
        add rev_path "modified flag set on an object declared Clean";
      Array.iteri
        (fun i decl ->
          match (decl, o.Model.children.(i)) with
          | Sclass.Null_child, None -> ()
          | Sclass.Null_child, Some _ ->
              add (i :: rev_path) "non-null child declared statically null"
          | Sclass.Exact _, None ->
              add (i :: rev_path) "null child declared statically present"
          | Sclass.Exact cs, Some c -> go (i :: rev_path) cs c
          | Sclass.Nullable _, None -> ()
          | Sclass.Nullable cs, Some c -> go (i :: rev_path) cs c
          | Sclass.Unknown, _ -> ()
          | Sclass.Clean_opaque, None -> ()
          | Sclass.Clean_opaque, Some c -> check_subtree_clean (i :: rev_path) c)
        s.Sclass.children
    end
  in
  go [] shape root;
  (* Sorted, not discovery-ordered: reports stay stable under traversal
     changes and two heaps with the same defects report identically. *)
  List.sort
    (fun a b -> compare (a.path, a.reason) (b.path, b.reason))
    !out

let group_by_reason vs =
  let reasons = List.sort_uniq compare (List.map (fun v -> v.reason) vs) in
  List.map
    (fun reason -> (reason, List.filter (fun v -> v.reason = reason) vs))
    reasons

let pp_report ppf = function
  | [] -> Format.pp_print_string ppf "guard: no violations"
  | vs ->
      Format.fprintf ppf "@[<v>guard: %d violation(s)" (List.length vs);
      List.iter
        (fun (reason, group) ->
          Format.fprintf ppf "@,@[<v 2>%s (%d):" reason (List.length group);
          List.iter (fun v -> Format.fprintf ppf "@,%s" v.path) group;
          Format.fprintf ppf "@]")
        (group_by_reason vs);
      Format.fprintf ppf "@]"

let checked shape runner d o =
  match check shape o with
  | [] -> runner d o
  | v :: _ -> raise (Violated v)
