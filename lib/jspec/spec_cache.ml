open Ickpt_runtime

type entry = {
  plan : Pe.result;
  compiled : Ickpt_stream.Out_stream.t -> Model.obj -> unit;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  verdicts : (string, string * bool) Hashtbl.t;
      (* shape key -> (residual-body digest, verified) *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { entries = Hashtbl.create 16;
    verdicts = Hashtbl.create 16;
    hits = 0;
    misses = 0 }

(* Canonical structural key. Class identity uses the class id, which is
   schema-unique; statuses and child kinds are single characters. *)
let shape_key shape =
  let buf = Buffer.create 64 in
  let rec go (s : Sclass.shape) =
    Buffer.add_string buf (string_of_int s.Sclass.klass.Model.kid);
    Buffer.add_char buf
      (match s.Sclass.status with Sclass.Clean -> 'c' | Sclass.Tracked -> 't');
    Buffer.add_char buf '(';
    Array.iter
      (fun child ->
        match child with
        | Sclass.Null_child -> Buffer.add_char buf '_'
        | Sclass.Unknown -> Buffer.add_char buf '?'
        | Sclass.Clean_opaque -> Buffer.add_char buf '~'
        | Sclass.Exact c ->
            Buffer.add_char buf '!';
            go c
        | Sclass.Nullable c ->
            Buffer.add_char buf 'n';
            go c)
      s.Sclass.children;
    Buffer.add_char buf ')'
  in
  go shape;
  Buffer.contents buf

let entry t shape =
  let key = shape_key shape in
  match Hashtbl.find_opt t.entries key with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None ->
      t.misses <- t.misses + 1;
      let plan = Pe.specialize shape in
      let e = { plan; compiled = Compile.residual plan } in
      Hashtbl.add t.entries key e;
      e

let runner t shape = (entry t shape).compiled

let plan t shape = (entry t shape).plan

let body_digest body =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Cklang.pp_stmts body))

let cached_verdict t shape body =
  let key = shape_key shape in
  match Hashtbl.find_opt t.verdicts key with
  | Some (digest, verified) when digest = body_digest body -> Some verified
  | Some _ ->
      (* The residual code for this shape changed (different generic
         program, different optimization setting): the old verdict says
         nothing about the new body. *)
      Hashtbl.remove t.verdicts key;
      None
  | None -> None

let set_verdict t shape body verified =
  Hashtbl.replace t.verdicts (shape_key shape) (body_digest body, verified)

let verdict_count t = Hashtbl.length t.verdicts

let size t = Hashtbl.length t.entries

let hits t = t.hits

let misses t = t.misses
