type load_result = {
  segments : Segment.t list;
  torn_tail : bool;
  bytes_read : int;
}

let append ?(vfs = Vfs.real) ~path seg =
  let w = vfs.Vfs.open_append path in
  Fun.protect
    ~finally:(fun () -> w.Vfs.close ())
    (fun () ->
      w.Vfs.write (Segment.encode seg);
      w.Vfs.sync ())

let temp_of ~path = path ^ ".tmp"

let write_chain ?(vfs = Vfs.real) ~path chain =
  (* Write to a sibling temp file and atomically rename it over the log:
     an interrupted rewrite must never leave a half-written log in place
     of the old one (it used to — in-place truncate + rewrite lost the
     whole chain if crashed mid-way). *)
  let tmp = temp_of ~path in
  let w = vfs.Vfs.open_trunc tmp in
  Fun.protect
    ~finally:(fun () -> w.Vfs.close ())
    (fun () ->
      List.iter
        (fun seg -> w.Vfs.write (Segment.encode seg))
        (Chain.segments chain);
      w.Vfs.sync ());
  vfs.Vfs.rename ~src:tmp ~dst:path

let load ?(vfs = Vfs.real) path =
  let data = if vfs.Vfs.exists path then vfs.Vfs.read_file path else "" in
  let rec go acc pos =
    if pos >= String.length data then
      { segments = List.rev acc; torn_tail = false; bytes_read = pos }
    else
      match Segment.decode data ~pos with
      | seg, next -> go (seg :: acc) next
      | exception Ickpt_stream.In_stream.Corrupt _ ->
          { segments = List.rev acc; torn_tail = true; bytes_read = pos }
  in
  go [] 0

let load_chain ?vfs schema ~path =
  let { segments; torn_tail; _ } = load ?vfs path in
  let chain = Chain.create schema in
  List.iter (Chain.append chain) segments;
  (chain, torn_tail)
