open Ickpt_stream

type kind = Full | Incremental

type t = { kind : kind; seq : int; roots : int list; body : string }

let version = 1

let magic = 0x49434b50 (* "ICKP" read as LE bytes P K C I; value is arbitrary *)

let pp_kind ppf = function
  | Full -> Format.pp_print_string ppf "full"
  | Incremental -> Format.pp_print_string ppf "incremental"

let kind_byte = function Full -> 0 | Incremental -> 1

let kind_of_byte = function
  | 0 -> Full
  | 1 -> Incremental
  | b -> raise (In_stream.Corrupt (Printf.sprintf "bad segment kind %d" b))

let encode t =
  let d = Out_stream.create () in
  Out_stream.write_fixed32 d magic;
  Out_stream.write_byte d version;
  Out_stream.write_byte d (kind_byte t.kind);
  Out_stream.write_int d t.seq;
  Out_stream.write_int d (List.length t.roots);
  List.iter (Out_stream.write_int d) t.roots;
  Out_stream.write_int d (String.length t.body);
  let header_and_len = Out_stream.contents d in
  let crc =
    Crc32.string t.body ~crc:(Crc32.string header_and_len)
  in
  let out = Buffer.create (String.length header_and_len + String.length t.body + 4) in
  Buffer.add_string out header_and_len;
  Buffer.add_string out t.body;
  Buffer.add_char out (Char.chr (crc land 0xff));
  Buffer.add_char out (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char out (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char out (Char.chr ((crc lsr 24) land 0xff));
  Buffer.contents out

let decode s ~pos =
  let inp = In_stream.of_string_at s ~pos in
  let m = In_stream.read_fixed32 inp in
  if m <> magic then
    raise (In_stream.Corrupt (Printf.sprintf "bad magic %#x at %d" m pos));
  let v = In_stream.read_byte inp in
  if v <> version then
    raise (In_stream.Corrupt (Printf.sprintf "unsupported version %d" v));
  let kind = kind_of_byte (In_stream.read_byte inp) in
  let seq = In_stream.read_int inp in
  let nroots = In_stream.read_int inp in
  (* Each root id is at least one byte, so a count beyond the remaining
     bytes is hostile; checking here keeps List.init small on such input. *)
  if nroots < 0 || nroots > In_stream.remaining inp then
    raise (In_stream.Corrupt (Printf.sprintf "bad root count %d" nroots));
  let roots = List.init nroots (fun _ -> In_stream.read_int inp) in
  let body_len = In_stream.read_int inp in
  if body_len < 0 then raise (In_stream.Corrupt "negative body length");
  (* Compare with the addition on the [remaining] side: [body_len + 4] can
     overflow to negative on a hostile varint, which used to slip past this
     check and crash String.sub with Invalid_argument instead of Corrupt. *)
  if In_stream.remaining inp - 4 < body_len then
    raise (In_stream.Corrupt "truncated segment body");
  let body_start = In_stream.pos inp in
  let body = String.sub s body_start body_len in
  let crc_inp = In_stream.of_string_at s ~pos:(body_start + body_len) in
  let crc = In_stream.read_fixed32 crc_inp in
  let expected = Crc32.sub s ~pos ~len:(body_start + body_len - pos) in
  if crc <> expected then
    raise
      (In_stream.Corrupt
         (Printf.sprintf "checksum mismatch: stored %#x, computed %#x" crc
            expected));
  let t = { kind; seq; roots; body } in
  (t, body_start + body_len + 4)

let decode_all s =
  let rec go acc pos =
    if pos >= String.length s then List.rev acc
    else
      let seg, next = decode s ~pos in
      go (seg :: acc) next
  in
  go [] 0

let body_size t = String.length t.body

let encoded_size t = String.length (encode t)
