open Ickpt_runtime
open Ickpt_stream

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type record = {
  rec_id : int;
  rec_kid : int;
  rec_ints : int array;
  rec_child_ids : int array;
}

let read_record schema inp =
  let rec_id = In_stream.read_int inp in
  let rec_kid = In_stream.read_int inp in
  let klass =
    match Schema.find schema rec_kid with
    | k -> k
    | exception Not_found -> error "unknown class id %d in record %d" rec_kid rec_id
  in
  let rec_ints =
    Array.init klass.Model.n_ints (fun _ -> In_stream.read_int inp)
  in
  let rec_child_ids =
    Array.init klass.Model.n_children (fun _ -> In_stream.read_int inp)
  in
  { rec_id; rec_kid; rec_ints; rec_child_ids }

let records_of_body schema body =
  let inp = In_stream.of_string body in
  let rec go acc =
    if In_stream.at_end inp then List.rev acc
    else go (read_record schema inp :: acc)
  in
  go []

(* Framing-only walk: same decoding as [read_record] but the field values
   are discarded, so chunking a body costs varint skipping, not arrays. *)
let scan_body schema body =
  let inp = In_stream.of_string body in
  let rec go acc =
    if In_stream.at_end inp then List.rev acc
    else begin
      let start = In_stream.pos inp in
      let rec_id = In_stream.read_int inp in
      let rec_kid = In_stream.read_int inp in
      let klass =
        match Schema.find schema rec_kid with
        | k -> k
        | exception Not_found ->
            error "unknown class id %d in record %d" rec_kid rec_id
      in
      for _ = 1 to klass.Model.n_ints + klass.Model.n_children do
        ignore (In_stream.read_int inp)
      done;
      go ((rec_id, start, In_stream.pos inp - start) :: acc)
    end
  in
  go []

let record_at schema s ~pos = read_record schema (In_stream.of_string_at s ~pos)

type table = (int, record) Hashtbl.t

let empty_table () : table = Hashtbl.create 1024

let apply_segment schema (table : table) seg =
  let inp = In_stream.of_string seg.Segment.body in
  while not (In_stream.at_end inp) do
    let r = read_record schema inp in
    Hashtbl.replace table r.rec_id r
  done

let add_record (table : table) r = Hashtbl.replace table r.rec_id r

let table_size = Hashtbl.length

let iter_table (table : table) f = Hashtbl.iter f table

let find_table (table : table) id = Hashtbl.find_opt table id

let materialize schema (table : table) ~roots =
  let heap = Heap.create schema in
  (* Pass 1: allocate every recorded object. *)
  Hashtbl.iter
    (fun _ r ->
      let klass = Schema.find schema r.rec_kid in
      let o = Heap.alloc_with_id heap klass ~id:r.rec_id ~modified:false in
      Array.blit r.rec_ints 0 o.Model.ints 0 (Array.length r.rec_ints))
    table;
  (* Pass 2: patch child pointers. *)
  Hashtbl.iter
    (fun _ r ->
      let o = Heap.find_exn heap r.rec_id in
      Array.iteri
        (fun j cid ->
          if cid <> Model.null_id then
            match Heap.find heap cid with
            | Some c -> o.Model.children.(j) <- Some c
            | None ->
                error "object %d references missing child %d (slot %d)"
                  r.rec_id cid j)
        r.rec_child_ids)
    table;
  let root_objs =
    List.map
      (fun id ->
        match Heap.find heap id with
        | Some o -> o
        | None -> error "root object %d not present in checkpoint" id)
      roots
  in
  (heap, root_objs)

let of_segments schema segments ~roots =
  let table = empty_table () in
  List.iter (apply_segment schema table) segments;
  materialize schema table ~roots
