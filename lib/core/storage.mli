(** Stable storage for checkpoint chains: an append-only log file of encoded
    segments. The paper writes checkpoints "from the output stream to stable
    storage asynchronously"; here the construction cost (what the paper
    measures) is separated from the write-out, and recovery tolerates a torn
    final segment — the normal outcome of a crash mid-write.

    All file access goes through a {!Vfs.t} (default {!Vfs.real}), so the
    crash-consistency harness can substitute a fault-injecting backend. *)

type load_result = {
  segments : Segment.t list;  (** oldest first, every fully intact segment *)
  torn_tail : bool;  (** true when trailing bytes failed to decode *)
  bytes_read : int;  (** offset of the first undecodable byte (= file size
                         when not torn): the safe truncation point *)
}

val append : ?vfs:Vfs.t -> path:string -> Segment.t -> unit
(** Append one encoded segment to the log, creating the file if needed,
    and sync it — the segment is durable when this returns. *)

val temp_of : path:string -> string
(** The sibling temp path {!write_chain} stages its rewrite in. Exposed so
    tooling can ignore/clean it; never contains committed data. *)

val write_chain : ?vfs:Vfs.t -> path:string -> Chain.t -> unit
(** Replace the log with every segment of the chain, {e atomically}: the
    new contents are staged in {!temp_of}[ ~path], synced, and renamed over
    [path]. A crash at any point leaves either the complete old log or the
    complete new one, never a torn mix. *)

val load : ?vfs:Vfs.t -> string -> load_result
(** Read back every decodable segment. A corrupt or truncated tail sets
    [torn_tail] instead of raising; corruption {e before} the tail also
    stops the scan there (later segments are unreachable without framing
    resync, which we deliberately do not attempt). *)

val load_chain : ?vfs:Vfs.t -> Ickpt_runtime.Schema.t -> path:string -> Chain.t * bool
(** Rebuild a {!Chain.t} from the intact prefix of the log. Incremental
    segments that precede the first full segment (possible when the log
    was pruned externally) are rejected as {!Chain.Invalid}. Returns the
    chain and the [torn_tail] flag. *)
