(** Restoration: rebuilding a heap from checkpoint segments.

    A segment body is a sequence of object records (id, class id, scalar
    fields, child ids). Restoration proceeds in two steps:

    + {e accumulate}: fold segments oldest-to-newest into an id → record
      table; a later record for the same id supersedes the earlier one
      (records are complete local states, so replacement is exact);
    + {e materialize}: allocate every object with its recorded id and class,
      then patch child pointers by id.

    Restored objects come back with a clear [modified] flag — their state is
    exactly the checkpointed one. *)

open Ickpt_runtime

exception Error of string
(** Semantic restoration failure (unknown class id, dangling child id,
    missing root, record arity mismatch). Framing-level corruption raises
    {!Ickpt_stream.In_stream.Corrupt} instead. *)

type record = {
  rec_id : int;
  rec_kid : int;
  rec_ints : int array;
  rec_child_ids : int array;  (** {!Model.null_id} for absent children *)
}

val records_of_body : Schema.t -> string -> record list
(** Decode a segment body, in write order. *)

val scan_body : Schema.t -> string -> (int * int * int) list
(** The framing of a body without its contents: one [(rec_id, offset,
    length)] per record, in write order. This is what the chunk store
    aligns its chunk boundaries on.
    @raise Error on an unknown class id. *)

val record_at : Schema.t -> string -> pos:int -> record
(** Decode the single record starting at [pos] — the point lookup a
    per-object directory entry resolves to. *)

type table
(** Accumulated newest-wins record table. *)

val empty_table : unit -> table

val apply_segment : Schema.t -> table -> Segment.t -> unit

val add_record : table -> record -> unit
(** Newest-wins insertion of a single record, as {!apply_segment} does for
    each record of a body — the entry point for callers that fetch records
    individually (the content-addressed store's O(live) restore). *)

val table_size : table -> int

val iter_table : table -> (int -> record -> unit) -> unit
(** Visit every accumulated record (unspecified order). *)

val find_table : table -> int -> record option

val materialize : Schema.t -> table -> roots:int list -> Heap.t * Model.obj list
(** Build the heap and return the root objects in the order of [roots].
    @raise Error on dangling references or missing roots. *)

val of_segments : Schema.t -> Segment.t list -> roots:int list -> Heap.t * Model.obj list
(** Convenience: {!apply_segment} over the list (oldest first), then
    {!materialize}. *)
