(** A checkpoint chain: one full (base) checkpoint followed by incremental
    checkpoints, exactly the sequence the paper's incremental scheme
    produces. The chain owns sequence numbering and validates ordering.

    The chain is also the recovery unit: {!recover} replays the newest full
    segment and everything after it. {!compact} folds the whole chain into a
    single full segment (an extension beyond the paper; bounds recovery
    time and storage). *)

open Ickpt_runtime

exception Invalid of string
(** Structural misuse: incremental before any full checkpoint, out-of-order
    sequence numbers, or recovery from an empty chain. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

(** {1 Taking checkpoints} *)

type taken = { segment : Segment.t; stats : Checkpointer.stats }

val take_full : t -> Model.obj list -> taken
(** Run the full checkpointer over the roots and append the segment. *)

val take_incremental : t -> Model.obj list -> taken
(** Run the incremental checkpointer (Figure 1) over the roots and append.
    @raise Invalid when the chain has no full base. *)

val append : t -> Segment.t -> unit
(** Append an externally produced segment (e.g. built by a specialized
    checkpointing routine). Validates kind/sequence. On an empty chain a
    {e Full} segment is accepted at any (non-negative) sequence number and
    the chain adopts it — a full is self-contained, and the chunk store
    resumes from its oldest retained epoch after GC has dropped earlier
    ones. All subsequent segments must be contiguous.
    @raise Invalid on a sequence gap or a baseless incremental. *)

val next_seq : t -> int

val next_kind_is_full : t -> bool
(** True when the chain is empty, i.e. the next checkpoint must be full. *)

(** {1 Inspecting and recovering} *)

val segments : t -> Segment.t list
(** Oldest first. *)

val length : t -> int

val total_bytes : t -> int
(** Sum of body sizes across the chain. *)

val recover : t -> (Heap.t * Model.obj list, string) result
(** Rebuild the heap from the newest full segment and all subsequent
    incrementals; returns the roots recorded in the newest segment. *)

val compact : t -> unit
(** Replace the chain's segments by a single equivalent full segment
    (obtained by recovery + full re-checkpoint) and restart sequence
    numbering at 0, so a persisted compacted log reloads like a fresh
    chain. No-op on an empty chain. *)
