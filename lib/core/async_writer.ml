type state = Running | Closed | Failed of exn

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  drained : Condition.t;
  queue : Segment.t Queue.t;
  queue_limit : int;
  mutable state : state;
  mutable in_flight : bool;  (* a segment is being written right now *)
  mutable thread : Thread.t option;
  w : Vfs.writer;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let writer_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let rec wait () =
      match t.state with
      | Failed _ ->
          (* Never drain into a broken sink: queued segments written after a
             failure would each fail in turn (and on a half-dead device could
             even land as garbage past the failure point). They are dropped;
             the enqueuer learns of the loss from the Failed state. *)
          Mutex.unlock t.mutex;
          None
      | (Running | Closed) when not (Queue.is_empty t.queue) ->
          let seg = Queue.pop t.queue in
          t.in_flight <- true;
          Condition.broadcast t.not_full;
          Mutex.unlock t.mutex;
          Some seg
      | Closed ->
          Mutex.unlock t.mutex;
          None
      | Running ->
          Condition.wait t.not_empty t.mutex;
          wait ()
    in
    match wait () with
    | None -> ()
    | Some seg ->
        (match
           t.w.Vfs.write (Segment.encode seg);
           t.w.Vfs.sync ()
         with
        | () ->
            locked t (fun () ->
                t.in_flight <- false;
                Condition.broadcast t.drained)
        | exception e ->
            locked t (fun () ->
                t.in_flight <- false;
                t.state <- Failed e;
                Condition.broadcast t.drained;
                Condition.broadcast t.not_full));
        next ()
  in
  next ()

let create ?(vfs = Vfs.real) ?(queue_limit = 64) ~path () =
  if queue_limit < 1 then invalid_arg "Async_writer.create: queue_limit < 1";
  let w = vfs.Vfs.open_append path in
  let t =
    { mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      queue_limit;
      state = Running;
      in_flight = false;
      thread = None;
      w }
  in
  t.thread <- Some (Thread.create writer_loop t);
  t

let check_state t =
  match t.state with
  | Running -> ()
  | Closed -> failwith "Async_writer: closed"
  | Failed e -> failwith ("Async_writer: writer failed: " ^ Printexc.to_string e)

let enqueue t seg =
  locked t (fun () ->
      check_state t;
      while Queue.length t.queue >= t.queue_limit && t.state = Running do
        Condition.wait t.not_full t.mutex
      done;
      check_state t;
      Queue.push seg t.queue;
      Condition.signal t.not_empty)

let flush t =
  locked t (fun () ->
      while
        (not (Queue.is_empty t.queue && not t.in_flight))
        && t.state = Running
      do
        Condition.wait t.drained t.mutex
      done;
      match t.state with Failed _ -> check_state t | Running | Closed -> ())

let pending t =
  locked t (fun () -> Queue.length t.queue + if t.in_flight then 1 else 0)

let close t =
  let join =
    locked t (fun () ->
        match t.state with
        | Closed -> None
        | Running | Failed _ ->
            (match t.state with Running -> t.state <- Closed | _ -> ());
            Condition.broadcast t.not_empty;
            Condition.broadcast t.not_full;
            t.thread)
  in
  match join with
  | None -> ()
  | Some thread ->
      (* On Closed the writer drains remaining segments before exiting; on
         Failed it exits immediately without touching the sink, so closing
         a failed writer never blocks on an undrainable queue. *)
      Thread.join thread;
      locked t (fun () -> t.thread <- None);
      t.w.Vfs.close ()
