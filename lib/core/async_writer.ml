module Batch = struct
  type state = Running | Closed | Failed of exn

  type policy = { max_items : int; max_bytes : int; linger : float }

  let default_policy = { max_items = 32; max_bytes = 1 lsl 20; linger = 0. }

  type 'a t = {
    mutex : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    drained : Condition.t;
    queue : 'a Queue.t;
    queue_limit : int;
    policy : policy;
    size : 'a -> int;
    sink : 'a list -> unit;
    mutable state : state;
    mutable in_flight : int;  (* items in the batch being committed *)
    mutable n_batches : int;
    mutable thread : Thread.t option;
  }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* Pop a batch: up to max_items items or max_bytes accumulated size,
     whichever closes first (the first item always boards, however big). *)
  let pop_batch t =
    let rec go acc n bytes =
      if n >= t.policy.max_items || bytes >= t.policy.max_bytes
         || Queue.is_empty t.queue
      then List.rev acc
      else
        let x = Queue.pop t.queue in
        go (x :: acc) (n + 1) (bytes + t.size x)
    in
    go [] 0 0

  let drain_loop t =
    let rec next () =
      Mutex.lock t.mutex;
      let rec wait can_linger =
        match t.state with
        | Failed _ ->
            (* Never drain into a broken sink: items handed to it after a
               failure would each fail in turn (and on a half-dead device
               could even land as garbage past the failure point). They are
               dropped; the enqueuer learns of the loss from the Failed
               state. *)
            Mutex.unlock t.mutex;
            None
        | (Running | Closed) when not (Queue.is_empty t.queue) ->
            (* The group-commit window: with work available but the batch
               not yet full, dwell [linger] seconds once so slow producers
               can board, then cut the batch with whatever is there.
               Skipped when closing — a close wants the queue gone, not
               padded. *)
            if
              can_linger && t.policy.linger > 0. && t.state = Running
              && Queue.length t.queue < t.policy.max_items
            then begin
              Mutex.unlock t.mutex;
              Thread.delay t.policy.linger;
              Mutex.lock t.mutex;
              wait false
            end
            else begin
              let batch = pop_batch t in
              t.in_flight <- List.length batch;
              Condition.broadcast t.not_full;
              Mutex.unlock t.mutex;
              Some batch
            end
        | Closed ->
            Mutex.unlock t.mutex;
            None
        | Running ->
            Condition.wait t.not_empty t.mutex;
            wait can_linger
      in
      match wait true with
      | None -> ()
      | Some batch ->
          (match t.sink batch with
          | () ->
              locked t (fun () ->
                  t.in_flight <- 0;
                  t.n_batches <- t.n_batches + 1;
                  Condition.broadcast t.drained)
          | exception e ->
              locked t (fun () ->
                  t.in_flight <- 0;
                  t.state <- Failed e;
                  Condition.broadcast t.drained;
                  Condition.broadcast t.not_full));
          next ()
    in
    next ()

  let create ?(queue_limit = 64) ?(policy = default_policy) ~size ~sink () =
    if queue_limit < 1 then invalid_arg "Async_writer.Batch: queue_limit < 1";
    if policy.max_items < 1 then invalid_arg "Async_writer.Batch: max_items < 1";
    if policy.max_bytes < 1 then invalid_arg "Async_writer.Batch: max_bytes < 1";
    let t =
      { mutex = Mutex.create ();
        not_empty = Condition.create ();
        not_full = Condition.create ();
        drained = Condition.create ();
        queue = Queue.create ();
        queue_limit;
        policy;
        size;
        sink;
        state = Running;
        in_flight = 0;
        n_batches = 0;
        thread = None }
    in
    t.thread <- Some (Thread.create drain_loop t);
    t

  let check_state t =
    match t.state with
    | Running -> ()
    | Closed -> failwith "Async_writer: closed"
    | Failed e ->
        failwith ("Async_writer: writer failed: " ^ Printexc.to_string e)

  let enqueue t x =
    locked t (fun () ->
        check_state t;
        while Queue.length t.queue >= t.queue_limit && t.state = Running do
          Condition.wait t.not_full t.mutex
        done;
        check_state t;
        Queue.push x t.queue;
        Condition.signal t.not_empty)

  let flush t =
    locked t (fun () ->
        while
          (not (Queue.is_empty t.queue && t.in_flight = 0))
          && t.state = Running
        do
          Condition.wait t.drained t.mutex
        done;
        match t.state with Failed _ -> check_state t | Running | Closed -> ())

  let pending t = locked t (fun () -> Queue.length t.queue + t.in_flight)

  let batches t = locked t (fun () -> t.n_batches)

  let close t =
    let join =
      locked t (fun () ->
          match t.state with
          | Closed -> None
          | Running | Failed _ ->
              (match t.state with Running -> t.state <- Closed | _ -> ());
              Condition.broadcast t.not_empty;
              Condition.broadcast t.not_full;
              t.thread)
    in
    match join with
    | None -> ()
    | Some thread ->
        (* On Closed the drain thread empties the queue before exiting; on
           Failed it exits immediately without touching the sink, so closing
           a failed batch never blocks on an undrainable queue. *)
        Thread.join thread;
        locked t (fun () -> t.thread <- None)
end

(* The segment writer: Batch instantiated with batches of one, so each
   segment is written and synced individually — the durability granularity
   the chain's crash model (invariant I7) assumes. *)
type t = { batch : Segment.t Batch.t; w : Vfs.writer }

let create ?(vfs = Vfs.real) ?(queue_limit = 64) ~path () =
  if queue_limit < 1 then invalid_arg "Async_writer.create: queue_limit < 1";
  let w = vfs.Vfs.open_append path in
  let sink segs =
    List.iter
      (fun seg ->
        w.Vfs.write (Segment.encode seg);
        w.Vfs.sync ())
      segs
  in
  let policy = { Batch.default_policy with Batch.max_items = 1 } in
  { batch = Batch.create ~queue_limit ~policy ~size:Segment.encoded_size ~sink ();
    w }

let enqueue t seg = Batch.enqueue t.batch seg

let flush t = Batch.flush t.batch

let pending t = Batch.pending t.batch

let close t =
  Batch.close t.batch;
  t.w.Vfs.close ()
