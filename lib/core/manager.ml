open Ickpt_runtime
open Ickpt_stream

type sink = Sync | Async of Async_writer.t

type t = {
  schema : Schema.t;
  path : string;
  vfs : Vfs.t;
  policy : Policy.t;
  compact_above : int;
  chain : Chain.t;
  mutable sink : sink;
  mutable closed : bool;
}

let create ?(vfs = Vfs.real) ?(policy = Policy.Incremental_after_base)
    ?(async = false) ?(compact_above = 0) schema ~path =
  let { Storage.segments; torn_tail; bytes_read } = Storage.load ~vfs path in
  (* A torn tail means garbage bytes follow the intact prefix. Cut them off
     before the first append: appending after the garbage would make every
     subsequent segment unreachable on reload (the loader stops at the first
     undecodable byte and cannot resync). *)
  if torn_tail then vfs.Vfs.truncate path ~len:bytes_read;
  let chain = Chain.create schema in
  List.iter (Chain.append chain) segments;
  let sink =
    if async then Async (Async_writer.create ~vfs ~path ()) else Sync
  in
  { schema; path; vfs; policy; compact_above; chain; sink; closed = false }

let chain t = t.chain

let segments_on_disk t = Chain.length t.chain

let persist t seg =
  match t.sink with
  | Sync -> Storage.append ~vfs:t.vfs ~path:t.path seg
  | Async w -> Async_writer.enqueue w seg

let flush t =
  match t.sink with Sync -> () | Async w -> Async_writer.flush w

let compact_now t =
  flush t;
  Chain.compact t.chain;
  (* Rewrite the log to the single compacted segment. The async writer (if
     any) is recreated so its file offset agrees with the truncation. *)
  (match t.sink with
  | Sync -> ()
  | Async w -> Async_writer.close w);
  Storage.write_chain ~vfs:t.vfs ~path:t.path t.chain;
  match t.sink with
  | Sync -> ()
  | Async _ -> t.sink <- Async (Async_writer.create ~vfs:t.vfs ~path:t.path ())

let maybe_compact t =
  if t.compact_above > 0 && Chain.length t.chain > t.compact_above then
    compact_now t

let check_open t = if t.closed then failwith "Manager: closed"

let checkpoint t roots =
  check_open t;
  let taken =
    match Policy.decide t.policy t.chain with
    | Segment.Full -> Chain.take_full t.chain roots
    | Segment.Incremental -> Chain.take_incremental t.chain roots
  in
  persist t taken.Chain.segment;
  maybe_compact t;
  taken

let checkpoint_with t roots ~body =
  check_open t;
  let seg =
    match Policy.decide t.policy t.chain with
    | Segment.Full -> (Chain.take_full t.chain roots).Chain.segment
    | Segment.Incremental ->
        let d = Out_stream.create () in
        body d roots;
        let seg =
          { Segment.kind = Segment.Incremental;
            seq = Chain.next_seq t.chain;
            roots = List.map (fun o -> o.Model.info.Model.id) roots;
            body = Out_stream.contents d }
        in
        Chain.append t.chain seg;
        seg
  in
  persist t seg;
  maybe_compact t;
  seg

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.sink with Sync -> () | Async w -> Async_writer.close w
  end

let recover_latest ?vfs schema ~path =
  let chain, _torn = Storage.load_chain ?vfs schema ~path in
  Chain.recover chain
