open Ickpt_runtime
open Ickpt_stream

type external_sink = {
  sink_append : Segment.t -> unit;
  sink_resume : unit -> Segment.t list;
  sink_compact : (unit -> unit) option;
}

type sink = Sync | Async of Async_writer.t | External of external_sink

type t = {
  schema : Schema.t;
  path : string;
  vfs : Vfs.t;
  policy : Policy.t;
  compact_above : int;
  mutable chain : Chain.t;
  mutable sink : sink;
  mutable closed : bool;
}

let create ?(vfs = Vfs.real) ?(policy = Policy.Incremental_after_base)
    ?(async = false) ?(compact_above = 0) ?sink schema ~path =
  (* A crash between staging a compacted log and renaming it over [path]
     leaves the staged temp behind; it holds no committed data, so reopen
     is where it gets swept. *)
  let tmp = Storage.temp_of ~path in
  if vfs.Vfs.exists tmp then vfs.Vfs.remove tmp;
  let chain = Chain.create schema in
  let sink =
    match sink with
    | Some ext ->
        (* A store-backed manager: the external sink owns persistence, the
           log file at [path] is not touched. Appends through an external
           sink are synchronous (the store syncs per epoch), so [async] is
           ignored. *)
        List.iter (Chain.append chain) (ext.sink_resume ());
        External ext
    | None ->
        let { Storage.segments; torn_tail; bytes_read } =
          Storage.load ~vfs path
        in
        (* A torn tail means garbage bytes follow the intact prefix. Cut
           them off before the first append: appending after the garbage
           would make every subsequent segment unreachable on reload (the
           loader stops at the first undecodable byte and cannot resync). *)
        if torn_tail then vfs.Vfs.truncate path ~len:bytes_read;
        List.iter (Chain.append chain) segments;
        if async then Async (Async_writer.create ~vfs ~path ()) else Sync
  in
  { schema; path; vfs; policy; compact_above; chain; sink; closed = false }

let chain t = t.chain

let segments_on_disk t = Chain.length t.chain

let persist t seg =
  match t.sink with
  | Sync -> Storage.append ~vfs:t.vfs ~path:t.path seg
  | Async w -> Async_writer.enqueue w seg
  | External ext -> ext.sink_append seg

let flush t =
  match t.sink with Sync | External _ -> () | Async w -> Async_writer.flush w

let compact_now t =
  flush t;
  match t.sink with
  | External ext ->
      (* The store keeps epoch numbering stable across compaction, so the
         chain is NOT renumbered; compaction is the sink's GC (if it has
         one), and the chain is re-resumed from what survives. *)
      (match ext.sink_compact with None -> () | Some gc -> gc ());
      let chain = Chain.create t.schema in
      List.iter (Chain.append chain) (ext.sink_resume ());
      t.chain <- chain
  | Sync | Async _ ->
      Chain.compact t.chain;
      (* Rewrite the log to the single compacted segment. The async writer
         (if any) is recreated so its file offset agrees with the
         truncation. *)
      (match t.sink with
      | Sync | External _ -> ()
      | Async w -> Async_writer.close w);
      Storage.write_chain ~vfs:t.vfs ~path:t.path t.chain;
      (match t.sink with
      | Sync | External _ -> ()
      | Async _ ->
          t.sink <- Async (Async_writer.create ~vfs:t.vfs ~path:t.path ()))

let maybe_compact t =
  match t.sink with
  | External _ ->
      (* Auto-compaction renumbers the chain from 0, which would desync the
         store's epoch numbering — store-backed managers compact only on an
         explicit [compact_now]. *)
      ()
  | Sync | Async _ ->
      if t.compact_above > 0 && Chain.length t.chain > t.compact_above then
        compact_now t

let check_open t = if t.closed then failwith "Manager: closed"

let checkpoint t roots =
  check_open t;
  let taken =
    match Policy.decide t.policy t.chain with
    | Segment.Full -> Chain.take_full t.chain roots
    | Segment.Incremental -> Chain.take_incremental t.chain roots
  in
  persist t taken.Chain.segment;
  maybe_compact t;
  taken

let checkpoint_with t roots ~body =
  check_open t;
  let seg =
    match Policy.decide t.policy t.chain with
    | Segment.Full -> (Chain.take_full t.chain roots).Chain.segment
    | Segment.Incremental ->
        let d = Out_stream.create () in
        body d roots;
        let seg =
          { Segment.kind = Segment.Incremental;
            seq = Chain.next_seq t.chain;
            roots = List.map (fun o -> o.Model.info.Model.id) roots;
            body = Out_stream.contents d }
        in
        Chain.append t.chain seg;
        seg
  in
  persist t seg;
  maybe_compact t;
  seg

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.sink with
    | Sync | External _ -> ()
    | Async w -> Async_writer.close w
  end

let recover_latest ?vfs schema ~path =
  let chain, _torn = Storage.load_chain ?vfs schema ~path in
  Chain.recover chain
