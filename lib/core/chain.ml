open Ickpt_runtime
open Ickpt_stream

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

type t = {
  schema : Schema.t;
  mutable segments : Segment.t list;  (* newest first *)
  mutable next_seq : int;
}

let create schema = { schema; segments = []; next_seq = 0 }

let schema t = t.schema

type taken = { segment : Segment.t; stats : Checkpointer.stats }

let segments t = List.rev t.segments

let length t = List.length t.segments

let next_seq t = t.next_seq

let next_kind_is_full t = t.segments = []

let append t seg =
  (match seg.Segment.kind, t.segments with
  | Segment.Incremental, [] ->
      invalid "incremental checkpoint with no full base"
  | Segment.Full, [] ->
      (* A Full segment is self-contained, so it may start a chain at any
         sequence number — the store resumes from its oldest retained epoch
         after GC has dropped earlier ones. The chain adopts its seq. *)
      if seg.Segment.seq < 0 then
        invalid "segment seq %d is negative" seg.Segment.seq
  | (Segment.Incremental | Segment.Full), _ :: _ ->
      if seg.Segment.seq <> t.next_seq then
        invalid "segment seq %d, expected %d" seg.Segment.seq t.next_seq);
  t.segments <- seg :: t.segments;
  t.next_seq <- seg.Segment.seq + 1

let take ~kind runner t roots =
  let stats = Checkpointer.fresh_stats () in
  let d = Out_stream.create () in
  runner ~stats d roots;
  let segment =
    { Segment.kind;
      seq = t.next_seq;
      roots = List.map (fun o -> o.Model.info.Model.id) roots;
      body = Out_stream.contents d }
  in
  append t segment;
  { segment; stats }

let take_full t roots =
  take ~kind:Segment.Full
    (fun ~stats d roots -> Checkpointer.full_many ~stats d roots)
    t roots

let take_incremental t roots =
  if t.segments = [] then invalid "take_incremental: no full base";
  take ~kind:Segment.Incremental
    (fun ~stats d roots -> Checkpointer.incremental_many ~stats d roots)
    t roots

let total_bytes t =
  List.fold_left (fun acc s -> acc + Segment.body_size s) 0 t.segments

let recover t =
  match t.segments with
  | [] -> Error "recover: empty chain"
  | newest :: _ -> (
      let since_full =
        (* Oldest-first suffix starting at the newest Full segment. *)
        let rec cut acc = function
          | [] -> None
          | seg :: older -> (
              match seg.Segment.kind with
              | Segment.Full -> Some (seg :: acc)
              | Segment.Incremental -> cut (seg :: acc) older)
        in
        cut [] t.segments
      in
      match since_full with
      | None -> Error "recover: no full checkpoint in chain"
      | Some segs -> (
          try Ok (Restore.of_segments t.schema segs ~roots:newest.Segment.roots)
          with
          | Restore.Error msg -> Error ("restore: " ^ msg)
          | In_stream.Corrupt msg -> Error ("corrupt: " ^ msg)))

let compact t =
  match recover t with
  | Error _ when t.segments = [] -> ()
  | Error msg -> invalid "compact: %s" msg
  | Ok (_heap, roots) ->
      let d = Out_stream.create () in
      let stats = Checkpointer.fresh_stats () in
      Checkpointer.full_many ~stats d roots;
      (* The compacted chain is a fresh one: numbering restarts at 0 so a
         persisted compacted log reloads like any other chain. *)
      let seg =
        { Segment.kind = Segment.Full;
          seq = 0;
          roots = List.map (fun o -> o.Model.info.Model.id) roots;
          body = Out_stream.contents d }
      in
      t.segments <- [ seg ];
      t.next_seq <- 1
