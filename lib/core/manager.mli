(** The checkpoint manager: the one-stop production API tying together the
    policy (full vs incremental), the chain, stable storage (synchronous or
    asynchronous write-out) and compaction. Applications that don't need
    the individual pieces use this.

    Typical lifecycle:
    {[
      let m = Manager.create ~policy:(Policy.Full_every 16) ~async:true
                schema ~path:"app.ckpt" in
      ... Manager.checkpoint m roots ... (* once per application epoch *)
      Manager.close m
      (* after a crash: *)
      match Manager.recover_latest schema ~path:"app.ckpt" with ...
    ]} *)

open Ickpt_runtime

type t

val create :
  ?vfs:Vfs.t -> ?policy:Policy.t -> ?async:bool -> ?compact_above:int ->
  Schema.t -> path:string -> t
(** Defaults: [vfs = Vfs.real], [policy = Incremental_after_base],
    [async = false] (each checkpoint is on disk when [checkpoint] returns),
    [compact_above = 0] meaning never auto-compact; a positive value
    compacts the on-disk chain whenever it exceeds that many segments. If
    [path] already holds a valid chain prefix, the manager resumes its
    sequence numbering from it; a torn tail left by a crash is truncated
    away before the first new append, so the resumed log stays readable. *)

val checkpoint : t -> Model.obj list -> Chain.taken
(** Take a checkpoint of the roots using the policy-selected kind and
    persist it (or queue it for write-out when async). *)

val checkpoint_with :
  t -> Model.obj list ->
  body:(Ickpt_stream.Out_stream.t -> Model.obj list -> unit) -> Segment.t
(** Like {!checkpoint} but the caller supplies the body producer — the hook
    for specialized checkpointing routines. The segment is always
    incremental-kind unless the policy demands a full one, in which case
    the generic full checkpointer is used instead of [body]. *)

val chain : t -> Chain.t

val segments_on_disk : t -> int

val flush : t -> unit
(** Wait for queued segments to hit the disk (no-op when synchronous). *)

val compact_now : t -> unit
(** Recover, rewrite as one full segment, truncate the log to it. *)

val close : t -> unit

val recover_latest :
  ?vfs:Vfs.t -> Schema.t -> path:string -> (Heap.t * Model.obj list, string) result
(** Static recovery entry point: load the log's intact prefix and recover. *)
