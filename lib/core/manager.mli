(** The checkpoint manager: the one-stop production API tying together the
    policy (full vs incremental), the chain, stable storage (synchronous or
    asynchronous write-out) and compaction. Applications that don't need
    the individual pieces use this.

    Typical lifecycle:
    {[
      let m = Manager.create ~policy:(Policy.Full_every 16) ~async:true
                schema ~path:"app.ckpt" in
      ... Manager.checkpoint m roots ... (* once per application epoch *)
      Manager.close m
      (* after a crash: *)
      match Manager.recover_latest schema ~path:"app.ckpt" with ...
    ]} *)

open Ickpt_runtime

type t

type external_sink = {
  sink_append : Segment.t -> unit;
      (** persist one segment; durable when it returns *)
  sink_resume : unit -> Segment.t list;
      (** a restorable oldest-first suffix of what is persisted (must start
          with a full segment; may start at any sequence number) *)
  sink_compact : (unit -> unit) option;
      (** reclaim space, if the sink supports it; [sink_resume] afterwards
          reflects what survived *)
}
(** A pluggable persistence backend. The manager stays ignorant of what is
    behind it — the content-addressed store ([Ickpt_cas.Store.manager_sink])
    is the main implementation, but tests plug in plain closures. *)

val create :
  ?vfs:Vfs.t -> ?policy:Policy.t -> ?async:bool -> ?compact_above:int ->
  ?sink:external_sink -> Schema.t -> path:string -> t
(** Defaults: [vfs = Vfs.real], [policy = Incremental_after_base],
    [async = false] (each checkpoint is on disk when [checkpoint] returns),
    [compact_above = 0] meaning never auto-compact; a positive value
    compacts the on-disk chain whenever it exceeds that many segments. If
    [path] already holds a valid chain prefix, the manager resumes its
    sequence numbering from it; a torn tail left by a crash is truncated
    away before the first new append, so the resumed log stays readable. A
    stale staged temp file ({!Storage.temp_of}[ ~path]) left by a crash
    mid-compaction is removed.

    With [?sink], persistence is delegated entirely to the external sink:
    the log file at [path] is never written, the chain resumes from
    [sink_resume] (adopting its sequence numbering), [async] is ignored
    (external appends are synchronous), and auto-compaction is disabled —
    [compact_now] delegates to [sink_compact], which preserves sequence
    numbering instead of restarting it at 0. *)

val checkpoint : t -> Model.obj list -> Chain.taken
(** Take a checkpoint of the roots using the policy-selected kind and
    persist it (or queue it for write-out when async). *)

val checkpoint_with :
  t -> Model.obj list ->
  body:(Ickpt_stream.Out_stream.t -> Model.obj list -> unit) -> Segment.t
(** Like {!checkpoint} but the caller supplies the body producer — the hook
    for specialized checkpointing routines. The segment is always
    incremental-kind unless the policy demands a full one, in which case
    the generic full checkpointer is used instead of [body]. *)

val chain : t -> Chain.t

val segments_on_disk : t -> int

val flush : t -> unit
(** Wait for queued segments to hit the disk (no-op when synchronous). *)

val compact_now : t -> unit
(** Recover, rewrite as one full segment, truncate the log to it. With an
    external sink: run its [sink_compact] (if any) and re-resume the chain
    from the sink — sequence numbering is preserved, not restarted. *)

val close : t -> unit

val recover_latest :
  ?vfs:Vfs.t -> Schema.t -> path:string -> (Heap.t * Model.obj list, string) result
(** Static recovery entry point: load the log's intact prefix and recover. *)
