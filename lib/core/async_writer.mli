(** Asynchronous write-out of checkpoint segments.

    The paper's protocol constructs checkpoints synchronously (blocking the
    application) but writes them "from the output stream to stable storage
    asynchronously". This module provides that second half: a background
    thread drains a bounded queue of encoded segments into an append-only
    log, so the application's checkpoint latency covers construction only.

    Ordering is preserved (the queue is FIFO); durability points are
    explicit ({!flush} blocks until everything enqueued so far has reached
    the file; each segment is additionally synced as it is written). If the
    writer thread fails (e.g. disk error), the error surfaces at the next
    {!enqueue} or {!flush}; segments still queued at that point are
    {e dropped}, never written after the failure — writing past a failed
    write could interleave garbage into the log. {!close} on a failed
    writer returns promptly instead of waiting for an impossible drain.

    The queueing/draining machinery is factored out as {!Batch}, a
    polymorphic batching queue whose sink receives {e runs} of items
    instead of one at a time — the group-commit primitive the multi-tenant
    service amortizes fsyncs with ([Ickpt_service.Service]). The segment
    writer below is [Batch] instantiated with batches of one. *)

(** A bounded FIFO queue drained in batches by a background thread.

    The sink is handed consecutive runs of items in enqueue order; a batch
    closes when it reaches [max_items] items or [max_bytes] accumulated
    size (per the [size] measure), or when the queue runs dry. A positive
    [linger] makes the drain thread dwell that many seconds after finding
    work before cutting the batch, giving slow producers a chance to board
    — the classic group-commit window.

    Failure semantics match the segment writer's: a sink exception marks
    the batch failed, queued items are dropped (never handed to a broken
    sink), and the error surfaces at the next [enqueue] or [flush]. *)
module Batch : sig
  type 'a t

  type policy = {
    max_items : int;  (** batch size cap; >= 1 *)
    max_bytes : int;  (** batch byte cap (per the [size] measure); >= 1 *)
    linger : float;
        (** seconds to wait for the batch to fill before committing it
            anyway; [0.] drains whatever is queued immediately *)
  }

  val default_policy : policy
  (** [{ max_items = 32; max_bytes = 1 lsl 20; linger = 0. }] *)

  val create :
    ?queue_limit:int ->
    ?policy:policy ->
    size:('a -> int) ->
    sink:('a list -> unit) ->
    unit ->
    'a t
  (** Start a drain thread. [queue_limit] (default 64) bounds in-flight
      items; [enqueue] blocks when full. [sink] is called with non-empty
      batches, in enqueue order, never concurrently with itself; it must
      make its batch durable before returning. *)

  val enqueue : 'a t -> 'a -> unit
  (** @raise Failure if the batch has failed or was closed. *)

  val flush : 'a t -> unit
  (** Block until everything enqueued so far has been handed to the sink
      and the sink has returned. @raise Failure on a failed batch. *)

  val pending : 'a t -> int
  (** Items queued or in the batch currently being committed. *)

  val batches : 'a t -> int
  (** Sink invocations so far — the group-commit count an fsync-per-epoch
      comparison divides by. *)

  val close : 'a t -> unit
  (** Drain, stop the thread. Idempotent; on a failed batch, drops what is
      queued and returns promptly. *)
end

type t

val create : ?vfs:Vfs.t -> ?queue_limit:int -> path:string -> unit -> t
(** Start a writer appending to [path] (created if missing) through [vfs]
    (default {!Vfs.real}).
    [queue_limit] (default 64) bounds the number of in-flight segments;
    {!enqueue} blocks when the queue is full — back-pressure instead of
    unbounded memory. *)

val enqueue : t -> Segment.t -> unit
(** Hand a segment to the writer; returns as soon as it is queued.
    @raise Failure if the writer has failed or was closed. *)

val flush : t -> unit
(** Block until every segment enqueued so far is written and synced. *)

val pending : t -> int
(** Segments queued but not yet written. *)

val close : t -> unit
(** Flush, stop the thread, close the file. Idempotent. On a [Failed]
    writer this drops whatever is still queued and returns without
    attempting further writes. *)
