(** Asynchronous write-out of checkpoint segments.

    The paper's protocol constructs checkpoints synchronously (blocking the
    application) but writes them "from the output stream to stable storage
    asynchronously". This module provides that second half: a background
    thread drains a bounded queue of encoded segments into an append-only
    log, so the application's checkpoint latency covers construction only.

    Ordering is preserved (the queue is FIFO); durability points are
    explicit ({!flush} blocks until everything enqueued so far has reached
    the file; each segment is additionally synced as it is written). If the
    writer thread fails (e.g. disk error), the error surfaces at the next
    {!enqueue} or {!flush}; segments still queued at that point are
    {e dropped}, never written after the failure — writing past a failed
    write could interleave garbage into the log. {!close} on a failed
    writer returns promptly instead of waiting for an impossible drain. *)

type t

val create : ?vfs:Vfs.t -> ?queue_limit:int -> path:string -> unit -> t
(** Start a writer appending to [path] (created if missing) through [vfs]
    (default {!Vfs.real}).
    [queue_limit] (default 64) bounds the number of in-flight segments;
    {!enqueue} blocks when the queue is full — back-pressure instead of
    unbounded memory. *)

val enqueue : t -> Segment.t -> unit
(** Hand a segment to the writer; returns as soon as it is queued.
    @raise Failure if the writer has failed or was closed. *)

val flush : t -> unit
(** Block until every segment enqueued so far is written and synced. *)

val pending : t -> int
(** Segments queued but not yet written. *)

val close : t -> unit
(** Flush, stop the thread, close the file. Idempotent. On a [Failed]
    writer this drops whatever is still queued and returns without
    attempting further writes. *)
