(** The storage layer's view of the filesystem, as a value.

    Everything {!Storage}, {!Async_writer} and {!Manager} do to stable
    storage goes through one of these records, so a test harness can swap
    the real filesystem for a simulated one that injects crashes and I/O
    errors at any write boundary (see [Ickpt_faultsim.Sim]). The default
    everywhere is {!real}, so existing callers are unaffected.

    The durability contract the storage layer relies on:
    - [writer.write] appends bytes to the open file (visible to subsequent
      reads, but not necessarily durable across a power loss);
    - [writer.sync] is the durability point: everything written so far
      survives a crash once it returns;
    - [rename] atomically replaces the destination — after a crash the
      destination holds either the old or the new content, never a mix. *)

type writer = {
  write : string -> unit;  (** append bytes at the end of the file *)
  sync : unit -> unit;  (** flush and fsync: the durability barrier *)
  close : unit -> unit;  (** release the handle; must not raise *)
}

type t = {
  exists : string -> bool;
  read_file : string -> string;  (** whole contents; raises if missing *)
  open_append : string -> writer;  (** append mode, create if missing *)
  open_trunc : string -> writer;  (** truncate-or-create *)
  truncate : string -> len:int -> unit;  (** cut the file to [len] bytes *)
  rename : src:string -> dst:string -> unit;  (** atomic replace *)
  remove : string -> unit;
}

val real : t
(** The actual filesystem. [sync] flushes the channel and [fsync]s the
    descriptor; [rename] is POSIX [rename(2)] (atomic on one filesystem). *)
