type writer = {
  write : string -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

type t = {
  exists : string -> bool;
  read_file : string -> string;
  open_append : string -> writer;
  open_trunc : string -> writer;
  truncate : string -> len:int -> unit;
  rename : src:string -> dst:string -> unit;
  remove : string -> unit;
}

let writer_of_channel oc =
  { write = (fun s -> output_string oc s);
    sync =
      (fun () ->
        flush oc;
        (* Some targets (pipes, odd filesystems) reject fsync; losing the
           barrier there is no worse than the pre-fsync behaviour. *)
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ | Sys_error _ -> ());
    close = (fun () -> try close_out oc with Sys_error _ -> ()) }

let real =
  { exists = Sys.file_exists;
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    open_append =
      (fun path ->
        writer_of_channel
          (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path));
    open_trunc = (fun path -> writer_of_channel (open_out_bin path));
    truncate = (fun path ~len -> Unix.truncate path len);
    rename = (fun ~src ~dst -> Sys.rename src dst);
    remove = Sys.remove }
