type t = {
  schema : Schema.t;
  objects : (int, Model.obj) Hashtbl.t;
  mutable next_id : int;
}

let create schema = { schema; objects = Hashtbl.create 1024; next_id = 0 }

let schema t = t.schema

let make_obj klass ~id ~modified =
  { Model.info = { Model.id; modified };
    klass;
    ints = Array.make klass.Model.n_ints 0;
    children = Array.make klass.Model.n_children None }

let alloc t klass =
  let o = make_obj klass ~id:t.next_id ~modified:true in
  Hashtbl.add t.objects t.next_id o;
  t.next_id <- t.next_id + 1;
  o

let alloc_with_id t klass ~id ~modified =
  if id < 0 then invalid_arg "Heap.alloc_with_id: negative id";
  if Hashtbl.mem t.objects id then
    invalid_arg (Printf.sprintf "Heap.alloc_with_id: id %d already live" id);
  let o = make_obj klass ~id ~modified in
  Hashtbl.add t.objects id o;
  if id >= t.next_id then t.next_id <- id + 1;
  o

let find t id = Hashtbl.find_opt t.objects id

let find_exn t id = Hashtbl.find t.objects id

let count t = Hashtbl.length t.objects

let iter t f = Hashtbl.iter (fun _ o -> f o) t.objects

let next_id t = t.next_id

let clear_all_modified t =
  iter t (fun o -> o.Model.info.Model.modified <- false)

let modified_count t =
  let n = ref 0 in
  iter t (fun o -> if o.Model.info.Model.modified then incr n);
  !n

let modified_ids t =
  let ids = ref [] in
  iter t (fun o ->
      if o.Model.info.Model.modified then ids := o.Model.info.Model.id :: !ids);
  List.sort compare !ids

let sweep t ~roots =
  let live = Hashtbl.create (Hashtbl.length t.objects) in
  let rec mark (o : Model.obj) =
    if not (Hashtbl.mem live o.Model.info.Model.id) then begin
      Hashtbl.add live o.Model.info.Model.id ();
      Array.iter
        (function None -> () | Some c -> mark c)
        o.Model.children
    end
  in
  List.iter mark roots;
  let dead =
    Hashtbl.fold
      (fun id _ acc -> if Hashtbl.mem live id then acc else id :: acc)
      t.objects []
  in
  List.iter (Hashtbl.remove t.objects) dead;
  List.length dead
