let trace : (Model.obj -> unit) option ref = ref None

let dirty o =
  o.Model.info.Model.modified <- true;
  match !trace with None -> () | Some f -> f o

let set_int o i v =
  o.Model.ints.(i) <- v;
  dirty o

let set_child o i c =
  o.Model.children.(i) <- c;
  dirty o

let same_child a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | None, Some _ | Some _, None -> false

let set_int_if_changed o i v =
  if o.Model.ints.(i) = v then false
  else begin
    set_int o i v;
    true
  end

let set_child_if_changed o i c =
  if same_child o.Model.children.(i) c then false
  else begin
    set_child o i c;
    true
  end

(* Statically elided barriers: the store happens, but no flag is set and
   no trace fires — the compiled-out form the paper's Section 6 overhead
   discussion assumes for provably dead sites. If the proof is wrong,
   the object silently misses the next incremental checkpoint, which the
   differential elision oracle detects as a byte divergence. *)
let set_int_raw o i v =
  if o.Model.ints.(i) = v then false
  else begin
    o.Model.ints.(i) <- v;
    true
  end

let set_child_raw o i c =
  if same_child o.Model.children.(i) c then false
  else begin
    o.Model.children.(i) <- c;
    true
  end

let get_int o i = o.Model.ints.(i)

let get_child o i = o.Model.children.(i)

let touch o = dirty o

let with_trace hook f =
  let saved = !trace in
  trace := Some hook;
  Fun.protect ~finally:(fun () -> trace := saved) f
