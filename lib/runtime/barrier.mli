(** Write barriers: every mutation of a checkpointable object goes through
    these functions, which set the object's [modified] flag — the mechanism
    the paper assumes ("extra time on every assignment to update the
    associated flag", Section 6).

    [set_*_if_changed] variants only dirty the object when the value really
    changes; iterative fixpoint analyses use them so that converged objects
    stop appearing in incremental checkpoints.

    An optional trace hook observes every dirtying write; the declaration
    inference of {!Ickpt_analysis.Decls} uses it to learn per-phase
    modification patterns (the paper's stated future work). *)

val set_int : Model.obj -> int -> int -> unit

val set_child : Model.obj -> int -> Model.obj option -> unit

val set_int_if_changed : Model.obj -> int -> int -> bool
(** Returns [true] iff the stored value changed (and the flag was set). *)

val set_child_if_changed : Model.obj -> int -> Model.obj option -> bool

val set_int_raw : Model.obj -> int -> int -> bool
(** Elided barrier: store without setting the [modified] flag or firing
    the trace hook, for sites a static analysis proved dead in the
    current phase (see {!Staticcheck.Barrier_elide}). Returns [true] iff
    the stored value changed. *)

val set_child_raw : Model.obj -> int -> Model.obj option -> bool

val get_int : Model.obj -> int -> int

val get_child : Model.obj -> int -> Model.obj option

val touch : Model.obj -> unit
(** Mark modified without changing any field. *)

val with_trace : (Model.obj -> unit) -> (unit -> 'a) -> 'a
(** [with_trace hook f] runs [f] with [hook] invoked on every dirtying
    write; restores the previous hook afterwards (exceptions included). *)
