(** The live heap: allocation, unique-id management and the id → object
    registry that both incremental recording and restoration rely on. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val alloc : t -> Model.klass -> Model.obj
(** Allocate a fresh object with zeroed scalar slots and null children.
    Its [modified] flag starts {e set}: an object created since the previous
    checkpoint must appear in the next one. *)

val alloc_with_id : t -> Model.klass -> id:int -> modified:bool -> Model.obj
(** Restoration-path allocation with a caller-chosen id.
    @raise Invalid_argument if [id] is already live or negative. *)

val find : t -> int -> Model.obj option

val find_exn : t -> int -> Model.obj
(** @raise Not_found *)

val count : t -> int

val iter : t -> (Model.obj -> unit) -> unit

val next_id : t -> int
(** The id the next {!alloc} will use (for tests and stats). *)

val clear_all_modified : t -> unit
(** Reset every object's flag, e.g. after an initial full checkpoint. *)

val modified_count : t -> int

val modified_ids : t -> int list
(** Ids of all objects whose [modified] flag is currently set, sorted —
    the dynamically observed dirty set the elision oracle compares
    against static may-write regions (invariant I8). *)

val sweep : t -> roots:Model.obj list -> int
(** Remove from the id registry every object not reachable from [roots],
    returning how many were dropped. The analog of a GC sweep for the
    registry: replaced substructure (e.g. superseded side-effect lists)
    otherwise accumulates as unreachable-but-registered garbage. Live
    object ids and the allocation counter are unaffected. *)
