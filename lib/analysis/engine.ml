open Ickpt_core
open Ickpt_harness

type mode = Full | Incremental | Specialized

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Full -> "full"
    | Incremental -> "incremental"
    | Specialized -> "specialized")

type iteration_stat = {
  bytes : int;
  seconds : float;
  traversal_seconds : float option;
  guard_seconds : float;
  recorded : int;
}

type phase_report = {
  phase : string;
  iterations : int;
  stats : iteration_stat list;
  analysis_seconds : float;
}

type subject =
  | Engine_heap of Attrs.t
  | Workload_heap of { wheap : Wheap.t; auto : Staticcheck.Auto_spec.t }

module Isch = Staticcheck.Interfere.Schedule

type par_unit = {
  pu_phase : string;
  pu_label : string;
  pu_group : int;
  pu_reads : (string * Staticcheck.Regions.t) list;
  pu_writes : (string * Staticcheck.Regions.t) list;
}

type par_report = {
  par_domains : int;
  par_schedule : Isch.t;
  par_units : par_unit list;
  par_sweeps : int;
}

type report = {
  mode : mode;
  n_stmts : int;
  base_bytes : int;
  phases : phase_report list;
  chain : Chain.t;
  subject : subject;
  env : Minic.Check.env;
  elide_plans : Staticcheck.Barrier_elide.plan list;
  par : par_report option;
}

let attrs r =
  match r.subject with
  | Engine_heap a -> a
  | Workload_heap _ ->
      invalid_arg "Engine.attrs: annotation-free run has no attribute heap"

let auto_spec r =
  match r.subject with Workload_heap { auto; _ } -> Some auto | _ -> None

let wheap r =
  match r.subject with Workload_heap { wheap; _ } -> Some wheap | _ -> None

exception Preflight_failed of Staticcheck.Spec_lint.diagnostic list

exception Verification_failed of (string * Staticcheck.Tv.verdict) list

(* The pre-flight check: every phase's declared specialization class must
   agree with the statically inferred one. Program-independent (the
   shapes are fixed by the Attrs schema), but cheap enough to run per
   engine invocation. *)
let preflight_diagnostics attrs =
  let klasses = Attrs.klasses attrs in
  List.concat_map
    (fun (phase, declared) ->
      Staticcheck.Spec_lint.check_phase ~klasses phase ~declared)
    [ (Staticcheck.Phase_model.Sea, Attrs.sea_shape attrs);
      (Staticcheck.Phase_model.Bta, Attrs.bta_shape attrs);
      (Staticcheck.Phase_model.Eta, Attrs.eta_shape attrs) ]

let preflight = preflight_diagnostics

(* Translation-validate each phase's residual code against the generic
   algorithm, going through the spec cache both for the plan and for the
   verdict: a shape verified once in this engine run (or shared between
   phases) is not re-verified. *)
let verify_phases ~cache attrs =
  List.filter_map
    (fun (name, shape) ->
      let plan = Jspec.Spec_cache.plan cache shape in
      match Jspec.Spec_cache.cached_verdict cache shape plan.Jspec.Pe.body with
      | Some true -> None
      | Some false | None ->
          (* A cached [false] is re-verified: the failure report needs the
             full verdict, and failing analyze runs are not the hot path. *)
          let v = Staticcheck.Tv.verify shape plan in
          Jspec.Spec_cache.set_verdict cache shape plan.Jspec.Pe.body
            (Staticcheck.Tv.ok v);
          if Staticcheck.Tv.ok v then None else Some (name, v))
    [ ("sea", Attrs.sea_shape attrs);
      ("bta", Attrs.bta_shape attrs);
      ("eta", Attrs.eta_shape attrs) ]

let phase_bytes p = List.fold_left (fun acc s -> acc + s.bytes) 0 p.stats

let phase_ckp_seconds p =
  List.fold_left (fun acc s -> acc +. s.seconds) 0.0 p.stats

(* One checkpointing step over the attribute roots, returning the stat.
   [guard_shape] is the (possibly elision-pruned) declaration to validate
   before specialized recording; [None] means the check is statically
   discharged (or guards are off) and skipped outright. *)
let checkpoint_step ~mode ~measure_traversal ~guard_shape ~chain ~attrs
    ~spec_runner () =
  let roots = Attrs.roots attrs in
  match mode with
  | Full ->
      let (taken : Chain.taken), seconds =
        Clock.time (fun () -> Chain.take_full chain roots)
      in
      let traversal_seconds =
        if not measure_traversal then None
        else
          let sink = Ickpt_stream.Out_stream.sink () in
          let (), s =
            Clock.time (fun () -> Checkpointer.full_many sink roots)
          in
          Some s
      in
      { bytes = Segment.body_size taken.Chain.segment;
        seconds;
        traversal_seconds;
        guard_seconds = 0.0;
        recorded = taken.Chain.stats.Checkpointer.recorded }
  | Incremental ->
      let (taken : Chain.taken), seconds =
        Clock.time (fun () -> Chain.take_incremental chain roots)
      in
      let traversal_seconds =
        if not measure_traversal then None
        else
          let sink = Ickpt_stream.Out_stream.sink () in
          let (), s =
            Clock.time (fun () -> Checkpointer.incremental_many sink roots)
          in
          Some s
      in
      { bytes = Segment.body_size taken.Chain.segment;
        seconds;
        traversal_seconds;
        guard_seconds = 0.0;
        recorded = taken.Chain.stats.Checkpointer.recorded }
  | Specialized ->
      let (), guard_seconds =
        Clock.time (fun () ->
            match guard_shape with
            | None -> ()
            | Some shape ->
                List.iter
                  (fun root ->
                    match Jspec.Guard.check shape root with
                    | [] -> ()
                    | v :: _ -> raise (Jspec.Guard.Violated v))
                  roots)
      in
      let d = Ickpt_stream.Out_stream.create () in
      let (), seconds =
        Clock.time (fun () -> List.iter (fun r -> spec_runner d r) roots)
      in
      let body = Ickpt_stream.Out_stream.contents d in
      let segment =
        { Segment.kind = Segment.Incremental;
          seq = Chain.next_seq chain;
          roots =
            List.map
              (fun (o : Ickpt_runtime.Model.obj) ->
                o.Ickpt_runtime.Model.info.Ickpt_runtime.Model.id)
              roots;
          body }
      in
      Chain.append chain segment;
      let traversal_seconds =
        if not measure_traversal then None
        else
          let sink = Ickpt_stream.Out_stream.sink () in
          let (), s =
            Clock.time (fun () -> List.iter (fun r -> spec_runner sink r) roots)
          in
          Some s
      in
      { bytes = String.length body;
        seconds;
        traversal_seconds;
        guard_seconds;
        recorded = -1 }

(* One plan cache per engine run: the three phase shapes compile once each
   and are shared however many iterations run (cf. Jspec.Spec_cache).
   [barrier_plan] reroutes the phase's statically dead setters around the
   write barrier for the duration of the phase. *)
let run_phase ~cache ~name ~mode ~measure_traversal ~guard_shape ~barrier_plan
    ~chain ~attrs ~shape analysis =
  let spec_runner =
    match mode with
    | Specialized -> Jspec.Spec_cache.runner cache shape
    | Full | Incremental -> fun _ _ -> ()
  in
  let stats = ref [] in
  let ckp_total = ref 0.0 in
  let on_iteration _i =
    let stat =
      checkpoint_step ~mode ~measure_traversal ~guard_shape ~chain ~attrs
        ~spec_runner ()
    in
    ckp_total :=
      !ckp_total +. stat.seconds +. stat.guard_seconds
      +. Option.value ~default:0.0 stat.traversal_seconds;
    stats := stat :: !stats
  in
  Attrs.set_barrier_plan attrs barrier_plan;
  let iterations, total_seconds =
    Fun.protect
      ~finally:(fun () -> Attrs.set_barrier_plan attrs Attrs.no_elision)
      (fun () -> Clock.time (fun () -> analysis ~on_iteration))
  in
  { phase = name;
    iterations;
    stats = List.rev !stats;
    analysis_seconds = Float.max 0.0 (total_seconds -. !ckp_total) }

let analyze_declared ?(mode = Incremental) ?division ?(sea_min = 1)
    ?(bta_min = 1) ?(eta_min = 1) ?(measure_traversal = false)
    ?(guard = false) ?(preflight = false) ?(elide = false) program =
  let env = Minic.Check.check program in
  let division =
    match division with
    | Some d -> d
    | None ->
        List.filter
          (fun g -> List.exists (fun (x, _) -> x = g) env.Minic.Check.global_ids)
          Minic.Gen.static_globals
  in
  let attrs = Attrs.create ~n_stmts:(Minic.Ast.stmt_count program) in
  let cache = Jspec.Spec_cache.create () in
  if preflight then begin
    let ds = preflight_diagnostics attrs in
    if Staticcheck.Spec_lint.has_unsound ds then raise (Preflight_failed ds);
    match verify_phases ~cache attrs with
    | [] -> ()
    | failures -> raise (Verification_failed failures)
  end;
  let chain = Chain.create (Attrs.schema attrs) in
  (* Base checkpoint: everything is fresh, so record it all once. *)
  let base = Chain.take_full chain (Attrs.roots attrs) in
  let base_bytes = Segment.body_size base.Chain.segment in
  (* Static elision: one Barrier_elide plan per phase. The planner only
     elides sites whose may-write region is empty, so installing the
     plan cannot change checkpoint bytes — which the elision oracle
     re-verifies differentially on every workload. *)
  let elide_plan shape phase =
    if elide then Some (Staticcheck.Barrier_elide.plan ~declared:shape phase)
    else None
  in
  let phase_setup shape phase =
    let plan = elide_plan shape phase in
    let guard_shape =
      if not guard then None
      else
        match plan with
        | None -> Some shape
        | Some p -> p.Staticcheck.Barrier_elide.guard_shape
    in
    let barrier_plan =
      match plan with
      | None -> Attrs.no_elision
      | Some p ->
          let dead s = List.mem s (Staticcheck.Barrier_elide.elided p) in
          { Attrs.lists_elided = dead Staticcheck.Barrier_elide.Lists;
            bt_elided = dead Staticcheck.Barrier_elide.Bt;
            et_elided = dead Staticcheck.Barrier_elide.Et }
    in
    (plan, guard_shape, barrier_plan)
  in
  let sea_shape = Attrs.sea_shape attrs in
  let bta_shape = Attrs.bta_shape attrs in
  let eta_shape = Attrs.eta_shape attrs in
  let sea_plan, sea_guard, sea_barrier =
    phase_setup sea_shape Staticcheck.Phase_model.Sea
  in
  let bta_plan, bta_guard, bta_barrier =
    phase_setup bta_shape Staticcheck.Phase_model.Bta
  in
  let eta_plan, eta_guard, eta_barrier =
    phase_setup eta_shape Staticcheck.Phase_model.Eta
  in
  (* Bound with [let] one after another: a list literal would evaluate
     its elements in unspecified (in practice reverse) order, running
     eta before bta ever computed a binding time — and interleaving the
     chain's segments out of phase order. *)
  let sea_report =
    run_phase ~cache ~name:"sea" ~mode ~measure_traversal
      ~guard_shape:sea_guard ~barrier_plan:sea_barrier ~chain ~attrs
      ~shape:sea_shape (fun ~on_iteration ->
        Sea.run ~on_iteration ~min_iterations:sea_min env attrs)
  in
  let bta_report =
    run_phase ~cache ~name:"bta" ~mode ~measure_traversal
      ~guard_shape:bta_guard ~barrier_plan:bta_barrier ~chain ~attrs
      ~shape:bta_shape (fun ~on_iteration ->
        Bta_phase.run ~on_iteration ~min_iterations:bta_min ~division env
          attrs)
  in
  let eta_report =
    run_phase ~cache ~name:"eta" ~mode ~measure_traversal
      ~guard_shape:eta_guard ~barrier_plan:eta_barrier ~chain ~attrs
      ~shape:eta_shape (fun ~on_iteration ->
        Eta_phase.run ~on_iteration ~min_iterations:eta_min ~division env
          attrs)
  in
  let phases = [ sea_report; bta_report; eta_report ] in
  { mode;
    n_stmts = Attrs.n_stmts attrs;
    base_bytes;
    phases;
    chain;
    subject = Engine_heap attrs;
    env;
    elide_plans = List.filter_map Fun.id [ sea_plan; bta_plan; eta_plan ];
    par = None }

(* ---- annotation-free (inferred) runs -------------------------------------- *)

(* One checkpoint over the workload heap. Specialized mode records each
   root with the residual routine compiled for that root's inferred
   per-phase shape (all drawn from the inference run's spec cache) and
   appends the segment manually, exactly like the declared-run step. *)
let workload_checkpoint_step ~mode ~measure_traversal ~guard ~elide ~minimize
    ~chain ~(wheap : Wheap.t) ~(auto : Staticcheck.Auto_spec.t)
    ~(pr : Staticcheck.Auto_spec.phase_result) () =
  let roots = Wheap.roots wheap in
  let take f =
    let (taken : Chain.taken), seconds = Clock.time (fun () -> f ()) in
    { bytes = Segment.body_size taken.Chain.segment;
      seconds;
      traversal_seconds = None;
      guard_seconds = 0.0;
      recorded = taken.Chain.stats.Checkpointer.recorded }
  in
  match mode with
  | Full -> take (fun () -> Chain.take_full chain roots)
  | Incremental -> take (fun () -> Chain.take_incremental chain roots)
  | Specialized ->
      let (), guard_seconds =
        Clock.time (fun () ->
            if guard then
              List.iter
                (fun (g, shape) ->
                  (* A global whose barrier is elided this phase was
                     proven unwritten — its cleanliness check is
                     statically discharged, mirroring the guard pruning
                     of declared runs. *)
                  if not (elide && Wheap.is_elided wheap g) then
                    match Jspec.Guard.check shape (Wheap.root_of wheap g) with
                    | [] -> ()
                    | v :: _ -> raise (Jspec.Guard.Violated v))
                pr.Staticcheck.Auto_spec.ph_shapes)
      in
      (* Minimized runs record under the pruned shapes — dirty-but-dead
         blocks demoted — while the guard above keeps validating the
         original shapes, which the dynamic heap actually conforms to. *)
      let record_shapes =
        if minimize then pr.Staticcheck.Auto_spec.ph_min_shapes
        else pr.Staticcheck.Auto_spec.ph_shapes
      in
      let record sink =
        List.iter
          (fun (g, shape) ->
            let runner =
              Jspec.Spec_cache.runner auto.Staticcheck.Auto_spec.a_cache shape
            in
            runner sink (Wheap.root_of wheap g))
          record_shapes
      in
      let d = Ickpt_stream.Out_stream.create () in
      let (), seconds = Clock.time (fun () -> record d) in
      let body = Ickpt_stream.Out_stream.contents d in
      let segment =
        { Segment.kind = Segment.Incremental;
          seq = Chain.next_seq chain;
          roots =
            List.map
              (fun (o : Ickpt_runtime.Model.obj) ->
                o.Ickpt_runtime.Model.info.Ickpt_runtime.Model.id)
              roots;
          body }
      in
      Chain.append chain segment;
      let traversal_seconds =
        if not measure_traversal then None
        else
          let sink = Ickpt_stream.Out_stream.sink () in
          let (), s = Clock.time (fun () -> record sink) in
          Some s
      in
      (* A minimized recorder consumes only the flags of the blocks it
         keeps; a demoted block's flag would stay set and trip a later
         phase's (original-shape) cleanliness guard. Sweep the graph
         clean: the checkpoint this step took is the new baseline. *)
      if minimize then Wheap.clear_modified wheap;
      { bytes = String.length body;
        seconds;
        traversal_seconds;
        guard_seconds;
        recorded = -1 }

(* Drive the program itself through the discovered phases: a [Setup]
   phase executes once and checkpoints; a [Round] phase checkpoints after
   every loop iteration, plus once after the final (false) guard
   evaluation — guard effects belong to the round, so they must land in a
   segment of this phase. A top-level [return] ([Session.Halted]) ends
   the run: the partial round is still checkpointed, later phases take
   zero checkpoints.

   [parallel] consumes an {!Staticcheck.Interfere} schedule: statically
   disjoint iteration strips (and whole independent phases) execute on
   their own OCaml domains against domain-local {!Dlog} tracking stores;
   the master then replays each unit's write log in schedule order — not
   completion order — through the barriered [Wheap.store], so the
   write-barrier stream, and hence the chain, is byte-identical to a
   sequential run. The observed per-domain footprints land in the
   [par_report] for [Elide_oracle.run_par]'s dynamic disjointness check. *)
let analyze_inferred ?(mode = Incremental) ?(measure_traversal = false)
    ?(guard = false) ?(elide = false) ?(minimize = false)
    ?(seed_dead = false) ?parallel ?(seed_racy = false) program =
  if minimize && mode <> Specialized then
    invalid_arg
      "Engine.analyze: ~minimize requires Specialized mode (pruned \
       residual checkpointers)";
  if minimize && parallel <> None then
    invalid_arg
      "Engine.analyze: ~parallel is incompatible with ~minimize \
       (minimized segments are not byte-comparable)";
  let env = Minic.Check.check program in
  let auto = Staticcheck.Auto_spec.infer ~seed_dead env in
  let failures =
    List.concat_map
      (fun (pr : Staticcheck.Auto_spec.phase_result) ->
        let gate verdicts =
          List.filter_map
            (fun (g, v) ->
              if Staticcheck.Tv.ok v then None
              else
                Some
                  ( pr.Staticcheck.Auto_spec.ph
                      .Staticcheck.Phase_discover.p_name ^ "/" ^ g,
                    v ))
            verdicts
        in
        gate pr.Staticcheck.Auto_spec.ph_verdicts
        @
        if minimize then gate pr.Staticcheck.Auto_spec.ph_min_verdicts
        else [])
      auto.Staticcheck.Auto_spec.a_phases
  in
  (* The inference contract is unconditional: verified or refused. This
     gate holds in every mode — even a plain incremental run must not
     execute under shapes whose residual code failed validation. *)
  if failures <> [] then raise (Verification_failed failures);
  let sched =
    Option.map
      (fun n -> Staticcheck.Interfere.schedule ~domains:n ~seed_racy auto)
      parallel
  in
  let wheap = Wheap.create auto.Staticcheck.Auto_spec.a_encoding in
  let chain = Chain.create (Wheap.schema wheap) in
  let base = Chain.take_full chain (Wheap.roots wheap) in
  let base_bytes = Segment.body_size base.Chain.segment in
  let session =
    Minic.Interp.Session.start ~store:(Wheap.store wheap) program
  in
  let halted = ref false in
  let elision_for (pr : Staticcheck.Auto_spec.phase_result) =
    if elide then
      (* Minimized runs use the live-extended plan: barriers on
         write-only-before-death globals are dead weight (their
         flags guard state no minimized checkpoint records).
         Byte-identity runs must keep the may-write-only plan. *)
      Staticcheck.Barrier_elide.welided
        (if minimize then pr.Staticcheck.Auto_spec.ph_live_wplan
         else pr.Staticcheck.Auto_spec.ph_wplan)
    else []
  in
  let make_step (pr : Staticcheck.Auto_spec.phase_result) stats ckp_total () =
    let stat =
      workload_checkpoint_step ~mode ~measure_traversal ~guard ~elide
        ~minimize ~chain ~wheap ~auto ~pr ()
    in
    ckp_total :=
      !ckp_total +. stat.seconds +. stat.guard_seconds
      +. Option.value ~default:0.0 stat.traversal_seconds;
    stats := stat :: !stats
  in
  (* Parallel bookkeeping: every fan-out (one sweep execution, one phase
     group) is a fork instance; the observed footprints of its units are
     what the oracle's dynamic disjointness check compares. *)
  let par_units = ref [] in
  let fork = ref 0 in
  let sweeps_run = ref 0 in
  let record_unit ~phase ~label ~group d =
    par_units :=
      { pu_phase = phase; pu_label = label; pu_group = group;
        pu_reads = Dlog.observed_reads d; pu_writes = Dlog.observed_writes d }
      :: !par_units
  in
  let ws = Wheap.store wheap in
  (* One sweep fan-out: strips run their self-contained programs on fresh
     domains against a common snapshot, then the master replays the write
     logs in strip order through the (possibly elision-rerouted) barriered
     store. Strip programs cannot halt (sweep recognition refuses
     returns). *)
  let run_sweep ph_name (sw : Isch.sweep) =
    incr fork;
    incr sweeps_run;
    let fid = !fork in
    let snapshot = Dlog.snapshot_of_wheap wheap in
    let dlogs =
      sw.Isch.sw_strips
      |> List.map (fun (st : Isch.strip) ->
             Domain.spawn (fun () ->
                 let d = Dlog.create snapshot in
                 let s =
                   Minic.Interp.Session.start ~store:(Dlog.store d)
                     st.Isch.st_program
                 in
                 (match Minic.Ast.find_func st.Isch.st_program "main" with
                 | Some main -> Minic.Interp.Session.exec_block s main.Minic.Ast.f_body
                 | None -> ());
                 d))
      |> List.map Domain.join
    in
    List.iter2
      (fun (st : Isch.strip) d ->
        record_unit ~phase:ph_name
          ~label:
            (Printf.sprintf "%s[%d,%d)" sw.Isch.sw_func st.Isch.st_lo
               st.Isch.st_hi)
          ~group:fid d;
        Dlog.replay ws ~on_mark:(fun () -> ()) d)
      sw.Isch.sw_strips dlogs
  in
  (* One phase, driven by the master session. With a schedule, a round
     body walks its unit plan — serial statements on the master, sweeps
     fanned out — which is the program-order execution the sequential
     driver performs, minus the strip-internal reordering the schedule
     proved unobservable. *)
  let run_one ((pr : Staticcheck.Auto_spec.phase_result), pso) =
    let ph = pr.Staticcheck.Auto_spec.ph in
    Wheap.set_elided wheap (elision_for pr);
    let stats = ref [] in
    let ckp_total = ref 0.0 in
    let step = make_step pr stats ckp_total in
    let exec_serial b =
      try Minic.Interp.Session.exec_block session b
      with Minic.Interp.Session.Halted _ -> halted := true
    in
    let exec_body () =
      match pso with
      | Some ps when ps.Isch.ps_units <> [] ->
          List.iter
            (fun u ->
              if not !halted then
                match u with
                | Isch.Serial s -> exec_serial [ s ]
                | Isch.Par_sweep sw ->
                    run_sweep ph.Staticcheck.Phase_discover.p_name sw)
            ps.Isch.ps_units
      | _ -> exec_serial ph.Staticcheck.Phase_discover.p_body
    in
    let run_rounds () =
      if !halted then 0
      else
        match ph.Staticcheck.Phase_discover.p_kind with
        | Staticcheck.Phase_discover.Setup ->
            exec_body ();
            step ();
            1
        | Staticcheck.Phase_discover.Round { cond } ->
            let n = ref 0 in
            let continue = ref true in
            while !continue do
              if !halted then continue := false
              else begin
                let v = Minic.Interp.Session.eval session cond in
                if v = 0 then continue := false else exec_body ();
                step ();
                incr n
              end
            done;
            !n
    in
    let iterations, total_seconds = Clock.time run_rounds in
    Wheap.set_elided wheap [];
    { phase = ph.Staticcheck.Phase_discover.p_name;
      iterations;
      stats = List.rev !stats;
      analysis_seconds = Float.max 0.0 (total_seconds -. !ckp_total) }
  in
  (* A parallel phase group: each member phase runs to completion on its
     own domain (its own session over the blanked program, master locals
     injected), then the master replays member logs in schedule order,
     checkpointing at each mark under that member's elision set and
     carrying back the locals the member may write. A member that halted
     discards every later member's work — the sequential run would never
     have executed it. *)
  let zero_phase (pr : Staticcheck.Auto_spec.phase_result) =
    { phase = pr.Staticcheck.Auto_spec.ph.Staticcheck.Phase_discover.p_name;
      iterations = 0; stats = []; analysis_seconds = 0.0 }
  in
  let blank_program =
    lazy
      { program with
        Minic.Ast.funcs =
          List.map
            (fun f ->
              if f.Minic.Ast.f_name = "main" then
                { f with Minic.Ast.f_body = [] }
              else f)
            program.Minic.Ast.funcs }
  in
  let main_local_names =
    match Minic.Ast.find_func program "main" with
    | Some f -> List.map (fun d -> d.Minic.Ast.v_name) f.Minic.Ast.f_locals
    | None -> []
  in
  let run_group members =
    if !halted then List.map (fun (pr, _) -> zero_phase pr) members
    else begin
      incr fork;
      let fid = !fork in
      let snapshot = Dlog.snapshot_of_wheap wheap in
      let locals0 = Minic.Interp.Session.locals session in
      let results, fan_seconds =
        Clock.time (fun () ->
            members
            |> List.map
                 (fun ((pr : Staticcheck.Auto_spec.phase_result), _) ->
                   Domain.spawn (fun () ->
                       let ph = pr.Staticcheck.Auto_spec.ph in
                       let d = Dlog.create snapshot in
                       let s =
                         Minic.Interp.Session.start ~store:(Dlog.store d)
                           (Lazy.force blank_program)
                       in
                       List.iter
                         (fun (n, v) -> Minic.Interp.Session.set_local s n v)
                         locals0;
                       let halted' = ref false in
                       let exec () =
                         try
                           Minic.Interp.Session.exec_block s
                             ph.Staticcheck.Phase_discover.p_body
                         with Minic.Interp.Session.Halted _ ->
                           halted' := true
                       in
                       let rounds =
                         match ph.Staticcheck.Phase_discover.p_kind with
                         | Staticcheck.Phase_discover.Setup ->
                             exec ();
                             Dlog.mark d;
                             1
                         | Staticcheck.Phase_discover.Round { cond } ->
                             let n = ref 0 in
                             let continue = ref true in
                             while !continue do
                               if !halted' then continue := false
                               else begin
                                 let v = Minic.Interp.Session.eval s cond in
                                 if v = 0 then continue := false
                                 else exec ();
                                 Dlog.mark d;
                                 incr n
                               end
                             done;
                             !n
                       in
                       (d, rounds, !halted', Minic.Interp.Session.locals s)))
            |> List.map Domain.join)
      in
      let fan = ref fan_seconds in
      List.map2
        (fun ((pr : Staticcheck.Auto_spec.phase_result), pso)
             (d, rounds, h, finals) ->
          let ph = pr.Staticcheck.Auto_spec.ph in
          let name = ph.Staticcheck.Phase_discover.p_name in
          if !halted then zero_phase pr
          else begin
            Wheap.set_elided wheap (elision_for pr);
            let stats = ref [] in
            let ckp_total = ref 0.0 in
            let step = make_step pr stats ckp_total in
            record_unit ~phase:name ~label:("phase:" ^ name) ~group:fid d;
            let (), secs =
              Clock.time (fun () -> Dlog.replay ws ~on_mark:step d)
            in
            (match pso with
            | Some (ps : Isch.phase_sched) ->
                let pairs =
                  try
                    List.combine ph.Staticcheck.Phase_discover.p_lifted
                      main_local_names
                  with Invalid_argument _ -> []
                in
                List.iter
                  (fun (lifted, orig) ->
                    let written =
                      match
                        List.assoc_opt lifted
                          ps.Isch.ps_foot.Staticcheck.Interfere.fp_writes
                      with
                      | Some r -> not (Staticcheck.Regions.is_bot r)
                      | None -> false
                    in
                    if written then
                      match List.assoc_opt orig finals with
                      | Some v ->
                          Minic.Interp.Session.set_local session orig v
                      | None -> ())
                  pairs
            | None -> ());
            if h then halted := true;
            Wheap.set_elided wheap [];
            let own = !fan in
            fan := 0.0;
            { phase = name;
              iterations = rounds;
              stats = List.rev !stats;
              analysis_seconds =
                Float.max 0.0 (own +. secs -. !ckp_total) }
          end)
        members results
    end
  in
  (* Pair phases with their schedule entries and split into maximal runs
     of one group id; singleton runs take the sequential driver. *)
  let paired =
    match sched with
    | None ->
        List.map (fun pr -> (pr, None)) auto.Staticcheck.Auto_spec.a_phases
    | Some sc ->
        List.map2
          (fun pr ps -> (pr, Some ps))
          auto.Staticcheck.Auto_spec.a_phases sc.Isch.sc_phases
  in
  let runs =
    let rev_runs =
      List.fold_left
        (fun acc ((_, pso) as x) ->
          match (acc, pso) with
          | (((_, Some prev) :: _) as cur) :: rest, Some (ps : Isch.phase_sched)
            when prev.Isch.ps_group = ps.Isch.ps_group ->
              (x :: cur) :: rest
          | _ -> [ x ] :: acc)
        [] paired
    in
    List.rev_map List.rev rev_runs
  in
  let phases =
    List.concat_map
      (fun members ->
        match members with
        | [ one ] -> [ run_one one ]
        | many -> run_group many)
      runs
  in
  let par =
    Option.map
      (fun (sc : Isch.t) ->
        { par_domains = sc.Isch.sc_domains;
          par_schedule = sc;
          par_units = List.rev !par_units;
          par_sweeps = !sweeps_run })
      sched
  in
  { mode;
    n_stmts = Minic.Ast.stmt_count program;
    base_bytes;
    phases;
    chain;
    subject = Workload_heap { wheap; auto };
    env;
    elide_plans = [];
    par }

let analyze ?mode ?division ?sea_min ?bta_min ?eta_min ?measure_traversal
    ?guard ?preflight ?elide ?(infer = false) ?minimize ?seed_dead ?parallel
    ?seed_racy program =
  if parallel <> None && not infer then
    invalid_arg
      "Engine.analyze: ~parallel requires ~infer (the schedule comes from \
       the inferred phase structure)";
  if infer then
    analyze_inferred ?mode ?measure_traversal ?guard ?elide ?minimize
      ?seed_dead ?parallel ?seed_racy program
  else
    analyze_declared ?mode ?division ?sea_min ?bta_min ?eta_min
      ?measure_traversal ?guard ?preflight ?elide program

let recover_annotations report =
  match Chain.recover report.chain with
  | Error e -> failwith ("recover_annotations: " ^ e)
  | Ok (_heap, roots) ->
      let open Ickpt_runtime in
      let child_exn o i =
        match o.Model.children.(i) with
        | Some c -> c
        | None -> failwith "recover_annotations: missing child"
      in
      let chain_to_list head =
        let rec go acc = function
          | None -> List.rev acc
          | Some (o : Model.obj) -> go (o.Model.ints.(0) :: acc) o.Model.children.(0)
        in
        go [] head
      in
      List.map
        (fun attr ->
          let se = child_exn attr 0 in
          let bt = (child_exn (child_exn attr 1) 0).Model.ints.(0) in
          let et = (child_exn (child_exn attr 2) 0).Model.ints.(0) in
          let reads = chain_to_list se.Model.children.(0) in
          let writes = chain_to_list se.Model.children.(1) in
          (bt, et, reads, writes))
        roots
