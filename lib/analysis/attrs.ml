open Ickpt_runtime

type barrier_plan = {
  lists_elided : bool;
  bt_elided : bool;
  et_elided : bool;
}

let no_elision = { lists_elided = false; bt_elided = false; et_elided = false }

type t = {
  schema : Schema.t;
  heap : Heap.t;
  k_attr : Model.klass;
  k_se : Model.klass;
  k_varref : Model.klass;
  k_btentry : Model.klass;
  k_bt : Model.klass;
  k_etentry : Model.klass;
  k_et : Model.klass;
  attrs : Model.obj array;
  mutable plan : barrier_plan;
      (* which setters run with their barrier compiled out, per the
         current phase's static elision plan *)
}

let bt_unknown = 0
let bt_static = 1
let bt_dynamic = 2
let et_unknown = 0
let et_spec_time = 1
let et_run_time = 2

(* Child slots *)
let slot_se = 0
let slot_bt = 1
let slot_et = 2
let slot_reads = 0
let slot_writes = 1

let create ~n_stmts =
  let schema = Schema.create () in
  let k_attr = Schema.declare schema ~name:"Attributes" ~ints:0 ~children:3 () in
  let k_se = Schema.declare schema ~name:"SEEntry" ~ints:0 ~children:2 () in
  let k_varref = Schema.declare schema ~name:"VarRef" ~ints:1 ~children:1 () in
  let k_btentry = Schema.declare schema ~name:"BTEntry" ~ints:0 ~children:1 () in
  let k_bt = Schema.declare schema ~name:"BT" ~ints:1 ~children:0 () in
  let k_etentry = Schema.declare schema ~name:"ETEntry" ~ints:0 ~children:1 () in
  let k_et = Schema.declare schema ~name:"ET" ~ints:1 ~children:0 () in
  let heap = Heap.create schema in
  let attrs =
    Array.init n_stmts (fun _ ->
        let attr = Heap.alloc heap k_attr in
        let se = Heap.alloc heap k_se in
        let btentry = Heap.alloc heap k_btentry in
        let bt = Heap.alloc heap k_bt in
        let etentry = Heap.alloc heap k_etentry in
        let et = Heap.alloc heap k_et in
        bt.Model.ints.(0) <- bt_unknown;
        et.Model.ints.(0) <- et_unknown;
        attr.Model.children.(slot_se) <- Some se;
        attr.Model.children.(slot_bt) <- Some btentry;
        attr.Model.children.(slot_et) <- Some etentry;
        btentry.Model.children.(0) <- Some bt;
        etentry.Model.children.(0) <- Some et;
        attr)
  in
  { schema; heap; k_attr; k_se; k_varref; k_btentry; k_bt; k_etentry; k_et;
    attrs; plan = no_elision }

let barrier_plan t = t.plan
let set_barrier_plan t plan = t.plan <- plan

let heap t = t.heap
let schema t = t.schema
let n_stmts t = Array.length t.attrs
let roots t = Array.to_list t.attrs

let attr t sid = t.attrs.(sid)

let child_exn o slot =
  match o.Model.children.(slot) with
  | Some c -> c
  | None -> invalid_arg "Attrs: missing child"

let se_entry t sid = child_exn t.attrs.(sid) slot_se
let bt_obj t sid = child_exn (child_exn t.attrs.(sid) slot_bt) 0
let et_obj t sid = child_exn (child_exn t.attrs.(sid) slot_et) 0

let chain_to_list head =
  let rec go acc = function
    | None -> List.rev acc
    | Some o -> go (o.Model.ints.(0) :: acc) o.Model.children.(0)
  in
  go [] head

(* Replace a VarRef chain when the new value list differs. The chain is
   rebuilt from fresh objects; their [modified] flags start set, so they
   appear in the next incremental checkpoint along with the re-pointed
   SEEntry. *)
let set_chain t sid slot values =
  let se = se_entry t sid in
  if chain_to_list se.Model.children.(slot) = values then false
  else begin
    let rec build = function
      | [] -> None
      | v :: rest ->
          let node = Heap.alloc t.heap t.k_varref in
          node.Model.ints.(0) <- v;
          node.Model.children.(0) <- build rest;
          Some node
    in
    let chain = build values in
    if t.plan.lists_elided then ignore (Barrier.set_child_raw se slot chain)
    else Barrier.set_child se slot chain;
    true
  end

let set_reads t sid values = set_chain t sid slot_reads values
let get_reads t sid = chain_to_list (se_entry t sid).Model.children.(slot_reads)
let set_writes t sid values = set_chain t sid slot_writes values
let get_writes t sid = chain_to_list (se_entry t sid).Model.children.(slot_writes)

let set_bt t sid v =
  if t.plan.bt_elided then Barrier.set_int_raw (bt_obj t sid) 0 v
  else Barrier.set_int_if_changed (bt_obj t sid) 0 v

let get_bt t sid = (bt_obj t sid).Model.ints.(0)

let set_et t sid v =
  if t.plan.et_elided then Barrier.set_int_raw (et_obj t sid) 0 v
  else Barrier.set_int_if_changed (et_obj t sid) 0 v

let get_et t sid = (et_obj t sid).Model.ints.(0)

(* Specialization classes. The attribute tree's static spine is shared by
   all three; phases differ only in which leaves are Tracked. *)
let attr_shape t ~attr_st ~se_st ~lists ~btentry_st ~bt_st ~etentry_st ~et_st =
  let open Jspec.Sclass in
  shape ~status:attr_st t.k_attr
    [| Exact (shape ~status:se_st t.k_se [| lists; lists |]);
       Exact
         (shape ~status:btentry_st t.k_btentry
            [| Exact (leaf ~status:bt_st t.k_bt) |]);
       Exact
         (shape ~status:etentry_st t.k_etentry
            [| Exact (leaf ~status:et_st t.k_et) |]) |]

let sea_shape t =
  let open Jspec.Sclass in
  attr_shape t ~attr_st:Clean ~se_st:Tracked ~lists:Unknown ~btentry_st:Clean
    ~bt_st:Clean ~etentry_st:Clean ~et_st:Clean

let bta_shape t =
  let open Jspec.Sclass in
  attr_shape t ~attr_st:Clean ~se_st:Clean ~lists:Clean_opaque
    ~btentry_st:Clean ~bt_st:Tracked ~etentry_st:Clean ~et_st:Clean

let eta_shape t =
  let open Jspec.Sclass in
  attr_shape t ~attr_st:Clean ~se_st:Clean ~lists:Clean_opaque
    ~btentry_st:Clean ~bt_st:Clean ~etentry_st:Clean ~et_st:Tracked

let klasses t =
  [ t.k_attr; t.k_se; t.k_varref; t.k_btentry; t.k_bt; t.k_etentry; t.k_et ]
