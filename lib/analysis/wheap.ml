open Ickpt_runtime
open Staticcheck

type owner = Scalar_slot | Header | Block of { lo : int; hi : int }

type arr = {
  a_header : Model.obj;
  a_blocks : (Shape_infer.block * Model.obj) array;
  a_bsize : int;
  a_length : int;
}

type repr = R_scalar of Model.obj | R_array of arr

type t = {
  encoding : Shape_infer.encoding;
  heap : Heap.t;
  reprs : (string * repr) list;  (** declaration order *)
  by_name : (string, repr) Hashtbl.t;
  owners : (int, string * owner) Hashtbl.t;
  elided : (string, unit) Hashtbl.t;
}

let fail fmt =
  Format.kasprintf (fun s -> raise (Minic.Interp.Runtime_error s)) fmt

let create (encoding : Shape_infer.encoding) =
  let heap = Heap.create encoding.Shape_infer.schema in
  let owners = Hashtbl.create 64 in
  let inits =
    List.map
      (fun (d : Minic.Ast.var_decl) -> (d.v_name, d.v_init))
      encoding.Shape_infer.enc_env.Minic.Check.program.Minic.Ast.globals
  in
  let reprs =
    List.map
      (fun (name, slot) ->
        match slot with
        | Shape_infer.Scalar k ->
            let o = Heap.alloc heap k in
            o.Model.ints.(0) <- List.assoc name inits;
            Hashtbl.replace owners o.Model.info.Model.id (name, Scalar_slot);
            (name, R_scalar o)
        | Shape_infer.Array { header; blocks; length } ->
            (* Blocks first, then the header pointing at them — ids are
               cosmetic, but allocation order keeps the restore-side dump
               readable. Cells start zeroed, as mini-C arrays do. *)
            let bobjs =
              Array.of_list
                (List.map
                   (fun (b : Shape_infer.block) ->
                     let o = Heap.alloc heap b.Shape_infer.b_klass in
                     Hashtbl.replace owners o.Model.info.Model.id
                       ( name,
                         Block
                           { lo = b.Shape_infer.b_lo; hi = b.Shape_infer.b_hi }
                       );
                     (b, o))
                   blocks)
            in
            let h = Heap.alloc heap header in
            h.Model.ints.(0) <- length;
            Array.iteri
              (fun i (_, o) -> h.Model.children.(i) <- Some o)
              bobjs;
            Hashtbl.replace owners h.Model.info.Model.id (name, Header);
            ( name,
              R_array
                { a_header = h;
                  a_blocks = bobjs;
                  a_bsize = Shape_infer.block_size length;
                  a_length = length } ))
      encoding.Shape_infer.slots
  in
  let by_name = Hashtbl.create 16 in
  List.iter (fun (n, r) -> Hashtbl.replace by_name n r) reprs;
  { encoding; heap; reprs; by_name; owners; elided = Hashtbl.create 8 }

let encoding t = t.encoding

let heap t = t.heap

let schema t = Heap.schema t.heap

let roots t =
  List.map
    (fun (_, r) ->
      match r with R_scalar o -> o | R_array a -> a.a_header)
    t.reprs

let root_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (R_scalar o) -> o
  | Some (R_array a) -> a.a_header
  | None -> invalid_arg ("Wheap.root_of: unknown global " ^ name)

let owner_of t id = Hashtbl.find_opt t.owners id

let set_elided t names =
  Hashtbl.reset t.elided;
  List.iter (fun n -> Hashtbl.replace t.elided n ()) names

let is_elided t name = Hashtbl.mem t.elided name

let clear_modified t =
  List.iter
    (fun (_, r) ->
      match r with
      | R_scalar o -> o.Model.info.Model.modified <- false
      | R_array a ->
          a.a_header.Model.info.Model.modified <- false;
          Array.iter
            (fun (_, o) -> o.Model.info.Model.modified <- false)
            a.a_blocks)
    t.reprs

(* ---- the interpreter-facing store ----------------------------------------- *)

let scalar t x =
  match Hashtbl.find_opt t.by_name x with
  | Some (R_scalar o) -> o
  | Some (R_array _) -> fail "array %s used as scalar" x
  | None -> fail "unbound global %s" x

let array t x =
  match Hashtbl.find_opt t.by_name x with
  | Some (R_array a) -> a
  | Some (R_scalar _) -> fail "scalar %s used as array" x
  | None -> fail "unbound global %s" x

let cell a i =
  (* The interpreter bounds-checks against gs_length before calling in. *)
  let bi = i / a.a_bsize in
  let b, o = a.a_blocks.(bi) in
  (o, i - b.Shape_infer.b_lo)

(* Stores go through the unconditional write barrier — the paper's
   model: every assignment pays the flag update, whatever the value —
   unless the global's barrier is elided for the current phase, in which
   case the raw setter skips the [modified]-flag maintenance the static
   analysis proved dead. *)
let store t =
  { Minic.Interp.gs_get = (fun x -> Barrier.get_int (scalar t x) 0);
    gs_set =
      (fun x v ->
        let o = scalar t x in
        if Hashtbl.mem t.elided x then ignore (Barrier.set_int_raw o 0 v)
        else Barrier.set_int o 0 v);
    gs_get_cell =
      (fun x i ->
        let o, off = cell (array t x) i in
        Barrier.get_int o off);
    gs_set_cell =
      (fun x i v ->
        let o, off = cell (array t x) i in
        if Hashtbl.mem t.elided x then ignore (Barrier.set_int_raw o off v)
        else Barrier.set_int o off v);
    gs_length = (fun x -> (array t x).a_length) }

let scalar_globals t =
  List.filter_map
    (fun (n, r) ->
      match r with
      | R_scalar o -> Some (n, Barrier.get_int o 0)
      | R_array _ -> None)
    t.reprs

let get_cell t x i =
  let o, off = cell (array t x) i in
  Barrier.get_int o off
