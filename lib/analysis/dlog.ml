(* Domain-local tracking store. Reads and writes are recorded per
   (global, cell) in hashtables — O(1) per access — and only folded into
   Regions when the oracle asks for the observed footprints. *)

open Staticcheck

type snapshot = {
  sn_scalars : (string * int) list;
  sn_arrays : (string * int array) list;  (* arrays owned by the snapshot *)
}

let snapshot_of_wheap wheap =
  let enc = Wheap.encoding wheap in
  let arrays =
    List.filter_map
      (fun (name, slot) ->
        match slot with
        | Shape_infer.Scalar _ -> None
        | Shape_infer.Array { length; _ } ->
            Some (name, Array.init length (fun i -> Wheap.get_cell wheap name i)))
      enc.Shape_infer.slots
  in
  { sn_scalars = Wheap.scalar_globals wheap; sn_arrays = arrays }

let snapshot_of_store (program : Minic.Ast.program) store =
  let scalars, arrays =
    List.partition_map
      (fun d ->
        match d.Minic.Ast.v_typ with
        | Minic.Ast.T_array len ->
            Right
              ( d.Minic.Ast.v_name,
                Array.init len (fun i ->
                    store.Minic.Interp.gs_get_cell d.Minic.Ast.v_name i) )
        | _ ->
            Left (d.Minic.Ast.v_name, store.Minic.Interp.gs_get d.Minic.Ast.v_name))
      program.Minic.Ast.globals
  in
  { sn_scalars = scalars; sn_arrays = arrays }

type entry = W_scalar of string * int | W_cell of string * int * int | Mark

type t = {
  d_scalars : (string, int ref) Hashtbl.t;
  d_arrays : (string, int array) Hashtbl.t;
  mutable d_log : entry list;  (* newest first *)
  mutable d_marks : int;
  mutable d_writes : int;
  d_read : (string * int, unit) Hashtbl.t;  (* read before written here *)
  d_written : (string * int, unit) Hashtbl.t;
}

let create sn =
  let scalars = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace scalars n (ref v)) sn.sn_scalars;
  let arrays = Hashtbl.create 16 in
  List.iter (fun (n, a) -> Hashtbl.replace arrays n (Array.copy a)) sn.sn_arrays;
  { d_scalars = scalars; d_arrays = arrays; d_log = []; d_marks = 0;
    d_writes = 0; d_read = Hashtbl.create 64; d_written = Hashtbl.create 64 }

let fail fmt =
  Format.kasprintf (fun s -> raise (Minic.Interp.Runtime_error s)) fmt

let scalar t x =
  match Hashtbl.find_opt t.d_scalars x with
  | Some r -> r
  | None -> fail "dlog: unbound scalar %s" x

let array t x =
  match Hashtbl.find_opt t.d_arrays x with
  | Some a -> a
  | None -> fail "dlog: unbound array %s" x

let note_read t key =
  if not (Hashtbl.mem t.d_written key) then Hashtbl.replace t.d_read key ()

let note_write t key = Hashtbl.replace t.d_written key ()

let store t =
  { Minic.Interp.gs_get =
      (fun x ->
        note_read t (x, 0);
        !(scalar t x));
    gs_set =
      (fun x v ->
        note_write t (x, 0);
        t.d_log <- W_scalar (x, v) :: t.d_log;
        t.d_writes <- t.d_writes + 1;
        scalar t x := v);
    gs_get_cell =
      (fun a i ->
        note_read t (a, i);
        (array t a).(i));
    gs_set_cell =
      (fun a i v ->
        note_write t (a, i);
        t.d_log <- W_cell (a, i, v) :: t.d_log;
        t.d_writes <- t.d_writes + 1;
        (array t a).(i) <- v);
    gs_length = (fun a -> Array.length (array t a)) }

let mark t =
  t.d_log <- Mark :: t.d_log;
  t.d_marks <- t.d_marks + 1

let marks t = t.d_marks
let writes t = t.d_writes

let replay store ~on_mark t =
  List.iter
    (fun e ->
      match e with
      | W_scalar (x, v) -> store.Minic.Interp.gs_set x v
      | W_cell (a, i, v) -> store.Minic.Interp.gs_set_cell a i v
      | Mark -> on_mark ())
    (List.rev t.d_log)

let regions_of tbl =
  let cells = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (name, idx) () ->
      let l = Option.value ~default:[] (Hashtbl.find_opt cells name) in
      Hashtbl.replace cells name (idx :: l))
    tbl;
  Hashtbl.fold (fun name l acc -> (name, Regions.of_list l) :: acc) cells []
  |> List.sort compare

let observed_reads t = regions_of t.d_read
let observed_writes t = regions_of t.d_written
