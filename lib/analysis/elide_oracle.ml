open Ickpt_core

type violation = {
  phase : string;
  site : string;
  sid : int;
  detail : string;
}

type outcome = {
  workload : string;
  identical_incremental : bool;
  identical_specialized : bool;
  identical_cross_mode : bool;
  violations : violation list;
  segments_checked : int;
  dirty_cells : int;
}

let ok o =
  o.identical_incremental && o.identical_specialized && o.identical_cross_mode
  && o.violations = []

(* ---- plumbing shared by every oracle below --------------------------------

   The four oracle families (declared elision, inferred elision, liveness
   minimization, parallel execution) slice chains and attribute segments
   to phases the same way; they diverge only in their verdict
   predicates. *)

let chains_identical a b =
  let key (s : Segment.t) =
    (s.Segment.kind, s.Segment.seq, s.Segment.roots, s.Segment.body)
  in
  List.map key (Chain.segments a) = List.map key (Chain.segments b)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let split_at n segs =
  let rec go n segs =
    if n = 0 then ([], segs)
    else
      match segs with
      | [] -> ([], [])
      | s :: rest ->
          let mine, others = go (n - 1) rest in
          (s :: mine, others)
  in
  go n segs

let split_chain (c : Chain.t) =
  let segs = Chain.segments c in
  ( List.filter (fun (s : Segment.t) -> s.Segment.kind = Segment.Full) segs,
    List.filter
      (fun (s : Segment.t) -> s.Segment.kind = Segment.Incremental)
      segs )

let bytes segs =
  List.fold_left (fun acc s -> acc + Segment.body_size s) 0 segs

(* Walk an instrumented run's incremental segments positionally — the
   phases ran in order, one segment per iteration, after the single full
   base segment — decoding each segment's records for the per-phase
   verdict closure [on_phase] returns. Counts (segments, records)
   decoded. *)
let attribute_records ~schema chain phases ~iterations ~on_phase =
  let segments = ref 0 and records = ref 0 in
  let rec go segs = function
    | [] -> ()
    | p :: rest ->
        let mine, others = split_at (iterations p) segs in
        let on_record = on_phase p in
        List.iter
          (fun (s : Segment.t) ->
            incr segments;
            List.iter
              (fun r ->
                incr records;
                on_record r)
              (Restore.records_of_body schema s.Segment.body))
          mine;
        go others rest
  in
  go (snd (split_chain chain)) phases;
  (!segments, !records)

(* The id → (site, sid) map of the attribute tree: which statically
   analyzed site each heap object's dirty flag stands for. VarRef chain
   nodes are allocated dynamically and are not in the map; they belong
   to the se-lists site of whatever SEEntry points at them. *)
type owner = Spine | Site of Staticcheck.Barrier_elide.site

let owner_map attrs =
  let tbl = Hashtbl.create 256 in
  let id (o : Ickpt_runtime.Model.obj) =
    o.Ickpt_runtime.Model.info.Ickpt_runtime.Model.id
  in
  let child (o : Ickpt_runtime.Model.obj) i =
    match o.Ickpt_runtime.Model.children.(i) with
    | Some c -> c
    | None -> invalid_arg "Elide_oracle: attribute spine child missing"
  in
  for sid = 0 to Attrs.n_stmts attrs - 1 do
    let attr = Attrs.attr attrs sid in
    Hashtbl.replace tbl (id attr) (Spine, sid);
    Hashtbl.replace tbl (id (child attr 1)) (Spine, sid);
    Hashtbl.replace tbl (id (child attr 2)) (Spine, sid);
    Hashtbl.replace tbl
      (id (Attrs.se_entry attrs sid))
      (Site Staticcheck.Barrier_elide.Lists, sid);
    Hashtbl.replace tbl
      (id (Attrs.bt_obj attrs sid))
      (Site Staticcheck.Barrier_elide.Bt, sid);
    Hashtbl.replace tbl
      (id (Attrs.et_obj attrs sid))
      (Site Staticcheck.Barrier_elide.Et, sid)
  done;
  tbl

let phase_of_name = function
  | "sea" -> Staticcheck.Phase_model.Sea
  | "bta" -> Staticcheck.Phase_model.Bta
  | "eta" -> Staticcheck.Phase_model.Eta
  | p -> invalid_arg ("Elide_oracle: unknown phase " ^ p)

(* Check invariant I8 against the incremental instrumented run: every
   record in a phase's segments must be a cell of a site region the
   phase may write. *)
let check_containment (report : Engine.report) =
  let attrs = Engine.attrs report in
  let schema = Attrs.schema attrs in
  let owners = owner_map attrs in
  let varref_kid =
    (Ickpt_runtime.Schema.find_name schema "VarRef").Ickpt_runtime.Model.kid
  in
  let violations = ref [] in
  let on_phase (p : Engine.phase_report) =
    let phase = phase_of_name p.Engine.phase in
    let region site =
      Staticcheck.Barrier_elide.site_region_for
        ~n_stmts:(Attrs.n_stmts attrs) phase site
    in
    fun (r : Restore.record) ->
      let add site sid detail =
        violations :=
          { phase = p.Engine.phase; site; sid; detail } :: !violations
      in
      match Hashtbl.find_opt owners r.Restore.rec_id with
      | Some (Spine, sid) ->
          add "spine" sid
            "attribute-tree spine object dirtied; no phase may modify the \
             spine"
      | Some (Site site, sid) ->
          if not (Staticcheck.Regions.mem sid (region site)) then
            add
              (Staticcheck.Barrier_elide.site_name site)
              sid
              (Format.asprintf
                 "dirty cell %d outside static may-write region %a" sid
                 Staticcheck.Regions.pp (region site))
      | None ->
          if r.Restore.rec_kid = varref_kid then begin
            if
              Staticcheck.Regions.is_bot
                (region Staticcheck.Barrier_elide.Lists)
            then
              add "se-lists" (-1)
                "VarRef dirtied in a phase whose se-lists may-write region \
                 is empty"
          end
          else
            add "?" (-1)
              (Printf.sprintf "record for unknown object id %d (class id %d)"
                 r.Restore.rec_id r.Restore.rec_kid)
  in
  let segments_checked, dirty_cells =
    attribute_records ~schema report.Engine.chain report.Engine.phases
      ~iterations:(fun p -> p.Engine.iterations)
      ~on_phase
  in
  (List.rev !violations, segments_checked, dirty_cells)

(* The four engine runs every byte-identity oracle performs — instrumented
   vs elided, in incremental and guarded-specialized modes — plus one
   containment decode of the instrumented incremental run. *)
let differential ~name ~analyze ~containment =
  let inst_inc = analyze ~mode:Engine.Incremental ~guard:false ~elide:false in
  let elid_inc = analyze ~mode:Engine.Incremental ~guard:false ~elide:true in
  let inst_spec = analyze ~mode:Engine.Specialized ~guard:true ~elide:false in
  let elid_spec = analyze ~mode:Engine.Specialized ~guard:true ~elide:true in
  let violations, segments_checked, dirty_cells = containment inst_inc in
  { workload = name;
    identical_incremental =
      chains_identical inst_inc.Engine.chain elid_inc.Engine.chain;
    identical_specialized =
      chains_identical inst_spec.Engine.chain elid_spec.Engine.chain;
    identical_cross_mode =
      chains_identical inst_inc.Engine.chain inst_spec.Engine.chain;
    violations;
    segments_checked;
    dirty_cells }

let run ?division ~name program =
  differential ~name
    ~analyze:(fun ~mode ~guard ~elide ->
      Engine.analyze ~mode ?division ~guard ~elide program)
    ~containment:check_containment

(* ---- annotation-free (inferred) runs -------------------------------------- *)

(* I8 over the workload heap: every record of the instrumented
   incremental run, attributed positionally to its discovered phase,
   must be a block (or scalar) the phase's inferred may-write region
   meets. Headers never change after the base checkpoint, so a dirty
   header is always a violation. *)
let check_containment_inferred (report : Engine.report) =
  let wheap =
    match Engine.wheap report with
    | Some w -> w
    | None -> invalid_arg "Elide_oracle: not an inferred run"
  in
  let auto = Option.get (Engine.auto_spec report) in
  let schema = Wheap.schema wheap in
  let violations = ref [] in
  let on_phase
      ( (p : Engine.phase_report),
        (pr : Staticcheck.Auto_spec.phase_result) ) =
    let region g =
      match List.assoc_opt g pr.Staticcheck.Auto_spec.ph_regions with
      | Some r -> r
      | None -> Staticcheck.Regions.bot
    in
    fun (r : Restore.record) ->
      let add site sid detail =
        violations :=
          { phase = p.Engine.phase; site; sid; detail } :: !violations
      in
      match Wheap.owner_of wheap r.Restore.rec_id with
      | Some (g, Wheap.Scalar_slot) ->
          if Staticcheck.Regions.is_bot (region g) then
            add g 0
              "scalar dirtied in a phase whose may-write region for it is \
               empty"
      | Some (g, Wheap.Header) ->
          add g (-1)
            "array header dirtied; headers are immutable after the base \
             checkpoint"
      | Some (g, Wheap.Block { lo; hi }) ->
          if
            Staticcheck.Regions.is_bot
              (Staticcheck.Regions.meet (region g)
                 (Staticcheck.Regions.interval lo hi))
          then
            add g lo
              (Format.asprintf
                 "block [%d..%d] dirtied outside static may-write region %a"
                 lo hi Staticcheck.Regions.pp (region g))
      | None ->
          add "?" (-1)
            (Printf.sprintf "record for unknown object id %d (class id %d)"
               r.Restore.rec_id r.Restore.rec_kid)
  in
  let segments_checked, dirty_cells =
    attribute_records ~schema report.Engine.chain
      (List.combine report.Engine.phases auto.Staticcheck.Auto_spec.a_phases)
      ~iterations:(fun ((p : Engine.phase_report), _) -> p.Engine.iterations)
      ~on_phase
  in
  (List.rev !violations, segments_checked, dirty_cells)

let run_inferred ~name program =
  differential ~name
    ~analyze:(fun ~mode ~guard ~elide ->
      Engine.analyze ~mode ~guard ~elide ~infer:true program)
    ~containment:check_containment_inferred

(* ---- restore-equivalence oracle for minimized checkpoints ------------------ *)

(* Minimized checkpoints are NOT byte-identical to unminimized ones by
   construction — dropping dead dirty blocks is the whole point. Their
   soundness contract is semantic: restoring any epoch of the minimized
   chain must agree with the unminimized restore on every cell the
   static liveness marks live at that epoch's boundary, and a run
   resumed from the minimized restore must behave identically (return
   value, final live state). Containment closes the loop on the static
   analysis itself: everything the resumed run reads before writing must
   be inside the boundary's live region. *)

type live_failure = { lf_epoch : int; lf_kind : string; lf_detail : string }

type live_outcome = {
  lw_workload : string;
  lw_seeded : bool;
  lw_epochs : int;
  lw_live_cells : int;
  lw_resumes : int;
  lw_reads_checked : int;
  lw_baseline_bytes : int;
  lw_minimized_bytes : int;
  lw_failures : live_failure list;
}

let live_ok o = o.lw_failures = []

(* A restored chain prefix flattened back to plain global values,
   declaration order. *)
type image = {
  im_scalars : (string * int) list;
  im_arrays : (string * int array) list;
}

let image_of_prefix (encoding : Staticcheck.Shape_infer.encoding) segs =
  let schema = encoding.Staticcheck.Shape_infer.schema in
  let roots =
    match segs with
    | (s : Segment.t) :: _ -> s.Segment.roots
    | [] -> invalid_arg "Elide_oracle: empty chain prefix"
  in
  let _, objs = Restore.of_segments schema segs ~roots in
  let scalars = ref [] in
  let arrays = ref [] in
  List.iter2
    (fun (name, slot) (o : Ickpt_runtime.Model.obj) ->
      match slot with
      | Staticcheck.Shape_infer.Scalar _ ->
          scalars := (name, o.Ickpt_runtime.Model.ints.(0)) :: !scalars
      | Staticcheck.Shape_infer.Array { blocks; length; _ } ->
          let a = Array.make length 0 in
          List.iteri
            (fun j (b : Staticcheck.Shape_infer.block) ->
              match o.Ickpt_runtime.Model.children.(j) with
              | Some blk ->
                  for i = b.Staticcheck.Shape_infer.b_lo
                      to b.Staticcheck.Shape_infer.b_hi do
                    a.(i) <-
                      blk.Ickpt_runtime.Model.ints.(i
                                                    - b.Staticcheck.Shape_infer
                                                        .b_lo)
                  done
              | None -> raise (Restore.Error "restored array block missing"))
            blocks;
          arrays := (name, a) :: !arrays)
    encoding.Staticcheck.Shape_infer.slots objs;
  { im_scalars = List.rev !scalars; im_arrays = List.rev !arrays }

(* A plain concrete store with read/write tracking: once [ts_tracking] is
   switched on (at the resume point), every cell read before this run
   writes it lands in [ts_rbw] — the dynamic reads-before-write set the
   containment check compares against the static live region. *)
type tstore = {
  ts_scalars : (string, int) Hashtbl.t;
  ts_arrays : (string, int array) Hashtbl.t;
  mutable ts_tracking : bool;
  ts_written : (string * int, unit) Hashtbl.t;
  ts_rbw : (string * int, unit) Hashtbl.t;
}

let tstore_create (encoding : Staticcheck.Shape_infer.encoding) =
  let inits =
    List.map
      (fun (d : Minic.Ast.var_decl) -> (d.Minic.Ast.v_name, d.Minic.Ast.v_init))
      encoding.Staticcheck.Shape_infer.enc_env.Minic.Check.program
        .Minic.Ast.globals
  in
  let ts =
    { ts_scalars = Hashtbl.create 8;
      ts_arrays = Hashtbl.create 8;
      ts_tracking = false;
      ts_written = Hashtbl.create 64;
      ts_rbw = Hashtbl.create 64 }
  in
  List.iter
    (fun (name, slot) ->
      match slot with
      | Staticcheck.Shape_infer.Scalar _ ->
          Hashtbl.replace ts.ts_scalars name (List.assoc name inits)
      | Staticcheck.Shape_infer.Array { length; _ } ->
          Hashtbl.replace ts.ts_arrays name (Array.make length 0))
    encoding.Staticcheck.Shape_infer.slots;
  ts

let tstore_store ts =
  let read g i =
    if ts.ts_tracking && not (Hashtbl.mem ts.ts_written (g, i)) then
      Hashtbl.replace ts.ts_rbw (g, i) ()
  in
  let wrote g i = if ts.ts_tracking then Hashtbl.replace ts.ts_written (g, i) () in
  { Minic.Interp.gs_get =
      (fun x ->
        read x 0;
        Hashtbl.find ts.ts_scalars x);
    gs_set =
      (fun x v ->
        wrote x 0;
        Hashtbl.replace ts.ts_scalars x v);
    gs_get_cell =
      (fun x i ->
        read x i;
        (Hashtbl.find ts.ts_arrays x).(i));
    gs_set_cell =
      (fun x i v ->
        wrote x i;
        (Hashtbl.find ts.ts_arrays x).(i) <- v);
    gs_length = (fun x -> Array.length (Hashtbl.find ts.ts_arrays x)) }

(* Overwrite the whole store with a restored image — the restore itself,
   not program writes: tracking state is untouched. *)
let tstore_overwrite ts img =
  List.iter (fun (g, v) -> Hashtbl.replace ts.ts_scalars g v) img.im_scalars;
  List.iter
    (fun (g, a) ->
      let dst = Hashtbl.find ts.ts_arrays g in
      Array.blit a 0 dst 0 (Array.length a))
    img.im_arrays

let tstore_image ts (encoding : Staticcheck.Shape_infer.encoding) =
  { im_scalars =
      List.filter_map
        (fun (name, slot) ->
          match slot with
          | Staticcheck.Shape_infer.Scalar _ ->
              Some (name, Hashtbl.find ts.ts_scalars name)
          | _ -> None)
        encoding.Staticcheck.Shape_infer.slots;
    im_arrays =
      List.filter_map
        (fun (name, slot) ->
          match slot with
          | Staticcheck.Shape_infer.Array _ ->
              Some (name, Array.copy (Hashtbl.find ts.ts_arrays name))
          | _ -> None)
        encoding.Staticcheck.Shape_infer.slots }

(* Re-drive the program through its discovered phase structure against
   [store], mirroring the engine's checkpoint placement exactly (one per
   setup body, one per round iteration including the final false-guard
   evaluation, halted phases take none). [on_checkpoint k] fires where
   checkpoint [k] would be taken. Returns (checkpoints, returned,
   return value). *)
let drive ~(phases : Staticcheck.Auto_spec.phase_result list) ~store program
    ~on_checkpoint =
  let session = Minic.Interp.Session.start ~store program in
  let halted = ref false in
  let ret = ref None in
  let k = ref 0 in
  let step () =
    on_checkpoint !k;
    incr k
  in
  List.iter
    (fun (pr : Staticcheck.Auto_spec.phase_result) ->
      let ph = pr.Staticcheck.Auto_spec.ph in
      if not !halted then begin
        let exec_body () =
          try
            Minic.Interp.Session.exec_block session
              ph.Staticcheck.Phase_discover.p_body
          with Minic.Interp.Session.Halted v ->
            halted := true;
            ret := v
        in
        match ph.Staticcheck.Phase_discover.p_kind with
        | Staticcheck.Phase_discover.Setup ->
            exec_body ();
            step ()
        | Staticcheck.Phase_discover.Round { cond } ->
            let continue = ref true in
            while !continue do
              if !halted then continue := false
              else begin
                let v = Minic.Interp.Session.eval session cond in
                if v = 0 then continue := false else exec_body ();
                step ()
              end
            done
      end)
    phases;
  (!k, !halted, !ret)

let run_live ?(seed_unsound = false) ~name program =
  let baseline =
    Engine.analyze ~infer:true ~mode:Engine.Specialized ~guard:true
      ~elide:false program
  in
  let minimized =
    Engine.analyze ~infer:true ~mode:Engine.Specialized ~guard:true
      ~elide:true ~minimize:true ~seed_dead:seed_unsound program
  in
  let auto = Option.get (Engine.auto_spec baseline) in
  let auto_m = Option.get (Engine.auto_spec minimized) in
  let enc = auto.Staticcheck.Auto_spec.a_encoding in
  let enc_m = auto_m.Staticcheck.Auto_spec.a_encoding in
  let live = auto.Staticcheck.Auto_spec.a_live in
  let failures = ref [] in
  let live_cells = ref 0 in
  let reads_checked = ref 0 in
  let resumes = ref 0 in
  let fail e kind fmt =
    Format.kasprintf
      (fun s ->
        failures := { lf_epoch = e; lf_kind = kind; lf_detail = s } :: !failures)
      fmt
  in
  let full_b, inc_b = split_chain baseline.Engine.chain in
  let full_m, inc_m = split_chain minimized.Engine.chain in
  let epochs_b = List.length inc_b in
  let epochs_m = List.length inc_m in
  if epochs_b <> epochs_m then
    fail (-1) "chain"
      "baseline took %d incremental checkpoint(s), minimized %d: the runs \
       diverged before any restore"
      epochs_b epochs_m;
  let epochs = min epochs_b epochs_m in
  (* Epoch -> the phase whose boundary covers it, positionally (round
     boundaries are loop-head fixpoints, so every iteration of a round
     shares the phase's boundary soundly). *)
  let epoch_pr =
    Array.of_list
      (List.concat_map
         (fun ((p : Engine.phase_report),
               (pr : Staticcheck.Auto_spec.phase_result)) ->
           List.init p.Engine.iterations (fun _ -> pr))
         (List.combine baseline.Engine.phases
            auto.Staticcheck.Auto_spec.a_phases))
  in
  let cell_live boundary g i =
    match List.assoc_opt g boundary with
    | Some r -> Staticcheck.Regions.mem i r
    | None -> false
  in
  (* Reference run: the same driver, no switch — what a never-crashed
     execution observes on this store implementation. *)
  let ref_ts = tstore_create enc in
  let ref_epochs, ref_halted, ref_ret =
    drive ~phases:auto.Staticcheck.Auto_spec.a_phases
      ~store:(tstore_store ref_ts) program ~on_checkpoint:(fun _ -> ())
  in
  let ref_final = tstore_image ref_ts enc in
  if ref_epochs <> epochs_b then
    fail (-1) "chain"
      "re-driven reference run took %d checkpoint(s), engine run %d"
      ref_epochs epochs_b;
  for e = 0 to epochs - 1 do
    let pr = epoch_pr.(e) in
    let boundary =
      Staticcheck.Live.boundary live
        pr.Staticcheck.Auto_spec.ph.Staticcheck.Phase_discover.p_index
    in
    let prefix_b = full_b @ take (e + 1) inc_b in
    let prefix_m = full_m @ take (e + 1) inc_m in
    let img_b = image_of_prefix enc prefix_b in
    let img_m = image_of_prefix enc_m prefix_m in
    (* 1. Restored live cells must agree with the unminimized restore. *)
    List.iter2
      (fun (g, vb) (g', vm) ->
        assert (g = g');
        if cell_live boundary g 0 then begin
          incr live_cells;
          if vb <> vm then
            fail e "restore"
              "scalar %s live at the %s boundary restores to %d minimized \
               vs %d baseline"
              g pr.Staticcheck.Auto_spec.ph.Staticcheck.Phase_discover.p_name
              vm vb
        end)
      img_b.im_scalars img_m.im_scalars;
    List.iter2
      (fun (g, ab) (g', am) ->
        assert (g = g');
        for i = 0 to Array.length ab - 1 do
          if cell_live boundary g i then begin
            incr live_cells;
            if ab.(i) <> am.(i) then
              fail e "restore"
                "%s[%d] live at the %s boundary restores to %d minimized vs \
                 %d baseline"
                g i
                pr.Staticcheck.Auto_spec.ph.Staticcheck.Phase_discover.p_name
                am.(i) ab.(i)
          end
        done)
      img_b.im_arrays img_m.im_arrays;
    (* 2. Resume from the minimized restore and run to completion. *)
    let ts = tstore_create enc in
    let switched = ref false in
    let res =
      (* A runtime error after the switch is itself a divergence (the
         reference run completed): report it, don't propagate. *)
      try
        Some
          (drive ~phases:auto.Staticcheck.Auto_spec.a_phases
             ~store:(tstore_store ts) program ~on_checkpoint:(fun k ->
               if k = e then begin
                 tstore_overwrite ts img_m;
                 ts.ts_tracking <- true;
                 switched := true
               end))
      with Minic.Interp.Runtime_error msg ->
        fail e "resume-crash"
          "resumed run raised a runtime error the reference run did not: %s"
          msg;
        None
    in
    incr resumes;
    (match res with
    | None -> ()
    | Some (_, res_halted, res_ret) ->
    if not !switched then
      fail e "chain" "resume driver never reached checkpoint %d" e
    else begin
      (* 2a. Observable output: a return executed after the switch must
         produce the reference value. *)
      if res_halted <> ref_halted then
        fail e "resume-return"
          "resumed run %s while the reference run %s"
          (if res_halted then "returned" else "fell off main")
          (if ref_halted then "returned" else "fell off main")
      else if res_halted && res_ret <> ref_ret then
        fail e "resume-return" "resumed run returned %s, reference %s"
          (match res_ret with Some v -> string_of_int v | None -> "(none)")
          (match ref_ret with Some v -> string_of_int v | None -> "(none)");
      (* 2b. Final state on cells that matter: live at the switch
         boundary, or written after the switch. Dead unwritten cells may
         legitimately hold stale restored values. *)
      let final = tstore_image ts enc in
      let relevant g i =
        cell_live boundary g i || Hashtbl.mem ts.ts_written (g, i)
      in
      List.iter2
        (fun (g, vr) (g', vf) ->
          assert (g = g');
          if relevant g 0 && vr <> vf then
            fail e "resume-state" "final scalar %s is %d resumed vs %d \
                                   reference" g vf vr)
        ref_final.im_scalars final.im_scalars;
      List.iter2
        (fun (g, ar) (g', af) ->
          assert (g = g');
          for i = 0 to Array.length ar - 1 do
            if relevant g i && ar.(i) <> af.(i) then
              fail e "resume-state" "final %s[%d] is %d resumed vs %d \
                                     reference" g i af.(i) ar.(i)
          done)
        ref_final.im_arrays final.im_arrays;
      (* 3. Containment: everything the resumed run read before writing
         must be inside the static live region — the liveness dual of
         invariant I8. *)
      Hashtbl.iter
        (fun (g, i) () ->
          incr reads_checked;
          if not (cell_live boundary g i) then
            fail e "containment"
              "resumed run read %s[%d] before writing it, but the %s \
               boundary's live region excludes it"
              g i
              pr.Staticcheck.Auto_spec.ph.Staticcheck.Phase_discover.p_name)
        ts.ts_rbw
    end)
  done;
  { lw_workload = name;
    lw_seeded = seed_unsound;
    lw_epochs = epochs;
    lw_live_cells = !live_cells;
    lw_resumes = !resumes;
    lw_reads_checked = !reads_checked;
    lw_baseline_bytes = bytes inc_b;
    lw_minimized_bytes = bytes inc_m;
    lw_failures = List.rev !failures }

let pp_live ppf o =
  Format.fprintf ppf "@[<v 2>%s%s: %s" o.lw_workload
    (if o.lw_seeded then " (seeded-unsound)" else "")
    (if live_ok o then "ok" else "FAILED");
  Format.fprintf ppf
    "@,%d epoch(s): %d live cell(s) restore-checked, %d resume(s), %d \
     read(s) containment-checked"
    o.lw_epochs o.lw_live_cells o.lw_resumes o.lw_reads_checked;
  Format.fprintf ppf "@,incremental bytes: %d baseline, %d minimized"
    o.lw_baseline_bytes o.lw_minimized_bytes;
  List.iter
    (fun f ->
      Format.fprintf ppf "@,[epoch %d] %s: %s" f.lf_epoch f.lf_kind
        f.lf_detail)
    o.lw_failures;
  Format.fprintf ppf "@]"

let builtin_workloads () =
  [ ("image", Minic.Gen.image_program ());
    ("small", Minic.Gen.small_program ()) ]

let pp ppf o =
  Format.fprintf ppf "@[<v 2>%s: %s" o.workload
    (if ok o then "ok" else "FAILED");
  Format.fprintf ppf
    "@,incremental chains identical: %b@,specialized chains identical: %b"
    o.identical_incremental o.identical_specialized;
  Format.fprintf ppf "@,I8: %d dirty cell(s) over %d segment(s), %d violation(s)"
    o.dirty_cells o.segments_checked
    (List.length o.violations);
  List.iter
    (fun v ->
      Format.fprintf ppf "@,[%s] %s sid %d: %s" v.phase v.site v.sid v.detail)
    o.violations;
  Format.fprintf ppf "@]"

(* ---- parallel-execution oracle --------------------------------------------- *)

(* Parallel runs promise byte-identity with the sequential chain — the
   replay-in-schedule-order construction guarantees it whenever the units'
   footprints were really disjoint. But an overlap that writes the same
   value keeps the chain identical while the run is still racy (the
   seeded self-test demonstrates exactly this), so identity alone cannot
   gate: the oracle also intersects the footprints each domain actually
   observed, pairwise within every fork group — the parallel dual of
   invariant I8 (static disjointness ⊇ dynamic disjointness). *)

type par_conflict = {
  pc_mode : string;  (* "incremental" or "specialized" *)
  pc_group : int;
  pc_a : string;
  pc_b : string;
  pc_detail : string;
}

type par_outcome = {
  pw_workload : string;
  pw_domains : int;
  pw_seeded : bool;
  pw_identical_incremental : bool;
  pw_identical_specialized : bool;
  pw_par_units : int;
  pw_par_sweeps : int;
  pw_pairs_checked : int;
  pw_conflicts : par_conflict list;
}

let par_ok o =
  o.pw_identical_incremental && o.pw_identical_specialized
  && o.pw_conflicts = []

(* Pairwise observed-footprint disjointness inside each fork group —
   units in different groups ran sequentially and may overlap freely. *)
let observed_conflicts ~mode (rep : Engine.par_report) =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (u : Engine.par_unit) ->
      let l =
        Option.value ~default:[] (Hashtbl.find_opt groups u.Engine.pu_group)
      in
      Hashtbl.replace groups u.Engine.pu_group (u :: l))
    rep.Engine.par_units;
  let foot (u : Engine.par_unit) =
    { Staticcheck.Interfere.fp_reads = u.Engine.pu_reads;
      fp_writes = u.Engine.pu_writes }
  in
  let pairs = ref 0 in
  let conflicts = ref [] in
  Hashtbl.iter
    (fun group members ->
      let members = Array.of_list (List.rev members) in
      for i = 0 to Array.length members - 1 do
        for j = i + 1 to Array.length members - 1 do
          incr pairs;
          match
            Staticcheck.Interfere.footprint_conflict
              (foot members.(i))
              (foot members.(j))
          with
          | None -> ()
          | Some (g, ra, rb) ->
              conflicts :=
                { pc_mode = mode;
                  pc_group = group;
                  pc_a = members.(i).Engine.pu_label;
                  pc_b = members.(j).Engine.pu_label;
                  pc_detail =
                    Format.asprintf
                      "observed footprints meet on %s: %a vs %a" g
                      Staticcheck.Regions.pp ra Staticcheck.Regions.pp rb }
                :: !conflicts
        done
      done)
    groups;
  (!pairs, List.rev !conflicts)

let run_par ?(seed_racy = false) ?(domains = 4) ~name program =
  let seq ~mode ~guard =
    Engine.analyze ~infer:true ~mode ~guard ~elide:false program
  in
  let par ~mode ~guard =
    Engine.analyze ~infer:true ~mode ~guard ~elide:false ~parallel:domains
      ~seed_racy program
  in
  let seq_inc = seq ~mode:Engine.Incremental ~guard:false in
  let par_inc = par ~mode:Engine.Incremental ~guard:false in
  let seq_spec = seq ~mode:Engine.Specialized ~guard:true in
  let par_spec = par ~mode:Engine.Specialized ~guard:true in
  let rep_inc = Option.get par_inc.Engine.par in
  let rep_spec = Option.get par_spec.Engine.par in
  let pairs_i, conf_i = observed_conflicts ~mode:"incremental" rep_inc in
  let pairs_s, conf_s = observed_conflicts ~mode:"specialized" rep_spec in
  { pw_workload = name;
    pw_domains = rep_inc.Engine.par_domains;
    pw_seeded = rep_inc.Engine.par_schedule.Engine.Isch.sc_seeded;
    pw_identical_incremental =
      chains_identical seq_inc.Engine.chain par_inc.Engine.chain;
    pw_identical_specialized =
      chains_identical seq_spec.Engine.chain par_spec.Engine.chain;
    pw_par_units = List.length rep_inc.Engine.par_units;
    pw_par_sweeps = rep_inc.Engine.par_sweeps;
    pw_pairs_checked = pairs_i + pairs_s;
    pw_conflicts = conf_i @ conf_s }

let pp_par ppf o =
  Format.fprintf ppf "@[<v 2>%s%s: %s" o.pw_workload
    (if o.pw_seeded then " (seeded-racy)" else "")
    (if par_ok o then "ok" else "FAILED");
  Format.fprintf ppf "@,%d domain(s): %d parallel unit(s), %d sweep fan-out(s)"
    o.pw_domains o.pw_par_units o.pw_par_sweeps;
  Format.fprintf ppf
    "@,chains identical to sequential: incremental %b, specialized %b"
    o.pw_identical_incremental o.pw_identical_specialized;
  Format.fprintf ppf
    "@,observed disjointness: %d pair(s) checked, %d conflict(s)"
    o.pw_pairs_checked
    (List.length o.pw_conflicts);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,[%s fork %d] %s || %s: %s" c.pc_mode c.pc_group
        c.pc_a c.pc_b c.pc_detail)
    o.pw_conflicts;
  Format.fprintf ppf "@]"
