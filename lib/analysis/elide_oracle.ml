open Ickpt_core

type violation = {
  phase : string;
  site : string;
  sid : int;
  detail : string;
}

type outcome = {
  workload : string;
  identical_incremental : bool;
  identical_specialized : bool;
  identical_cross_mode : bool;
  violations : violation list;
  segments_checked : int;
  dirty_cells : int;
}

let ok o =
  o.identical_incremental && o.identical_specialized && o.identical_cross_mode
  && o.violations = []

let chains_identical a b =
  let key (s : Segment.t) =
    (s.Segment.kind, s.Segment.seq, s.Segment.roots, s.Segment.body)
  in
  List.map key (Chain.segments a) = List.map key (Chain.segments b)

(* The id → (site, sid) map of the attribute tree: which statically
   analyzed site each heap object's dirty flag stands for. VarRef chain
   nodes are allocated dynamically and are not in the map; they belong
   to the se-lists site of whatever SEEntry points at them. *)
type owner = Spine | Site of Staticcheck.Barrier_elide.site

let owner_map attrs =
  let tbl = Hashtbl.create 256 in
  let id (o : Ickpt_runtime.Model.obj) =
    o.Ickpt_runtime.Model.info.Ickpt_runtime.Model.id
  in
  let child (o : Ickpt_runtime.Model.obj) i =
    match o.Ickpt_runtime.Model.children.(i) with
    | Some c -> c
    | None -> invalid_arg "Elide_oracle: attribute spine child missing"
  in
  for sid = 0 to Attrs.n_stmts attrs - 1 do
    let attr = Attrs.attr attrs sid in
    Hashtbl.replace tbl (id attr) (Spine, sid);
    Hashtbl.replace tbl (id (child attr 1)) (Spine, sid);
    Hashtbl.replace tbl (id (child attr 2)) (Spine, sid);
    Hashtbl.replace tbl
      (id (Attrs.se_entry attrs sid))
      (Site Staticcheck.Barrier_elide.Lists, sid);
    Hashtbl.replace tbl
      (id (Attrs.bt_obj attrs sid))
      (Site Staticcheck.Barrier_elide.Bt, sid);
    Hashtbl.replace tbl
      (id (Attrs.et_obj attrs sid))
      (Site Staticcheck.Barrier_elide.Et, sid)
  done;
  tbl

let phase_of_name = function
  | "sea" -> Staticcheck.Phase_model.Sea
  | "bta" -> Staticcheck.Phase_model.Bta
  | "eta" -> Staticcheck.Phase_model.Eta
  | p -> invalid_arg ("Elide_oracle: unknown phase " ^ p)

(* Check invariant I8 against the incremental instrumented run: every
   record in a phase's segments must be a cell of a site region the
   phase may write. *)
let check_containment (report : Engine.report) =
  let attrs = Engine.attrs report in
  let schema = Attrs.schema attrs in
  let owners = owner_map attrs in
  let varref_kid =
    (Ickpt_runtime.Schema.find_name schema "VarRef").Ickpt_runtime.Model.kid
  in
  let violations = ref [] in
  let segments_checked = ref 0 in
  let dirty_cells = ref 0 in
  let incremental_segments =
    List.filter
      (fun (s : Segment.t) -> s.Segment.kind = Segment.Incremental)
      (Chain.segments report.Engine.chain)
  in
  (* Segments are positional: the phases ran in order, one segment per
     iteration, after the single full base segment. *)
  let rec attribute segs = function
    | [] -> ()
    | (p : Engine.phase_report) :: phases ->
        let rec take n segs =
          if n = 0 then ([], segs)
          else
            match segs with
            | [] -> ([], [])
            | s :: rest ->
                let mine, others = take (n - 1) rest in
                (s :: mine, others)
        in
        let mine, rest = take p.Engine.iterations segs in
        let phase = phase_of_name p.Engine.phase in
        let region site =
          Staticcheck.Barrier_elide.site_region_for
            ~n_stmts:(Attrs.n_stmts attrs) phase site
        in
        List.iter
          (fun (s : Segment.t) ->
            incr segments_checked;
            List.iter
              (fun (r : Restore.record) ->
                incr dirty_cells;
                let add site sid detail =
                  violations :=
                    { phase = p.Engine.phase; site; sid; detail } :: !violations
                in
                match Hashtbl.find_opt owners r.Restore.rec_id with
                | Some (Spine, sid) ->
                    add "spine" sid
                      "attribute-tree spine object dirtied; no phase may \
                       modify the spine"
                | Some (Site site, sid) ->
                    if not (Staticcheck.Regions.mem sid (region site)) then
                      add
                        (Staticcheck.Barrier_elide.site_name site)
                        sid
                        (Format.asprintf
                           "dirty cell %d outside static may-write region %a"
                           sid Staticcheck.Regions.pp (region site))
                | None ->
                    if r.Restore.rec_kid = varref_kid then begin
                      if
                        Staticcheck.Regions.is_bot
                          (region Staticcheck.Barrier_elide.Lists)
                      then
                        add "se-lists" (-1)
                          "VarRef dirtied in a phase whose se-lists \
                           may-write region is empty"
                    end
                    else
                      add "?" (-1)
                        (Printf.sprintf
                           "record for unknown object id %d (class id %d)"
                           r.Restore.rec_id r.Restore.rec_kid)
              )
              (Restore.records_of_body schema s.Segment.body))
          mine;
        attribute rest phases
  in
  attribute incremental_segments report.Engine.phases;
  (List.rev !violations, !segments_checked, !dirty_cells)

let run ?division ~name program =
  let analyze ~mode ~guard ~elide =
    Engine.analyze ~mode ?division ~guard ~elide program
  in
  let inst_inc = analyze ~mode:Engine.Incremental ~guard:false ~elide:false in
  let elid_inc = analyze ~mode:Engine.Incremental ~guard:false ~elide:true in
  let inst_spec = analyze ~mode:Engine.Specialized ~guard:true ~elide:false in
  let elid_spec = analyze ~mode:Engine.Specialized ~guard:true ~elide:true in
  let violations, segments_checked, dirty_cells =
    check_containment inst_inc
  in
  { workload = name;
    identical_incremental =
      chains_identical inst_inc.Engine.chain elid_inc.Engine.chain;
    identical_specialized =
      chains_identical inst_spec.Engine.chain elid_spec.Engine.chain;
    identical_cross_mode =
      chains_identical inst_inc.Engine.chain inst_spec.Engine.chain;
    violations;
    segments_checked;
    dirty_cells }

(* ---- annotation-free (inferred) runs -------------------------------------- *)

(* I8 over the workload heap: every record of the instrumented
   incremental run, attributed positionally to its discovered phase,
   must be a block (or scalar) the phase's inferred may-write region
   meets. Headers never change after the base checkpoint, so a dirty
   header is always a violation. *)
let check_containment_inferred (report : Engine.report) =
  let wheap =
    match Engine.wheap report with
    | Some w -> w
    | None -> invalid_arg "Elide_oracle: not an inferred run"
  in
  let auto = Option.get (Engine.auto_spec report) in
  let schema = Wheap.schema wheap in
  let violations = ref [] in
  let segments_checked = ref 0 in
  let dirty_cells = ref 0 in
  let incremental_segments =
    List.filter
      (fun (s : Segment.t) -> s.Segment.kind = Segment.Incremental)
      (Chain.segments report.Engine.chain)
  in
  let rec attribute segs = function
    | [] -> ()
    | ( (p : Engine.phase_report),
        (pr : Staticcheck.Auto_spec.phase_result) )
      :: phases ->
        let rec take n segs =
          if n = 0 then ([], segs)
          else
            match segs with
            | [] -> ([], [])
            | s :: rest ->
                let mine, others = take (n - 1) rest in
                (s :: mine, others)
        in
        let mine, rest = take p.Engine.iterations segs in
        let region g =
          match List.assoc_opt g pr.Staticcheck.Auto_spec.ph_regions with
          | Some r -> r
          | None -> Staticcheck.Regions.bot
        in
        List.iter
          (fun (s : Segment.t) ->
            incr segments_checked;
            List.iter
              (fun (r : Restore.record) ->
                incr dirty_cells;
                let add site sid detail =
                  violations :=
                    { phase = p.Engine.phase; site; sid; detail }
                    :: !violations
                in
                match Wheap.owner_of wheap r.Restore.rec_id with
                | Some (g, Wheap.Scalar_slot) ->
                    if Staticcheck.Regions.is_bot (region g) then
                      add g 0
                        "scalar dirtied in a phase whose may-write region \
                         for it is empty"
                | Some (g, Wheap.Header) ->
                    add g (-1)
                      "array header dirtied; headers are immutable after \
                       the base checkpoint"
                | Some (g, Wheap.Block { lo; hi }) ->
                    if
                      Staticcheck.Regions.is_bot
                        (Staticcheck.Regions.meet (region g)
                           (Staticcheck.Regions.interval lo hi))
                    then
                      add g lo
                        (Format.asprintf
                           "block [%d..%d] dirtied outside static \
                            may-write region %a"
                           lo hi Staticcheck.Regions.pp (region g))
                | None ->
                    add "?" (-1)
                      (Printf.sprintf
                         "record for unknown object id %d (class id %d)"
                         r.Restore.rec_id r.Restore.rec_kid))
              (Restore.records_of_body schema s.Segment.body))
          mine;
        attribute rest phases
  in
  attribute incremental_segments
    (List.combine report.Engine.phases auto.Staticcheck.Auto_spec.a_phases);
  (List.rev !violations, !segments_checked, !dirty_cells)

let run_inferred ~name program =
  let analyze ~mode ~guard ~elide =
    Engine.analyze ~mode ~guard ~elide ~infer:true program
  in
  let inst_inc = analyze ~mode:Engine.Incremental ~guard:false ~elide:false in
  let elid_inc = analyze ~mode:Engine.Incremental ~guard:false ~elide:true in
  let inst_spec = analyze ~mode:Engine.Specialized ~guard:true ~elide:false in
  let elid_spec = analyze ~mode:Engine.Specialized ~guard:true ~elide:true in
  let violations, segments_checked, dirty_cells =
    check_containment_inferred inst_inc
  in
  { workload = name;
    identical_incremental =
      chains_identical inst_inc.Engine.chain elid_inc.Engine.chain;
    identical_specialized =
      chains_identical inst_spec.Engine.chain elid_spec.Engine.chain;
    identical_cross_mode =
      chains_identical inst_inc.Engine.chain inst_spec.Engine.chain;
    violations;
    segments_checked;
    dirty_cells }

let builtin_workloads () =
  [ ("image", Minic.Gen.image_program ());
    ("small", Minic.Gen.small_program ()) ]

let pp ppf o =
  Format.fprintf ppf "@[<v 2>%s: %s" o.workload
    (if ok o then "ok" else "FAILED");
  Format.fprintf ppf
    "@,incremental chains identical: %b@,specialized chains identical: %b"
    o.identical_incremental o.identical_specialized;
  Format.fprintf ppf "@,I8: %d dirty cell(s) over %d segment(s), %d violation(s)"
    o.dirty_cells o.segments_checked
    (List.length o.violations);
  List.iter
    (fun v ->
      Format.fprintf ppf "@,[%s] %s sid %d: %s" v.phase v.site v.sid v.detail)
    o.violations;
  Format.fprintf ppf "@]"
