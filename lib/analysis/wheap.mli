(** The workload heap: a mini-C program's globals materialized as a
    checkpointable {!Ickpt_runtime} object graph per the
    {!Staticcheck.Shape_infer} encoding — the runtime half of the
    annotation-free pipeline.

    Every global is a checkpoint root (declaration order): scalars as
    one-field objects, arrays as a header whose children are fixed-size
    block objects. {!store} exposes the heap as a
    {!Minic.Interp.global_store}, so the reference interpreter executes
    the {e unmodified} program against it: every global store becomes a
    write-barriered field assignment (unconditional, the paper's model:
    every assignment pays the flag update), every read a plain field
    load. Globals
    whose barrier the current phase's {!Staticcheck.Barrier_elide.wplan}
    elides take the raw setter instead ({!set_elided}).

    {!owner_of} maps object ids back to (global, cell range) — what
    {!Elide_oracle} uses to check dynamically dirtied blocks against the
    static may-write regions (invariant I8). *)

open Ickpt_runtime

type t

type owner =
  | Scalar_slot  (** the one int field of a scalar global *)
  | Header  (** an array header: immutable length + block pointers *)
  | Block of { lo : int; hi : int }  (** cells [lo..hi] of the array *)

val create : Staticcheck.Shape_infer.encoding -> t
(** Allocate the whole graph: scalars at their declared initializers,
    array cells zeroed. Freshly allocated objects carry a set [modified]
    flag — take the base full checkpoint before running anything. *)

val encoding : t -> Staticcheck.Shape_infer.encoding
val heap : t -> Heap.t
val schema : t -> Schema.t

val roots : t -> Model.obj list
(** Declaration order — the fixed root list of every checkpoint. *)

val root_of : t -> string -> Model.obj
(** @raise Invalid_argument for a non-global name. *)

val owner_of : t -> int -> (string * owner) option
(** Attribute an object id; [None] for ids outside this heap. *)

val set_elided : t -> string list -> unit
(** Install the elision set for the phase about to run: stores to these
    globals skip barrier and flag maintenance. Replaces the previous
    set; [set_elided t []] restores full instrumentation. *)

val is_elided : t -> string -> bool

val clear_modified : t -> unit
(** Clear the [modified] flag on every object of the graph. Minimized
    checkpoints need this: a demoted (dirty-but-dead) block is skipped by
    the residual checkpointer, so its flag would otherwise stay set and
    trip a {e later} phase's cleanliness guard — which still validates
    the original (unminimized) shapes. The generic and byte-identity
    specialized paths never call this; their checkpointers clear exactly
    the flags they consume. *)

val store : t -> Minic.Interp.global_store
(** The interpreter-facing view. Raises [Minic.Interp.Runtime_error] on
    scalar/array misuse (checked programs never do). *)

val scalar_globals : t -> (string * int) list
(** Current scalar values, declaration order — comparable to
    [Minic.Interp.outcome.globals]. *)

val get_cell : t -> string -> int -> int
(** Read one array cell (bounds unchecked beyond block lookup). *)
