(** The checkpointable annotation store of the program analysis engine —
    the paper's Figure 4. Every statement of the analyzed program owns an
    [Attributes] object with three children:

    {v
    Attributes
      +-- SEEntry ---- reads:  VarRef -> VarRef -> ...   (side effects)
      |            \-- writes: VarRef -> ...
      +-- BTEntry ---- BT   (binding-time annotation)
      +-- ETEntry ---- ET   (evaluation-time annotation)
    v}

    All mutation goes through [set_*] functions that use change-detecting
    write barriers, so an analysis iteration that recomputes the same value
    leaves objects clean — which is what makes incremental checkpointing
    profitable as fixpoints converge.

    Replacing a side-effect set allocates a fresh [VarRef] chain; the old
    chain becomes unreachable garbage (it stays in the heap's id registry
    but is never visited from the roots, exactly like dead Java objects
    awaiting collection — cf. the paper's Section 1 remark). *)

open Ickpt_runtime

type t

val create : n_stmts:int -> t

val heap : t -> Heap.t

val schema : t -> Schema.t

val n_stmts : t -> int

val roots : t -> Model.obj list
(** The [Attributes] objects, in sid order — the compound-structure roots
    handed to the checkpointer. *)

val attr : t -> int -> Model.obj

val se_entry : t -> int -> Model.obj
(** The statement's [SEEntry] node (for the elision oracle's id → site
    mapping). *)

val bt_obj : t -> int -> Model.obj
val et_obj : t -> int -> Model.obj

(** {1 Barrier elision} *)

type barrier_plan = {
  lists_elided : bool;
  bt_elided : bool;
  et_elided : bool;
}
(** Which setters run with their write barrier compiled out — no
    [modified] flag, no trace hook (see {!Ickpt_runtime.Barrier} raw
    ops). Installed per phase from a {!Staticcheck.Barrier_elide} plan:
    an elided site is one the phase provably never writes, so the
    rerouted setters are statically dead; if the proof were wrong, the
    missing flags would surface as a checkpoint byte divergence in the
    elision oracle. *)

val no_elision : barrier_plan

val barrier_plan : t -> barrier_plan

val set_barrier_plan : t -> barrier_plan -> unit

(** {1 Annotation values} *)

val bt_unknown : int
val bt_static : int
val bt_dynamic : int
val et_unknown : int
val et_spec_time : int
val et_run_time : int

(** {1 Accessors} (sid-indexed; all setters return [true] iff changed) *)

val set_reads : t -> int -> int list -> bool
(** Store the sorted list of global-variable ids read by the statement. *)

val get_reads : t -> int -> int list

val set_writes : t -> int -> int list -> bool

val get_writes : t -> int -> int list

val set_bt : t -> int -> int -> bool

val get_bt : t -> int -> int

val set_et : t -> int -> int -> bool

val get_et : t -> int -> int

(** {1 Specialization classes for the phases} (paper Section 4.2) *)

val sea_shape : t -> Jspec.Sclass.shape
(** During side-effect analysis: the [SEEntry] and its lists may change
    (lists have no static shape — [Unknown] children); [BT]/[ET] are clean. *)

val bta_shape : t -> Jspec.Sclass.shape
(** During binding-time analysis: only the [BT] object may be modified;
    the side-effect lists are clean-opaque, [ET] clean (cf. Figure 6). *)

val eta_shape : t -> Jspec.Sclass.shape
(** During evaluation-time analysis: only the [ET] object may change. *)

val klasses : t -> Model.klass list
(** All seven klasses, for introspection/tests. *)
