(** Differential soundness oracle for static write-barrier elision.

    Two dynamic checks per workload, against the static
    {!Staticcheck.Barrier_elide} facts:

    - {b Byte identity}: the workload runs once fully instrumented and
      once with elision ([Engine.analyze ~elide:true]), in both
      incremental and guarded-specialized modes; the two checkpoint
      chains must be byte-identical segment by segment. A wrong elision
      (a barrier removed from a site the phase does write) silently
      drops the site from incremental checkpoints — exactly the
      divergence this comparison catches.

    - {b Invariant I8 (containment)}: decoding every incremental segment
      of the instrumented run and attributing it to its phase (segments
      are positional: one base, then one per iteration in phase order),
      every dynamically dirtied attribute cell must lie inside the
      phase's static may-write region — static may-write ⊇ dynamic
      dirty set. *)

type violation = {
  phase : string;
  site : string;  (** "se-lists", "bt", "et", or "spine" *)
  sid : int;  (** statement id, [-1] when unattributable (VarRef) *)
  detail : string;
}

type outcome = {
  workload : string;
  identical_incremental : bool;
  identical_specialized : bool;
  identical_cross_mode : bool;
      (** the instrumented incremental chain is byte-identical to the
          instrumented specialized chain — the translation-validated
          equivalence of residual and generic code observed end-to-end
          on the real run *)
  violations : violation list;  (** I8 breaches; empty when sound *)
  segments_checked : int;  (** incremental segments decoded for I8 *)
  dirty_cells : int;  (** dynamically dirty attribute cells observed *)
}

val ok : outcome -> bool

val run : ?division:string list -> name:string -> Minic.Ast.program -> outcome
(** Four engine runs of the workload (instrumented/elided ×
    incremental/guarded-specialized) plus the segment decode. *)

val run_inferred : name:string -> Minic.Ast.program -> outcome
(** The same differential checks for an {e annotation-free} run
    ([Engine.analyze ~infer]): four runs of the bare program under
    inferred shapes and inferred elision plans, byte-identity across
    elision and across modes, and I8 over the {!Wheap} — every
    dynamically dirtied block or scalar of the instrumented incremental
    run must lie inside its phase's inferred may-write region.
    [violation.site] carries the global name, [violation.sid] the first
    cell of the offending block. *)

val builtin_workloads : unit -> (string * Minic.Ast.program) list
(** The generator workloads the test suite and CLI default to:
    the image program and the small program of {!Minic.Gen}. *)

val pp : Format.formatter -> outcome -> unit
