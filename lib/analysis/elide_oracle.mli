(** Differential soundness oracle for static write-barrier elision.

    Two dynamic checks per workload, against the static
    {!Staticcheck.Barrier_elide} facts:

    - {b Byte identity}: the workload runs once fully instrumented and
      once with elision ([Engine.analyze ~elide:true]), in both
      incremental and guarded-specialized modes; the two checkpoint
      chains must be byte-identical segment by segment. A wrong elision
      (a barrier removed from a site the phase does write) silently
      drops the site from incremental checkpoints — exactly the
      divergence this comparison catches.

    - {b Invariant I8 (containment)}: decoding every incremental segment
      of the instrumented run and attributing it to its phase (segments
      are positional: one base, then one per iteration in phase order),
      every dynamically dirtied attribute cell must lie inside the
      phase's static may-write region — static may-write ⊇ dynamic
      dirty set. *)

type violation = {
  phase : string;
  site : string;  (** "se-lists", "bt", "et", or "spine" *)
  sid : int;  (** statement id, [-1] when unattributable (VarRef) *)
  detail : string;
}

type outcome = {
  workload : string;
  identical_incremental : bool;
  identical_specialized : bool;
  identical_cross_mode : bool;
      (** the instrumented incremental chain is byte-identical to the
          instrumented specialized chain — the translation-validated
          equivalence of residual and generic code observed end-to-end
          on the real run *)
  violations : violation list;  (** I8 breaches; empty when sound *)
  segments_checked : int;  (** incremental segments decoded for I8 *)
  dirty_cells : int;  (** dynamically dirty attribute cells observed *)
}

val ok : outcome -> bool

val run : ?division:string list -> name:string -> Minic.Ast.program -> outcome
(** Four engine runs of the workload (instrumented/elided ×
    incremental/guarded-specialized) plus the segment decode. *)

val run_inferred : name:string -> Minic.Ast.program -> outcome
(** The same differential checks for an {e annotation-free} run
    ([Engine.analyze ~infer]): four runs of the bare program under
    inferred shapes and inferred elision plans, byte-identity across
    elision and across modes, and I8 over the {!Wheap} — every
    dynamically dirtied block or scalar of the instrumented incremental
    run must lie inside its phase's inferred may-write region.
    [violation.site] carries the global name, [violation.sid] the first
    cell of the offending block. *)

(** {1 Restore-equivalence oracle for minimized checkpoints}

    Minimized chains ([Engine.analyze ~infer ~minimize]) are not
    byte-identical to unminimized ones by construction, so byte identity
    cannot be their soundness check. {!run_live} verifies the semantic
    contract instead, per epoch of the minimized chain:

    - {b restore}: restoring the chain prefix up to that epoch agrees
      with the unminimized restore on every cell the static
      {!Staticcheck.Live} analysis marks live at the epoch's boundary;
    - {b resume}: a run re-driven to the epoch, switched onto the
      minimized restore, and run to completion produces the reference
      return value and final state (compared on live-or-rewritten
      cells — dead unwritten cells may hold stale restored values);
    - {b containment}: every cell the resumed run reads before writing
      lies inside the boundary's live region — the liveness dual of I8
      (static live ⊇ dynamic read-before-write). *)

type live_failure = {
  lf_epoch : int;  (** 0-based incremental epoch; [-1] = whole-run *)
  lf_kind : string;
      (** ["restore"], ["resume-return"], ["resume-state"],
          ["containment"], or ["chain"] *)
  lf_detail : string;
}

type live_outcome = {
  lw_workload : string;
  lw_seeded : bool;  (** ran with [seed_unsound] *)
  lw_epochs : int;  (** incremental epochs checked *)
  lw_live_cells : int;  (** live cells restore-compared, total *)
  lw_resumes : int;  (** resumed executions completed *)
  lw_reads_checked : int;  (** post-switch reads containment-checked *)
  lw_baseline_bytes : int;  (** incremental bytes, unminimized chain *)
  lw_minimized_bytes : int;  (** incremental bytes, minimized chain *)
  lw_failures : live_failure list;  (** empty when equivalent *)
}

val live_ok : live_outcome -> bool

val run_live :
  ?seed_unsound:bool -> name:string -> Minic.Ast.program -> live_outcome
(** Two engine runs (guarded-specialized baseline; minimized with
    live-extended elision), then per epoch: both prefixes restored and
    compared on live cells, one resumed execution, and the containment
    check. [seed_unsound] passes [seed_dead] to the minimized run —
    one deliberately mis-minimized block that {e must} surface as a
    failure here (no static finding fires), proving this oracle gates.
    @raise Engine.Verification_failed as [Engine.analyze ~infer] does. *)

val pp_live : Format.formatter -> live_outcome -> unit

(** {1 Sequential-identity oracle for parallel execution}

    Parallel runs ([Engine.analyze ~parallel]) promise {e byte identity}
    with the sequential chain: domain-local write logs replayed in
    schedule order produce the same barrier stream whenever the units'
    footprints were really disjoint. Identity alone cannot gate, though —
    an overlap that happens to write the same value keeps the chain
    identical while the run is still racy (the [seed_racy] self-test
    demonstrates exactly this). {!run_par} therefore also intersects the
    footprints each domain {e actually observed} (upward-exposed reads
    and all writes, from the {!Dlog}s), pairwise within every fork
    group — the parallel dual of invariant I8. *)

type par_conflict = {
  pc_mode : string;  (** ["incremental"] or ["specialized"] *)
  pc_group : int;  (** fork instance the two units shared *)
  pc_a : string;  (** unit label, e.g. ["smooth[8,20)"] *)
  pc_b : string;
  pc_detail : string;
}

type par_outcome = {
  pw_workload : string;
  pw_domains : int;
  pw_seeded : bool;  (** the schedule actually injected the racy seed *)
  pw_identical_incremental : bool;
  pw_identical_specialized : bool;
  pw_par_units : int;  (** parallel units executed (incremental run) *)
  pw_par_sweeps : int;  (** sweep fan-outs executed (incremental run) *)
  pw_pairs_checked : int;  (** unit pairs disjointness-checked, both modes *)
  pw_conflicts : par_conflict list;  (** empty when the run was race-free *)
}

val par_ok : par_outcome -> bool

val run_par :
  ?seed_racy:bool ->
  ?domains:int ->
  name:string ->
  Minic.Ast.program ->
  par_outcome
(** Four engine runs (sequential vs [~parallel:domains], in incremental
    and guarded-specialized modes; [domains] defaults to 4), chain
    comparison per mode, and the pairwise observed-footprint check over
    both parallel runs' fork groups. [seed_racy] is forwarded to the
    parallel runs; [pw_seeded] reports whether the schedule found
    anything to seed (a workload with no multi-strip sweep cannot be
    seeded). A seeded run must {e not} be [par_ok] — that is the
    self-test that this oracle gates.
    @raise Engine.Verification_failed as [Engine.analyze ~infer] does. *)

val pp_par : Format.formatter -> par_outcome -> unit

val builtin_workloads : unit -> (string * Minic.Ast.program) list
(** The generator workloads the test suite and CLI default to:
    the image program and the small program of {!Minic.Gen}. *)

val pp : Format.formatter -> outcome -> unit
