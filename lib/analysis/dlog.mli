(** Domain-local dirty log: the tracking store a parallel unit (an
    iteration strip or an independent phase) runs against on its own
    OCaml domain.

    A unit never touches the master {!Wheap}: it interprets its program
    over a private copy of the globals ({!snapshot}), while the store
    records every global write in program order and every
    {e read-before-write} (upward-exposed read — a cell the unit wrote
    first is its own, not shared input). After all domains join, the
    master {!replay}s each unit's write log {e in schedule order}
    through the barriered [Wheap.store], so the write-barrier stream,
    the modified flags, and hence the emitted checkpoint segments are
    byte-identical to a sequential run — provided the units' footprints
    were really disjoint, which {!observed_reads}/{!observed_writes}
    let the oracle re-check dynamically (the parallel dual of
    invariant I8). {!mark} entries delimit checkpoint boundaries inside
    one unit's log (one per round of a phase unit). *)

type snapshot
(** Immutable copy of every global's current value. *)

val snapshot_of_wheap : Wheap.t -> snapshot

val snapshot_of_store :
  Minic.Ast.program -> Minic.Interp.global_store -> snapshot
(** Copy the globals of any store (used by the sequential-vs-parallel
    oracle harness, which runs tracking stores, not heaps). *)

type t

val create : snapshot -> t
(** A fresh tracking store seeded from the snapshot; logs start empty.
    Each parallel unit gets its own [t] — the type is not thread-safe,
    it is {e per-domain} by construction. *)

val store : t -> Minic.Interp.global_store

val mark : t -> unit
(** Append a checkpoint delimiter to the write log. *)

val marks : t -> int

val writes : t -> int
(** Logged write entries (marks excluded). *)

val replay :
  Minic.Interp.global_store -> on_mark:(unit -> unit) -> t -> unit
(** Apply the unit's write log, oldest first, through the given store;
    [on_mark] fires at each {!mark} (the master takes a checkpoint
    there). Stops logging nothing — replay does not modify [t]. *)

val observed_reads : t -> (string * Staticcheck.Regions.t) list
(** Upward-exposed reads actually performed, as one region per global
    (scalars read as cell [0]), name-sorted. *)

val observed_writes : t -> (string * Staticcheck.Regions.t) list
