(** The phase driver: runs the three analyses over a program, taking a
    checkpoint at the end of every iteration (paper Section 4.2: "the end
    of an iteration is a natural time at which to take a checkpoint"),
    with one of three checkpointing methods:

    - [Full] — record every object each time (the paper's baseline);
    - [Incremental] — the generic Figure-1 algorithm (one full base
      checkpoint, then modified-only);
    - [Specialized] — phase-specific residual code produced by {!Jspec.Pe}
      from the {!Attrs} shapes, compiled to closures.

    The driver also measures, per iteration, checkpoint construction time
    and (optionally) pure traversal time — re-running the same routine on
    the now-clean heap with a byte-counting sink, which exercises tests and
    dispatch but records nothing (the "traversal time" row of Table 1). *)

open Ickpt_core

type mode = Full | Incremental | Specialized

val pp_mode : Format.formatter -> mode -> unit

type iteration_stat = {
  bytes : int;  (** checkpoint body size *)
  seconds : float;  (** construction time *)
  traversal_seconds : float option;
  guard_seconds : float;
      (** time validating the specialization class before recording
          ([Specialized] mode with guards on; [0.] otherwise — and [0.]
          again when static elision discharges the whole check) *)
  recorded : int;  (** objects recorded (full/incremental modes only) *)
}

type phase_report = {
  phase : string;  (** "sea", "bta" or "eta" *)
  iterations : int;
  stats : iteration_stat list;  (** one per iteration, in order *)
  analysis_seconds : float;  (** time in the analysis itself *)
}

(** What the run checkpointed: the analysis engine's own attribute heap
    (declared specialization classes, the PR-1 pipeline), or — for
    [analyze ~infer] — the workload program's globals materialized as a
    {!Wheap} under fully inferred shapes. *)
type subject =
  | Engine_heap of Attrs.t
  | Workload_heap of { wheap : Wheap.t; auto : Staticcheck.Auto_spec.t }

module Isch = Staticcheck.Interfere.Schedule

type par_unit = {
  pu_phase : string;  (** discovered phase name *)
  pu_label : string;  (** e.g. ["smooth[8,20)"], or ["phase:loop_a"] *)
  pu_group : int;
      (** fork instance: units sharing it ran concurrently — the scope of
          the oracle's pairwise observed-disjointness check *)
  pu_reads : (string * Staticcheck.Regions.t) list;
      (** upward-exposed reads the unit actually performed *)
  pu_writes : (string * Staticcheck.Regions.t) list;
}

type par_report = {
  par_domains : int;
  par_schedule : Isch.t;  (** the static schedule the run executed *)
  par_units : par_unit list;  (** execution order *)
  par_sweeps : int;  (** sweep fan-outs actually executed *)
}

type report = {
  mode : mode;
  n_stmts : int;
  base_bytes : int;  (** size of the initial full checkpoint *)
  phases : phase_report list;
  chain : Chain.t;
  subject : subject;
  env : Minic.Check.env;
  elide_plans : Staticcheck.Barrier_elide.plan list;
      (** the per-phase elision plans the run executed under; empty
          unless [analyze ~elide:true] (declared runs only — inferred
          runs carry their plans in the {!subject}'s
          [Staticcheck.Auto_spec.t]) *)
  par : par_report option;
      (** present iff the run executed under [analyze ~parallel] *)
}

val attrs : report -> Attrs.t
(** The attribute heap of a declared run.
    @raise Invalid_argument on an [~infer] report. *)

val auto_spec : report -> Staticcheck.Auto_spec.t option
(** The inference result of an [~infer] run; [None] otherwise. *)

val wheap : report -> Wheap.t option

exception Preflight_failed of Staticcheck.Spec_lint.diagnostic list

exception Verification_failed of (string * Staticcheck.Tv.verdict) list
(** A phase's residual checkpoint code failed translation validation
    (see {!Staticcheck.Tv.verify}); carries the failing phases with
    their verdicts. *)

val preflight : Attrs.t -> Staticcheck.Spec_lint.diagnostic list
(** Spec-lint every phase's declared specialization class against the
    statically inferred one (see {!Staticcheck.Infer}). Empty when the
    declarations are exactly as tight as the inference. *)

val analyze :
  ?mode:mode ->
  ?division:string list ->
  ?sea_min:int -> ?bta_min:int -> ?eta_min:int ->
  ?measure_traversal:bool ->
  ?guard:bool ->
  ?preflight:bool ->
  ?elide:bool ->
  ?infer:bool ->
  ?minimize:bool ->
  ?seed_dead:bool ->
  ?parallel:int ->
  ?seed_racy:bool ->
  Minic.Ast.program ->
  report
(** Defaults: [mode = Incremental]; [division] = the program's globals
    named in {!Minic.Gen.static_globals}; minimum iteration counts 1 (the
    paper's configuration is [bta_min = 9], [eta_min = 3]);
    [measure_traversal = false]; [guard = false] (when true, every
    specialized checkpoint validates the declarations first and raises
    {!Jspec.Guard.Violated} on a breach); [preflight = false] (when true,
    the declared specialization classes are spec-linted against the
    static inference before any phase runs, raising {!Preflight_failed}
    if an unsound declaration is found, and every phase's residual
    checkpoint code is translation-validated against the generic
    algorithm — through the run's {!Jspec.Spec_cache}, so shared shapes
    verify once — raising {!Verification_failed} on a refuted or
    unsupported shape); [elide = false] (when true, each phase runs
    under its {!Staticcheck.Barrier_elide} plan: setters for sites the
    dirty-region analysis proves the phase never writes are rerouted
    around the write barrier, and the runtime guard is pruned to the
    checks the analysis could not discharge — skipped entirely when none
    remain. Elision never changes checkpoint bytes on any run the static
    analysis covers soundly; {!Elide_oracle} verifies this
    differentially).

    [infer = false]: when true, the program is run {e annotation-free}
    through the automatic pipeline ({!Staticcheck.Auto_spec}): phases
    are discovered from [main]'s top-level structure, the globals become
    the checkpointable {!Wheap}, shapes and elision plans are inferred
    per phase, and the reference interpreter drives the program itself —
    one checkpoint per discovered round. Every synthesized checkpointer
    must pass translation validation first; {!Verification_failed} is
    raised otherwise {e in every mode} (verified-or-refused, never a
    silent generic fallback). [division], [sea_min], [bta_min],
    [eta_min] and [preflight] do not apply to inferred runs and are
    ignored; [elide] uses the inferred per-global
    {!Staticcheck.Barrier_elide.wplan}s; [guard] validates each root
    against its inferred shape before every specialized checkpoint.

    [minimize = false]: when true (inferred [Specialized] runs only —
    [Invalid_argument] otherwise), each checkpoint records under the
    {e minimized} shapes ([Staticcheck.Auto_spec.ph_min_shapes]:
    may-write ∩ live per the {!Staticcheck.Live} analysis, dead dirty
    blocks demoted), guards keep validating the original shapes, [elide]
    switches to the live-extended plans, and every specialized step ends
    with a {!Wheap.clear_modified} sweep so demoted blocks' stale flags
    cannot trip later guards. Minimized segments are {e not}
    byte-identical to unminimized ones by construction; their soundness
    contract is restore-equivalence, verified by
    [Ickpt_analysis.Elide_oracle.run_live]. [seed_dead] (inferred runs)
    is passed to {!Staticcheck.Auto_spec.infer}: one live block is
    deliberately dropped from the minimized set, which the
    restore-equivalence oracle must catch.

    [parallel]: inferred runs only ([Invalid_argument] otherwise, and
    incompatible with [minimize]). Builds an {!Staticcheck.Interfere}
    schedule over [n] domains and executes it: statically disjoint
    iteration strips and phase groups run on their own OCaml domains
    against domain-local {!Dlog} tracking stores, and the master replays
    the write logs in schedule order through the barriered heap — the
    chain is byte-identical to the sequential run whenever the static
    disjointness proof holds, which [Elide_oracle.run_par] re-checks
    dynamically together with observed-footprint disjointness.
    [seed_racy] asks the schedule to widen one strip's executed range by
    one cell after the static checks (see
    {!Staticcheck.Interfere.schedule}) — the self-test that the dynamic
    oracle actually gates parallel runs.

    The chain in the result can be recovered to verify the checkpointed
    analysis state (see the crash-recovery example). *)

val phase_bytes : phase_report -> int

val phase_ckp_seconds : phase_report -> float

val recover_annotations :
  report -> (int * int * int list * int list) list
(** Recover the chain and read back, for each statement (in sid order),
    the tuple [(bt, et, reads, writes)] — used to validate recovery
    end-to-end. @raise Failure when the chain cannot be recovered. *)
