(** Heap-region lattice: sets of integer intervals.

    A region describes which part of one storage location an effect can
    touch — a set of array cells as sorted disjoint intervals, a scalar
    as the singleton cell [0], [Top] for "any cell". This refines
    {!Effects.seg}: where [Effects] widens any computed index to the
    whole array, a region keeps interval bounds derived from loop guards
    ([temp[8..55]] for a blur pass over the interior rows), which is
    what lets the barrier-elision planner prove the complement
    definitely clean.

    Interval bounds use [min_int]/[max_int] as -oo/+oo; the helpers in
    {!section-itv} saturate instead of overflowing. The lattice has the
    usual abstract-interpretation kit: [join], [meet], [leq], and a
    [widen] that guarantees termination of fixpoint iteration by
    collapsing a growing region to its hull and jumping unstable bounds
    to infinity. *)

(** {1:itv Intervals} *)

type itv = { lo : int; hi : int }
(** Inclusive on both ends; invariant [lo <= hi]. *)

val itv : int -> int -> itv
(** @raise Invalid_argument when [lo > hi]. *)

val itv_point : int -> itv

val itv_full : itv
(** [[-oo, +oo]]. *)

val itv_join : itv -> itv -> itv
val itv_meet : itv -> itv -> itv option
(** [None] when the intervals are disjoint. *)

val itv_leq : itv -> itv -> bool
val itv_equal : itv -> itv -> bool

val itv_widen : itv -> itv -> itv
(** [itv_widen a b]: bounds of [b] that escaped [a] jump to infinity. *)

(** Saturating interval arithmetic (sound for the mini-C evaluator:
    division/modulo by a range containing zero returns [itv_full]). *)

val itv_add : itv -> itv -> itv
val itv_sub : itv -> itv -> itv
val itv_neg : itv -> itv
val itv_mul : itv -> itv -> itv
val itv_div : itv -> itv -> itv
val itv_rem : itv -> itv -> itv

val pp_itv : Format.formatter -> itv -> unit

(** {1 Regions} *)

type t = Bot | Segs of itv list  (** sorted, disjoint, non-adjacent *) | Top

val bot : t
val top : t
val point : int -> t
val interval : int -> int -> t
val of_list : int list -> t
val of_itv : itv -> t

val is_bot : t -> bool
val mem : int -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t
val leq : t -> t -> bool
val equal : t -> t -> bool

val widen : t -> t -> t
(** Hull-collapsing widening: any strictly growing chain
    [r0 <= widen r0 r1 <= ...] stabilizes after finitely many steps. *)

val inter : t -> t -> t
(** Exact set intersection — an alias of {!meet}, named for the
    interference analysis: on [Segs] the meet is precise, so an empty
    intersection is a definite no-common-cell fact, not an
    approximation. *)

val disjoint : t -> t -> bool
(** [disjoint a b] iff [inter a b] is {!Bot}: no cell lies in both
    regions. The pairwise precondition for scheduling two footprints on
    separate domains. *)

val clamp : lo:int -> hi:int -> t -> t
(** Meet with [[lo, hi]] — e.g. restrict a store region to the extent of
    the written array. [Top] clamps to the full extent. *)

val complement_in : lo:int -> hi:int -> t -> t
(** The cells of [[lo, hi]] {e not} in the region — the definitely-clean
    residue of a may-write region. *)

val hull : t -> itv option
(** Smallest single interval containing the region; [None] for [Bot]. *)

val pp : Format.formatter -> t -> unit
(** [0..8], [0..8,12], [*] for [Top], [.] for [Bot]. *)

(** {1 Region maps} (one region per global, keyed by
    {!Minic.Check.env} global id) *)

module Gid_map : Map.S with type key = int

type map = t Gid_map.t

val map_empty : map
val map_join : map -> map -> map
val map_widen : map -> map -> map
val map_leq : map -> map -> bool
val map_equal : map -> map -> bool
val map_add : int -> t -> map -> map
(** Join the region into the existing binding. *)

val region_of : map -> int -> t
(** [Bot] when the global is unbound (never written). *)

val pp_map :
  name:(int -> string) ->
  is_array:(int -> bool) ->
  Format.formatter -> map -> unit
(** e.g. [writes {kernel[0..8], temp[8..55], changed}]. *)
