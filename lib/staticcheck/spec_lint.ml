open Jspec

type verdict = Unsound | Imprecise

type diagnostic = {
  verdict : verdict;
  phase : string;
  path : string;
  klass : string;
  reason : string;
}

let verdict_name = function Unsound -> "unsound" | Imprecise -> "imprecise"

(* Same rendering as Guard's violation paths, so lint findings and
   runtime guard reports point at the same places the same way. *)
let render_path rev_slots =
  List.fold_left
    (fun acc slot -> Printf.sprintf "%s.children[%d]" acc slot)
    "root" (List.rev rev_slots)

let child_kind = function
  | Sclass.Null_child -> "Null_child"
  | Sclass.Exact _ -> "Exact"
  | Sclass.Nullable _ -> "Nullable"
  | Sclass.Unknown -> "Unknown"
  | Sclass.Clean_opaque -> "Clean_opaque"

let compare_shapes ~phase ~declared ~inferred =
  let out = ref [] in
  let add rev_path verdict klass fmt =
    Format.kasprintf
      (fun reason ->
        out :=
          { verdict; phase; path = render_path rev_path; klass; reason }
          :: !out)
      fmt
  in
  let rec go rev_path (d : Sclass.shape) (i : Sclass.shape) =
    let kname = d.Sclass.klass.Ickpt_runtime.Model.kname in
    if
      d.Sclass.klass.Ickpt_runtime.Model.kid
      <> i.Sclass.klass.Ickpt_runtime.Model.kid
    then
      add rev_path Unsound kname "declared class %s, inference expects %s"
        kname i.Sclass.klass.Ickpt_runtime.Model.kname
    else begin
      (match (d.Sclass.status, i.Sclass.status) with
      | Sclass.Clean, Sclass.Tracked ->
          add rev_path Unsound kname
            "declared Clean, but the phase may modify it"
      | Sclass.Tracked, Sclass.Clean ->
          add rev_path Imprecise kname
            "declared Tracked, but the phase never modifies it"
      | Sclass.Clean, Sclass.Clean | Sclass.Tracked, Sclass.Tracked -> ());
      Array.iteri
        (fun j dc ->
          let ic = i.Sclass.children.(j) in
          let rev_path = j :: rev_path in
          match (dc, ic) with
          | Sclass.Null_child, Sclass.Null_child
          | Sclass.Unknown, Sclass.Unknown
          | Sclass.Clean_opaque, Sclass.Clean_opaque ->
              ()
          | (Sclass.Exact d' | Sclass.Nullable d'),
            (Sclass.Exact i' | Sclass.Nullable i') ->
              go rev_path d' i'
          | Sclass.Clean_opaque, Sclass.Unknown ->
              add rev_path Unsound kname
                "subtree declared Clean_opaque, but the phase may modify it"
          | (Sclass.Exact d' | Sclass.Nullable d'), Sclass.Clean_opaque ->
              if not (Sclass.all_clean d') then
                add rev_path Imprecise kname
                  "subtree declared modifiable, but the phase never touches \
                   it"
          | Sclass.Unknown, Sclass.Clean_opaque ->
              add rev_path Imprecise kname
                "child declared Unknown, but the whole subtree is provably \
                 clean"
          | Sclass.Unknown, (Sclass.Exact _ | Sclass.Nullable _) ->
              add rev_path Imprecise kname
                "child declared Unknown, but inference knows its shape"
          | dc, ic ->
              add rev_path Unsound kname
                "structural mismatch: declared %s, inference expects %s"
                (child_kind dc) (child_kind ic))
        d.Sclass.children
    end
  in
  go [] declared inferred;
  List.sort
    (fun a b ->
      compare (a.path, a.verdict, a.reason) (b.path, b.verdict, b.reason))
    !out

let check_phase ~klasses phase ~declared =
  let inferred = Infer.derived_shape ~klasses phase in
  compare_shapes ~phase:(Phase_model.name phase) ~declared ~inferred

let has_unsound = List.exists (fun d -> d.verdict = Unsound)

let pp_diagnostic ppf d =
  Format.fprintf ppf "[%s] phase %s, %s (%s): %s" (verdict_name d.verdict)
    d.phase d.path d.klass d.reason

let pp_report ppf = function
  | [] -> Format.pp_print_string ppf "spec-lint: no findings"
  | ds ->
      Format.fprintf ppf "@[<v>spec-lint: %d finding(s)@,%a@]" (List.length ds)
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_diagnostic)
        ds
