open Ickpt_runtime

type mismatch = {
  valuation : Symheap.valuation;
  assignment : (string * bool) list;
  generic : Symexec.outcome;
  residual : Symexec.outcome;
  detail : string;
}

type verdict =
  | Equivalent of { vars : int; paths : int }
  | Mismatch of mismatch
  | Inconclusive of string

(* The first way two traces disagree, if any: a differing, missing or
   extra emit event, a crash on one side, or a final flag left different.
   Event comparison is structural — Symexec already normalizes values
   (everything decidable under the valuation is folded), so structural
   equality of events is value equality on every materialized heap. *)
let trace_divergence sym (g : Symexec.outcome) (r : Symexec.outcome) =
  match (g, r) with
  | Symexec.Crashed m, _ ->
      (* The generic program is total on conforming heaps; a crash means
         the verifier itself is out of its depth. *)
      raise (Symexec.Unverifiable ("generic program crashed: " ^ m))
  | Symexec.Trace _, Symexec.Crashed m ->
      Some (Printf.sprintf "residual code crashes: %s" m)
  | Symexec.Trace gt, Symexec.Trace rt ->
      let rec events i gs rs =
        match (gs, rs) with
        | [], [] -> None
        | ge :: gs', re :: rs' ->
            if ge = re then events (i + 1) gs' rs'
            else
              Some
                (Format.asprintf "event %d: generic %a, residual %a" i
                   Symexec.pp_event ge Symexec.pp_event re)
        | ge :: _, [] ->
            Some
              (Format.asprintf "event %d: generic %a, residual ends" i
                 Symexec.pp_event ge)
        | [], re :: _ ->
            Some
              (Format.asprintf "event %d: generic ends, residual %a" i
                 Symexec.pp_event re)
      in
      let flag_div () =
        let d = ref None in
        Array.iteri
          (fun idx (n : Symheap.node) ->
            if !d = None && gt.Symexec.flags.(idx) <> rt.Symexec.flags.(idx)
            then
              d :=
                Some
                  (Printf.sprintf
                     "final modified(%s): generic %b, residual %b"
                     n.Symheap.path gt.Symexec.flags.(idx)
                     rt.Symexec.flags.(idx)))
          sym.Symheap.nodes;
        !d
      in
      (match events 0 gt.Symexec.events rt.Symexec.events with
      | Some _ as d -> d
      | None -> flag_div ())

let default_max_vars = 16

let check ?program ?(max_vars = default_max_vars) shape stmts =
  match Symheap.of_shape shape with
  | exception Jspec.Sclass.Ill_formed m -> Inconclusive ("ill-formed shape: " ^ m)
  | sym ->
      let vars = Symheap.n_vars sym in
      if vars > max_vars then
        Inconclusive
          (Printf.sprintf
             "%d boolean variables exceed the enumeration budget of %d" vars
             max_vars)
      else (
        let paths = ref 0 in
        let found = ref None in
        Symheap.iter_valuations sym (fun v ->
            if !found = None then begin
              incr paths;
              let g = Symexec.generic_trace ?program sym v in
              let r = Symexec.run ?program sym v stmts in
              match trace_divergence sym g r with
              | None -> ()
              | Some detail ->
                  found :=
                    Some
                      { valuation = Array.copy v;
                        assignment =
                          List.init vars (fun i ->
                              (Symheap.var_name sym i, v.(i)));
                        generic = g;
                        residual = r;
                        detail }
            end);
        match !found with
        | Some m -> Mismatch m
        | None -> Equivalent { vars; paths = !paths })

(* Anything the symbolic domain cannot decide surfaces as Inconclusive,
   never as a verdict in either direction. *)
let check ?program ?max_vars shape stmts =
  match check ?program ?max_vars shape stmts with
  | v -> v
  | exception Symexec.Unverifiable msg -> Inconclusive msg

type replay = {
  generic_bytes : string list;
  interp_bytes : (string list, string) result;
  compiled_bytes : (string list, string) result;
  state_match : bool;
  diverged : bool;
}

let rounds_of run root rounds =
  List.init rounds (fun _ ->
      let d = Ickpt_stream.Out_stream.create () in
      run d root;
      Ickpt_stream.Out_stream.contents d)

let try_rounds run root rounds =
  match rounds_of run root rounds with
  | bytes -> Ok bytes
  | exception e -> Error (Printexc.to_string e)

let replay ?(rounds = 2) shape (result : Jspec.Pe.result) valuation =
  let sym = Symheap.of_shape shape in
  (* Three structurally identical instances (same ids, fields, flags):
     the generic algorithm must not share a heap with the residual runs,
     or its flag resets would mask theirs. *)
  let root_g = Symheap.materialize sym valuation in
  let root_i = Symheap.materialize sym valuation in
  let root_c = Symheap.materialize sym valuation in
  let generic_bytes =
    rounds_of (fun d r -> Ickpt_core.Checkpointer.incremental d r) root_g rounds
  in
  let interp_bytes =
    try_rounds
      (fun d r ->
        Jspec.Interp.run_residual result.Jspec.Pe.body
          ~n_vars:result.Jspec.Pe.n_vars d r)
      root_i rounds
  in
  let compiled =
    try Ok (Jspec.Compile.residual result)
    with e -> Error (Printexc.to_string e)
  in
  let compiled_bytes =
    match compiled with
    | Error m -> Error m
    | Ok runner -> try_rounds (fun d r -> runner d r) root_c rounds
  in
  let state_match =
    (match interp_bytes with
     | Ok _ -> Deep_eq.equal root_g root_i
     | Error _ -> false)
    && (match compiled_bytes with
        | Ok _ -> Deep_eq.equal root_g root_c
        | Error _ -> false)
  in
  let bytes_diverged = function
    | Error _ -> true
    | Ok bs -> bs <> generic_bytes
  in
  { generic_bytes;
    interp_bytes;
    compiled_bytes;
    state_match;
    diverged =
      bytes_diverged interp_bytes
      || bytes_diverged compiled_bytes
      || not state_match }

let pp_assignment ppf assignment =
  if assignment = [] then Format.pp_print_string ppf "(no variables)"
  else
    Format.pp_print_list ~pp_sep:Format.pp_print_space
      (fun ppf (n, b) -> Format.fprintf ppf "%s=%b" n b)
      ppf assignment

let pp_mismatch ppf m =
  Format.fprintf ppf "@[<v 2>counterexample heap:@,%a@,%s@]" pp_assignment
    m.assignment m.detail

let hex s =
  String.concat ""
    (List.of_seq
       (Seq.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (String.to_seq s)))

let pp_rounds ppf = function
  | Error m -> Format.fprintf ppf "error: %s" m
  | Ok bs ->
      Format.pp_print_list ~pp_sep:Format.pp_print_space
        (fun ppf b -> Format.pp_print_string ppf (hex b))
        ppf bs

let pp_replay ppf r =
  Format.fprintf ppf
    "@[<v 2>replay (%s):@,generic:  %a@,interp:   %a@,compiled: %a@,state %s@]"
    (if r.diverged then "diverged" else "agreed")
    pp_rounds (Ok r.generic_bytes) pp_rounds r.interp_bytes pp_rounds
    r.compiled_bytes
    (if r.state_match then "matches" else "differs")

let pp_verdict ppf = function
  | Equivalent { vars; paths } ->
      Format.fprintf ppf
        "equivalent to the generic algorithm on all %d path(s) (%d variable(s))"
        paths vars
  | Mismatch m -> pp_mismatch ppf m
  | Inconclusive msg -> Format.fprintf ppf "inconclusive: %s" msg
