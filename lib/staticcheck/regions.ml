(* Interval-set regions with saturating bound arithmetic. min_int/max_int
   stand for -oo/+oo; every operation keeps that reading consistent so a
   fixpoint over regions can widen bounds to infinity and stay sound. *)

type itv = { lo : int; hi : int }

let neg_inf = min_int
let pos_inf = max_int

let itv lo hi =
  if lo > hi then invalid_arg "Regions.itv: lo > hi";
  { lo; hi }

let itv_point n = { lo = n; hi = n }
let itv_full = { lo = neg_inf; hi = pos_inf }

let itv_join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let itv_meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let itv_leq a b = a.lo >= b.lo && a.hi <= b.hi
let itv_equal a b = a.lo = b.lo && a.hi = b.hi

let itv_widen a b =
  { lo = (if b.lo < a.lo then neg_inf else a.lo);
    hi = (if b.hi > a.hi then pos_inf else a.hi) }

(* Bound sums: infinities absorb, finite overflow saturates. A lower
   bound prefers -oo, an upper bound +oo, so [add_lo]/[add_hi] are used
   on the matching side of an interval. *)
let add_lo x y =
  if x = neg_inf || y = neg_inf then neg_inf
  else if x = pos_inf || y = pos_inf then pos_inf
  else
    let s = x + y in
    if x > 0 && y > 0 && s < 0 then pos_inf
    else if x < 0 && y < 0 && s >= 0 then neg_inf
    else s

let add_hi x y =
  if x = pos_inf || y = pos_inf then pos_inf
  else if x = neg_inf || y = neg_inf then neg_inf
  else
    let s = x + y in
    if x > 0 && y > 0 && s < 0 then pos_inf
    else if x < 0 && y < 0 && s >= 0 then neg_inf
    else s

let itv_add a b = { lo = add_lo a.lo b.lo; hi = add_hi a.hi b.hi }

let neg_bound x =
  if x = neg_inf then pos_inf else if x = pos_inf then neg_inf else -x

let itv_neg a = { lo = neg_bound a.hi; hi = neg_bound a.lo }
let itv_sub a b = itv_add a (itv_neg b)

let sign x = compare x 0

let mul_sat x y =
  if x = 0 || y = 0 then 0
  else if x = neg_inf || x = pos_inf || y = neg_inf || y = pos_inf then
    if sign x * sign y > 0 then pos_inf else neg_inf
  else
    let p = x * y in
    if p / y <> x then if sign x * sign y > 0 then pos_inf else neg_inf
    else p

let corners f a b =
  let cs = [ f a.lo b.lo; f a.lo b.hi; f a.hi b.lo; f a.hi b.hi ] in
  { lo = List.fold_left min (List.hd cs) (List.tl cs);
    hi = List.fold_left max (List.hd cs) (List.tl cs) }

let itv_mul a b = corners mul_sat a b

let itv_div a b =
  if b.lo <= 0 && b.hi >= 0 then itv_full
    (* divisor may be zero: the concrete run would crash, anything is a
       sound post-state *)
  else if a.lo = neg_inf || a.hi = pos_inf || b.lo = neg_inf || b.hi = pos_inf
  then
    (* |x/y| <= |x| for any nonzero integer divisor *)
    let m = max (neg_bound a.lo) a.hi in
    if m = pos_inf then itv_full else { lo = -m; hi = m }
  else corners (fun x y -> x / y) a b

let itv_rem a b =
  if b.lo <= 0 && b.hi >= 0 then itv_full
  else if b.lo = neg_inf || b.hi = pos_inf then
    (* result sign follows the dividend, magnitude bounded by it *)
    { lo = min 0 a.lo; hi = max 0 a.hi }
  else
    let d = max (neg_bound b.lo) b.hi in
    let lo = if a.lo >= 0 then 0 else max (-(d - 1)) a.lo in
    let hi = if a.hi <= 0 then 0 else min (d - 1) a.hi in
    { lo; hi }

let pp_bound ppf x =
  if x = neg_inf then Format.pp_print_string ppf "-oo"
  else if x = pos_inf then Format.pp_print_string ppf "+oo"
  else Format.pp_print_int ppf x

let pp_itv ppf { lo; hi } =
  if lo = hi then pp_bound ppf lo
  else Format.fprintf ppf "%a..%a" pp_bound lo pp_bound hi

(* ---- regions -------------------------------------------------------------- *)

type t = Bot | Segs of itv list | Top

let bot = Bot
let top = Top

(* Beyond this many disjoint segments, collapse to the hull: keeps joins
   cheap and the lattice height finite even without widening. *)
let max_segs = 16

let hull_of_segs = function
  | [] -> None
  | s :: rest ->
      Some (List.fold_left (fun acc i -> itv_join acc i) s rest)

(* Sort and coalesce overlapping or adjacent intervals. *)
let normalize segs =
  match List.sort (fun a b -> compare (a.lo, a.hi) (b.lo, b.hi)) segs with
  | [] -> Bot
  | s :: rest ->
      let merged =
        List.fold_left
          (fun acc i ->
            match acc with
            | [] -> [ i ]
            | cur :: tl ->
                if cur.hi = pos_inf || i.lo <= add_hi cur.hi 1 then
                  itv_join cur i :: tl
                else i :: cur :: tl)
          [ s ] rest
        |> List.rev
      in
      let merged =
        if List.length merged > max_segs then
          match hull_of_segs merged with Some h -> [ h ] | None -> []
        else merged
      in
      (match merged with
      | [ i ] when i.lo = neg_inf && i.hi = pos_inf -> Top
      | segs -> Segs segs)

let of_itv i = normalize [ i ]
let point n = of_itv (itv_point n)
let interval lo hi = of_itv (itv lo hi)
let of_list cells = normalize (List.map itv_point cells)

let is_bot r = r = Bot

let mem n = function
  | Bot -> false
  | Top -> true
  | Segs segs -> List.exists (fun i -> i.lo <= n && n <= i.hi) segs

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Bot, r | r, Bot -> r
  | Segs x, Segs y -> normalize (x @ y)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, r | r, Top -> r
  | Segs x, Segs y ->
      normalize
        (List.concat_map
           (fun i -> List.filter_map (fun j -> itv_meet i j) y)
           x)

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | _, Top -> true
  | Top, _ -> false
  | Segs x, Segs y ->
      List.for_all
        (fun i -> List.exists (fun j -> itv_leq i j) y)
        x

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Segs x, Segs y ->
      List.length x = List.length y && List.for_all2 itv_equal x y
  | _ -> false

let hull = function
  | Bot -> None
  | Top -> Some itv_full
  | Segs segs -> hull_of_segs segs

(* Widening: once a region grows, collapse both sides to their hulls and
   send the unstable bounds to infinity. A chain r, widen r r', ... thus
   reaches a fixed single interval in at most three steps. *)
let widen a b =
  if leq b a then a
  else
    match (a, b) with
    | Bot, r -> r
    | Top, _ | _, Top -> Top
    | _ -> (
        match (hull a, hull b) with
        | Some ha, Some hb -> of_itv (itv_widen ha (itv_join ha hb))
        | _ -> Top)

(* The scheduler-facing names: [inter] is exact set intersection on this
   lattice (meet of Segs is precise, not an over-approximation), so
   [disjoint] is a definite no-common-cell fact — what the interference
   analysis needs to prove before two footprints may run on separate
   domains. *)
let inter = meet

let disjoint a b = is_bot (meet a b)

let clamp ~lo ~hi r = meet r (interval lo hi)

let complement_in ~lo ~hi r =
  match clamp ~lo ~hi r with
  | Bot -> interval lo hi
  | Top -> Bot
  | Segs segs ->
      (* Walk the gaps of the clamped region inside [lo, hi]. *)
      let rec gaps acc cursor = function
        | [] -> if cursor <= hi then itv cursor hi :: acc else acc
        | i :: rest ->
            let acc =
              if cursor < i.lo then itv cursor (i.lo - 1) :: acc else acc
            in
            if i.hi >= hi then acc else gaps acc (i.hi + 1) rest
      in
      normalize (gaps [] lo segs)

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "."
  | Top -> Format.pp_print_string ppf "*"
  | Segs segs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
        pp_itv ppf segs

(* ---- region maps ---------------------------------------------------------- *)

module Gid_map = Map.Make (Int)

type map = t Gid_map.t

let map_empty = Gid_map.empty

let map_merge f = Gid_map.union (fun _ a b -> Some (f a b))

let map_join = map_merge join
let map_widen a b = map_merge widen a b

let region_of m gid =
  match Gid_map.find_opt gid m with Some r -> r | None -> Bot

let map_leq a b = Gid_map.for_all (fun gid r -> leq r (region_of b gid)) a

let map_equal a b =
  Gid_map.for_all (fun gid r -> equal r (region_of b gid)) a
  && Gid_map.for_all (fun gid r -> equal r (region_of a gid)) b

let map_add gid r m =
  if is_bot r then m
  else Gid_map.update gid (function None -> Some r | Some r' -> Some (join r r')) m

let pp_map ~name ~is_array ppf m =
  let bindings = List.filter (fun (_, r) -> not (is_bot r)) (Gid_map.bindings m) in
  if bindings = [] then Format.pp_print_string ppf "{}"
  else
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (gid, r) ->
           if is_array gid then Format.fprintf ppf "%s[%a]" (name gid) pp r
           else Format.pp_print_string ppf (name gid)))
      bindings
