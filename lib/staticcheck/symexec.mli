(** A symbolic interpreter for {!Jspec.Cklang} over a {!Symheap}.

    Under one valuation of the heap family's boolean variables, every
    [modified] test and null test on shape-known structure is decided, so
    control flow is deterministic; what stays symbolic is the {e data}: the
    ids and int fields of the symbolic objects, and everything below an
    opaque summary. Execution therefore yields, per valuation, an {e emit
    trace}: the exact sequence of abstract byte events the code writes —
    {!E_write} of a symbolic integer (an id, a class id, an int field, a
    child id, …) and {!E_generic}, the summary event for "checkpoint this
    opaque subtree with the generic incremental algorithm". Two routines
    that produce the same trace (and the same final flag state) for a
    valuation write byte-identical checkpoints on every concrete heap that
    materializes it, because the varint encoding of a written value is a
    function of the value alone.

    The interpreter executes both sides of the translation-validation
    obligation: the {e generic} program ({!Jspec.Generic_method.program},
    or any program handed to [Pe.specialize ~program]) with its virtual
    [record]/[fold]/[checkpoint] dispatch resolved against the symbolic
    nodes' known classes, and {e residual} code, where [Call_generic]
    fallbacks on shape-known nodes are expanded into the generic program
    itself and on opaque summaries become {!E_generic} events.

    Outcomes distinguish three situations: a {!Trace}; {!Crashed}, a
    definite runtime error on every heap of this valuation (e.g. a null
    dereference in mutated code — itself a divergence from the generic
    algorithm, which never crashes on a conforming heap); and the
    {!Unverifiable} exception, raised when control depends on something
    outside the symbolic domain (e.g. a branch on an opaque subtree's
    flag), which aborts verification rather than risking a wrong verdict. *)

(** Symbolic integers: the abstract byte values of emit events. Equality
    is structural; distinct places denote distinct objects, so distinct
    [I_id]s (and [I_field]s) are distinct concrete values under
    {!Symheap.materialize}. *)
type sint =
  | I_const of int
  | I_id of place  (** the object's unique id *)
  | I_kid of place  (** class id — only opaque places; known nodes fold *)
  | I_nints of place
  | I_nchildren of place
  | I_field of place * sint  (** scalar slot of an object *)
  | I_modified of place  (** residue: an opaque subtree's flag *)
  | I_is_null of place  (** residue: nullness below an opaque summary *)
  | I_not of sint
  | I_cond of sint * sint * sint

(** A symbolic object identity. *)
and place =
  | P_node of int  (** shape-known node, by {!Symheap.node} index *)
  | P_opaque of int * sint list
      (** opaque summary [oidx], plus the child-slot path walked below
          it (empty for the summary object itself) *)

type event =
  | E_write of sint  (** [d.writeInt] of this abstract value *)
  | E_generic of place
      (** generic incremental checkpoint of this opaque subtree *)

type trace = {
  events : event list;  (** in emission order *)
  flags : bool array;  (** final [modified] flag per symbolic node *)
}

type outcome = Trace of trace | Crashed of string

exception Unverifiable of string

val run :
  ?program:Jspec.Cklang.program ->
  ?fuel:int ->
  Symheap.t -> Symheap.valuation -> Jspec.Cklang.stmt list -> outcome
(** Execute [stmts] with variable 0 bound to the symbolic root.
    [program] (default {!Jspec.Generic_method.program}) resolves virtual
    dispatch and [Call_generic] expansion. [fuel] bounds executed
    statements (default 1_000_000); exhaustion raises {!Unverifiable}.
    @raise Unverifiable as described above. *)

val generic_trace :
  ?program:Jspec.Cklang.program ->
  Symheap.t -> Symheap.valuation -> outcome
(** The reference trace: [run] of [program.checkpoint]. *)

val pp_sint : Format.formatter -> sint -> unit
val pp_place : Format.formatter -> place -> unit
val pp_event : Format.formatter -> event -> unit
val pp_events : Format.formatter -> event list -> unit
