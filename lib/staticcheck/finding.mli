(** Unified lint findings: one reportable type for spec-lint diagnostics
    and residual-code findings, with deterministic ordering and a report
    grouped by reason (the same presentation as [Jspec.Guard.pp_report],
    so static and runtime output read alike). Unsound declarations are
    [Error]s — they fail the build; everything else is a [Warning]. *)

type severity = Error | Warning

type t = { severity : severity; scope : string; path : string; reason : string }

val severity_name : severity -> string

val of_spec : Spec_lint.diagnostic -> t
val of_residual : phase:string -> Residual_lint.finding -> t

val sort : t list -> t list
(** Sorted by (scope, path, reason), duplicates removed. *)

val dedup : t list -> t list
(** {!sort}, then collapse findings with identical (scope, path) — the
    rule and the location — to a single entry at the highest severity
    present (reason ties break toward sort order). {!pp_report} applies
    this before grouping. *)

val has_errors : t list -> bool
val count : severity -> t list -> int

val group_by_reason : t list -> (string * t list) list
(** Reasons in alphabetical order, each with its sorted findings. *)

val pp : Format.formatter -> t -> unit
val pp_report : Format.formatter -> t list -> unit

(** {1 JSON}

    The uniform machine-readable envelope shared by every [ickpt_lint]
    subcommand: top-level [tool], [schema_version], [subcommand],
    [errors], [warnings], [findings] and [exit_code] fields, so
    downstream tooling parses one schema whatever the subcommand. *)

val schema_version : int
(** Version of the envelope layout (currently [4]: the version that
    parameterized the [tool] field — [ickpt_serve] shares the envelope —
    and added hash-collision findings; [3] added the [par] subcommand to
    the family; [2] introduced the [schema_version] field itself).
    Consumers should reject envelopes with a higher major version than
    they understand. *)

val json_escape : string -> string

val to_json : t -> string
(** One finding as a JSON object. *)

val envelope :
  ?tool:string ->
  subcommand:string ->
  ?extra:(string * string) list ->
  exit_code:int ->
  t list ->
  string
(** The whole envelope (one line, no trailing newline). [tool] (default
    ["ickpt_lint"]) names the emitting executable; [extra] pairs are
    spliced in as additional top-level fields; each value must already be
    valid JSON. *)
