(** Unified lint findings: one reportable type for spec-lint diagnostics
    and residual-code findings, with deterministic ordering and a report
    grouped by reason (the same presentation as [Jspec.Guard.pp_report],
    so static and runtime output read alike). Unsound declarations are
    [Error]s — they fail the build; everything else is a [Warning]. *)

type severity = Error | Warning

type t = { severity : severity; scope : string; path : string; reason : string }

val severity_name : severity -> string

val of_spec : Spec_lint.diagnostic -> t
val of_residual : phase:string -> Residual_lint.finding -> t

val sort : t list -> t list
(** Sorted by (scope, path, reason), duplicates removed. *)

val dedup : t list -> t list
(** {!sort}, then collapse findings with identical (scope, path) — the
    rule and the location — to a single entry at the highest severity
    present (reason ties break toward sort order). {!pp_report} applies
    this before grouping. *)

val has_errors : t list -> bool
val count : severity -> t list -> int

val group_by_reason : t list -> (string * t list) list
(** Reasons in alphabetical order, each with its sorted findings. *)

val pp : Format.formatter -> t -> unit
val pp_report : Format.formatter -> t list -> unit
