open Minic.Ast

module Int_set = Set.Make (Int)
module Gid_map = Map.Make (Int)

type seg = Cells of Int_set.t | Whole

(* Beyond this many distinct constant cells a segment is as good as the
   whole array: widen so the fixpoint lattice stays finite-height. *)
let max_cells = 64

let seg_join a b =
  match (a, b) with
  | Whole, _ | _, Whole -> Whole
  | Cells x, Cells y ->
      let u = Int_set.union x y in
      if Int_set.cardinal u > max_cells then Whole else Cells u

let seg_equal a b =
  match (a, b) with
  | Whole, Whole -> true
  | Cells x, Cells y -> Int_set.equal x y
  | Whole, Cells _ | Cells _, Whole -> false

type t = { reads : seg Gid_map.t; writes : seg Gid_map.t }

let empty = { reads = Gid_map.empty; writes = Gid_map.empty }

let join_map = Gid_map.union (fun _ a b -> Some (seg_join a b))

let join a b =
  { reads = join_map a.reads b.reads; writes = join_map a.writes b.writes }

let equal a b =
  Gid_map.equal seg_equal a.reads b.reads
  && Gid_map.equal seg_equal a.writes b.writes

let add_read t gid seg = { t with reads = join_map t.reads (Gid_map.singleton gid seg) }
let add_write t gid seg = { t with writes = join_map t.writes (Gid_map.singleton gid seg) }

(* The segment an index expression can denote: only literal indices stay
   precise, anything computed may reach the whole array. *)
let seg_of_index = function E_int k -> Cells (Int_set.singleton k) | _ -> Whole

type summaries = {
  env : Minic.Check.env;
  table : (string, t) Hashtbl.t;
}

let of_func s fname =
  match Hashtbl.find_opt s.table fname with Some e -> e | None -> empty

let compute (env : Minic.Check.env) =
  let p = env.Minic.Check.program in
  let gid x = Minic.Check.global_id env x in
  let table = Hashtbl.create 16 in
  let summary_of f =
    match Hashtbl.find_opt table f with Some e -> e | None -> empty
  in
  let rec expr_eff e =
    match e with
    | E_int _ -> empty
    | E_var x -> (
        match gid x with Some id -> add_read empty id Whole | None -> empty)
    | E_index (a, i) -> (
        let eff = expr_eff i in
        match gid a with
        | Some id -> add_read eff id (seg_of_index i)
        | None -> eff)
    | E_unop (_, e) -> expr_eff e
    | E_binop (_, l, r) -> join (expr_eff l) (expr_eff r)
    | E_call (g, args) ->
        List.fold_left (fun acc a -> join acc (expr_eff a)) (summary_of g) args
  in
  let rec stmt_eff s =
    match s.node with
    | S_assign (x, e) -> (
        let eff = expr_eff e in
        match gid x with Some id -> add_write eff id Whole | None -> eff)
    | S_store (a, i, e) -> (
        let eff = join (expr_eff i) (expr_eff e) in
        match gid a with
        | Some id -> add_write eff id (seg_of_index i)
        | None -> eff)
    | S_expr e -> expr_eff e
    | S_return None -> empty
    | S_return (Some e) -> expr_eff e
    | S_if (c, t, f) ->
        List.fold_left (fun acc s -> join acc (stmt_eff s)) (expr_eff c) (t @ f)
    | S_while (c, b) ->
        List.fold_left (fun acc s -> join acc (stmt_eff s)) (expr_eff c) b
  in
  let round () =
    List.fold_left
      (fun changed f ->
        let eff =
          List.fold_left (fun acc s -> join acc (stmt_eff s)) empty f.f_body
        in
        if equal eff (summary_of f.f_name) then changed
        else begin
          Hashtbl.replace table f.f_name eff;
          true
        end)
      false p.funcs
  in
  let rec fix () = if round () then fix () in
  fix ();
  { env; table }

let all s =
  List.map
    (fun f -> (f.f_name, of_func s f.f_name))
    s.env.Minic.Check.program.funcs

let reads_name env t name =
  match Minic.Check.global_id env name with
  | Some gid -> Gid_map.mem gid t.reads
  | None -> false

let writes_name env t name =
  match Minic.Check.global_id env name with
  | Some gid -> Gid_map.mem gid t.writes
  | None -> false

let write_seg env t name =
  match Minic.Check.global_id env name with
  | None -> None
  | Some gid -> Gid_map.find_opt gid t.writes

let global_name (env : Minic.Check.env) gid =
  match List.find_opt (fun (_, i) -> i = gid) env.Minic.Check.global_ids with
  | Some (name, _) -> name
  | None -> Printf.sprintf "g%d" gid

(* Render contiguous cell runs as lo..hi, e.g. kernel[0..8]. *)
let pp_cells ppf cells =
  let rec runs acc = function
    | [] -> List.rev acc
    | x :: rest ->
        let rec extend hi = function
          | y :: tail when y = hi + 1 -> extend y tail
          | tail -> (hi, tail)
        in
        let hi, tail = extend x rest in
        runs ((x, hi) :: acc) tail
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    (fun ppf (lo, hi) ->
      if lo = hi then Format.pp_print_int ppf lo
      else Format.fprintf ppf "%d..%d" lo hi)
    ppf
    (runs [] (Int_set.elements cells))

let pp_access env ppf (gid, seg) =
  let name = global_name env gid in
  let is_array = Minic.Check.is_global_array env name in
  match (seg, is_array) with
  | _, false -> Format.pp_print_string ppf name
  | Whole, true -> Format.fprintf ppf "%s[*]" name
  | Cells cells, true -> Format.fprintf ppf "%s[%a]" name pp_cells cells

let pp_side env what ppf map =
  if Gid_map.is_empty map then Format.fprintf ppf "%s {}" what
  else
    Format.fprintf ppf "%s {%a}" what
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_access env))
      (Gid_map.bindings map)

let pp env ppf t =
  Format.fprintf ppf "@[<h>%a %a@]" (pp_side env "reads") t.reads
    (pp_side env "writes") t.writes
