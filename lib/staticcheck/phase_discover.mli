(** Checkpoint-phase discovery for annotation-free programs.

    The manual pipeline (PRs 1–5) knows its phases because the analysis
    engine hard-codes them (sea/bta/eta). For a bare mini-C program the
    rounds have to be {e discovered}: this pass partitions [main]'s
    top-level statements into phases — every top-level [while] loop is a
    {!Round} phase whose body executes once per checkpoint round, and each
    maximal run of other statements between loops is a single-round
    {!Setup} phase.

    For each phase it also synthesizes the {e one-round analysis program}
    that [Effects] and [Dirty_ai] run on: the original globals and
    functions, [main]'s locals lifted to zero-initialized globals (renamed
    only on collision; the driver havocs them instead of trusting the
    fake initializer), and a fresh nullary [main] whose body is exactly
    one round — loop-guard evaluation prepended for [Round] phases so
    guard effects are attributed to the round, [return]s stripped so the
    may-analysis covers statements an early return could skip. *)

type kind =
  | Setup  (** runs once: statements between loops *)
  | Round of { cond : Minic.Ast.expr }
      (** one checkpoint per iteration of this top-level loop *)

type phase = {
  p_index : int;  (** position in [main], 0-based *)
  p_name : string;  (** e.g. ["setup:set_kernel"], ["loop:smooth+commit"] *)
  p_kind : kind;
  p_body : Minic.Ast.block;
      (** the original statements — what the driver executes (in [main]'s
          scope, locals intact) *)
  p_calls : string list;  (** functions called, first-use order *)
  p_program : Minic.Ast.program;
      (** the one-round analysis program (checks clean; numbered) *)
  p_lifted : string list;
      (** globals of [p_program] standing in for [main]'s locals *)
}

val discover : Minic.Check.env -> phase list
(** Never empty: a [main] with no statements yields one empty [Setup]
    phase. Phase names are unique (duplicates get a [#k] suffix). *)

val is_round : phase -> bool

val pp : Format.formatter -> phase -> unit
