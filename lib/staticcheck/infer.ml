type derivation = {
  phase : Phase_model.phase;
  effects : Effects.t;
  writes_lists : bool;
  writes_bt : bool;
  writes_et : bool;
}

let derive phase =
  let env = Phase_model.env phase in
  let summaries = Effects.compute env in
  let eff = Effects.of_func summaries "main" in
  { phase;
    effects = eff;
    writes_lists =
      Effects.writes_name env eff Phase_model.g_se_reads
      || Effects.writes_name env eff Phase_model.g_se_writes;
    writes_bt = Effects.writes_name env eff Phase_model.g_bt;
    writes_et = Effects.writes_name env eff Phase_model.g_et }

(* The attribute tree's spine (Attributes, BTEntry, ETEntry) is always
   Clean: no phase API can repoint it, and no model global maps to it.
   The leaves follow the inferred write effects. Cf. Attrs.attr_shape and
   Decls.shape_of_dirty, which build the same tree from declarations and
   from observed traces respectively. *)
let shape ~klasses d =
  let open Jspec.Sclass in
  let st written = if written then Tracked else Clean in
  match klasses with
  | [ k_attr; k_se; _k_varref; k_btentry; k_bt; k_etentry; k_et ] ->
      let lists = if d.writes_lists then Unknown else Clean_opaque in
      shape ~status:Clean k_attr
        [| Exact (shape ~status:(st d.writes_lists) k_se [| lists; lists |]);
           Exact
             (shape ~status:Clean k_btentry
                [| Exact (leaf ~status:(st d.writes_bt) k_bt) |]);
           Exact
             (shape ~status:Clean k_etentry
                [| Exact (leaf ~status:(st d.writes_et) k_et) |]) |]
  | _ -> invalid_arg "Infer.shape: expected the seven Attrs klasses"

let derived_shape ~klasses phase = shape ~klasses (derive phase)

let pp_derivation ppf d =
  let env = Phase_model.env d.phase in
  Format.fprintf ppf "@[<v 2>%s:@,effect: %a@,se lists: %s, bt: %s, et: %s@]"
    (Phase_model.name d.phase)
    (Effects.pp env) d.effects
    (if d.writes_lists then "written" else "clean")
    (if d.writes_bt then "written" else "clean")
    (if d.writes_et then "written" else "clean")
