open Jspec.Cklang

type finding = { path : string; reason : string }

(* ---- what a subtree can invalidate -------------------------------------- *)

(* Facts track the known value of [Modified p] for residual object paths
   p (pure expressions, so structural equality is sound — cf. Pe.facts).
   A [Reset_modified p] kills the fact for p; any call may reset flags
   anywhere (the generic routine does), killing everything. *)
type kill = All | Paths of expr list

let kill_none = Paths []

let kill_union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Paths x, Paths y -> Paths (x @ y)

let rec killed stmts = List.fold_left (fun k s -> kill_union k (killed_stmt s)) kill_none stmts

and killed_stmt = function
  | Write _ -> kill_none
  | Reset_modified p -> Paths [ p ]
  | Invoke_virtual _ | Call _ | Call_generic _ -> All
  | If (_, t, f) -> kill_union (killed t) (killed f)
  | Let (_, _, body) | For (_, _, _, body) -> killed body

let apply_kill k facts =
  match k with
  | All -> []
  | Paths ps -> List.filter (fun (p, _) -> not (List.mem p ps)) facts

(* ---- condition reasoning ------------------------------------------------ *)

let rec fact_of cond value =
  match cond with
  | Modified p -> Some (p, value)
  | Not e -> fact_of e (not value)
  | _ -> None

let with_fact facts cond value =
  match fact_of cond value with
  | None -> facts
  | Some (p, v) -> (p, v) :: List.remove_assoc p facts

let rec known facts = function
  | Const n -> Some (n <> 0)
  | Modified p -> List.assoc_opt p facts
  | Not e -> Option.map not (known facts e)
  | _ -> None

(* ---- variable uses ------------------------------------------------------ *)

let rec expr_uses v = function
  | Const _ -> false
  | Var w -> w = v
  | Int_field (a, b) | Child (a, b) -> expr_uses v a || expr_uses v b
  | Id_of e | Kid_of e | Modified e | Is_null e | Not e | N_ints e
  | N_children e ->
      expr_uses v e
  | Cond (a, b, c) -> expr_uses v a || expr_uses v b || expr_uses v c

let rec stmts_use v = List.exists (stmt_uses v)

and stmt_uses v = function
  | Write e | Reset_modified e | Invoke_virtual (_, e) | Call (_, e)
  | Call_generic e ->
      expr_uses v e
  | If (c, t, f) -> expr_uses v c || stmts_use v t || stmts_use v f
  | Let (w, e, body) -> expr_uses v e || (w <> v && stmts_use v body)
  | For (w, lo, hi, body) ->
      expr_uses v lo || expr_uses v hi || (w <> v && stmts_use v body)

(* ---- the lint ----------------------------------------------------------- *)

let lint ?(root = "body") stmts =
  let out = ref [] in
  let add path fmt =
    Format.kasprintf (fun reason -> out := { path; reason } :: !out) fmt
  in
  let rec seq path facts stmts =
    let _, facts =
      List.fold_left
        (fun (idx, facts) s ->
          (idx + 1, stmt (Printf.sprintf "%s[%d]" path idx) facts s))
        (0, facts) stmts
    in
    facts
  and stmt path facts s =
    match s with
    | Write _ -> facts
    | Reset_modified p ->
        if known facts (Modified p) = Some false then
          add path "redundant reset: modified flag already known clear";
        (p, false) :: List.remove_assoc p facts
    | If (c, t, f) ->
        (match c with
        | Const _ -> add path "constant condition: a branch is unreachable"
        | _ -> (
            match known facts c with
            | Some b ->
                add path "redundant modified-flag test: condition is always %b"
                  b
            | None -> ()));
        if t = [] && f = [] then add path "dead test: both branches empty";
        ignore (seq (path ^ ".then") (with_fact facts c true) t);
        ignore (seq (path ^ ".else") (with_fact facts c false) f);
        apply_kill (kill_union (killed t) (killed f)) facts
    | Let (v, _, body) ->
        if body = [] then add path "dead store: empty let body";
        if body <> [] && not (stmts_use v body) then
          add path "dead store: binding v%d is never used" v;
        (* The body runs exactly once, but facts on the bound variable
           must not escape its scope; killing the body's resets keeps the
           rest conservative. *)
        ignore (seq (path ^ ".let") facts body);
        apply_kill (killed body) facts
    | For (v, lo, hi, body) ->
        (match (lo, hi) with
        | Const a, Const b when a >= b ->
            add path "unreachable loop: constant range [%d, %d)" a b
        | _ -> ());
        if body = [] then add path "dead store: empty loop body";
        ignore (seq (path ^ ".for") (apply_kill (killed body) facts) body);
        ignore v;
        apply_kill (killed body) facts
    | Invoke_virtual _ | Call _ | Call_generic _ -> []
  in
  ignore (seq root [] stmts);
  List.sort
    (fun a b -> compare (a.path, a.reason) (b.path, b.reason))
    !out

let lint_result (r : Jspec.Pe.result) = lint ~root:"checkpoint" r.Jspec.Pe.body

let pp_finding ppf f = Format.fprintf ppf "%s: %s" f.path f.reason

let pp_report ppf = function
  | [] -> Format.pp_print_string ppf "residual-lint: clean"
  | fs ->
      Format.fprintf ppf "@[<v>residual-lint: %d finding(s)@,%a@]"
        (List.length fs)
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_finding)
        fs
