open Ickpt_runtime

type slot =
  | S_null
  | S_node of int
  | S_maybe of int * int
  | S_opaque of int

type node = {
  idx : int;
  shape : Jspec.Sclass.shape;
  path : string;
  flag_var : int option;
  slots : slot array;
}

type opaque = {
  oidx : int;
  opath : string;
  oclean : bool;
  present_var : int;
}

type var_kind = Flag of int | Present of int | Opaque_present of int

type t = {
  shape : Jspec.Sclass.shape;
  nodes : node array;
  opaques : opaque array;
  vars : var_kind array;
}

(* Preorder construction. Node indices, opaque indices and variable
   indices are all allocated in one left-to-right pass, so structurally
   equal shapes always yield the same symbolic heap. *)
let of_shape shape =
  Jspec.Sclass.validate shape;
  let nodes = ref [] and opaques = ref [] in
  let vars = Hashtbl.create 16 in
  let n_nodes = ref 0 and n_opaques = ref 0 and n_vars = ref 0 in
  let fresh_var kind =
    let v = !n_vars in
    incr n_vars;
    Hashtbl.replace vars v kind;
    v
  in
  let fresh_opaque ~path ~clean =
    let oidx = !n_opaques in
    incr n_opaques;
    let present_var = fresh_var (Opaque_present oidx) in
    opaques := { oidx; opath = path; oclean = clean; present_var } :: !opaques;
    oidx
  in
  let rec build path (s : Jspec.Sclass.shape) =
    let idx = !n_nodes in
    incr n_nodes;
    let flag_var =
      match s.Jspec.Sclass.status with
      | Jspec.Sclass.Tracked -> Some (fresh_var (Flag idx))
      | Jspec.Sclass.Clean -> None
    in
    let slots =
      Array.mapi
        (fun i child ->
          let cpath = Printf.sprintf "%s.children[%d]" path i in
          match child with
          | Jspec.Sclass.Null_child -> S_null
          | Jspec.Sclass.Exact cs -> S_node (build cpath cs).idx
          | Jspec.Sclass.Nullable cs ->
              (* The presence variable is allocated before the subtree's
                 own variables, mirroring the preorder of the nodes; its
                 node index is only known once the subtree is built. *)
              let v = fresh_var (Present (-1)) in
              let cn = build cpath cs in
              Hashtbl.replace vars v (Present cn.idx);
              S_maybe (cn.idx, v)
          | Jspec.Sclass.Unknown -> S_opaque (fresh_opaque ~path:cpath ~clean:false)
          | Jspec.Sclass.Clean_opaque ->
              S_opaque (fresh_opaque ~path:cpath ~clean:true))
        s.Jspec.Sclass.children
    in
    let node = { idx; shape = s; path; flag_var; slots } in
    nodes := node :: !nodes;
    node
  in
  let _root = build "root" shape in
  let by_idx n cmp l =
    let a = Array.make n (List.hd l) in
    List.iter (fun x -> a.(cmp x) <- x) l;
    a
  in
  { shape;
    nodes = by_idx !n_nodes (fun n -> n.idx) !nodes;
    opaques =
      (if !n_opaques = 0 then [||]
       else by_idx !n_opaques (fun o -> o.oidx) !opaques);
    vars = Array.init !n_vars (Hashtbl.find vars) }

let n_vars t = Array.length t.vars

let var_name t v =
  match t.vars.(v) with
  | Flag idx -> Printf.sprintf "modified(%s)" t.nodes.(idx).path
  | Present idx -> Printf.sprintf "present(%s)" t.nodes.(idx).path
  | Opaque_present oidx -> Printf.sprintf "present(%s)" t.opaques.(oidx).opath

type valuation = bool array

let iter_valuations t f =
  let n = n_vars t in
  if n > Sys.int_size - 2 then invalid_arg "Symheap.iter_valuations: too many variables";
  let v = Array.make n false in
  for bits = 0 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      v.(i) <- bits land (1 lsl i) <> 0
    done;
    f v
  done

let pp_valuation t ppf (v : valuation) =
  if Array.length v = 0 then Format.pp_print_string ppf "(no variables)"
  else
    Format.pp_print_list ~pp_sep:Format.pp_print_space
      (fun ppf i ->
        Format.fprintf ppf "%s=%b" (var_name t i) v.(i))
      ppf
      (List.init (Array.length v) Fun.id)

(* Field fills: >= 10_000, distinct per (node, slot), and disjoint from
   the id range (ids start at 101) and from opaque fills (>= 5_000_000). *)
let field_value ~node_idx ~slot = 10_000 + (node_idx * 1000) + (slot * 7)

let opaque_field_value ~oidx ~slot = 5_000_000 + (oidx * 1000) + (slot * 7)

let materialize ?heap ?(first_id = 101) t (v : valuation) =
  let next_id = ref first_id in
  let alloc klass ~modified =
    let id = !next_id in
    incr next_id;
    match heap with
    | Some h -> Heap.alloc_with_id h klass ~id ~modified
    | None ->
        { Model.info = { Model.id; modified };
          klass;
          ints = Array.make klass.Model.n_ints 0;
          children = Array.make klass.Model.n_children None }
  in
  let root_klass = t.shape.Jspec.Sclass.klass in
  let rec build (n : node) =
    let modified =
      match n.flag_var with None -> false | Some fv -> v.(fv)
    in
    let o = alloc n.shape.Jspec.Sclass.klass ~modified in
    for slot = 0 to Array.length o.Model.ints - 1 do
      o.Model.ints.(slot) <- field_value ~node_idx:n.idx ~slot
    done;
    Array.iteri
      (fun slot s ->
        match s with
        | S_null -> ()
        | S_node cidx -> o.Model.children.(slot) <- Some (build t.nodes.(cidx))
        | S_maybe (cidx, pv) ->
            if v.(pv) then o.Model.children.(slot) <- Some (build t.nodes.(cidx))
        | S_opaque oidx ->
            let op = t.opaques.(oidx) in
            if v.(op.present_var) then begin
              (* An opaque summary materializes as a childless instance of
                 the root's class: unknown subtrees are dirty (so a missing
                 generic fallback shows up in the bytes), clean-opaque ones
                 honour their declaration. *)
              let c = alloc root_klass ~modified:(not op.oclean) in
              for cslot = 0 to Array.length c.Model.ints - 1 do
                c.Model.ints.(cslot) <- opaque_field_value ~oidx ~slot:cslot
              done;
              o.Model.children.(slot) <- Some c
            end)
      n.slots;
    o
  in
  build t.nodes.(0)
