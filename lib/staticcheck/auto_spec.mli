(** Fully automatic checkpoint inference: the end-to-end pipeline that
    takes a bare mini-C program — {e no} [Sclass] declarations — and
    derives everything the specialized checkpointing runtime needs:

    {v
    program ──Phase_discover──► checkpoint rounds
            ──Shape_infer─────► heap encoding (roots, klasses)
    per phase:
            ──Effects/Dirty_ai► may-write regions (entry havoc converged)
            ──Shape_infer─────► inferred Sclass.shape per root
            ──Jspec.Pe────────► residual checkpointer (via Spec_cache)
            ──Tv.verify───────► verdict; non-Verified = hard Error
            ──Barrier_elide───► per-global elision plan
    v}

    The contract is {e verified specialized checkpointer or refusal}: a
    refuted (or unsupported) translation validation is an [Error] finding
    — callers must not fall back to the generic algorithm silently.

    Soundness of the per-phase regions: a phase's one-round program is
    analyzed with its entry state {e havoced} — [main]'s lifted locals,
    every global an earlier phase may write, and (for round phases, to a
    fixpoint) every global the phase itself may write, since iteration
    [k]'s writes are iteration [k+1]'s inputs. Invariant I8 (static
    may-write ⊇ dynamic dirty set) is re-checked dynamically by
    [Ickpt_analysis.Elide_oracle]. *)

open Jspec

type phase_result = {
  ph : Phase_discover.phase;
  ph_env : Minic.Check.env;  (** env of the one-round analysis program *)
  ph_havoc : string list;  (** converged entry havoc *)
  ph_effects : Effects.t;  (** transitive read/write effects of one round *)
  ph_dirty : Dirty_ai.result;
  ph_regions : (string * Regions.t) list;
      (** clamped may-write region per original global, declaration order *)
  ph_shapes : (string * Sclass.shape) list;  (** inferred, same order *)
  ph_verdicts : (string * Tv.verdict) list;  (** TV verdict per root *)
  ph_wplan : Barrier_elide.wplan;
  ph_live : (string * Regions.t) list;
      (** regions live into the rest of the program at this phase's
          checkpoint boundary ({!Live.boundary}), declaration order *)
  ph_min_regions : (string * Regions.t) list;
      (** the minimized checkpoint set: may-write ∩ live per global —
          what a checkpoint at this boundary must actually preserve *)
  ph_min_shapes : (string * Sclass.shape) list;
      (** shapes over [ph_min_regions]: dead dirty blocks demoted to
          [Clean]/[Clean_opaque], so the specialized checkpointer skips
          them — used by [Engine.analyze ~minimize] for recording only
          (guards keep validating [ph_shapes], which the dynamic heap
          conforms to) *)
  ph_min_verdicts : (string * Tv.verdict) list;
      (** TV verdicts of the minimized shapes — same verified-or-refusal
          contract as [ph_verdicts] *)
  ph_live_wplan : Barrier_elide.wplan;
      (** live-extended elision ({!Barrier_elide.workload_plan_live});
          only sound for minimized runs *)
}

type t = {
  a_env : Minic.Check.env;
  a_encoding : Shape_infer.encoding;
  a_phases : phase_result list;
  a_live : Live.t;  (** the whole-program liveness run behind [ph_live] *)
  a_cache : Spec_cache.t;
      (** holds the compiled runners and their (boolean) verdicts — the
          engine's specialized mode draws from it *)
  a_findings : Finding.t list;
}

val infer :
  ?seed_unsound:bool -> ?seed_dead:bool -> ?max_vars:int ->
  ?cache:Spec_cache.t -> Minic.Check.env -> t
(** Run the pipeline. [seed_unsound] flips the first [Clean] node of the
    first eligible inferred shape to [Tracked] {e in the copy handed to
    the validator only} — the residual code is still built from the true
    shape, so TV must refute the pair; the run then carries an [Error]
    finding. This is the self-test that the verification gate actually
    gates (cf. [Tv.mutants] for the miscompile direction).

    [seed_dead] is the same self-test for the {e liveness} gate: the
    first non-empty minimized region loses one live block (scalars lose
    the whole cell), so the minimized checkpointer skips state a later
    read needs. Static findings stay silent — only the dynamic
    restore-equivalence oracle ([Elide_oracle.run_live]) can catch it,
    which is exactly what [ickpt_lint live --seed-unsound] asserts.
    [max_vars] is passed through to {!Tv.verify}. *)

val ok : t -> bool
(** No [Error] findings: every synthesized checkpointer verified. *)

val findings : t -> Finding.t list

val verified_count : t -> int
(** Number of (phase, root) pairs whose verdict is [Verified]. *)

val pp : Format.formatter -> t -> unit
(** The full inference report: encoding, then per phase its effects,
    shapes with verdicts, and elision plan. *)
