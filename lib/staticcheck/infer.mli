(** Derivation of specialization classes from static effect analysis.

    Running {!Effects} over a {!Phase_model} yields, per phase, which
    attribute-tree leaves the phase can possibly modify; {!shape} turns
    that into the [Sclass.shape] the phase *should* declare. For the
    paper's three phases this reproduces the hand-written shapes in
    [Ickpt_analysis.Attrs] — but derived, not trusted. *)

type derivation = {
  phase : Phase_model.phase;
  effects : Effects.t;  (** transitive effect of one phase run *)
  writes_lists : bool;  (** the [SEEntry] list slots may change *)
  writes_bt : bool;
  writes_et : bool;
}

val derive : Phase_model.phase -> derivation

val shape :
  klasses:Ickpt_runtime.Model.klass list -> derivation -> Jspec.Sclass.shape
(** Build the derived specialization class over the seven Attrs klasses
    (in [Attrs.klasses] order: Attributes, SEEntry, VarRef, BTEntry, BT,
    ETEntry, ET).
    @raise Invalid_argument on any other klass list. *)

val derived_shape :
  klasses:Ickpt_runtime.Model.klass list ->
  Phase_model.phase -> Jspec.Sclass.shape

val pp_derivation : Format.formatter -> derivation -> unit
