(** Interprocedural dirty-region analysis: an abstract interpretation of
    mini-C that computes, per function and per program point, a may-write
    set over heap regions ({!Regions.t} per global — array segments as
    interval sets, scalars as the cell [0]).

    This refines {!Effects} (which only distinguishes literal-index cell
    sets from whole arrays): scalar values are tracked as intervals, loop
    bodies are iterated to a local fixpoint with widening and re-entered
    through the loop guard (so a store [temp[p] = ...] under
    [while (p < npixels - width)] lands in [temp[8..55]], not
    [temp[*]]), branches with statically decided conditions contribute
    nothing from the dead arm, and functions that are never called
    contribute nothing at all. Call effects are summarised per function
    — transitive, context-insensitive, with parameter intervals joined
    over all call sites — layered over the same global numbering the
    {!Effects} lattice uses.

    Soundness contract (invariant I8): for any terminating concrete run,
    every global cell actually written is contained in {!main_writes};
    the complement ({!clean_cells}) is definitely clean. The runtime
    {!Ickpt_analysis.Elide_oracle} re-verifies this dynamically. *)

type result

val analyze :
  ?havoc:string list -> ?widen_delay:int -> Minic.Check.env -> result
(** Converge the global fixpoint (function summaries, parameter and
    return intervals, global value approximations) over the checked
    program. Terminates on any input: interval growth is widened after
    [widen_delay] plain-join rounds (default 3 — two precise rounds
    cover the common init → first-update pattern). [widen_delay:0]
    widens from the first unstable round: maximally imprecise, still
    terminating — the termination property the test suite checks.

    [havoc] names globals to treat as arbitrary external input (value
    {!Regions.itv_full} from the start) instead of their declared
    initializers. mini-C programs are closed, so the default is sound
    for real workloads; the {!Phase_model} programs encode their input
    in zero-initialized tables ({!Phase_model.input_globals}) and must
    be analyzed with those havoced. *)

val env : result -> Minic.Check.env

val rounds : result -> int
(** Fixpoint rounds taken — exposed for termination tests. *)

val func_writes : result -> string -> Regions.map
(** Transitive may-write regions of one call to the function; empty for
    an unknown or never-called function. *)

val main_writes : result -> Regions.map
(** The whole program's may-write regions: [func_writes r "main"]. *)

val stmt_writes : result -> int -> Regions.map
(** May-write regions of the statement with the given sid, subtree and
    calls included — the per-program-point view. [Regions.map_empty] for
    statements proven unreachable (dead branches, uncalled functions). *)

val write_region : result -> string -> Regions.t
(** [main_writes] restricted to one global, by name, clamped to the
    global's extent; {!Regions.Bot} when provably never written. *)

val definitely_clean : result -> string -> bool
(** The program can never write any cell of the named global. *)

val clean_cells : result -> string -> Regions.t
(** The definitely-clean cells of the global: its extent minus
    {!write_region} — e.g. [temp[0..7,56..63]] for the blur workload. *)

val global_value : result -> string -> Regions.itv
(** Flow-insensitive over-approximation of the values the global (for
    arrays: any element) can hold at any time. *)

val pp : Format.formatter -> result -> unit
(** Per-function write summaries, in program order. *)

val pp_writes : result -> Format.formatter -> Regions.map -> unit
(** Render a region map with this program's global names. *)
