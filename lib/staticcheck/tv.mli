(** Translation validation of the partial evaluator.

    [Jspec.Pe] claims its residual code writes exactly the bytes of the
    generic incremental algorithm on every heap conforming to the
    specialization class it was built from. This module {e proves} that
    claim per specialization — the trust-shift from "the compiler is
    correct" to "this compiled artifact is correct": {!verify} decides
    byte-trace equivalence over the shape's whole symbolic heap family
    ({!Equiv}), and a refutation comes with a concrete counterexample
    heap whose replay on the real execution backends reproduces the
    divergence.

    The {!mutants} harness seeds representative miscompiles (dropped
    statements, flipped [modified] tests, swapped emit order, clobbered
    write values) into residual code so tests — and [ickpt_lint verify
    --seed-miscompile] — can demonstrate that the verifier actually
    rejects broken residual code, not merely accept correct code. *)

type verdict =
  | Verified of { vars : int; paths : int }
      (** equivalence proven on all [2^vars] symbolic heaps *)
  | Refuted of { mismatch : Equiv.mismatch; replay : Equiv.replay }
      (** diverges; counterexample materialized and replayed *)
  | Unsupported of string
      (** outside the symbolic domain or over the path budget *)

val verify :
  ?program:Jspec.Cklang.program ->
  ?max_vars:int ->
  Jspec.Sclass.shape -> Jspec.Pe.result -> verdict
(** Validate [result]'s residual body against the generic [program]
    (default {!Jspec.Generic_method.program}) over [shape]'s heap
    family. The shape is passed explicitly so a residual program can be
    checked against the declaration it is {e about} to be trusted for,
    whatever [result.shape] claims. *)

val verify_shape :
  ?max_vars:int -> Jspec.Sclass.shape -> (string * verdict) list
(** Specialize the shape fresh and verify both the raw residual code
    ([~optimize:false]) and the {!Jspec.Plan_opt}-cleaned code:
    [[("unoptimized", v1); ("optimized", v2)]]. The cleanup pass must
    preserve the verdict. *)

val ok : verdict -> bool
(** [true] only for [Verified]. *)

val finding : phase:string -> verdict -> Finding.t option
(** [None] when verified; a [verify:<phase>]-scoped [Error] for a
    refutation, [Warning] for an unsupported shape. *)

val pp : Format.formatter -> verdict -> unit

(** {1 Seeded-miscompile harness} *)

val mutants : Jspec.Pe.result -> (string * Jspec.Pe.result) list
(** All single-point mutations of the residual body, labeled by kind and
    position: dropped statements, flipped branch tests, swapped adjacent
    writes, clobbered write values. Structurally-identical results are
    deduplicated; some mutants may still be semantically equivalent (e.g.
    a dropped statement in dead code) — the verifier, not the harness,
    decides which ones diverge. *)
