type site = Lists | Bt | Et

let site_name = function Lists -> "se-lists" | Bt -> "bt" | Et -> "et"
let all_sites = [ Lists; Bt; Et ]

(* One Dirty_ai run per phase, shared by every plan (and by the runtime
   oracle), mirroring Phase_model's own memoization. *)
let results : (Phase_model.phase, Dirty_ai.result) Hashtbl.t = Hashtbl.create 3

let result phase =
  match Hashtbl.find_opt results phase with
  | Some r -> r
  | None ->
      let r =
        Dirty_ai.analyze
          ~havoc:(Phase_model.input_globals phase)
          (Phase_model.env phase)
      in
      Hashtbl.add results phase r;
      r

let site_region phase site =
  let r = result phase in
  match site with
  | Lists ->
      Regions.join
        (Dirty_ai.write_region r Phase_model.g_se_reads)
        (Dirty_ai.write_region r Phase_model.g_se_writes)
  | Bt -> Dirty_ai.write_region r Phase_model.g_bt
  | Et -> Dirty_ai.write_region r Phase_model.g_et

(* A site's extent is the attribute array length of the phase model: one
   cell per statement. *)
let site_extent phase =
  match
    List.find_opt
      (fun g -> g.Minic.Ast.v_name = Phase_model.g_bt)
      (Phase_model.program phase).Minic.Ast.globals
  with
  | Some { Minic.Ast.v_typ = Minic.Ast.T_array n; _ } -> n
  | _ -> 0

(* The phase models abstract a program of arbitrarily many statements
   with fixed-size attribute arrays; the last model cell summarizes
   every sid at or beyond it. Rescale a model region to a workload's
   statement count under that convention. *)
let site_region_for ~n_stmts phase site =
  let r = site_region phase site in
  let m = site_extent phase in
  if n_stmts <= 0 || Regions.is_bot r then Regions.bot
  else if n_stmts <= m then Regions.clamp ~lo:0 ~hi:(n_stmts - 1) r
  else if Regions.mem (m - 1) r then
    Regions.join r (Regions.interval (m - 1) (n_stmts - 1))
  else r

type decision = {
  site : site;
  elide : bool;
  region : Regions.t;
  reason : string;
}

type plan = {
  phase : Phase_model.phase;
  decisions : decision list;
  guard_shape : Jspec.Sclass.shape option;
  findings : Finding.t list;
}

let decide phase site =
  let region = site_region phase site in
  if Regions.is_bot region then
    { site;
      elide = true;
      region;
      reason =
        "may-write region empty: barrier and flag maintenance compiled out" }
  else
    let n = site_extent phase in
    let clean = Regions.complement_in ~lo:0 ~hi:(n - 1) region in
    let reason =
      if Regions.is_bot clean then
        Format.asprintf "statically may-written over the whole extent (%a)"
          Regions.pp region
      else
        Format.asprintf
          "may-write region %a leaves cells %a provably clean, but \
           object-granularity barriers cannot elide per cell"
          Regions.pp region Regions.pp clean
    in
    { site; elide = false; region; reason }

(* ---- guard pruning -------------------------------------------------------- *)

(* The attribute-tree node each klass's [modified] flag stands for. The
   spine (Attributes, BTEntry, ETEntry) maps to no site: nothing in the
   Attrs API mutates it after creation, so its cleanliness checks are
   discharged structurally whenever every flag check is — the oracle
   re-validates this dynamically. *)
let site_of_kname = function
  | "SEEntry" | "VarRef" -> Some (Some Lists)
  | "BT" -> Some (Some Bt)
  | "ET" -> Some (Some Et)
  | "Attributes" | "BTEntry" | "ETEntry" -> Some None
  | _ -> None (* unknown klass: never discharge *)

let rec prune ~discharged (s : Jspec.Sclass.shape) =
  let open Jspec.Sclass in
  let kname = s.klass.Ickpt_runtime.Model.kname in
  let residue = ref 0 in
  let status =
    match s.status with
    | Tracked -> Tracked
    | Clean -> (
        match site_of_kname kname with
        | Some None -> Tracked (* spine: discharged structurally *)
        | Some (Some site) when discharged site -> Tracked
        | _ ->
            incr residue;
            Clean)
  in
  let children =
    Array.map
      (function
        | Clean_opaque when discharged Lists -> Unknown
        | Clean_opaque ->
            incr residue;
            Clean_opaque
        | Exact c ->
            let c, r = prune ~discharged c in
            residue := !residue + r;
            Exact c
        | Nullable c ->
            let c, r = prune ~discharged c in
            residue := !residue + r;
            Nullable c
        | (Null_child | Unknown) as c -> c)
      s.children
  in
  (shape ~status s.klass children, !residue)

let plan ~declared phase =
  let decisions = List.map (decide phase) all_sites in
  let discharged site =
    List.exists (fun d -> d.site = site && d.elide) decisions
  in
  let findings =
    (* A Clean declaration the region analysis contradicts is unsound to
       elide (and spec-lint reports it too); a kept barrier with a
       partially clean region is imprecision worth surfacing. *)
    let scope = "elide:" ^ Phase_model.name phase in
    let declared_clean site =
      (* does the declared shape claim the site clean? *)
      let open Jspec.Sclass in
      let rec scan s =
        let here =
          match site_of_kname s.klass.Ickpt_runtime.Model.kname with
          | Some (Some si) when si = site -> s.status = Clean
          | _ -> false
        in
        here
        || Array.exists
             (function
               | Exact c | Nullable c -> scan c
               | Clean_opaque -> site = Lists
               | Null_child | Unknown -> false)
             s.children
      in
      scan declared
    in
    List.concat_map
      (fun d ->
        if d.elide then []
        else if declared_clean d.site then
          [ { Finding.severity = Finding.Error;
              scope;
              path = site_name d.site;
              reason =
                Format.asprintf
                  "declared Clean but the phase may write region %a: \
                   elision would be unsound, barrier kept"
                  Regions.pp d.region } ]
        else if
          not (Regions.is_bot (Regions.complement_in ~lo:0
                 ~hi:(site_extent phase - 1) d.region))
        then
          [ { Finding.severity = Finding.Warning;
              scope;
              path = site_name d.site;
              reason = d.reason } ]
        else [])
      decisions
  in
  let guard_shape =
    let pruned, residue = prune ~discharged declared in
    if residue = 0 && not (Finding.has_errors findings) then None
    else Some pruned
  in
  { phase; decisions; guard_shape; findings }

let elided p = List.filter_map (fun d -> if d.elide then Some d.site else None) p.decisions

let decision p site =
  match List.find_opt (fun d -> d.site = site) p.decisions with
  | Some d -> d
  | None -> invalid_arg "Barrier_elide.decision"

let pp ppf p =
  Format.fprintf ppf "@[<v 2>phase %s:" (Phase_model.name p.phase);
  List.iter
    (fun d ->
      Format.fprintf ppf "@,%-8s %s  (%s)" (site_name d.site)
        (if d.elide then "elide" else "keep ")
        d.reason)
    p.decisions;
  (match p.guard_shape with
  | None -> Format.fprintf ppf "@,guard: fully discharged (skipped at run time)"
  | Some _ -> Format.fprintf ppf "@,guard: retained");
  List.iter (fun f -> Format.fprintf ppf "@,%a" Finding.pp f) p.findings;
  Format.fprintf ppf "@]"

(* ---- workload plans (annotation-free pipeline) ---------------------------- *)

type wdecision = {
  wglobal : string;
  welide : bool;
  wregion : Regions.t;
  wreason : string;
}

type wplan = {
  wphase : string;
  wdecisions : wdecision list;
  wfindings : Finding.t list;
}

let workload_plan ~phase enc regions =
  let scope = "elide:" ^ phase in
  let wdecisions =
    List.map
      (fun (g, region) ->
        let welide = Regions.is_bot region in
        let wreason =
          if welide then "no may-write: barrier and flag maintenance elided"
          else
            Format.asprintf "may-write region %a: barrier kept" Regions.pp
              region
        in
        { wglobal = g; welide; wregion = region; wreason })
      regions
  in
  let wfindings =
    List.concat_map
      (fun d ->
        if d.welide then []
        else
          match Shape_infer.slot_of enc d.wglobal with
          | Shape_infer.Scalar _ -> []
          | Shape_infer.Array { length; _ } ->
              let clean =
                Regions.complement_in ~lo:0 ~hi:(length - 1) d.wregion
              in
              if Regions.is_bot clean then []
              else
                [ { Finding.severity = Finding.Warning;
                    scope;
                    path = d.wglobal;
                    reason =
                      Format.asprintf
                        "partially clean (%a definitely clean): whole-array \
                         barrier kept; the inferred shape still marks clean \
                         blocks Clean"
                        Regions.pp clean } ])
      wdecisions
  in
  { wphase = phase; wdecisions; wfindings }

(* Live-extended plan, for minimized runs only: a barrier is also dead
   when every cell the phase may write is dead at the phase's checkpoint
   boundary (write-only-before-death) — the flags it would set guard
   state no minimized checkpoint ever records. Byte-identity runs must
   NOT use this plan: eliding a live barrier changes incremental
   segments by construction. *)
let workload_plan_live ~phase regions live =
  let wdecisions =
    List.map
      (fun (g, region) ->
        let live_r =
          match List.assoc_opt g live with
          | Some r -> r
          | None -> Regions.bot
        in
        let kept = Regions.meet region live_r in
        let welide = Regions.is_bot kept in
        let wreason =
          if Regions.is_bot region then
            "no may-write: barrier and flag maintenance elided"
          else if welide then
            Format.asprintf
              "write-only-before-death: may-write %a is dead at the \
               boundary (live %a): barrier elided"
              Regions.pp region Regions.pp live_r
          else
            Format.asprintf
              "may-write %a meets live %a on %a: barrier kept"
              Regions.pp region Regions.pp live_r Regions.pp kept
        in
        { wglobal = g; welide; wregion = region; wreason })
      regions
  in
  (* Decisions here never refuse and never lose precision silently —
     the per-global reasons carry the full region evidence, so the plan
     contributes no findings of its own. *)
  { wphase = phase; wdecisions; wfindings = [] }

let welided p =
  List.filter_map
    (fun d -> if d.welide then Some d.wglobal else None)
    p.wdecisions

let pp_wplan ppf p =
  Format.fprintf ppf "@[<v 2>phase %s:" p.wphase;
  List.iter
    (fun d ->
      Format.fprintf ppf "@,%-12s %s  (%s)" d.wglobal
        (if d.welide then "elide" else "keep ")
        d.wreason)
    p.wdecisions;
  List.iter (fun f -> Format.fprintf ppf "@,%a" Finding.pp f) p.wfindings;
  Format.fprintf ppf "@]"
