(** Lint for declared specialization classes.

    The paper trusts the programmer's [Clean] declarations; a wrong one
    silently corrupts checkpoints, and {!Jspec.Guard} only catches it at
    run time, per object. This pass compares a *declared* shape against
    the shape *inferred* by {!Infer} and reports two defect classes:

    - {e unsound} — [Clean] (or [Clean_opaque]) on state the phase can
      write: specialized code would skip real modifications, a
      correctness bug;
    - {e imprecise} — [Tracked] (or [Unknown]) on state the phase
      provably never writes: correct, but residual code keeps tests and
      traversals the partial evaluator could have eliminated. *)

type verdict = Unsound | Imprecise

type diagnostic = {
  verdict : verdict;
  phase : string;
  path : string;  (** guard-style, e.g. ["root.children[0]"] *)
  klass : string;
  reason : string;
}

val verdict_name : verdict -> string

val compare_shapes :
  phase:string ->
  declared:Jspec.Sclass.shape ->
  inferred:Jspec.Sclass.shape ->
  diagnostic list
(** All disagreements, sorted by path (stable and deterministic). Empty
    iff the declaration is exactly as tight as the inference. *)

val check_phase :
  klasses:Ickpt_runtime.Model.klass list ->
  Phase_model.phase ->
  declared:Jspec.Sclass.shape ->
  diagnostic list
(** [compare_shapes] against {!Infer.derived_shape} for the phase. *)

val has_unsound : diagnostic list -> bool

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_report : Format.formatter -> diagnostic list -> unit
