open Jspec.Cklang

type sint =
  | I_const of int
  | I_id of place
  | I_kid of place
  | I_nints of place
  | I_nchildren of place
  | I_field of place * sint
  | I_modified of place
  | I_is_null of place
  | I_not of sint
  | I_cond of sint * sint * sint

and place = P_node of int | P_opaque of int * sint list

type event = E_write of sint | E_generic of place

type trace = { events : event list; flags : bool array }

type outcome = Trace of trace | Crashed of string

exception Unverifiable of string

(* A definite runtime error under the current valuation: every concrete
   heap materializing it crashes here, which is itself a divergence from
   the generic algorithm (total on conforming heaps). Caught by [run]. *)
exception Crash of string

let unverifiable fmt = Format.kasprintf (fun s -> raise (Unverifiable s)) fmt

let crash fmt = Format.kasprintf (fun s -> raise (Crash s)) fmt

let rec pp_place ppf = function
  | P_node idx -> Format.fprintf ppf "n%d" idx
  | P_opaque (oidx, sub) ->
      Format.fprintf ppf "u%d" oidx;
      List.iter (fun s -> Format.fprintf ppf ".[%a]" pp_sint s) sub

and pp_sint ppf = function
  | I_const n -> Format.pp_print_int ppf n
  | I_id p -> Format.fprintf ppf "id(%a)" pp_place p
  | I_kid p -> Format.fprintf ppf "kid(%a)" pp_place p
  | I_nints p -> Format.fprintf ppf "nints(%a)" pp_place p
  | I_nchildren p -> Format.fprintf ppf "nchildren(%a)" pp_place p
  | I_field (p, i) -> Format.fprintf ppf "%a.ints[%a]" pp_place p pp_sint i
  | I_modified p -> Format.fprintf ppf "modified(%a)" pp_place p
  | I_is_null p -> Format.fprintf ppf "is_null(%a)" pp_place p
  | I_not s -> Format.fprintf ppf "!(%a)" pp_sint s
  | I_cond (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_sint c pp_sint a pp_sint b

let pp_event ppf = function
  | E_write s -> Format.fprintf ppf "write(%a)" pp_sint s
  | E_generic p -> Format.fprintf ppf "generic(%a)" pp_place p

let pp_events ppf es =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_event)
    es

type value = V_int of sint | V_obj of place | V_null

type state = {
  sym : Symheap.t;
  valuation : Symheap.valuation;
  program : Jspec.Cklang.program;
  flags : bool array;  (* current modified flag per node *)
  mutable events : event list;  (* reversed *)
  mutable fuel : int;
}

let emit st e = st.events <- e :: st.events

let opaque_clean st oidx = st.sym.Symheap.opaques.(oidx).Symheap.oclean

let klass_of st idx =
  st.sym.Symheap.nodes.(idx).Symheap.shape.Jspec.Sclass.klass

let bool_int b = I_const (if b then 1 else 0)

let rec eval st env (e : expr) : value =
  match e with
  | Const n -> V_int (I_const n)
  | Var v -> (
      match List.assoc_opt v env with
      | Some a -> a
      | None -> crash "unbound variable v%d" v)
  | Int_field (o, i) -> (
      let p = eval_obj st env o in
      let idx = eval_int st env i in
      match (p, idx) with
      | P_node n, I_const k ->
          let klass = klass_of st n in
          if k < 0 || k >= klass.Ickpt_runtime.Model.n_ints then
            crash "int field %d out of range for %s" k
              klass.Ickpt_runtime.Model.kname;
          V_int (I_field (p, idx))
      | P_node _, _ ->
          (* A symbolic index into a known layout cannot arise from the
             generic program (loops over known nodes unroll), only from
             code we cannot model. *)
          unverifiable "symbolic int-field index on a shape-known node"
      | P_opaque _, _ -> V_int (I_field (p, idx)))
  | Child (o, i) -> (
      let p = eval_obj st env o in
      let idx = eval_int st env i in
      match (p, idx) with
      | P_node n, I_const k -> (
          let node = st.sym.Symheap.nodes.(n) in
          if k < 0 || k >= Array.length node.Symheap.slots then
            crash "child %d out of range for %s" k node.Symheap.path;
          match node.Symheap.slots.(k) with
          | Symheap.S_null -> V_null
          | Symheap.S_node c -> V_obj (P_node c)
          | Symheap.S_maybe (c, pv) ->
              if st.valuation.(pv) then V_obj (P_node c) else V_null
          | Symheap.S_opaque oidx ->
              let op = st.sym.Symheap.opaques.(oidx) in
              if st.valuation.(op.Symheap.present_var) then
                V_obj (P_opaque (oidx, []))
              else V_null)
      | P_node _, _ -> unverifiable "symbolic child index on a shape-known node"
      | P_opaque (oidx, sub), _ -> V_obj (P_opaque (oidx, sub @ [ idx ])))
  | Id_of o -> V_int (I_id (eval_obj st env o))
  | Kid_of o -> (
      match eval_obj st env o with
      | P_node n -> V_int (I_const (klass_of st n).Ickpt_runtime.Model.kid)
      | P_opaque _ as p -> V_int (I_kid p))
  | Modified o -> (
      match eval_obj st env o with
      | P_node n -> V_int (bool_int st.flags.(n))
      | P_opaque (oidx, _) as p ->
          if opaque_clean st oidx then V_int (I_const 0)
          else V_int (I_modified p))
  | Is_null o -> (
      match eval st env o with
      | V_null -> V_int (I_const 1)
      | V_obj (P_node _) | V_obj (P_opaque (_, [])) -> V_int (I_const 0)
      | V_obj (P_opaque (_, _ :: _) as p) -> V_int (I_is_null p)
      | V_int _ -> crash "Is_null on int")
  | Not e' -> (
      match eval_int st env e' with
      | I_const n -> V_int (bool_int (n = 0))
      | s -> V_int (I_not s))
  | N_ints o -> (
      match eval_obj st env o with
      | P_node n -> V_int (I_const (klass_of st n).Ickpt_runtime.Model.n_ints)
      | P_opaque _ as p -> V_int (I_nints p))
  | N_children o -> (
      match eval_obj st env o with
      | P_node n ->
          V_int (I_const (klass_of st n).Ickpt_runtime.Model.n_children)
      | P_opaque _ as p -> V_int (I_nchildren p))
  | Cond (c, a, b) -> (
      match eval_int st env c with
      | I_const 0 -> eval st env b
      | I_const _ -> eval st env a
      | c' -> V_int (I_cond (c', eval_int st env a, eval_int st env b)))

and eval_int st env e =
  match eval st env e with
  | V_int s -> s
  | V_obj _ -> crash "expected int, got object"
  | V_null -> crash "expected int, got null"

and eval_obj st env e =
  match eval st env e with
  | V_obj p -> p
  | V_null -> crash "null dereference"
  | V_int _ -> crash "expected object, got int"

let rec exec st env stmts = List.iter (exec_stmt st env) stmts

and exec_stmt st env s =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then unverifiable "fuel exhausted (runaway residual code)";
  match s with
  | Write e -> emit st (E_write (eval_int st env e))
  | Reset_modified e -> (
      match eval_obj st env e with
      | P_node n -> st.flags.(n) <- false
      | P_opaque (oidx, _) ->
          (* Clean subtrees have every flag false already, so the reset is
             a semantic no-op; on unknown subtrees the effect cannot be
             modeled. *)
          if not (opaque_clean st oidx) then
            unverifiable "Reset_modified on an unknown opaque subtree")
  | If (c, t, f) -> (
      match eval_int st env c with
      | I_const 0 -> exec st env f
      | I_const _ -> exec st env t
      | s -> unverifiable "branch on an opaque condition: %a" pp_sint s)
  | Let (v, e, body) -> exec st ((v, eval st env e) :: env) body
  | For (v, lo, hi, body) -> (
      match (eval_int st env lo, eval_int st env hi) with
      | I_const lo, I_const hi ->
          for k = lo to hi - 1 do
            exec st ((v, V_int (I_const k)) :: env) body
          done
      | _ -> unverifiable "loop with opaque bounds")
  | Invoke_virtual (m, e) -> (
      match eval st env e with
      | V_null -> crash "virtual %a on null" pp_meth m
      | v -> invoke st m v)
  | Call (m, e) -> (
      match eval st env e with
      | V_null -> ()  (* static driver calls are null-tolerant, cf. Interp *)
      | v -> invoke st m v)
  | Call_generic e -> (
      match eval st env e with
      | V_null -> ()
      | V_int _ -> crash "generic call on int"
      | V_obj (P_node _ as p) ->
          (* Generic fallback on a shape-known node: expand the generic
             program itself, threading the current flag state through. *)
          exec st [ (0, V_obj p) ] st.program.checkpoint
      | V_obj (P_opaque (oidx, _) as p) ->
          if not (opaque_clean st oidx) then emit st (E_generic p))

(* Virtual or static dispatch on a symbolic receiver. On shape-known nodes
   the receiver's class is static, so dispatch resolves to the program's
   method body, inlined with a fresh frame — exactly what Pe does at
   specialization time, here replayed at verification time. *)
and invoke st m v =
  match v with
  | V_int _ -> crash "method call on int"
  | V_null -> crash "method call on null"
  | V_obj (P_node _ as p) ->
      exec st [ (0, V_obj p) ] (method_body st.program m)
  | V_obj (P_opaque (oidx, _) as p) ->
      if opaque_clean st oidx then
        (* Checkpointing or folding an all-clean subtree emits nothing and
           changes nothing; recording its layout-unknown fields cannot be
           modeled (and the generic algorithm never does it: record runs
           only under a true modified test). *)
        (match m with
        | M_checkpoint | M_fold -> ()
        | M_record -> unverifiable "record on a clean-opaque subtree")
      else (
        match m with
        | M_checkpoint -> emit st (E_generic p)
        | M_record | M_fold ->
            unverifiable "%a on an unknown opaque subtree" pp_meth m)

let initial_flags sym (valuation : Symheap.valuation) =
  Array.map
    (fun (n : Symheap.node) ->
      match n.Symheap.flag_var with
      | Some fv -> valuation.(fv)
      | None -> false)
    sym.Symheap.nodes

let run ?(program = Jspec.Generic_method.program) ?(fuel = 1_000_000) sym
    valuation stmts =
  let st =
    { sym;
      valuation;
      program;
      flags = initial_flags sym valuation;
      events = [];
      fuel }
  in
  match exec st [ (0, V_obj (P_node 0)) ] stmts with
  | () -> Trace { events = List.rev st.events; flags = st.flags }
  | exception Crash msg -> Crashed msg

let generic_trace ?(program = Jspec.Generic_method.program) sym valuation =
  run ~program sym valuation program.checkpoint
