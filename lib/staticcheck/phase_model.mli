(** The three analysis phases of the engine, as analyzable programs.

    [Attrs] hardcodes a specialization class per phase; to *derive* those
    classes instead, the effect analysis needs the phases themselves in a
    form it can analyze. Each phase's fixpoint round (see
    [Ickpt_analysis.Sea], [Bta_phase], [Eta_phase]) is faithfully modeled
    here as a mini-C program whose globals stand for the leaves of the
    attribute tree:

    - [se_reads]/[se_writes] — the [SEEntry] list slots (one cell per
      statement);
    - [bt] — the [BT] annotation cells;
    - [et] — the [ET] annotation cells.

    Scratch state the real phases keep in OCaml hash tables (function
    summaries, per-variable binding times) appears as ordinary globals
    with no attribute mapping; the [stmt_*] tables are the analyzed
    program itself, read-only. A phase model writes an attribute global
    iff the real phase calls the corresponding [Attrs] setter, so the
    interprocedural write effect of the model's [main] is exactly the
    phase's possible modification effect on the attribute tree. *)

type phase = Sea | Bta | Eta

val all : phase list

val name : phase -> string
(** ["sea"], ["bta"], ["eta"]. *)

(** {1 Attribute-global names} *)

val g_se_reads : string
val g_se_writes : string
val g_bt : string
val g_et : string

val attr_globals : string list

val input_globals : phase -> string list
(** The globals that stand for the phase's {e input} — the encoded
    program tables (and, for [Eta], the converged [bt] attributes). The
    models declare them zero-initialized because mini-C has no external
    input; any value-sensitive analysis (e.g. {!Dirty_ai}) must havoc
    them to model an arbitrary analyzed program soundly. *)

(** {1 The models} *)

val source : phase -> string
(** Mini-C source text of the phase model. *)

val program : phase -> Minic.Ast.program

val env : phase -> Minic.Check.env
(** The checked model (parsed once, memoized).
    @raise Minic.Check.Check_error only if a model is ill-formed (a bug
    here, not in user input). *)
