open Minic.Ast

type t = {
  l_env : Minic.Check.env;
  l_uer : (string, Regions.map) Hashtbl.t;
  l_mw : (string, Regions.map) Hashtbl.t;
  l_boundaries : (int * Regions.map) list;
  l_rounds : int;
}

(* Backstop for the backward loop fixpoints; the lattice (interval sets
   clamped to each array's extent) is finite, so plain iteration
   terminates — the cap only bounds pathological chains before the
   widening fallback kicks in. *)
let max_fix = 200

let extent_of_typ = function
  | T_int | T_void -> (0, 0)
  | T_array n -> (0, n - 1)

let analyze ?dirty (env : Minic.Check.env) (phases : Phase_discover.phase list)
    =
  let p = env.Minic.Check.program in
  let dirty =
    match dirty with Some d -> d | None -> Dirty_ai.analyze env
  in
  let gid x = Minic.Check.global_id env x in
  let n_globals = Minic.Check.global_count env in
  let gtyp = Array.make (max 1 n_globals) T_int in
  List.iter
    (fun g ->
      match gid g.v_name with
      | Some id -> gtyp.(id) <- g.v_typ
      | None -> ())
    p.globals;
  let extent id = extent_of_typ gtyp.(id) in
  let clamp id r =
    let lo, hi = extent id in
    Regions.clamp ~lo ~hi r
  in
  (* Remove [cut] from the binding for [id]: the under-approximate kill
     of backward liveness (complement within the extent, then meet). *)
  let kill_region m id cut =
    let lo, hi = extent id in
    let r =
      Regions.meet (Regions.region_of m id)
        (Regions.complement_in ~lo ~hi cut)
    in
    if Regions.is_bot r then Regions.Gid_map.remove id m
    else Regions.Gid_map.add id r m
  in
  (* ---- constants (for sweep bounds) --------------------------------- *)
  (* A global whose flow-insensitive value approximation is a single
     point holds that value on every read — the constants (width,
     npixels, n, ...) that make sweep extents decidable. *)
  let rec const_of e =
    match e with
    | E_int n -> Some n
    | E_var x when gid x <> None ->
        let v = Dirty_ai.global_value dirty x in
        if v.Regions.lo = v.Regions.hi && v.Regions.lo > min_int then
          Some v.Regions.lo
        else None
    | E_unop (U_neg, e) -> Option.map (fun n -> -n) (const_of e)
    | E_binop (op, l, r) -> (
        match (const_of l, const_of r) with
        | Some a, Some b -> (
            match op with
            | B_add -> Some (a + b)
            | B_sub -> Some (a - b)
            | B_mul -> Some (a * b)
            | B_div when b <> 0 -> Some (a / b)
            | B_mod when b <> 0 -> Some (a mod b)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  (* ---- function summaries ------------------------------------------- *)
  let uer_tbl : (string, Regions.map) Hashtbl.t = Hashtbl.create 16 in
  let mw_tbl : (string, Regions.map) Hashtbl.t = Hashtbl.create 16 in
  let uer_of f =
    match Hashtbl.find_opt uer_tbl f with
    | Some m -> m
    | None -> Regions.map_empty
  in
  let mw_of f =
    match Hashtbl.find_opt mw_tbl f with
    | Some m -> m
    | None -> Regions.map_empty
  in
  (* The global cells an expression may read: every global occurrence,
     constant indices as points, computed indices as the whole extent,
     plus the upward-exposed reads of any called function. Locals read
     nothing checkpointable. *)
  let rec reads ~is_local acc e =
    match e with
    | E_int _ -> acc
    | E_var x -> (
        if is_local x then acc
        else
          match gid x with
          | Some id -> Regions.map_add id (Regions.point 0) acc
          | None -> acc)
    | E_index (a, i) ->
        let acc = reads ~is_local acc i in
        if is_local a then acc
        else (
          match gid a with
          | Some id ->
              let r =
                match i with
                | E_int n -> Regions.point n
                | _ -> Regions.top
              in
              Regions.map_add id (clamp id r) acc
          | None -> acc)
    | E_unop (_, e) -> reads ~is_local acc e
    | E_binop (_, l, r) -> reads ~is_local (reads ~is_local acc l) r
    | E_call (g, args) ->
        let acc = List.fold_left (reads ~is_local) acc args in
        Regions.map_join acc (uer_of g)
  in
  (* ---- sweep recognition -------------------------------------------- *)
  (* [x = lo; while (x < hi) { ... a[x] = e; ...; x = x + 1 }] with
     constant, loop-invariant bounds and no other write to [x] or early
     return in the body: each unconditional top-level store [a[x] = e]
     must-writes [a[lo..hi-1]] when the loop exits — the range kill that
     makes per-cell stores in commit-style loops visible to the must
     analysis. *)
  let rec assigns_var x stmts =
    List.exists
      (fun s ->
        match s.node with
        | S_assign (y, _) -> y = x
        | S_if (_, t, e) -> assigns_var x t || assigns_var x e
        | S_while (_, b) -> assigns_var x b
        | _ -> false)
      stmts
  in
  let rec has_return stmts =
    List.exists
      (fun s ->
        match s.node with
        | S_return _ -> true
        | S_if (_, t, e) -> has_return t || has_return e
        | S_while (_, b) -> has_return b
        | _ -> false)
      stmts
  in
  let sweep_of ~is_local s1 s2 =
    match (s1.node, s2.node) with
    | ( S_assign (x, elo),
        S_while (E_binop ((B_lt | B_le) as op, E_var x', ehi), body) )
      when x = x' && is_local x -> (
        match List.rev body with
        | { node = S_assign (x'', incr); _ } :: rev_front
          when x'' = x
               && (match incr with
                  | E_binop (B_add, E_var y, E_int 1)
                  | E_binop (B_add, E_int 1, E_var y) ->
                      y = x
                  | _ -> false)
               && (not (assigns_var x (List.rev rev_front)))
               && not (has_return body) -> (
            match (const_of elo, const_of ehi) with
            | Some lo, Some hi_raw ->
                let hi = if op = B_lt then hi_raw - 1 else hi_raw in
                if lo > hi then None
                else
                  let stores =
                    List.filter_map
                      (fun s ->
                        match s.node with
                        | S_store (a, E_var ix, _)
                          when ix = x && not (is_local a) ->
                            gid a
                        | _ -> None)
                      (List.rev rev_front)
                  in
                  Some (lo, hi, stores, body)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  (* ---- UER: upward-exposed reads (over-approximate), computed by a
     forward walk that under-approximates the already-written set ---- *)
  let rec uer_walk ~is_local ~acc killed stmts =
    match stmts with
    | [] -> killed
    | s1 :: (s2 :: rest as tl) -> (
        match sweep_of ~is_local s1 s2 with
        | Some (lo, hi, stores, body) ->
            (* init + guard + body reads first (against the entry killed
               set: iteration 1 reads before the sweep completes), then
               commit the range kill. *)
            let gen e =
              acc :=
                Regions.map_join !acc
                  (map_diff (reads ~is_local Regions.map_empty e) killed)
            in
            gen (match s1.node with S_assign (_, e) -> e | _ -> E_int 0);
            gen
              (match s2.node with S_while (c, _) -> c | _ -> E_int 0);
            let (_ : Regions.map) =
              uer_walk ~is_local ~acc killed body
            in
            let killed =
              List.fold_left
                (fun killed id ->
                  Regions.Gid_map.add id
                    (Regions.join
                       (Regions.region_of killed id)
                       (clamp id (Regions.interval lo hi)))
                    killed)
                killed stores
            in
            uer_walk ~is_local ~acc killed rest
        | None ->
            let killed = uer_stmt ~is_local ~acc killed s1 in
            if
              match s1.node with S_return _ -> true | _ -> false
            then killed
            else uer_walk ~is_local ~acc killed tl)
    | [ s ] -> uer_stmt ~is_local ~acc killed s
  and map_diff r killed =
    Regions.Gid_map.fold
      (fun id reg acc ->
        let lo, hi = extent id in
        let exposed =
          Regions.meet (clamp id reg)
            (Regions.complement_in ~lo ~hi (Regions.region_of killed id))
        in
        if Regions.is_bot exposed then acc
        else Regions.map_add id exposed acc)
      r Regions.map_empty
  and uer_stmt ~is_local ~acc killed s =
    let gen e =
      acc :=
        Regions.map_join !acc
          (map_diff (reads ~is_local Regions.map_empty e) killed)
    in
    match s.node with
    | S_assign (x, e) -> (
        gen e;
        let killed =
          match e with
          | E_call (g, _) -> Regions.map_join killed (mw_of g)
          | _ -> killed
        in
        if is_local x then killed
        else
          match gid x with
          | Some id -> Regions.map_add id (Regions.point 0) killed
          | None -> killed)
    | S_store (a, i, e) -> (
        gen i;
        gen e;
        match (i, gid a) with
        | E_int n, Some id when not (is_local a) ->
            Regions.map_add id (clamp id (Regions.point n)) killed
        | _ -> killed)
    | S_expr e -> (
        gen e;
        match e with
        | E_call (g, _) -> Regions.map_join killed (mw_of g)
        | _ -> killed)
    | S_return None -> killed
    | S_return (Some e) ->
        gen e;
        killed
    | S_if (c, t, e) ->
        gen c;
        (* Branch reads are generated against branch-local kill state;
           neither branch's kills survive the join (a must-set would need
           the intersection — dropping both is the sound under-approx). *)
        let (_ : Regions.map) = uer_walk ~is_local ~acc killed t in
        let (_ : Regions.map) = uer_walk ~is_local ~acc killed e in
        killed
    | S_while (c, b) ->
        gen c;
        (* Non-sweep loop: may run zero times, so its kills don't
           commit; its reads are exposed against the entry kill set. *)
        let (_ : Regions.map) = uer_walk ~is_local ~acc killed b in
        killed
  in
  (* ---- MW: must-write (under-approximate) --------------------------- *)
  let rec mw_walk ~is_local acc stmts =
    match stmts with
    | [] -> acc
    | s1 :: (s2 :: rest as tl) -> (
        match sweep_of ~is_local s1 s2 with
        | Some (lo, hi, stores, _body) ->
            let acc =
              List.fold_left
                (fun acc id ->
                  Regions.map_add id (clamp id (Regions.interval lo hi)) acc)
                acc stores
            in
            mw_walk ~is_local acc rest
        | None -> (
            match s1.node with
            | S_return _ -> mw_stmt ~is_local acc s1
            | _ -> mw_walk ~is_local (mw_stmt ~is_local acc s1) tl))
    | [ s ] -> mw_stmt ~is_local acc s
  and mw_stmt ~is_local acc s =
    match s.node with
    | S_assign (x, e) -> (
        let acc =
          match e with
          | E_call (g, _) -> Regions.map_join acc (mw_of g)
          | _ -> acc
        in
        if is_local x then acc
        else
          match gid x with
          | Some id -> Regions.map_add id (Regions.point 0) acc
          | None -> acc)
    | S_store (a, i, _) -> (
        match (i, gid a) with
        | E_int n, Some id when not (is_local a) ->
            Regions.map_add id (clamp id (Regions.point n)) acc
        | _ -> acc)
    | S_expr (E_call (g, _)) -> Regions.map_join acc (mw_of g)
    | S_expr _ | S_return _ -> acc
    (* Branches and non-sweep loops may not execute: no must-writes. *)
    | S_if _ | S_while _ -> acc
  in
  (* ---- summary fixpoint --------------------------------------------- *)
  let locals_of (f : func) =
    let tbl = Hashtbl.create 8 in
    List.iter (fun x -> Hashtbl.replace tbl x ()) f.f_params;
    List.iter (fun l -> Hashtbl.replace tbl l.v_name ()) f.f_locals;
    fun x -> Hashtbl.mem tbl x
  in
  let func_locals =
    List.map (fun (f : func) -> (f.f_name, locals_of f)) p.funcs
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < max_fix do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : func) ->
        let is_local = List.assoc f.f_name func_locals in
        let acc = ref Regions.map_empty in
        let (_ : Regions.map) =
          uer_walk ~is_local ~acc Regions.map_empty f.f_body
        in
        let uer = Regions.map_join (uer_of f.f_name) !acc in
        if not (Regions.map_leq uer (uer_of f.f_name)) then begin
          changed := true;
          Hashtbl.replace uer_tbl f.f_name uer
        end;
        let mw = mw_walk ~is_local Regions.map_empty f.f_body in
        (* MW grows monotonically from bot as callee summaries fill in;
           joining keeps each round's result inductively justified. *)
        let mw = Regions.map_join (mw_of f.f_name) mw in
        if not (Regions.map_leq mw (mw_of f.f_name)) then begin
          changed := true;
          Hashtbl.replace mw_tbl f.f_name mw
        end)
      p.funcs
  done;
  (* ---- backward liveness over main ---------------------------------- *)
  let main_is_local =
    match List.assoc_opt "main" func_locals with
    | Some f -> f
    | None -> fun _ -> false
  in
  let is_local = main_is_local in
  let reads_map e = reads ~is_local Regions.map_empty e in
  let map_diff_all l killed =
    Regions.Gid_map.fold (fun id cut l -> kill_region l id cut) killed l
  in
  let apply_call l g args =
    let l = map_diff_all l (mw_of g) in
    let l = Regions.map_join l (uer_of g) in
    List.fold_left (fun l a -> Regions.map_join l (reads_map a)) l args
  in
  let rec bwd_block stmts l = List.fold_right bwd_stmt stmts l
  and bwd_stmt s l =
    match s.node with
    | S_assign (x, e) -> (
        let l =
          if is_local x then l
          else
            match gid x with Some id -> kill_region l id (Regions.point 0) | None -> l
        in
        match e with
        | E_call (g, args) -> apply_call l g args
        | _ -> Regions.map_join l (reads_map e))
    | S_store (a, i, e) ->
        let l =
          match (i, gid a) with
          | E_int n, Some id when not (is_local a) ->
              kill_region l id (clamp id (Regions.point n))
          | _ -> l
        in
        Regions.map_join l (Regions.map_join (reads_map i) (reads_map e))
    | S_expr (E_call (g, args)) -> apply_call l g args
    | S_expr e -> Regions.map_join l (reads_map e)
    | S_return None -> Regions.map_empty
    | S_return (Some e) -> reads_map e
    | S_if (c, t, e) ->
        Regions.map_join
          (Regions.map_join (bwd_block t l) (bwd_block e l))
          (reads_map c)
    | S_while (c, b) -> loop_fix c b l
  and loop_fix c b l_exit =
    (* H = lfp X. L_exit ⊔ reads(guard) ⊔ B(body, X): the state live at
       the loop head, covering both the continue and the exit path —
       every round-boundary checkpoint of this loop sits here. *)
    let base = Regions.map_join l_exit (reads_map c) in
    let rec fix x n =
      let x' = Regions.map_join base (Regions.map_join x (bwd_block b x)) in
      if Regions.map_leq x' x then x
      else if n >= max_fix then Regions.map_widen x x'
      else fix x' (n + 1)
    in
    fix base 0
  in
  (* Walk the discovered phases (main's top-level structure) in reverse,
     recording at each checkpoint boundary the regions live into the
     rest of the program. A Setup boundary sits after its body; a Round
     boundary is the loop head — havoc-conservative over any number of
     remaining iterations via the fixpoint. *)
  let l_boundaries =
    let l = ref Regions.map_empty in
    List.rev phases
    |> List.map (fun (ph : Phase_discover.phase) ->
           match ph.Phase_discover.p_kind with
           | Phase_discover.Setup ->
               let b = !l in
               l := bwd_block ph.Phase_discover.p_body !l;
               (ph.Phase_discover.p_index, b)
           | Phase_discover.Round { cond } ->
               let h = loop_fix cond ph.Phase_discover.p_body !l in
               l := h;
               (ph.Phase_discover.p_index, h))
    |> List.rev
  in
  { l_env = env; l_uer = uer_tbl; l_mw = mw_tbl; l_boundaries;
    l_rounds = !rounds }

let env t = t.l_env
let rounds t = t.l_rounds

let global_typ env name =
  match
    List.find_opt
      (fun g -> g.v_name = name)
      env.Minic.Check.program.globals
  with
  | Some g -> g.v_typ
  | None -> T_int

let clamp_for env name r =
  let lo, hi = extent_of_typ (global_typ env name) in
  Regions.clamp ~lo ~hi r

let boundary_map t index =
  match List.assoc_opt index t.l_boundaries with
  | Some m -> m
  | None -> invalid_arg "Live.boundary: unknown phase index"

let boundary t index =
  let m = boundary_map t index in
  List.map
    (fun (name, id) -> (name, clamp_for t.l_env name (Regions.region_of m id)))
    t.l_env.Minic.Check.global_ids

let live_region t index name =
  match Minic.Check.global_id t.l_env name with
  | None -> Regions.bot
  | Some id ->
      clamp_for t.l_env name (Regions.region_of (boundary_map t index) id)

let func_uer t f =
  match Hashtbl.find_opt t.l_uer f with
  | Some m -> m
  | None -> Regions.map_empty

let func_mw t f =
  match Hashtbl.find_opt t.l_mw f with
  | Some m -> m
  | None -> Regions.map_empty

let pp_map t ppf m =
  Regions.pp_map
    ~name:(Effects.global_name t.l_env)
    ~is_array:(fun gid ->
      Minic.Check.is_global_array t.l_env (Effects.global_name t.l_env gid))
    ppf m

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (f : func) ->
      Format.fprintf ppf "@[<h>%-18s UER %a  MW %a@]@," f.f_name (pp_map t)
        (func_uer t f.f_name) (pp_map t) (func_mw t f.f_name))
    t.l_env.Minic.Check.program.funcs;
  List.iter
    (fun (i, m) ->
      Format.fprintf ppf "@[<h>boundary %-2d live %a@]@," i (pp_map t) m)
    t.l_boundaries;
  Format.fprintf ppf "@]"
