open Jspec.Cklang

type verdict =
  | Verified of { vars : int; paths : int }
  | Refuted of { mismatch : Equiv.mismatch; replay : Equiv.replay }
  | Unsupported of string

let verify ?program ?max_vars shape (result : Jspec.Pe.result) =
  match Equiv.check ?program ?max_vars shape result.Jspec.Pe.body with
  | Equiv.Equivalent { vars; paths } -> Verified { vars; paths }
  | Equiv.Inconclusive msg -> Unsupported msg
  | Equiv.Mismatch mismatch ->
      (* The abstract counterexample must survive contact with real heaps
         and real backends before we call the artifact miscompiled. *)
      let replay = Equiv.replay shape result mismatch.Equiv.valuation in
      Refuted { mismatch; replay }

let verify_shape ?max_vars shape =
  [ ( "unoptimized",
      verify ?max_vars shape (Jspec.Pe.specialize ~optimize:false shape) );
    ("optimized", verify ?max_vars shape (Jspec.Pe.specialize shape)) ]

let ok = function Verified _ -> true | Refuted _ | Unsupported _ -> false

let assignment_string assignment =
  if assignment = [] then "(no variables)"
  else
    String.concat " "
      (List.map (fun (n, b) -> Printf.sprintf "%s=%b" n b) assignment)

let finding ~phase = function
  | Verified _ -> None
  | Refuted { mismatch; _ } ->
      Some
        { Finding.severity = Finding.Error;
          scope = "verify:" ^ phase;
          path = assignment_string mismatch.Equiv.assignment;
          reason =
            "residual checkpoint code is not byte-equivalent to the generic \
             algorithm" }
  | Unsupported msg ->
      Some
        { Finding.severity = Finding.Warning;
          scope = "verify:" ^ phase;
          path = "(shape)";
          reason = "translation validation inconclusive: " ^ msg }

let pp ppf = function
  | Verified { vars; paths } ->
      Format.fprintf ppf
        "verified: byte-equivalent to the generic algorithm on all %d \
         symbolic heap(s) (%d variable(s))"
        paths vars
  | Refuted { mismatch; replay } ->
      Format.fprintf ppf "@[<v>refuted:@,%a@,%a@]" Equiv.pp_mismatch mismatch
        Equiv.pp_replay replay
  | Unsupported msg -> Format.fprintf ppf "unsupported: %s" msg

(* ---- seeded-miscompile harness ---- *)

(* Single-point mutations of residual code, labeled by position. Each
   label is a path of block indices from the root ("2.t.0.clobber" =
   inside statement 2, then-branch, statement 0). *)
let rec list_mutants pfx stmts =
  let arr = Array.of_list stmts in
  let n = Array.length arr in
  let drops =
    List.init n (fun i ->
        ( Printf.sprintf "%sdrop@%d" pfx i,
          List.filteri (fun j _ -> j <> i) stmts ))
  in
  let swaps =
    List.concat
      (List.init (max 0 (n - 1)) (fun i ->
           match (arr.(i), arr.(i + 1)) with
           | Write _, Write _ ->
               [ ( Printf.sprintf "%sswap@%d" pfx i,
                   List.init n (fun j ->
                       if j = i then arr.(i + 1)
                       else if j = i + 1 then arr.(i)
                       else arr.(j)) ) ]
           | _ -> []))
  in
  let inner =
    List.concat
      (List.init n (fun i ->
           List.map
             (fun (l, s') ->
               (l, List.init n (fun j -> if j = i then s' else arr.(j))))
             (stmt_mutants (Printf.sprintf "%s%d." pfx i) arr.(i))))
  in
  drops @ swaps @ inner

and stmt_mutants pfx s =
  match s with
  | Write _ -> [ (pfx ^ "clobber", Write (Const 4242)) ]
  | If (c, t, f) ->
      ((pfx ^ "flip", If (Not c, t, f))
      :: List.map (fun (l, t') -> (l, If (c, t', f))) (list_mutants (pfx ^ "t.") t))
      @ List.map (fun (l, f') -> (l, If (c, t, f'))) (list_mutants (pfx ^ "f.") f)
  | Let (v, e, body) ->
      List.map (fun (l, b') -> (l, Let (v, e, b'))) (list_mutants (pfx ^ "b.") body)
  | For (v, lo, hi, body) ->
      List.map
        (fun (l, b') -> (l, For (v, lo, hi, b')))
        (list_mutants (pfx ^ "b.") body)
  | Reset_modified _ | Invoke_virtual _ | Call _ | Call_generic _ -> []

let mutants (result : Jspec.Pe.result) =
  let seen = Hashtbl.create 64 in
  Hashtbl.add seen result.Jspec.Pe.body ();
  List.filter_map
    (fun (label, body) ->
      if Hashtbl.mem seen body then None
      else begin
        Hashtbl.add seen body ();
        Some (label, { result with Jspec.Pe.body })
      end)
    (list_mutants "" result.Jspec.Pe.body)
