open Jspec

type phase_result = {
  ph : Phase_discover.phase;
  ph_env : Minic.Check.env;
  ph_havoc : string list;
  ph_effects : Effects.t;
  ph_dirty : Dirty_ai.result;
  ph_regions : (string * Regions.t) list;
  ph_shapes : (string * Sclass.shape) list;
  ph_verdicts : (string * Tv.verdict) list;
  ph_wplan : Barrier_elide.wplan;
  ph_live : (string * Regions.t) list;
  ph_min_regions : (string * Regions.t) list;
  ph_min_shapes : (string * Sclass.shape) list;
  ph_min_verdicts : (string * Tv.verdict) list;
  ph_live_wplan : Barrier_elide.wplan;
}

type t = {
  a_env : Minic.Check.env;
  a_encoding : Shape_infer.encoding;
  a_phases : phase_result list;
  a_live : Live.t;
  a_cache : Spec_cache.t;
  a_findings : Finding.t list;
}

(* ---- seeded-unsound mutation ---------------------------------------------- *)

let rec has_clean (s : Sclass.shape) =
  s.status = Sclass.Clean
  || Array.exists
       (function
         | Sclass.Exact c | Sclass.Nullable c -> has_clean c
         | Sclass.Null_child | Sclass.Unknown | Sclass.Clean_opaque -> false)
       s.children

(* Flip the first Clean-status node to Tracked. The flipped family is
   strictly larger (it includes heaps where that node's [modified] flag is
   set); the residual code — built from the true shape — never tests the
   flag, so translation validation must refute the pair. The opposite flip
   (Tracked→Clean) only shrinks the family and verifies vacuously, which
   is why the seeding goes this direction. *)
let rec flip_first_clean (s : Sclass.shape) =
  if s.status = Sclass.Clean then
    Some { s with Sclass.status = Sclass.Tracked }
  else
    let flipped = ref None in
    let children =
      Array.map
        (fun c ->
          match c with
          | (Sclass.Exact sub | Sclass.Nullable sub) when !flipped = None -> (
              match flip_first_clean sub with
              | Some sub' ->
                  flipped := Some ();
                  (match c with
                  | Sclass.Exact _ -> Sclass.Exact sub'
                  | _ -> Sclass.Nullable sub')
              | None -> c)
          | c -> c)
        s.children
    in
    if !flipped = None then None else Some { s with Sclass.children }

(* ---- inference ------------------------------------------------------------ *)

let original_globals (env : Minic.Check.env) =
  List.map fst env.Minic.Check.global_ids

(* Converge the entry-state havoc of one phase. A [Round] phase's body
   feeds itself: globals it writes in iteration [k] are inputs of
   iteration [k+1], so any global the phase may write joins the havoc set
   until the written-name set is stable. [Setup] phases run exactly once
   and need only the inherited havoc. *)
let converge_dirty ~round phase_env ~originals havoc0 =
  let rec go havoc =
    let dirty = Dirty_ai.analyze ~havoc phase_env in
    let written =
      List.filter
        (fun g -> not (Regions.is_bot (Dirty_ai.write_region dirty g)))
        originals
    in
    let missing = List.filter (fun g -> not (List.mem g havoc)) written in
    if round && missing <> [] then go (havoc @ missing) else (dirty, havoc)
  in
  go havoc0

(* Drop one live block from a non-empty minimized region: the
   seeded-unsound mutation for the {e liveness} gate. The minimized
   checkpointer then skips a block whose value some later read needs —
   the restore-equivalence oracle must catch the stale restore. *)
let seed_dead_region encoding g r =
  match Shape_infer.slot_of encoding g with
  | Shape_infer.Scalar _ -> Regions.bot
  | Shape_infer.Array { length; _ } -> (
      match Shape_infer.tracked_blocks encoding g r with
      | [] -> Regions.bot
      | b :: _ ->
          Regions.meet r
            (Regions.complement_in ~lo:0 ~hi:(length - 1)
               (Regions.interval b.Shape_infer.b_lo b.Shape_infer.b_hi)))

let infer ?(seed_unsound = false) ?(seed_dead = false) ?max_vars ?cache
    (env : Minic.Check.env) =
  let cache = match cache with Some c -> c | None -> Spec_cache.create () in
  let encoding = Shape_infer.encode env in
  let originals = original_globals env in
  let phases = Phase_discover.discover env in
  let live = Live.analyze env phases in
  (* One verdict per structural shape per run; the boolean lands in the
     spec cache so the engine's verified-specialized mode reuses it. *)
  let verdicts = Hashtbl.create 16 in
  let seeded = ref (not seed_unsound) in
  let validate shape =
    let plan = Spec_cache.plan cache shape in
    if (not !seeded) && has_clean shape then (
      seeded := true;
      match flip_first_clean shape with
      | Some mutated -> Tv.verify ?max_vars mutated plan
      | None -> assert false)
    else
      let key = Spec_cache.shape_key shape in
      match Hashtbl.find_opt verdicts key with
      | Some v -> v
      | None ->
          let v = Tv.verify ?max_vars shape plan in
          Hashtbl.replace verdicts key v;
          Spec_cache.set_verdict cache shape plan.Pe.body (Tv.ok v);
          v
  in
  let earlier_writes = ref [] in
  let seeded_dead = ref (not seed_dead) in
  let a_phases =
    List.map
      (fun (ph : Phase_discover.phase) ->
        let ph_env = Minic.Check.check ph.Phase_discover.p_program in
        let havoc0 = ph.Phase_discover.p_lifted @ !earlier_writes in
        let ph_dirty, ph_havoc =
          converge_dirty
            ~round:(Phase_discover.is_round ph)
            ph_env ~originals havoc0
        in
        let ph_regions =
          List.map (fun g -> (g, Dirty_ai.write_region ph_dirty g)) originals
        in
        List.iter
          (fun (g, r) ->
            if (not (Regions.is_bot r)) && not (List.mem g !earlier_writes)
            then earlier_writes := !earlier_writes @ [ g ])
          ph_regions;
        let ph_shapes =
          List.map
            (fun (g, r) -> (g, Shape_infer.shape_of encoding g r))
            ph_regions
        in
        let ph_verdicts = List.map (fun (g, s) -> (g, validate s)) ph_shapes in
        let ph_effects =
          Effects.of_func (Effects.compute ph_env) "main"
        in
        let ph_wplan =
          Barrier_elide.workload_plan ~phase:ph.Phase_discover.p_name encoding
            ph_regions
        in
        (* Minimization: the specialized checkpointer only needs the
           cells that are both may-written this phase and still live at
           this phase's boundary — everything else restores correctly
           from an older segment (unwritten) or is never read again
           (dead). *)
        let ph_live = Live.boundary live ph.Phase_discover.p_index in
        let ph_min_regions =
          List.map
            (fun (g, r) ->
              let lr =
                match List.assoc_opt g ph_live with
                | Some lr -> lr
                | None -> Regions.bot
              in
              let min_r = Regions.meet r lr in
              if (not !seeded_dead) && not (Regions.is_bot min_r) then begin
                seeded_dead := true;
                (g, seed_dead_region encoding g min_r)
              end
              else (g, min_r))
            ph_regions
        in
        let ph_min_shapes =
          List.map
            (fun (g, r) -> (g, Shape_infer.shape_of encoding g r))
            ph_min_regions
        in
        let ph_min_verdicts =
          List.map (fun (g, s) -> (g, validate s)) ph_min_shapes
        in
        let ph_live_wplan =
          Barrier_elide.workload_plan_live ~phase:ph.Phase_discover.p_name
            ph_regions ph_live
        in
        { ph; ph_env; ph_havoc; ph_effects; ph_dirty; ph_regions; ph_shapes;
          ph_verdicts; ph_wplan; ph_live; ph_min_regions; ph_min_shapes;
          ph_min_verdicts; ph_live_wplan })
      phases
  in
  let a_findings =
    List.concat_map
      (fun pr ->
        let phase = pr.ph.Phase_discover.p_name in
        let tv_of scope verdicts =
          List.filter_map
            (fun (g, v) ->
              if Tv.ok v then None
              else
                (* Refuted and Unsupported are both hard errors: the
                   contract of [infer] is "verified specialized
                   checkpointer or refusal", never a silent fallback to
                   the generic algorithm. Minimized shapes are held to
                   the same bar — a pruned checkpointer runs only when
                   its residual code verified. *)
                Some
                  { Finding.severity = Finding.Error;
                    scope = scope ^ ":" ^ phase;
                    path = g;
                    reason = Format.asprintf "%a" Tv.pp v })
            verdicts
        in
        tv_of "infer-tv" pr.ph_verdicts
        @ tv_of "live-tv" pr.ph_min_verdicts
        @ pr.ph_wplan.Barrier_elide.wfindings)
      a_phases
  in
  let a_findings =
    if seed_unsound && not !seeded then
      { Finding.severity = Finding.Warning;
        scope = "infer-tv";
        path = "-";
        reason =
          "seed-unsound: no Clean node in any inferred shape, nothing to \
           mutate" }
      :: a_findings
    else a_findings
  in
  let a_findings =
    if seed_dead && not !seeded_dead then
      { Finding.severity = Finding.Warning;
        scope = "live";
        path = "-";
        reason =
          "seed-unsound: no dirty region is live at any boundary, nothing \
           to mis-minimize" }
      :: a_findings
    else a_findings
  in
  { a_env = env;
    a_encoding = encoding;
    a_phases;
    a_live = live;
    a_cache = cache;
    a_findings = Finding.dedup a_findings }

let ok t = not (Finding.has_errors t.a_findings)

let findings t = t.a_findings

let verified_count t =
  List.fold_left
    (fun n pr ->
      n + List.length (List.filter (fun (_, v) -> Tv.ok v) pr.ph_verdicts))
    0 t.a_phases

(* ---- report --------------------------------------------------------------- *)

let pp_shape_line enc ppf (g, shape, verdict) =
  let detail =
    match Shape_infer.slot_of enc g with
    | Shape_infer.Scalar _ ->
        if shape.Sclass.status = Sclass.Tracked then "tracked" else "clean"
    | Shape_infer.Array { blocks; _ } ->
        let tracked =
          Array.to_list shape.Sclass.children
          |> List.mapi (fun i c -> (i, c))
          |> List.filter_map (fun (i, c) ->
                 match c with
                 | Sclass.Exact s when s.Sclass.status = Sclass.Tracked ->
                     let b = List.nth blocks i in
                     Some
                       (Printf.sprintf "[%d..%d]" b.Shape_infer.b_lo
                          b.Shape_infer.b_hi)
                 | _ -> None)
        in
        if
          Array.for_all
            (function Sclass.Clean_opaque -> true | _ -> false)
            shape.Sclass.children
        then "clean (opaque subtree)"
        else if tracked = [] then "clean blocks"
        else "tracked blocks " ^ String.concat "," tracked
  in
  Format.fprintf ppf "%-12s %-40s %a" g detail Tv.pp verdict

let pp ppf t =
  Format.fprintf ppf "@[<v>encoding:@,  @[<v>%a@]@," Shape_infer.pp
    t.a_encoding;
  List.iter
    (fun pr ->
      Format.fprintf ppf "@,%a@," Phase_discover.pp pr.ph;
      (match pr.ph_havoc with
      | [] -> ()
      | h ->
          Format.fprintf ppf "  havoc on entry: %s@," (String.concat ", " h));
      Format.fprintf ppf "  effects: %a@,"
        (Effects.pp pr.ph_env)
        pr.ph_effects;
      Format.fprintf ppf "  @[<v>%a@]@,"
        (Format.pp_print_list (fun ppf (g, s) ->
             let v = List.assoc g pr.ph_verdicts in
             pp_shape_line t.a_encoding ppf (g, s, v)))
        pr.ph_shapes;
      Format.fprintf ppf "  %a@," Barrier_elide.pp_wplan pr.ph_wplan;
      Format.fprintf ppf "  @[<v>boundary live:@,%a@]@,"
        (Format.pp_print_list (fun ppf (g, r) ->
             let min_r = List.assoc g pr.ph_min_regions in
             Format.fprintf ppf "%-12s live %-14s kept %a" g
               (Format.asprintf "%a" Regions.pp r)
               Regions.pp min_r))
        pr.ph_live)
    t.a_phases;
  if t.a_findings <> [] then
    Format.fprintf ppf "@,%a" Finding.pp_report t.a_findings;
  Format.fprintf ppf "@]"
