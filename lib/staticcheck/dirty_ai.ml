open Minic.Ast

module Smap = Map.Make (String)

type result = {
  env : Minic.Check.env;
  rounds : int;
  (* transitive may-write regions, converged *)
  summaries : (string, Regions.map) Hashtbl.t;
  (* per-sid may-write regions (subtree + calls) *)
  sid_writes : Regions.map array;
  (* flow-insensitive value approximation per global (elements, for arrays) *)
  gval : Regions.itv array;
}

(* Plain-join rounds before switching to widening: two precise rounds
   cover the common init -> first-update pattern, widening bounds the
   rest. *)
let default_widen_delay = 3

(* Backstop only; the widening argument makes it unreachable. *)
let max_rounds = 200

let extent_of_typ = function
  | T_int | T_void -> (0, 0)
  | T_array n -> (0, n - 1)

let analyze ?(havoc = []) ?(widen_delay = default_widen_delay)
    (env : Minic.Check.env) =
  let p = env.Minic.Check.program in
  let gid x = Minic.Check.global_id env x in
  let n_globals = Minic.Check.global_count env in
  let gtyp = Array.make n_globals T_int in
  List.iter
    (fun g ->
      match gid g.v_name with
      | Some id -> gtyp.(id) <- g.v_typ
      | None -> ())
    p.globals;
  let extent id = extent_of_typ gtyp.(id) in
  (* Arrays start zeroed; scalars at their initializer. A global no
     function ever writes keeps this value forever — the constants that
     make loop bounds decidable. *)
  let gval = Array.make n_globals (Regions.itv_point 0) in
  List.iter
    (fun g ->
      match gid g.v_name with
      | Some id ->
          gval.(id) <-
            (match g.v_typ with
            | T_array _ -> Regions.itv_point 0
            | _ -> Regions.itv_point g.v_init)
      | None -> ())
    p.globals;
  (* Havoced globals model external input: any value, from the start. *)
  List.iter
    (fun x ->
      match gid x with Some id -> gval.(id) <- Regions.itv_full | None -> ())
    havoc;
  let gval_pending = Array.copy gval in
  (* Per-function interprocedural state, all join-monotone. *)
  let called : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let params : (string, Regions.itv array * bool array) Hashtbl.t =
    Hashtbl.create 16
  in
  let rets : (string, Regions.itv) Hashtbl.t = Hashtbl.create 16 in
  let summaries : (string, Regions.map) Hashtbl.t = Hashtbl.create 16 in
  let sid_writes = Array.make (max 1 (stmt_count p)) Regions.map_empty in
  let summary_of f =
    match Hashtbl.find_opt summaries f with
    | Some m -> m
    | None -> Regions.map_empty
  in
  let round_no = ref 0 in
  let changed = ref true in
  let stabilize old now =
    if Regions.itv_leq now old then old
    else begin
      changed := true;
      if !round_no >= widen_delay then
        Regions.itv_widen old (Regions.itv_join old now)
      else Regions.itv_join old now
    end
  in
  let write_global acc id region value =
    let lo, hi = extent id in
    (* A store outside the extent crashes the concrete run, so clamping
       the may-write region to the array is sound. *)
    acc := Regions.map_add id (Regions.clamp ~lo ~hi region) !acc;
    gval_pending.(id) <- stabilize gval_pending.(id) value
  in
  let mark_called f =
    if not (Hashtbl.mem called f) then begin
      Hashtbl.add called f ();
      changed := true
    end
  in
  let raise_param f i v =
    match Hashtbl.find_opt params f with
    | None ->
        let n =
          match find_func p f with
          | Some fn -> List.length fn.f_params
          | None -> i + 1
        in
        let arr = Array.make (max 1 n) (Regions.itv_point 0) in
        let set = Array.make (max 1 n) false in
        arr.(i) <- v;
        set.(i) <- true;
        Hashtbl.add params f (arr, set);
        changed := true
    | Some (arr, set) ->
        if i < Array.length arr then
          if not set.(i) then begin
            set.(i) <- true;
            arr.(i) <- v;
            changed := true
          end
          else arr.(i) <- stabilize arr.(i) v
  in
  let raise_ret f v =
    match Hashtbl.find_opt rets f with
    | None ->
        Hashtbl.replace rets f v;
        changed := true
    | Some old -> Hashtbl.replace rets f (stabilize old v)
  in
  (* ---- frames: one interval per local/param; None = unreachable ---- *)
  let frame_join a b =
    match (a, b) with
    | None, f | f, None -> f
    | Some x, Some y ->
        Some (Smap.union (fun _ i j -> Some (Regions.itv_join i j)) x y)
  in
  let frame_leq a b =
    match (a, b) with
    | None, _ -> true
    | Some _, None -> false
    | Some x, Some y ->
        Smap.for_all
          (fun k i ->
            match Smap.find_opt k y with
            | Some j -> Regions.itv_leq i j
            | None -> false)
          x
  in
  let frame_widen a b =
    match (a, b) with
    | None, f | f, None -> f
    | Some x, Some y ->
        Some
          (Smap.union
             (fun _ i j -> Some (Regions.itv_widen i (Regions.itv_join i j)))
             x y)
  in
  (* ---- expressions ---- *)
  let truthiness (v : Regions.itv) =
    if v.Regions.lo = 0 && v.Regions.hi = 0 then `False
    else if v.Regions.lo > 0 || v.Regions.hi < 0 then `True
    else `Unknown
  in
  let bool_itv = Regions.itv 0 1 in
  (* [eval acc f e]: the value interval of [e] in frame [f], joining the
     write effects of any calls into [acc]. *)
  let rec eval acc f e : Regions.itv =
    match e with
    | E_int n -> Regions.itv_point n
    | E_var x -> (
        match Smap.find_opt x f with
        | Some v -> v
        | None -> (
            match gid x with
            | Some id -> gval.(id)
            | None -> Regions.itv_full))
    | E_index (a, i) ->
        let (_ : Regions.itv) = eval acc f i in
        if Smap.mem a f then Regions.itv_full
        else (
          match gid a with Some id -> gval.(id) | None -> Regions.itv_full)
    | E_unop (U_neg, e) -> Regions.itv_neg (eval acc f e)
    | E_unop (U_not, e) -> (
        match truthiness (eval acc f e) with
        | `False -> Regions.itv_point 1
        | `True -> Regions.itv_point 0
        | `Unknown -> bool_itv)
    | E_binop (op, l, r) -> (
        let vl = eval acc f l in
        let vr = eval acc f r in
        let open Regions in
        match op with
        | B_add -> itv_add vl vr
        | B_sub -> itv_sub vl vr
        | B_mul -> itv_mul vl vr
        | B_div -> itv_div vl vr
        | B_mod -> itv_rem vl vr
        | B_lt ->
            if vl.hi < vr.lo then itv_point 1
            else if vl.lo >= vr.hi then itv_point 0
            else bool_itv
        | B_le ->
            if vl.hi <= vr.lo then itv_point 1
            else if vl.lo > vr.hi then itv_point 0
            else bool_itv
        | B_gt ->
            if vl.lo > vr.hi then itv_point 1
            else if vl.hi <= vr.lo then itv_point 0
            else bool_itv
        | B_ge ->
            if vl.lo >= vr.hi then itv_point 1
            else if vl.hi < vr.lo then itv_point 0
            else bool_itv
        | B_eq ->
            if vl.lo = vl.hi && vr.lo = vr.hi && vl.lo = vr.lo then itv_point 1
            else if itv_meet vl vr = None then itv_point 0
            else bool_itv
        | B_ne ->
            if vl.lo = vl.hi && vr.lo = vr.hi && vl.lo = vr.lo then itv_point 0
            else if itv_meet vl vr = None then itv_point 1
            else bool_itv
        | B_and -> (
            match (truthiness vl, truthiness vr) with
            | `False, _ | _, `False -> itv_point 0
            | `True, `True -> itv_point 1
            | _ -> bool_itv)
        | B_or -> (
            match (truthiness vl, truthiness vr) with
            | `True, _ | _, `True -> itv_point 1
            | `False, `False -> itv_point 0
            | _ -> bool_itv))
    | E_call (g, args) ->
        mark_called g;
        List.iteri (fun i v -> raise_param g i v) (List.map (eval acc f) args);
        acc := Regions.map_join !acc (summary_of g);
        (match Hashtbl.find_opt rets g with
        | Some r -> r
        | None ->
            (* not yet computed this fixpoint; the next round re-reads *)
            Regions.itv_point 0)
  in
  (* ---- condition refinement (locals only) ---- *)
  let negate = function
    | B_lt -> B_ge
    | B_le -> B_gt
    | B_gt -> B_le
    | B_ge -> B_lt
    | B_eq -> B_ne
    | B_ne -> B_eq
    | op -> op
  in
  let mirror = function
    | B_lt -> B_gt
    | B_le -> B_ge
    | B_gt -> B_lt
    | B_ge -> B_le
    | op -> op
  in
  let refine_var acc x op rhs f =
    match Smap.find_opt x f with
    | None -> Some f (* globals are not flow-refined *)
    | Some vx ->
        let vr = eval acc f rhs in
        let open Regions in
        let bound =
          match op with
          | B_lt ->
              Some
                { lo = min_int;
                  hi = (if vr.hi = max_int then max_int else vr.hi - 1) }
          | B_le -> Some { lo = min_int; hi = vr.hi }
          | B_gt ->
              Some
                { lo = (if vr.lo = min_int then min_int else vr.lo + 1);
                  hi = max_int }
          | B_ge -> Some { lo = vr.lo; hi = max_int }
          | B_eq -> Some vr
          | _ -> None
        in
        (match bound with
        | None -> Some f
        | Some b -> (
            match itv_meet vx b with
            | None -> None
            | Some v' -> Some (Smap.add x v' f)))
  in
  let rec refine acc cond sense fr =
    match fr with
    | None -> None
    | Some f -> (
        match cond with
        | E_unop (U_not, e) -> refine acc e (not sense) fr
        | E_binop (B_and, l, r) when sense ->
            refine acc r true (refine acc l true fr)
        | E_binop (B_or, l, r) when not sense ->
            refine acc r false (refine acc l false fr)
        | E_binop (op, E_var x, rhs) ->
            refine_var acc x (if sense then op else negate op) rhs f
        | E_binop (op, lhs, E_var x) ->
            refine_var acc x (mirror (if sense then op else negate op)) lhs f
        | E_var x when Smap.mem x f ->
            refine_var acc x (if sense then B_ne else B_eq) (E_int 0) f
        | _ -> fr)
  in
  (* ---- statements ---- *)
  (* [exec_stmt] returns the post-frame and joins the statement subtree's
     may-writes into [sid_writes], [acc] and the returned map. *)
  let rec exec_block fname acc fr stmts =
    List.fold_left
      (fun (fr, w) s ->
        let fr', ws = exec_stmt fname acc fr s in
        (fr', Regions.map_join w ws))
      (fr, Regions.map_empty) stmts
  and exec_stmt fname acc fr (s : stmt) =
    match fr with
    | None -> (None, Regions.map_empty)
    | Some f ->
        let sub = ref Regions.map_empty in
        let fr' =
          match s.node with
          | S_assign (x, e) ->
              let v = eval sub f e in
              if Smap.mem x f then Some (Smap.add x v f)
              else begin
                (match gid x with
                | Some id -> write_global sub id (Regions.point 0) v
                | None -> ());
                fr
              end
          | S_store (a, i, e) ->
              let vi = eval sub f i in
              let v = eval sub f e in
              if not (Smap.mem a f) then
                (match gid a with
                | Some id -> write_global sub id (Regions.of_itv vi) v
                | None -> ());
              fr
          | S_expr e ->
              let (_ : Regions.itv) = eval sub f e in
              fr
          | S_return None -> None
          | S_return (Some e) ->
              raise_ret fname (eval sub f e);
              None
          | S_if (c, t, e) -> (
              let vc = eval sub f c in
              match truthiness vc with
              | `True ->
                  let fr', w = exec_block fname acc (refine sub c true fr) t in
                  sub := Regions.map_join !sub w;
                  fr'
              | `False ->
                  let fr', w = exec_block fname acc (refine sub c false fr) e in
                  sub := Regions.map_join !sub w;
                  fr'
              | `Unknown ->
                  let frt, wt = exec_block fname acc (refine sub c true fr) t in
                  let fre, we = exec_block fname acc (refine sub c false fr) e in
                  sub := Regions.map_join !sub (Regions.map_join wt we);
                  frame_join frt fre)
          | S_while (c, b) ->
              let rec fix head n =
                let out, w = exec_block fname acc (refine sub c true head) b in
                sub := Regions.map_join !sub w;
                let head' = frame_join head out in
                if frame_leq head' head then head
                else fix (if n >= 2 then frame_widen head head' else head') (n + 1)
              in
              let stable = fix fr 0 in
              (match stable with
              | Some f' ->
                  (* the guard itself runs once more on exit *)
                  let (_ : Regions.itv) = eval sub f' c in
                  ()
              | None -> ());
              refine sub c false stable
        in
        if s.sid >= 0 && s.sid < Array.length sid_writes then
          sid_writes.(s.sid) <- Regions.map_join sid_writes.(s.sid) !sub;
        acc := Regions.map_join !acc !sub;
        (fr', !sub)
  in
  (* ---- function-level fixpoint ---- *)
  let analyze_func (f : func) =
    if f.f_name = "main" || Hashtbl.mem called f.f_name then begin
      let frame0 =
        let with_params =
          match Hashtbl.find_opt params f.f_name with
          | Some (arr, _) ->
              List.fold_left
                (fun (m, i) x -> (Smap.add x arr.(i) m, i + 1))
                (Smap.empty, 0) f.f_params
              |> fst
          | None ->
              List.fold_left
                (fun m x -> Smap.add x Regions.itv_full m)
                Smap.empty f.f_params
        in
        List.fold_left
          (fun m l ->
            match l.v_typ with
            | T_int -> Smap.add l.v_name (Regions.itv_point l.v_init) m
            | T_array _ | T_void -> Smap.add l.v_name Regions.itv_full m)
          with_params f.f_locals
      in
      let acc = ref Regions.map_empty in
      let (_ : _ * Regions.map) =
        exec_block f.f_name acc (Some frame0) f.f_body
      in
      let old = summary_of f.f_name in
      (* Plain join: stores are clamped to their array's extent, so the
         summary lattice is finite — no widening needed (and widening
         here would leak +oo bounds past the clamp). *)
      let now = Regions.map_join old !acc in
      if not (Regions.map_leq now old) then begin
        changed := true;
        Hashtbl.replace summaries f.f_name now
      end
    end
  in
  while !changed && !round_no < max_rounds do
    changed := false;
    incr round_no;
    List.iter analyze_func p.funcs;
    Array.blit gval_pending 0 gval 0 n_globals
  done;
  { env; rounds = !round_no; summaries; sid_writes; gval }

let env r = r.env
let rounds r = r.rounds

let func_writes r f =
  match Hashtbl.find_opt r.summaries f with
  | Some m -> m
  | None -> Regions.map_empty

let main_writes r = func_writes r "main"

let stmt_writes r sid =
  if sid >= 0 && sid < Array.length r.sid_writes then r.sid_writes.(sid)
  else Regions.map_empty

let global_typ r name =
  match
    List.find_opt (fun g -> g.v_name = name) r.env.Minic.Check.program.globals
  with
  | Some g -> g.v_typ
  | None -> T_int

let write_region r name =
  match Minic.Check.global_id r.env name with
  | None -> Regions.bot
  | Some id ->
      let lo, hi = extent_of_typ (global_typ r name) in
      Regions.clamp ~lo ~hi (Regions.region_of (main_writes r) id)

let definitely_clean r name = Regions.is_bot (write_region r name)

let clean_cells r name =
  let lo, hi = extent_of_typ (global_typ r name) in
  Regions.complement_in ~lo ~hi (write_region r name)

let global_value r name =
  match Minic.Check.global_id r.env name with
  | Some id -> r.gval.(id)
  | None -> Regions.itv_full

let pp_writes r ppf m =
  Regions.pp_map
    ~name:(Effects.global_name r.env)
    ~is_array:(fun gid ->
      Minic.Check.is_global_array r.env (Effects.global_name r.env gid))
    ppf m

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (f : func) ->
         Format.fprintf ppf "@[<h>%-18s writes %a@]" f.f_name (pp_writes r)
           (func_writes r f.f_name)))
    r.env.Minic.Check.program.funcs
