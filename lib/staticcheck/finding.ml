type severity = Error | Warning

type t = { severity : severity; scope : string; path : string; reason : string }

let severity_name = function Error -> "error" | Warning -> "warning"

let of_spec (d : Spec_lint.diagnostic) =
  { severity = (match d.verdict with Spec_lint.Unsound -> Error | Spec_lint.Imprecise -> Warning);
    scope = "spec:" ^ d.phase;
    path = d.path;
    reason = d.reason }

let of_residual ~phase (f : Residual_lint.finding) =
  { severity = Warning;
    scope = "residual:" ^ phase;
    path = f.path;
    reason = f.reason }

let order a b =
  compare
    (a.scope, a.path, a.reason, a.severity)
    (b.scope, b.path, b.reason, b.severity)

let sort fs = List.sort_uniq order fs

(* Several passes (spec-lint, residual lint, elision planning, seeded
   demonstrations) can flag the same rule at the same location with
   differently worded reasons; a report should show each (rule, location)
   once, at its highest severity. Order ties break toward the first
   reason in sort order. *)
let dedup fs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let key = (f.scope, f.path) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.replace tbl key f
      | Some g ->
          let keep =
            match (f.severity, g.severity) with
            | Error, Warning -> f
            | Warning, Error -> g
            | _ -> if order f g < 0 then f else g
          in
          Hashtbl.replace tbl key keep)
    (sort fs);
  sort (Hashtbl.fold (fun _ f acc -> f :: acc) tbl [])

let has_errors = List.exists (fun f -> f.severity = Error)

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

let group_by_reason fs =
  let reasons =
    List.sort_uniq compare (List.map (fun f -> f.reason) fs)
  in
  List.map
    (fun reason -> (reason, sort (List.filter (fun f -> f.reason = reason) fs)))
    reasons

let pp ppf f =
  Format.fprintf ppf "[%s] %s %s: %s" (severity_name f.severity) f.scope
    f.path f.reason

(* Grouped by reason, like Guard.pp_report, so static findings and
   runtime guard reports read the same way. Duplicate (scope, path)
   findings collapse to their highest severity before grouping. *)
let pp_report ppf fs =
  match dedup fs with
  | [] -> Format.pp_print_string ppf "lint: no findings"
  | fs ->
      Format.fprintf ppf "@[<v>lint: %d error(s), %d warning(s)" (count Error fs)
        (count Warning fs);
      List.iter
        (fun (reason, group) ->
          Format.fprintf ppf "@,@[<v 2>%s (%d):" reason (List.length group);
          List.iter
            (fun f ->
              Format.fprintf ppf "@,[%s] %s %s" (severity_name f.severity)
                f.scope f.path)
            group;
          Format.fprintf ppf "@]")
        (group_by_reason fs);
      Format.fprintf ppf "@]"

(* ---- JSON ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf {|{"severity":"%s","scope":"%s","path":"%s","reason":"%s"}|}
    (severity_name f.severity) (json_escape f.scope) (json_escape f.path)
    (json_escape f.reason)

(* Version 2: added the schema_version field itself (version 1 envelopes
   carried no marker). Version 3: the [par] subcommand joined the family
   (its envelope carries schedule/oracle extras). Version 4: the [tool]
   field became parameterized — ickpt_serve emits the same envelope under
   its own name, and hash-collision findings (scope "store:collision")
   joined the per-finding vocabulary. Bump on any structural change to
   the envelope or to the per-finding object. *)
let schema_version = 4

let envelope ?(tool = "ickpt_lint") ~subcommand ?(extra = []) ~exit_code
    findings =
  Printf.sprintf
    {|{"tool":"%s","schema_version":%d,"subcommand":"%s","errors":%d,"warnings":%d,"findings":[%s],%s"exit_code":%d}|}
    (json_escape tool) schema_version (json_escape subcommand)
    (count Error findings)
    (count Warning findings)
    (String.concat "," (List.map to_json findings))
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf {|"%s":%s,|} (json_escape k) v)
          extra))
    exit_code
