(** The symbolic heap family denoted by a specialization class.

    A {!Jspec.Sclass.shape} describes not one heap but a {e family}: every
    conforming instance fixes, per [Tracked] node, whether its [modified]
    flag is set, and per [Nullable]/[Unknown]/[Clean_opaque] child, whether
    the child is present. This module makes that family explicit:

    - every shape node becomes a {e symbolic node} with a distinct
      identity (so its id, class and field slots are symbolic constants
      shared by every execution over the family);
    - every [Tracked] node contributes one boolean {e flag variable};
      [Clean] nodes have their flag pinned to [false];
    - every [Nullable] child contributes a {e presence variable};
    - every [Unknown] or [Clean_opaque] child becomes an {e opaque
      summary} — a fresh symbolic object of unknown class and layout,
      with its own presence variable, below which no structure is known.

    The variable space is finite, so a property of the whole family can be
    decided by enumerating valuations ({!iter_valuations}) — this is what
    {!Equiv} does to prove residual code byte-equivalent to the generic
    algorithm. A valuation can also be {!materialize}d as a concrete
    {!Ickpt_runtime.Model.obj} graph (optionally registered on a real
    {!Ickpt_runtime.Heap.t}), which is how counterexamples found
    symbolically are replayed on the real backends. *)

open Ickpt_runtime

(** One child slot of a symbolic node. *)
type slot =
  | S_null  (** statically null *)
  | S_node of int  (** [Exact]: always-present node, by node index *)
  | S_maybe of int * int  (** [Nullable]: (node index, presence variable) *)
  | S_opaque of int  (** [Unknown]/[Clean_opaque]: opaque summary index *)

type node = {
  idx : int;  (** dense preorder index; the root is 0 *)
  shape : Jspec.Sclass.shape;
  path : string;  (** guard-style, e.g. ["root.children[1]"] *)
  flag_var : int option;  (** the modified-flag variable of a [Tracked] node *)
  slots : slot array;
}

type opaque = {
  oidx : int;  (** dense opaque-summary index *)
  opath : string;
  oclean : bool;  (** true for [Clean_opaque]: whole subtree declared clean *)
  present_var : int;
}

(** What a boolean variable of the family stands for. *)
type var_kind =
  | Flag of int  (** modified flag of node [idx] *)
  | Present of int  (** presence of the [Nullable] node [idx] *)
  | Opaque_present of int  (** presence of opaque summary [oidx] *)

type t = {
  shape : Jspec.Sclass.shape;
  nodes : node array;
  opaques : opaque array;
  vars : var_kind array;  (** variable [v]'s meaning, [v] dense from 0 *)
}

val of_shape : Jspec.Sclass.shape -> t

val n_vars : t -> int

val var_name : t -> int -> string
(** Readable name, e.g. ["modified(root.children[0])"] or
    ["present(root.children[2])"]. *)

(** {1 Valuations} *)

type valuation = bool array
(** One member of the family: a truth value per variable. *)

val iter_valuations : t -> (valuation -> unit) -> unit
(** All [2^n_vars] valuations, in a fixed order (all-false first). *)

val pp_valuation : t -> Format.formatter -> valuation -> unit

(** {1 Materialization} *)

val materialize :
  ?heap:Heap.t -> ?first_id:int -> t -> valuation -> Model.obj
(** Build a concrete conforming instance: one object per present node,
    ids assigned in preorder from [first_id] (default 101, so ids never
    collide with class ids or field values), int fields set to distinct
    recognizable values, [modified] flags as the valuation dictates.
    Present opaque summaries are materialized as leaf-like objects of the
    root's class: dirty when [Unknown] (the worst case for byte
    divergence), clean when [Clean_opaque] (as the declaration promises).
    When [heap] is given the objects are registered on it via
    {!Heap.alloc_with_id}; two materializations of the same valuation
    always produce graphs with identical ids and field values, so a
    generic run on one and a specialized run on the other must write
    identical bytes. *)

val field_value : node_idx:int -> slot:int -> int
(** The deterministic int-field fill used by {!materialize} (exposed so
    tests can predict written bytes). Values are [>= 10_000] and distinct
    per (node, slot). *)
