(** Static write-barrier elision planner.

    Turns the {!Dirty_ai} may-write regions of the three phase models
    into an executable plan: which attribute-tree {e sites} (the
    side-effect lists, the BT cell, the ET cell) a phase provably never
    writes — so their write barriers and [modified]-flag maintenance can
    be compiled out for that phase — and how much of the runtime
    {!Jspec.Guard} check the same facts discharge.

    Soundness rests on invariant {b I8}: the static may-write region of
    a site must contain every cell the phase dynamically dirties. The
    planner only elides a site whose region is {e empty}; a region that
    is non-empty (even partially clean) keeps its barrier and yields a
    {!Finding.t} explaining what imprecision (or genuine modification)
    forces it to stay. {!Ickpt_analysis.Elide_oracle} re-verifies I8 and
    byte-identity of checkpoints dynamically on every workload. *)

type site = Lists | Bt | Et

val site_name : site -> string
(** ["se-lists"], ["bt"], ["et"]. *)

val all_sites : site list

val site_region : Phase_model.phase -> site -> Regions.t
(** The site's static may-write region over statement ids, from the
    memoized {!Dirty_ai} run of the phase model (inputs havoced per
    {!Phase_model.input_globals}). For [Lists] this is the join of the
    [se_reads] and [se_writes] regions. *)

val site_region_for : n_stmts:int -> Phase_model.phase -> site -> Regions.t
(** {!site_region} rescaled to a workload with [n_stmts] statements. The
    phase models use fixed 64-cell attribute arrays to abstract programs
    of any size; by convention the last model cell summarizes every
    statement at or beyond it, so a region reaching the last cell
    extends to [n_stmts - 1], and a smaller workload clamps. Emptiness —
    the elision criterion — is invariant under this rescaling. *)

type decision = {
  site : site;
  elide : bool;  (** barrier + flag maintenance compiled out *)
  region : Regions.t;  (** static may-write region over sids *)
  reason : string;
}

type plan = {
  phase : Phase_model.phase;
  decisions : decision list;  (** one per {!all_sites}, in order *)
  guard_shape : Jspec.Sclass.shape option;
      (** The declared shape with every statically discharged
          cleanliness check pruned ([Clean] status relaxed,
          [Clean_opaque] subtree walks dropped); [None] when nothing is
          left to check at run time. *)
  findings : Finding.t list;
      (** Why barriers or guard checks stay: [Error] for a declaration
          the region analysis contradicts (eliding would be unsound),
          [Warning] where imprecision leaves a partially-clean region
          that object-granularity barriers cannot exploit. *)
}

val plan : declared:Jspec.Sclass.shape -> Phase_model.phase -> plan
(** [declared] is the phase's declared specialization class (over the
    seven Attrs klasses, same tree as {!Infer.shape} builds), whose
    guard the plan prunes. *)

val elided : plan -> site list

val decision : plan -> site -> decision

val pp : Format.formatter -> plan -> unit

(** {1 Workload plans}

    The annotation-free pipeline ([Auto_spec]) elides at {e global}
    granularity over the {!Shape_infer} encoding: a global whose inferred
    per-phase may-write region is empty loses its write barrier for that
    phase (stores go through [Barrier.set_int_raw]); any non-empty region
    keeps it. The same I8 soundness contract applies, re-verified
    dynamically by [Ickpt_analysis.Elide_oracle]. *)

type wdecision = {
  wglobal : string;
  welide : bool;  (** barrier + flag maintenance compiled out *)
  wregion : Regions.t;  (** clamped may-write region of the global *)
  wreason : string;
}

type wplan = {
  wphase : string;  (** discovered phase name *)
  wdecisions : wdecision list;  (** one per global, declaration order *)
  wfindings : Finding.t list;
      (** [Warning] for partially-clean arrays: some cells are provably
          clean but a non-empty region keeps the barrier — the inferred
          shape still exploits the clean blocks. *)
}

val workload_plan :
  phase:string -> Shape_infer.encoding -> (string * Regions.t) list -> wplan
(** [workload_plan ~phase enc regions] with [regions] the per-global
    clamped may-write regions in declaration order. *)

val workload_plan_live :
  phase:string ->
  (string * Regions.t) list ->
  (string * Regions.t) list ->
  wplan
(** [workload_plan_live ~phase regions live]: the live-extended plan for
    {e minimized} runs. A global's barrier is elided when its may-write
    region is empty {e or} entirely dead at the phase's checkpoint
    boundary ([Regions.meet region live = Bot], write-only-before-death
    per {!Live}): the flags it would maintain guard state no minimized
    checkpoint records, and dropping them keeps demoted blocks from
    tripping later phases' cleanliness guards. Byte-identity runs must
    keep using {!workload_plan} — eliding a live barrier changes
    incremental segments by construction, which is exactly what
    [Elide_oracle.run_live]'s restore-equivalence (not byte-identity)
    tolerates and re-verifies. *)

val welided : wplan -> string list

val pp_wplan : Format.formatter -> wplan -> unit
