open Ickpt_runtime

type block = { b_index : int; b_lo : int; b_hi : int; b_klass : Model.klass }

type slot =
  | Scalar of Model.klass
  | Array of { header : Model.klass; blocks : block list; length : int }

type encoding = {
  enc_env : Minic.Check.env;
  schema : Schema.t;
  slots : (string * slot) list;
}

let max_blocks = 8
let base_block = 8

let block_size len =
  if len <= max_blocks * base_block then base_block
  else (len + max_blocks - 1) / max_blocks

let blocks_of len =
  let bsize = block_size len in
  let n = (len + bsize - 1) / bsize in
  List.init n (fun i ->
      let lo = i * bsize in
      (i, lo, min (len - 1) (lo + bsize - 1)))

let encode (env : Minic.Check.env) =
  let schema = Schema.create () in
  let klasses = Hashtbl.create 8 in
  let declare name ~ints ~children =
    match Hashtbl.find_opt klasses name with
    | Some k -> k
    | None ->
        let k = Schema.declare schema ~name ~ints ~children () in
        Hashtbl.replace klasses name k;
        k
  in
  let slots =
    List.map
      (fun (d : Minic.Ast.var_decl) ->
        let slot =
          match d.v_typ with
          | Minic.Ast.T_int -> Scalar (declare "WScalar" ~ints:1 ~children:0)
          | Minic.Ast.T_array len ->
              let blocks =
                List.map
                  (fun (i, lo, hi) ->
                    let sz = hi - lo + 1 in
                    { b_index = i;
                      b_lo = lo;
                      b_hi = hi;
                      b_klass =
                        declare
                          (Printf.sprintf "WBlk%d" sz)
                          ~ints:sz ~children:0 })
                  (blocks_of len)
              in
              let header =
                declare
                  (Printf.sprintf "WArr%d" (List.length blocks))
                  ~ints:1
                  ~children:(List.length blocks)
              in
              Array { header; blocks; length = len }
          | Minic.Ast.T_void -> assert false (* rejected by Check *)
        in
        (d.v_name, slot))
      env.Minic.Check.program.Minic.Ast.globals
  in
  { enc_env = env; schema; slots }

let globals enc = List.map fst enc.slots

let slot_of enc name =
  match List.assoc_opt name enc.slots with
  | Some s -> s
  | None -> invalid_arg ("Shape_infer.slot_of: unknown global " ^ name)

(* ---- shape synthesis ------------------------------------------------------ *)

let status_of region =
  if Regions.is_bot region then Jspec.Sclass.Clean else Jspec.Sclass.Tracked

let shape_of enc name region =
  match slot_of enc name with
  | Scalar k -> Jspec.Sclass.leaf ~status:(status_of region) k
  | Array { header; blocks; _ } ->
      let children =
        if Regions.is_bot region then
          (* The phase provably never writes the array: the whole payload
             is an opaque clean subtree — recorded by id in the header,
             never traversed. *)
          Array.map (fun _ -> Jspec.Sclass.Clean_opaque) (Array.of_list blocks)
        else
          Array.of_list
            (List.map
               (fun b ->
                 let br =
                   Regions.meet region (Regions.interval b.b_lo b.b_hi)
                 in
                 Jspec.Sclass.Exact
                   (Jspec.Sclass.leaf ~status:(status_of br) b.b_klass))
               blocks)
      in
      (* The header holds only the (immutable) length: always clean. All
         blocks are allocated with the array — children are never null,
         so the inferred nullability is Exact / Clean_opaque throughout. *)
      Jspec.Sclass.shape ~status:Jspec.Sclass.Clean header children

let tracked_blocks enc name region =
  match slot_of enc name with
  | Scalar _ -> []
  | Array { blocks; _ } ->
      if Regions.is_bot region then []
      else
        List.filter
          (fun b ->
            not
              (Regions.is_bot
                 (Regions.meet region (Regions.interval b.b_lo b.b_hi))))
          blocks

let pp_slot ppf (name, slot) =
  match slot with
  | Scalar k -> Format.fprintf ppf "%s : %s" name k.Model.kname
  | Array { header; blocks; length } ->
      Format.fprintf ppf "%s : %s[%d] = %d block(s) %s" name
        header.Model.kname length (List.length blocks)
        (String.concat ","
           (List.map (fun b -> b.b_klass.Model.kname) blocks))

let pp ppf enc =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list pp_slot)
    enc.slots
