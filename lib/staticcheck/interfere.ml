(* May-read/may-write interference analysis: the static scheduler behind
   Engine.analyze ~parallel. Footprints live on the Regions interval
   lattice; disjointness there is exact (Regions.disjoint), so a
   "schedule parallel" decision is a proof, and every may-overlap is a
   Finding-reported refusal that keeps the work serial. *)

open Minic

type footprint = {
  fp_reads : (string * Regions.t) list;
  fp_writes : (string * Regions.t) list;
}

(* ---- footprint plumbing ---------------------------------------------------- *)

let extent env name =
  let rec find = function
    | [] -> None
    | d :: rest -> if d.Ast.v_name = name then Some d.Ast.v_typ else find rest
  in
  match find env.Check.program.Ast.globals with
  | Some (Ast.T_array n) when n > 0 -> Some (0, n - 1)
  | Some (Ast.T_array _) -> Some (0, 0)
  | Some _ -> Some (0, 0)
  | None -> None

let clamp_named env name r =
  match extent env name with
  | Some (lo, hi) -> Regions.clamp ~lo ~hi r
  | None -> r

let assoc_region name l =
  match List.assoc_opt name l with Some r -> r | None -> Regions.bot

let assoc_add name r l =
  if Regions.is_bot r then l
  else
    match List.assoc_opt name l with
    | None -> l @ [ (name, r) ]
    | Some r' ->
        List.map (fun (n, x) -> if n = name then (n, Regions.join r' r) else (n, x)) l

(* Region map keyed by this env's gids -> name-keyed, clamped to extents. *)
let named_of_map env m =
  Regions.Gid_map.fold
    (fun gid r acc ->
      if Regions.is_bot r then acc
      else
        let name = Effects.global_name env gid in
        assoc_add name (clamp_named env name r) acc)
    m []

let seg_to_region = function
  | Effects.Cells cells -> Regions.of_list (Effects.Int_set.elements cells)
  | Effects.Whole -> Regions.top

let named_of_segs env m =
  Effects.Gid_map.fold
    (fun gid seg acc ->
      let name = Effects.global_name env gid in
      assoc_add name (clamp_named env name (seg_to_region seg)) acc)
    m []

let fp_region fp name =
  Regions.join (assoc_region name fp.fp_reads) (assoc_region name fp.fp_writes)

(* First global on which a write of one side meets the footprint of the
   other. Returns (global, writer's region, other side's region). *)
let footprint_conflict a b =
  let against writes other =
    List.find_map
      (fun (name, w) ->
        let o = fp_region other name in
        if Regions.disjoint w o then None else Some (name, w, o))
      writes
  in
  match against a.fp_writes b with
  | Some _ as c -> c
  | None -> against b.fp_writes a

let pp_named ppf l =
  let l = List.filter (fun (_, r) -> not (Regions.is_bot r)) l in
  if l = [] then Format.pp_print_string ppf "{}"
  else
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (name, r) ->
           if Regions.equal r (Regions.point 0) then
             Format.pp_print_string ppf name
           else Format.fprintf ppf "%s[%a]" name Regions.pp r))
      l

let pp_footprint ppf fp =
  Format.fprintf ppf "reads %a writes %a" pp_named fp.fp_reads pp_named
    fp.fp_writes

(* ---- schedule types -------------------------------------------------------- *)

module Schedule = struct
  type strip = {
    st_index : int;
    st_lo : int;
    st_hi : int;
    st_program : Ast.program;
    st_foot : footprint;
  }

  type sweep = {
    sw_func : string;
    sw_var : string;
    sw_lo : int;
    sw_hi : int;
    sw_strips : strip list;
  }

  type unit_plan = Serial of Ast.stmt | Par_sweep of sweep

  type phase_sched = {
    ps_phase : Phase_discover.phase;
    ps_foot : footprint;
    ps_group : int;
    ps_units : unit_plan list;
  }

  type t = {
    sc_domains : int;
    sc_phases : phase_sched list;
    sc_findings : Finding.t list;
    sc_seeded : bool;
    sc_par_sweeps : int;
    sc_refused_sweeps : int;
    sc_groups : int;
  }
end

open Schedule

(* ---- per-strip footprint evaluation ---------------------------------------- *)

(* A refusal mid-analysis aborts the sweep candidate; the reason lands in
   the Warning finding and the call stays serial. *)
exception Refuse of string

type ctx = {
  cx_env : Check.env;  (* the phase's one-round analysis env *)
  cx_dirty : Dirty_ai.result;  (* over cx_env *)
  cx_orig : Check.env;  (* the original program's env *)
  cx_live : Live.t;  (* over cx_orig *)
  mutable cx_reads : (string * Regions.t) list;
  mutable cx_writes : (string * Regions.t) list;
}

let add_read cx name r = cx.cx_reads <- assoc_add name r cx.cx_reads
let add_write cx name r = cx.cx_writes <- assoc_add name r cx.cx_writes

(* Transitive effect of one call: may-writes from the dirty analysis,
   may-reads from the liveness pass's upward-exposed-read summary. UER is
   exactly the right read set here — a cell the callee writes before
   reading is not exposed to other strips' writes, and it already sits in
   the write footprint. *)
let add_call_effects cx g =
  List.iter
    (fun (name, r) -> add_write cx name r)
    (named_of_map cx.cx_env (Dirty_ai.func_writes cx.cx_dirty g));
  List.iter
    (fun (name, r) -> add_read cx name r)
    (named_of_map cx.cx_orig (Live.func_uer cx.cx_live g))

(* Locals of the sweep callee: flow-sensitive interval per scalar. A local
   carrying a value from one iteration into the next would break at strip
   boundaries (each strip is a fresh activation), so reading a local
   before the body assigns it is a refusal, not an approximation. *)
type lstate = Unset | Set of Regions.itv

let cmp_itv = Regions.itv 0 1

let rec eval cx locals arrays e =
  match e with
  | Ast.E_int n -> Regions.itv_point n
  | Ast.E_var v -> (
      match List.assoc_opt v locals with
      | Some (Set i) -> i
      | Some Unset ->
          raise
            (Refuse
               (Printf.sprintf
                  "local %s may carry a value across iterations" v))
      | None ->
          if List.mem v arrays then
            raise (Refuse (Printf.sprintf "local array %s in body" v))
          else begin
            add_read cx v (clamp_named cx.cx_env v (Regions.point 0));
            Dirty_ai.global_value cx.cx_dirty v
          end)
  | Ast.E_index (a, i) ->
      let iv = eval cx locals arrays i in
      if List.mem_assoc a locals || List.mem a arrays then
        raise (Refuse (Printf.sprintf "local array %s in body" a));
      add_read cx a (clamp_named cx.cx_env a (Regions.of_itv iv));
      Dirty_ai.global_value cx.cx_dirty a
  | Ast.E_unop (Ast.U_neg, e) -> Regions.itv_neg (eval cx locals arrays e)
  | Ast.E_unop (Ast.U_not, e) ->
      ignore (eval cx locals arrays e);
      cmp_itv
  | Ast.E_binop (op, a, b) -> (
      let ia = eval cx locals arrays a in
      let ib = eval cx locals arrays b in
      match op with
      | Ast.B_add -> Regions.itv_add ia ib
      | Ast.B_sub -> Regions.itv_sub ia ib
      | Ast.B_mul -> Regions.itv_mul ia ib
      | Ast.B_div -> Regions.itv_div ia ib
      | Ast.B_mod -> Regions.itv_rem ia ib
      | Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge | Ast.B_eq | Ast.B_ne
      | Ast.B_and | Ast.B_or ->
          cmp_itv)
  | Ast.E_call (g, args) ->
      List.iter (fun a -> ignore (eval cx locals arrays a)) args;
      add_call_effects cx g;
      Regions.itv_full

let rec exec cx locals arrays s =
  match s.Ast.node with
  | Ast.S_assign (v, e) ->
      let iv = eval cx locals arrays e in
      if List.mem_assoc v locals then
        List.map (fun (n, st) -> if n = v then (n, Set iv) else (n, st)) locals
      else begin
        add_write cx v (clamp_named cx.cx_env v (Regions.point 0));
        locals
      end
  | Ast.S_store (a, i, e) ->
      if List.mem_assoc a locals || List.mem a arrays then
        raise (Refuse (Printf.sprintf "local array %s in body" a));
      let iv = eval cx locals arrays i in
      ignore (eval cx locals arrays e);
      add_write cx a (clamp_named cx.cx_env a (Regions.of_itv iv));
      locals
  | Ast.S_expr e ->
      ignore (eval cx locals arrays e);
      locals
  | Ast.S_if (c, t, f) ->
      ignore (eval cx locals arrays c);
      let lt = exec_block cx locals arrays t in
      let lf = exec_block cx locals arrays f in
      List.map2
        (fun (n, a) (_, b) ->
          match (a, b) with
          | Set ia, Set ib -> (n, Set (Regions.itv_join ia ib))
          | _ -> (n, Unset))
        lt lf
  | Ast.S_while _ -> raise (Refuse "nested loop in body")
  | Ast.S_return _ -> raise (Refuse "return in body")

and exec_block cx locals arrays b = List.fold_left (fun l s -> exec cx l arrays s) locals b

(* ---- sweep recognition ----------------------------------------------------- *)

(* Statically constant value of a bound expression: literals, globals
   whose flow-insensitive value approximation is a single point (set once,
   never written differently — the phase analysis havocs anything another
   phase may write, so a havoced bound is rejected here), and arithmetic
   over those. *)
let rec const_of cx e =
  match e with
  | Ast.E_int n -> Some n
  | Ast.E_var v -> (
      match extent cx.cx_env v with
      | None -> None (* a local: not a statically known bound *)
      | Some _ ->
          let iv = Dirty_ai.global_value cx.cx_dirty v in
          if iv.Regions.lo = iv.Regions.hi then Some iv.Regions.lo else None)
  | Ast.E_unop (Ast.U_neg, e) -> Option.map (fun n -> -n) (const_of cx e)
  | Ast.E_binop (op, a, b) -> (
      match (const_of cx a, const_of cx b) with
      | Some x, Some y -> (
          match op with
          | Ast.B_add -> Some (x + y)
          | Ast.B_sub -> Some (x - y)
          | Ast.B_mul -> Some (x * y)
          | Ast.B_div -> if y = 0 then None else Some (x / y)
          | Ast.B_mod -> if y = 0 then None else Some (x mod y)
          | _ -> None)
      | _ -> None)
  | _ -> None

let rec assigns_var x b =
  List.exists
    (fun s ->
      match s.Ast.node with
      | Ast.S_assign (v, _) -> v = x
      | Ast.S_if (_, t, f) -> assigns_var x t || assigns_var x f
      | Ast.S_while (_, w) -> assigns_var x w
      | _ -> false)
    b

(* The counted-sweep skeleton this analysis strips:
     f() {  x = lo;  while (x < hi) { B; x = x + 1; }  }
   with f nullary void, x a local of f, and lo/hi statically constant. *)
type candidate = {
  ca_func : Ast.func;
  ca_var : string;
  ca_lo : int;
  ca_hi : int;
  ca_body : Ast.block;  (* B, increment excluded *)
  ca_incr : Ast.stmt;
}

let recognize cx program fname =
  match Ast.find_func program fname with
  | None -> raise (Refuse "unknown function")
  | Some f ->
      if f.Ast.f_params <> [] || f.Ast.f_ret <> Ast.T_void then
        raise (Refuse "not a nullary void sweep");
      let is_local v =
        List.exists (fun d -> d.Ast.v_name = v) f.Ast.f_locals
      in
      (match f.Ast.f_body with
      | [ { Ast.node = Ast.S_assign (x, e_lo); _ };
          { Ast.node = Ast.S_while (Ast.E_binop (Ast.B_lt, Ast.E_var x', e_hi), wbody);
            _ } ]
        when x = x' && is_local x -> (
          match List.rev wbody with
          | { Ast.node =
                Ast.S_assign
                  (x'', Ast.E_binop (Ast.B_add, Ast.E_var x''', Ast.E_int 1));
              _ } as incr
            :: rev_b
            when x'' = x && x''' = x ->
              let b = List.rev rev_b in
              if assigns_var x b then
                raise (Refuse "induction variable reassigned in body");
              let lo =
                match const_of cx e_lo with
                | Some n -> n
                | None -> raise (Refuse "lower bound not statically constant")
              in
              let hi =
                match const_of cx e_hi with
                | Some n -> n
                | None -> raise (Refuse "upper bound not statically constant")
              in
              { ca_func = f; ca_var = x; ca_lo = lo; ca_hi = hi;
                ca_body = b; ca_incr = incr }
          | _ -> raise (Refuse "loop does not end in x = x + 1"))
      | _ -> raise (Refuse "body is not assign-then-single-while"))

(* ---- strip construction ---------------------------------------------------- *)

(* The strip's self-contained program: the sweep rewritten to constant
   bounds over exactly [s_lo, s_hi), called from a bare main. Constant
   bounds mean the strip re-reads no bound globals at run time, matching
   the footprint (which never includes them). *)
let strip_program program ca s_lo s_hi =
  let f = ca.ca_func in
  let f' =
    { f with
      Ast.f_body =
        [ Ast.stmt (Ast.S_assign (ca.ca_var, Ast.E_int s_lo));
          Ast.stmt
            (Ast.S_while
               ( Ast.E_binop (Ast.B_lt, Ast.E_var ca.ca_var, Ast.E_int s_hi),
                 ca.ca_body @ [ ca.ca_incr ] )) ] }
  in
  let funcs =
    List.filter_map
      (fun g ->
        if g.Ast.f_name = "main" then None
        else if g.Ast.f_name = f.Ast.f_name then Some f'
        else Some g)
      program.Ast.funcs
  in
  let main =
    { Ast.f_name = "main"; f_params = []; f_locals = [];
      f_body = [ Ast.stmt (Ast.S_expr (Ast.E_call (f.Ast.f_name, []))) ];
      f_ret = Ast.T_void }
  in
  Ast.number { program with Ast.funcs = funcs @ [ main ] }

let strip_footprint cx ca s_lo s_hi =
  cx.cx_reads <- [];
  cx.cx_writes <- [];
  let f = ca.ca_func in
  let arrays =
    List.filter_map
      (fun d ->
        match d.Ast.v_typ with
        | Ast.T_array _ -> Some d.Ast.v_name
        | _ -> None)
      f.Ast.f_locals
  in
  let locals =
    List.filter_map
      (fun d ->
        match d.Ast.v_typ with
        | Ast.T_array _ -> None
        | _ ->
            if d.Ast.v_name = ca.ca_var then
              Some (d.Ast.v_name, Set (Regions.itv s_lo (s_hi - 1)))
            else Some (d.Ast.v_name, Unset))
      f.Ast.f_locals
  in
  ignore (exec_block cx locals arrays ca.ca_body);
  { fp_reads = cx.cx_reads; fp_writes = cx.cx_writes }

let pp_region_to_string r = Format.asprintf "%a" Regions.pp r

(* Partition [lo, hi) into at most [domains] equal strips and prove every
   pair footprint-disjoint. *)
let build_sweep cx program domains ca =
  let span = ca.ca_hi - ca.ca_lo in
  if span < 1 then raise (Refuse "sweep executes no iterations");
  let n = min domains span in
  let strips =
    List.init n (fun i ->
        let s_lo = ca.ca_lo + (span * i / n) in
        let s_hi = ca.ca_lo + (span * (i + 1) / n) in
        { st_index = i; st_lo = s_lo; st_hi = s_hi;
          st_program = strip_program program ca s_lo s_hi;
          st_foot = strip_footprint cx ca s_lo s_hi })
  in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if j > i then
            match footprint_conflict si.st_foot sj.st_foot with
            | Some (name, r1, r2) ->
                raise
                  (Refuse
                     (Printf.sprintf
                        "strips %d and %d may conflict on %s: %s vs %s" i j
                        name
                        (pp_region_to_string r1)
                        (pp_region_to_string r2)))
            | None -> ())
        strips)
    strips;
  { sw_func = ca.ca_func.Ast.f_name; sw_var = ca.ca_var; sw_lo = ca.ca_lo;
    sw_hi = ca.ca_hi; sw_strips = strips }

(* ---- phase footprints and grouping ----------------------------------------- *)

let phase_footprint (pr : Auto_spec.phase_result) =
  { fp_reads = named_of_segs pr.Auto_spec.ph_env pr.Auto_spec.ph_effects.Effects.reads;
    fp_writes = named_of_map pr.Auto_spec.ph_env (Dirty_ai.main_writes pr.Auto_spec.ph_dirty) }

(* ---- the schedule ---------------------------------------------------------- *)

let refusal ~scope ~path reason =
  Finding.
    { severity = Warning; scope; path; reason }

let schedule ?(domains = 4) ?(seed_racy = false) (auto : Auto_spec.t) =
  let domains = max 1 domains in
  let findings = ref [] in
  let refused = ref 0 in
  let par_sweeps = ref 0 in
  let orig = auto.Auto_spec.a_env in
  let program = orig.Check.program in
  (* Per-phase units: round bodies partitioned into serial statements and
     provably disjoint sweeps. *)
  let units_of pr =
    let ph = pr.Auto_spec.ph in
    match ph.Phase_discover.p_kind with
    | Phase_discover.Setup -> []
    | Phase_discover.Round _ ->
        let cx =
          { cx_env = pr.Auto_spec.ph_env; cx_dirty = pr.Auto_spec.ph_dirty;
            cx_orig = orig; cx_live = auto.Auto_spec.a_live;
            cx_reads = []; cx_writes = [] }
        in
        List.map
          (fun s ->
            match s.Ast.node with
            | Ast.S_expr (Ast.E_call (fname, [])) -> (
                match build_sweep cx program domains (recognize cx program fname) with
                | sweep ->
                    incr par_sweeps;
                    Par_sweep sweep
                | exception Refuse reason ->
                    incr refused;
                    findings :=
                      refusal
                        ~scope:("par:" ^ ph.Phase_discover.p_name)
                        ~path:fname reason
                      :: !findings;
                    Serial s)
            | _ -> Serial s)
          ph.Phase_discover.p_body
  in
  (* Group consecutive phases that are pairwise non-interfering. A phase
     whose footprint writes a lifted array local never groups: the
     engine's phase units carry only scalar locals back to the master
     session, so an array-local update could not be reconciled. *)
  let groupable pr foot =
    not
      (List.exists
         (fun lifted ->
           Check.is_global_array pr.Auto_spec.ph_env lifted
           && not (Regions.is_bot (assoc_region lifted foot.fp_writes)))
         pr.Auto_spec.ph.Phase_discover.p_lifted)
  in
  let next_group = ref (-1) in
  let scheds, _ =
    List.fold_left
      (fun (acc, group) pr ->
        let foot = phase_footprint pr in
        let ph = pr.Auto_spec.ph in
        let units = units_of pr in
        (* A phase with a parallel sweep keeps its strip-level
           parallelism and stays a singleton group: grouping would demote
           it to whole-phase execution on one domain. *)
        let has_sweep =
          List.exists (function Par_sweep _ -> true | Serial _ -> false) units
        in
        let can_group = groupable pr foot && not has_sweep in
        let conflict =
          if can_group && group <> [] then
            List.find_map
              (fun (prev : phase_sched) ->
                match footprint_conflict prev.ps_foot foot with
                | Some (name, r1, r2) -> Some (prev, name, r1, r2)
                | None -> None)
              group
          else None
        in
        (match conflict with
        | Some (prev, name, r1, r2) ->
            findings :=
              refusal ~scope:"par:phases"
                ~path:
                  (prev.ps_phase.Phase_discover.p_name ^ "+"
                 ^ ph.Phase_discover.p_name)
                (Printf.sprintf "phases may interfere on %s: %s vs %s" name
                   (pp_region_to_string r1)
                   (pp_region_to_string r2))
              :: !findings
        | None -> ());
        let joins = can_group && group <> [] && conflict = None in
        let gid =
          if joins then !next_group
          else begin
            incr next_group;
            !next_group
          end
        in
        let sched =
          { ps_phase = ph; ps_foot = foot; ps_group = gid; ps_units = units }
        in
        let group =
          if joins then sched :: group
          else if can_group then [ sched ]
          else []
        in
        (sched :: acc, group))
      ([], []) auto.Auto_spec.a_phases
  in
  let scheds = List.rev scheds in
  (* Count groups of two or more phases. *)
  let groups =
    let tally = Hashtbl.create 8 in
    List.iter
      (fun ps ->
        Hashtbl.replace tally ps.ps_group
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally ps.ps_group)))
      scheds;
    Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) tally 0
  in
  (* seed_racy: widen the first parallel strip's executed range by one
     cell, after all static checks. The strip then writes a cell the next
     strip owns while every footprint still claims disjointness — only
     the dynamic observed-footprint check can notice. *)
  let seeded = ref false in
  let scheds =
    if not seed_racy then scheds
    else
      List.map
        (fun ps ->
          { ps with
            ps_units =
              List.map
                (fun u ->
                  match u with
                  | Par_sweep sw
                    when (not !seeded) && List.length sw.sw_strips >= 2 ->
                      seeded := true;
                      let widen st =
                        let bump f =
                          match f.Ast.f_body with
                          | [ a;
                              ({ Ast.node =
                                   Ast.S_while
                                     ( Ast.E_binop
                                         (Ast.B_lt, x, Ast.E_int hi),
                                       wb );
                                 _ } as w) ] ->
                              [ a;
                                { w with
                                  Ast.node =
                                    Ast.S_while
                                      ( Ast.E_binop
                                          (Ast.B_lt, x, Ast.E_int (hi + 1)),
                                        wb ) } ]
                          | body -> body
                        in
                        { st with
                          st_program =
                            { st.st_program with
                              Ast.funcs =
                                List.map
                                  (fun f ->
                                    if f.Ast.f_name = sw.sw_func then
                                      { f with Ast.f_body = bump f }
                                    else f)
                                  st.st_program.Ast.funcs } }
                      in
                      Par_sweep
                        { sw with
                          sw_strips =
                            (match sw.sw_strips with
                            | first :: rest -> widen first :: rest
                            | [] -> []) }
                  | u -> u)
                ps.ps_units })
        scheds
  in
  { sc_domains = domains; sc_phases = scheds;
    sc_findings = List.rev !findings; sc_seeded = !seeded;
    sc_par_sweeps = !par_sweeps; sc_refused_sweeps = !refused;
    sc_groups = groups }

(* ---- rendering ------------------------------------------------------------- *)

let pp ppf sc =
  Format.fprintf ppf
    "@[<v>parallel schedule: %d domain(s), %d parallel sweep(s), %d refused, %d phase group(s)%s"
    sc.sc_domains sc.sc_par_sweeps sc.sc_refused_sweeps sc.sc_groups
    (if sc.sc_seeded then ", RACY SEED INJECTED" else "");
  List.iter
    (fun ps ->
      Format.fprintf ppf "@,phase %d  %-24s group %d"
        ps.ps_phase.Phase_discover.p_index ps.ps_phase.Phase_discover.p_name
        ps.ps_group;
      Format.fprintf ppf "@,  %a" pp_footprint ps.ps_foot;
      List.iter
        (fun u ->
          match u with
          | Serial s -> Format.fprintf ppf "@,  serial  %a" Pp.pp_stmt s
          | Par_sweep sw ->
              Format.fprintf ppf "@,  sweep   %s()  %s = [%d, %d)  %d strip(s)"
                sw.sw_func sw.sw_var sw.sw_lo sw.sw_hi
                (List.length sw.sw_strips);
              List.iter
                (fun st ->
                  Format.fprintf ppf "@,    strip %d [%d, %d)  %a" st.st_index
                    st.st_lo st.st_hi pp_footprint st.st_foot)
                sw.sw_strips)
        ps.ps_units)
    sc.sc_phases;
  List.iter
    (fun f -> Format.fprintf ppf "@,%a" Finding.pp f)
    sc.sc_findings;
  Format.fprintf ppf "@]"
