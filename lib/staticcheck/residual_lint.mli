(** Dataflow lint over residual checkpoint programs.

    [Jspec.Pe] plus [Plan_opt.simplify] should leave no dead or redundant
    code in specialized routines; this pass verifies that, flagging what
    the partial evaluator failed to eliminate:

    - constant-condition tests (an unreachable branch);
    - tests whose both branches are empty, and empty let/loop bodies;
    - let bindings never used;
    - loops over a constant-empty range;
    - redundant [modified]-flag tests and resets — a test (or reset)
      whose outcome is already determined by an enclosing test on the
      same path, tracked through resets and calls. *)

type finding = { path : string; reason : string }

val lint : ?root:string -> Jspec.Cklang.stmt list -> finding list
(** All findings, sorted by path. [root] prefixes finding paths
    (default ["body"]). *)

val lint_result : Jspec.Pe.result -> finding list
(** Lint a specialization result's residual body (root ["checkpoint"]). *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> finding list -> unit
