(** Interprocedural read/write effect analysis over mini-C programs.

    For every function, a fixpoint over the call graph computes which
    globals a call may read or write, at array-segment granularity:
    stores through literal indices stay precise ([Cells]), computed
    indices widen to the whole array ([Whole]). Globals are identified by
    {!Minic.Check.env}'s global numbering.

    This is the may-effect skeleton the spec-lint builds on: a global a
    phase's entry point provably never writes is safe to declare [Clean]
    in its specialization class; one it may write is not. *)

module Int_set : Set.S with type elt = int
module Gid_map : Map.S with type key = int

type seg = Cells of Int_set.t | Whole

val seg_join : seg -> seg -> seg
val seg_equal : seg -> seg -> bool

type t = { reads : seg Gid_map.t; writes : seg Gid_map.t }

val empty : t
val join : t -> t -> t
val equal : t -> t -> bool

type summaries
(** Converged per-function transitive effects for one checked program. *)

val compute : Minic.Check.env -> summaries

val of_func : summaries -> string -> t
(** The transitive effect of one call to the function ([empty] for an
    unknown name). *)

val all : summaries -> (string * t) list
(** Every function with its summary, in program order. *)

val reads_name : Minic.Check.env -> t -> string -> bool
val writes_name : Minic.Check.env -> t -> string -> bool

val write_seg : Minic.Check.env -> t -> string -> seg option
(** The written segment of a global, by name; [None] if not written. *)

val global_name : Minic.Check.env -> int -> string

val pp : Minic.Check.env -> Format.formatter -> t -> unit
(** e.g. [reads {image[*], npixels} writes {kernel[0..8], temp[*]}]. *)
