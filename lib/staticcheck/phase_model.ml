type phase = Sea | Bta | Eta

let all = [ Sea; Bta; Eta ]

let name = function Sea -> "sea" | Bta -> "bta" | Eta -> "eta"

let g_se_reads = "se_reads"
let g_se_writes = "se_writes"
let g_bt = "bt"
let g_et = "et"

let attr_globals = [ g_se_reads; g_se_writes; g_bt; g_et ]

(* Globals every phase model shares. The four attribute arrays stand for
   the leaves of the Attrs tree (Figure 4): one cell per statement. The
   stmt_* tables are the analyzed program itself — read-only input. *)
let shared_decls =
  {|
int n_stmts = 64;
int n_funcs = 8;
int se_reads[64];
int se_writes[64];
int bt[64];
int et[64];
int stmt_kind[64];
int stmt_var[64];
int stmt_callee[64];
int changed = 0;
|}

(* Side-effect analysis: recompute each statement's read/write sets under
   the current function summaries, store them through change-detecting
   barriers, and fold the stored sets back into the summaries — exactly
   the structure of Ickpt_analysis.Sea.round. Only the se_* attribute
   arrays are written; bt/et are never touched. *)
let sea_src =
  shared_decls
  ^ {|
int summary_reads[8];
int summary_writes[8];

int reads_of(int s) {
  return stmt_var[s] + summary_reads[stmt_callee[s]];
}

int writes_of(int s) {
  if (stmt_kind[s] == 1) {
    return stmt_var[s] + summary_writes[stmt_callee[s]];
  }
  return summary_writes[stmt_callee[s]];
}

void store_effects(int s) {
  int r;
  int w;
  r = reads_of(s);
  w = writes_of(s);
  if (se_reads[s] != r) {
    se_reads[s] = r;
    changed = 1;
  }
  if (se_writes[s] != w) {
    se_writes[s] = w;
    changed = 1;
  }
}

void update_summary(int f) {
  int s;
  s = 0;
  while (s < n_stmts) {
    if (stmt_callee[s] == f) {
      if (summary_reads[f] < se_reads[s]) {
        summary_reads[f] = se_reads[s];
        changed = 1;
      }
      if (summary_writes[f] < se_writes[s]) {
        summary_writes[f] = se_writes[s];
        changed = 1;
      }
    }
    s = s + 1;
  }
}

void sea_round() {
  int s;
  int f;
  s = 0;
  while (s < n_stmts) {
    store_effects(s);
    s = s + 1;
  }
  f = 0;
  while (f < n_funcs) {
    update_summary(f);
    f = f + 1;
  }
}

int main() {
  changed = 1;
  while (changed > 0) {
    changed = 0;
    sea_round();
  }
  return se_reads[0] + se_writes[0];
}
|}

(* Binding-time analysis: chaotic iteration raising variable binding
   times from the division, annotating each statement's BT cell — the
   structure of Ickpt_analysis.Bta_phase.round. Writes only bt. *)
let bta_src =
  shared_decls
  ^ {|
int division[16];
int var_bt[16];
int fun_ctx[8];
int fun_ret[8];

int join(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

int expr_bt(int s) {
  return join(var_bt[stmt_var[s]], fun_ret[stmt_callee[s]]);
}

void raise_var(int v, int b) {
  if (var_bt[v] < b) {
    var_bt[v] = b;
    changed = 1;
  }
}

void annotate(int s, int b) {
  if (bt[s] != b) {
    bt[s] = b;
    changed = 1;
  }
}

void init_division() {
  int g;
  g = 0;
  while (g < 16) {
    if (division[g] > 0) {
      var_bt[g] = 1;
    } else {
      var_bt[g] = 2;
    }
    g = g + 1;
  }
}

void bta_round() {
  int s;
  int b;
  s = 0;
  while (s < n_stmts) {
    b = join(fun_ctx[stmt_callee[s]], expr_bt(s));
    raise_var(stmt_var[s], b);
    if (fun_ctx[stmt_callee[s]] < b) {
      fun_ctx[stmt_callee[s]] = b;
      changed = 1;
    }
    if (fun_ret[stmt_callee[s]] < b) {
      fun_ret[stmt_callee[s]] = b;
      changed = 1;
    }
    annotate(s, b);
    s = s + 1;
  }
}

int main() {
  init_division();
  changed = 1;
  while (changed > 0) {
    changed = 0;
    bta_round();
  }
  return bt[0];
}
|}

(* Evaluation-time analysis: like BTA but seeded from the converged
   binding times — it reads the bt cells (a statement BTA marked dynamic
   is run-time outright) and writes only et, the structure of
   Ickpt_analysis.Eta_phase.round. *)
let eta_src =
  shared_decls
  ^ {|
int division[16];
int var_et[16];
int fun_ctx[8];
int fun_ret[8];

int join(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

int expr_et(int s) {
  return join(var_et[stmt_var[s]], fun_ret[stmt_callee[s]]);
}

void raise_var(int v, int e) {
  if (var_et[v] < e) {
    var_et[v] = e;
    changed = 1;
  }
}

void annotate(int s, int e) {
  if (et[s] != e) {
    et[s] = e;
    changed = 1;
  }
}

void init_division() {
  int g;
  g = 0;
  while (g < 16) {
    if (division[g] > 0) {
      var_et[g] = 1;
    } else {
      var_et[g] = 2;
    }
    g = g + 1;
  }
}

void eta_round() {
  int s;
  int e;
  s = 0;
  while (s < n_stmts) {
    if (bt[s] == 2) {
      e = 2;
    } else {
      e = join(fun_ctx[stmt_callee[s]], expr_et(s));
    }
    raise_var(stmt_var[s], e);
    if (fun_ret[stmt_callee[s]] < e) {
      fun_ret[stmt_callee[s]] = e;
      changed = 1;
    }
    annotate(s, e);
    s = s + 1;
  }
}

int main() {
  init_division();
  changed = 1;
  while (changed > 0) {
    changed = 0;
    eta_round();
  }
  return et[0];
}
|}

let source = function Sea -> sea_src | Bta -> bta_src | Eta -> eta_src

let input_globals = function
  | Sea -> [ "stmt_kind"; "stmt_var"; "stmt_callee" ]
  | Bta -> [ "stmt_kind"; "stmt_var"; "stmt_callee"; "division" ]
  | Eta -> [ "stmt_kind"; "stmt_var"; "stmt_callee"; "division"; g_bt ]

let envs : (phase, Minic.Check.env) Hashtbl.t = Hashtbl.create 3

let env phase =
  match Hashtbl.find_opt envs phase with
  | Some e -> e
  | None ->
      let e = Minic.Check.check (Minic.Parser.parse (source phase)) in
      Hashtbl.add envs phase e;
      e

let program phase = (env phase).Minic.Check.program
