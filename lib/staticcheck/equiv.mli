(** Trace equivalence over the finite flag space: the decision procedure
    of the translation validator.

    For a specialization class, the boolean variables of its {!Symheap}
    (modified flags of [Tracked] nodes, presence of [Nullable] children
    and opaque summaries) span a finite family of symbolic heaps.
    {!check} runs the generic program and the residual code under {e
    every} valuation with {!Symexec} and compares the normalized emit
    traces and final flag states. Agreement on all valuations proves that
    on every conforming heap — whatever its ids and field values — the
    residual code writes exactly the bytes of the generic Figure-1
    algorithm and leaves the same flags behind; one disagreeing valuation
    is a {e counterexample}, reported with the diverging traces.

    A counterexample is abstract (a valuation); {!replay} makes it
    concrete: the valuation is {!Symheap.materialize}d twice into
    identical object graphs, the generic algorithm runs over one and the
    residual code over the other — through both the {!Jspec.Interp} and
    {!Jspec.Compile} execution environments — for two checkpoint rounds
    (the second round exposes divergent [modified]-flag resets, which
    write identical bytes in round one but corrupt the {e next}
    checkpoint). The replay confirms the symbolic verdict end-to-end on
    real heaps and real backends. *)

type mismatch = {
  valuation : Symheap.valuation;
  assignment : (string * bool) list;  (** readable variable assignment *)
  generic : Symexec.outcome;
  residual : Symexec.outcome;
  detail : string;  (** first divergence, human-readable *)
}

type verdict =
  | Equivalent of { vars : int; paths : int }
      (** byte-trace and flag-state equal on all [paths = 2^vars]
          valuations *)
  | Mismatch of mismatch
  | Inconclusive of string
      (** outside the symbolic domain ({!Symexec.Unverifiable}) or over
          the variable budget — {e not} a proof in either direction *)

val check :
  ?program:Jspec.Cklang.program ->
  ?max_vars:int ->
  Jspec.Sclass.shape -> Jspec.Cklang.stmt list -> verdict
(** Compare residual [stmts] against [program] (default
    {!Jspec.Generic_method.program}) over the shape's heap family.
    [max_vars] (default 16) bounds the exhaustive enumeration at
    [2^max_vars] paths; larger families yield [Inconclusive]. *)

type replay = {
  generic_bytes : string list;  (** one checkpoint body per round *)
  interp_bytes : (string list, string) result;
      (** residual rounds under {!Jspec.Interp}; [Error] is a runtime
          error (itself a divergence) *)
  compiled_bytes : (string list, string) result;
      (** residual rounds under {!Jspec.Compile} *)
  state_match : bool;
      (** residual-side heaps structurally equal to the generic-side heap
          (flags included) after all rounds *)
  diverged : bool;
      (** some byte round differs, a residual run errored, or the final
          states differ *)
}

val replay :
  ?rounds:int ->
  Jspec.Sclass.shape -> Jspec.Pe.result -> Symheap.valuation -> replay
(** Materialize the valuation and run [rounds] (default 2) checkpoint
    rounds of the generic algorithm and of the residual code. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_replay : Format.formatter -> replay -> unit
val pp_verdict : Format.formatter -> verdict -> unit
