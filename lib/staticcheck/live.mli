(** Interprocedural liveness analysis for checkpoint-set minimization.

    The dual of {!Dirty_ai}: where the dirty analysis over-approximates
    what a phase {e writes}, this pass over-approximates what the rest of
    the program still {e reads} — per array segment, on the same
    {!Regions} interval lattice. A cell that is dirty at a checkpoint
    boundary but dead (never read again before being overwritten, or
    unread by any later phase) is pure checkpoint weight: [Auto_spec]
    demotes its block from the specialized checkpointer and
    [Barrier_elide] drops the write barrier when a whole global is
    write-only-before-death.

    The analysis is backward and flow-sensitive over [main], with two
    per-function call summaries iterated to a fixpoint over the call
    graph:

    - {b UER} (upward-exposed reads, over-approximate): the global
      regions one call of the function may read before writing them —
      computed by a forward walk carrying an under-approximate
      already-written set, so [commit]-style copy loops don't expose the
      regions a preceding sweep provably filled.
    - {b MW} (must-write, under-approximate): the global regions one
      call certainly writes — unconditional scalar assignments,
      constant-index stores, callee must-writes, and {e sweep loops}
      ([x = lo; while (x < hi) { ... a[x] = e; ... x = x + 1 }] with
      constant bounds), which is what turns a per-cell copy loop into a
      range kill.

    The backward transfer is classic liveness lifted to regions:
    [L_before = (L_after \ MW) ∪ UER ∪ reads], with kills only where the
    write is certain (must-write summaries, constant store indices) and
    loop bodies iterated to a fixpoint on the finite clamped lattice.
    Array-store index and value reads are always generated — dead-store
    elimination of array writes would be unsound here, since a resumed
    run re-executes the index computation against restored state.

    Per checkpoint boundary (one per {!Phase_discover} phase) the pass
    records the regions live into the rest of the program: a [Setup]
    boundary sits after its body; a [Round] boundary is the loop-head
    fixpoint, havoc-conservative over any number of remaining
    iterations. Soundness contract (checked dynamically by
    [Ickpt_analysis.Elide_oracle.run_live]): every cell the concrete
    suffix reads before overwriting is contained in the boundary's live
    region, assuming each phase runs fault-free to completion — the same
    assumption the checkpoint driver itself makes. [main]'s locals live
    in the interpreter session, outside the checkpointed heap, and are
    not part of any boundary. *)

type t

val analyze :
  ?dirty:Dirty_ai.result ->
  Minic.Check.env ->
  Phase_discover.phase list ->
  t
(** Whole-program liveness over the {e original} program (not the
    one-round phase models): summary fixpoint, then one backward pass
    over [main]'s discovered phase structure. [dirty] supplies the
    flow-insensitive value approximation used to decide sweep bounds
    (globals whose value is a single point are constants); it defaults
    to [Dirty_ai.analyze env]. *)

val env : t -> Minic.Check.env

val rounds : t -> int
(** Summary fixpoint rounds taken — exposed for termination tests. *)

val boundary : t -> int -> (string * Regions.t) list
(** Live region per original global (declaration order, clamped to each
    global's extent) at the checkpoint boundary of the phase with the
    given [p_index]. {!Regions.Bot} = provably dead: no later read can
    observe this global's checkpointed value.
    @raise Invalid_argument on an unknown phase index. *)

val live_region : t -> int -> string -> Regions.t
(** One global's live region at one boundary; [Bot] for unknown names. *)

val func_uer : t -> string -> Regions.map
(** Converged upward-exposed-read summary of one call; empty for unknown
    functions. *)

val func_mw : t -> string -> Regions.map
(** Converged must-write summary (under-approximate). *)

val pp : Format.formatter -> t -> unit
(** Function summaries, then per-boundary live regions. *)

val pp_map : t -> Format.formatter -> Regions.map -> unit
(** Render a region map with this program's global names. *)
