(** Interference analysis for domain-parallel phase execution.

    The static trust story behind [Engine.analyze ~parallel]: decide,
    from may-read/may-write footprints on the {!Regions} interval
    lattice, which work of a discovered phase structure may execute on
    separate OCaml domains without the dirty logs interleaving
    unsoundly. Two levels:

    - {b Phase pairing}: consecutive top-level phases
      ({!Phase_discover}) whose footprints are pairwise disjoint —
      writes of each disjoint from the whole footprint (reads ∪ writes)
      of the other, shared read-only state allowed — form a parallel
      {e group}. Footprints are taken over each phase's one-round
      analysis program, so [main]'s lifted locals participate: two
      loops sharing a counter interfere even though the counter never
      lives in the checkpointed heap.
    - {b Strip partitioning}: inside a round phase, a body statement
      [f()] whose callee is a counted sweep
      ([x = lo; while (x < hi) {{ B; x = x + 1 }}] with statically
      constant bounds, from {!Dirty_ai}'s value approximation) is split
      into iteration strips. Each strip's footprint is evaluated with
      the induction variable bound to the strip's interval
      ({!Live}-style range reasoning); the strips parallelize only if
      every pair is footprint-disjoint.

    Every refusal — interfering phases, a conflicting strip pair, a
    sweep shape the range reasoning cannot bound — is a
    {!Finding.Warning} naming the conflicting region pair; the work
    stays serial. The dynamic dual (observed per-domain dirty/read
    sets must not intersect) is re-checked on every parallel run by
    [Ickpt_analysis.Elide_oracle.run_par]. *)

type footprint = {
  fp_reads : (string * Regions.t) list;
      (** may-read region per touched global (or lifted local), name-keyed *)
  fp_writes : (string * Regions.t) list;  (** may-write, same keying *)
}

val pp_footprint : Format.formatter -> footprint -> unit

val footprint_conflict :
  footprint -> footprint -> (string * Regions.t * Regions.t) option
(** The first global on which the two footprints interfere: a write
    region of one meets the read∪write region of the other. [None] means
    the footprints may run concurrently (common reads allowed). *)

module Schedule : sig
  type strip = {
    st_index : int;
    st_lo : int;
    st_hi : int;  (** executes iterations [st_lo, st_hi) *)
    st_program : Minic.Ast.program;
        (** self-contained: [main] calls the sweep rewritten to exactly
            this range (constant bounds, so the strip re-reads no bound
            globals) *)
    st_foot : footprint;
  }

  type sweep = {
    sw_func : string;  (** the nullary sweep callee *)
    sw_var : string;  (** its induction local *)
    sw_lo : int;
    sw_hi : int;  (** full range [sw_lo, sw_hi), statically constant *)
    sw_strips : strip list;  (** pairwise footprint-disjoint *)
  }

  type unit_plan =
    | Serial of Minic.Ast.stmt  (** executes on the master session *)
    | Par_sweep of sweep  (** strips fan out, logs replay in strip order *)

  type phase_sched = {
    ps_phase : Phase_discover.phase;
    ps_foot : footprint;  (** whole-phase footprint, lifted locals included *)
    ps_group : int;
        (** phases sharing a group id are pairwise non-interfering and
            may execute concurrently; groups are maximal runs of
            consecutive phases *)
    ps_units : unit_plan list;
        (** round phases: the body partitioned into serial statements
            and parallel sweeps; empty for setup phases *)
  }

  type t = {
    sc_domains : int;
    sc_phases : phase_sched list;
    sc_findings : Finding.t list;  (** refusals, [Warning] severity *)
    sc_seeded : bool;
        (** a strip range was widened by one cell ([seed_racy]) — the
            static footprints deliberately don't know *)
    sc_par_sweeps : int;  (** sweeps scheduled parallel *)
    sc_refused_sweeps : int;  (** sweep-shaped calls kept serial *)
    sc_groups : int;  (** multi-phase parallel groups *)
  }
end

val schedule :
  ?domains:int -> ?seed_racy:bool -> Auto_spec.t -> Schedule.t
(** Build the parallel schedule for an inferred program. [domains]
    (default 4, min 1) bounds strips per sweep. [seed_racy] widens the
    first parallel sweep's first strip by one cell {e after} all static
    checks — the executed ranges then overlap while the schedule still
    claims disjointness, which only the dynamic footprint oracle can
    catch; [sc_seeded] reports whether a sweep was actually available
    to seed. *)

val pp : Format.formatter -> Schedule.t -> unit
(** The schedule dump: per phase its group, units, strips and
    footprints, then the refusal findings. *)
