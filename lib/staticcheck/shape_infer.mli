(** Heap-shape inference for annotation-free programs.

    The specialized checkpointers of [Jspec] operate on {!Ickpt_runtime}
    object heaps described by hand-declared {!Jspec.Sclass.shape}s. For a
    bare mini-C program there is no heap and no declaration — this pass
    reconstructs both from the program's own storage declarations and the
    per-phase may-write regions of {!Dirty_ai}:

    - {!encode} maps every global to a compound object {e encoding}: a
      scalar becomes a one-field [WScalar] object; an array becomes a
      [WArr{i n}] header (holding the immutable length) whose [n] child
      slots point at fixed [WBlk{i sz}] block objects covering the cells.
      Block size adapts to the array (base 8, at most 8 blocks) so a
      shape never exceeds the translation validator's variable budget.
      Every global is a checkpoint root, in declaration order.
    - {!shape_of} turns one phase's may-write region for a global into
      the inferred specialization class of its encoding: a node is
      [Tracked] iff the region meets its cells, headers are always
      [Clean] (the length never changes), an array the phase provably
      never writes collapses to [Clean_opaque] children — the opaque
      subtree case — and since blocks are allocated with the array and
      never null, inferred children are [Exact], never [Nullable].

    The resulting shapes are exactly what {!Jspec.Pe.specialize} and
    {!Tv.verify} consume; [Auto_spec] drives that pipeline. *)

open Ickpt_runtime

type block = {
  b_index : int;
  b_lo : int;  (** first cell covered, inclusive *)
  b_hi : int;  (** last cell covered, inclusive *)
  b_klass : Model.klass;
}

type slot =
  | Scalar of Model.klass
  | Array of { header : Model.klass; blocks : block list; length : int }

type encoding = {
  enc_env : Minic.Check.env;
  schema : Schema.t;  (** the klasses, freshly declared per encoding *)
  slots : (string * slot) list;  (** one per global, declaration order *)
}

val encode : Minic.Check.env -> encoding

val globals : encoding -> string list
(** Root order: global declaration order. *)

val slot_of : encoding -> string -> slot
(** @raise Invalid_argument for a non-global name. *)

val shape_of : encoding -> string -> Regions.t -> Jspec.Sclass.shape
(** [shape_of enc g region] — the inferred shape of [g]'s encoding for a
    phase whose may-write region on [g] is [region] (clamped to [g]'s
    extent, {!Regions.Bot} when provably unwritten). *)

val tracked_blocks : encoding -> string -> Regions.t -> block list
(** The blocks the region meets — empty for scalars and clean arrays. *)

val block_size : int -> int
(** The block size used for an array of the given length (exposed for
    tests: [block_size 64 = 8], [block_size 1000 = 125]). *)

val pp : Format.formatter -> encoding -> unit
