open Minic

type kind = Setup | Round of { cond : Ast.expr }

type phase = {
  p_index : int;
  p_name : string;
  p_kind : kind;
  p_body : Ast.block;
  p_calls : string list;
  p_program : Ast.program;
  p_lifted : string list;
}

let is_round p = match p.p_kind with Round _ -> true | Setup -> false

(* ---- call collection (for naming) ----------------------------------------- *)

let rec expr_calls acc = function
  | Ast.E_int _ | Ast.E_var _ -> acc
  | Ast.E_index (_, e) | Ast.E_unop (_, e) -> expr_calls acc e
  | Ast.E_binop (_, l, r) -> expr_calls (expr_calls acc l) r
  | Ast.E_call (g, args) ->
      List.fold_left expr_calls (if List.mem g acc then acc else g :: acc) args

let rec stmt_calls acc (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.S_assign (_, e) | Ast.S_expr e -> expr_calls acc e
  | Ast.S_store (_, i, e) -> expr_calls (expr_calls acc i) e
  | Ast.S_if (c, t, e) ->
      List.fold_left stmt_calls
        (List.fold_left stmt_calls (expr_calls acc c) t)
        e
  | Ast.S_while (c, b) -> List.fold_left stmt_calls (expr_calls acc c) b
  | Ast.S_return None -> acc
  | Ast.S_return (Some e) -> expr_calls acc e

let calls_of stmts = List.rev (List.fold_left stmt_calls [] stmts)

(* ---- local lifting --------------------------------------------------------- *)

(* Rename a lifted local of [main] when its name collides with an
   existing global: the lifted copy becomes a global itself, and global
   names must stay unique. *)
let lift_name globals name =
  let taken n = List.exists (fun (g : Ast.var_decl) -> g.v_name = n) globals in
  let rec fresh n = if taken n then fresh (n ^ "'") else n in
  fresh name

let rec subst_expr ren = function
  | Ast.E_int _ as e -> e
  | Ast.E_var x as e -> (
      match List.assoc_opt x ren with
      | Some x' -> Ast.E_var x'
      | None -> e)
  | Ast.E_index (a, i) ->
      let a = match List.assoc_opt a ren with Some a' -> a' | None -> a in
      Ast.E_index (a, subst_expr ren i)
  | Ast.E_unop (op, e) -> Ast.E_unop (op, subst_expr ren e)
  | Ast.E_binop (op, l, r) ->
      Ast.E_binop (op, subst_expr ren l, subst_expr ren r)
  | Ast.E_call (g, args) -> Ast.E_call (g, List.map (subst_expr ren) args)

(* Substitute renamed locals and neutralize [return] statements: a return
   only ends execution early, so replacing it by an effect-evaluation of
   its expression lets the may-analyses see every statement of the round
   — an over-approximation, which is the sound direction — while keeping
   the expression's {e reads} visible (the interference analysis needs
   them: a trailing [return table[0]] really does read [table]). *)
let rec subst_stmt ren (s : Ast.stmt) : Ast.stmt list =
  match s.Ast.node with
  | Ast.S_assign (x, e) ->
      let x = match List.assoc_opt x ren with Some x' -> x' | None -> x in
      [ Ast.stmt (Ast.S_assign (x, subst_expr ren e)) ]
  | Ast.S_store (a, i, e) ->
      let a = match List.assoc_opt a ren with Some a' -> a' | None -> a in
      [ Ast.stmt (Ast.S_store (a, subst_expr ren i, subst_expr ren e)) ]
  | Ast.S_expr e -> [ Ast.stmt (Ast.S_expr (subst_expr ren e)) ]
  | Ast.S_if (c, t, e) ->
      [ Ast.stmt
          (Ast.S_if
             ( subst_expr ren c,
               List.concat_map (subst_stmt ren) t,
               List.concat_map (subst_stmt ren) e )) ]
  | Ast.S_while (c, b) ->
      [ Ast.stmt
          (Ast.S_while (subst_expr ren c, List.concat_map (subst_stmt ren) b)) ]
  | Ast.S_return None -> []
  | Ast.S_return (Some e) -> [ Ast.stmt (Ast.S_expr (subst_expr ren e)) ]

(* The one-round analysis program of a phase: same globals and functions,
   [main]'s locals lifted to (fresh, zero-initialized) globals, and a new
   [main] executing exactly one round. For a [Round] phase the guard is
   evaluated for effect first — calls in a loop guard are effects of the
   round too (and of the final, false, evaluation, which the runtime
   attributes to the same phase). *)
let round_program (program : Ast.program) (main : Ast.func) kind body =
  let ren =
    List.map
      (fun (l : Ast.var_decl) ->
        (l.v_name, lift_name program.Ast.globals l.v_name))
      main.Ast.f_locals
  in
  let lifted =
    List.map
      (fun (l : Ast.var_decl) ->
        { Ast.v_name = List.assoc l.Ast.v_name ren;
          v_typ = l.Ast.v_typ;
          v_init = 0 })
      main.Ast.f_locals
  in
  let body' = List.concat_map (subst_stmt ren) body in
  let body' =
    match kind with
    | Setup -> body'
    | Round { cond } -> Ast.stmt (Ast.S_expr (subst_expr ren cond)) :: body'
  in
  let main' =
    { Ast.f_name = "main";
      f_params = [];
      f_locals = [];
      f_body = body';
      f_ret = Ast.T_void }
  in
  let funcs =
    List.filter (fun (f : Ast.func) -> f.Ast.f_name <> "main") program.Ast.funcs
  in
  let p =
    Ast.number
      { Ast.globals = program.Ast.globals @ lifted; funcs = funcs @ [ main' ] }
  in
  (p, List.map snd ren)

(* ---- discovery ------------------------------------------------------------- *)

let base_name kind calls =
  let prefix = match kind with Setup -> "setup" | Round _ -> "loop" in
  match calls with
  | [] -> prefix
  | _ ->
      let shown, rest =
        if List.length calls <= 3 then (calls, 0)
        else (List.filteri (fun i _ -> i < 3) calls, List.length calls - 3)
      in
      Printf.sprintf "%s:%s%s" prefix
        (String.concat "+" shown)
        (if rest > 0 then Printf.sprintf "+%d" rest else "")

let discover (env : Check.env) =
  let program = env.Check.program in
  let main =
    match Ast.find_func program "main" with
    | Some f -> f
    | None -> invalid_arg "Phase_discover.discover: no main"
  in
  let mk kind body =
    let p_program, p_lifted = round_program program main kind body in
    { p_index = 0;
      p_name = "";
      p_kind = kind;
      p_body = body;
      p_calls = calls_of body;
      p_program;
      p_lifted }
  in
  (* Partition main's top level: every [while] is a round phase (one
     checkpoint per iteration); maximal runs of other statements between
     loops are single-round setup phases. *)
  let rec partition acc group = function
    | [] -> List.rev (close acc group)
    | ({ Ast.node = Ast.S_while (cond, body); _ } : Ast.stmt) :: rest ->
        partition (mk (Round { cond }) body :: close acc group) [] rest
    | s :: rest -> partition acc (s :: group) rest
  and close acc group =
    match group with [] -> acc | g -> mk Setup (List.rev g) :: acc
  in
  let phases = partition [] [] main.Ast.f_body in
  (* An empty main still gets one (empty) setup phase: the driver takes
     its base checkpoint and one empty round — never zero phases. *)
  let phases = if phases = [] then [ mk Setup [] ] else phases in
  (* Index and name the phases; duplicate base names get a #k suffix so
     reports stay unambiguous. *)
  let seen = Hashtbl.create 8 in
  List.mapi
    (fun i p ->
      let base = base_name p.p_kind p.p_calls in
      let n = try Hashtbl.find seen base with Not_found -> 0 in
      Hashtbl.replace seen base (n + 1);
      let name = if n = 0 then base else Printf.sprintf "%s#%d" base (n + 1) in
      { p with p_index = i; p_name = name })
    phases

let pp ppf p =
  Format.fprintf ppf "@[<h>phase %d %-24s %s, %d statement(s)%s@]" p.p_index
    p.p_name
    (match p.p_kind with
    | Setup -> "setup (one round)"
    | Round _ -> "loop (one checkpoint per iteration)")
    (List.length p.p_body)
    (match p.p_calls with
    | [] -> ""
    | c -> ", calls " ^ String.concat ", " c)
