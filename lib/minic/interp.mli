(** Reference interpreter for the simplified C. Used by tests (the
    generated workloads actually run) and by the examples to show that the
    analyzed program is a real program, not a prop.

    Global state is accessed through a pluggable {!global_store}, so the
    same evaluator can run against a plain in-memory table (the default)
    or against a checkpointable heap whose setters carry write barriers
    (see [Ickpt_analysis.Wheap] — the annotation-free inferred
    checkpointing runtime). Locals always stay concrete; only globals are
    checkpointable state. *)

exception Runtime_error of string
(** Division by zero, out-of-bounds access, missing return value, or
    exceeding the step budget. *)

type global_store = {
  gs_get : string -> int;  (** scalar global read *)
  gs_set : string -> int -> unit;  (** scalar global write *)
  gs_get_cell : string -> int -> int;  (** array read, index pre-checked *)
  gs_set_cell : string -> int -> int -> unit;
  gs_length : string -> int;
      (** array extent, for the interpreter's bounds checks — store
          implementations never see an out-of-bounds index *)
}

val hashtable_store : Ast.program -> global_store
(** The default concrete store: scalars from their initializers, arrays
    zeroed, no instrumentation. *)

type outcome = {
  return_value : int option;  (** [main]'s return, if it returned a value *)
  steps : int;  (** statements executed *)
  globals : (string * int) list;  (** final scalar global values *)
}

val run : ?max_steps:int -> Ast.program -> outcome
(** Execute [main] (no arguments). [max_steps] defaults to 10,000,000.
    @raise Runtime_error as documented; @raise Check_error via the implied
    {!Check.check}. *)

val eval_function :
  ?max_steps:int -> Ast.program -> string -> int list -> int option
(** Call one function with scalar arguments on fresh global state. *)

(** Incremental execution of [main], statement group by statement group —
    the driver hook the checkpoint-round runtime needs: execute one
    discovered phase round, checkpoint, repeat. The session owns [main]'s
    locals, so a loop counter kept in a local survives across
    [exec_block] calls exactly as it would in one uninterrupted run. *)
module Session : sig
  type t

  exception Halted of int option
  (** A [return] executed at [main]'s top level; carries the value.
      Further [exec_block] calls would re-run statements — the driver
      must stop. *)

  val start : ?max_steps:int -> ?store:global_store -> Ast.program -> t
  (** Check the program and set up [main]'s activation; nothing executes.
      [store] defaults to {!hashtable_store}. *)

  val exec_block : t -> Ast.block -> unit
  (** Execute statements in [main]'s scope. @raise Halted on return. *)

  val eval : t -> Ast.expr -> int
  (** Evaluate an expression in [main]'s scope (e.g. a loop guard). *)

  val steps : t -> int

  val final_globals : t -> (string * int) list

  val locals : t -> (string * int) list
  (** Current scalar values of [main]'s locals, sorted by name — what a
      parallel phase unit must carry back to the master session. *)

  val set_local : t -> string -> int -> unit
  (** Overwrite one scalar local. @raise Runtime_error on arrays or
      unknown names. *)
end
