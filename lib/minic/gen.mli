(** Workload generator: deterministic construction of the analysis engine's
    input programs. {!image_program} produces the analog of the paper's
    "750-line image manipulation program" (Section 4.3) — a pipeline of
    convolution filters, histogram and contrast passes over a global image
    buffer; the size scales with [n_filters].

    The generated programs are well-formed ({!Check.check} passes) and
    executable ({!Interp.run} terminates). *)

val image_program : ?width:int -> ?height:int -> ?n_filters:int -> unit -> Ast.program
(** Defaults: [width = 24], [height = 16], [n_filters = 15] — about 750
    non-blank source lines when printed with {!Pp.pp_program}. *)

val small_program : unit -> Ast.program
(** A ~40-line program exercising every statement form, for tests. *)

val static_globals : string list
(** The globals a specializer would treat as known at specialization time
    (dimensions, kernels, thresholds) — the initial division handed to the
    binding-time analysis. The image payload and the noise seed are
    dynamic. *)

val random_program : seed:int -> unit -> Ast.program
(** A deterministically random annotation-free workload (same seed, same
    program): 2–4 scalars, 1–3 arrays, worker functions storing through
    literal, affine and value-dependent indices under bounded loops, and
    a [main] of optional setup calls plus one or two checkpoint-round
    loops. Always checks, terminates, stays in bounds, and keeps scalars
    non-negative — the property-test input for the automatic inference
    pipeline (invariant I8 with zero declarations). *)
