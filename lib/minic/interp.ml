open Ast

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type value = V_int of int ref | V_array of int array

type global_store = {
  gs_get : string -> int;
  gs_set : string -> int -> unit;
  gs_get_cell : string -> int -> int;
  gs_set_cell : string -> int -> int -> unit;
  gs_length : string -> int;
}

type outcome = {
  return_value : int option;
  steps : int;
  globals : (string * int) list;
}

exception Return of int option

let make_store decls =
  let store = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let v =
        match d.v_typ with
        | T_int -> V_int (ref d.v_init)
        | T_array len ->
            if len <= 0 then fail "array %s has non-positive length" d.v_name;
            V_array (Array.make len 0)
        | T_void -> fail "void variable %s" d.v_name
      in
      Hashtbl.replace store d.v_name v)
    decls;
  store

let hashtable_store (p : program) =
  let store = make_store p.globals in
  let scalar x =
    match Hashtbl.find_opt store x with
    | Some (V_int r) -> r
    | Some (V_array _) -> fail "array %s used as scalar" x
    | None -> fail "unbound global %s" x
  in
  let array x =
    match Hashtbl.find_opt store x with
    | Some (V_array a) -> a
    | Some (V_int _) -> fail "scalar %s used as array" x
    | None -> fail "unbound global %s" x
  in
  { gs_get = (fun x -> !(scalar x));
    gs_set = (fun x v -> scalar x := v);
    gs_get_cell = (fun a i -> (array a).(i));
    gs_set_cell = (fun a i v -> (array a).(i) <- v);
    gs_length = (fun a -> Array.length (array a)) }

(* The machine state shared by whole-program runs and phase-driven
   sessions: the program, the (pluggable) global store, and the step
   budget. Locals stay concrete per activation — only globals go through
   the store, which is what lets a checkpointable heap stand in for
   them. *)
type machine = {
  program : program;
  store : global_store;
  max_steps : int;
  mutable steps : int;
}

let budget m =
  m.steps <- m.steps + 1;
  if m.steps > m.max_steps then fail "step budget exhausted (%d)" m.max_steps

(* A variable reference resolved against the enclosing activation:
   locals (and parameters) win over globals, as in C. *)
let lookup_local locals x = Hashtbl.find_opt locals x

let rec call m fname args =
  let f =
    match find_func m.program fname with
    | Some f -> f
    | None -> fail "undefined function %s" fname
  in
  if List.length args <> List.length f.f_params then
    fail "%s: arity mismatch" fname;
  let locals = make_store f.f_locals in
  List.iter2
    (fun name v -> Hashtbl.replace locals name (V_int (ref v)))
    f.f_params args;
  match exec_block m ~fname ~locals f.f_body with
  | () -> None
  | exception Return v -> v

and exec_block m ~fname ~locals b = List.iter (exec_stmt m ~fname ~locals) b

and eval m ~fname ~locals e =
  let eval e = eval m ~fname ~locals e in
  match e with
  | E_int n -> n
  | E_var x -> (
      match lookup_local locals x with
      | Some (V_int r) -> !r
      | Some (V_array _) -> fail "%s: array %s used as scalar" fname x
      | None -> m.store.gs_get x)
  | E_index (a, i) -> (
      let i = eval i in
      match lookup_local locals a with
      | Some (V_array arr) ->
          if i < 0 || i >= Array.length arr then
            fail "%s: %s[%d] out of bounds (length %d)" fname a i
              (Array.length arr);
          arr.(i)
      | Some (V_int _) -> fail "%s: scalar %s used as array" fname a
      | None ->
          let len = m.store.gs_length a in
          if i < 0 || i >= len then
            fail "%s: %s[%d] out of bounds (length %d)" fname a i len;
          m.store.gs_get_cell a i)
  | E_unop (U_neg, e) -> -eval e
  | E_unop (U_not, e) -> if eval e = 0 then 1 else 0
  | E_binop (op, l, r) -> (
      match op with
      | B_and -> if eval l = 0 then 0 else if eval r <> 0 then 1 else 0
      | B_or -> if eval l <> 0 then 1 else if eval r <> 0 then 1 else 0
      | _ ->
          let l = eval l and r = eval r in
          let nz b = if b then 1 else 0 in
          (match op with
          | B_add -> l + r
          | B_sub -> l - r
          | B_mul -> l * r
          | B_div ->
              if r = 0 then fail "%s: division by zero" fname else l / r
          | B_mod ->
              if r = 0 then fail "%s: modulo by zero" fname else l mod r
          | B_lt -> nz (l < r)
          | B_le -> nz (l <= r)
          | B_gt -> nz (l > r)
          | B_ge -> nz (l >= r)
          | B_eq -> nz (l = r)
          | B_ne -> nz (l <> r)
          | B_and | B_or -> assert false))
  | E_call (g, args) -> (
      let args = List.map (fun a -> eval a) args in
      match call m g args with
      | Some v -> v
      | None -> fail "%s: void call to %s used as value" fname g)

and exec_stmt m ~fname ~locals s =
  let eval e = eval m ~fname ~locals e in
  budget m;
  match s.node with
  | S_assign (x, e) -> (
      let v = eval e in
      match lookup_local locals x with
      | Some (V_int r) -> r := v
      | Some (V_array _) -> fail "%s: array %s used as scalar" fname x
      | None -> m.store.gs_set x v)
  | S_store (a, i, e) -> (
      let i = eval i in
      match lookup_local locals a with
      | Some (V_array arr) ->
          if i < 0 || i >= Array.length arr then
            fail "%s: %s[%d] out of bounds (length %d)" fname a i
              (Array.length arr);
          arr.(i) <- eval e
      | Some (V_int _) -> fail "%s: scalar %s used as array" fname a
      | None ->
          let len = m.store.gs_length a in
          if i < 0 || i >= len then
            fail "%s: %s[%d] out of bounds (length %d)" fname a i len;
          m.store.gs_set_cell a i (eval e))
  | S_expr e -> (
      match e with
      | E_call (g, args) ->
          ignore (call m g (List.map (fun a -> eval a) args))
      | _ -> ignore (eval e))
  | S_if (c, t, e) ->
      if eval c <> 0 then exec_block m ~fname ~locals t
      else exec_block m ~fname ~locals e
  | S_while (c, b) ->
      (* Charge the budget per loop iteration, not just once for the
         while statement itself — an empty loop body must still hit
         the step limit. *)
      while eval c <> 0 do
        budget m;
        exec_block m ~fname ~locals b
      done
  | S_return None -> raise (Return None)
  | S_return (Some e) -> raise (Return (Some (eval e)))

let final_globals (p : program) store =
  List.filter_map
    (fun d ->
      match d.v_typ with
      | T_int -> Some (d.v_name, store.gs_get d.v_name)
      | _ -> None)
    p.globals

let exec ?(max_steps = 10_000_000) (p : program) fname args =
  let env = Check.check p in
  ignore env;
  let m = { program = p; store = hashtable_store p; max_steps; steps = 0 } in
  let return_value = call m fname args in
  { return_value; steps = m.steps; globals = final_globals p m.store }

let run ?max_steps p = exec ?max_steps p "main" []

let eval_function ?max_steps p fname args =
  (exec ?max_steps p fname args).return_value

module Session = struct
  type t = { m : machine; main_locals : (string, value) Hashtbl.t }

  exception Halted of int option

  let start ?(max_steps = 10_000_000) ?store (p : program) =
    let env = Check.check p in
    ignore env;
    let store = match store with Some s -> s | None -> hashtable_store p in
    let main =
      match find_func p "main" with
      | Some f -> f
      | None -> fail "undefined function main"
    in
    if main.f_params <> [] then fail "main: takes no arguments";
    { m = { program = p; store; max_steps; steps = 0 };
      main_locals = make_store main.f_locals }

  let exec_block t b =
    match exec_block t.m ~fname:"main" ~locals:t.main_locals b with
    | () -> ()
    | exception Return v -> raise (Halted v)

  let eval t e = eval t.m ~fname:"main" ~locals:t.main_locals e

  let steps t = t.m.steps

  let final_globals t = final_globals t.m.program t.m.store

  let locals t =
    Hashtbl.fold
      (fun name v acc ->
        match v with V_int r -> (name, !r) :: acc | V_array _ -> acc)
      t.main_locals []
    |> List.sort compare

  let set_local t name v =
    match Hashtbl.find_opt t.main_locals name with
    | Some (V_int r) -> r := v
    | Some (V_array _) -> fail "array local %s set as scalar" name
    | None -> fail "unbound local %s" name
end
