open Ast

(* Combinators for building program text concisely. *)
let v x = E_var x
let n k = E_int k
let ( +: ) a b = E_binop (B_add, a, b)
let ( -: ) a b = E_binop (B_sub, a, b)
let ( *: ) a b = E_binop (B_mul, a, b)
let ( /: ) a b = E_binop (B_div, a, b)
let ( %: ) a b = E_binop (B_mod, a, b)
let ( <: ) a b = E_binop (B_lt, a, b)
let ( >: ) a b = E_binop (B_gt, a, b)
let ( >=: ) a b = E_binop (B_ge, a, b)
let ( ==: ) a b = E_binop (B_eq, a, b)
let idx a e = E_index (a, e)
let callv f args = E_call (f, args)
let assign x e = stmt (S_assign (x, e))
let store a i e = stmt (S_store (a, i, e))
let call f args = stmt (S_expr (E_call (f, args)))
let if_ c t e = stmt (S_if (c, t, e))
let while_ c b = stmt (S_while (c, b))
let return e = stmt (S_return (Some e))
let return_void = stmt (S_return None)
let local ?(init = 0) name = { v_name = name; v_typ = T_int; v_init = init }

let func ?(ret = T_void) name params locals body =
  { f_name = name; f_params = params; f_locals = locals; f_body = body;
    f_ret = ret }

let static_globals =
  [ "width"; "height"; "npixels"; "kernel"; "kdiv"; "threshold"; "nbuckets" ]

(* Nine 3x3 kernels (with divisors) for the generated filter pipeline:
   identity, box blur, sharpen, emboss, edge, gaussian-ish, motion,
   outline, ridge. Filters beyond the table reuse it with a rotation. *)
let kernels =
  [| ([ 0; 0; 0; 0; 1; 0; 0; 0; 0 ], 1);
     ([ 1; 1; 1; 1; 1; 1; 1; 1; 1 ], 9);
     ([ 0; -1; 0; -1; 5; -1; 0; -1; 0 ], 1);
     ([ -2; -1; 0; -1; 1; 1; 0; 1; 2 ], 1);
     ([ -1; -1; -1; -1; 8; -1; -1; -1; -1 ], 1);
     ([ 1; 2; 1; 2; 4; 2; 1; 2; 1 ], 16);
     ([ 1; 0; 0; 0; 1; 0; 0; 0; 1 ], 3);
     ([ -1; 0; -1; 0; 4; 0; -1; 0; -1 ], 1);
     ([ 0; 1; 0; 1; -4; 1; 0; 1; 0 ], 1) |]

(* A filter function with its own convolution loop nest: reads image,
   writes temp, then commits temp back into image. Each filter contributes
   a distinct batch of statements for the analysis engine. *)
let filter_func k =
  let taps, div = kernels.(k mod Array.length kernels) in
  let name = Printf.sprintf "filter_%d" k in
  let set_taps = List.mapi (fun t c -> store "kernel" (n t) (n c)) taps in
  let body =
    set_taps
    @ [ assign "kdiv" (n div);
        assign "y" (n 1);
        while_
          (v "y" <: v "height" -: n 1)
          [ assign "x" (n 1);
            while_
              (v "x" <: v "width" -: n 1)
              [ assign "acc" (n 0);
                assign "ky" (n 0);
                while_
                  (v "ky" <: n 3)
                  [ assign "kx" (n 0);
                    while_
                      (v "kx" <: n 3)
                      [ assign "pix"
                          (idx "image"
                             (((v "y" +: v "ky" -: n 1) *: v "width")
                             +: v "x" +: v "kx" -: n 1));
                        assign "acc"
                          (v "acc"
                          +: (v "pix" *: idx "kernel" ((v "ky" *: n 3) +: v "kx")));
                        assign "kx" (v "kx" +: n 1) ];
                    assign "ky" (v "ky" +: n 1) ];
                store "temp"
                  ((v "y" *: v "width") +: v "x")
                  (callv "clamp" [ v "acc" /: v "kdiv" ]);
                assign "x" (v "x" +: n 1) ];
            assign "y" (v "y" +: n 1) ];
        call "commit_temp" [] ]
  in
  func name []
    [ local "x"; local "y"; local "kx"; local "ky"; local "acc"; local "pix" ]
    body

let base_funcs =
  [ func ~ret:T_int "clamp" [ "value" ] []
      [ if_ (v "value" <: n 0) [ return (n 0) ] [];
        if_ (v "value" >: n 255) [ return (n 255) ] [];
        return (v "value") ];
    func ~ret:T_int "next_noise" [] []
      [ assign "noise_seed"
          (((v "noise_seed" *: n 1103515) +: n 12345) %: n 2147483);
        if_ (v "noise_seed" <: n 0)
          [ assign "noise_seed" (n 0 -: v "noise_seed") ]
          [];
        return (v "noise_seed") ];
    func "init_image" []
      [ local "p"; local "noise" ]
      [ assign "p" (n 0);
        while_
          (v "p" <: v "npixels")
          [ assign "noise" (callv "next_noise" []);
            store "image" (v "p")
              ((((v "p" *: n 7) %: n 151) +: (v "noise" %: n 105)) %: n 256);
            store "temp" (v "p") (n 0);
            store "output" (v "p") (n 0);
            assign "p" (v "p" +: n 1) ] ];
    func "commit_temp" [] [ local "p" ]
      [ assign "p" (v "width" +: n 1);
        while_
          (v "p" <: v "npixels" -: v "width" -: n 1)
          [ store "image" (v "p") (idx "temp" (v "p"));
            assign "p" (v "p" +: n 1) ] ];
    func "compute_histogram" [] [ local "p"; local "bucket" ]
      [ assign "bucket" (n 0);
        while_
          (v "bucket" <: v "nbuckets")
          [ store "histogram" (v "bucket") (n 0);
            assign "bucket" (v "bucket" +: n 1) ];
        assign "p" (n 0);
        while_
          (v "p" <: v "npixels")
          [ assign "bucket" (idx "image" (v "p") *: v "nbuckets" /: n 256);
            if_ (v "bucket" >=: v "nbuckets")
              [ assign "bucket" (v "nbuckets" -: n 1) ]
              [];
            store "histogram" (v "bucket") (idx "histogram" (v "bucket") +: n 1);
            assign "p" (v "p" +: n 1) ] ];
    func "find_range" [] [ local "p"; local "pix" ]
      [ assign "min_val" (n 255);
        assign "max_val" (n 0);
        assign "p" (n 0);
        while_
          (v "p" <: v "npixels")
          [ assign "pix" (idx "image" (v "p"));
            if_ (v "pix" <: v "min_val") [ assign "min_val" (v "pix") ] [];
            if_ (v "pix" >: v "max_val") [ assign "max_val" (v "pix") ] [];
            assign "p" (v "p" +: n 1) ] ];
    func "stretch_contrast" [] [ local "p"; local "range"; local "pix" ]
      [ call "find_range" [];
        assign "range" (v "max_val" -: v "min_val");
        if_ (v "range" ==: n 0) [ assign "range" (n 1) ] [];
        assign "p" (n 0);
        while_
          (v "p" <: v "npixels")
          [ assign "pix" (idx "image" (v "p"));
            store "image" (v "p")
              ((v "pix" -: v "min_val") *: n 255 /: v "range");
            assign "p" (v "p" +: n 1) ] ];
    func "apply_threshold" [] [ local "p" ]
      [ assign "p" (n 0);
        while_
          (v "p" <: v "npixels")
          [ if_
              (idx "image" (v "p") >=: v "threshold")
              [ store "output" (v "p") (n 255) ]
              [ store "output" (v "p") (n 0) ];
            assign "p" (v "p" +: n 1) ] ];
    func ~ret:T_int "checksum" [] [ local "p"; local "sum" ]
      [ assign "sum" (n 0);
        assign "p" (n 0);
        while_
          (v "p" <: v "npixels")
          [ assign "sum" ((v "sum" +: idx "output" (v "p")) %: n 65521);
            assign "p" (v "p" +: n 1) ];
        return (v "sum") ] ]

let image_program ?(width = 24) ?(height = 16) ?(n_filters = 15) () =
  let npixels = width * height in
  let globals =
    [ { v_name = "width"; v_typ = T_int; v_init = width };
      { v_name = "height"; v_typ = T_int; v_init = height };
      { v_name = "npixels"; v_typ = T_int; v_init = npixels };
      { v_name = "image"; v_typ = T_array npixels; v_init = 0 };
      { v_name = "temp"; v_typ = T_array npixels; v_init = 0 };
      { v_name = "output"; v_typ = T_array npixels; v_init = 0 };
      { v_name = "histogram"; v_typ = T_array 64; v_init = 0 };
      { v_name = "nbuckets"; v_typ = T_int; v_init = 64 };
      { v_name = "kernel"; v_typ = T_array 9; v_init = 0 };
      { v_name = "kdiv"; v_typ = T_int; v_init = 1 };
      { v_name = "threshold"; v_typ = T_int; v_init = 128 };
      { v_name = "noise_seed"; v_typ = T_int; v_init = 987654321 };
      { v_name = "min_val"; v_typ = T_int; v_init = 0 };
      { v_name = "max_val"; v_typ = T_int; v_init = 255 } ]
  in
  let filters = List.init n_filters filter_func in
  let main =
    func ~ret:T_int "main" [] [ local "pass"; local "sum" ]
      ([ call "init_image" []; call "compute_histogram" [] ]
      @ List.init n_filters (fun k -> call (Printf.sprintf "filter_%d" k) [])
      @ [ call "stretch_contrast" [];
          call "apply_threshold" [];
          assign "sum" (callv "checksum" []);
          return (v "sum") ])
  in
  Ast.number { globals; funcs = base_funcs @ filters @ [ main ] }

let small_program () =
  let globals =
    [ { v_name = "a"; v_typ = T_int; v_init = 3 };
      { v_name = "b"; v_typ = T_int; v_init = 0 };
      { v_name = "buf"; v_typ = T_array 8; v_init = 0 } ]
  in
  let double = func ~ret:T_int "double" [ "x" ] [] [ return (v "x" *: n 2) ] in
  let fill =
    func "fill" [] [ local "p" ]
      [ assign "p" (n 0);
        while_
          (v "p" <: n 8)
          [ store "buf" (v "p") (callv "double" [ v "p" ]);
            assign "p" (v "p" +: n 1) ] ]
  in
  let main =
    func ~ret:T_int "main" [] [ local "t" ]
      [ call "fill" [];
        assign "t" (idx "buf" (n 3));
        if_ (v "t" >: v "a")
          [ assign "b" (v "t" -: v "a") ]
          [ assign "b" (n (-1)); return_void ];
        assign "a" (v "a" +: v "b");
        return (v "b" +: idx "buf" (n 7)) ]
  in
  Ast.number { globals; funcs = [ double; fill; main ] }

(* ---- random annotation-free workloads ------------------------------------- *)

(* Deterministically random programs for property tests of the automatic
   checkpoint-inference pipeline: guaranteed to check, to terminate, and
   to keep every array index in bounds and every scalar non-negative
   (indices are built from non-negative literals, [+], [*] and [mod] by a
   positive literal — never [-] or [/]). The shapes vary where it
   matters: scalar/array mix, literal vs. affine vs. value-dependent
   (hashed) store indices, 1 or 2 top-level loops, optional setup calls
   and an optional early return. *)
let random_program ~seed () =
  let rng = Random.State.make [| 0x1c5; seed; 0xa11 |] in
  let int lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let n_scalars = int 2 4 in
  let n_arrays = int 1 3 in
  let scalars = List.init n_scalars (fun i -> Printf.sprintf "s%d" i) in
  let arrays =
    List.init n_arrays (fun i -> (Printf.sprintf "a%d" i, int 8 32))
  in
  let globals =
    List.map (fun s -> { v_name = s; v_typ = T_int; v_init = int 0 9 }) scalars
    @ List.map
        (fun (a, len) -> { v_name = a; v_typ = T_array len; v_init = 0 })
        arrays
  in
  (* One store into a random array, indexed by the worker's loop counter
     [i] (always in [0, bound-1], bound <= 8). *)
  let store_stmt () =
    let a, len = pick arrays in
    let s = pick scalars in
    match int 0 2 with
    | 0 ->
        (* literal index *)
        [ store a (n (int 0 (len - 1))) (v "i" +: n (int 0 99)) ]
    | 1 ->
        (* affine index, folded into the array by a positive-literal mod *)
        let stride = int 1 5 and off = int 0 7 in
        [ store a (((v "i" *: n stride) +: n off) %: n len) (v s +: v "i") ]
    | _ ->
        (* value-dependent (hashed) index: an LCG step keeps the scalar
           non-negative, then scatters a write through it *)
        let m = pick [ 251; 509; 1021; 4093 ] in
        [ assign s (((v s *: n (int 3 75)) +: n (int 1 74)) %: n m);
          store a (v s %: n len) (v s +: v "i") ]
  in
  let n_workers = int 2 4 in
  let workers =
    List.init n_workers (fun w ->
        let bound = int 2 8 in
        let body = List.concat (List.init (int 1 3) (fun _ -> store_stmt ())) in
        func
          (Printf.sprintf "work%d" w)
          [] [ local "i" ]
          [ assign "i" (n 0);
            while_ (v "i" <: n bound) (body @ [ assign "i" (v "i" +: n 1) ]) ])
  in
  let worker_name w = w.f_name in
  let round_loop counter =
    let rounds = int 2 5 in
    let calls =
      List.init (int 1 2) (fun _ -> call (worker_name (pick workers)) [])
    in
    while_
      (v counter <: n rounds)
      (calls @ [ assign counter (v counter +: n 1) ])
  in
  let setup =
    if int 0 1 = 0 then [] else [ call (worker_name (pick workers)) [] ]
  in
  let loops =
    if int 0 2 = 0 then [ round_loop "r"; round_loop "q" ]
    else [ round_loop "r" ]
  in
  let early_return =
    (* A conditional top-level return: on seeds where the guard fires
       (it depends on the setup call's LCG steps) the driver's Halted
       path runs — later phases then take zero checkpoints. *)
    if int 0 3 = 0 then
      [ if_ (v (pick scalars) >: n (int 10 2000)) [ return (n 1) ] [] ]
    else []
  in
  let main =
    func ~ret:T_int "main" []
      [ local "r"; local "q" ]
      (setup @ early_return @ loops @ [ return (v (pick scalars)) ])
  in
  number { globals; funcs = workers @ [ main ] }
