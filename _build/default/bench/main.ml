(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 1-2, Figures 7-11) and runs the Bechamel
   micro-benchmarks.

   Usage: dune exec bench/main.exe -- [NAMES...] [--paper] [--scale F]
                                      [--micro-only] [--no-micro]

   NAMES select experiments (default: all): table1 fig7 fig8 fig9 fig10
   fig11 table2. --scale sets the synthetic population as a fraction of the
   paper's 20,000 structures (default 0.1); --paper is --scale 1. *)

open Ickpt_experiments

type options = {
  mutable scale : float;
  mutable names : string list;
  mutable micro : bool;
  mutable micro_only : bool;
}

let parse_args () =
  let o = { scale = 0.1; names = []; micro = true; micro_only = false } in
  let rec go = function
    | [] -> ()
    | "--paper" :: rest ->
        o.scale <- 1.0;
        go rest
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> o.scale <- f
        | _ ->
            prerr_endline "bench: --scale expects a positive number";
            exit 2);
        go rest
    | "--micro-only" :: rest ->
        o.micro_only <- true;
        go rest
    | "--no-micro" :: rest ->
        o.micro <- false;
        go rest
    | ("--help" | "-h") :: _ ->
        print_endline
          "usage: main.exe [NAMES...] [--paper] [--scale F] [--micro-only] \
           [--no-micro]";
        exit 0
    | name :: rest ->
        o.names <- o.names @ [ name ];
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  o

let () =
  let o = parse_args () in
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "icheckpoint benchmark harness — reproducing Lawall & Muller, DSN 2000@.";
  Format.fprintf ppf "scale %.2f (%d synthetic structures at full grids)@."
    o.scale
    (Workload.structures o.scale);
  let failures = ref 0 in
  if not o.micro_only then begin
    let names = match o.names with [] -> None | names -> Some names in
    let results = Registry.run_all ?names ~scale:o.scale ppf in
    Format.fprintf ppf "@.== shape-check summary ==@.";
    List.iter
      (fun (name, checks) ->
        let failed = List.filter (fun c -> not c.Workload.ok) checks in
        failures := !failures + List.length failed;
        Format.fprintf ppf "%-8s %d/%d checks pass@." name
          (List.length checks - List.length failed)
          (List.length checks))
      results
  end;
  if o.micro || o.micro_only then Micro.run ppf;
  if !failures > 0 then
    Format.fprintf ppf
      "@.%d shape check(s) failed — timing-sensitive checks can fail on a \
       noisy host; re-run with a larger --scale for stabler ratios.@."
      !failures
