bin/ickpt_bench.mli:
