bin/minic_analyze.mli:
