bin/minic_analyze.ml: Arg Attrs Cmd Cmdliner Deadcode Engine Format Fun Ickpt_analysis Ickpt_core List Minic Printf Report Term
