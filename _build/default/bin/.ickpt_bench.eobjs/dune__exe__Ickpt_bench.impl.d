bin/ickpt_bench.ml: Arg Cmd Cmdliner Format Ickpt_experiments List Micro Printf Registry Term Workload
