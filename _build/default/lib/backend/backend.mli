(** Execution environments for checkpoint code.

    The paper evaluates on three Java environments; each has an analog here
    with the corresponding execution regime for both the {e generic}
    incremental algorithm and {e specialized} residual code:

    - {!interp} — the JDK 1.2 JIT analog: checkpoint code runs under AST
      interpretation ({!Jspec.Interp}), paying per-operation overhead and a
      method-table lookup per virtual call;
    - {!inline_cache} — the HotSpot analog: code is compiled to closures,
      but virtual calls go through a dispatch table with a monomorphic
      inline cache, and method entries bump profiling counters (the cost a
      dynamic compiler keeps paying at run time);
    - {!native} — the Harissa (Java-to-C) analog: compiled closures with no
      instrumentation; generic code still pays real vtable dispatch, which
      is exactly what specialization then removes.

    All backends produce identical bytes (property-tested); only cost
    differs. *)

open Ickpt_runtime

type t = {
  name : string;
  description : string;
  run_generic : Ickpt_stream.Out_stream.t -> Model.obj -> unit;
      (** the unspecialized incremental algorithm under this regime *)
  specialize : Jspec.Pe.result -> Ickpt_stream.Out_stream.t -> Model.obj -> unit;
      (** compile/install specialized residual code for this regime; call
          once per shape and reuse the returned runner *)
}

val interp : t

val inline_cache : t

val native : t

val all : t list
(** [interp; inline_cache; native] — slowest first. *)

val find : string -> t
(** Look up by [name]. @raise Not_found. *)

val dispatch_count : unit -> int
(** Total virtual dispatches performed by [inline_cache] and [native]
    generic runs since program start (instrumentation for tests). *)

val ic_miss_count : unit -> int
(** Inline-cache misses observed by [inline_cache]. *)
