lib/backend/backend.mli: Ickpt_runtime Ickpt_stream Jspec Model
