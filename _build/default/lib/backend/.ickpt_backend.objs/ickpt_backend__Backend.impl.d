lib/backend/backend.ml: Compile Generic_method Ickpt_runtime Ickpt_stream Interp Jspec List Model Pe
