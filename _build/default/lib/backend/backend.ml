open Ickpt_runtime
open Jspec

type t = {
  name : string;
  description : string;
  run_generic : Ickpt_stream.Out_stream.t -> Model.obj -> unit;
  specialize : Jspec.Pe.result -> Ickpt_stream.Out_stream.t -> Model.obj -> unit;
}

let dispatches = ref 0

let ic_misses = ref 0

let dispatch_count () = !dispatches

let ic_miss_count () = !ic_misses

let interp =
  { name = "interp";
    description = "AST interpretation (JDK 1.2 JIT analog)";
    run_generic = (fun d o -> Interp.run_program Generic_method.program d o);
    specialize =
      (fun r ->
        let body = r.Pe.body and n_vars = r.Pe.n_vars in
        fun d o -> Interp.run_residual body ~n_vars d o) }

let inline_cache =
  (* A monomorphic inline cache per backend (call sites share it, which is
     pessimistic but the workloads are class-homogeneous), plus profiling
     counters on dispatch and on specialized-code entry: the residual costs
     a dynamic compiler keeps paying. *)
  let cached_kid = ref (-1) in
  let profile = ref 0 in
  let on_dispatch (o : Model.obj) =
    (* Monomorphic cache check per call; bookkeeping only on a miss — the
       cost profile of a warmed-up inline cache. *)
    let kid = o.Model.klass.Model.kid in
    if !cached_kid <> kid then begin
      incr dispatches;
      incr ic_misses;
      cached_kid := kid
    end
  in
  { name = "inline-cache";
    description = "compiled with inline-cached dispatch (HotSpot analog)";
    run_generic = Compile.program ~on_dispatch Generic_method.program;
    specialize =
      (fun r -> Compile.residual ~on_entry:(fun () -> incr profile) r) }

let native =
  { name = "native";
    description = "compiled closures, plain vtable dispatch (Harissa analog)";
    run_generic =
      Compile.program ~on_dispatch:(fun _ -> incr dispatches)
        Generic_method.program;
    specialize = (fun r -> Compile.residual r) }

let all = [ interp; inline_cache; native ]

let find name = List.find (fun b -> b.name = name) all
