type info = { id : int; mutable modified : bool }

type klass = {
  kid : int;
  kname : string;
  parent : klass option;
  n_ints : int;
  n_children : int;
  own_ints : int;
  own_children : int;
  mutable record_m : obj -> Ickpt_stream.Out_stream.t -> unit;
  mutable fold_m : obj -> (obj -> unit) -> unit;
}

and obj = {
  info : info;
  klass : klass;
  ints : int array;
  children : obj option array;
}

let record o d = o.klass.record_m o d

let fold o f = o.klass.fold_m o f

let null_id = -1

let default_record o d =
  let open Ickpt_stream in
  for i = 0 to Array.length o.ints - 1 do
    Out_stream.write_int d o.ints.(i)
  done;
  for j = 0 to Array.length o.children - 1 do
    match o.children.(j) with
    | None -> Out_stream.write_int d null_id
    | Some c -> Out_stream.write_int d c.info.id
  done

let default_fold o f =
  for j = 0 to Array.length o.children - 1 do
    match o.children.(j) with None -> () | Some c -> f c
  done

let is_instance o k =
  let rec up = function
    | None -> false
    | Some k' -> k' == k || up k'.parent
  in
  up (Some o.klass)

let pp ppf o =
  let child_id = function None -> null_id | Some c -> c.info.id in
  Format.fprintf ppf "@[<h>%s#%d%s ints=[%s] children=[%s]@]" o.klass.kname
    o.info.id
    (if o.info.modified then "*" else "")
    (String.concat ";" (Array.to_list (Array.map string_of_int o.ints)))
    (String.concat ";"
       (Array.to_list
          (Array.map (fun c -> string_of_int (child_id c)) o.children)))

let pp_graph ppf root =
  let seen = Hashtbl.create 64 in
  let rec go depth o =
    Format.fprintf ppf "%s%a@," (String.make (2 * depth) ' ') pp o;
    if not (Hashtbl.mem seen o.info.id) then begin
      Hashtbl.add seen o.info.id ();
      Array.iter
        (function None -> () | Some c -> go (depth + 1) c)
        o.children
    end
  in
  Format.fprintf ppf "@[<v>";
  go 0 root;
  Format.fprintf ppf "@]"
