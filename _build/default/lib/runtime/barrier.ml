let trace : (Model.obj -> unit) option ref = ref None

let dirty o =
  o.Model.info.Model.modified <- true;
  match !trace with None -> () | Some f -> f o

let set_int o i v =
  o.Model.ints.(i) <- v;
  dirty o

let set_child o i c =
  o.Model.children.(i) <- c;
  dirty o

let same_child a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | None, Some _ | Some _, None -> false

let set_int_if_changed o i v =
  if o.Model.ints.(i) = v then false
  else begin
    set_int o i v;
    true
  end

let set_child_if_changed o i c =
  if same_child o.Model.children.(i) c then false
  else begin
    set_child o i c;
    true
  end

let get_int o i = o.Model.ints.(i)

let get_child o i = o.Model.children.(i)

let touch o = dirty o

let with_trace hook f =
  let saved = !trace in
  trace := Some hook;
  Fun.protect ~finally:(fun () -> trace := saved) f
