type mismatch = { path : string; reason : string }

exception Found of mismatch

let fail path fmt =
  Format.kasprintf (fun reason -> raise (Found { path; reason })) fmt

(* Pairs already proven equal (or in progress); keyed by the two ids. On
   acyclic graphs "in progress" pairs are never revisited along the same
   path, so memoising them is sound and makes DAG comparison linear. *)
let compare_graphs a b =
  let seen = Hashtbl.create 256 in
  let rec go path a b =
    let open Model in
    let key = (a.info.id, b.info.id) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      if a.klass.kid <> b.klass.kid then
        fail path "class %s vs %s" a.klass.kname b.klass.kname;
      if a.info.modified <> b.info.modified then
        fail path "modified flag %b vs %b" a.info.modified b.info.modified;
      Array.iteri
        (fun i v ->
          if v <> b.ints.(i) then
            fail (Printf.sprintf "%s.ints[%d]" path i) "%d vs %d" v b.ints.(i))
        a.ints;
      Array.iteri
        (fun i ca ->
          let path = Printf.sprintf "%s.children[%d]" path i in
          match (ca, b.children.(i)) with
          | None, None -> ()
          | Some _, None -> fail path "present vs null"
          | None, Some _ -> fail path "null vs present"
          | Some ca, Some cb -> go path ca cb)
        a.children
    end
  in
  match go "root" a b with () -> None | exception Found m -> Some m

let equal a b = compare_graphs a b = None

let pp_mismatch ppf m = Format.fprintf ppf "%s: %s" m.path m.reason
