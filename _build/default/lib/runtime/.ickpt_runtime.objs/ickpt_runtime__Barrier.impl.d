lib/runtime/barrier.ml: Array Fun Model
