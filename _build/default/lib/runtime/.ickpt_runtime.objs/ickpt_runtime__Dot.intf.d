lib/runtime/dot.mli: Model
