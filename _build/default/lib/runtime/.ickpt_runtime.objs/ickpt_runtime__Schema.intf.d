lib/runtime/schema.mli: Model
