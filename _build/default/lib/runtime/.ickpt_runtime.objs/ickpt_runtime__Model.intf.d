lib/runtime/model.mli: Format Ickpt_stream
