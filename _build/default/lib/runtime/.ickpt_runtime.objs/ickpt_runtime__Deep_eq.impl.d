lib/runtime/deep_eq.ml: Array Format Hashtbl Model Printf
