lib/runtime/schema.ml: Hashtbl List Model Printf
