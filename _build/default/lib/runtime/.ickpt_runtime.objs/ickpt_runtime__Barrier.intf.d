lib/runtime/barrier.mli: Model
