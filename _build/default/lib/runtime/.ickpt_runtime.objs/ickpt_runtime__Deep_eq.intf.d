lib/runtime/deep_eq.mli: Format Model
