lib/runtime/model.ml: Array Format Hashtbl Ickpt_stream Out_stream String
