lib/runtime/heap.ml: Array Hashtbl List Model Printf Schema
