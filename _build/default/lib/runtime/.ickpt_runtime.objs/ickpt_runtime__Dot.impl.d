lib/runtime/dot.ml: Array Buffer Fun Hashtbl List Model Printf String
