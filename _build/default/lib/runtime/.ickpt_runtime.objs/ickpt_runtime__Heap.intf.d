lib/runtime/heap.mli: Model Schema
