let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?(graph_name = "heap") roots =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" graph_name);
  Buffer.add_string buf "  node [shape=record, fontname=monospace];\n";
  let seen = Hashtbl.create 64 in
  let rec visit (o : Model.obj) =
    let id = o.Model.info.Model.id in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      let ints =
        String.concat ", " (Array.to_list (Array.map string_of_int o.Model.ints))
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s #%d|{%s}\"%s];\n" id
           (escape o.Model.klass.Model.kname)
           id (escape ints)
           (if o.Model.info.Model.modified then ", peripheries=2" else ""));
      Array.iteri
        (fun slot child ->
          match child with
          | None -> ()
          | Some c ->
              Buffer.add_string buf
                (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" id
                   c.Model.info.Model.id slot);
              visit c)
        o.Model.children
    end
  in
  List.iter visit roots;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path roots =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot roots))
