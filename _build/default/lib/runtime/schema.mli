(** Class schema: the registry of runtime classes, shared between the live
    heap and the restore path so that class ids resolve identically on both
    sides of a crash.

    Declaring a class installs the preprocessor-generated default [record]
    and [fold] methods (cf. paper Section 2.2); callers may override them
    afterwards to model hand-written checkpointing methods. *)

type t

val create : unit -> t

val declare :
  t -> name:string -> ?parent:Model.klass -> ints:int -> children:int ->
  unit -> Model.klass
(** [declare t ~name ?parent ~ints ~children ()] registers a class with
    [ints] own scalar slots and [children] own child slots, appended after
    the inherited slots of [parent].
    @raise Invalid_argument if [name] is already declared. *)

val find : t -> int -> Model.klass
(** Look up by class id. @raise Not_found for unknown ids. *)

val find_name : t -> string -> Model.klass

val count : t -> int

val iter : t -> (Model.klass -> unit) -> unit
(** In declaration (= class id) order. *)
