(** Graphviz export of object graphs, for debugging and documentation:
    each object is a node labelled with class, id, flag and scalar
    fields; edges follow child slots. *)

val to_dot : ?graph_name:string -> Model.obj list -> string
(** DOT source for the graph reachable from the roots (shared objects
    appear once). Modified objects are drawn with a doubled border. *)

val write_file : path:string -> Model.obj list -> unit
