type t = {
  mutable klasses : Model.klass list;  (* reverse declaration order *)
  by_kid : (int, Model.klass) Hashtbl.t;
  by_name : (string, Model.klass) Hashtbl.t;
  mutable next_kid : int;
}

let create () =
  { klasses = []; by_kid = Hashtbl.create 16; by_name = Hashtbl.create 16;
    next_kid = 0 }

let declare t ~name ?parent ~ints ~children () =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Schema.declare: duplicate class %S" name);
  if ints < 0 || children < 0 then invalid_arg "Schema.declare: negative arity";
  let inherited_ints, inherited_children =
    match parent with
    | None -> (0, 0)
    | Some p -> (p.Model.n_ints, p.Model.n_children)
  in
  let k =
    { Model.kid = t.next_kid;
      kname = name;
      parent;
      n_ints = inherited_ints + ints;
      n_children = inherited_children + children;
      own_ints = ints;
      own_children = children;
      record_m = Model.default_record;
      fold_m = Model.default_fold }
  in
  t.next_kid <- t.next_kid + 1;
  t.klasses <- k :: t.klasses;
  Hashtbl.add t.by_kid k.Model.kid k;
  Hashtbl.add t.by_name name k;
  k

let find t kid = Hashtbl.find t.by_kid kid

let find_name t name = Hashtbl.find t.by_name name

let count t = t.next_kid

let iter t f = List.iter f (List.rev t.klasses)
