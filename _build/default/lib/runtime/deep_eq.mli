(** Deep structural equality of object graphs, used to validate that a
    restored heap is indistinguishable from the original. Handles shared
    substructure (DAGs); object graphs are assumed acyclic, as in the
    paper. *)

type mismatch = {
  path : string;  (** field path from the roots to the first difference *)
  reason : string;
}

val compare_graphs : Model.obj -> Model.obj -> mismatch option
(** [compare_graphs a b] is [None] when the graphs rooted at [a] and [b]
    are isomorphic: same classes, same scalar values, same child structure
    (ids may differ — the correspondence is structural). *)

val equal : Model.obj -> Model.obj -> bool

val pp_mismatch : Format.formatter -> mismatch -> unit
