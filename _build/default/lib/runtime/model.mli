(** The heap object model: the substrate on which checkpointing operates.

    This emulates the parts of the JVM object model that the paper's
    optimizations target. Every object carries:
    - an {!info} record — the paper's [CheckpointInfo]: a unique identifier
      and a [modified] flag, set by write barriers ({!Barrier}) and reset
      when the object is recorded in a checkpoint;
    - a {!klass} — a runtime class descriptor holding the field layout and
      the {e virtual} [record]/[fold] methods. Method invocation goes through
      the mutable vtable slot, i.e. a genuine indirect call, reproducing the
      dispatch cost that specialization later removes;
    - [ints] — the scalar (int-typed) fields, parent class slots first;
    - [children] — the sub-object fields, parent class slots first.

    Objects may form DAGs but not cycles (the paper's assumption). *)

type info = { id : int; mutable modified : bool }

type klass = {
  kid : int;  (** dense class identifier, stable across save/restore *)
  kname : string;
  parent : klass option;
  n_ints : int;  (** total scalar slots, inherited included *)
  n_children : int;  (** total child slots, inherited included *)
  own_ints : int;  (** slots declared by this class itself *)
  own_children : int;
  mutable record_m : obj -> Ickpt_stream.Out_stream.t -> unit;
      (** virtual method: write the object's local state — every scalar
          field, then every child represented by its unique id. *)
  mutable fold_m : obj -> (obj -> unit) -> unit;
      (** virtual method: apply a visitor to each non-null child. *)
}

and obj = {
  info : info;
  klass : klass;
  ints : int array;
  children : obj option array;
}

val record : obj -> Ickpt_stream.Out_stream.t -> unit
(** Virtual dispatch of [record_m]. *)

val fold : obj -> (obj -> unit) -> unit
(** Virtual dispatch of [fold_m]. *)

val null_id : int
(** Identifier written for an absent child (-1). *)

val default_record : obj -> Ickpt_stream.Out_stream.t -> unit
(** The method a preprocessor would generate (cf. paper Section 2.2):
    every scalar field as a varint, then every child's id ({!null_id} for
    absent children), in slot order (inherited slots first). *)

val default_fold : obj -> (obj -> unit) -> unit

val is_instance : obj -> klass -> bool
(** [is_instance o k] is true if [o]'s class is [k] or a subclass of [k]. *)

val pp : Format.formatter -> obj -> unit
(** One-line summary: class, id, flag, scalar fields, child ids. *)

val pp_graph : Format.formatter -> obj -> unit
(** Multi-line dump of the whole reachable graph (each object once). *)
