(** Plain-text table and figure rendering for the benchmark harness: the
    output format mirrors the paper's tables (rows of labelled cells) and
    figures (series of speedup bars keyed by configuration). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Cell formatting helpers} *)

val cell_bytes : int -> string
(** Human-readable size: [12.3 Mb], [4.5 Kb], [321 b]. *)

val cell_seconds : float -> string

val cell_speedup : float -> string
(** e.g. [3.42x]. *)

val cell_ratio : int -> int -> string
(** [cell_ratio num den] — e.g. checkpoint size ratio. *)
