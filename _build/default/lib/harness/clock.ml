let now_ns () = Monotonic_clock.now ()

let time_ns f =
  let t0 = now_ns () in
  let x = f () in
  let t1 = now_ns () in
  (x, Int64.sub t1 t0)

let time f =
  let x, ns = time_ns f in
  (x, Int64.to_float ns /. 1e9)

let best_of ?(repeats = 3) f =
  let rec go best last i =
    if i >= repeats then (last, best)
    else
      let x, s = time f in
      go (Float.min best s) x (i + 1)
  in
  let x0, s0 = time f in
  let x, best = go s0 x0 1 in
  (x, best)
