type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): %d cells for %d columns" t.title
         (List.length row) (List.length t.columns));
  t.rows <- row :: t.rows

let pp ppf t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length header) rows)
      t.columns
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let hline =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "@[<v>== %s ==@," t.title;
  Format.fprintf ppf "%s@,"
    (String.concat " | " (List.map2 pad t.columns widths));
  Format.fprintf ppf "%s@," hline;
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@," (String.concat " | " (List.map2 pad row widths)))
    rows;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let cell_bytes b =
  if b >= 1_000_000 then Printf.sprintf "%.2f Mb" (float_of_int b /. 1e6)
  else if b >= 1_000 then Printf.sprintf "%.1f Kb" (float_of_int b /. 1e3)
  else Printf.sprintf "%d b" b

let cell_seconds s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.1f us" (s *. 1e6)

let cell_speedup x = Printf.sprintf "%.2fx" x

let cell_ratio num den =
  if den = 0 then "n/a" else Printf.sprintf "%.2f" (float_of_int num /. float_of_int den)
