lib/harness/clock.mli:
