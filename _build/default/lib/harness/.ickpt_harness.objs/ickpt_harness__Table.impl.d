lib/harness/table.ml: Format List Printf String
