lib/harness/clock.ml: Float Int64 Monotonic_clock
