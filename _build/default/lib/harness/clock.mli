(** Monotonic wall-clock measurement. *)

val now_ns : unit -> int64

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once, returning its result and elapsed seconds. *)

val time_ns : (unit -> 'a) -> 'a * int64

val best_of : ?repeats:int -> (unit -> 'a) -> 'a * float
(** Run [f] [repeats] times (default 3) and report the fastest wall-clock
    run — benchmark convention for noisy environments. The result is the
    last run's. *)
