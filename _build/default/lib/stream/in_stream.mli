(** Input stream over a checkpoint blob, the mirror of {!Out_stream}. *)

type t

exception Corrupt of string
(** Raised when decoding runs past the end of input or a structural
    expectation fails; the message says what was being decoded. *)

val of_string : string -> t

val of_string_at : string -> pos:int -> t
(** Start reading at [pos] without copying. *)

val pos : t -> int

val remaining : t -> int

val at_end : t -> bool

val read_int : t -> int
(** @raise Corrupt on truncated input. *)

val read_byte : t -> int

val read_fixed32 : t -> int

val read_string : t -> string

val expect_byte : t -> int -> string -> unit
(** [expect_byte t b what] reads one byte and checks it equals [b].
    @raise Corrupt mentioning [what] otherwise. *)
