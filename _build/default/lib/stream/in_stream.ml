type t = { data : string; mutable pos : int }

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let of_string data = { data; pos = 0 }

let of_string_at data ~pos =
  if pos < 0 || pos > String.length data then
    invalid_arg "In_stream.of_string_at";
  { data; pos }

let pos t = t.pos

let remaining t = String.length t.data - t.pos

let at_end t = t.pos >= String.length t.data

let need t n what =
  if remaining t < n then
    corrupt "truncated input reading %s at offset %d (need %d, have %d)" what
      t.pos n (remaining t)

let read_int t =
  match Varint.read t.data t.pos with
  | v, next ->
      t.pos <- next;
      v
  | exception Invalid_argument _ -> corrupt "truncated varint at %d" t.pos

let read_byte t =
  need t 1 "byte";
  let b = Char.code (String.unsafe_get t.data t.pos) in
  t.pos <- t.pos + 1;
  b

let read_fixed32 t =
  need t 4 "fixed32";
  let b i = Char.code (String.unsafe_get t.data (t.pos + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  t.pos <- t.pos + 4;
  v

let read_string t =
  let len = read_int t in
  if len < 0 then corrupt "negative string length %d" len;
  need t len "string body";
  let s = String.sub t.data t.pos len in
  t.pos <- t.pos + len;
  s

let expect_byte t b what =
  let got = read_byte t in
  if got <> b then corrupt "bad %s: expected %#x, got %#x" what b got
