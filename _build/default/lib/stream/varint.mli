(** Variable-length integer encoding (LEB128 with zigzag for signed values).

    Integers are first zigzag-mapped so that small negative values also get
    short encodings, then emitted base-128, least-significant group first.
    The encoding covers the full range of OCaml's native [int]. *)

val zigzag : int -> int
(** [zigzag n] maps signed to unsigned: 0, -1, 1, -2, ... become 0, 1, 2, 3. *)

val unzigzag : int -> int
(** Inverse of {!zigzag}. *)

val write : Buffer.t -> int -> unit
(** [write buf n] appends the zigzag-LEB128 encoding of [n] to [buf]. *)

val encoded_size : int -> int
(** [encoded_size n] is the number of bytes {!write} emits for [n]. *)

val read : string -> int -> int * int
(** [read s pos] decodes a varint at [pos], returning [(value, next_pos)].
    @raise Invalid_argument if the encoding runs past the end of [s]. *)
