(** CRC-32 (IEEE 802.3 polynomial), used to frame checkpoint segments so that
    torn or corrupted writes are detected during recovery. *)

val string : ?crc:int -> string -> int
(** [string s] is the CRC-32 of [s]; [?crc] continues a running checksum. *)

val bytes : ?crc:int -> bytes -> int

val sub : ?crc:int -> string -> pos:int -> len:int -> int
(** Checksum of the substring [s.[pos .. pos+len-1]]. *)
