type t =
  | Buffered of Buffer.t
  | Sink of int ref

let create ?(initial_size = 4096) () = Buffered (Buffer.create initial_size)

let sink () = Sink (ref 0)

let is_sink = function Sink _ -> true | Buffered _ -> false

let write_int t n =
  match t with
  | Buffered buf -> Varint.write buf n
  | Sink count -> count := !count + Varint.encoded_size n

let write_byte t n =
  match t with
  | Buffered buf -> Buffer.add_char buf (Char.unsafe_chr (n land 0xff))
  | Sink count -> incr count

let write_fixed32 t n =
  match t with
  | Buffered buf ->
      Buffer.add_char buf (Char.unsafe_chr (n land 0xff));
      Buffer.add_char buf (Char.unsafe_chr ((n lsr 8) land 0xff));
      Buffer.add_char buf (Char.unsafe_chr ((n lsr 16) land 0xff));
      Buffer.add_char buf (Char.unsafe_chr ((n lsr 24) land 0xff))
  | Sink count -> count := !count + 4

let write_string t s =
  match t with
  | Buffered buf ->
      Varint.write buf (String.length s);
      Buffer.add_string buf s
  | Sink count ->
      count := !count + Varint.encoded_size (String.length s) + String.length s

let size = function
  | Buffered buf -> Buffer.length buf
  | Sink count -> !count

let contents = function
  | Buffered buf -> Buffer.contents buf
  | Sink _ -> invalid_arg "Out_stream.contents: sink stream"

let reset = function
  | Buffered buf -> Buffer.clear buf
  | Sink count -> count := 0
