lib/stream/varint.mli: Buffer
