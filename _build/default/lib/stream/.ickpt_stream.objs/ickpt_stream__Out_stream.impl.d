lib/stream/out_stream.ml: Buffer Char String Varint
