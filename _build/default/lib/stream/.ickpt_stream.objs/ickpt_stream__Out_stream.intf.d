lib/stream/out_stream.mli:
