lib/stream/crc32.mli:
