lib/stream/in_stream.ml: Char Format String Varint
