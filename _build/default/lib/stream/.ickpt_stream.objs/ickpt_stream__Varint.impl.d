lib/stream/varint.ml: Buffer Char String Sys
