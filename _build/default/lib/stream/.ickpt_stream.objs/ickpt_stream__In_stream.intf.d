lib/stream/in_stream.mli:
