let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))

let unzigzag n = (n lsr 1) lxor (-(n land 1))

let write buf n =
  let rec go n =
    (* [n] is treated as unsigned from here on; zigzag guarantees n >= 0
       except for min_int, which the lsr below still terminates on. *)
    if n lsr 7 = 0 then Buffer.add_char buf (Char.unsafe_chr (n land 0x7f))
    else begin
      Buffer.add_char buf (Char.unsafe_chr (n land 0x7f lor 0x80));
      go (n lsr 7)
    end
  in
  go (zigzag n)

let encoded_size n =
  let rec go acc n = if n lsr 7 = 0 then acc else go (acc + 1) (n lsr 7) in
  go 1 (zigzag n)

let read s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then invalid_arg "Varint.read: truncated input";
    let b = Char.code (String.unsafe_get s pos) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (unzigzag acc, pos + 1)
    else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos
