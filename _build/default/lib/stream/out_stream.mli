(** Output stream into which checkpoint records are written.

    This is the analog of the paper's [OutputStream] (a [DataOutputStream]
    composed with a [ByteArrayOutputStream]): checkpoints are built in memory
    and flushed to stable storage separately (see {!Ickpt_core.Storage}).

    Two flavours exist:
    - a {e buffered} stream that accumulates bytes ({!create});
    - a {e sink} that counts bytes without storing them ({!sink}), used to
      measure pure traversal/encoding cost and for size estimation. *)

type t

val create : ?initial_size:int -> unit -> t
(** A fresh buffered stream. *)

val sink : unit -> t
(** A stream that discards data but still counts {!size}. *)

val is_sink : t -> bool

val write_int : t -> int -> unit
(** Varint-encoded signed integer (the workhorse: field values and ids). *)

val write_byte : t -> int -> unit
(** Single raw byte; [n] is truncated to 8 bits. *)

val write_fixed32 : t -> int -> unit
(** Little-endian 4-byte unsigned value, for headers and checksums. *)

val write_string : t -> string -> unit
(** Length-prefixed string. *)

val size : t -> int
(** Number of bytes written so far. *)

val contents : t -> string
(** All bytes written so far.
    @raise Invalid_argument on a sink stream. *)

val reset : t -> unit
(** Forget all written data; [size] returns to 0. *)
