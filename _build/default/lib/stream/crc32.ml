let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc b =
  let table = Lazy.force table in
  table.((crc lxor b) land 0xff) lxor (crc lsr 8)

let sub ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub";
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := update !c (Char.code (String.unsafe_get s i))
  done;
  !c lxor 0xffffffff

let string ?crc s = sub ?crc s ~pos:0 ~len:(String.length s)

let bytes ?crc b = string ?crc (Bytes.unsafe_to_string b)
