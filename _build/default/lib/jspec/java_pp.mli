(** Rendering of residual checkpoint code in the Java style of the paper's
    Figures 5 and 6, so that specializations of real structures can be
    compared with the published residual programs. Purely cosmetic — the
    executable forms are {!Interp.run_residual} and {!Compile.residual}. *)

val pp : Format.formatter -> Pe.result -> unit

val to_string : Pe.result -> string
