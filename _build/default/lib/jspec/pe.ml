open Cklang

type result = {
  shape : Sclass.shape;
  body : Cklang.stmt list;
  n_vars : int;
  var_klass : (Cklang.var * string) list;
}

exception Specialization_error of string

let error fmt = Format.kasprintf (fun s -> raise (Specialization_error s)) fmt

(* Abstract values: what the specializer knows about a variable or
   expression. Object-valued entries carry the residual access path. *)
type aval =
  | S_int of int  (* static integer *)
  | D_int of expr  (* dynamic integer, residual expression *)
  | S_null  (* statically null child *)
  | PS of Sclass.shape * expr  (* present object of known shape *)
  | PS_maybe of Sclass.shape * expr  (* nullable object of known shape *)
  | D_obj of expr  (* object (or null) of unknown shape *)
  | Opaque of expr
    (* object (or null) of unknown shape whose whole subtree is declared
       clean: its id may be recorded, but checkpointing it produces no
       code at all *)

type ctx = {
  program : Cklang.program;
  mutable next_var : int;
  mutable var_klass : (Cklang.var * string) list;
}

let fresh ctx =
  let v = ctx.next_var in
  ctx.next_var <- v + 1;
  v

let path_of = function
  | PS (_, p) | PS_maybe (_, p) | D_obj p | Opaque p -> p
  | S_int _ | D_int _ | S_null -> error "path_of: not an object value"

(* Facts: residual paths proven non-null by an enclosing test. Residual
   expressions are pure, so structural equality of paths is sound. *)
let non_null facts path = List.mem path facts

let to_int_expr = function
  | S_int n -> Const n
  | D_int e -> e
  | S_null | PS _ | PS_maybe _ | D_obj _ | Opaque _ ->
      error "expected integer value in residual position"

let rec eval ctx venv facts (e : expr) : aval =
  match e with
  | Const n -> S_int n
  | Var v -> (
      match List.assoc_opt v venv with
      | Some a -> a
      | None -> error "unbound variable v%d" v)
  | Modified e' -> (
      match eval ctx venv facts e' with
      | PS (s, path) ->
          if s.Sclass.status = Sclass.Clean then S_int 0
          else D_int (Modified path)
      | PS_maybe (_, path) | D_obj path -> D_int (Modified path)
      | Opaque _ -> S_int 0
      | S_null -> error "Modified on null"
      | S_int _ | D_int _ -> error "Modified on int")
  | Id_of e' -> D_int (Id_of (path_of (eval ctx venv facts e')))
  | Kid_of e' -> (
      match eval ctx venv facts e' with
      | PS (s, _) | PS_maybe (s, _) -> S_int s.Sclass.klass.Ickpt_runtime.Model.kid
      | D_obj path | Opaque path -> D_int (Kid_of path)
      | S_null -> error "Kid_of on null"
      | S_int _ | D_int _ -> error "Kid_of on int")
  | N_ints e' -> (
      match eval ctx venv facts e' with
      | PS (s, _) | PS_maybe (s, _) ->
          S_int s.Sclass.klass.Ickpt_runtime.Model.n_ints
      | D_obj path | Opaque path -> D_int (N_ints path)
      | _ -> error "N_ints on non-object")
  | N_children e' -> (
      match eval ctx venv facts e' with
      | PS (s, _) | PS_maybe (s, _) ->
          S_int s.Sclass.klass.Ickpt_runtime.Model.n_children
      | D_obj path | Opaque path -> D_int (N_children path)
      | _ -> error "N_children on non-object")
  | Int_field (o, i) -> (
      let o = eval ctx venv facts o and i = eval ctx venv facts i in
      match (o, i) with
      | (PS (_, path) | PS_maybe (_, path) | D_obj path | Opaque path), a ->
          D_int (Int_field (path, to_int_expr a))
      | (S_null | S_int _ | D_int _), _ -> error "Int_field on non-object")
  | Child (o, i) -> (
      let ov = eval ctx venv facts o and iv = eval ctx venv facts i in
      match (ov, iv) with
      | PS (s, path), S_int j -> (
          if j < 0 || j >= Array.length s.Sclass.children then
            error "child index %d out of range for %s" j
              s.Sclass.klass.Ickpt_runtime.Model.kname;
          let cpath = Child (path, Const j) in
          match s.Sclass.children.(j) with
          | Sclass.Null_child -> S_null
          | Sclass.Exact cs -> PS (cs, cpath)
          | Sclass.Nullable cs ->
              if non_null facts cpath then PS (cs, cpath)
              else PS_maybe (cs, cpath)
          | Sclass.Unknown -> D_obj cpath
          | Sclass.Clean_opaque -> Opaque cpath)
      | Opaque path, a ->
          (* Anything below a clean-opaque child is itself clean-opaque. *)
          Opaque (Child (path, to_int_expr a))
      | (PS (_, path) | PS_maybe (_, path) | D_obj path), a ->
          D_obj (Child (path, to_int_expr a))
      | (S_null | S_int _ | D_int _), _ -> error "Child on non-object")
  | Is_null e' -> (
      match eval ctx venv facts e' with
      | S_null -> S_int 1
      | PS _ -> S_int 0
      | PS_maybe (_, path) | D_obj path | Opaque path ->
          if non_null facts path then S_int 0 else D_int (Is_null path)
      | S_int _ | D_int _ -> error "Is_null on int")
  | Not e' -> (
      match eval ctx venv facts e' with
      | S_int n -> S_int (if n = 0 then 1 else 0)
      | D_int e -> D_int (Not e)
      | _ -> error "Not on object")
  | Cond (c, a, b) -> (
      match eval ctx venv facts c with
      | S_int 0 -> eval ctx venv facts b
      | S_int _ -> eval ctx venv facts a
      | D_int c' ->
          D_int
            (Cond
               ( c',
                 to_int_expr (eval ctx venv facts a),
                 to_int_expr (eval ctx venv facts b) ))
      | _ -> error "Cond on object test")

(* When a dynamic test proves a path non-null in its true branch, record
   the fact so that the branch specializes with full shape knowledge. *)
let facts_from_test facts test =
  match test with
  | Not (Is_null path) -> path :: facts
  | _ -> facts

let rec spec ctx venv facts stmts : stmt list =
  List.concat_map (spec_stmt ctx venv facts) stmts

and spec_stmt ctx venv facts = function
  | Write e -> [ Write (to_int_expr (eval ctx venv facts e)) ]
  | Reset_modified e -> (
      match eval ctx venv facts e with
      | PS (_, path) | PS_maybe (_, path) | D_obj path ->
          [ Reset_modified path ]
      | Opaque _ -> []
      | S_null | S_int _ | D_int _ -> error "Reset_modified on non-object")
  | If (c, t, f) -> (
      match eval ctx venv facts c with
      | S_int 0 -> spec ctx venv facts f
      | S_int _ -> spec ctx venv facts t
      | D_int c' -> (
          let t' = spec ctx venv (facts_from_test facts c') t in
          let f' = spec ctx venv facts f in
          match (t', f') with [], [] -> [] | _ -> [ If (c', t', f') ])
      | _ -> error "If on object test")
  | Let (v, e, body) -> (
      match eval ctx venv facts e with
      | (S_int _ | D_int _ | S_null) as a ->
          spec ctx ((v, a) :: venv) facts body
      | PS (s, path) -> bind_object ctx venv facts v s path body ~nullable:false
      | PS_maybe (s, path) -> bind_object ctx venv facts v s path body ~nullable:true
      | D_obj path ->
          let w = fresh ctx in
          let body' = spec ctx ((v, D_obj (Var w)) :: venv) facts body in
          if body' = [] then [] else [ Let (w, path, body') ]
      | Opaque path ->
          let w = fresh ctx in
          let body' = spec ctx ((v, Opaque (Var w)) :: venv) facts body in
          if body' = [] then [] else [ Let (w, path, body') ])
  | For (v, lo, hi, body) -> (
      let lo = eval ctx venv facts lo and hi = eval ctx venv facts hi in
      match (lo, hi) with
      | S_int lo, S_int hi ->
          List.concat
            (List.init (max 0 (hi - lo)) (fun k ->
                 spec ctx ((v, S_int (lo + k)) :: venv) facts body))
      | _ ->
          let w = fresh ctx in
          let body' = spec ctx ((v, D_int (Var w)) :: venv) facts body in
          if body' = [] then []
          else [ For (w, to_int_expr lo, to_int_expr hi, body') ])
  | (Invoke_virtual (m, e) | Call (m, e)) -> (
      match eval ctx venv facts e with
      | S_null -> []
      | PS (s, path) -> inline ctx facts m s path
      | PS_maybe (s, path) ->
          if non_null facts path then inline ctx facts m s path
          else if m = M_checkpoint then [ Call_generic path ]
          else error "virtual %s on possibly-null receiver"
                 (Format.asprintf "%a" pp_meth m)
      | D_obj path ->
          if m = M_checkpoint then [ Call_generic path ]
          else error "virtual %s on unknown receiver"
                 (Format.asprintf "%a" pp_meth m)
      | Opaque _ ->
          (* The whole subtree is declared clean: checkpointing it emits
             no code — the traversal the paper eliminates. *)
          if m = M_checkpoint then []
          else error "virtual %s on clean-opaque receiver"
                 (Format.asprintf "%a" pp_meth m)
      | S_int _ | D_int _ -> error "method call on int")
  | Call_generic e -> (
      match eval ctx venv facts e with
      | S_null -> []
      | PS (_, path) | PS_maybe (_, path) | D_obj path -> [ Call_generic path ]
      | Opaque _ -> []
      | S_int _ | D_int _ -> error "generic call on int")

(* Bind an object path to a residual variable and specialize [body] with
   the refined knowledge; drop the whole Let when nothing remains. *)
and bind_object ctx venv facts v s path body ~nullable =
  let w = fresh ctx in
  ctx.var_klass <- (w, s.Sclass.klass.Ickpt_runtime.Model.kname) :: ctx.var_klass;
  let aval = if nullable then PS_maybe (s, Var w) else PS (s, Var w) in
  let facts = if nullable then facts else Var w :: facts in
  let body' = spec ctx ((v, aval) :: venv) facts body in
  if body' = [] then [] else [ Let (w, path, body') ]

(* Resolve and inline a method on a shape-static receiver. Complex receiver
   paths are let-bound first so that the inlined body does not duplicate
   the access expression (this also makes the residual code read like the
   paper's Figure 5). *)
and inline ctx facts m s path =
  match path with
  | Var _ ->
      let body = method_body ctx.program m in
      spec ctx [ (0, PS (s, path)) ] (path :: facts) body
  | _ ->
      let w = fresh ctx in
      ctx.var_klass <-
        (w, s.Sclass.klass.Ickpt_runtime.Model.kname) :: ctx.var_klass;
      let body = method_body ctx.program m in
      let inner = spec ctx [ (0, PS (s, Var w)) ] [ Var w ] body in
      if inner = [] then [] else [ Let (w, path, inner) ]

let specialize ?(program = Generic_method.program) ?(optimize = true) shape =
  Sclass.validate shape;
  let ctx = { program; next_var = 1; var_klass = [ (0, shape.Sclass.klass.Ickpt_runtime.Model.kname) ] } in
  let body =
    spec ctx [ (0, PS (shape, Var 0)) ] [ Var 0 ] program.checkpoint
  in
  let body = if optimize then Plan_opt.simplify body else body in
  { shape; body; n_vars = ctx.next_var; var_klass = List.rev ctx.var_klass }
